package mbd_test

// One benchmark per table/figure of the evaluation (DESIGN.md §4).
// Each iteration regenerates the experiment with a bounded
// configuration so the suite completes in seconds; cmd/benchrunner
// prints the full-size tables. The micro-benchmarks at the bottom
// cover the wire codecs and the DPL engines, including the BER-vs-raw
// framing ablation called out in DESIGN.md §5.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"mbd/internal/ber"
	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
	"mbd/internal/dpl/verify"
	"mbd/internal/elastic"
	"mbd/internal/experiments"
	"mbd/internal/federation"
	"mbd/internal/mib"
	"mbd/internal/oid"
	"mbd/internal/rds"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
	"mbd/internal/vdl/incr"
)

func runExperiment(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1PollingCapacity(b *testing.B) {
	runExperiment(b, experiments.E1PollingCapacity)
}

func BenchmarkE2HealthCentralVsDelegated(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E2HealthCentralVsDelegated(experiments.E2Config{
			DeviceCounts: []int{5, 25}, Horizon: 2 * time.Minute, Seed: 1,
		})
	})
}

func BenchmarkE2bPeriodicAblation(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E2HealthCentralVsDelegated(experiments.E2Config{
			DeviceCounts: []int{25}, Horizon: 2 * time.Minute, Periodic: true, Seed: 1,
		})
	})
}

func BenchmarkE3TableRetrieval(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E3TableRetrieval(experiments.E3Config{
			RowCounts: []int{100, 500}, Selectivities: []float64{0.1},
		})
	})
}

func BenchmarkE4LatencySweep(b *testing.B) {
	runExperiment(b, experiments.E4LatencySweep)
}

func BenchmarkE5DelegationAmortization(b *testing.B) {
	runExperiment(b, experiments.E5DelegationAmortization)
}

func BenchmarkE6IntrusionDetection(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E6IntrusionDetection(experiments.E6Config{
			PollIntervals: []time.Duration{30 * time.Second},
			MeanLives:     []time.Duration{2 * time.Second},
			Horizon:       2 * time.Minute,
			Sessions:      40,
		})
	})
}

func BenchmarkE7ViewEconomy(b *testing.B) {
	runExperiment(b, experiments.E7ViewEconomy)
}

func BenchmarkE8Snapshots(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E8Snapshots(experiments.E8Config{
			FlapPeriods: []time.Duration{100 * time.Millisecond},
			Walks:       10, Routes: 50,
		})
	})
}

func BenchmarkE9LMSTraining(b *testing.B) {
	runExperiment(b, experiments.E9LMSTraining)
}

func BenchmarkE10RuntimeScalability(b *testing.B) {
	runExperiment(b, func() (*experiments.Table, error) {
		return experiments.E10RuntimeScalability(experiments.E10Config{
			Counts: []int{1, 100}, MsgsPerDPI: 5,
		})
	})
}

func BenchmarkT1InterpreterOverhead(b *testing.B) {
	runExperiment(b, experiments.T1InterpreterOverhead)
}

// --- micro-benchmarks -------------------------------------------------------

func BenchmarkBEREncodeSNMPGet(b *testing.B) {
	names := []oid.OID{
		mib.OIDSysUpTime.Append(0),
		mib.OIDEnetRxOk.Append(0),
		mib.OIDIfEntry.Append(mib.IfInOctets, 1),
	}
	vbs := make([]snmp.VarBind, len(names))
	for i, n := range names {
		vbs[i] = snmp.VarBind{Name: n, Value: mib.Null()}
	}
	msg := &snmp.Message{Community: "public", Type: snmp.PDUGetRequest, RequestID: 9, VarBinds: vbs}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := msg.AppendEncode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

func BenchmarkBERDecodeSNMPGet(b *testing.B) {
	msg := &snmp.Message{
		Community: "public", Type: snmp.PDUGetResponse, RequestID: 9,
		VarBinds: []snmp.VarBind{
			{Name: mib.OIDSysUpTime.Append(0), Value: mib.TimeTicks(123456)},
			{Name: mib.OIDEnetRxOk.Append(0), Value: mib.Counter32(987654321)},
		},
	}
	pkt, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var dec snmp.Decoder
	var out snmp.Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(pkt, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentHandleGet(b *testing.B) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "bench", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	agent := snmp.NewAgent(dev.Tree(), "public")
	msg := &snmp.Message{
		Community: "public", Type: snmp.PDUGetRequest, RequestID: 1,
		VarBinds: []snmp.VarBind{{Name: mib.OIDSysUpTime.Append(0), Value: mib.Null()}},
	}
	pkt, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var out []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp := agent.HandlePacketAppend(out[:0], pkt)
		if resp == nil {
			b.Fatal("request dropped")
		}
		out = resp
	}
}

// BenchmarkRDSBERHeader vs BenchmarkRDSRawFrame: the BER-header cost
// ablation (DESIGN.md §5). Raw framing is the 4-byte length prefix
// around an unencoded payload; the BER variant is the full RDS message
// encoding the prototype used.
func BenchmarkRDSBERHeader(b *testing.B) {
	payload := make([]byte, 512)
	msg := &rds.Message{Op: rds.OpSend, Seq: 7, Principal: "mgr", Name: "agent#1", Payload: payload}
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		enc := msg.Encode()
		total += rds.FrameSize(enc)
	}
	b.ReportMetric(float64(rds.FrameSize(msg.Encode())-4-len(payload)), "header-bytes")
}

func BenchmarkRDSRawFrame(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		total += rds.FrameSize(payload)
	}
	_ = total
	b.ReportMetric(4, "header-bytes")
}

func BenchmarkDPLCompile(b *testing.B) {
	src := `
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { return fib(10); }`
	bindings := dpl.Std()
	prog, err := dpl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dpl.Compile(prog, bindings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the full static-analysis pipeline (CFG,
// dataflow, effect inference, cost) on a representative resident agent
// — the per-delegation admission overhead the server pays.
func BenchmarkAnalyze(b *testing.B) {
	src := `
var lastUp = 0;

func pct(n, d) {
	if (d == 0) { return 0.0; }
	return float(n) * 100.0 / float(d);
}

func scanIfaces() {
	var rows = mibWalk("1.3.6.1.2.1.2.2.1.10");
	var total = 0;
	for (var i = 0; i < len(rows); i += 1) {
		total += rows[i][1];
	}
	return total;
}

func main() {
	while (true) {
		var up = mibGet("1.3.6.1.2.1.1.3.0");
		if (up != nil && up < lastUp) {
			notify(sprintf("%s rebooted", sysname()));
		}
		lastUp = up;
		report(sprintf("octets=%d load=%f", scanIfaces(), pct(3, 7)));
		sleep(5000);
	}
}`
	bindings := analysis.LintBindings()
	prog, err := dpl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if errs := dpl.Check(prog, bindings); len(errs) > 0 {
		b.Fatal(errs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := analysis.Analyze(prog, bindings)
		if len(rep.Diags) != 0 {
			b.Fatal(rep.Diags)
		}
	}
}

// benchAdmitSource is the program used by the admission benchmarks:
// several functions and a loop, so a cold translation (parse, check,
// analyze, compile, optimize) does representative work.
const benchAdmitSource = `
func pct(n, d) {
	if (d == 0) { return 0.0; }
	return float(n) * 100.0 / float(d);
}
func score(k) {
	var total = 0;
	for (var i = 0; i < k; i += 1) { total += i * i; }
	return total;
}
func main() { return pct(score(10), 385); }`

// BenchmarkVerify measures standalone bytecode verification — the
// admission cost a federation child pays per cascaded artifact instead
// of a full source translation (compare BenchmarkDPLCompile +
// BenchmarkAnalyze).
func BenchmarkVerify(b *testing.B) {
	bindings := analysis.LintBindings()
	src := `
func main() {
	var total = 0;
	for (var i = 0; i < 100; i += 1) {
		total += mibGet("1.3.6.1.2.1.2.2.1.10." + i);
	}
	mibSet("1.3.6.1.2.1.1.4.0", total);
	return total;
}`
	prog, err := dpl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if errs := dpl.Check(prog, bindings); len(errs) > 0 {
		b.Fatal(errs)
	}
	rep := analysis.Analyze(prog, bindings)
	if rep.HasErrors() {
		b.Fatal(rep.Diags)
	}
	obj, err := dpl.Compile(prog, bindings)
	if err != nil {
		b.Fatal(err)
	}
	dpl.Optimize(obj)
	cp := &dpl.CompiledProgram{
		Version:    dpl.CompilerVersion,
		SourceHash: dpl.HashSource(src),
		Verdict: dpl.Verdict{
			Hosts: rep.Effects.HostNames(), Reads: rep.Effects.ReadPrefixes(),
			Writes: rep.Effects.WritePrefixes(), CostSteps: rep.Cost.Steps,
			CostUnbounded: rep.Cost.Unbounded, StepBudget: rep.SuggestedBudget(0),
		},
		Object: obj,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := verify.Verify(cp, bindings); !res.OK() {
			b.Fatal(res.Diags)
		}
	}
}

// BenchmarkAdmitCached vs BenchmarkAdmitCold: one source delegation
// through the elastic process with the content-addressed program cache
// warm versus disabled. The gap is the translation work the cache
// elides per re-delegation.
func BenchmarkAdmitCached(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{})
	defer proc.Stop()
	if err := proc.Delegate("mgr", "bench", "dpl", benchAdmitSource); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proc.Delegate("mgr", "bench", "dpl", benchAdmitSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmitCold(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{ProgramCacheSize: -1})
	defer proc.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := proc.Delegate("mgr", "bench", "dpl", benchAdmitSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMStep measures steady-state dispatch cost: one op is one
// Run of a 200-iteration arithmetic loop (~1.3k executed instructions)
// on a reused VM. Every value stays below 256 so the runtime's static
// small-int box cache keeps value boxing allocation-free — any alloc/op
// reported here is VM machinery (frames, stacks, accounting), which the
// flat-frame engine keeps at zero.
func BenchmarkVMStep(b *testing.B) {
	bindings := dpl.Std()
	compiled := dpl.MustCompile(`
func main() {
	var x = 0;
	for (var i = 0; i < 200; i += 1) {
		x = (x + 7) % 100;
	}
	return x;
}`, bindings)
	dpl.Optimize(compiled)
	vm := dpl.NewVM(compiled, bindings)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(ctx, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMCall measures user-function activation cost: 100 calls per
// op through a two-argument function, on a reused VM. The flat frame
// machine passes arguments in place on the shared value stack.
func BenchmarkVMCall(b *testing.B) {
	bindings := dpl.Std()
	compiled := dpl.MustCompile(`
func add(a, b) { return a + b; }
func main() {
	var t = 0;
	for (var i = 0; i < 100; i += 1) {
		t = add(t, i) % 50;
	}
	return t;
}`, bindings)
	dpl.Optimize(compiled)
	vm := dpl.NewVM(compiled, bindings)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(ctx, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMHostCall measures host-binding dispatch: 100 calls per op
// into a standard builtin, exercising the per-VM cached Env and the
// copy-free argument window into the value stack.
func BenchmarkVMHostCall(b *testing.B) {
	bindings := dpl.Std()
	compiled := dpl.MustCompile(`
func main() {
	var t = 0;
	for (var i = 0; i < 100; i += 1) {
		t = (t + len("ab")) % 90;
	}
	return t;
}`, bindings)
	dpl.Optimize(compiled)
	vm := dpl.NewVM(compiled, bindings)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(ctx, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPLVMFib(b *testing.B) {
	bindings := dpl.Std()
	compiled := dpl.MustCompile(`
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { return fib(15); }`, bindings)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm := dpl.NewVM(compiled, bindings)
		if _, err := vm.Run(ctx, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPLInterpFib(b *testing.B) {
	bindings := dpl.Std()
	prog, err := dpl.Parse(`
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { return fib(15); }`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it, err := dpl.NewInterp(prog, bindings)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := it.Run(ctx, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBERWriterOID(b *testing.B) {
	o := oid.MustParse("1.3.6.1.2.1.2.2.1.10.4021")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w ber.Writer
		w.AppendOID(o)
	}
}

// benchConnDevice builds a device with a 1000-row TCP connection table,
// the deep-table workload for GetNext and walk benchmarks.
func benchConnDevice(b *testing.B) *mib.Device {
	b.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "bench", Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		dev.OpenConn(mib.ConnID{
			LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80,
			RemAddr: [4]byte{1, byte(i / 256), byte(i % 256), 1}, RemPort: uint16(1024 + i),
		})
	}
	return dev
}

func BenchmarkTreeGetNextDeepTable(b *testing.B) {
	dev := benchConnDevice(b)
	start := mib.OIDTCPConnEntry.Append(mib.TCPConnState)
	var buf oid.OID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, _, err := dev.Tree().GetNextInto(buf[:0], start)
		if err != nil {
			b.Fatal(err)
		}
		buf = next
	}
}

// walkByGetNext retrieves the subtree under prefix one GetNext at a
// time — the classic SNMP walk loop that re-resolves the mount table
// and re-searches the table on every step. BenchmarkTreeWalkBulk
// measures the same retrieval through Tree.Walk's pinned-mount bulk
// path for comparison.
func walkByGetNext(tree *mib.Tree, prefix oid.OID) int {
	n := 0
	cur := append(oid.OID(nil), prefix...)
	spare := make(oid.OID, 0, 32)
	for {
		next, _, err := tree.GetNextInto(spare[:0], cur)
		if err != nil || !next.HasPrefix(prefix) {
			return n
		}
		n++
		spare, cur = cur, next
	}
}

func BenchmarkTreeWalkGetNext(b *testing.B) {
	dev := benchConnDevice(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := walkByGetNext(dev.Tree(), mib.OIDTCPConnEntry); n < 1000 {
			b.Fatalf("walked %d instances", n)
		}
	}
}

func BenchmarkTreeWalkBulk(b *testing.B) {
	dev := benchConnDevice(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := dev.Tree().Walk(mib.OIDTCPConnEntry, func(o oid.OID, v mib.Value) bool { return true })
		if n < 1000 {
			b.Fatalf("walked %d instances", n)
		}
	}
}

// BenchmarkRDSRoundTrip measures one full RDS request/reply exchange
// over loopback TCP — framing, BER codec, server dispatch and the
// per-connection buffered writer.
func BenchmarkRDSRoundTrip(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{})
	defer proc.Stop()
	srv := rds.NewServer(proc, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, l) }()
	defer func() { cancel(); <-done }()
	cl, err := rds.Dial(l.Addr().String(), "mgr")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(ctx, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventFanout measures DPI event delivery through the server's
// bounded subscriber queues: one resident DPI reports a message per
// iteration, fanned out to three reading subscribers and one subscriber
// that never drains its socket (exercising the drop-oldest policy
// without stalling the emitter).
func BenchmarkEventFanout(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{})
	defer proc.Stop()
	srv := rds.NewServer(proc, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, l) }()
	defer func() { cancel(); <-done }()

	var readers []*rds.Client
	for i := 0; i < 3; i++ {
		cl, err := rds.Dial(l.Addr().String(), "mgr")
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Subscribe(ctx, ""); err != nil {
			b.Fatal(err)
		}
		readers = append(readers, cl)
	}
	// The stuck subscriber: subscribes, then never reads its socket
	// again, so the server-side queue must absorb or drop its events.
	stuck, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer stuck.Close()
	sub := &rds.Message{Op: rds.OpSubscribe, Seq: 1, Principal: "mgr"}
	if err := rds.WriteFrame(stuck, sub.Encode()); err != nil {
		b.Fatal(err)
	}
	if _, err := rds.ReadFrame(stuck); err != nil { // the subscribe reply
		b.Fatal(err)
	}

	cl := readers[0]
	if err := cl.Delegate(ctx, "echo", `
func main() { while (true) { report(recv(-1)); } }`); err != nil {
		b.Fatal(err)
	}
	id, err := cl.Instantiate(ctx, "echo", "main")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Send(ctx, id, "e"); err != nil {
			b.Fatal(err)
		}
		for {
			ev, ok := <-cl.Events()
			if !ok {
				b.Fatal("event stream closed")
			}
			if ev.Kind == "report" {
				break
			}
		}
	}
}

// BenchmarkRollupDelta measures incremental rollup maintenance: one
// member's report folded into a key already materialized from 1000
// contributors. The delta path visits O(1) members per report; compare
// the full recombine a non-delta combiner pays (BenchmarkRollupDelta
// divided into the contributor count approximates the old cost).
func BenchmarkRollupDelta(b *testing.B) {
	r := federation.NewRollup(federation.Sum())
	const members = 1000
	names := make([]string, members)
	for i := range names {
		names[i] = fmt.Sprintf("m%04d", i)
		r.Report(names[i], "load", "1", int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Report(names[i%members], "load", "2", int64(members+i))
	}
	st := r.Stats()
	if st.Recombines > uint64(members)+1 {
		b.Fatalf("delta path recombined %d times over %d reports", st.Recombines, st.Reports)
	}
}

// BenchmarkPeerHeartbeatBatch measures one coalesced sync frame over
// loopback TCP: a single OpPeerSync round trip carrying the heartbeat
// plus 32 rollup deltas — the per-beat upstream cost of a federation
// child, amortized across everything the frame carries.
func BenchmarkPeerHeartbeatBatch(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{})
	defer proc.Stop()
	node, err := federation.New(federation.Config{
		Name: "root", Domain: "bench", Proc: proc,
		Advertise: "127.0.0.1:0", Combiner: federation.Sum(),
		HeartbeatInterval: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	node.Start()
	defer node.Stop()
	srv := rds.NewServer(proc, nil, rds.WithPeerHandler(node))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, l) }()
	defer func() { cancel(); <-done }()
	cl, err := rds.Dial(l.Addr().String(), "federation")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.PeerJoin(ctx, "child", "lan", "127.0.0.1:9"); err != nil {
		b.Fatal(err)
	}
	batch := &rds.SyncBatch{}
	for i := 0; i < 32; i++ {
		batch.Reports = append(batch.Reports, rds.SyncReport{
			Key: fmt.Sprintf("k%02d", i), Value: "7", TimeMS: int64(i),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.PeerSync(ctx, "child", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitQuota is BenchmarkAdmitCached with tenant quotas
// switched on: the delta between the two is the full quota bookkeeping
// on the admission path (repository-byte admit plus ledger updates).
func BenchmarkAdmitQuota(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{Quota: elastic.Quota{
		MaxLiveDPIs:     64,
		StepsPerSec:     1 << 30,
		EventsPerSec:    1 << 20,
		RepositoryBytes: 1 << 20,
	}})
	defer proc.Stop()
	if err := proc.Delegate("mgr", "bench", "dpl", benchAdmitSource); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proc.Delegate("mgr", "bench", "dpl", benchAdmitSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedFairness: two single-DPI tenants contend for one run
// slot with a small quantum; one op runs both bounded loops to
// completion, so the number amortizes a full weighted-fair rotation —
// park, grant, wake — over a few dozen quanta. It gates the
// scheduler's slot-switch overhead.
func BenchmarkSchedFairness(b *testing.B) {
	proc := elastic.NewProcess(elastic.Config{SchedWorkers: 1, SchedQuantum: 512})
	defer proc.Stop()
	src := `
func main() {
	var x = 0;
	for (var i = 0; i < 500; i += 1) { x += 1; }
	return x;
}`
	if err := proc.Delegate("a", "loop", "dpl", src); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d1, err := proc.Instantiate("a", "loop", "main")
		if err != nil {
			b.Fatal(err)
		}
		d2, err := proc.Instantiate("b", "loop", "main")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d1.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := d2.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		proc.Remove(d1.ID)
		proc.Remove(d2.ID)
	}
}

// benchRouteTable returns a device whose ipRouteTable holds n rows.
func benchRouteTable(b *testing.B, n int) *mib.Device {
	b.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "bench-views", Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dev.AddRoute([4]byte{10, byte(i / 250), byte(i % 250), 0}, 1+uint32(i%2), int64(i%7), [4]byte{10, 0, 0, 254})
	}
	return dev
}

const benchViewSrc = `view hot {
  from ipRouteTable;
  select ipRouteDest, ipRouteMetric1;
  where ipRouteMetric1 < 3;
}`

// BenchmarkViewDelta measures continuous view maintenance: one route
// update folded into a standing view over a 1000-row ipRouteTable.
// The per-write cost is O(delta) — independent of base-table size.
// Compare BenchmarkViewRecompute, the from-scratch Eval an on-demand
// MCVA pays for the same freshness on the same table.
func BenchmarkViewDelta(b *testing.B) {
	dev := benchRouteTable(b, 1000)
	a := incr.New(incr.Config{Tree: dev.Tree(), Schema: vdl.MIB2()})
	defer a.Close()
	if _, err := a.Define(benchViewSrc); err != nil {
		b.Fatal(err)
	}
	if _, err := a.Query("hot"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.AddRoute([4]byte{10, 0, 1, 0}, 1, int64(1+i%6), [4]byte{10, 0, 0, 254})
		a.Pump()
	}
	b.StopTimer()
	st := a.Stats()
	if st.Recomputes != 0 || st.ChangesLost != 0 {
		b.Fatalf("fallback engaged during delta benchmark: %+v", st)
	}
	if st.DeltasFolded == 0 {
		b.Fatal("no deltas folded")
	}
}

// BenchmarkViewRecompute is the denominator for BenchmarkViewDelta's
// O(delta) claim: evaluating the identical view from scratch over the
// identical 1000-row table, once per iteration.
func BenchmarkViewRecompute(b *testing.B) {
	dev := benchRouteTable(b, 1000)
	def, err := vdl.Parse(benchViewSrc)
	if err != nil {
		b.Fatal(err)
	}
	ev := vdl.NewEvaluator(dev.Tree(), vdl.MIB2())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(def); err != nil {
			b.Fatal(err)
		}
	}
}
