// Package mbd is a from-scratch Go reproduction of "Distributed
// Management by Delegation" (Goldszmidt & Yemini, ICDCS 1995; Goldszmidt's
// Columbia dissertation, 1996).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), runnable tools under cmd/, and worked examples
// under examples/. The benchmarks in this directory regenerate every
// table and figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem
//
// or print the full tables with
//
//	go run ./cmd/benchrunner
package mbd
