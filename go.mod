module mbd

go 1.24
