// Healthmon replays the InterOp'91 demo: health monitoring of LAN
// segments, centralized versus delegated, side by side in the
// discrete-event simulator. A broadcast storm hits one segment halfway
// through; watch who notices, when, and at what bandwidth cost.
//
//	go run ./examples/healthmon
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mbd/internal/health"
	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
)

const (
	segments  = 8
	horizon   = 6 * time.Minute
	evalEvery = 10 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.NewSim()
	rng := rand.New(rand.NewSource(7))
	ix := health.DefaultIndex()

	stations := make([]*netsim.Station, segments)
	for i := range stations {
		st, err := netsim.NewStation(fmt.Sprintf("segment-%d", i), int64(i), netsim.LAN(), "public")
		if err != nil {
			return err
		}
		st.Dev.SetLoad(health.EpisodeLoad(health.Nominal, rng))
		stations[i] = st
	}
	// Storm on segment-3 from minute 3 to minute 4.
	sim.At(3*time.Minute, func() {
		fmt.Printf("%8s  ** broadcast storm begins on segment-3 **\n", sim.Now())
		stations[3].Dev.SetLoad(health.EpisodeLoad(health.BroadcastStorm, rng))
	})
	sim.At(4*time.Minute, func() {
		fmt.Printf("%8s  ** storm ends **\n", sim.Now())
		stations[3].Dev.SetLoad(health.EpisodeLoad(health.Nominal, rng))
	})

	// --- Centralized manager: polls 5 counters per segment per period,
	// computes the index at the platform.
	var centralTr netsim.Traffic
	counters := []oid.OID{
		mib.OIDEnetRxOk.Append(0), mib.OIDEnetColl.Append(0),
		mib.OIDEnetRxBcast.Append(0), mib.OIDEnetRxPkts.Append(0), mib.OIDEnetRxErrs.Append(0),
	}
	prev := make([]health.Snapshot, segments)
	var centralAlarms int
	var pollRound func(at time.Duration)
	pollRound = func(at time.Duration) {
		sim.At(at, func() {
			for i, st := range stations {
				i, st := i, st
				st.Get(sim, "public", &centralTr, counters, func(vbs []snmp.VarBind) {
					if vbs == nil {
						return
					}
					cur := health.Snapshot{
						At:         sim.Now(),
						RxOkBits:   vbs[0].Value.Uint,
						Collisions: vbs[1].Value.Uint,
						RxBcast:    vbs[2].Value.Uint,
						RxPkts:     vbs[3].Value.Uint,
						RxErrs:     vbs[4].Value.Uint,
					}
					if prev[i].At > 0 {
						in := health.Compute(prev[i], cur, 0)
						if ix.Unhealthy(in) {
							centralAlarms++
							fmt.Printf("%8s  central manager: segment-%d UNHEALTHY (score %.2f)\n",
								sim.Now(), i, ix.Score(in))
						}
					}
					prev[i] = cur
				})
			}
			if next := at + evalEvery; next < horizon {
				pollRound(next)
			}
		})
	}
	pollRound(evalEvery)

	// --- Delegated: one health DP per segment, evaluating locally,
	// notifying on threshold.
	var mbdTr netsim.Traffic
	var mbdAlarms int
	src := health.AgentSource(ix, false)
	for i, st := range stations {
		i := i
		ses := netsim.NewSession(sim, st, &mbdTr)
		agent, err := netsim.NewAgent(sim, st, ses, src)
		if err != nil {
			return err
		}
		agent.OnReport = func(p string) {
			mbdAlarms++
			fmt.Printf("%8s  delegated agent on segment-%d: %s\n", sim.Now(), i, p)
		}
		ses.Delegate("health", src, func() {
			ses.Instantiate("health", "eval", func() {
				var tick func(at time.Duration)
				tick = func(at time.Duration) {
					if at >= horizon {
						return
					}
					sim.At(at, func() {
						if _, err := agent.Invoke("eval"); err != nil {
							log.Printf("agent eval: %v", err)
						}
						tick(at + evalEvery)
					})
				}
				tick(sim.Now())
			})
		})
	}

	fmt.Printf("monitoring %d segments for %v (health check every %v)\n\n", segments, horizon, evalEvery)
	sim.Run(horizon + time.Minute)

	fmt.Printf("\n--- %v of monitoring, %d segments ---\n", horizon, segments)
	fmt.Printf("centralized: %8s of management traffic, %d PDUs, %d alarms\n",
		byteCount(centralTr.Bytes()), centralTr.Requests+centralTr.Responses, centralAlarms)
	fmt.Printf("delegated:   %8s of management traffic, %d frames, %d alarms\n",
		byteCount(mbdTr.Bytes()), mbdTr.Requests+mbdTr.Responses, mbdAlarms)
	fmt.Printf("same faults detected; delegation moved %.0fx fewer bytes\n",
		float64(centralTr.Bytes())/float64(mbdTr.Bytes()))
	return nil
}

func byteCount(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
