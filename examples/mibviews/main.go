// Mibviews demonstrates the View Definition Language and the MCVA:
// projections, selections, computations, a join across base tables, an
// aggregate, snapshots that survive base-table churn, exposure of
// computed views to plain SNMP managers through the v-mib, and — new in
// this revision — continuous materialization: an IncrMCVA keeps views
// fresh by folding per-row change deltas instead of rescanning tables.
//
//	go run ./examples/mibviews
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mbd/internal/mib"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
	"mbd/internal/vdl/incr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "core-router", Interfaces: 4, Seed: 11})
	if err != nil {
		return err
	}
	dev.SetLoad(mib.LoadProfile{Utilization: 0.5, BroadcastFraction: 0.06, ErrorRate: 0.004, CollisionRate: 0.03})
	dev.Advance(2 * time.Minute)
	for i := 0; i < 6; i++ {
		dev.AddRoute([4]byte{192, 168, byte(i), 0}, uint32(1+i%4), int64(1+i%3), [4]byte{10, 0, 0, 254})
	}
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{198, 51, 100, 7}, RemPort: 40001})
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80, RemAddr: [4]byte{10, 0, 2, 9}, RemPort: 40002})

	mcva := vdl.NewMCVA(dev.Tree(), vdl.MIB2())

	// The canonical five-line view.
	viewSrc := `view busy {
  from ifTable;
  select ifIndex, ifDescr, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1;
}`
	def, err := mcva.Define(viewSrc)
	if err != nil {
		return err
	}
	fmt.Printf("defined view %q — %d lines of VDL\n", def.Name, vdl.SpecLines(viewSrc))
	smi := vdl.RenderSMI(def, 424242)
	fmt.Printf("the same view in SMI-extension style would be %d lines\n\n", vdl.SpecLines(smi))

	show := func(name string) error {
		res, err := mcva.Query(name)
		if err != nil {
			return err
		}
		fmt.Printf("view %s (%d base rows scanned):\n  %v\n", name, res.BaseRows, res.Columns)
		for _, r := range res.Rows {
			fmt.Printf("  %v\n", r.Cells)
		}
		fmt.Println()
		return nil
	}
	if err := show("busy"); err != nil {
		return err
	}

	// A join: the routing-problem correlation the dissertation motivates.
	if _, err := mcva.Define(`view routesByIf {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr, i:ifOperStatus, r:ipRouteMetric1;
}`); err != nil {
		return err
	}
	if err := show("routesByIf"); err != nil {
		return err
	}

	// An aggregate.
	if _, err := mcva.Define(`view summary {
  from ifTable;
  select count() as ifaces, sum(ifInOctets) as totalIn, avg(ifInErrors) as meanErrs;
}`); err != nil {
		return err
	}
	if err := show("summary"); err != nil {
		return err
	}

	// Snapshots: freeze the connection table, then mutate it.
	if _, err := mcva.Define(`view conns { from tcpConnTable; select tcpConnRemAddress, tcpConnLocalPort; }`); err != nil {
		return err
	}
	id, err := mcva.Snapshot("conns")
	if err != nil {
		return err
	}
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 443, RemAddr: [4]byte{203, 0, 113, 99}, RemPort: 40003})
	snap, _ := mcva.SnapshotResult(id)
	live, err := mcva.Query("conns")
	if err != nil {
		return err
	}
	fmt.Printf("snapshot %d still shows %d connections; the live view now shows %d\n\n",
		id, len(snap.Rows), len(live.Rows))

	// Expose everything as a v-mib and read it over real SNMP.
	if err := dev.Tree().Mount(vdl.OIDViews, mcva.Handler()); err != nil {
		return err
	}
	agent := snmp.NewAgent(dev.Tree(), "public")
	c := snmp.NewClient(snmp.AgentTripper(agent), "public")
	fmt.Printf("walking the v-mib (%s) over SNMP:\n", vdl.OIDViews)
	n, err := c.Walk(context.Background(), vdl.OIDViews, func(vb snmp.VarBind) bool {
		fmt.Printf("  %s = %s\n", vb.Name, vb.Value)
		return true
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d computed instances served to a plain SNMP manager\n\n", n)

	return continuous(dev)
}

// continuous keeps a view materialized incrementally: each device
// mutation publishes a change event, and the IncrMCVA folds just the
// affected rows into the standing result — O(delta) work per write, so
// every query returns instantly-fresh rows without a table scan.
func continuous(dev *mib.Device) error {
	a := incr.New(incr.Config{Tree: dev.Tree(), Schema: vdl.MIB2()})
	defer a.Close()
	def, err := a.Define(`view watchRoutes {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr;
  where i:ifOperStatus == 1;
}`)
	if err != nil {
		return err
	}

	rows := func() int {
		res, err := a.Query(def.Name)
		if err != nil {
			return -1
		}
		return len(res.Rows)
	}
	fmt.Printf("continuous view %q starts with %d rows\n", def.Name, rows())

	// Mutations are reflected immediately — no rescan, no poll cycle.
	dev.AddRoute([4]byte{172, 16, 9, 0}, 2, 4, [4]byte{10, 0, 0, 250})
	fmt.Printf("after adding a route: %d rows\n", rows())
	if err := dev.SetInterfaceStatus(2, mib.IfStatusDown); err != nil {
		return err
	}
	fmt.Printf("after downing if 2 (its routes vanish): %d rows\n", rows())
	if err := dev.SetInterfaceStatus(2, mib.IfStatusUp); err != nil {
		return err
	}
	fmt.Printf("after restoring if 2: %d rows\n", rows())

	st := a.Stats()
	fmt.Printf("deltas folded: %d, full recomputes: %d\n", st.DeltasFolded, st.Recomputes)
	return nil
}
