package main

// Freshness check for the continuous-view demo: after every device
// mutation the incrementally-maintained view must already reflect the
// change on the very next query, with zero full recomputes.

import (
	"testing"

	"mbd/internal/mib"
	"mbd/internal/vdl"
	"mbd/internal/vdl/incr"
)

func TestContinuousViewFreshness(t *testing.T) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "demo", Interfaces: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := incr.New(incr.Config{Tree: dev.Tree(), Schema: vdl.MIB2()})
	defer a.Close()
	def, err := a.Define(`view watchRoutes {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr;
  where i:ifOperStatus == 1;
}`)
	if err != nil {
		t.Fatal(err)
	}
	rows := func() int {
		t.Helper()
		res, err := a.Query(def.Name)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}

	if got := rows(); got != 0 {
		t.Fatalf("empty device: rows = %d", got)
	}
	dev.AddRoute([4]byte{192, 168, 1, 0}, 2, 3, [4]byte{10, 0, 0, 254})
	if got := rows(); got != 1 {
		t.Fatalf("after AddRoute: rows = %d, want 1 (stale view?)", got)
	}
	if err := dev.SetInterfaceStatus(2, mib.IfStatusDown); err != nil {
		t.Fatal(err)
	}
	if got := rows(); got != 0 {
		t.Fatalf("after ifdown: rows = %d, want 0 (stale view?)", got)
	}
	if err := dev.SetInterfaceStatus(2, mib.IfStatusUp); err != nil {
		t.Fatal(err)
	}
	if got := rows(); got != 1 {
		t.Fatalf("after ifup: rows = %d, want 1 (stale view?)", got)
	}
	dev.DelRoute([4]byte{192, 168, 1, 0})
	if got := rows(); got != 0 {
		t.Fatalf("after DelRoute: rows = %d, want 0 (stale view?)", got)
	}

	st := a.Stats()
	if st.DeltasFolded == 0 {
		t.Fatal("no deltas folded — view is being recomputed, not maintained")
	}
	if st.Recomputes != 0 {
		t.Fatalf("recomputes = %d, want 0", st.Recomputes)
	}

	// The demo program itself must run clean.
	if err := run(); err != nil {
		t.Fatalf("demo run: %v", err)
	}
}
