// Intrusion contrasts a centralized tcpConnTable poller with a
// delegated resident watcher on a workload of brief intruder sessions
// (Anderson's masquerader / misfeasor / clandestine classes). The
// poller sees only what survives until a poll instant; the watcher
// samples locally at 100 ms and reports each suspicious connection the
// moment it appears.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"time"

	"mbd/internal/intrusion"
	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
)

const (
	horizon      = 5 * time.Minute
	pollInterval = 30 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sessions := intrusion.Generate(intrusion.WorkloadConfig{
		Seed: 3, Horizon: horizon, Sessions: 40, MeanIntrusionLife: 2 * time.Second,
	})
	intruders := map[string]intrusion.Session{}
	for _, s := range sessions {
		if s.Class.Intrusion() {
			intruders[intrusion.IndexOf(s.Conn)] = s
		}
	}
	fmt.Printf("workload: %d sessions over %v, %d are intrusions (mean life ~2s)\n\n",
		len(sessions), horizon, len(intruders))

	sim := netsim.NewSim()
	st, err := netsim.NewStation("fileserver", 9, netsim.LAN(), "public")
	if err != nil {
		return err
	}
	for _, s := range sessions {
		s := s
		sim.At(s.Open, func() { st.Dev.OpenConn(s.Conn) })
		sim.At(s.Close, func() { st.Dev.CloseConn(s.Conn) })
	}

	// Centralized poller.
	var pollTr netsim.Traffic
	pollerSaw := map[string]bool{}
	stateCol := mib.OIDTCPConnEntry.Append(mib.TCPConnState)
	var poll func(at time.Duration)
	poll = func(at time.Duration) {
		sim.At(at, func() {
			st.Walk(sim, "public", &pollTr, stateCol, func(vbs []snmp.VarBind) {
				for _, vb := range vbs {
					idx, ok := vb.Name.Index(stateCol)
					if !ok || len(idx) != 10 {
						continue
					}
					rem := fmt.Sprintf("%d.%d.%d.%d", idx[5], idx[6], idx[7], idx[8])
					if intrusion.Suspicious(int64(idx[4]), rem) && !pollerSaw[idx.String()] {
						pollerSaw[idx.String()] = true
						fmt.Printf("%8s  poller:  caught %s (%s)\n", sim.Now(), idx, intruders[idx.String()].Class)
					}
				}
				if next := at + pollInterval; next < horizon {
					poll(next)
				}
			})
		})
	}
	poll(pollInterval)

	// Delegated watcher.
	var mbdTr netsim.Traffic
	ses := netsim.NewSession(sim, st, &mbdTr)
	agent, err := netsim.NewAgent(sim, st, ses, intrusion.WatcherSource)
	if err != nil {
		return err
	}
	watcherSaw := map[string]bool{}
	agent.OnReport = func(p string) {
		watcherSaw[p] = true
		fmt.Printf("%8s  watcher: caught %s (%s)\n", sim.Now(), p, intruders[p].Class)
	}
	for at := 100 * time.Millisecond; at < horizon; at += 100 * time.Millisecond {
		at := at
		sim.At(at, func() { _, _ = agent.Invoke("sample") })
	}

	sim.Run(horizon + time.Minute)

	pc, wc := 0, 0
	for idx := range intruders {
		if pollerSaw[idx] {
			pc++
		}
		if watcherSaw[idx] {
			wc++
		}
	}
	fmt.Printf("\npoller  (every %v): %d/%d intrusions, %6d bytes of management traffic\n",
		pollInterval, pc, len(intruders), pollTr.Bytes())
	fmt.Printf("watcher (delegated): %d/%d intrusions, %6d bytes of management traffic\n",
		wc, len(intruders), mbdTr.Bytes())
	missed := len(intruders) - pc
	fmt.Printf("\nthe poller missed %d brief connections that closed between polls —\n", missed)
	fmt.Println(`"an intruder, however, may need only a brief connection"`)
	return nil
}

var _ = oid.MustParse
