// Dflash recreates the dissertation's dFLASH anecdote: "The dFLASH
// server is a homologous sequence retrieval program for protein
// sequences. The server supports remote researchers via e-mail
// requests" — and "using delegated agents, applications can overcome
// many resource constraints. For instance, bandwidth limitations are
// avoided by reducing the transfer of unnecessary data."
//
// Here the sequence database lives inside an elastic process reachable
// over real RDS/TCP. A remote researcher, instead of downloading the
// whole database, delegates a small DPL filter that scans server-side
// and reports only matching sequences.
//
//	go run ./examples/dflash
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// filterSource is the researcher's delegated agent: scan every sequence
// for a motif passed as the entry argument, report matches only.
const filterSource = `
func main(motif) {
	var n = dbSize();
	var hits = 0;
	for (var i = 0; i < n; i += 1) {
		var seq = dbFetch(i);
		if (contains(seq, motif)) {
			report(sprintf("seq %d (%d residues) matches %s", i, len(seq), motif));
			hits += 1;
		}
	}
	return hits;
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The server side: an elastic process whose allowed-function table
	// exposes the sequence database (read-only) to delegated programs.
	db := makeDatabase(500, 42)
	var dbBytes int
	for _, s := range db {
		dbBytes += len(s)
	}
	bindings := dpl.Std()
	bindings.Register("dbSize", 0, func(*dpl.Env, []dpl.Value) (dpl.Value, error) {
		return int64(len(db)), nil
	})
	bindings.Register("dbFetch", 1, func(_ *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		i, ok := args[0].(int64)
		if !ok || i < 0 || i >= int64(len(db)) {
			return nil, fmt.Errorf("dbFetch: index %v out of range", args[0])
		}
		return db[i], nil
	})
	proc := elastic.NewProcess(elastic.Config{Bindings: bindings})
	defer proc.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := rds.NewServer(proc, nil).Serve(ctx, l); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	fmt.Printf("dFLASH-style server holding %d sequences (%.1f KB) on %s\n\n",
		len(db), float64(dbBytes)/1024, l.Addr())

	// The researcher's side, over the real wire.
	c, err := rds.Dial(l.Addr().String(), "researcher")
	if err != nil {
		return err
	}
	defer c.Close()
	rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
	defer rcancel()

	if err := c.Subscribe(rctx, ""); err != nil {
		return err
	}
	if err := c.Delegate(rctx, "motif-filter", filterSource); err != nil {
		return err
	}
	motif := "WQW"
	id, err := c.Instantiate(rctx, "motif-filter", "main", "s:"+motif)
	if err != nil {
		return err
	}
	fmt.Printf("delegated a %d-byte filter, scanning for motif %q as %s\n\n", len(filterSource), motif, id)

	hits := 0
	for ev := range c.Events() {
		switch ev.Kind {
		case "report":
			hits++
			fmt.Println("  match:", ev.Payload)
		case "exit":
			sent, rcvd := c.Bytes()
			fmt.Printf("\nfilter finished: %s sequences matched\n", ev.Payload)
			fmt.Printf("wire traffic: %d bytes out, %d bytes in — versus %d bytes to download the database\n",
				sent, rcvd, dbBytes)
			fmt.Printf("the delegated filter avoided %.1f%% of the transfer\n",
				100*(1-float64(sent+rcvd)/float64(dbBytes)))
			return nil
		}
	}
	_ = hits
	return fmt.Errorf("event stream closed before the filter finished")
}

// makeDatabase synthesizes protein-like sequences (the paper's data is
// proprietary wet-lab material; random sequences over the amino-acid
// alphabet exercise the identical code path — see DESIGN.md §2).
func makeDatabase(n int, seed int64) []string {
	const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		l := 80 + rng.Intn(240)
		for j := 0; j < l; j++ {
			b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
		}
		out[i] = b.String()
	}
	return out
}
