// Quickstart: build an MbD server around a simulated device, delegate a
// management program to it, and watch the program run as a thread of
// the server with local MIB access.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/mbd"
	"mbd/internal/mib"
)

// The delegated program: DPL source, checked by the server's Translator
// against its allowed-function table, compiled to bytecode, stored in
// the Repository, and instantiated as a DPI.
const agentSource = `
// Count interfaces and read uptime — locally, without one SNMP packet.
func main(rounds) {
	for (var r = 0; r < rounds; r += 1) {
		var up = mibGet("1.3.6.1.2.1.1.3.0");
		var n = mibGet("1.3.6.1.2.1.2.1.0");
		report(sprintf("round %d: %s is up %d ticks with %d interfaces", r, sysname(), up, n));
		sleep(100);
	}
	return "done";
}`

func main() {
	// A simulated managed device: MIB-II subset + private counters.
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "edge-router-7", Interfaces: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Drive some virtual traffic so counters are alive.
	dev.SetLoad(mib.LoadProfile{Utilization: 0.3, BroadcastFraction: 0.05, ErrorRate: 0.001, CollisionRate: 0.02})
	dev.Advance(90 * time.Second)

	srv, err := mbd.New(mbd.Config{Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	// Watch everything the delegated program tells us.
	done := make(chan struct{})
	cancel := srv.Process().Subscribe(func(ev elastic.Event) {
		fmt.Printf("  [%s] %-6s %s\n", ev.DPI, ev.Kind, ev.Payload)
		if ev.Kind == elastic.EventExit {
			close(done)
		}
	})
	defer cancel()

	// 1. Delegate: transfer + translate + store.
	if err := srv.Process().Delegate("operator", "iface-report", "dpl", agentSource); err != nil {
		log.Fatal(err)
	}
	fmt.Println("delegated program 'iface-report' accepted by the Translator")

	// A program binding to anything outside the allowed set is refused.
	if err := srv.Process().Delegate("operator", "evil", "dpl",
		`func main() { exec("/bin/sh"); }`); err != nil {
		fmt.Println("translator rejected a misbehaving program:")
		fmt.Println("  ", err)
	}

	// 2. Instantiate: run it as a thread of the elastic process.
	dpi, err := srv.Process().Instantiate("operator", "iface-report", "main", int64(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instantiated %s\n", dpi.ID)

	// Keep the device's clock moving while the agent sleeps between
	// rounds.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				dev.Advance(50 * time.Millisecond)
				time.Sleep(50 * time.Millisecond)
			}
		}
	}()

	v, err := dpi.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance finished: %v (%d VM instructions)\n", v, dpi.Steps())
}
