// Mlm demonstrates the mid-level-manager configuration: an MbD server
// fronts a LAN of dumb SNMP-only devices (the RMON-probe role the
// dissertation discusses). The top-level manager delegates ONE
// aggregation agent to the MbD server; the agent polls the subordinate
// devices over the (cheap, local) LAN through the snmpGet proxy host
// function and reports a single LAN-wide summary upstream. The
// alternative — the central manager polling every device across the
// WAN — is shown for contrast.
//
//	go run ./examples/mlm
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/mbd"
	"mbd/internal/mib"
	"mbd/internal/snmp"
)

const subordinates = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The LAN: six SNMP-only devices with varying load.
	devs := make([]*mib.Device, subordinates)
	for i := range devs {
		dev, err := mib.NewDevice(mib.DeviceConfig{Name: fmt.Sprintf("hub-%d", i), Seed: int64(i + 1)})
		if err != nil {
			return err
		}
		dev.SetLoad(mib.LoadProfile{
			Utilization:       0.1 + 0.12*float64(i),
			BroadcastFraction: 0.03,
			ErrorRate:         0.001 * float64(i),
			CollisionRate:     0.02,
		})
		dev.Advance(60 * time.Second)
		devs[i] = dev
	}

	// The MbD server on the same LAN, fronting them.
	mlmDev, err := mib.NewDevice(mib.DeviceConfig{Name: "mlm-gateway", Seed: 99})
	if err != nil {
		return err
	}
	srv, err := mbd.New(mbd.Config{Device: mlmDev})
	if err != nil {
		return err
	}
	defer srv.Stop()
	for i, dev := range devs {
		agent := snmp.NewAgent(dev.Tree(), "public")
		srv.AddPeer(fmt.Sprintf("hub-%d", i), snmp.NewClient(snmp.AgentTripper(agent), "public"))
	}

	// The aggregation agent: poll every subordinate's private counters
	// locally, compute per-device utilization over a 10 s window, and
	// report one summary line upstream.
	src := fmt.Sprintf(`
func main() {
	var names = [%s];
	var before = [];
	for (var i = 0; i < len(names); i += 1) {
		append(before, snmpGet(names[i], "1.3.6.1.4.1.45.1.3.2.1.0"));
	}
	// The window elapses (driven by the host below).
	recv(-1);
	var worst = ""; var worstU = 0.0; var total = 0.0;
	for (var i = 0; i < len(names); i += 1) {
		var after = snmpGet(names[i], "1.3.6.1.4.1.45.1.3.2.1.0");
		var u = float(after - before[i]) / (10.0 * 10000000.0);
		total += u;
		if (u > worstU) { worstU = u; worst = names[i]; }
	}
	report(sprintf("LAN mean utilization %%f, worst %%s at %%f", total / float(len(names)), worst, worstU));
	return worstU;
}`, quotedNames())

	done := make(chan struct{})
	cancel := srv.Process().Subscribe(func(ev elastic.Event) {
		if ev.Kind == elastic.EventReport {
			fmt.Println("upstream report:", ev.Payload)
		}
		if ev.Kind == elastic.EventExit {
			close(done)
		}
	})
	defer cancel()

	if err := srv.Process().Delegate("noc", "lan-summary", "dpl", src); err != nil {
		return err
	}
	d, err := srv.Process().Instantiate("noc", "lan-summary", "main")
	if err != nil {
		return err
	}
	fmt.Printf("delegated LAN aggregation agent %s to the mid-level manager\n", d.ID)

	// Advance the measurement window on every device, then release the
	// agent.
	time.Sleep(20 * time.Millisecond)
	for _, dev := range devs {
		dev.Advance(10 * time.Second)
	}
	if err := srv.Process().Send("noc", d.ID, "window elapsed"); err != nil {
		return err
	}
	worst, err := d.Wait(context.Background())
	if err != nil {
		return err
	}
	<-done

	fmt.Printf("\nWAN cost of this summary: ONE delegated report.\n")
	fmt.Printf("Central alternative: %d devices x 2 samples x 1 counter = %d WAN round trips per window.\n",
		subordinates, subordinates*2)
	fmt.Printf("(worst segment utilization observed: %.2f — hub-%d has the highest offered load)\n",
		worst.(float64), subordinates-1)
	return nil
}

func quotedNames() string {
	out := ""
	for i := 0; i < subordinates; i++ {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%q", fmt.Sprintf("hub-%d", i))
	}
	return out
}
