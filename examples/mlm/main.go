// Mlm demonstrates the federated mid-level-manager configuration: a
// two-tier management domain tree built from real MbD servers on real
// TCP sockets. Two leaf servers ("lan-a", "lan-b") each front a LAN
// segment; both join the campus root ("noc") as members. The operator
// cascades ONE delegation to the root, which fans it out through the
// tree — every hop re-running the static-analysis admission gate — and
// each member's reports roll up the tree into a single combined value
// at the root, walkable in the federation MIB subtree
// (1.3.6.1.4.1.424242.3) like any managed object.
//
// The paper's point, now one level higher: instead of the NOC polling
// every device (or even every server), it delegates once and reads one
// number.
//
//	go run ./examples/mlm
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"mbd/internal/federation"
	"mbd/internal/mbd"
	"mbd/internal/mib"
	"mbd/internal/oid"
	"mbd/internal/rds"
)

// tier is one running federated MbD server.
type tier struct {
	name string
	srv  *mbd.Server
	lis  net.Listener
	stop context.CancelFunc
}

// startTier boots an MbD server federated into domain, listening on a
// fresh loopback port, and serving RDS with its federation node
// installed.
func startTier(name, domain, parent string, comb federation.Combiner, load float64, seed int64) (*tier, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: name, Seed: seed})
	if err != nil {
		lis.Close()
		return nil, err
	}
	dev.SetLoad(mib.LoadProfile{Utilization: load, BroadcastFraction: 0.03, CollisionRate: 0.02})
	dev.Advance(60 * time.Second)

	srv, err := mbd.New(mbd.Config{
		Device: dev,
		Federation: &federation.Config{
			Name:              name,
			Domain:            domain,
			Parent:            parent,
			Advertise:         lis.Addr().String(),
			Combiner:          comb,
			HeartbeatInterval: 100 * time.Millisecond,
		},
	})
	if err != nil {
		lis.Close()
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	rdsSrv := rds.NewServer(srv.Process(), nil, rds.WithPeerHandler(srv.Federation()))
	go rdsSrv.Serve(ctx, lis)
	return &tier{name: name, srv: srv, lis: lis, stop: stop}, nil
}

func (t *tier) close() {
	t.stop()
	t.srv.Stop()
}

// agentSrc is the delegated monitoring agent: sample the device's
// private octet counter twice across a one-second window and report the
// observed byte rate. Every member of the domain tree runs its own
// copy against its own local MIB.
const agentSrc = `
func main() {
	var before = mibGet("1.3.6.1.4.1.45.1.3.2.1.0");
	sleep(1000);
	var after = mibGet("1.3.6.1.4.1.45.1.3.2.1.0");
	report(sprintf("%d", after - before));
	return after - before;
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The campus root sums its members' reports; the leaves just pass
	// their latest local value upward.
	root, err := startTier("noc", "campus", "", federation.Sum(), 0.1, 1)
	if err != nil {
		return err
	}
	defer root.close()
	rootAddr := root.lis.Addr().String()

	leaves := make([]*tier, 0, 2)
	for i, cfg := range []struct {
		name string
		load float64
	}{{"lan-a", 0.3}, {"lan-b", 0.7}} {
		leaf, err := startTier(cfg.name, "lan-"+string('a'+rune(i)), rootAddr, nil, cfg.load, int64(i+2))
		if err != nil {
			return err
		}
		defer leaf.close()
		leaves = append(leaves, leaf)
	}

	// Drive every device in real time so the delegated samplers see
	// moving counters.
	driveCtx, stopDriving := context.WithCancel(context.Background())
	defer stopDriving()
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				root.srv.Device().Advance(100 * time.Millisecond)
				for _, l := range leaves {
					l.srv.Device().Advance(100 * time.Millisecond)
				}
			case <-driveCtx.Done():
				return
			}
		}
	}()

	// Wait for both leaves to register with the root.
	if err := waitFor(5*time.Second, func() bool {
		return len(root.srv.Federation().MembersSnapshot()) == 2
	}); err != nil {
		return fmt.Errorf("leaves never joined the campus domain: %w", err)
	}
	fmt.Println("domain tree up: noc (campus) <- lan-a, lan-b")

	// ONE cascaded delegation at the root reaches every member.
	client, err := rds.Dial(rootAddr, "noc-operator")
	if err != nil {
		return err
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := client.PeerDelegate(ctx, "octet-rate", agentSrc, "main")
	if err != nil {
		return err
	}
	fmt.Printf("cascaded %q: %d accepted, %d rejected\n", res.DP, res.Accepted(), res.Rejected())
	for _, o := range res.Outcomes {
		state := "accepted"
		if !o.OK {
			state = "rejected: " + o.Err
		}
		fmt.Printf("  %-8s (%-8s via %-21s) %s %s\n", o.Member, o.Domain, o.Addr, state, o.DPI)
	}

	// The members' reports roll up: each leaf contributes its byte
	// rate, the root adds its own, and the sum appears as one value.
	if err := waitFor(15*time.Second, func() bool {
		for _, row := range root.srv.Federation().Rollup().Rows() {
			if row.Key == "octet-rate" && row.Contributors == 3 {
				return true
			}
		}
		return false
	}); err != nil {
		return fmt.Errorf("rollup never converged: %w", err)
	}
	sum, _ := root.srv.Federation().Rollup().Value("octet-rate")
	fmt.Printf("\ncampus-wide octet rate (sum of 3 members): %s bytes/s\n", sum)

	// The same value is a managed object: walk the federation subtree.
	fmt.Println("\nfederation MIB subtree at the root:")
	n := 0
	root.srv.Device().Tree().Walk(federation.OIDFederation, func(o oid.OID, v mib.Value) bool {
		fmt.Printf("  %s = %s\n", o, v)
		n++
		return n < 24
	})

	fmt.Println("\nWAN cost of the campus summary: ONE cascaded delegation, rollup deltas only.")
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("condition not met within %s", d)
}
