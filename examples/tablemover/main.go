// Tablemover replays the "moving large tables" scenario: an ATM-class
// switch with thousands of subscriber entries sits across a 254 ms WAN
// path. The operator needs the handful of entries matching a predicate.
// Compare walking the whole table over SNMP with installing a VDL view
// at the switch's MbD server.
//
//	go run ./examples/tablemover
package main

import (
	"fmt"
	"log"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
)

const subscribers = 2000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	link := netsim.WAN(254 * time.Millisecond)
	st, err := netsim.NewStation("atm-switch", 5, link, "public")
	if err != nil {
		return err
	}
	for i := 0; i < subscribers; i++ {
		st.Dev.OpenConn(mib.ConnID{
			LocalAddr: [4]byte{10, 0, 0, 1},
			LocalPort: 5060,
			RemAddr:   [4]byte{byte(12 + i%80), byte(i % 256), byte((i / 256) % 256), byte(1 + i%254)},
			RemPort:   uint16(30000 + (i*977)%20000),
		})
	}
	fmt.Printf("switch holds %d subscriber entries; link RTT %v\n\n", subscribers, link.RTT())

	// Centralized: walk everything, filter at the platform.
	sim := netsim.NewSim()
	var walkTr netsim.Traffic
	var walkTime time.Duration
	var cells int
	st.Walk(sim, "public", &walkTr, mib.OIDTCPConnEntry, func(vbs []snmp.VarBind) {
		cells = len(vbs)
		walkTime = sim.Now()
	})
	sim.Run(24 * time.Hour)
	fmt.Printf("SNMP walk:     %7d PDUs, %9d bytes, %12v  (%d cells hauled)\n",
		walkTr.Requests+walkTr.Responses, walkTr.Bytes(), walkTime.Round(time.Millisecond), cells)

	// Delegated: the view computes at the switch; only matches travel.
	viewSrc := `view premium {
  from tcpConnTable;
  select tcpConnRemAddress, tcpConnRemPort;
  where tcpConnRemPort < 31000;
}`
	mcva := vdl.NewMCVA(st.Dev.Tree(), vdl.MIB2())
	if _, err := mcva.Define(viewSrc); err != nil {
		return err
	}
	res, err := mcva.Query("premium")
	if err != nil {
		return err
	}

	sim2 := netsim.NewSim()
	var viewTr netsim.Traffic
	ses := netsim.NewSession(sim2, st, &viewTr)
	var viewTime time.Duration
	ses.Delegate("premium", viewSrc, func() {
		remaining := len(res.Rows)
		for _, r := range res.Rows {
			ses.Report("mcva#1", fmt.Sprintf("%v:%v", r.Cells[0], r.Cells[1]), func(string) {
				remaining--
				if remaining == 0 {
					viewTime = sim2.Now()
				}
			})
		}
	})
	sim2.Run(24 * time.Hour)
	fmt.Printf("delegated view: %6d frames, %9d bytes, %12v  (%d matching rows returned)\n",
		viewTr.Requests+viewTr.Responses, viewTr.Bytes(), viewTime.Round(time.Millisecond), len(res.Rows))

	fmt.Printf("\nthe view moved %.0fx fewer bytes and finished %.0fx sooner\n",
		float64(walkTr.Bytes())/float64(viewTr.Bytes()),
		float64(walkTime)/float64(viewTime))
	return nil
}
