package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes files (path -> source) under a temp dir and
// returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// messagesOf flattens findings to their messages for containment checks.
func messagesOf(fs []finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestVetFindsViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/metrics.go": `package a
func setup(reg *Registry) {
	reg.Counter("good_total", "fine")
	reg.Counter("Bad-Name", "mixed case and dash")
	reg.Counter("dup_total", "first")
	reg.Gauge("dup_total", "second site, not labeled")
	reg.LabeledCounter("outcomes_total", "h", "outcome", "ok")
	reg.LabeledCounter("outcomes_total", "h", "outcome", "fail")
	reg.FuncCounter(dynamicName, "non-literal names are out of scope")
}`,
		"internal/dpl/vm.go": `package dpl
import "fmt"
func step() string { return fmt.Sprintf("op=%d", 1) }
func exitPath() error { return fmt.Errorf("fine: %d", 2) }`,
		"internal/dpl/other.go": `package dpl
import "fmt"
func anywhere() string { return fmt.Sprintf("allowed outside hot files %d", 3) }`,
	})
	findings, err := vet([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	got := messagesOf(findings)
	for _, want := range []string{
		`"Bad-Name" is not lowercase snake_case`,
		`metric "dup_total" already registered`,
		"fmt.Sprintf in interpreter hot path",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("findings missing %q:\n%s", want, got)
		}
	}
	if len(findings) != 3 {
		t.Errorf("got %d findings, want exactly 3:\n%s", len(findings), got)
	}
	for _, benign := range []string{"good_total", "outcomes_total", "other.go"} {
		if strings.Contains(got, benign) {
			t.Errorf("false positive mentioning %q:\n%s", benign, got)
		}
	}
}

func TestVetSkipsTestdataAndTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/testdata/bad.go": `package bad
func f(reg *Registry) { reg.Counter("In-Testdata", "") }`,
		"a/metrics_test.go": `package a
func f(reg *Registry) {
	reg.Counter("In-Test-File", "")
	reg.Counter("x_total", "")
	reg.Counter("x_total", "tests may re-register freely")
}`,
		"a/ok.go": `package a
func f(reg *Registry) { reg.Counter("ok_total", "") }`,
	})
	findings, err := vet([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("want no findings from testdata/_test.go, got:\n%s", messagesOf(findings))
	}
}

// TestVetDuplicateAcrossFiles pins that the one-site rule is global,
// not per-file, and that a Labeled/unlabeled mix is still a violation.
func TestVetDuplicateAcrossFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/one.go": `package a
func f(reg *Registry) { reg.LabeledCounter("mix_total", "", "k", "v") }`,
		"b/two.go": `package b
func g(reg *Registry) { reg.Counter("mix_total", "") }`,
	})
	findings, err := vet([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, `"mix_total"`) {
		t.Fatalf("want one mixed-duplicate finding, got:\n%s", messagesOf(findings))
	}
}

// TestVetRepoIsClean runs the checker over the real repository: the
// rules it enforces must hold on the code that ships them.
func TestVetRepoIsClean(t *testing.T) {
	findings, err := vet([]string{"../.."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository violates its own vet rules:\n%s", messagesOf(findings))
	}
}

// TestVetHotLoopRule pins rule 3: allocations and closures inside an
// mbd:hotloop-marked function are findings, mbd:alloc-ok lines and
// unmarked functions are not, and the marker only counts when it starts
// a line of the doc comment.
func TestVetHotLoopRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/hot.go": `package a

// dispatch is the hot loop.
//
// mbd:hotloop — no allocations here.
func dispatch() {
	s := make([]int, 4)
	s = append(s, 1)
	p := new(int)
	v := struct{ x int }{x: *p}
	f := func() int { return v.x + make([]int, 1)[0] }
	ok := make([]int, 8) //mbd:alloc-ok — amortized growth
	_, _, _ = s, f, ok
}

// cold merely mentions mbd:hotloop in prose, so it is not opted in.
func cold() { _ = make([]int, 4) }
`,
	})
	findings, err := vet([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	got := messagesOf(findings)
	for _, want := range []string{
		"make call",
		"append call",
		"new call",
		"composite literal allocation",
		"closure literal",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("findings missing %q:\n%s", want, got)
		}
	}
	// make, append, new, composite literal, closure — the closure's
	// interior make is the closure's problem, and the alloc-ok line and
	// the unmarked function are exempt.
	if len(findings) != 5 {
		t.Errorf("got %d findings, want exactly 5:\n%s", len(findings), got)
	}
	if strings.Contains(got, "cold") {
		t.Errorf("false positive in unmarked function:\n%s", got)
	}
}
