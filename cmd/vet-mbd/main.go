// Command vet-mbd is this repository's project-specific static checker,
// run by the CI lint job alongside go vet. It enforces two house rules
// that ordinary vet cannot:
//
//  1. Observability metric names passed to obs registration methods
//     (Counter, Gauge, Histogram, FuncCounter, FuncGauge,
//     LabeledCounter) must be lowercase snake_case
//     (^[a-z][a-z0-9_]*$) and each name must be registered at exactly
//     one call site — except that one name MAY appear at several sites
//     when every one of them is a LabeledCounter registration (the
//     per-label-value handles of one logical series, e.g.
//     federation_fanout_outcomes_total's accepted/rejected pair).
//
//  2. The interpreter hot paths — internal/dpl/vm.go and
//     internal/dpl/interp.go — must not call fmt.Sprintf. Per-step
//     formatting allocates on every executed instruction; errors there
//     use fmt.Errorf on exit paths or preformatted strings.
//
//  3. Functions whose doc comment carries an "mbd:hotloop" marker (the
//     VM dispatch loop) must not contain closure literals or syntactic
//     heap allocations — make/new/append calls and composite literals.
//     A closure would force every captured variable to the heap and
//     defeat the register-like locals of the dispatch loop; an
//     allocation per dispatched instruction destroys the steady-state
//     0 allocs/op property the benchmarks gate on. Intentional
//     amortized or program-driven allocations are exempted by an
//     "mbd:alloc-ok" comment on the same line.
//
// Usage: vet-mbd [dir ...] (default "."). It walks each directory,
// skipping testdata, vendor and hidden directories and _test.go files,
// and prints findings as path:line:col: message. Exit status: 0 clean,
// 1 findings, 2 usage or parse failure.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricMethods are the obs.Registry registration methods whose first
// argument is a metric name.
var metricMethods = map[string]bool{
	"Counter":        true,
	"Gauge":          true,
	"Histogram":      true,
	"FuncCounter":    true,
	"FuncGauge":      true,
	"LabeledCounter": true,
}

// metricName is the allowed shape of a metric name: Prometheus-style
// lowercase snake_case.
var metricName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// hotFiles are the interpreter files where fmt.Sprintf is banned
// (matched as a path suffix after slash normalization).
var hotFiles = []string{"internal/dpl/vm.go", "internal/dpl/interp.go"}

// finding is one rule violation at a source position.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.msg)
}

// regSite is one metric registration call site.
type regSite struct {
	pos     token.Position
	method  string
	labeled bool
}

// vet walks the given directories and returns every finding, sorted by
// position. It fails (error, not finding) only on I/O or parse trouble.
func vet(dirs []string) ([]finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != dir) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			files = append(files, f)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []finding
	regs := map[string][]regSite{} // metric name -> registration sites
	for _, f := range files {
		hot := isHotFile(fset.Position(f.Pos()).Filename)
		out = append(out, checkHotLoops(fset, f)...)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if hot && sel.Sel.Name == "Sprintf" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
					out = append(out, finding{
						pos: fset.Position(call.Pos()),
						msg: "fmt.Sprintf in interpreter hot path (allocates per step; use fmt.Errorf on exit paths or preformat)",
					})
				}
			}
			if !metricMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic name (table-driven registration): out of scope
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			pos := fset.Position(lit.Pos())
			if !metricName.MatchString(name) {
				out = append(out, finding{
					pos: pos,
					msg: fmt.Sprintf("metric name %q is not lowercase snake_case (want %s)", name, metricName),
				})
			}
			regs[name] = append(regs[name], regSite{
				pos: pos, method: sel.Sel.Name,
				labeled: sel.Sel.Name == "LabeledCounter",
			})
			return true
		})
	}

	for name, sites := range regs {
		if len(sites) < 2 {
			continue
		}
		allLabeled := true
		for _, s := range sites {
			allLabeled = allLabeled && s.labeled
		}
		if allLabeled {
			continue // one logical labeled series, many handles: fine
		}
		for _, s := range sites[1:] {
			out = append(out, finding{
				pos: s.pos,
				msg: fmt.Sprintf("metric %q already registered at %s:%d (%s); duplicate names are only allowed when every site is a LabeledCounter",
					name, sites[0].pos.Filename, sites[0].pos.Line, sites[0].method),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// allocBuiltins are the builtin calls that always heap-allocate (or, for
// append, may) when they appear in a dispatch loop.
var allocBuiltins = map[string]bool{"make": true, "new": true, "append": true}

// checkHotLoops enforces rule 3: no closure literals and no syntactic
// allocations inside functions whose doc comment carries mbd:hotloop,
// except on lines annotated mbd:alloc-ok.
func checkHotLoops(fset *token.FileSet, f *ast.File) []finding {
	allocOK := map[int]bool{} // source lines carrying an mbd:alloc-ok comment
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "mbd:alloc-ok") {
				allocOK[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var out []finding
	flag := func(n ast.Node, fn *ast.FuncDecl, what string) {
		pos := fset.Position(n.Pos())
		if allocOK[pos.Line] {
			return
		}
		out = append(out, finding{
			pos: pos,
			msg: fmt.Sprintf("%s in mbd:hotloop function %s (annotate the line mbd:alloc-ok only if the allocation is amortized or program-driven)", what, fn.Name.Name),
		})
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil || fn.Body == nil || !hasHotLoopMarker(fn.Doc.Text()) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				flag(x, fn, "closure literal (captures escape to the heap)")
				return false // interior allocations are the closure's problem
			case *ast.CompositeLit:
				flag(x, fn, "composite literal allocation")
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && allocBuiltins[id.Name] {
					flag(x, fn, fmt.Sprintf("%s call", id.Name))
				}
			}
			return true
		})
	}
	return out
}

// hasHotLoopMarker reports whether a doc comment opts the function into
// rule 3. The marker must start a line of the comment, so prose that
// merely mentions the marker name (this checker's own documentation)
// does not opt in.
func hasHotLoopMarker(doc string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "mbd:hotloop") {
			return true
		}
	}
	return false
}

// isHotFile reports whether path is one of the Sprintf-banned
// interpreter files.
func isHotFile(path string) bool {
	p := filepath.ToSlash(path)
	for _, h := range hotFiles {
		if p == h || strings.HasSuffix(p, "/"+h) {
			return true
		}
	}
	return false
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	findings, err := vet(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-mbd:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
