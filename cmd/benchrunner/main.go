// Command benchrunner regenerates every table and figure of the
// evaluation (DESIGN.md §4) and prints them to stdout.
//
// Usage:
//
//	benchrunner             # run everything, in order (~40 s)
//	benchrunner -quick      # bounded configurations (seconds)
//	benchrunner -list       # list experiment ids
//	benchrunner -only E3    # run one experiment
//	benchrunner -json       # machine-readable results (one JSON doc)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mbd/internal/experiments"
)

// jsonResult is one experiment's outcome in -json mode. The table is
// embedded verbatim so downstream tooling (baselines, dashboards,
// cross-run diffs) can consume every cell without scraping text.
type jsonResult struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Headers    []string   `json:"headers"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	Error      string     `json:"error,omitempty"`
	DurationMS int64      `json:"duration_ms"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("only", "", "run a single experiment by id")
	quick := flag.Bool("quick", false, "bounded configurations for CI-speed runs")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of rendered tables")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Brief)
		}
		return
	}
	run := experiments.All()
	if *quick {
		run = experiments.Quick()
	}
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	failed := false
	var results []jsonResult
	for _, e := range run {
		start := time.Now()
		tb, err := e.Run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			if *asJSON {
				results = append(results, jsonResult{ID: e.ID, Error: err.Error(), DurationMS: elapsed.Milliseconds()})
			}
			continue
		}
		if *asJSON {
			results = append(results, jsonResult{
				ID: tb.ID, Title: tb.Title, Headers: tb.Headers, Rows: tb.Rows,
				Notes: tb.Notes, DurationMS: elapsed.Milliseconds(),
			})
			continue
		}
		fmt.Println(tb)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
