// Command benchrunner regenerates every table and figure of the
// evaluation (DESIGN.md §4) and prints them to stdout.
//
// Usage:
//
//	benchrunner             # run everything, in order (~40 s)
//	benchrunner -quick      # bounded configurations (seconds)
//	benchrunner -list       # list experiment ids
//	benchrunner -only E3    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mbd/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("only", "", "run a single experiment by id")
	quick := flag.Bool("quick", false, "bounded configurations for CI-speed runs")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Brief)
		}
		return
	}
	run := experiments.All()
	if *quick {
		run = experiments.Quick()
	}
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	failed := false
	for _, e := range run {
		start := time.Now()
		tb, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Println(tb)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
