// Command mbdserver runs an MbD server on real sockets: an elastic
// process accepting RDS delegations on a TCP port, co-located with a
// simulated managed device whose MIB is served by an SNMP agent on a
// UDP port. A background driver advances the device's virtual traffic
// in real time so counters move while you watch.
//
// Usage:
//
//	mbdserver [-rds :5500] [-snmp :1161] [-name lab-router]
//	          [-community public] [-secret mgr=s3cret ...] [-repo dir]
//	          [-strict] [-costceiling n] [-obs :9090] [-views file.vdl]
//	          [-quota spec] [-tenantquota principal:spec ...]
//	          [-schedworkers n] [-maxrepo bytes]
//
// Multi-tenant isolation: -quota sets the default per-principal quota
// (spec keys: dpis, steps, events, repo, reqs, weight — see mbdctl
// tenant quota), -tenantquota grants per-principal overrides,
// -schedworkers sizes the weighted-fair DPI scheduler's run-slot pool,
// and -maxrepo caps total stored program bytes. See docs/TENANCY.md.
//
// With -obs, the server exposes its own telemetry three ways: an HTTP
// endpoint serving Prometheus /metrics, /debug/pprof/* and /tracez; the
// same counters self-published as a read-only MIB subtree
// (1.3.6.1.4.1.424242.2) walkable over SNMP like any managed object —
// the management system managing itself; and the RDS stats operation
// (mbdctl stats / mbdctl trace).
//
// Every delegation passes through the static analyzer at admission;
// -strict rejects programs carrying any analyzer warning, and
// -costceiling n refuses programs whose estimated instruction cost
// exceeds n (unbounded programs included).
//
// With -repo, delegated programs load from dir/*.dpl at startup (each
// re-checked by the Translator) and the repository is saved back on
// shutdown — the paper's file-system-backed Repository. The directory
// doubles as a warm-restart checkpoint: shutdown also records the
// still-running instances (dpis.json), and the next boot re-admits the
// programs and re-instantiates the ones delegated with restart policy
// "always".
//
// Shutdown is graceful: on SIGTERM/SIGINT the server stops accepting,
// gives each live RDS connection -drain to finish its in-flight request
// and flush events, checkpoints the repository, and only then stops the
// elastic process.
//
// With -domain, the server joins (or roots) a management domain: each
// member sends its parent one coalesced sync frame per heartbeat —
// liveness, pending rollup deltas, and its golden-bundle inventory in a
// single round trip — and serves the domain bundle operations (mbdctl
// domain rollout / rollback / bundles) for content-addressed,
// atomically-switched program distribution.
//
// With -views, the server keeps the VDL views in the file continuously
// materialized through the incremental view engine (O(delta) work per
// MIB write) and serves them over the RDS view operation (mbdctl view
// status / define / query / watch). See docs/VDL.md.
//
// With one or more -secret principal=secret flags, RDS requests must
// carry a valid MD5 digest; otherwise authentication is off (the first
// prototype's behavior).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/federation"
	"mbd/internal/mbd"
	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/obs/obsmib"
	"mbd/internal/rds"
	"mbd/internal/vdl"
)

type secretsFlag []string

func (s *secretsFlag) String() string { return strings.Join(*s, ",") }
func (s *secretsFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want principal=secret, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

// tenantQuotaFlag collects repeatable -tenantquota principal:spec
// overrides, each spec in elastic.ParseQuota form.
type tenantQuotaFlag map[string]elastic.Quota

func (t tenantQuotaFlag) String() string { return fmt.Sprintf("%d overrides", len(t)) }
func (t tenantQuotaFlag) Set(v string) error {
	principal, spec, ok := strings.Cut(v, ":")
	if !ok || principal == "" {
		return fmt.Errorf("want principal:quota-spec, got %q", v)
	}
	q, err := elastic.ParseQuota(spec)
	if err != nil {
		return err
	}
	t[principal] = q
	return nil
}

func main() {
	rdsAddr := flag.String("rds", ":5500", "RDS (delegation) TCP listen address")
	snmpAddr := flag.String("snmp", ":1161", "SNMP UDP listen address")
	name := flag.String("name", "lab-router", "device sysName")
	community := flag.String("community", "public", "SNMP community")
	repoDir := flag.String("repo", "", "directory backing the DP repository (load at start, save at exit)")
	strict := flag.Bool("strict", false, "strict admission: reject delegations with any analyzer warning")
	costCeiling := flag.Uint64("costceiling", 0, "reject delegations whose estimated cost exceeds this (0 = off; nonzero also rejects unbounded programs)")
	obsAddr := flag.String("obs", "", "observability HTTP listen address (/metrics, /debug/pprof, /tracez); empty disables")
	viewsFile := flag.String("views", "", "VDL file whose views are kept continuously materialized (empty = engine on, no initial views)")
	drain := flag.Duration("drain", 2*time.Second, "graceful-shutdown drain grace per RDS connection (0 = close immediately)")
	domain := flag.String("domain", "", "management domain this server roots; empty disables federation")
	parent := flag.String("parent", "", "parent domain root's RDS address (empty = top root)")
	advertise := flag.String("advertise", "", "RDS address peers use to reach this server (default derives from -rds)")
	rollup := flag.String("rollup", "latest", "default rollup combiner: sum, max or latest")
	heartbeat := flag.Duration("heartbeat", time.Second, "federation heartbeat interval")
	quotaSpec := flag.String("quota", "", "default per-principal quota, e.g. dpis=8,steps=200000,events=50,repo=65536,reqs=100,weight=1 (empty = unlimited)")
	schedWorkers := flag.Int("schedworkers", 0, "weighted-fair DPI scheduler run slots (0 = max(2, GOMAXPROCS), negative disables scheduling)")
	maxRepo := flag.Int64("maxrepo", 0, "repository byte ceiling across all principals (0 = 64 MiB default, negative = unlimited)")
	tenantQuotas := tenantQuotaFlag{}
	flag.Var(tenantQuotas, "tenantquota", "per-principal quota override as principal:spec (repeatable)")
	var secrets secretsFlag
	flag.Var(&secrets, "secret", "principal=secret for MD5 auth (repeatable)")
	flag.Parse()

	quota, err := elastic.ParseQuota(*quotaSpec)
	if err != nil {
		log.Fatal(err)
	}
	ten := tenancyConfig{Quota: quota, TenantQuotas: tenantQuotas,
		SchedWorkers: *schedWorkers, MaxRepositoryBytes: *maxRepo}
	fed := fedConfig{Domain: *domain, Parent: *parent, Advertise: *advertise,
		Rollup: *rollup, Heartbeat: *heartbeat}
	if err := run(*rdsAddr, *snmpAddr, *name, *community, *repoDir, secrets, *strict, *costCeiling, *obsAddr, *viewsFile, *drain, fed, ten); err != nil {
		log.Fatal(err)
	}
}

// tenancyConfig carries the multi-tenant flags into run.
type tenancyConfig struct {
	Quota              elastic.Quota
	TenantQuotas       map[string]elastic.Quota
	SchedWorkers       int
	MaxRepositoryBytes int64
}

// fedConfig carries the federation flags into run.
type fedConfig struct {
	Domain    string
	Parent    string
	Advertise string
	Rollup    string
	Heartbeat time.Duration
}

// combiner maps the -rollup flag to a federation combiner.
func (f fedConfig) combiner() (federation.Combiner, error) {
	switch f.Rollup {
	case "", "latest":
		return federation.Latest(), nil
	case "sum":
		return federation.Sum(), nil
	case "max":
		return federation.Max(), nil
	}
	return nil, fmt.Errorf("unknown -rollup combiner %q (want sum, max or latest)", f.Rollup)
}

// advertiseAddr derives a dialable advertised address from the RDS
// listen address when -advertise is not given.
func (f fedConfig) advertiseAddr(rdsAddr string) string {
	if f.Advertise != "" {
		return f.Advertise
	}
	if strings.HasPrefix(rdsAddr, ":") {
		return "127.0.0.1" + rdsAddr
	}
	return rdsAddr
}

func run(rdsAddr, snmpAddr, name, community, repoDir string, secrets []string, strict bool, costCeiling uint64, obsAddr, viewsFile string, drain time.Duration, fed fedConfig, ten tenancyConfig) error {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: name, Interfaces: 4, Seed: time.Now().UnixNano()})
	if err != nil {
		return err
	}
	dev.AddRoute([4]byte{0, 0, 0, 0}, 1, 1, [4]byte{10, 0, 0, 254})

	// Give delegated programs the MCVA's view services too.
	mcva := vdl.NewMCVA(dev.Tree(), vdl.MIB2())
	if err := dev.Tree().Mount(vdl.OIDViews, mcva.Handler()); err != nil {
		return err
	}

	// Observability: one registry and trace ring shared by every layer.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if obsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(1024)
		reg.FuncGauge("go_goroutines", "live goroutines", func() int64 {
			return int64(runtime.NumGoroutine())
		})
		reg.FuncGauge("go_heap_alloc_bytes", "heap bytes in use", func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		})
	}

	var auth *rds.Authenticator
	if len(secrets) > 0 {
		auth = rds.NewAuthenticator()
		for _, kv := range secrets {
			parts := strings.SplitN(kv, "=", 2)
			auth.SetSecret(parts[0], parts[1])
		}
	}

	var fedCfg *federation.Config
	if fed.Domain != "" {
		comb, err := fed.combiner()
		if err != nil {
			return err
		}
		fedCfg = &federation.Config{
			Name:              name,
			Domain:            fed.Domain,
			Parent:            fed.Parent,
			Advertise:         fed.advertiseAddr(rdsAddr),
			Auth:              auth,
			Combiner:          comb,
			HeartbeatInterval: fed.Heartbeat,
		}
	}

	var viewDefs []string
	if viewsFile != "" {
		src, err := os.ReadFile(viewsFile)
		if err != nil {
			return fmt.Errorf("reading -views file: %w", err)
		}
		viewDefs = append(viewDefs, string(src))
	}

	srv, err := mbd.New(mbd.Config{
		Device:          dev,
		Community:       community,
		ExtraBindings:   mcva.Bindings(),
		EnableViews:     true,
		ViewDefs:        viewDefs,
		MaxDPIs:         256,
		StrictAdmission: strict,
		CostCeiling:     costCeiling,
		Obs:             reg,
		Tracer:          tracer,
		Federation:      fedCfg,

		Quota:              ten.Quota,
		TenantQuotas:       ten.TenantQuotas,
		SchedWorkers:       ten.SchedWorkers,
		MaxRepositoryBytes: ten.MaxRepositoryBytes,
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	if repoDir != "" {
		if err := os.MkdirAll(repoDir, 0o755); err != nil {
			return fmt.Errorf("creating repository dir: %w", err)
		}
		// Warm restart: re-admit stored programs and re-instantiate the
		// checkpoint's always-policy instances through the normal
		// analysis/admission gate.
		nDP, nDPI, err := srv.Process().LoadCheckpoint(repoDir, "repository")
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
		log.Printf("loaded %d delegated programs from %s, re-instantiated %d always-restart instances", nDP, repoDir, nDPI)
		// Registered after `defer srv.Stop()`, so it runs first — while
		// the instances whose specs the checkpoint records still live.
		defer func() {
			if err := srv.Process().SaveCheckpoint(repoDir); err != nil {
				log.Printf("saving checkpoint: %v", err)
			} else {
				log.Printf("checkpoint saved to %s", repoDir)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive the device: nominal load advancing in real time.
	dev.SetLoad(mib.LoadProfile{Utilization: 0.2, BroadcastFraction: 0.04, ErrorRate: 0.002, CollisionRate: 0.03})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				dev.Advance(time.Second)
			case <-ctx.Done():
				return
			}
		}
	}()

	// SNMP agent, serving its own protocol counters as the snmp group.
	if err := srv.Agent().MountStats(dev.Tree()); err != nil {
		return err
	}
	pc, err := net.ListenPacket("udp", snmpAddr)
	if err != nil {
		return fmt.Errorf("snmp listen: %w", err)
	}
	go func() {
		if err := srv.Agent().ServeUDP(ctx, pc); err != nil {
			log.Printf("snmp agent: %v", err)
		}
	}()
	log.Printf("SNMP agent on %s (community %q)", pc.LocalAddr(), community)

	// Log DPI events to the console.
	cancel := srv.Process().Subscribe(func(ev elastic.Event) {
		log.Printf("[%s] %s: %s", ev.DPI, ev.Kind, ev.Payload)
	})
	defer cancel()

	// RDS server (its protocol counters join the shared registry; when
	// -obs is off it publishes on the process's private one).
	srvOpts := []rds.ServerOption{rds.WithDrainGrace(drain)}
	if reg != nil {
		srvOpts = append(srvOpts, rds.WithObs(reg), rds.WithTracer(tracer))
	}
	if node := srv.Federation(); node != nil {
		srvOpts = append(srvOpts, rds.WithPeerHandler(node))
		log.Printf("federation: domain %q as %q (parent %q, advertise %s, rollup %s)",
			fed.Domain, name, fed.Parent, fed.advertiseAddr(rdsAddr), fed.Rollup)
	}
	if views := srv.Views(); views != nil {
		srvOpts = append(srvOpts, rds.WithViewHandler(views))
		if n := len(views.Views()); n > 0 {
			log.Printf("views: %d continuously materialized from %s", n, viewsFile)
		}
	}
	rdsSrv := rds.NewServer(srv.Process(), auth, srvOpts...)

	// Observability endpoint + reflexive self-stats MIB subtree: the
	// same registry is scraped over HTTP and walked over SNMP.
	if reg != nil {
		if err := obsmib.Mount(dev.Tree(), reg, obsmib.OIDSelfStats); err != nil {
			return fmt.Errorf("mounting self-stats subtree: %w", err)
		}
		ol, err := net.Listen("tcp", obsAddr)
		if err != nil {
			return fmt.Errorf("obs listen: %w", err)
		}
		hs := &http.Server{Handler: obs.Handler(reg, tracer)}
		go func() {
			<-ctx.Done()
			hs.Close()
		}()
		go func() {
			if err := hs.Serve(ol); err != nil && err != http.ErrServerClosed {
				log.Printf("obs endpoint: %v", err)
			}
		}()
		log.Printf("observability endpoint on http://%s/metrics (self-MIB at %s)",
			ol.Addr(), obsmib.OIDSelfStats)
	}

	l, err := net.Listen("tcp", rdsAddr)
	if err != nil {
		return fmt.Errorf("rds listen: %w", err)
	}
	log.Printf("RDS delegation service on %s (auth: %v)", l.Addr(), auth != nil)
	go func() {
		<-ctx.Done()
		log.Printf("shutdown signal: draining connections (grace %s)", drain)
	}()
	return rdsSrv.Serve(ctx, l)
}
