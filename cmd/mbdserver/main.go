// Command mbdserver runs an MbD server on real sockets: an elastic
// process accepting RDS delegations on a TCP port, co-located with a
// simulated managed device whose MIB is served by an SNMP agent on a
// UDP port. A background driver advances the device's virtual traffic
// in real time so counters move while you watch.
//
// Usage:
//
//	mbdserver [-rds :5500] [-snmp :1161] [-name lab-router]
//	          [-community public] [-secret mgr=s3cret ...] [-repo dir]
//	          [-strict] [-costceiling n]
//
// Every delegation passes through the static analyzer at admission;
// -strict rejects programs carrying any analyzer warning, and
// -costceiling n refuses programs whose estimated instruction cost
// exceeds n (unbounded programs included).
//
// With -repo, delegated programs load from dir/*.dpl at startup (each
// re-checked by the Translator) and the repository is saved back on
// shutdown — the paper's file-system-backed Repository.
//
// With one or more -secret principal=secret flags, RDS requests must
// carry a valid MD5 digest; otherwise authentication is off (the first
// prototype's behavior).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/mbd"
	"mbd/internal/mib"
	"mbd/internal/rds"
	"mbd/internal/vdl"
)

type secretsFlag []string

func (s *secretsFlag) String() string { return strings.Join(*s, ",") }
func (s *secretsFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want principal=secret, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

func main() {
	rdsAddr := flag.String("rds", ":5500", "RDS (delegation) TCP listen address")
	snmpAddr := flag.String("snmp", ":1161", "SNMP UDP listen address")
	name := flag.String("name", "lab-router", "device sysName")
	community := flag.String("community", "public", "SNMP community")
	repoDir := flag.String("repo", "", "directory backing the DP repository (load at start, save at exit)")
	strict := flag.Bool("strict", false, "strict admission: reject delegations with any analyzer warning")
	costCeiling := flag.Uint64("costceiling", 0, "reject delegations whose estimated cost exceeds this (0 = off; nonzero also rejects unbounded programs)")
	var secrets secretsFlag
	flag.Var(&secrets, "secret", "principal=secret for MD5 auth (repeatable)")
	flag.Parse()

	if err := run(*rdsAddr, *snmpAddr, *name, *community, *repoDir, secrets, *strict, *costCeiling); err != nil {
		log.Fatal(err)
	}
}

func run(rdsAddr, snmpAddr, name, community, repoDir string, secrets []string, strict bool, costCeiling uint64) error {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: name, Interfaces: 4, Seed: time.Now().UnixNano()})
	if err != nil {
		return err
	}
	dev.AddRoute([4]byte{0, 0, 0, 0}, 1, 1, [4]byte{10, 0, 0, 254})

	// Give delegated programs the MCVA's view services too.
	mcva := vdl.NewMCVA(dev.Tree(), vdl.MIB2())
	if err := dev.Tree().Mount(vdl.OIDViews, mcva.Handler()); err != nil {
		return err
	}
	srv, err := mbd.New(mbd.Config{
		Device:          dev,
		Community:       community,
		ExtraBindings:   mcva.Bindings(),
		MaxDPIs:         256,
		StrictAdmission: strict,
		CostCeiling:     costCeiling,
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	if repoDir != "" {
		if err := os.MkdirAll(repoDir, 0o755); err != nil {
			return fmt.Errorf("creating repository dir: %w", err)
		}
		n, err := srv.Process().LoadRepository(repoDir, "repository")
		if err != nil {
			return fmt.Errorf("loading repository: %w", err)
		}
		log.Printf("loaded %d delegated programs from %s", n, repoDir)
		defer func() {
			if err := srv.Process().SaveRepository(repoDir); err != nil {
				log.Printf("saving repository: %v", err)
			}
		}()
	}

	var auth *rds.Authenticator
	if len(secrets) > 0 {
		auth = rds.NewAuthenticator()
		for _, kv := range secrets {
			parts := strings.SplitN(kv, "=", 2)
			auth.SetSecret(parts[0], parts[1])
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive the device: nominal load advancing in real time.
	dev.SetLoad(mib.LoadProfile{Utilization: 0.2, BroadcastFraction: 0.04, ErrorRate: 0.002, CollisionRate: 0.03})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				dev.Advance(time.Second)
			case <-ctx.Done():
				return
			}
		}
	}()

	// SNMP agent, serving its own protocol counters as the snmp group.
	if err := srv.Agent().MountStats(dev.Tree()); err != nil {
		return err
	}
	pc, err := net.ListenPacket("udp", snmpAddr)
	if err != nil {
		return fmt.Errorf("snmp listen: %w", err)
	}
	go func() {
		if err := srv.Agent().ServeUDP(ctx, pc); err != nil {
			log.Printf("snmp agent: %v", err)
		}
	}()
	log.Printf("SNMP agent on %s (community %q)", pc.LocalAddr(), community)

	// Log DPI events to the console.
	cancel := srv.Process().Subscribe(func(ev elastic.Event) {
		log.Printf("[%s] %s: %s", ev.DPI, ev.Kind, ev.Payload)
	})
	defer cancel()

	// RDS server.
	l, err := net.Listen("tcp", rdsAddr)
	if err != nil {
		return fmt.Errorf("rds listen: %w", err)
	}
	log.Printf("RDS delegation service on %s (auth: %v)", l.Addr(), auth != nil)
	return rds.NewServer(srv.Process(), auth).Serve(ctx, l)
}
