// Command benchgate is an in-repo, dependency-free benchstat-style
// regression gate: it parses `go test -bench` output, condenses
// repeated runs (-count=N) to per-benchmark medians, and compares them
// against a committed JSON baseline.
//
// Usage:
//
//	go test -run xxx -bench <gated> -count=5 . | benchgate -update   # refresh baseline
//	go test -run xxx -bench <gated> -count=5 . | benchgate           # enforce
//
// The gate fails (exit 1) when any benchmark present in the baseline
//
//   - regresses in ns/op by more than -threshold (default 15%), or
//   - allocates more per op than the baseline records (strict: any
//     increase in allocs/op fails, since the allocation-free hot paths
//     are an explicit design property), or
//   - is missing from the new output (a silently deleted benchmark
//     cannot guard anything).
//
// Benchmarks in the input but absent from the baseline are reported as
// informational and do not fail the gate; run -update to adopt them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file (BENCH_baseline.json).
type Baseline struct {
	// Note documents provenance for humans reading the diff.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's condensed reference numbers.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// sample is one parsed result line.
type sample struct {
	ns, bytes, allocs float64
	hasMem            bool
}

// parseBench reads `go test -bench` output, grouping repeated runs by
// benchmark name (GOMAXPROCS suffix stripped).
func parseBench(r *bufio.Scanner) (map[string][]sample, error) {
	out := make(map[string][]sample)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name  N  x ns/op  [y B/op  z allocs/op]  [extra metrics...]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var s sample
		var err error
		if s.ns, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", line, err)
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				s.bytes, s.hasMem = v, true
			case "allocs/op":
				s.allocs, s.hasMem = v, true
			}
		}
		out[name] = append(out[name], s)
	}
	return out, r.Err()
}

// median condenses repeated runs; with few noisy samples the median is
// far more stable than the mean.
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

func condense(samples map[string][]sample) map[string]Benchmark {
	out := make(map[string]Benchmark, len(samples))
	for name, ss := range samples {
		var ns, by, al []float64
		for _, s := range ss {
			ns = append(ns, s.ns)
			by = append(by, s.bytes)
			al = append(al, s.allocs)
		}
		out[name] = Benchmark{NsPerOp: median(ns), BytesPerOp: median(by), AllocsPerOp: median(al)}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write with -update)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	note := flag.String("note", "", "provenance note stored in the baseline on -update")
	flag.Parse()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	samples, err := parseBench(scanner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}
	current := condense(samples)

	if *update {
		bl := Baseline{Note: *note, Benchmarks: current}
		if bl.Note == "" {
			bl.Note = "regenerate: go test -run xxx -bench <gated set> -count=5 . | go run ./cmd/benchgate -update"
		}
		data, err := json.MarshalIndent(&bl, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	names := make([]string, 0, len(bl.Benchmarks))
	for name := range bl.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		base := bl.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %-32s missing from bench output\n", name)
			failed = true
			continue
		}
		delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
		status := "ok  "
		switch {
		case cur.AllocsPerOp > base.AllocsPerOp:
			status = "FAIL"
			failed = true
		case delta > *threshold:
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-32s ns/op %10.1f -> %10.1f (%+6.1f%%)  allocs/op %3.0f -> %3.0f\n",
			status, name, base.NsPerOp, cur.NsPerOp, delta*100, base.AllocsPerOp, cur.AllocsPerOp)
	}
	for name := range current {
		if _, ok := bl.Benchmarks[name]; !ok {
			fmt.Printf("new  %-32s ns/op %10.1f (not gated; -update to adopt)\n", name, current[name].NsPerOp)
		}
	}
	if failed {
		fmt.Println("benchgate: regression gate FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated benchmarks within threshold")
}
