// Command snmpwalk is a minimal SNMPv1 manager: it walks a subtree of
// any agent (an mbdserver's co-located agent, or any RFC 1157 device).
//
// Usage:
//
//	snmpwalk [-community public] [-timeout 2s] host:port [oid]
//
// The default OID is mib-2 (1.3.6.1.2.1).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mbd/internal/oid"
	"mbd/internal/snmp"
)

func main() {
	community := flag.String("community", "public", "community string")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout")
	get := flag.Bool("get", false, "issue a single Get instead of a walk")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: snmpwalk [-community c] host:port [oid]")
		os.Exit(2)
	}
	root := "1.3.6.1.2.1"
	if flag.NArg() > 1 {
		root = flag.Arg(1)
	}
	if err := run(flag.Arg(0), *community, root, *timeout, *get); err != nil {
		fmt.Fprintln(os.Stderr, "snmpwalk:", err)
		os.Exit(1)
	}
}

func run(addr, community, root string, timeout time.Duration, get bool) error {
	prefix, err := oid.Parse(root)
	if err != nil {
		return err
	}
	tr, err := snmp.DialUDP(addr)
	if err != nil {
		return err
	}
	defer tr.Close()
	c := snmp.NewClient(tr, community, snmp.WithTimeout(timeout))
	ctx := context.Background()

	if get {
		vbs, err := c.Get(ctx, prefix)
		if err != nil {
			return err
		}
		fmt.Printf("%s = %s\n", vbs[0].Name, vbs[0].Value)
		return nil
	}
	n, err := c.Walk(ctx, prefix, func(vb snmp.VarBind) bool {
		fmt.Printf("%s = %s\n", vb.Name, vb.Value)
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d instances\n", n)
	return nil
}
