// Command mbdctl is the delegator's CLI: it speaks RDS to an mbdserver.
//
// Usage:
//
//	mbdctl -server host:5500 [-principal mgr] [-secret s3cret] <command>
//
// Commands:
//
//	delegate <name> <file.dpl>     translate & store a delegated program
//	instantiate <dp> <entry> [a..] start an instance; prints its id
//	control <dpi> <suspend|resume|terminate>
//	send <dpi> <message>
//	query [dpi]                    list instance status
//	delete <dp>                    remove a program
//	eval <file.dpl> <entry> [a..]  one-shot remote evaluation (REV style)
//	watch [prefix]                 subscribe and stream events
//	stats                          dump the server's metrics (Prometheus text)
//	trace [n]                      dump the server's last n lifecycle spans (JSON)
//	lint <file.dpl>...             static-analyze programs locally
//	tenant status                  live per-tenant usage/billing table
//	tenant quota [principal]       effective quotas (default + overrides)
//	domain status                  the server's federation status (JSON)
//	domain members                 the server's domain membership table
//	domain delegate <name> <file.dpl> [entry [args...]]
//	                               cascade a delegation through the domain
//	                               tree, printing every member's outcome
//	domain rollout <lineage> <version> <file.dpl>...
//	                               publish the files as a golden bundle
//	                               (content-addressed; unchanged members
//	                               transfer zero bytes) and atomically
//	                               activate it fleet-wide
//	domain rollback <lineage> <hash>
//	                               atomically re-activate a previously
//	                               staged bundle hash everywhere
//	domain bundles                 the domain's bundle inventory
//	view status                    maintained views + maintenance counters
//	view define <file.vdl>         install views kept continuously materialized
//	view query <name>              one view's current rows
//	view watch <name> [n]          poll a view, printing each change (n
//	                               changes then exit; default forever)
//
// Unknown commands print the usage summary and exit 2.
//
// lint runs entirely offline — no server connection — against the full
// MbD host-function surface, printing compiler-style diagnostics plus
// each program's inferred effects and cost estimate. It exits 1 if any
// file has error-severity findings (and with -strict, any finding).
// With -json it emits one JSON array instead, one record per file with
// stable diagnostic codes, positions and severities for editor and CI
// integration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
	"mbd/internal/rds"
)

func main() {
	server := flag.String("server", "127.0.0.1:5500", "RDS server address")
	principal := flag.String("principal", "mgr", "principal name")
	secret := flag.String("secret", "", "MD5 shared secret (empty = no auth)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	strict := flag.Bool("strict", false, "lint: treat warnings as errors")
	jsonOut := flag.Bool("json", false, "lint: emit machine-readable JSON instead of text")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Reject unknown commands before dialing, so a typo fails with
	// usage instead of a connection attempt.
	if !validCommand(flag.Arg(0)) {
		fmt.Fprintf(os.Stderr, "mbdctl: unknown command %q\n\ncommands:\n%s", flag.Arg(0), commandUsage())
		os.Exit(2)
	}
	// lint is local-only: no dial, no principal.
	if flag.Arg(0) == "lint" {
		os.Exit(lint(flag.Args()[1:], *strict, *jsonOut))
	}
	if err := run(*server, *principal, *secret, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mbdctl:", err)
		os.Exit(1)
	}
}

// commands maps every subcommand to its one-line usage.
var commands = [][2]string{
	{"delegate", "delegate <name> <file.dpl>"},
	{"instantiate", "instantiate <dp> <entry> [args...]"},
	{"control", "control <dpi> <suspend|resume|terminate>"},
	{"send", "send <dpi> <message>"},
	{"query", "query [dpi]"},
	{"delete", "delete <dp>"},
	{"eval", "eval <file.dpl> <entry> [args...]"},
	{"watch", "watch [prefix]"},
	{"stats", "stats"},
	{"trace", "trace [n]"},
	{"lint", "lint <file.dpl>..."},
	{"tenant", "tenant status | quota [principal]"},
	{"domain", "domain status | members | bundles | delegate <name> <file.dpl> [entry [args...]] | rollout <lineage> <version> <file.dpl>... | rollback <lineage> <hash>"},
	{"view", "view status | define <file.vdl> | query <name> | watch <name> [n]"},
}

// validCommand reports whether cmd is a known subcommand.
func validCommand(cmd string) bool {
	for _, c := range commands {
		if c[0] == cmd {
			return true
		}
	}
	return false
}

// commandUsage renders the per-command usage lines.
func commandUsage() string {
	out := ""
	for _, c := range commands {
		out += "  " + c[1] + "\n"
	}
	return out
}

// lintDiag is one finding in `lint -json` output. The field set and
// names are a stable machine contract (editor/CI integrations key off
// code, severity and position); extend it, never rename.
type lintDiag struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
}

// lintFile is one file's record in `lint -json` output. Error is set
// (and the analysis fields zeroed) when the file failed to read, parse
// or type-check — failures that precede analysis.
type lintFile struct {
	File        string     `json:"file"`
	Error       string     `json:"error,omitempty"`
	Diagnostics []lintDiag `json:"diagnostics"`
	Hosts       []string   `json:"hosts"`
	Reads       []string   `json:"reads"`
	Writes      []string   `json:"writes"`
	CostSteps   uint64     `json:"cost_steps"`
	Unbounded   bool       `json:"cost_unbounded"`
	StepBudget  uint64     `json:"suggested_step_budget"`
}

// orEmpty keeps JSON slices as [] instead of null.
func orEmpty(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

// lint statically analyzes each file against the full MbD host surface
// and prints its diagnostics, effects and cost — compiler-style text by
// default, one stable JSON array with asJSON. Returns the exit code:
// 0 clean, 1 findings, 2 usage/IO/parse failure.
func lint(files []string, strict, asJSON bool) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mbdctl [-strict] [-json] lint <file.dpl>...")
		return 2
	}
	bindings := analysis.LintBindings()
	code := 0
	raise := func(c int) {
		if c > code {
			code = c
		}
	}
	report := make([]lintFile, 0, len(files))
	fail := func(file, msg string) {
		if asJSON {
			report = append(report, lintFile{
				File: file, Error: msg,
				Diagnostics: []lintDiag{},
				Hosts:       []string{}, Reads: []string{}, Writes: []string{},
			})
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s\n", file, msg)
		}
		raise(2)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fail(file, err.Error())
			continue
		}
		prog, err := dpl.Parse(string(src))
		if err != nil {
			fail(file, err.Error())
			continue
		}
		if errs := dpl.Check(prog, bindings); len(errs) > 0 {
			msgs := make([]string, len(errs))
			for i, e := range errs {
				msgs[i] = e.Error()
			}
			fail(file, strings.Join(msgs, "; "))
			continue
		}
		rep := analysis.Analyze(prog, bindings)
		errs, warns := analysis.Counts(rep.Diags)
		if errs > 0 || (strict && warns > 0) {
			raise(1)
		}
		if asJSON {
			diags := make([]lintDiag, 0, len(rep.Diags))
			for _, d := range rep.Diags {
				diags = append(diags, lintDiag{
					Code: d.Code, Severity: d.Sev.String(),
					Line: d.Pos.Line, Col: d.Pos.Col, Msg: d.Msg,
				})
			}
			report = append(report, lintFile{
				File:        file,
				Diagnostics: diags,
				Hosts:       orEmpty(rep.Effects.HostNames()),
				Reads:       orEmpty(rep.Effects.ReadPrefixes()),
				Writes:      orEmpty(rep.Effects.WritePrefixes()),
				CostSteps:   rep.Cost.Steps,
				Unbounded:   rep.Cost.Unbounded,
				StepBudget:  rep.SuggestedBudget(0),
			})
			continue
		}
		for _, d := range rep.Diags {
			fmt.Printf("%s:%s\n", file, d)
		}
		fmt.Printf("%s: effects: %s\n", file, rep.Effects.String())
		if rep.Cost.Unbounded {
			fmt.Printf("%s: cost: %s (step budget: server default)\n", file, rep.Cost.String())
		} else {
			fmt.Printf("%s: cost: %s (suggested step budget: %d)\n", file, rep.Cost.String(), rep.SuggestedBudget(0))
		}
	}
	if asJSON {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbdctl:", err)
			return 2
		}
		fmt.Println(string(out))
	}
	return code
}

func run(server, principal, secret string, timeout time.Duration, args []string) error {
	var opts []rds.ClientOption
	if secret != "" {
		auth := rds.NewAuthenticator()
		auth.SetSecret(principal, secret)
		opts = append(opts, rds.WithAuth(auth))
	}
	c, err := rds.Dial(server, principal, opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "delegate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: delegate <name> <file.dpl>")
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		if err := c.Delegate(ctx, rest[0], string(src)); err != nil {
			return describeReject(rest[1], err)
		}
		fmt.Printf("delegated %q (%d bytes)\n", rest[0], len(src))
	case "instantiate":
		if len(rest) < 2 {
			return fmt.Errorf("usage: instantiate <dp> <entry> [args...]")
		}
		id, err := c.Instantiate(ctx, rest[0], rest[1], rest[2:]...)
		if err != nil {
			return err
		}
		fmt.Println(id)
	case "control":
		if len(rest) != 2 {
			return fmt.Errorf("usage: control <dpi> <suspend|resume|terminate>")
		}
		if err := c.Control(ctx, rest[0], rest[1]); err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", rest[0], rest[1])
	case "send":
		if len(rest) != 2 {
			return fmt.Errorf("usage: send <dpi> <message>")
		}
		if err := c.Send(ctx, rest[0], rest[1]); err != nil {
			return err
		}
	case "query":
		dpi := ""
		if len(rest) > 0 {
			dpi = rest[0]
		}
		infos, err := c.Query(ctx, dpi)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-14s %-8s %-10s %-10s %s\n", "DPI", "DP", "ENTRY", "STATE", "STEPS", "RESULT/ERROR")
		for _, inf := range infos {
			out := inf.Result
			if inf.Err != "" {
				out = inf.Err
			}
			fmt.Printf("%-18s %-14s %-8s %-10s %-10d %s\n", inf.ID, inf.DP, inf.Entry, inf.State, inf.Steps, out)
		}
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: delete <dp>")
		}
		if err := c.DeleteDP(ctx, rest[0]); err != nil {
			return err
		}
	case "eval":
		if len(rest) < 2 {
			return fmt.Errorf("usage: eval <file.dpl> <entry> [args...]")
		}
		src, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		out, err := c.Eval(ctx, string(src), rest[1], rest[2:]...)
		if err != nil {
			return describeReject(rest[0], err)
		}
		fmt.Println(out)
	case "stats":
		out, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "trace":
		max := 0
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return fmt.Errorf("usage: trace [n]")
			}
			max = n
		}
		out, err := c.Trace(ctx, max)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "watch":
		filter := ""
		if len(rest) > 0 {
			filter = rest[0]
		}
		if err := c.Subscribe(ctx, filter); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "watching events (ctrl-c to stop)")
		for ev := range c.Events() {
			fmt.Printf("%8dms  %-16s %-7s %s\n", ev.TimeMS, ev.DPI, ev.Kind, ev.Payload)
		}
	case "tenant":
		return tenantCmd(ctx, c, rest)
	case "domain":
		return domainCmd(ctx, c, rest)
	case "view":
		return viewCmd(ctx, c, rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// viewDoc mirrors the view engine's status payload.
type viewDoc struct {
	Views []struct {
		Name       string   `json:"name"`
		Columns    []string `json:"columns"`
		Rows       int      `json:"rows"`
		BaseRows   int      `json:"base_rows"`
		Recomputes uint64   `json:"recomputes"`
		Error      string   `json:"error"`
	} `json:"views"`
	Stats struct {
		DeltasFolded uint64 `json:"deltas_folded"`
		Recomputes   uint64 `json:"recomputes"`
		ChangesLost  uint64 `json:"changes_lost"`
	} `json:"stats"`
}

// viewRows mirrors the view engine's query payload.
type viewRows struct {
	View     string   `json:"view"`
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	BaseRows int      `json:"base_rows"`
}

// printViewRows renders one view result as an aligned table.
func printViewRows(v viewRows) {
	for i, col := range v.Columns {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-14s", col)
	}
	fmt.Println()
	for _, row := range v.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Print("  ")
			}
			// JSON numbers arrive as float64; render integral values
			// (SNMP counters, row indexes) without an exponent.
			if f, ok := cell.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
				fmt.Printf("%-14d", int64(f))
				continue
			}
			fmt.Printf("%-14v", cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows over %d base rows)\n", len(v.Rows), v.BaseRows)
}

// viewCmd handles the incremental-view subcommands.
func viewCmd(ctx context.Context, c *rds.Client, rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: view status | define <file.vdl> | query <name> | watch <name> [n]")
	}
	switch rest[0] {
	case "status":
		out, err := c.ViewStatus(ctx)
		if err != nil {
			return err
		}
		var doc viewDoc
		if err := json.Unmarshal([]byte(out), &doc); err != nil {
			return fmt.Errorf("parsing view status: %w", err)
		}
		fmt.Printf("%-16s %-6s %-6s %-10s %s\n", "VIEW", "ROWS", "BASE", "RECOMPUTES", "COLUMNS")
		for _, v := range doc.Views {
			cols := strings.Join(v.Columns, ",")
			if v.Error != "" {
				cols = "ERROR: " + v.Error
			}
			fmt.Printf("%-16s %-6d %-6d %-10d %s\n", v.Name, v.Rows, v.BaseRows, v.Recomputes, cols)
		}
		fmt.Printf("deltas folded %d, recomputes %d, changes lost %d\n",
			doc.Stats.DeltasFolded, doc.Stats.Recomputes, doc.Stats.ChangesLost)
	case "define":
		if len(rest) != 2 {
			return fmt.Errorf("usage: view define <file.vdl>")
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		out, err := c.ViewDefine(ctx, string(src))
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "query":
		if len(rest) != 2 {
			return fmt.Errorf("usage: view query <name>")
		}
		out, err := c.ViewQuery(ctx, rest[1])
		if err != nil {
			return err
		}
		var v viewRows
		if err := json.Unmarshal([]byte(out), &v); err != nil {
			return fmt.Errorf("parsing view rows: %w", err)
		}
		printViewRows(v)
	case "watch":
		if len(rest) < 2 {
			return fmt.Errorf("usage: view watch <name> [n]")
		}
		limit := 0
		if len(rest) > 2 {
			n, err := strconv.Atoi(rest[2])
			if err != nil || n < 1 {
				return fmt.Errorf("usage: view watch <name> [n]")
			}
			limit = n
		}
		return viewWatch(ctx, c, rest[1], limit)
	default:
		return fmt.Errorf("unknown view subcommand %q (want status, define, query or watch)", rest[0])
	}
	return nil
}

// viewWatch polls the maintained view and prints it whenever its
// content changes — the manager-side window onto a continuously
// materialized view. limit > 0 exits after that many updates (the
// initial print counts as the first).
func viewWatch(ctx context.Context, c *rds.Client, name string, limit int) error {
	last := ""
	printed := 0
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		out, err := c.ViewQuery(ctx, name)
		if err != nil {
			return err
		}
		if out != last {
			last = out
			var v viewRows
			if err := json.Unmarshal([]byte(out), &v); err != nil {
				return fmt.Errorf("parsing view rows: %w", err)
			}
			fmt.Printf("-- %s @ %s\n", name, time.Now().Format("15:04:05.000"))
			printViewRows(v)
			printed++
			if limit > 0 && printed >= limit {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// tenantQuota mirrors elastic.Quota's JSON form.
type tenantQuota struct {
	MaxLiveDPIs     int    `json:"max_live_dpis,omitempty"`
	StepsPerSec     uint64 `json:"steps_per_sec,omitempty"`
	EventsPerSec    uint64 `json:"events_per_sec,omitempty"`
	RepositoryBytes int64  `json:"repository_bytes,omitempty"`
	RequestsPerSec  uint64 `json:"requests_per_sec,omitempty"`
	Weight          int    `json:"weight,omitempty"`
}

// String renders a quota in the -quota flag's spec syntax; every axis
// shown, 0 meaning unlimited.
func (q tenantQuota) String() string {
	return fmt.Sprintf("dpis=%d,steps=%d,events=%d,repo=%d,reqs=%d,weight=%d",
		q.MaxLiveDPIs, q.StepsPerSec, q.EventsPerSec, q.RepositoryBytes, q.RequestsPerSec, q.Weight)
}

// tenantDoc mirrors the server's OpStats "tenants" view.
type tenantDoc struct {
	DefaultQuota tenantQuota `json:"default_quota"`
	Tenants      []struct {
		Principal    string      `json:"principal"`
		Quota        tenantQuota `json:"quota"`
		Override     bool        `json:"override"`
		Weight       int         `json:"weight"`
		LiveDPIs     int64       `json:"live_dpis"`
		RepoBytes    int64       `json:"repo_bytes"`
		Steps        uint64      `json:"steps_total"`
		Events       uint64      `json:"events_total"`
		Throttles    uint64      `json:"throttles_total"`
		Suspensions  uint64      `json:"suspensions_total"`
		Terminations uint64      `json:"terminations_total"`
		Rejections   uint64      `json:"rejections_total"`
		RequestsShed uint64      `json:"requests_shed_total"`
		Blocked      string      `json:"blocked"`
	} `json:"tenants"`
}

// tenantCmd handles the multi-tenant subcommands: status renders the
// live per-tenant usage/billing table, quota the effective quotas.
func tenantCmd(ctx context.Context, c *rds.Client, rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: tenant status | quota [principal]")
	}
	out, err := c.TenantStatus(ctx)
	if err != nil {
		return err
	}
	var doc tenantDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		return fmt.Errorf("parsing tenant status: %w", err)
	}
	switch rest[0] {
	case "status":
		fmt.Printf("%-12s %-6s %-5s %-10s %-12s %-8s %-5s %-5s %-5s %-5s %-5s %s\n",
			"PRINCIPAL", "WEIGHT", "DPIS", "REPO-BYTES", "STEPS", "EVENTS", "THR", "SUSP", "KILL", "REJ", "SHED", "BLOCKED")
		for _, t := range doc.Tenants {
			blocked := t.Blocked
			if blocked == "" {
				blocked = "-"
			}
			fmt.Printf("%-12s %-6d %-5d %-10d %-12d %-8d %-5d %-5d %-5d %-5d %-5d %s\n",
				t.Principal, t.Weight, t.LiveDPIs, t.RepoBytes, t.Steps, t.Events,
				t.Throttles, t.Suspensions, t.Terminations, t.Rejections, t.RequestsShed, blocked)
		}
	case "quota":
		if len(rest) > 1 {
			for _, t := range doc.Tenants {
				if t.Principal == rest[1] {
					src := "default"
					if t.Override {
						src = "override"
					}
					fmt.Printf("%s (%s): %s\n", t.Principal, src, t.Quota)
					return nil
				}
			}
			fmt.Printf("%s (default): %s\n", rest[1], doc.DefaultQuota)
			return nil
		}
		fmt.Printf("default: %s\n", doc.DefaultQuota)
		for _, t := range doc.Tenants {
			if t.Override {
				fmt.Printf("%s: %s\n", t.Principal, t.Quota)
			}
		}
	default:
		return fmt.Errorf("unknown tenant subcommand %q (want status or quota)", rest[0])
	}
	return nil
}

// domainCmd handles the federation subcommands.
func domainCmd(ctx context.Context, c *rds.Client, rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: domain status | members | bundles | delegate ... | rollout ... | rollback ...")
	}
	switch rest[0] {
	case "status":
		out, err := c.DomainStatus(ctx)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "members":
		out, err := c.DomainStatus(ctx)
		if err != nil {
			return err
		}
		var st struct {
			Domain  string `json:"domain"`
			Members []struct {
				Name        string `json:"name"`
				Domain      string `json:"domain"`
				Addr        string `json:"addr"`
				State       string `json:"state"`
				SinceSeenMS int64  `json:"since_seen_ms"`
				Reports     uint64 `json:"reports"`
			} `json:"members"`
		}
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			return fmt.Errorf("parsing domain status: %w", err)
		}
		fmt.Printf("domain %q: %d member(s)\n", st.Domain, len(st.Members))
		fmt.Printf("%-16s %-16s %-22s %-8s %-10s %s\n", "MEMBER", "DOMAIN", "ADDR", "STATE", "SEEN-AGO", "REPORTS")
		for _, m := range st.Members {
			fmt.Printf("%-16s %-16s %-22s %-8s %-10s %d\n",
				m.Name, m.Domain, m.Addr, m.State,
				(time.Duration(m.SinceSeenMS) * time.Millisecond).Round(time.Millisecond), m.Reports)
		}
	case "delegate":
		if len(rest) < 3 {
			return fmt.Errorf("usage: domain delegate <name> <file.dpl> [entry [args...]]")
		}
		src, err := os.ReadFile(rest[2])
		if err != nil {
			return err
		}
		entry := ""
		var args []string
		if len(rest) > 3 {
			entry = rest[3]
			args = rest[4:]
		}
		res, err := c.PeerDelegate(ctx, rest[1], string(src), entry, args...)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-16s %-22s %-8s %s\n", "MEMBER", "DOMAIN", "ADDR", "RESULT", "DPI/ERROR")
		for _, o := range res.Outcomes {
			result, detail := "accepted", o.DPI
			if !o.OK {
				result, detail = "rejected", o.Err
			}
			fmt.Printf("%-16s %-16s %-22s %-8s %s\n", o.Member, o.Domain, o.Addr, result, detail)
		}
		if rej := res.Rejected(); rej > 0 {
			return fmt.Errorf("%d of %d hops rejected %q", rej, len(res.Outcomes), res.DP)
		}
		fmt.Printf("cascaded %q to %d member(s)\n", res.DP, res.Accepted())
	case "rollout":
		if len(rest) < 4 {
			return fmt.Errorf("usage: domain rollout <lineage> <version> <file.dpl>...")
		}
		lineage := rest[1]
		version, err := strconv.ParseUint(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("usage: domain rollout <lineage> <version> <file.dpl>... (version must be a number)")
		}
		bundle := &rds.Bundle{Lineage: lineage, Version: version}
		for _, file := range rest[3:] {
			src, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			dp := strings.TrimSuffix(filepath.Base(file), ".dpl")
			bundle.Items = append(bundle.Items, rds.BundleItem{
				DP: dp, Lang: "dpl", Blob: src, Entry: "main",
			})
		}
		// Publish source form: the root compiles, content-addresses the
		// golden bundle, and pushes it down the tree (members already
		// holding the hash answer the probe — zero bytes moved).
		res, err := c.PeerBundleStage(ctx, lineage, "", bundle.Encode())
		if err != nil {
			return describeReject(rest[3], err)
		}
		fmt.Printf("golden bundle %s v%d: %s\n", lineage, version, res.Hash)
		fmt.Printf("%-16s %-16s %-22s %-8s %s\n", "MEMBER", "DOMAIN", "ADDR", "STAGE", "BYTES/ERROR")
		for _, o := range res.Outcomes {
			stage, detail := "staged", strconv.FormatUint(o.ArtifactBytes, 10)
			if o.AlreadyStaged {
				stage = "cached"
			}
			if !o.OK {
				stage, detail = "failed", o.Err
			}
			fmt.Printf("%-16s %-16s %-22s %-8s %s\n", o.Member, o.Domain, o.Addr, stage, detail)
		}
		if staged, total := res.Staged(), len(res.Outcomes); staged < total {
			return fmt.Errorf("staged at %d of %d members; not activating", staged, total)
		}
		fmt.Printf("staged at %d member(s), %d artifact byte(s) transferred\n",
			res.Staged(), res.TransferredBytes())
		return activateBundle(ctx, c, lineage, res.Hash)
	case "rollback":
		if len(rest) != 3 {
			return fmt.Errorf("usage: domain rollback <lineage> <hash>")
		}
		return activateBundle(ctx, c, rest[1], rest[2])
	case "bundles":
		out, err := c.DomainStatus(ctx)
		if err != nil {
			return err
		}
		var st struct {
			Domain  string             `json:"domain"`
			Bundles []rds.BundleStatus `json:"bundles"`
			Members []struct {
				Name    string             `json:"name"`
				State   string             `json:"state"`
				Bundles []rds.BundleStatus `json:"bundles"`
			} `json:"members"`
		}
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			return fmt.Errorf("parsing domain status: %w", err)
		}
		fmt.Printf("%-16s %-16s %-10s %-8s %s\n", "MEMBER", "LINEAGE", "VERSION", "STAGED", "ACTIVE-HASH")
		printRow := func(member, state string, b rds.BundleStatus) {
			hash := b.Hash
			if hash == "" {
				hash = "(none)"
			}
			fmt.Printf("%-16s %-16s %-10d %-8d %s\n", member+state, b.Lineage, b.Version, b.Staged, hash)
		}
		for _, b := range st.Bundles {
			printRow("(self)", "", b)
		}
		for _, m := range st.Members {
			suffix := ""
			if m.State != "alive" {
				suffix = " [" + m.State + "]"
			}
			for _, b := range m.Bundles {
				printRow(m.Name, suffix, b)
			}
		}
	default:
		return fmt.Errorf("unknown domain subcommand %q (want status, members, bundles, delegate, rollout or rollback)", rest[0])
	}
	return nil
}

// activateBundle flips the domain's active pointer for lineage to hash
// and prints every member's outcome.
func activateBundle(ctx context.Context, c *rds.Client, lineage, hash string) error {
	res, err := c.PeerBundleActivate(ctx, lineage, hash)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-16s %-22s %-8s %s\n", "MEMBER", "DOMAIN", "ADDR", "RESULT", "DPI/ERROR")
	for _, o := range res.Outcomes {
		result, detail := "active", o.DPI
		if !o.OK {
			result, detail = "rejected", o.Err
		}
		fmt.Printf("%-16s %-16s %-22s %-8s %s\n", o.Member, o.Domain, o.Addr, result, detail)
	}
	if rej := res.Rejected(); rej > 0 {
		return fmt.Errorf("%d of %d hops rejected activation of %.12s…", rej, len(res.Outcomes), hash)
	}
	fmt.Printf("activated %s %.12s… at %d member(s)\n", lineage, hash, res.Accepted())
	return nil
}

// describeReject prints the structured diagnostics of a server-side
// static-analysis rejection (one compiler-style line per finding) and
// returns a short summary error; other errors pass through unchanged.
func describeReject(file string, err error) error {
	var rej *rds.RejectError
	if !errors.As(err, &rej) {
		return err
	}
	for _, d := range rej.Diags {
		fmt.Fprintf(os.Stderr, "%s:%s\n", file, d)
	}
	return fmt.Errorf("%s rejected by the server's static analyzer (%d diagnostics)", file, len(rej.Diags))
}
