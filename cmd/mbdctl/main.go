// Command mbdctl is the delegator's CLI: it speaks RDS to an mbdserver.
//
// Usage:
//
//	mbdctl -server host:5500 [-principal mgr] [-secret s3cret] <command>
//
// Commands:
//
//	delegate <name> <file.dpl>     translate & store a delegated program
//	instantiate <dp> <entry> [a..] start an instance; prints its id
//	control <dpi> <suspend|resume|terminate>
//	send <dpi> <message>
//	query [dpi]                    list instance status
//	delete <dp>                    remove a program
//	eval <file.dpl> <entry> [a..]  one-shot remote evaluation (REV style)
//	watch [prefix]                 subscribe and stream events
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mbd/internal/rds"
)

func main() {
	server := flag.String("server", "127.0.0.1:5500", "RDS server address")
	principal := flag.String("principal", "mgr", "principal name")
	secret := flag.String("secret", "", "MD5 shared secret (empty = no auth)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*server, *principal, *secret, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mbdctl:", err)
		os.Exit(1)
	}
}

func run(server, principal, secret string, timeout time.Duration, args []string) error {
	var opts []rds.ClientOption
	if secret != "" {
		auth := rds.NewAuthenticator()
		auth.SetSecret(principal, secret)
		opts = append(opts, rds.WithAuth(auth))
	}
	c, err := rds.Dial(server, principal, opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "delegate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: delegate <name> <file.dpl>")
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		if err := c.Delegate(ctx, rest[0], string(src)); err != nil {
			return err
		}
		fmt.Printf("delegated %q (%d bytes)\n", rest[0], len(src))
	case "instantiate":
		if len(rest) < 2 {
			return fmt.Errorf("usage: instantiate <dp> <entry> [args...]")
		}
		id, err := c.Instantiate(ctx, rest[0], rest[1], rest[2:]...)
		if err != nil {
			return err
		}
		fmt.Println(id)
	case "control":
		if len(rest) != 2 {
			return fmt.Errorf("usage: control <dpi> <suspend|resume|terminate>")
		}
		if err := c.Control(ctx, rest[0], rest[1]); err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", rest[0], rest[1])
	case "send":
		if len(rest) != 2 {
			return fmt.Errorf("usage: send <dpi> <message>")
		}
		if err := c.Send(ctx, rest[0], rest[1]); err != nil {
			return err
		}
	case "query":
		dpi := ""
		if len(rest) > 0 {
			dpi = rest[0]
		}
		infos, err := c.Query(ctx, dpi)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-14s %-8s %-10s %-10s %s\n", "DPI", "DP", "ENTRY", "STATE", "STEPS", "RESULT/ERROR")
		for _, inf := range infos {
			out := inf.Result
			if inf.Err != "" {
				out = inf.Err
			}
			fmt.Printf("%-18s %-14s %-8s %-10s %-10d %s\n", inf.ID, inf.DP, inf.Entry, inf.State, inf.Steps, out)
		}
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: delete <dp>")
		}
		if err := c.DeleteDP(ctx, rest[0]); err != nil {
			return err
		}
	case "eval":
		if len(rest) < 2 {
			return fmt.Errorf("usage: eval <file.dpl> <entry> [args...]")
		}
		src, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		out, err := c.Eval(ctx, string(src), rest[1], rest[2:]...)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "watch":
		filter := ""
		if len(rest) > 0 {
			filter = rest[0]
		}
		if err := c.Subscribe(ctx, filter); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "watching events (ctrl-c to stop)")
		for ev := range c.Events() {
			fmt.Printf("%8dms  %-16s %-7s %s\n", ev.TimeMS, ev.DPI, ev.Kind, ev.Payload)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
