package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidCommand pins the subcommand table: every documented command
// is accepted, typos are not, and the usage text mentions each one.
func TestValidCommand(t *testing.T) {
	for _, c := range commands {
		if !validCommand(c[0]) {
			t.Errorf("validCommand(%q) = false for a listed command", c[0])
		}
	}
	for _, bad := range []string{"", "delegat", "DOMAIN", "status", "help", "--query"} {
		if validCommand(bad) {
			t.Errorf("validCommand(%q) = true, want false", bad)
		}
	}
	usage := commandUsage()
	for _, c := range commands {
		if !strings.Contains(usage, c[1]) {
			t.Errorf("usage text missing %q:\n%s", c[1], usage)
		}
	}
}

// TestUnknownCommandExits builds the binary and runs it with an unknown
// subcommand: it must print the usage summary to stderr and exit 2
// WITHOUT attempting a server connection (there is no server; a dial
// would fail with exit 1 instead).
func TestUnknownCommandExits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "mbdctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-server", "127.0.0.1:1", "frobnicate")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v\n%s", err, out)
	}
	if ee.ExitCode() != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", ee.ExitCode(), out)
	}
	for _, want := range []string{`unknown command "frobnicate"`, "commands:", "domain status"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// No arguments at all: flag usage, exit 2.
	cmd = exec.Command(bin)
	out, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("no-arg run: err=%v, want exit 2\n%s", err, out)
	}
}
