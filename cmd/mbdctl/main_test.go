package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidCommand pins the subcommand table: every documented command
// is accepted, typos are not, and the usage text mentions each one.
func TestValidCommand(t *testing.T) {
	for _, c := range commands {
		if !validCommand(c[0]) {
			t.Errorf("validCommand(%q) = false for a listed command", c[0])
		}
	}
	for _, bad := range []string{"", "delegat", "DOMAIN", "status", "help", "--query"} {
		if validCommand(bad) {
			t.Errorf("validCommand(%q) = true, want false", bad)
		}
	}
	usage := commandUsage()
	for _, c := range commands {
		if !strings.Contains(usage, c[1]) {
			t.Errorf("usage text missing %q:\n%s", c[1], usage)
		}
	}
}

// TestUnknownCommandExits builds the binary and runs it with an unknown
// subcommand: it must print the usage summary to stderr and exit 2
// WITHOUT attempting a server connection (there is no server; a dial
// would fail with exit 1 instead).
func TestUnknownCommandExits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "mbdctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-server", "127.0.0.1:1", "frobnicate")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v\n%s", err, out)
	}
	if ee.ExitCode() != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", ee.ExitCode(), out)
	}
	for _, want := range []string{`unknown command "frobnicate"`, "commands:", "domain status"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// No arguments at all: flag usage, exit 2.
	cmd = exec.Command(bin)
	out, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("no-arg run: err=%v, want exit 2\n%s", err, out)
	}
}

// TestLintJSON pins the machine-readable lint contract: stable codes,
// severities and positions; [] not null for empty lists; pre-analysis
// failures carried in the per-file error field; exit codes matching the
// text mode (0 clean, 1 findings under -strict, 2 parse failure).
func TestLintJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "mbdctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dir := t.TempDir()
	write := func(name, src string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	clean := write("clean.dpl", `func main() { return mibGet("1.3.6.1.2.1.1.3.0"); }`)
	warn := write("warn.dpl", `func main(oid) { return mibGet(oid); }`)
	broken := write("broken.dpl", `func main( {`)

	run := func(wantExit int, args ...string) []lintFile {
		t.Helper()
		out, err := exec.Command(bin, args...).Output()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		if exit != wantExit {
			t.Fatalf("run %v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		var rep []lintFile
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatalf("run %v: invalid JSON: %v\n%s", args, err, out)
		}
		return rep
	}

	rep := run(0, "-json", "lint", clean, warn)
	if len(rep) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(rep), rep)
	}
	c := rep[0]
	if c.Error != "" || len(c.Diagnostics) != 0 {
		t.Fatalf("clean file not clean: %+v", c)
	}
	if len(c.Hosts) != 1 || c.Hosts[0] != "mibGet" ||
		len(c.Reads) != 1 || c.Reads[0] != "1.3.6.1.2.1.1.3.0" {
		t.Fatalf("clean effects = hosts %v reads %v", c.Hosts, c.Reads)
	}
	if c.Writes == nil {
		t.Fatal("empty writes marshalled as null, want []")
	}
	if c.CostSteps == 0 || c.Unbounded || c.StepBudget == 0 {
		t.Fatalf("clean cost = %+v", c)
	}
	w := rep[1]
	if len(w.Diagnostics) != 1 {
		t.Fatalf("warn diagnostics = %+v", w.Diagnostics)
	}
	d := w.Diagnostics[0]
	if d.Code != "DPL006" || d.Severity != "warning" || d.Line != 1 || d.Col == 0 || d.Msg == "" {
		t.Fatalf("warn diagnostic = %+v", d)
	}

	// -strict promotes the warning to a failing exit, findings intact.
	rep = run(1, "-strict", "-json", "lint", warn)
	if len(rep) != 1 || len(rep[0].Diagnostics) != 1 {
		t.Fatalf("strict rerun = %+v", rep)
	}

	// A parse failure still yields a JSON record (error field set,
	// analysis fields zero) and exit 2, without dropping later files.
	rep = run(2, "-json", "lint", broken, clean)
	if len(rep) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(rep), rep)
	}
	if rep[0].Error == "" || !strings.Contains(rep[0].Error, "expected identifier") {
		t.Fatalf("broken record error = %q", rep[0].Error)
	}
	if rep[0].Diagnostics == nil || rep[0].Hosts == nil {
		t.Fatalf("broken record has null lists: %+v", rep[0])
	}
	if rep[1].Error != "" {
		t.Fatalf("clean file after broken one reported %q", rep[1].Error)
	}
}
