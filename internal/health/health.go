// Package health implements the paper's InterOp'91 demo application:
// delegated health monitoring of a LAN segment.
//
// Observers turn raw MIB counter deltas into symptom indicators —
// utilization (the paper's U(t) = ΔRxOk/(Δt·10^7) formula over the
// Synoptics-style private counter), collision rate, broadcast rate and
// error rate. A health index combines the indicators as a weighted
// linear (single-layer perceptron) function whose weights can be
// trained with the Least-Mean-Square rule the dissertation cites
// ([Cohen & Feigenbaum 81], [Duda & Hart 73]): "good (poor) predictors
// should have their weights increased (decreased) until correct
// classifications are achieved".
package health

import (
	"fmt"
	"math/rand"
	"time"

	"mbd/internal/mib"
)

// Snapshot is one reading of the segment counters.
type Snapshot struct {
	At         time.Duration
	RxOkBits   uint64
	Collisions uint64
	RxBcast    uint64
	RxPkts     uint64
	RxErrs     uint64
}

// Take reads the five private Ethernet counters from a device tree.
// Counters are Counter32 values and may have wrapped; Compute handles
// the wrap.
func Take(tree *mib.Tree, at time.Duration) (Snapshot, error) {
	s := Snapshot{At: at}
	for _, c := range []struct {
		oid  []uint32
		dst  *uint64
		name string
	}{
		{mib.OIDEnetRxOk.Append(0), &s.RxOkBits, "rxOk"},
		{mib.OIDEnetColl.Append(0), &s.Collisions, "collisions"},
		{mib.OIDEnetRxBcast.Append(0), &s.RxBcast, "broadcast"},
		{mib.OIDEnetRxPkts.Append(0), &s.RxPkts, "packets"},
		{mib.OIDEnetRxErrs.Append(0), &s.RxErrs, "errors"},
	} {
		v, err := tree.Get(c.oid)
		if err != nil {
			return Snapshot{}, fmt.Errorf("health: reading %s: %w", c.name, err)
		}
		*c.dst = v.Uint
	}
	return s, nil
}

// delta32 returns cur-prev with Counter32 wrap semantics.
func delta32(prev, cur uint64) uint64 {
	const mod = 1 << 32
	prev &= mod - 1
	cur &= mod - 1
	if cur >= prev {
		return cur - prev
	}
	return mod - prev + cur
}

// Indicators are the normalized symptom observers, each in [0, ~1].
type Indicators struct {
	Utilization   float64 // fraction of link capacity in use
	CollisionRate float64 // collisions per received packet
	BroadcastRate float64 // broadcast fraction of received packets
	ErrorRate     float64 // damaged-frame fraction of received packets
}

// Vector returns the indicators as a slice in canonical order.
func (in Indicators) Vector() []float64 {
	return []float64{in.Utilization, in.CollisionRate, in.BroadcastRate, in.ErrorRate}
}

// Compute derives indicators from two snapshots per the paper's
// formulas. linkBps defaults to 10 Mb/s when zero (the 10,000,000
// denominator in the published utilization formula).
func Compute(prev, cur Snapshot, linkBps float64) Indicators {
	if linkBps <= 0 {
		linkBps = 10_000_000
	}
	dt := (cur.At - prev.At).Seconds()
	if dt <= 0 {
		return Indicators{}
	}
	pkts := float64(delta32(prev.RxPkts, cur.RxPkts))
	in := Indicators{
		Utilization: float64(delta32(prev.RxOkBits, cur.RxOkBits)) / (dt * linkBps),
	}
	if pkts > 0 {
		in.CollisionRate = float64(delta32(prev.Collisions, cur.Collisions)) / pkts
		in.BroadcastRate = float64(delta32(prev.RxBcast, cur.RxBcast)) / pkts
		in.ErrorRate = float64(delta32(prev.RxErrs, cur.RxErrs)) / pkts
	}
	return in
}

// Index is a single-layer perceptron over the four indicators: the
// segment is classified unhealthy when the weighted sum exceeds the
// bias (score > 0).
type Index struct {
	Weights [4]float64
	Bias    float64
}

// DefaultIndex returns hand-set weights in the spirit of the demo:
// begin "by using estimates, and let the program modify the settings".
func DefaultIndex() Index {
	return Index{Weights: [4]float64{1.0, 2.0, 2.0, 5.0}, Bias: -0.9}
}

// Score returns the weighted sum plus bias.
func (ix Index) Score(in Indicators) float64 {
	v := in.Vector()
	s := ix.Bias
	for i, w := range ix.Weights {
		s += w * v[i]
	}
	return s
}

// Unhealthy classifies the indicators.
func (ix Index) Unhealthy(in Indicators) bool { return ix.Score(in) > 0 }

// Sample is one labeled observation for training/evaluation.
type Sample struct {
	In        Indicators
	Unhealthy bool
}

// TrainLMS adapts the weights "after every trial, based on the
// difference between the actual and desired output" — the Widrow-Hoff
// LMS rule on the perceptron score with targets ±1. It returns the
// trained index and the mean squared error after each epoch.
func TrainLMS(init Index, samples []Sample, epochs int, rate float64) (Index, []float64) {
	ix := init
	if epochs <= 0 || len(samples) == 0 {
		return ix, nil
	}
	curve := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		var sq float64
		for _, s := range samples {
			target := -1.0
			if s.Unhealthy {
				target = 1.0
			}
			out := ix.Score(s.In)
			errv := target - out
			sq += errv * errv
			v := s.In.Vector()
			for i := range ix.Weights {
				ix.Weights[i] += rate * errv * v[i]
			}
			ix.Bias += rate * errv
		}
		curve = append(curve, sq/float64(len(samples)))
	}
	return ix, curve
}

// Metrics summarize classifier quality on a labeled set.
type Metrics struct {
	Accuracy   float64 // correct / total
	FalseAlarm float64 // healthy classified unhealthy / healthy
	Miss       float64 // unhealthy classified healthy / unhealthy
}

// Evaluate scores the index against labeled samples.
func Evaluate(ix Index, samples []Sample) Metrics {
	var correct, fa, miss, healthy, unhealthy int
	for _, s := range samples {
		got := ix.Unhealthy(s.In)
		if got == s.Unhealthy {
			correct++
		}
		if s.Unhealthy {
			unhealthy++
			if !got {
				miss++
			}
		} else {
			healthy++
			if got {
				fa++
			}
		}
	}
	m := Metrics{}
	if len(samples) > 0 {
		m.Accuracy = float64(correct) / float64(len(samples))
	}
	if healthy > 0 {
		m.FalseAlarm = float64(fa) / float64(healthy)
	}
	if unhealthy > 0 {
		m.Miss = float64(miss) / float64(unhealthy)
	}
	return m
}

// EpisodeKind labels a workload regime on the simulated segment.
type EpisodeKind uint8

// Episode kinds. Nominal is healthy; the others are fault regimes.
const (
	Nominal EpisodeKind = iota
	Congestion
	BroadcastStorm
	ErrorBurst
	CollisionStorm
)

// String names the episode kind.
func (k EpisodeKind) String() string {
	switch k {
	case Nominal:
		return "nominal"
	case Congestion:
		return "congestion"
	case BroadcastStorm:
		return "broadcast-storm"
	case ErrorBurst:
		return "error-burst"
	case CollisionStorm:
		return "collision-storm"
	default:
		return "unknown"
	}
}

// Unhealthy reports the ground-truth label of the episode kind.
func (k EpisodeKind) Unhealthy() bool { return k != Nominal }

// EpisodeLoad returns a load profile typical of the episode kind, with
// bounded jitter from rng.
func EpisodeLoad(k EpisodeKind, rng *rand.Rand) mib.LoadProfile {
	j := func(base, spread float64) float64 { return base + (rng.Float64()-0.5)*spread }
	switch k {
	case Congestion:
		return mib.LoadProfile{Utilization: j(0.85, 0.2), BroadcastFraction: j(0.03, 0.02), ErrorRate: j(0.002, 0.002), CollisionRate: j(0.25, 0.1)}
	case BroadcastStorm:
		return mib.LoadProfile{Utilization: j(0.45, 0.2), BroadcastFraction: j(0.55, 0.2), ErrorRate: j(0.002, 0.002), CollisionRate: j(0.05, 0.04)}
	case ErrorBurst:
		return mib.LoadProfile{Utilization: j(0.3, 0.2), BroadcastFraction: j(0.03, 0.02), ErrorRate: j(0.12, 0.08), CollisionRate: j(0.05, 0.04)}
	case CollisionStorm:
		return mib.LoadProfile{Utilization: j(0.55, 0.2), BroadcastFraction: j(0.04, 0.02), ErrorRate: j(0.01, 0.01), CollisionRate: j(0.6, 0.2)}
	default:
		return mib.LoadProfile{Utilization: j(0.15, 0.2), BroadcastFraction: j(0.03, 0.03), ErrorRate: j(0.001, 0.001), CollisionRate: j(0.02, 0.02)}
	}
}

// GenerateSamples drives a fresh simulated device through n labeled
// episodes (10 virtual seconds each) and returns the observed
// indicator samples. Deterministic for a given seed.
func GenerateSamples(seed int64, n int) ([]Sample, error) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "trainer", Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	kinds := []EpisodeKind{Nominal, Congestion, BroadcastStorm, ErrorBurst, CollisionStorm}
	prev, err := Take(dev.Tree(), dev.Now())
	if err != nil {
		return nil, err
	}
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		// Two thirds nominal, one third faults — alarms should be rare.
		kind := Nominal
		if rng.Intn(3) == 0 {
			kind = kinds[1+rng.Intn(len(kinds)-1)]
		}
		dev.SetLoad(EpisodeLoad(kind, rng))
		dev.Advance(10 * time.Second)
		cur, err := Take(dev.Tree(), dev.Now())
		if err != nil {
			return nil, err
		}
		samples = append(samples, Sample{In: Compute(prev, cur, 0), Unhealthy: kind.Unhealthy()})
		prev = cur
	}
	return samples, nil
}

// AgentSource renders the delegated health-function agent: a DPL
// program that snapshots the private counters, computes the four
// observers locally, applies the (trained) index, and reports only when
// the segment is unhealthy — the paper's report-on-exception mode. With
// periodic=true it instead reports the score on every evaluation.
func AgentSource(ix Index, periodic bool) string {
	reportClause := `if (score > 0.0) { report(sprintf("UNHEALTHY score=%f u=%f c=%f b=%f e=%f", score, u, c, b, e)); }`
	if periodic {
		reportClause = `report(sprintf("score=%f", score));`
	}
	return fmt.Sprintf(`
var pOk = 0; var pColl = 0; var pBcast = 0; var pPkts = 0; var pErrs = 0; var pT = 0;
var primed = false;

func eval() {
	var ok = mibGet("1.3.6.1.4.1.45.1.3.2.1.0");
	var coll = mibGet("1.3.6.1.4.1.45.1.3.2.2.0");
	var bcast = mibGet("1.3.6.1.4.1.45.1.3.2.3.0");
	var pkts = mibGet("1.3.6.1.4.1.45.1.3.2.4.0");
	var errs = mibGet("1.3.6.1.4.1.45.1.3.2.5.0");
	var t = now();
	var score = 0.0;
	if (primed && t > pT) {
		var dt = float(t - pT) / 1000.0;
		var u = float(ok - pOk) / (dt * 10000000.0);
		var dp = float(pkts - pPkts);
		var c = 0.0; var b = 0.0; var e = 0.0;
		if (dp > 0.0) {
			c = float(coll - pColl) / dp;
			b = float(bcast - pBcast) / dp;
			e = float(errs - pErrs) / dp;
		}
		score = %f * u + %f * c + %f * b + %f * e + %f;
		%s
	}
	pOk = ok; pColl = coll; pBcast = bcast; pPkts = pkts; pErrs = errs; pT = t;
	primed = true;
	return score;
}`, ix.Weights[0], ix.Weights[1], ix.Weights[2], ix.Weights[3], ix.Bias, reportClause)
}
