package health

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
)

func TestComputeIndicators(t *testing.T) {
	prev := Snapshot{At: 0}
	cur := Snapshot{
		At:         10 * time.Second,
		RxOkBits:   50_000_000, // 0.5 of 10 Mb/s over 10 s
		RxPkts:     10_000,
		Collisions: 500,
		RxBcast:    1_000,
		RxErrs:     100,
	}
	in := Compute(prev, cur, 0)
	if in.Utilization != 0.5 {
		t.Errorf("utilization = %f", in.Utilization)
	}
	if in.CollisionRate != 0.05 || in.BroadcastRate != 0.1 || in.ErrorRate != 0.01 {
		t.Errorf("rates = %+v", in)
	}
}

func TestComputeHandlesCounterWrap(t *testing.T) {
	prev := Snapshot{At: 0, RxOkBits: 1<<32 - 1000, RxPkts: 1<<32 - 10}
	cur := Snapshot{At: time.Second, RxOkBits: 9_000, RxPkts: 90}
	in := Compute(prev, cur, 0)
	// ΔRxOk = 10000 bits over 1 s on 10 Mb/s → 0.001.
	if in.Utilization != 0.001 {
		t.Errorf("wrapped utilization = %f", in.Utilization)
	}
}

func TestComputeDegenerateInputs(t *testing.T) {
	s := Snapshot{At: time.Second}
	if in := Compute(s, s, 0); in != (Indicators{}) {
		t.Errorf("zero-dt indicators = %+v", in)
	}
	// No packets → rates are zero, not NaN.
	in := Compute(Snapshot{At: 0}, Snapshot{At: time.Second, RxOkBits: 100}, 0)
	if in.CollisionRate != 0 || in.BroadcastRate != 0 || in.ErrorRate != 0 {
		t.Errorf("rates with no packets = %+v", in)
	}
}

func TestTakeFromDevice(t *testing.T) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "h", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(mib.LoadProfile{Utilization: 0.6, BroadcastFraction: 0.1, ErrorRate: 0.01, CollisionRate: 0.05})
	s0, err := Take(dev.Tree(), dev.Now())
	if err != nil {
		t.Fatal(err)
	}
	dev.Advance(10 * time.Second)
	s1, err := Take(dev.Tree(), dev.Now())
	if err != nil {
		t.Fatal(err)
	}
	in := Compute(s0, s1, 0)
	if in.Utilization < 0.55 || in.Utilization > 0.65 {
		t.Errorf("utilization = %f, want ≈0.6", in.Utilization)
	}
	if in.BroadcastRate < 0.08 || in.BroadcastRate > 0.12 {
		t.Errorf("broadcast = %f, want ≈0.1", in.BroadcastRate)
	}
}

func TestIndexScoreAndClassify(t *testing.T) {
	ix := Index{Weights: [4]float64{1, 0, 0, 0}, Bias: -0.5}
	if ix.Unhealthy(Indicators{Utilization: 0.4}) {
		t.Error("0.4 classified unhealthy at threshold 0.5")
	}
	if !ix.Unhealthy(Indicators{Utilization: 0.6}) {
		t.Error("0.6 classified healthy at threshold 0.5")
	}
	if got := ix.Score(Indicators{Utilization: 0.5}); got != 0 {
		t.Errorf("score = %f", got)
	}
}

func TestDefaultIndexSeparatesEpisodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := DefaultIndex()
	// The default estimates should classify archetypal episodes.
	healthy := Indicators{Utilization: 0.15, CollisionRate: 0.02, BroadcastRate: 0.03, ErrorRate: 0.001}
	storm := Indicators{Utilization: 0.45, CollisionRate: 0.05, BroadcastRate: 0.55, ErrorRate: 0.002}
	if ix.Unhealthy(healthy) {
		t.Error("nominal load classified unhealthy by default index")
	}
	if !ix.Unhealthy(storm) {
		t.Error("broadcast storm classified healthy by default index")
	}
	_ = rng
}

func TestLMSTrainingImprovesAccuracy(t *testing.T) {
	samples, err := GenerateSamples(7, 400)
	if err != nil {
		t.Fatal(err)
	}
	train, test := samples[:300], samples[300:]

	// Start from deliberately bad weights.
	bad := Index{Weights: [4]float64{0, 0, 0, 0}, Bias: 1} // everything unhealthy
	before := Evaluate(bad, test)

	trained, curve := TrainLMS(bad, train, 50, 0.05)
	after := Evaluate(trained, test)

	if after.Accuracy <= before.Accuracy {
		t.Fatalf("LMS did not improve: before %.2f after %.2f", before.Accuracy, after.Accuracy)
	}
	if after.Accuracy < 0.85 {
		t.Fatalf("trained accuracy = %.2f, want ≥ 0.85", after.Accuracy)
	}
	if len(curve) != 50 {
		t.Fatalf("curve length = %d", len(curve))
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("MSE did not decrease: %f → %f", curve[0], curve[len(curve)-1])
	}
}

func TestTrainLMSEdgeCases(t *testing.T) {
	ix := DefaultIndex()
	got, curve := TrainLMS(ix, nil, 10, 0.1)
	if got != ix || curve != nil {
		t.Error("training on no samples changed the index")
	}
	got, curve = TrainLMS(ix, []Sample{{}}, 0, 0.1)
	if got != ix || curve != nil {
		t.Error("zero epochs changed the index")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	ix := Index{Weights: [4]float64{1, 0, 0, 0}, Bias: -0.5}
	samples := []Sample{
		{In: Indicators{Utilization: 0.9}, Unhealthy: true},  // hit
		{In: Indicators{Utilization: 0.1}, Unhealthy: false}, // correct reject
		{In: Indicators{Utilization: 0.9}, Unhealthy: false}, // false alarm
		{In: Indicators{Utilization: 0.1}, Unhealthy: true},  // miss
	}
	m := Evaluate(ix, samples)
	if m.Accuracy != 0.5 || m.FalseAlarm != 0.5 || m.Miss != 0.5 {
		t.Fatalf("metrics = %+v", m)
	}
	if (Evaluate(ix, nil) != Metrics{}) {
		t.Fatal("empty evaluation not zero")
	}
}

func TestEpisodeKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []EpisodeKind{Nominal, Congestion, BroadcastStorm, ErrorBurst, CollisionStorm} {
		p := EpisodeLoad(k, rng)
		if p.Utilization <= 0 || p.Utilization > 1.05 {
			t.Errorf("%s utilization = %f", k, p.Utilization)
		}
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Nominal.Unhealthy() || !BroadcastStorm.Unhealthy() {
		t.Error("labels wrong")
	}
}

func TestGenerateSamplesDeterministic(t *testing.T) {
	a, err := GenerateSamples(11, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSamples(11, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
	var unhealthy int
	for _, s := range a {
		if s.Unhealthy {
			unhealthy++
		}
	}
	if unhealthy == 0 || unhealthy == len(a) {
		t.Fatalf("degenerate label distribution: %d/%d", unhealthy, len(a))
	}
}

// TestAgentSourceRunsInSimulation compiles the generated delegated
// health agent and runs it against a simulated segment: it must stay
// quiet under nominal load and report during a broadcast storm.
func TestAgentSourceRunsInSimulation(t *testing.T) {
	sim := netsim.NewSim()
	st, err := netsim.NewStation("seg-1", 13, netsim.LAN(), "public")
	if err != nil {
		t.Fatal(err)
	}
	var tr netsim.Traffic
	ses := netsim.NewSession(sim, st, &tr)
	agent, err := netsim.NewAgent(sim, st, ses, AgentSource(DefaultIndex(), false))
	if err != nil {
		t.Fatal(err)
	}
	var reports []string
	agent.OnReport = func(p string) { reports = append(reports, p) }

	rng := rand.New(rand.NewSource(14))
	st.Dev.SetLoad(EpisodeLoad(Nominal, rng))
	// Nominal for 60s, storm for 60s, nominal again; eval every 10s.
	for i := 1; i <= 18; i++ {
		i := i
		sim.At(time.Duration(i)*10*time.Second, func() {
			switch i {
			case 6:
				st.Dev.SetLoad(EpisodeLoad(BroadcastStorm, rng))
			case 12:
				st.Dev.SetLoad(EpisodeLoad(Nominal, rng))
			}
			if _, err := agent.Invoke("eval"); err != nil {
				t.Errorf("eval %d: %v", i, err)
			}
		})
	}
	sim.Run(4 * time.Minute)
	if len(reports) == 0 {
		t.Fatal("storm produced no notifications")
	}
	if len(reports) > 8 {
		t.Fatalf("report-on-exception leaked %d reports", len(reports))
	}
	for _, r := range reports {
		if !strings.Contains(r, "UNHEALTHY") {
			t.Fatalf("report = %q", r)
		}
	}
}

// TestAgentSourcePeriodicMode verifies the ablation variant reports on
// every evaluation.
func TestAgentSourcePeriodicMode(t *testing.T) {
	sim := netsim.NewSim()
	st, err := netsim.NewStation("seg-2", 15, netsim.LAN(), "public")
	if err != nil {
		t.Fatal(err)
	}
	var tr netsim.Traffic
	ses := netsim.NewSession(sim, st, &tr)
	agent, err := netsim.NewAgent(sim, st, ses, AgentSource(DefaultIndex(), true))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	agent.OnReport = func(string) { count++ }
	for i := 1; i <= 5; i++ {
		sim.At(time.Duration(i)*10*time.Second, func() {
			if _, err := agent.Invoke("eval"); err != nil {
				t.Error(err)
			}
		})
	}
	sim.Run(time.Minute)
	// The first eval only primes state; the remaining 4 report.
	if count != 4 {
		t.Fatalf("periodic reports = %d, want 4", count)
	}
}
