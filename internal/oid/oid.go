// Package oid implements ASN.1 object identifiers as used by SNMP and
// the MbD management information base.
//
// An OID is an immutable sequence of non-negative integer arcs. The
// package provides parsing, formatting, lexicographic ordering (the
// order that governs SNMP GetNext traversal), and prefix tests.
package oid

import (
	"fmt"
	"strconv"
	"strings"
)

// OID is an ASN.1 object identifier. The zero value is the empty OID.
//
// Callers must treat an OID as immutable; mutating the underlying slice
// of an OID shared with this package has undefined results. Use Clone
// when a private copy is needed.
type OID []uint32

// Parse converts a dotted-decimal string such as "1.3.6.1.2.1.1.1.0"
// into an OID. A leading dot is accepted ("." prefix is common in SNMP
// tooling). The empty string parses to the empty OID.
func Parse(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	o := make(OID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("oid: invalid arc %q in %q: %w", p, s, err)
		}
		o = append(o, uint32(v))
	}
	return o, nil
}

// MustParse is like Parse but panics on error. It is intended for
// package-level OID constants.
func MustParse(s string) OID {
	o, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String renders the OID in dotted-decimal form without a leading dot.
func (o OID) String() string {
	if len(o) == 0 {
		return ""
	}
	var b strings.Builder
	for i, arc := range o {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(arc), 10))
	}
	return b.String()
}

// Clone returns a copy of o that shares no storage with it.
func (o OID) Clone() OID {
	if o == nil {
		return nil
	}
	c := make(OID, len(o))
	copy(c, o)
	return c
}

// Compare returns -1, 0, or 1 according to the lexicographic order of
// the two OIDs. A proper prefix sorts before any of its extensions;
// this is exactly the ordering SNMP GetNext traversal follows.
func (o OID) Compare(p OID) int {
	n := len(o)
	if len(p) < n {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < p[i]:
			return -1
		case o[i] > p[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(p):
		return -1
	case len(o) > len(p):
		return 1
	}
	return 0
}

// Equal reports whether the two OIDs are identical.
func (o OID) Equal(p OID) bool { return o.Compare(p) == 0 }

// HasPrefix reports whether p is a prefix of o (every OID is a prefix
// of itself).
func (o OID) HasPrefix(p OID) bool {
	if len(p) > len(o) {
		return false
	}
	for i := range p {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Append returns a new OID consisting of o followed by arcs. The
// receiver is not modified.
func (o OID) Append(arcs ...uint32) OID {
	c := make(OID, len(o), len(o)+len(arcs))
	copy(c, o)
	return append(c, arcs...)
}

// Index returns the instance suffix of o under prefix p, or nil and
// false when p is not a proper prefix of o.
func (o OID) Index(p OID) (OID, bool) {
	if !o.HasPrefix(p) || len(o) == len(p) {
		return nil, false
	}
	return o[len(p):].Clone(), true
}
