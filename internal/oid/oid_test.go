package oid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantLen int
		wantErr bool
	}{
		{in: "1.3.6.1.2.1.1.1.0", want: "1.3.6.1.2.1.1.1.0", wantLen: 9},
		{in: ".1.3.6.1", want: "1.3.6.1", wantLen: 4},
		{in: "", want: "", wantLen: 0},
		{in: "0", want: "0", wantLen: 1},
		{in: "1..2", wantErr: true},
		{in: "1.x.2", wantErr: true},
		{in: "1.-2", wantErr: true},
		{in: "1.4294967296", wantErr: true}, // exceeds uint32
		{in: "1.4294967295", want: "1.4294967295", wantLen: 2},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got.String() != tt.want || len(got) != tt.wantLen {
			t.Errorf("Parse(%q) = %q (len %d), want %q (len %d)", tt.in, got, len(got), tt.want, tt.wantLen)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("not.an.oid")
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.2.3", "1.2.3", 0},
		{"1.2", "1.2.3", -1},
		{"1.2.3", "1.2", 1},
		{"1.2.3", "1.2.4", -1},
		{"1.10", "1.9", 1}, // numeric, not lexical on strings
		{"", "0", -1},
		{"", "", 0},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		if got := a.Compare(b); got != tt.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := b.Compare(a); got != -tt.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestHasPrefixAndIndex(t *testing.T) {
	base := MustParse("1.3.6.1.2.1.2.2.1")
	inst := base.Append(2, 42)
	if !inst.HasPrefix(base) {
		t.Fatalf("%v should have prefix %v", inst, base)
	}
	if base.HasPrefix(inst) {
		t.Fatalf("%v should not have prefix %v", base, inst)
	}
	idx, ok := inst.Index(base)
	if !ok || idx.String() != "2.42" {
		t.Fatalf("Index = %v, %v; want 2.42, true", idx, ok)
	}
	if _, ok := base.Index(base); ok {
		t.Fatal("an OID must not index under itself")
	}
	if !base.HasPrefix(base) {
		t.Fatal("an OID is a prefix of itself")
	}
}

func TestAppendDoesNotAliasReceiver(t *testing.T) {
	base := MustParse("1.3.6")
	a := base.Append(1)
	b := base.Append(2)
	if a.String() != "1.3.6.1" || b.String() != "1.3.6.2" {
		t.Fatalf("Append aliased storage: a=%v b=%v", a, b)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustParse("1.2.3")
	c := a.Clone()
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone shares storage with receiver")
	}
	if OID(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func randOID(r *rand.Rand) OID {
	n := r.Intn(10)
	o := make(OID, n)
	for i := range o {
		o[i] = uint32(r.Intn(1000))
	}
	return o
}

// Property: Compare is a total order — antisymmetric, transitive via
// sort consistency, and consistent with Equal.
func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	oids := make([]OID, 200)
	for i := range oids {
		oids[i] = randOID(r)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i].Compare(oids[j]) < 0 })
	for i := 1; i < len(oids); i++ {
		if oids[i-1].Compare(oids[i]) > 0 {
			t.Fatalf("sort produced out-of-order pair at %d: %v > %v", i, oids[i-1], oids[i])
		}
	}
	f := func(a, b []uint32) bool {
		x, y := OID(a), OID(b)
		if x.Compare(y) != -y.Compare(x) {
			return false
		}
		return (x.Compare(y) == 0) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse(String(o)) == o.
func TestStringParseRoundTrip(t *testing.T) {
	f := func(arcs []uint32) bool {
		o := OID(arcs)
		p, err := Parse(o.String())
		if err != nil {
			return false
		}
		if len(arcs) == 0 {
			return len(p) == 0
		}
		return p.Equal(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
