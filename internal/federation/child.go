package federation

import (
	"context"
	"net"
	"strings"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// childLink is a node's upstream half: it dials the parent (riding the
// rds client's WithReconnect machinery across outages), joins the
// parent's domain, heartbeats, and forwards this node's rollup-change
// events as PeerReports.
//
// Forwarding keeps a latest-value-per-key pending map rather than a
// fire-and-forget queue: a report that cannot be delivered (parent
// down, parent restarted and amnesiac) stays pending and is retried
// after the next successful join/heartbeat, so the parent's rollup
// always converges to this node's latest values — reports are neither
// lost nor double-counted (the parent overwrites the member's slot).
type childLink struct {
	n    *Node
	kick chan struct{}

	// pending is guarded by n.mu (cheap: touched only on rollup
	// changes and flushes).
	pending map[string]localReport
}

func newChildLink(n *Node) *childLink {
	return &childLink{
		n:       n,
		kick:    make(chan struct{}, 1),
		pending: make(map[string]localReport),
	}
}

// enqueue records key's latest value for upstream delivery and nudges
// the run loop. Called from the node's event subscriber — never blocks.
func (c *childLink) enqueue(key, value string, timeMS int64) {
	c.n.mu.Lock()
	c.pending[key] = localReport{key: key, value: value, timeMS: timeMS}
	c.n.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// onEvent filters for this node's own rollup events ("key=value" from
// rollupPrefix sources) and queues them upstream.
func (c *childLink) onEvent(ev elastic.Event) {
	if ev.Kind != elastic.EventReport || !strings.HasPrefix(ev.DPI, rollupPrefix) {
		return
	}
	key, value, ok := strings.Cut(ev.Payload, "=")
	if !ok {
		return
	}
	c.enqueue(key, value, time.Now().UnixMilli())
}

// run is the child's main loop.
func (c *childLink) run(ctx context.Context) {
	defer c.n.wg.Done()
	cfg := c.n.cfg
	unsub := cfg.Proc.Subscribe(c.onEvent)
	defer unsub()

	// Dial the parent until it answers; afterwards WithReconnect owns
	// redialing and the loop below re-joins over each fresh connection.
	var client *rds.Client
	for attempt := 1; client == nil; attempt++ {
		conn, err := cfg.Dialer(cfg.Parent)
		if err != nil {
			select {
			case <-time.After(rds.Backoff(cfg.HeartbeatInterval, cfg.DeadAfter, attempt)):
				continue
			case <-ctx.Done():
				return
			}
		}
		opts := []rds.ClientOption{
			rds.WithDialTimeout(cfg.DialTimeout),
			rds.WithDialer(func() (net.Conn, error) { return cfg.Dialer(cfg.Parent) }),
			rds.WithReconnect(rds.ReconnectConfig{
				BackoffBase: cfg.HeartbeatInterval / 4,
				BackoffMax:  cfg.DeadAfter,
			}),
		}
		if cfg.Auth != nil {
			opts = append(opts, rds.WithAuth(cfg.Auth))
		}
		client = rds.NewClient(conn, cfg.Principal, opts...)
	}
	defer client.Close()

	joined := false
	fails := 0
	for {
		var err error
		if !joined {
			err = client.PeerJoin(ctx, cfg.Name, cfg.Domain, cfg.Advertise)
			if err == nil {
				joined = true
				fails = 0
				// The parent may be freshly (re)started and amnesiac:
				// re-seed every current rollup value so its view
				// converges without waiting for new local reports.
				c.reseed()
			}
		} else {
			err = client.PeerHeartbeat(ctx, cfg.Name)
			if err == nil {
				fails = 0
			} else if isUnknownMember(err) {
				joined = false
				continue // re-join immediately, no sleep
			}
		}
		if err != nil {
			fails++
		}
		if joined {
			joined = c.flush(ctx, client)
			if !joined {
				continue
			}
		}

		delay := rds.Backoff(cfg.HeartbeatInterval, cfg.HeartbeatInterval, 1)
		if fails > 0 {
			delay = rds.Backoff(cfg.HeartbeatInterval, cfg.DeadAfter/2, fails)
		}
		select {
		case <-time.After(delay):
		case <-c.kick:
		case <-ctx.Done():
			return
		}
	}
}

// reseed queues every current rollup value for upstream delivery.
func (c *childLink) reseed() {
	for _, row := range c.n.rollup.Rows() {
		c.enqueue(row.Key, row.Value, time.Now().UnixMilli())
	}
}

// flush tries to deliver every pending report, keeping failures pending
// for the next round. Returns false when the parent no longer knows us
// (re-join needed).
func (c *childLink) flush(ctx context.Context, client *rds.Client) (stillJoined bool) {
	c.n.mu.Lock()
	batch := make([]localReport, 0, len(c.pending))
	for _, r := range c.pending {
		batch = append(batch, r)
	}
	c.n.mu.Unlock()
	for _, r := range batch {
		rctx, cancel := context.WithTimeout(ctx, c.n.cfg.DialTimeout)
		err := client.PeerReport(rctx, c.n.cfg.Name, r.key, r.value, r.timeMS)
		cancel()
		if err != nil {
			return !isUnknownMember(err)
		}
		c.n.mu.Lock()
		if cur, ok := c.pending[r.key]; ok && cur.value == r.value && cur.timeMS == r.timeMS {
			delete(c.pending, r.key)
		}
		c.n.mu.Unlock()
	}
	return true
}
