package federation

import (
	"context"
	"net"
	"sort"
	"strings"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// childLink is a node's upstream half: it dials the parent (riding the
// rds client's WithReconnect machinery across outages), joins the
// parent's domain, then sends one coalesced sync frame per beat — the
// heartbeat, every pending rollup delta, and this node's bundle
// inventory in a single round trip (OpPeerSync), instead of one
// heartbeat plus N report exchanges.
//
// Forwarding keeps a latest-value-per-key pending map rather than a
// fire-and-forget queue: a report that cannot be delivered (parent
// down, parent restarted and amnesiac) stays pending and is retried
// in the next frame, so the parent's rollup always converges to this
// node's latest values — reports are neither lost nor double-counted
// (the parent overwrites the member's slot).
type childLink struct {
	n    *Node
	kick chan struct{}

	// pending is guarded by n.mu (cheap: touched only on rollup
	// changes and flushes).
	pending map[string]localReport
}

func newChildLink(n *Node) *childLink {
	return &childLink{
		n:       n,
		kick:    make(chan struct{}, 1),
		pending: make(map[string]localReport),
	}
}

// enqueue records key's latest value for upstream delivery and nudges
// the run loop. Called from the node's event subscriber — never blocks.
func (c *childLink) enqueue(key, value string, timeMS int64) {
	c.n.mu.Lock()
	c.pending[key] = localReport{key: key, value: value, timeMS: timeMS}
	c.n.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// onEvent filters for this node's own rollup events ("key=value" from
// rollupPrefix sources) and queues them upstream.
func (c *childLink) onEvent(ev elastic.Event) {
	if ev.Kind != elastic.EventReport || !strings.HasPrefix(ev.DPI, rollupPrefix) {
		return
	}
	key, value, ok := strings.Cut(ev.Payload, "=")
	if !ok {
		return
	}
	c.enqueue(key, value, time.Now().UnixMilli())
}

// run is the child's main loop.
func (c *childLink) run(ctx context.Context) {
	defer c.n.wg.Done()
	cfg := c.n.cfg
	unsub := cfg.Proc.Subscribe(c.onEvent)
	defer unsub()

	// Dial the parent until it answers; afterwards WithReconnect owns
	// redialing and the loop below re-joins over each fresh connection.
	var client *rds.Client
	for attempt := 1; client == nil; attempt++ {
		conn, err := cfg.Dialer(cfg.Parent)
		if err != nil {
			select {
			case <-time.After(rds.Backoff(cfg.HeartbeatInterval, cfg.DeadAfter, attempt)):
				continue
			case <-ctx.Done():
				return
			}
		}
		opts := []rds.ClientOption{
			rds.WithDialTimeout(cfg.DialTimeout),
			rds.WithDialer(func() (net.Conn, error) { return cfg.Dialer(cfg.Parent) }),
			rds.WithReconnect(rds.ReconnectConfig{
				BackoffBase: cfg.HeartbeatInterval / 4,
				BackoffMax:  cfg.DeadAfter,
			}),
		}
		if cfg.Auth != nil {
			opts = append(opts, rds.WithAuth(cfg.Auth))
		}
		client = rds.NewClient(conn, cfg.Principal, opts...)
	}
	defer client.Close()

	joined := false
	fails := 0
	for {
		var err error
		if !joined {
			err = client.PeerJoin(ctx, cfg.Name, cfg.Domain, cfg.Advertise)
			if err == nil {
				joined = true
				fails = 0
				// The parent may be freshly (re)started and amnesiac:
				// re-seed every current rollup value so its view
				// converges without waiting for new local reports.
				c.reseed()
			}
		}
		if joined {
			err = c.sync(ctx, client)
			if err == nil {
				fails = 0
			} else if isUnknownMember(err) {
				joined = false
				continue // re-join immediately, no sleep
			}
		}
		if err != nil {
			fails++
		}

		delay := rds.Backoff(cfg.HeartbeatInterval, cfg.HeartbeatInterval, 1)
		if fails > 0 {
			delay = rds.Backoff(cfg.HeartbeatInterval, cfg.DeadAfter/2, fails)
		}
		select {
		case <-time.After(delay):
		case <-c.kick:
		case <-ctx.Done():
			return
		}
	}
}

// reseed queues every current rollup value for upstream delivery.
func (c *childLink) reseed() {
	for _, row := range c.n.rollup.Rows() {
		c.enqueue(row.Key, row.Value, time.Now().UnixMilli())
	}
}

// maxFrameReports caps the rollup deltas coalesced into one sync frame
// (matching the server-side decode bound); a deeper backlog rides the
// immediately-kicked next frame.
const maxFrameReports = 4096

// sync sends one coalesced frame — heartbeat + pending rollup deltas +
// bundle inventory — and clears the deltas it delivered. Entries that
// changed while the frame was in flight stay pending, so the parent
// still converges to the latest values.
func (c *childLink) sync(ctx context.Context, client *rds.Client) error {
	c.n.mu.Lock()
	batch := make([]localReport, 0, len(c.pending))
	for _, r := range c.pending {
		if len(batch) == maxFrameReports {
			break
		}
		batch = append(batch, r)
	}
	c.n.mu.Unlock()
	sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })

	sb := &rds.SyncBatch{Bundles: c.n.BundleStatuses()}
	for _, r := range batch {
		sb.Reports = append(sb.Reports, rds.SyncReport{Key: r.key, Value: r.value, TimeMS: r.timeMS})
	}
	rctx, cancel := context.WithTimeout(ctx, c.n.cfg.DialTimeout)
	err := client.PeerSync(rctx, c.n.cfg.Name, sb)
	cancel()
	if err != nil {
		return err
	}
	c.n.mu.Lock()
	for _, r := range batch {
		if cur, ok := c.pending[r.key]; ok && cur.value == r.value && cur.timeMS == r.timeMS {
			delete(c.pending, r.key)
		}
	}
	backlog := len(c.pending) > 0 && len(batch) == maxFrameReports
	c.n.mu.Unlock()
	if backlog {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	return nil
}
