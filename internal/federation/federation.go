// Package federation organizes MbD servers into named management
// domains with a parent/child topology — the paper's hierarchy of
// managers applied to the servers themselves. A child registers with
// its parent over RDS and heartbeats; the parent's failure detector
// moves silent members through alive → suspect → dead. Delegating a
// program to a domain root cascades it down the tree (each hop passing
// the local static-analysis admission gate), and member-emitted reports
// roll up the tree through pluggable combiners, published both as RDS
// events and as a walkable MIB subtree (see fedmib.go).
//
// Rollup semantics are latest-per-member: each member owns exactly one
// slot per key, so a member that crashes and re-joins replaces its old
// contribution instead of double-counting, and a member declared dead
// has its contributions dropped so the combined value converges back to
// the live membership. Every node — leaf, intermediate, root — applies
// its own local DPI reports to its own rollup (itself as a member) and
// forwards only rollup-change events upstream, which makes cascading
// uniform: an intermediate's parent sees one contribution per child
// subtree, already combined.
package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/obs"
	"mbd/internal/rds"
)

// MemberState is a registered member's liveness as judged by the
// failure detector.
type MemberState int

// Member liveness states.
const (
	// MemberAlive members heartbeat within SuspectAfter.
	MemberAlive MemberState = iota
	// MemberSuspect members missed heartbeats for SuspectAfter but are
	// still counted in the rollup and still receive cascades.
	MemberSuspect
	// MemberDead members missed heartbeats for DeadAfter: their rollup
	// contributions are dropped and cascades skip them. A dead member
	// revives only by re-joining.
	MemberDead
)

// String renders the state for status documents and the MIB.
func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrUnknownMember answers a heartbeat or report from a member this
// node does not know — after a root restart, or after the member was
// declared dead. The child reacts by re-joining (see child.go), which
// makes membership survive either side restarting.
var ErrUnknownMember = errors.New("federation: unknown member")

// isUnknownMember matches ErrUnknownMember across the wire, where the
// error arrives as rendered text.
func isUnknownMember(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrUnknownMember) || strings.Contains(err.Error(), "unknown member"))
}

// Config parameterizes a Node. Name, Domain and Proc are required.
type Config struct {
	// Name is this server's member name, unique within its parent's
	// domain.
	Name string
	// Domain is the management domain this node roots.
	Domain string
	// Proc is the node's elastic process: the admission gate and
	// instantiation target for cascaded delegations, and the event
	// source for rollup contributions.
	Proc *elastic.Process
	// Parent is the parent node's RDS address; empty marks the top
	// root.
	Parent string
	// Advertise is the RDS address members and the parent use to reach
	// this node (required to receive cascaded delegations).
	Advertise string
	// Principal authenticates federation traffic (default "federation").
	Principal string
	// Auth, when set, signs and verifies peer requests.
	Auth *rds.Authenticator
	// Combiner is the default rollup combiner (default Latest; see
	// Sum, Max, DPCombiner).
	Combiner Combiner
	// HeartbeatInterval paces child heartbeats and the failure-detector
	// sweep (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter without a heartbeat marks a member suspect (default
	// 3×HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter without a heartbeat marks a member dead (default
	// 8×HeartbeatInterval).
	DeadAfter time.Duration
	// DialTimeout bounds each dial to a parent or member (default 5s).
	DialTimeout time.Duration
	// Dialer overrides how peers are reached — a test seam (default
	// TCP with DialTimeout).
	Dialer func(addr string) (net.Conn, error)
	// Obs receives federation_* metrics (default a private registry).
	Obs *obs.Registry
	// Tracer records join/fanout/rollup/member-dead spans (nil is
	// valid).
	Tracer *obs.Tracer
}

// member is one registered child in this node's domain.
type member struct {
	name     string
	domain   string
	addr     string
	state    MemberState
	joined   time.Time
	lastSeen time.Time
	reports  uint64
	rejoins  uint64
	// bundles is the member's last-reported lineage inventory, carried
	// by its sync frames.
	bundles []rds.BundleStatus
}

// localReport is one local DPI report queued for rollup application.
type localReport struct {
	key    string
	value  string
	timeMS int64
}

// applyQueueLen bounds the local-report apply queue; the subscriber
// callback must never block the emitting DPI goroutine.
const applyQueueLen = 1024

// nodeMetrics groups the federation_* instruments.
type nodeMetrics struct {
	joins          *obs.Counter
	heartbeats     *obs.Counter
	reports        *obs.Counter
	fanouts        *obs.Counter
	fanoutAccepted *obs.Counter
	fanoutRejected *obs.Counter
	rollupUpdates  *obs.Counter
	suspects       *obs.Counter
	deaths         *obs.Counter
	applyDrops     *obs.Counter
	bytecodeShips  *obs.Counter

	syncFrames        *obs.Counter
	syncReports       *obs.Counter
	bundleStages      *obs.Counter
	bundleStageBytes  *obs.Counter
	bundleActivations *obs.Counter
}

// Node is one server's seat in the federation: the root of domain
// Config.Domain (tracking members, cascading delegations, rolling up
// reports) and, when Config.Parent is set, simultaneously a child of
// the domain above. It implements rds.PeerHandler; install it on the
// server with rds.WithPeerHandler.
type Node struct {
	cfg    Config
	rollup *Rollup
	tracer *obs.Tracer
	met    nodeMetrics

	mu      sync.Mutex
	members map[string]*member

	bundles bundleStore

	applyCh chan localReport
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	unsub   func()
	child   *childLink
	started bool
}

// New validates cfg, applies defaults, and returns a stopped node.
// Call Start to begin heartbeating, failure detection, and report
// forwarding.
func New(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("federation: Config.Name is required")
	}
	if cfg.Domain == "" {
		return nil, errors.New("federation: Config.Domain is required")
	}
	if cfg.Proc == nil {
		return nil, errors.New("federation: Config.Proc is required")
	}
	if cfg.Principal == "" {
		cfg.Principal = "federation"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.HeartbeatInterval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 8 * cfg.HeartbeatInterval
	}
	if cfg.DeadAfter < cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Dialer == nil {
		to := cfg.DialTimeout
		cfg.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, to)
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	n := &Node{
		cfg:     cfg,
		rollup:  NewRollup(cfg.Combiner),
		tracer:  cfg.Tracer,
		members: make(map[string]*member),
		applyCh: make(chan localReport, applyQueueLen),
	}
	reg := cfg.Obs
	n.met = nodeMetrics{
		joins:          reg.Counter("federation_joins_total", "member join (and re-join) registrations accepted"),
		heartbeats:     reg.Counter("federation_heartbeats_total", "member heartbeats accepted"),
		reports:        reg.Counter("federation_reports_total", "member reports merged into the rollup"),
		fanouts:        reg.Counter("federation_fanouts_total", "cascaded delegations fanned out from this node"),
		fanoutAccepted: reg.LabeledCounter("federation_fanout_outcomes_total", "cascaded delegation outcomes by result", "outcome", "accepted"),
		fanoutRejected: reg.LabeledCounter("federation_fanout_outcomes_total", "cascaded delegation outcomes by result", "outcome", "rejected"),
		rollupUpdates:  reg.Counter("federation_rollup_updates_total", "rollup keys whose combined value changed"),
		suspects:       reg.Counter("federation_member_suspects_total", "members marked suspect by the failure detector"),
		deaths:         reg.Counter("federation_member_deaths_total", "members declared dead by the failure detector"),
		applyDrops:     reg.Counter("federation_apply_drops_total", "local reports dropped on apply-queue overflow"),
		bytecodeShips:  reg.Counter("federation_bytecode_ships_total", "cascaded delegations forwarded as verified bytecode instead of source"),

		syncFrames:        reg.Counter("federation_sync_frames_total", "batched child sync frames accepted"),
		syncReports:       reg.Counter("federation_sync_reports_total", "rollup deltas carried by sync frames"),
		bundleStages:      reg.Counter("federation_bundle_stages_total", "golden bundle stage requests served (probes included)"),
		bundleStageBytes:  reg.Counter("federation_bundle_stage_bytes_total", "bundle artifact bytes received by stage requests"),
		bundleActivations: reg.Counter("federation_bundle_activations_total", "bundle version flips performed locally"),
	}
	reg.FuncGauge("federation_members_alive", "members currently alive", n.stateGauge(MemberAlive))
	reg.FuncGauge("federation_members_suspect", "members currently suspect", n.stateGauge(MemberSuspect))
	reg.FuncGauge("federation_members_dead", "members currently dead", n.stateGauge(MemberDead))
	return n, nil
}

func (n *Node) stateGauge(s MemberState) func() int64 {
	return func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		c := int64(0)
		for _, m := range n.members {
			if m.state == s {
				c++
			}
		}
		return c
	}
}

// Rollup exposes the node's aggregation point, e.g. to install per-key
// combiners.
func (n *Node) Rollup() *Rollup { return n.rollup }

// Domain returns the domain this node roots.
func (n *Node) Domain() string { return n.cfg.Domain }

// Name returns this node's member name.
func (n *Node) Name() string { return n.cfg.Name }

// Start launches the background machinery: the apply queue drain, the
// failure-detector sweep, the process-event subscription, and — when a
// parent is configured — the child link that joins, heartbeats, and
// forwards rollup changes upstream.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.mu.Unlock()

	n.unsub = n.cfg.Proc.Subscribe(n.onEvent)
	n.wg.Add(2)
	go n.applyLoop()
	go n.detectLoop()
	if n.cfg.Parent != "" {
		n.child = newChildLink(n)
		n.wg.Add(1)
		go n.child.run(n.ctx)
	}
}

// Stop cancels the background machinery and waits for it to exit.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	cancel := n.cancel
	n.mu.Unlock()
	if n.unsub != nil {
		n.unsub()
	}
	cancel()
	n.wg.Wait()
}

// rollupPrefix marks synthesized rollup events; the event source is
// rollupPrefix + domain, so subscribers can tell combined values from
// raw DPI reports, and the node itself never re-applies its own
// synthesis.
const rollupPrefix = "federation/"

// dpiBase maps an instance id to its rollup key: the DP name, with the
// "#n" instance suffix stripped so restarted instances keep one slot.
func dpiBase(dpi string) string {
	if i := strings.IndexByte(dpi, '#'); i >= 0 {
		return dpi[:i]
	}
	return dpi
}

// onEvent routes local process events: raw DPI reports queue for rollup
// application (as this node's own contribution); synthesized rollup
// events are the child link's to forward and are skipped here.
func (n *Node) onEvent(ev elastic.Event) {
	if ev.Kind != elastic.EventReport || strings.HasPrefix(ev.DPI, rollupPrefix) {
		return
	}
	select {
	case n.applyCh <- localReport{key: dpiBase(ev.DPI), value: ev.Payload, timeMS: time.Now().UnixMilli()}:
	default:
		n.met.applyDrops.Inc()
	}
}

// applyLoop drains local reports into the rollup off the emitting
// goroutine.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		select {
		case r := <-n.applyCh:
			n.applyReport(n.cfg.Name, r.key, r.value, r.timeMS)
		case <-n.ctx.Done():
			return
		}
	}
}

// applyReport merges one contribution and publishes the combined value
// when it changed — as a process event (visible to RDS subscribers and,
// via the child link, to the parent).
func (n *Node) applyReport(member, key, value string, timeMS int64) {
	combined, changed := n.rollup.Report(member, key, value, timeMS)
	if !changed {
		return
	}
	n.met.rollupUpdates.Inc()
	n.tracer.Record(n.cfg.Domain, obs.StageRollup,
		fmt.Sprintf("%s=%s (from %s)", key, combined, member), 0)
	n.cfg.Proc.Publish(rollupPrefix+n.cfg.Domain, elastic.EventReport, key+"="+combined)
}

// detectLoop is the failure detector: a jittered sweep at the heartbeat
// interval moving silent members alive → suspect → dead and dropping a
// dead member's rollup contributions.
func (n *Node) detectLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-time.After(rds.Backoff(n.cfg.HeartbeatInterval, n.cfg.HeartbeatInterval, 1)):
		case <-n.ctx.Done():
			return
		}
		n.sweep(time.Now())
	}
}

// sweep applies the state transitions due at now.
func (n *Node) sweep(now time.Time) {
	var dead []string
	n.mu.Lock()
	for _, m := range n.members {
		silent := now.Sub(m.lastSeen)
		switch {
		case m.state == MemberAlive && silent > n.cfg.SuspectAfter:
			m.state = MemberSuspect
			n.met.suspects.Inc()
		case m.state == MemberSuspect && silent > n.cfg.DeadAfter:
			m.state = MemberDead
			n.met.deaths.Inc()
			dead = append(dead, m.name)
		}
	}
	n.mu.Unlock()
	for _, name := range dead {
		n.tracer.Record(name, obs.StageMemberDead,
			fmt.Sprintf("domain=%s silent>%s", n.cfg.Domain, n.cfg.DeadAfter), 0)
		for _, up := range n.rollup.DropMember(name) {
			if up.Removed {
				continue
			}
			n.met.rollupUpdates.Inc()
			n.cfg.Proc.Publish(rollupPrefix+n.cfg.Domain, elastic.EventReport, up.Key+"="+up.Value)
		}
	}
}

// PeerJoin implements rds.PeerHandler: register (or revive) a member.
func (n *Node) PeerJoin(principal, memberName, domain, addr string) error {
	if memberName == "" {
		return errors.New("federation: empty member name")
	}
	if memberName == n.cfg.Name {
		return fmt.Errorf("federation: member name %q collides with this node", memberName)
	}
	now := time.Now()
	n.mu.Lock()
	m, ok := n.members[memberName]
	if !ok {
		m = &member{name: memberName, joined: now}
		n.members[memberName] = m
	} else if m.state == MemberDead {
		m.rejoins++
	}
	m.domain = domain
	m.addr = addr
	m.state = MemberAlive
	m.lastSeen = now
	n.mu.Unlock()
	n.met.joins.Inc()
	n.tracer.Record(memberName, obs.StageJoin,
		fmt.Sprintf("domain=%s addr=%s principal=%s", domain, addr, principal), 0)
	return nil
}

// PeerHeartbeat implements rds.PeerHandler: refresh a member's
// liveness. Unknown (including dead-and-dropped after a restart)
// members are refused so the child re-joins.
func (n *Node) PeerHeartbeat(principal, memberName string) error {
	n.mu.Lock()
	m, ok := n.members[memberName]
	if ok && m.state != MemberDead {
		m.lastSeen = time.Now()
		m.state = MemberAlive
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, memberName)
	}
	if m.state == MemberDead {
		return fmt.Errorf("%w: %s (declared dead; re-join)", ErrUnknownMember, memberName)
	}
	n.met.heartbeats.Inc()
	return nil
}

// PeerReport implements rds.PeerHandler: merge one member report into
// the rollup. Reports double as liveness evidence. Unknown members are
// refused so the child re-joins before re-sending.
func (n *Node) PeerReport(principal, memberName, key, value string, timeMS int64) error {
	n.mu.Lock()
	m, ok := n.members[memberName]
	if ok && m.state != MemberDead {
		m.lastSeen = time.Now()
		m.state = MemberAlive
		m.reports++
	}
	dead := ok && m.state == MemberDead
	n.mu.Unlock()
	if !ok || dead {
		return fmt.Errorf("%w: %s", ErrUnknownMember, memberName)
	}
	n.met.reports.Inc()
	n.applyReport(memberName, key, value, timeMS)
	return nil
}

// PeerSync implements rds.PeerHandler: apply one batched child frame —
// heartbeat liveness, every carried rollup delta, and the member's
// bundle inventory — in a single round trip. Unknown members are
// refused so the child re-joins before re-sending.
func (n *Node) PeerSync(principal, memberName string, batch *rds.SyncBatch) error {
	n.mu.Lock()
	m, ok := n.members[memberName]
	dead := ok && m.state == MemberDead
	if ok && !dead {
		m.lastSeen = time.Now()
		m.state = MemberAlive
		m.reports += uint64(len(batch.Reports))
		if len(batch.Bundles) > 0 || m.bundles != nil {
			m.bundles = batch.Bundles
		}
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, memberName)
	}
	if dead {
		return fmt.Errorf("%w: %s (declared dead; re-join)", ErrUnknownMember, memberName)
	}
	n.met.heartbeats.Inc()
	n.met.syncFrames.Inc()
	n.met.syncReports.Add(uint64(len(batch.Reports)))
	n.met.reports.Add(uint64(len(batch.Reports)))
	for _, r := range batch.Reports {
		n.applyReport(memberName, r.Key, r.Value, r.TimeMS)
	}
	return nil
}

// PeerDelegate implements rds.PeerHandler: cascade one delegation
// through this node and its subtree.
func (n *Node) PeerDelegate(ctx context.Context, principal, dp, lang, source, entry string, args []string) (*rds.FanoutResult, error) {
	return n.Fanout(ctx, principal, dp, lang, source, entry, args), nil
}

// Fanout admits the program locally (instantiating entry(args...) when
// entry is non-empty), then cascades it concurrently to every member
// not declared dead, merging the per-member outcomes. Transport
// failures and admission rejections both surface as rejected outcomes —
// the caller always learns every hop's fate.
func (n *Node) Fanout(ctx context.Context, principal, dp, lang, source, entry string, args []string) *rds.FanoutResult {
	start := time.Now()
	n.met.fanouts.Inc()
	res := &rds.FanoutResult{DP: dp}
	res.Outcomes = append(res.Outcomes, n.localHop(principal, dp, lang, source, entry, args))

	// Cascade verified bytecode whenever it is available: a compiled
	// artifact is forwarded verbatim, and a source delegation that this
	// hop just analyzed ships its compiled artifact instead of making
	// every descendant repeat the source-level analysis. Children then
	// admit through the bytecode verifier alone.
	shipLang, shipPayload := lang, source
	if lang != rds.LangCompiled {
		if rec, ok := n.cfg.Proc.Repository().Lookup(dp); ok &&
			rec.Program != nil && rec.Program.SourceHash == dpl.HashSource(source) {
			if blob, err := rec.Program.Encode(); err == nil {
				shipLang, shipPayload = rds.LangCompiled, string(blob)
			}
		}
	}

	type target struct{ name, domain, addr string }
	var targets []target
	n.mu.Lock()
	for _, m := range n.members {
		if m.state != MemberDead {
			targets = append(targets, target{m.name, m.domain, m.addr})
		}
	}
	n.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	outs := make([][]rds.FanoutOutcome, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			outs[i] = n.cascade(ctx, t.name, t.domain, t.addr, dp, shipLang, shipPayload, entry, args)
		}(i, t)
	}
	wg.Wait()
	for _, o := range outs {
		res.Outcomes = append(res.Outcomes, o...)
	}
	for _, o := range res.Outcomes {
		if o.OK {
			n.met.fanoutAccepted.Inc()
		} else {
			n.met.fanoutRejected.Inc()
		}
	}
	n.tracer.Record(dp, obs.StageFanout,
		fmt.Sprintf("domain=%s accepted=%d rejected=%d", n.cfg.Domain, res.Accepted(), res.Rejected()),
		time.Since(start))
	return res
}

// localHop runs the delegation against this node's own elastic process:
// the source translator for source delegations, the bytecode verifier
// for compiled artifacts.
func (n *Node) localHop(principal, dp, lang, source, entry string, args []string) rds.FanoutOutcome {
	out := rds.FanoutOutcome{Member: n.cfg.Name, Domain: n.cfg.Domain, Addr: "local"}
	var err error
	if lang == rds.LangCompiled {
		err = n.cfg.Proc.DelegateCompiled(principal, dp, []byte(source))
	} else {
		err = n.cfg.Proc.Delegate(principal, dp, lang, source)
	}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if entry != "" {
		vals := make([]dpl.Value, 0, len(args))
		for _, a := range args {
			vals = append(vals, rds.ParseArg(a))
		}
		inst, err := n.cfg.Proc.Instantiate(principal, dp, entry, vals...)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.DPI = inst.ID
	}
	out.OK = true
	return out
}

// cascade forwards the delegation to one member's subtree and returns
// its outcomes (a single transport-failure outcome when unreachable).
func (n *Node) cascade(ctx context.Context, name, domain, addr, dp, lang, payload, entry string, args []string) []rds.FanoutOutcome {
	fail := func(err error) []rds.FanoutOutcome {
		return []rds.FanoutOutcome{{
			Member: name, Domain: domain, Addr: addr,
			Err: "transport: " + err.Error(),
		}}
	}
	if addr == "" {
		return fail(errors.New("member advertised no address"))
	}
	client, err := n.dialPeer(addr)
	if err != nil {
		return fail(err)
	}
	defer client.Close()
	var sub *rds.FanoutResult
	if lang == rds.LangCompiled {
		n.met.bytecodeShips.Inc()
		sub, err = client.PeerDelegateCompiled(ctx, dp, []byte(payload), entry, args...)
	} else {
		sub, err = client.PeerDelegate(ctx, dp, payload, entry, args...)
	}
	if err != nil {
		return fail(err)
	}
	return sub.Outcomes
}

// dialPeer opens a one-shot client to a peer address.
func (n *Node) dialPeer(addr string) (*rds.Client, error) {
	conn, err := n.cfg.Dialer(addr)
	if err != nil {
		return nil, err
	}
	opts := []rds.ClientOption{rds.WithDialTimeout(n.cfg.DialTimeout)}
	if n.cfg.Auth != nil {
		opts = append(opts, rds.WithAuth(n.cfg.Auth))
	}
	return rds.NewClient(conn, n.cfg.Principal, opts...), nil
}

// Status is the domain status document served by OpStats "federation"
// and consumed by mbdctl domain.
type Status struct {
	Name      string         `json:"name"`
	Domain    string         `json:"domain"`
	Parent    string         `json:"parent,omitempty"`
	Advertise string         `json:"advertise,omitempty"`
	Members   []MemberStatus `json:"members"`
	Rollup    []RollupStatus `json:"rollup"`
	// Bundles is this node's own lineage inventory (active hash +
	// staged version count per lineage).
	Bundles []rds.BundleStatus `json:"bundles,omitempty"`
}

// MemberStatus is one member's row in a Status document.
type MemberStatus struct {
	Name        string `json:"name"`
	Domain      string `json:"domain"`
	Addr        string `json:"addr"`
	State       string `json:"state"`
	AgeMS       int64  `json:"age_ms"`
	SinceSeenMS int64  `json:"since_seen_ms"`
	Reports     uint64 `json:"reports"`
	Rejoins     uint64 `json:"rejoins"`
	// Bundles is the member's last-reported lineage inventory.
	Bundles []rds.BundleStatus `json:"bundles,omitempty"`
}

// RollupStatus is one rollup key's row in a Status document.
type RollupStatus struct {
	Key          string `json:"key"`
	Value        string `json:"value"`
	Combiner     string `json:"combiner"`
	Contributors int    `json:"contributors"`
	Updates      uint64 `json:"updates"`
}

// MembersSnapshot returns the current membership sorted by name.
func (n *Node) MembersSnapshot() []MemberStatus {
	now := time.Now()
	n.mu.Lock()
	out := make([]MemberStatus, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, MemberStatus{
			Name:        m.name,
			Domain:      m.domain,
			Addr:        m.addr,
			State:       m.state.String(),
			AgeMS:       now.Sub(m.joined).Milliseconds(),
			SinceSeenMS: now.Sub(m.lastSeen).Milliseconds(),
			Reports:     m.reports,
			Rejoins:     m.rejoins,
			Bundles:     append([]rds.BundleStatus(nil), m.bundles...),
		})
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status assembles the full status document.
func (n *Node) Status() Status {
	st := Status{
		Name:      n.cfg.Name,
		Domain:    n.cfg.Domain,
		Parent:    n.cfg.Parent,
		Advertise: n.cfg.Advertise,
		Members:   n.MembersSnapshot(),
		Bundles:   n.BundleStatuses(),
	}
	for _, r := range n.rollup.Rows() {
		st.Rollup = append(st.Rollup, RollupStatus{
			Key: r.Key, Value: r.Value, Combiner: r.Combiner,
			Contributors: r.Contributors, Updates: r.Updates,
		})
	}
	return st
}

// StatusJSON implements rds.PeerHandler.
func (n *Node) StatusJSON() ([]byte, error) {
	return json.MarshalIndent(n.Status(), "", "  ")
}
