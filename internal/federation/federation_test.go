package federation

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/mib"
	"mbd/internal/oid"
	"mbd/internal/rds"
)

// --- Rollup combiners ---------------------------------------------------

func TestRollupCombiners(t *testing.T) {
	vals := []MemberValue{
		{Member: "a", Value: "5", TimeMS: 10},
		{Member: "b", Value: "7.5", TimeMS: 30},
		{Member: "c", Value: "2", TimeMS: 20},
	}
	if got := Sum().Combine(vals); got != "14.5" {
		t.Fatalf("sum = %q, want 14.5", got)
	}
	if got := Max().Combine(vals); got != "7.5" {
		t.Fatalf("max = %q, want 7.5", got)
	}
	if got := Latest().Combine(vals); got != "7.5" {
		t.Fatalf("latest = %q, want 7.5 (b is newest)", got)
	}
	// Integral sums print as integers.
	if got := Sum().Combine([]MemberValue{{Value: "2"}, {Value: "3"}}); got != "5" {
		t.Fatalf("integral sum = %q, want 5", got)
	}
}

func TestRollupLatestPerMember(t *testing.T) {
	r := NewRollup(Sum())
	r.Report("a", "k", "5", 1)
	r.Report("b", "k", "7", 2)
	if v, _ := r.Value("k"); v != "12" {
		t.Fatalf("sum = %q, want 12", v)
	}
	// A member re-reporting (e.g. after a crash/rejoin) overwrites its
	// slot — never double-counts.
	combined, changed := r.Report("b", "k", "9", 3)
	if combined != "14" || !changed {
		t.Fatalf("after overwrite: %q (changed=%v), want 14", combined, changed)
	}
	if _, changed := r.Report("b", "k", "9", 4); changed {
		t.Fatal("identical re-report flagged as a change")
	}
	// Death drops the member's contribution entirely.
	ups := r.DropMember("b")
	if len(ups) != 1 || ups[0].Key != "k" || ups[0].Value != "5" {
		t.Fatalf("drop updates = %+v, want k=5", ups)
	}
	if v, _ := r.Value("k"); v != "5" {
		t.Fatalf("after drop = %q, want 5", v)
	}
	// Dropping the last contributor removes the key.
	ups = r.DropMember("a")
	if len(ups) != 1 || !ups[0].Removed {
		t.Fatalf("final drop = %+v, want removal", ups)
	}
	if _, ok := r.Value("k"); ok {
		t.Fatal("key survived losing every contributor")
	}
}

func TestRollupPerKeyCombiner(t *testing.T) {
	r := NewRollup(Sum())
	r.Report("a", "temp", "20", 1)
	r.Report("b", "temp", "30", 2)
	if v, _ := r.Value("temp"); v != "50" {
		t.Fatalf("default sum = %q", v)
	}
	r.SetCombiner("temp", Max())
	if v, _ := r.Value("temp"); v != "30" {
		t.Fatalf("after SetCombiner(max) = %q, want 30 (recombined)", v)
	}
	rows := r.Rows()
	if len(rows) != 1 || rows[0].Combiner != "max" || rows[0].Contributors != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestDPCombiner(t *testing.T) {
	proc := elastic.NewProcess(elastic.Config{})
	t.Cleanup(proc.Stop)
	// A custom combination: sum of squares, delegated as DPL.
	src := `func combine(vals) {
		var total = 0;
		for (var i = 0; i < len(vals); i += 1) { total += vals[i] * vals[i]; }
		return total;
	}`
	c := DPCombiner(proc, "mgr", src, "combine")
	got := c.Combine([]MemberValue{{Member: "a", Value: "3"}, {Member: "b", Value: "4"}})
	if got != "25" {
		t.Fatalf("dp combine = %q, want 25", got)
	}
	if c.Name() != "dp:combine" {
		t.Fatalf("name = %q", c.Name())
	}
	// A broken combiner falls back to Latest rather than blanking.
	bad := DPCombiner(proc, "mgr", `func combine(vals) { return nosuchfn(vals); }`, "combine")
	got = bad.Combine([]MemberValue{{Member: "a", Value: "3", TimeMS: 1}, {Member: "b", Value: "4", TimeMS: 2}})
	if got != "4" {
		t.Fatalf("fallback combine = %q, want 4 (latest)", got)
	}
}

// --- Node fixtures ------------------------------------------------------

// testNode is one federated server on a real TCP socket.
type testNode struct {
	node *Node
	proc *elastic.Process
	addr string
	stop func()
}

// startNode boots an elastic process + federation node + RDS server.
// hb drives every failure-detection timescale (suspect 3×, dead 6×).
func startNode(t *testing.T, name, domain, parent string, comb Combiner, hb time.Duration) *testNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proc := elastic.NewProcess(elastic.Config{})
	node, err := New(Config{
		Name:              name,
		Domain:            domain,
		Proc:              proc,
		Parent:            parent,
		Advertise:         l.Addr().String(),
		Combiner:          comb,
		HeartbeatInterval: hb,
		SuspectAfter:      3 * hb,
		DeadAfter:         6 * hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rds.NewServer(proc, nil, rds.WithPeerHandler(node))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, l)
	}()
	node.Start()
	tn := &testNode{node: node, proc: proc, addr: l.Addr().String()}
	var once bool
	tn.stop = func() {
		if once {
			return
		}
		once = true
		node.Stop()
		cancel()
		<-done
		proc.Stop()
	}
	t.Cleanup(tn.stop)
	return tn
}

// waitFor polls cond until it holds or t fails.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// memberState reads one member's state from the status document.
func memberState(n *Node, name string) (string, bool) {
	for _, m := range n.MembersSnapshot() {
		if m.Name == name {
			return m.State, true
		}
	}
	return "", false
}

// --- Membership & failure detection ------------------------------------

func TestJoinHeartbeatLifecycle(t *testing.T) {
	root := startNode(t, "root", "campus", "", nil, 20*time.Millisecond)
	leaf := startNode(t, "leaf", "lan", root.addr, nil, 20*time.Millisecond)

	waitFor(t, 5*time.Second, "leaf to join", func() bool {
		st, ok := memberState(root.node, "leaf")
		return ok && st == "alive"
	})

	// Kill the leaf silently: the detector must move it through suspect
	// to dead.
	leaf.stop()
	waitFor(t, 5*time.Second, "leaf to be declared dead", func() bool {
		st, _ := memberState(root.node, "leaf")
		return st == "dead"
	})

	// A new incarnation re-joins under the same name and revives.
	leaf2 := startNode(t, "leaf", "lan", root.addr, nil, 20*time.Millisecond)
	_ = leaf2
	waitFor(t, 5*time.Second, "leaf to revive", func() bool {
		st, _ := memberState(root.node, "leaf")
		return st == "alive"
	})
	for _, m := range root.node.MembersSnapshot() {
		if m.Name == "leaf" && m.Rejoins < 1 {
			t.Fatalf("rejoins = %d, want >= 1", m.Rejoins)
		}
	}
}

func TestHeartbeatUnknownMemberTriggersRejoin(t *testing.T) {
	n, err := New(Config{Name: "root", Domain: "d", Proc: elastic.NewProcess(elastic.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.cfg.Proc.Stop)
	if err := n.PeerHeartbeat("federation", "ghost"); !isUnknownMember(err) {
		t.Fatalf("heartbeat from unknown member: %v, want ErrUnknownMember", err)
	}
	if err := n.PeerReport("federation", "ghost", "k", "1", 1); !isUnknownMember(err) {
		t.Fatalf("report from unknown member: %v, want ErrUnknownMember", err)
	}
	if err := n.PeerJoin("federation", "root", "d", "x"); err == nil {
		t.Fatal("self-named member accepted")
	}
}

// --- Cascaded delegation ------------------------------------------------

func TestFanoutCascade(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", Sum(), hb)
	startNode(t, "leaf-a", "lan-a", root.addr, nil, hb)
	startNode(t, "leaf-b", "lan-b", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "both leaves to join", func() bool {
		return len(root.node.MembersSnapshot()) == 2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res := root.node.Fanout(ctx, "mgr", "probe", "dpl",
		`func main() { report("1"); return 1; }`, "main", nil)
	if res.Accepted() != 3 || res.Rejected() != 0 {
		t.Fatalf("fanout = %d accepted / %d rejected, want 3/0: %+v",
			res.Accepted(), res.Rejected(), res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if o.DPI == "" {
			t.Fatalf("outcome %s missing DPI: %+v", o.Member, o)
		}
	}
	// The DP landed in every member's repository — transfer once,
	// instantiate anywhere.
	for _, tn := range []*testNode{root} {
		if _, ok := tn.proc.Repository().Lookup("probe"); !ok {
			t.Fatalf("%s: probe not in repository", tn.node.Name())
		}
	}
}

func TestFanoutAdmissionGatePerHop(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", nil, hb)
	startNode(t, "leaf", "lan", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "leaf to join", func() bool {
		return len(root.node.MembersSnapshot()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A program that fails static analysis (unknown function) must be
	// rejected at EVERY hop — the cascade carries the rejection back.
	res := root.node.Fanout(ctx, "mgr", "bad", "dpl",
		`func main() { return nosuchfn(); }`, "", nil)
	if res.Accepted() != 0 || res.Rejected() != 2 {
		t.Fatalf("bad program: %d accepted / %d rejected, want 0/2", res.Accepted(), res.Rejected())
	}
	for _, o := range res.Outcomes {
		if o.Err == "" {
			t.Fatalf("rejected outcome carries no error: %+v", o)
		}
	}
}

func TestFanoutUnreachableMember(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", nil, hb)
	leaf := startNode(t, "leaf", "lan", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "leaf to join", func() bool {
		return len(root.node.MembersSnapshot()) == 1
	})
	// Kill the leaf but fan out before the detector declares it dead:
	// the transport failure is an outcome, not a lost delegation.
	leaf.stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res := root.node.Fanout(ctx, "mgr", "p", "dpl", `func main() { return 1; }`, "", nil)
	if res.Accepted() != 1 {
		t.Fatalf("local hop should accept: %+v", res.Outcomes)
	}
	var sawTransport bool
	for _, o := range res.Outcomes {
		if !o.OK && strings.HasPrefix(o.Err, "transport:") {
			sawTransport = true
		}
	}
	if !sawTransport {
		t.Fatalf("no transport outcome for dead member: %+v", res.Outcomes)
	}
}

// --- Upstream rollup ----------------------------------------------------

func TestTwoTierRollup(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", Sum(), hb)
	leafA := startNode(t, "leaf-a", "lan-a", root.addr, nil, hb)
	leafB := startNode(t, "leaf-b", "lan-b", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "leaves to join", func() bool {
		return len(root.node.MembersSnapshot()) == 2
	})

	// Each member emits a local report; the instance suffix must strip
	// into one rollup key.
	leafA.proc.Publish("load#1", elastic.EventReport, "5")
	leafB.proc.Publish("load#1", elastic.EventReport, "7")
	root.proc.Publish("load#1", elastic.EventReport, "2")

	waitFor(t, 5*time.Second, "rollup to converge to 14", func() bool {
		v, ok := root.node.Rollup().Value("load")
		return ok && v == "14"
	})

	// A member's fresher value replaces its slot.
	leafB.proc.Publish("load#2", elastic.EventReport, "1")
	waitFor(t, 5*time.Second, "rollup to follow update to 8", func() bool {
		v, _ := root.node.Rollup().Value("load")
		return v == "8"
	})

	// Status document reflects the tree.
	st := root.node.Status()
	if st.Domain != "campus" || len(st.Members) != 2 || len(st.Rollup) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Rollup[0].Contributors != 3 {
		t.Fatalf("contributors = %d, want 3 (two leaves + self)", st.Rollup[0].Contributors)
	}
}

func TestDeadMemberContributionsDrop(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", Sum(), hb)
	leafA := startNode(t, "leaf-a", "lan-a", root.addr, nil, hb)
	leafB := startNode(t, "leaf-b", "lan-b", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "leaves to join", func() bool {
		return len(root.node.MembersSnapshot()) == 2
	})
	leafA.proc.Publish("k", elastic.EventReport, "5")
	leafB.proc.Publish("k", elastic.EventReport, "7")
	waitFor(t, 5*time.Second, "rollup of both leaves", func() bool {
		v, _ := root.node.Rollup().Value("k")
		return v == "12"
	})
	// Kill leaf-b: after death detection its 7 must leave the sum.
	leafB.stop()
	waitFor(t, 5*time.Second, "dead member's contribution to drop", func() bool {
		v, _ := root.node.Rollup().Value("k")
		return v == "5"
	})
}

// --- MIB subtree --------------------------------------------------------

func TestFederationMIBWalk(t *testing.T) {
	proc := elastic.NewProcess(elastic.Config{})
	t.Cleanup(proc.Stop)
	n, err := New(Config{Name: "root", Domain: "campus", Proc: proc})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.PeerJoin("federation", "leaf-a", "lan-a", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := n.PeerReport("federation", "leaf-a", "load", "9", 1); err != nil {
		t.Fatal(err)
	}

	tree := &mib.Tree{}
	if err := Mount(tree, n, OIDFederation); err != nil {
		t.Fatal(err)
	}
	walked := make(map[string]string)
	tree.Walk(OIDFederation, func(o oid.OID, v mib.Value) bool {
		walked[o.String()] = v.String()
		return true
	})
	base := OIDFederation.String()
	want := map[string]string{
		base + ".1.1.1": `"leaf-a"`,     // member name
		base + ".1.2.1": `"alive"`,      // member state
		base + ".1.4.1": "1(Counter64)", // reports merged
		base + ".2.1.1": `"load"`,       // rollup key
		base + ".2.2.1": `"9"`,          // combined value
		base + ".2.3.1": "1(Gauge32)",   // contributors
	}
	for o, v := range want {
		if walked[o] != v {
			t.Fatalf("walk[%s] = %q, want %q (all: %v)", o, walked[o], v, walked)
		}
	}
	// Walk order and GetNext agree: stepping cell by cell from the
	// prefix visits every instance the walk saw.
	n2 := 0
	cur := OIDFederation
	for {
		next, _, err := tree.GetNext(cur)
		if err != nil || !next.HasPrefix(OIDFederation) {
			break
		}
		n2++
		cur = next
	}
	if n2 != len(walked) {
		t.Fatalf("GetNext chain visited %d, walk visited %d", n2, len(walked))
	}
	// Point Gets resolve the same cells.
	if v, err := tree.Get(oid.MustParse(base + ".2.2.1")); err != nil || v.String() != `"9"` {
		t.Fatalf("Get rollup value = %v, %v", v, err)
	}
}
