package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// The fleet smoke: an in-process simulated domain tree — one root, a
// mid tier, and MBD_FLEET_LEAVES leaves (default 60 locally; CI runs
// 1000) — wired over net.Pipe through the Config.Dialer seam instead of
// real sockets. It proves the three fleet-scale claims end to end:
//
//  1. rollup convergence: every leaf's report reaches the root's
//     combined value;
//  2. golden bundles: one publish stages everywhere, an unchanged
//     re-publish transfers zero artifact bytes, and an atomic
//     upgrade + rollback flips every member;
//  3. O(delta) rollup: after convergence, one leaf's change costs a
//     mid O(1) member visits, not O(members).
//
// MBD_FLEET_STATS, when set, receives a JSON convergence-stats
// artifact (uploaded by the fleet-smoke CI job).

// fleetNet routes synthetic addresses ("node://name") to in-process
// RDS servers over pipes.
type fleetNet struct {
	mu      sync.Mutex
	servers map[string]*rds.Server
	ctx     context.Context
}

func (f *fleetNet) register(addr string, srv *rds.Server) {
	f.mu.Lock()
	f.servers[addr] = srv
	f.mu.Unlock()
}

func (f *fleetNet) dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	srv := f.servers[addr]
	f.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("fleet: no server at %s", addr)
	}
	cl, sv := net.Pipe()
	go srv.ServeConn(f.ctx, sv)
	return cl, nil
}

// fleetNode is one simulated member.
type fleetNode struct {
	node *Node
	proc *elastic.Process
	addr string
}

func startFleetNode(t *testing.T, fn *fleetNet, name, domain, parent string, hb time.Duration) *fleetNode {
	t.Helper()
	addr := "node://" + name
	proc := elastic.NewProcess(elastic.Config{})
	node, err := New(Config{
		Name:              name,
		Domain:            domain,
		Proc:              proc,
		Parent:            parent,
		Advertise:         addr,
		Combiner:          Sum(),
		HeartbeatInterval: hb,
		SuspectAfter:      30 * hb,
		DeadAfter:         60 * hb,
		Dialer:            fn.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	fn.register(addr, rds.NewServer(proc, nil, rds.WithPeerHandler(node)))
	node.Start()
	t.Cleanup(func() {
		node.Stop()
		proc.Stop()
	})
	return &fleetNode{node: node, proc: proc, addr: addr}
}

func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke is not a -short test")
	}
	leaves := 60
	if s := os.Getenv("MBD_FLEET_LEAVES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad MBD_FLEET_LEAVES %q", s)
		}
		leaves = n
	}
	mids := 8
	if leaves < mids {
		mids = 1
	}
	hb := 50 * time.Millisecond
	started := time.Now()

	netCtx, netCancel := context.WithCancel(context.Background())
	defer netCancel()
	fn := &fleetNet{servers: make(map[string]*rds.Server), ctx: netCtx}

	root := startFleetNode(t, fn, "root", "fleet", "", hb)
	midNodes := make([]*fleetNode, mids)
	for i := range midNodes {
		midNodes[i] = startFleetNode(t, fn, fmt.Sprintf("mid-%02d", i), fmt.Sprintf("zone-%02d", i), root.addr, hb)
	}
	leafNodes := make([]*fleetNode, leaves)
	for i := range leafNodes {
		mid := midNodes[i%mids]
		leafNodes[i] = startFleetNode(t, fn, fmt.Sprintf("leaf-%04d", i), fmt.Sprintf("rack-%04d", i), mid.addr, hb)
	}
	total := 1 + mids + leaves
	t.Logf("fleet: %d members (%d mids, %d leaves)", total, mids, leaves)

	// 1. Rollup convergence: every leaf contributes load=1; the root's
	// combined sum must reach exactly the leaf count.
	for _, l := range leafNodes {
		l.proc.Publish("load#1", elastic.EventReport, "1")
	}
	want := strconv.Itoa(leaves)
	waitFor(t, 120*time.Second, "fleet rollup convergence", func() bool {
		v, ok := root.node.rollup.Value("load")
		return ok && v == want
	})
	convergedIn := time.Since(started)
	t.Logf("rollup converged to %s in %s", want, convergedIn)

	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	// 2. Golden bundle rollout. One publish from the root stages the
	// content-addressed bundle at every member.
	stageStart := time.Now()
	res, err := root.node.PeerBundleStage(ctx, "federation", "suite", "", fleetBundle(1))
	if err != nil {
		t.Fatal(err)
	}
	hash1 := res.Hash
	if res.Staged() != total {
		t.Fatalf("first publish staged %d/%d members", res.Staged(), total)
	}
	firstBytes := res.TransferredBytes()
	if firstBytes == 0 {
		t.Fatal("first publish moved no artifact bytes")
	}
	stagedIn := time.Since(stageStart)

	// Delta push: the unchanged re-publish must transfer ZERO artifact
	// bytes — every hop answers the probe from its store.
	res, err = root.node.PeerBundleStage(ctx, "federation", "suite", "", fleetBundle(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != hash1 || res.Staged() != total {
		t.Fatalf("re-publish: hash=%q staged=%d/%d", res.Hash, res.Staged(), total)
	}
	if res.TransferredBytes() != 0 {
		t.Fatalf("unchanged re-publish transferred %d artifact bytes across %d members, want 0",
			res.TransferredBytes(), total)
	}

	// Atomic upgrade: stage v2, flip the whole fleet, then roll back.
	res, err = root.node.PeerBundleStage(ctx, "federation", "suite", "", fleetBundle(2))
	if err != nil {
		t.Fatal(err)
	}
	hash2 := res.Hash
	upgradeStart := time.Now()
	fr, err := root.node.PeerBundleActivate(ctx, "federation", "suite", hash2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Accepted() != total || fr.Rejected() != 0 {
		t.Fatalf("upgrade accepted %d/%d (rejected %d)", fr.Accepted(), total, fr.Rejected())
	}
	upgradedIn := time.Since(upgradeStart)
	fr, err = root.node.PeerBundleActivate(ctx, "federation", "suite", hash1)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Accepted() != total {
		t.Fatalf("rollback accepted %d/%d", fr.Accepted(), total)
	}
	if bs := leafNodes[leaves-1].node.BundleStatuses(); len(bs) != 1 || bs[0].Hash != hash1 || bs[0].Staged != 2 {
		t.Fatalf("leaf after rollback: %+v, want active v1 with both versions staged", bs)
	}

	// 3. O(delta) rollup: one leaf's change must cost its mid O(1)
	// member visits even with ~leaves/mids contributors materialized.
	mid := midNodes[0]
	before := mid.node.Rollup().Stats()
	leafNodes[0].proc.Publish("load#1", elastic.EventReport, "3")
	waitFor(t, 60*time.Second, "delta propagation", func() bool {
		v, ok := root.node.rollup.Value("load")
		return ok && v == strconv.Itoa(leaves+2)
	})
	after := mid.node.Rollup().Stats()
	visited := after.MembersVisited - before.MembersVisited
	reports := after.Reports - before.Reports
	if reports == 0 {
		t.Fatal("mid-00 saw no reports for the delta")
	}
	// Allow some slack for unrelated in-flight frames, but the budget
	// must stay far below the mid's contributor count.
	if visited > 4*reports {
		t.Fatalf("delta cost %d member visits over %d reports — O(members), not O(delta)", visited, reports)
	}
	t.Logf("delta: %d reports, %d member visits at mid-00 (%d contributors)",
		reports, visited, leaves/mids)

	if path := os.Getenv("MBD_FLEET_STATS"); path != "" {
		stats := map[string]any{
			"members":             total,
			"mids":                mids,
			"leaves":              leaves,
			"heartbeat_ms":        hb.Milliseconds(),
			"converge_ms":         convergedIn.Milliseconds(),
			"stage_ms":            stagedIn.Milliseconds(),
			"upgrade_ms":          upgradedIn.Milliseconds(),
			"first_publish_bytes": firstBytes,
			"republish_bytes":     0,
			"delta_reports":       reports,
			"delta_member_visits": visited,
			"root_rollup":         root.node.Rollup().Stats(),
			"mid0_rollup":         after,
		}
		doc, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote convergence stats to %s", path)
	}
}

// fleetBundle is the versioned one-item bundle the fleet test rolls
// out; version changes the source so the content addresses differ.
func fleetBundle(version uint64) []byte {
	src := fmt.Sprintf(`func main() { return %d; }`, version)
	return (&rds.Bundle{Lineage: "suite", Version: version, Items: []rds.BundleItem{
		{DP: "fleet-probe", Lang: "dpl", Blob: []byte(src), Entry: "main"},
	}}).Encode()
}
