package federation

import (
	"mbd/internal/mib"
	"mbd/internal/obs/obsmib"
	"mbd/internal/oid"
	"mbd/internal/rds"
)

// OIDFederation is the default mount point for the federation subtree,
// a sibling of the MCVA view arc (…1) and the self-stats arc (…2).
var OIDFederation = oid.MustParse("1.3.6.1.4.1.424242.3")

// The subtree holds three tables, walked in order:
//
//	<prefix>.1.<col>.<i>  members  (rows: members sorted by name)
//	  col 1 fedMemberName    OCTET STRING
//	  col 2 fedMemberState   OCTET STRING  (alive|suspect|dead)
//	  col 3 fedMemberAge     TimeTicks     (hundredths since join)
//	  col 4 fedMemberReports Counter64
//	<prefix>.2.<col>.<i>  rollup   (rows: keys sorted)
//	  col 1 fedRollupKey     OCTET STRING
//	  col 2 fedRollupValue   OCTET STRING  (combined value)
//	  col 3 fedRollupMembers Gauge32       (contributors)
//	  col 4 fedRollupUpdates Counter64
//	<prefix>.3.<col>.<i>  bundles  (rows: lineages sorted)
//	  col 1 fedBundleLineage OCTET STRING
//	  col 2 fedBundleActive  OCTET STRING  (active hash, "" if none)
//	  col 3 fedBundleVersion Gauge32       (active publisher version)
//	  col 4 fedBundleStaged  Gauge32       (staged version count)
//
// Like the self-stats subtree, row indexes are 1-based positions in the
// current sorted snapshot; the name/key column makes walks
// self-describing even as membership changes renumber rows.
const (
	tableMembers = 1
	tableRollup  = 2
	tableBundles = 3

	memberCols = 4
	rollupCols = 4
	bundleCols = 4
)

// Handler serves a Node as a MIB subtree. Create with NewHandler; mount
// with mib.Tree.Mount (or the Mount convenience).
type Handler struct {
	node *Node
}

// NewHandler returns a handler over node.
func NewHandler(node *Node) *Handler { return &Handler{node: node} }

// Mount attaches node's federation tables under prefix in tree and
// wires the rollup's change feed into the tree's change hub, so
// federation-scoped views refresh incrementally as reports arrive.
func Mount(tree *mib.Tree, node *Node, prefix oid.OID) error {
	if err := tree.Mount(prefix, NewHandler(node)); err != nil {
		return err
	}
	WatchRollup(tree, node.Rollup(), prefix)
	return nil
}

// WatchRollup publishes a rollup-table reset into tree's change hub on
// every combined-value change. Row indexes are 1-based positions in the
// sorted snapshot — any change can renumber rows — so the event is a
// whole-table reset and consumers diff the table.
func WatchRollup(tree *mib.Tree, r *Rollup, prefix oid.OID) {
	entry := append(prefix.Clone(), tableRollup)
	hub := tree.Changes()
	r.OnChange(func() {
		hub.Publish(mib.Change{Kind: mib.ChangeReset, Table: entry})
	})
}

// MountRollup mounts a bare Rollup's table under prefix — the
// manager-side mount when no Node exists (a harness or top-level
// manager aggregating reports directly) — and wires its change feed
// into the tree's hub. The subtree shape matches a full federation
// mount: only the rollup table (<prefix>.2) is populated.
func MountRollup(tree *mib.Tree, r *Rollup, prefix oid.OID) error {
	if err := tree.Mount(prefix, &RollupHandler{r: r}); err != nil {
		return err
	}
	WatchRollup(tree, r, prefix)
	return nil
}

// RollupHandler serves a bare Rollup as the federation rollup table.
type RollupHandler struct{ r *Rollup }

// GetRel implements mib.Handler. rel is <table>.<col>.<idx> with table
// fixed at the rollup arc.
func (h *RollupHandler) GetRel(rel oid.OID) (mib.Value, bool) {
	if len(rel) != 3 || rel[0] != tableRollup {
		return mib.Value{}, false
	}
	return rollupCell(h.r.Rows(), rel[1], rel[2])
}

// NextRel implements mib.Handler.
func (h *RollupHandler) NextRel(rel oid.OID) (oid.OID, mib.Value, bool) {
	rows := h.r.Rows()
	var sub oid.OID
	if len(rel) > 0 {
		if rel[0] > tableRollup {
			return nil, mib.Value{}, false
		}
		if rel[0] == tableRollup {
			sub = rel[1:]
		}
	}
	if col, idx := obsmib.NextCell(sub, rollupCols, len(rows)); col != 0 {
		if v, ok := rollupCell(rows, col, idx); ok {
			return oid.OID{tableRollup, col, idx}, v, true
		}
	}
	return nil, mib.Value{}, false
}

// memberCell returns the members-table value at (col, idx).
func memberCell(rows []MemberStatus, col, idx uint32) (mib.Value, bool) {
	if idx < 1 || int(idx) > len(rows) {
		return mib.Value{}, false
	}
	m := rows[idx-1]
	switch col {
	case 1:
		return mib.Str(m.Name), true
	case 2:
		return mib.Str(m.State), true
	case 3:
		return mib.TimeTicks(uint64(m.AgeMS / 10)), true
	case 4:
		return mib.Counter64(m.Reports), true
	}
	return mib.Value{}, false
}

// rollupCell returns the rollup-table value at (col, idx).
func rollupCell(rows []RollupRow, col, idx uint32) (mib.Value, bool) {
	if idx < 1 || int(idx) > len(rows) {
		return mib.Value{}, false
	}
	r := rows[idx-1]
	switch col {
	case 1:
		return mib.Str(r.Key), true
	case 2:
		return mib.Str(r.Value), true
	case 3:
		return mib.Gauge32(uint64(r.Contributors)), true
	case 4:
		return mib.Counter64(r.Updates), true
	}
	return mib.Value{}, false
}

// bundleCell returns the bundles-table value at (col, idx).
func bundleCell(rows []rds.BundleStatus, col, idx uint32) (mib.Value, bool) {
	if idx < 1 || int(idx) > len(rows) {
		return mib.Value{}, false
	}
	b := rows[idx-1]
	switch col {
	case 1:
		return mib.Str(b.Lineage), true
	case 2:
		return mib.Str(b.Hash), true
	case 3:
		return mib.Gauge32(b.Version), true
	case 4:
		return mib.Gauge32(b.Staged), true
	}
	return mib.Value{}, false
}

// GetRel implements mib.Handler. rel is <table>.<col>.<idx>.
func (h *Handler) GetRel(rel oid.OID) (mib.Value, bool) {
	if len(rel) != 3 {
		return mib.Value{}, false
	}
	switch rel[0] {
	case tableMembers:
		return memberCell(h.node.MembersSnapshot(), rel[1], rel[2])
	case tableRollup:
		return rollupCell(h.node.rollup.Rows(), rel[1], rel[2])
	case tableBundles:
		return bundleCell(h.node.BundleStatuses(), rel[1], rel[2])
	}
	return mib.Value{}, false
}

// NextRel implements mib.Handler.
func (h *Handler) NextRel(rel oid.OID) (oid.OID, mib.Value, bool) {
	return h.AppendNextRel(nil, rel)
}

// AppendNextRel implements mib.AppendNexter. Tables walk in order,
// each column-major via obsmib.NextCell.
func (h *Handler) AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, mib.Value, bool) {
	members := h.node.MembersSnapshot()
	rollup := h.node.rollup.Rows()
	bundles := h.node.BundleStatuses()

	table := uint32(tableMembers)
	var sub oid.OID
	if len(rel) > 0 {
		if rel[0] > tableBundles {
			return nil, mib.Value{}, false
		}
		if rel[0] >= tableMembers {
			table = rel[0]
			sub = rel[1:]
		}
	}
	if table == tableMembers {
		if col, idx := obsmib.NextCell(sub, memberCols, len(members)); col != 0 {
			v, ok := memberCell(members, col, idx)
			if ok {
				return append(dst, tableMembers, col, idx), v, true
			}
		}
		// Members table exhausted (or empty): fall into the rollup
		// table from its start.
		table, sub = tableRollup, nil
	}
	if table == tableRollup {
		if col, idx := obsmib.NextCell(sub, rollupCols, len(rollup)); col != 0 {
			v, ok := rollupCell(rollup, col, idx)
			if ok {
				return append(dst, tableRollup, col, idx), v, true
			}
		}
		// Rollup table exhausted: fall into the bundles table.
		sub = nil
	}
	if col, idx := obsmib.NextCell(sub, bundleCols, len(bundles)); col != 0 {
		v, ok := bundleCell(bundles, col, idx)
		if ok {
			return append(dst, tableBundles, col, idx), v, true
		}
	}
	return nil, mib.Value{}, false
}
