package federation

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// MemberValue is one member's latest contribution to a rollup key.
type MemberValue struct {
	Member string
	Value  string
	TimeMS int64
}

// Combiner merges the per-member latest values of one rollup key into
// a single upstream value. Values arrive sorted by member name, so a
// deterministic combiner yields a deterministic rollup.
type Combiner interface {
	// Name identifies the combiner in status documents.
	Name() string
	// Combine merges vals (never empty) into the published value.
	Combine(vals []MemberValue) string
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc struct {
	Label string
	Fn    func(vals []MemberValue) string
}

// Name implements Combiner.
func (c CombinerFunc) Name() string { return c.Label }

// Combine implements Combiner.
func (c CombinerFunc) Combine(vals []MemberValue) string { return c.Fn(vals) }

// numeric parses s as a float, treating unparseable values as 0 — a
// rollup must stay total even when one member misreports.
func numeric(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

// renderNumber formats a combined numeric value: integral results print
// without a decimal point so counter rollups read like counters.
func renderNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Sum adds the members' values numerically.
func Sum() Combiner {
	return CombinerFunc{Label: "sum", Fn: func(vals []MemberValue) string {
		total := 0.0
		for _, v := range vals {
			total += numeric(v.Value)
		}
		return renderNumber(total)
	}}
}

// Max keeps the numerically largest member value.
func Max() Combiner {
	return CombinerFunc{Label: "max", Fn: func(vals []MemberValue) string {
		best := numeric(vals[0].Value)
		for _, v := range vals[1:] {
			if f := numeric(v.Value); f > best {
				best = f
			}
		}
		return renderNumber(best)
	}}
}

// Latest keeps the most recently reported value (ties break on member
// name, keeping the result deterministic).
func Latest() Combiner {
	return CombinerFunc{Label: "latest", Fn: func(vals []MemberValue) string {
		best := vals[0]
		for _, v := range vals[1:] {
			if v.TimeMS > best.TimeMS {
				best = v
			}
		}
		return best.Value
	}}
}

// dpCombineTimeout bounds one custom-DP combination run.
const dpCombineTimeout = 5 * time.Second

// DPCombiner merges values by delegating the combination itself: the
// DPL program source is evaluated on proc with entry(values) where
// values is an array of the members' values (each interpreted like a
// wire argument — see rds.ParseArg). The program passes the same
// static-analysis admission gate as any evaluation. Errors fall back to
// Latest semantics so a broken combiner never blanks the rollup.
func DPCombiner(proc *elastic.Process, principal, source, entry string) Combiner {
	return CombinerFunc{Label: "dp:" + entry, Fn: func(vals []MemberValue) string {
		args := &dpl.Array{}
		for _, v := range vals {
			args.Elems = append(args.Elems, rds.ParseArg(v.Value))
		}
		ctx, cancel := context.WithTimeout(context.Background(), dpCombineTimeout)
		defer cancel()
		v, err := proc.Evaluate(ctx, principal, "dpl", source, entry, args)
		if err != nil {
			return Latest().Combine(vals)
		}
		return dpl.FormatValue(v)
	}}
}

// RollupRow is one key's state in a rollup snapshot.
type RollupRow struct {
	Key          string
	Value        string
	Combiner     string
	Contributors int
	Updates      uint64
	UpdatedAt    time.Time
}

// rollupKey holds one key's per-member latest values and its combined
// result.
type rollupKey struct {
	vals      map[string]MemberValue
	combined  string
	updates   uint64
	updatedAt time.Time
}

// Rollup is a domain root's aggregation point: the latest value each
// member reported per key, merged by that key's combiner. Because each
// member holds exactly one slot per key, a member that re-joins after a
// crash replaces its old contribution instead of double-counting, and a
// member declared dead is dropped so the rollup converges back to the
// live membership.
type Rollup struct {
	mu        sync.Mutex
	def       Combiner
	combiners map[string]Combiner
	keys      map[string]*rollupKey
}

// NewRollup returns a rollup whose keys default to def (nil = Latest).
func NewRollup(def Combiner) *Rollup {
	if def == nil {
		def = Latest()
	}
	return &Rollup{
		def:       def,
		combiners: make(map[string]Combiner),
		keys:      make(map[string]*rollupKey),
	}
}

// SetCombiner installs c for key (nil restores the default).
func (r *Rollup) SetCombiner(key string, c Combiner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c == nil {
		delete(r.combiners, key)
	} else {
		r.combiners[key] = c
	}
	if k, ok := r.keys[key]; ok {
		k.combined = r.combineLocked(key, k)
	}
}

func (r *Rollup) combinerFor(key string) Combiner {
	if c, ok := r.combiners[key]; ok {
		return c
	}
	return r.def
}

// combineLocked recomputes a key's merged value from its current
// contributions (caller holds r.mu).
func (r *Rollup) combineLocked(key string, k *rollupKey) string {
	vals := make([]MemberValue, 0, len(k.vals))
	for _, v := range k.vals {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Member < vals[j].Member })
	return r.combinerFor(key).Combine(vals)
}

// Report merges one member report and returns the key's combined value
// with whether it changed.
func (r *Rollup) Report(member, key, value string, timeMS int64) (combined string, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[key]
	if !ok {
		k = &rollupKey{vals: make(map[string]MemberValue)}
		r.keys[key] = k
	}
	k.vals[member] = MemberValue{Member: member, Value: value, TimeMS: timeMS}
	next := r.combineLocked(key, k)
	changed = !ok || next != k.combined
	k.combined = next
	if changed {
		k.updates++
		k.updatedAt = time.Now()
	}
	return next, changed
}

// KeyUpdate describes one key whose combined value changed outside a
// Report — currently only when a dead member's contributions drop out.
type KeyUpdate struct {
	Key   string
	Value string
	// Removed marks a key left with no contributors at all.
	Removed bool
}

// DropMember removes every contribution by member — called when the
// failure detector declares it dead — and returns the keys whose
// combined values changed so the node can re-publish them.
func (r *Rollup) DropMember(member string) []KeyUpdate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []KeyUpdate
	for key, k := range r.keys {
		if _, ok := k.vals[member]; !ok {
			continue
		}
		delete(k.vals, member)
		if len(k.vals) == 0 {
			delete(r.keys, key)
			out = append(out, KeyUpdate{Key: key, Removed: true})
			continue
		}
		next := r.combineLocked(key, k)
		if next != k.combined {
			k.combined = next
			k.updates++
			k.updatedAt = time.Now()
			out = append(out, KeyUpdate{Key: key, Value: next})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Rows snapshots the rollup sorted by key.
func (r *Rollup) Rows() []RollupRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RollupRow, 0, len(r.keys))
	for key, k := range r.keys {
		out = append(out, RollupRow{
			Key:          key,
			Value:        k.combined,
			Combiner:     r.combinerFor(key).Name(),
			Contributors: len(k.vals),
			Updates:      k.updates,
			UpdatedAt:    k.updatedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Value returns the combined value for key, if present.
func (r *Rollup) Value(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[key]
	if !ok {
		return "", false
	}
	return k.combined, true
}

// String renders a short rollup summary for logs.
func (r *Rollup) String() string {
	rows := r.Rows()
	return fmt.Sprintf("rollup(%d keys)", len(rows))
}
