package federation

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/rds"
)

// MemberValue is one member's latest contribution to a rollup key.
type MemberValue struct {
	Member string
	Value  string
	TimeMS int64
}

// Combiner merges the per-member latest values of one rollup key into
// a single upstream value. Values arrive sorted by member name, so a
// deterministic combiner yields a deterministic rollup.
type Combiner interface {
	// Name identifies the combiner in status documents.
	Name() string
	// Combine merges vals (never empty) into the published value.
	Combine(vals []MemberValue) string
}

// KeyState is a DeltaCombiner's materialized per-key state: whatever
// the combiner needs to fold one member delta without revisiting the
// other members. Num and Best cover the built-in combiners; Valid is
// managed by the Rollup (false forces the next change through a full
// recombine).
type KeyState struct {
	Num   float64
	Best  MemberValue
	Valid bool
}

// DeltaCombiner is the incremental capability: a combiner that can
// seed per-key state from the full contribution set once, then fold
// individual member deltas in O(1) — the property that lets a
// 10k-member tree converge without O(members) recomputation per
// report. A fold may decline (ok=false) when the delta invalidates the
// materialized state (e.g. the current max winner degrades); the
// Rollup then falls back to one full recombine and reseeds.
type DeltaCombiner interface {
	Combiner
	// Seed materializes st from vals (never empty, sorted by member)
	// and returns the combined value.
	Seed(st *KeyState, vals []MemberValue) string
	// Fold applies one member delta to st: prev/had is the member's
	// displaced contribution, next/have its new one (have=false is a
	// removal). It returns the new combined value, or ok=false when the
	// state cannot absorb this delta and a full recombine is needed.
	Fold(st *KeyState, prev MemberValue, had bool, next MemberValue, have bool) (combined string, ok bool)
}

// CombinerFunc adapts a function to the Combiner interface. It has no
// delta capability: every change recombines the full contribution set.
type CombinerFunc struct {
	Label string
	Fn    func(vals []MemberValue) string
}

// Name implements Combiner.
func (c CombinerFunc) Name() string { return c.Label }

// Combine implements Combiner.
func (c CombinerFunc) Combine(vals []MemberValue) string { return c.Fn(vals) }

// numeric parses s as a float, treating unparseable values as 0 — a
// rollup must stay total even when one member misreports.
func numeric(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

// renderNumber formats a combined numeric value: integral results print
// without a decimal point so counter rollups read like counters.
func renderNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sumCombiner adds values numerically; folds adjust a running total.
type sumCombiner struct{}

func (sumCombiner) Name() string { return "sum" }

func (sumCombiner) Combine(vals []MemberValue) string {
	total := 0.0
	for _, v := range vals {
		total += numeric(v.Value)
	}
	return renderNumber(total)
}

func (sumCombiner) Seed(st *KeyState, vals []MemberValue) string {
	total := 0.0
	for _, v := range vals {
		total += numeric(v.Value)
	}
	st.Num = total
	return renderNumber(total)
}

func (sumCombiner) Fold(st *KeyState, prev MemberValue, had bool, next MemberValue, have bool) (string, bool) {
	if had {
		st.Num -= numeric(prev.Value)
	}
	if have {
		st.Num += numeric(next.Value)
	}
	return renderNumber(st.Num), true
}

// Sum adds the members' values numerically.
func Sum() Combiner { return sumCombiner{} }

// maxCombiner keeps the largest value; folds track the winning member
// so only a winner's degrade or departure forces a recombine.
type maxCombiner struct{}

func (maxCombiner) Name() string { return "max" }

func (maxCombiner) Combine(vals []MemberValue) string {
	best := numeric(vals[0].Value)
	for _, v := range vals[1:] {
		if f := numeric(v.Value); f > best {
			best = f
		}
	}
	return renderNumber(best)
}

func (maxCombiner) Seed(st *KeyState, vals []MemberValue) string {
	st.Best = vals[0]
	st.Num = numeric(vals[0].Value)
	for _, v := range vals[1:] {
		if f := numeric(v.Value); f > st.Num {
			st.Best, st.Num = v, f
		}
	}
	return renderNumber(st.Num)
}

func (maxCombiner) Fold(st *KeyState, prev MemberValue, had bool, next MemberValue, have bool) (string, bool) {
	if !have {
		if prev.Member == st.Best.Member {
			return "", false // the winner left: recombine
		}
		return renderNumber(st.Num), true
	}
	f := numeric(next.Value)
	if next.Member == st.Best.Member {
		if f < st.Num {
			return "", false // the winner degraded: recombine
		}
		st.Best, st.Num = next, f
	} else if f > st.Num {
		st.Best, st.Num = next, f
	}
	return renderNumber(st.Num), true
}

// Max keeps the numerically largest member value.
func Max() Combiner { return maxCombiner{} }

// latestCombiner keeps the most recent report; folds track the holder.
type latestCombiner struct{}

func (latestCombiner) Name() string { return "latest" }

func (latestCombiner) Combine(vals []MemberValue) string {
	best := vals[0]
	for _, v := range vals[1:] {
		if v.TimeMS > best.TimeMS {
			best = v
		}
	}
	return best.Value
}

func (latestCombiner) Seed(st *KeyState, vals []MemberValue) string {
	st.Best = vals[0]
	for _, v := range vals[1:] {
		if v.TimeMS > st.Best.TimeMS {
			st.Best = v
		}
	}
	return st.Best.Value
}

func (latestCombiner) Fold(st *KeyState, prev MemberValue, had bool, next MemberValue, have bool) (string, bool) {
	if !have {
		if prev.Member == st.Best.Member {
			return "", false // the holder left: recombine
		}
		return st.Best.Value, true
	}
	if next.Member == st.Best.Member {
		if next.TimeMS < st.Best.TimeMS {
			return "", false // holder's clock went backwards: recombine
		}
		st.Best = next
		return st.Best.Value, true
	}
	// Ties break on the smaller member name, matching the sorted-order
	// semantics of Combine.
	if next.TimeMS > st.Best.TimeMS || (next.TimeMS == st.Best.TimeMS && next.Member < st.Best.Member) {
		st.Best = next
	}
	return st.Best.Value, true
}

// Latest keeps the most recently reported value (ties break on member
// name, keeping the result deterministic).
func Latest() Combiner { return latestCombiner{} }

// dpCombineTimeout bounds one custom-DP combination run.
const dpCombineTimeout = 5 * time.Second

// DPCombiner merges values by delegating the combination itself: the
// DPL program source is evaluated on proc with entry(values) where
// values is an array of the members' values (each interpreted like a
// wire argument — see rds.ParseArg). The program passes the same
// static-analysis admission gate as any evaluation. Errors fall back to
// Latest semantics so a broken combiner never blanks the rollup. A DP
// combiner sees the full set on every change (no delta capability: the
// program is opaque).
func DPCombiner(proc *elastic.Process, principal, source, entry string) Combiner {
	return CombinerFunc{Label: "dp:" + entry, Fn: func(vals []MemberValue) string {
		args := &dpl.Array{}
		for _, v := range vals {
			args.Elems = append(args.Elems, rds.ParseArg(v.Value))
		}
		ctx, cancel := context.WithTimeout(context.Background(), dpCombineTimeout)
		defer cancel()
		v, err := proc.Evaluate(ctx, principal, "dpl", source, entry, args)
		if err != nil {
			return Latest().Combine(vals)
		}
		return dpl.FormatValue(v)
	}}
}

// RollupRow is one key's state in a rollup snapshot.
type RollupRow struct {
	Key          string
	Value        string
	Combiner     string
	Contributors int
	Updates      uint64
	UpdatedAt    time.Time
}

// RollupStats counts the aggregation work a rollup has done. The
// fleet-scale invariant lives in MembersVisited: with a DeltaCombiner
// it grows by 1 per folded report instead of by the contributor count,
// so work per report is O(delta), not O(members).
type RollupStats struct {
	// Reports counts Report calls.
	Reports uint64
	// Folds counts deltas absorbed incrementally (O(1) work).
	Folds uint64
	// Recombines counts full recomputations (first sight of a key,
	// declined folds, combiner swaps).
	Recombines uint64
	// MembersVisited totals contributions examined across folds and
	// recombines.
	MembersVisited uint64
}

// rollupKey holds one key's per-member latest values, its combined
// result, and the combiner's materialized delta state.
type rollupKey struct {
	vals      map[string]MemberValue
	state     KeyState
	combined  string
	updates   uint64
	updatedAt time.Time
}

// Rollup is a domain root's aggregation point: the latest value each
// member reported per key, merged by that key's combiner. Because each
// member holds exactly one slot per key, a member that re-joins after a
// crash replaces its old contribution instead of double-counting, and a
// member declared dead is dropped so the rollup converges back to the
// live membership.
type Rollup struct {
	mu        sync.Mutex
	def       Combiner
	combiners map[string]Combiner
	keys      map[string]*rollupKey
	stats     RollupStats
	onChange  []func()
}

// NewRollup returns a rollup whose keys default to def (nil = Latest).
func NewRollup(def Combiner) *Rollup {
	if def == nil {
		def = Latest()
	}
	return &Rollup{
		def:       def,
		combiners: make(map[string]Combiner),
		keys:      make(map[string]*rollupKey),
	}
}

// SetCombiner installs c for key (nil restores the default).
func (r *Rollup) SetCombiner(key string, c Combiner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c == nil {
		delete(r.combiners, key)
	} else {
		r.combiners[key] = c
	}
	if k, ok := r.keys[key]; ok {
		k.combined = r.combineLocked(key, k)
	}
}

func (r *Rollup) combinerFor(key string) Combiner {
	if c, ok := r.combiners[key]; ok {
		return c
	}
	return r.def
}

// combineLocked recomputes a key's merged value from its current
// contributions and reseeds the delta state (caller holds r.mu).
func (r *Rollup) combineLocked(key string, k *rollupKey) string {
	vals := make([]MemberValue, 0, len(k.vals))
	for _, v := range k.vals {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Member < vals[j].Member })
	r.stats.Recombines++
	r.stats.MembersVisited += uint64(len(vals))
	c := r.combinerFor(key)
	k.state = KeyState{}
	if dc, ok := c.(DeltaCombiner); ok {
		combined := dc.Seed(&k.state, vals)
		k.state.Valid = true
		return combined
	}
	return c.Combine(vals)
}

// foldLocked tries to absorb one member delta incrementally, falling
// back to a full recombine when the combiner has no delta capability or
// declines the fold (caller holds r.mu; k.vals already reflects the
// delta).
func (r *Rollup) foldLocked(key string, k *rollupKey, prev MemberValue, had bool, next MemberValue, have bool) string {
	if k.state.Valid {
		if dc, ok := r.combinerFor(key).(DeltaCombiner); ok {
			if combined, ok := dc.Fold(&k.state, prev, had, next, have); ok {
				r.stats.Folds++
				r.stats.MembersVisited++
				return combined
			}
		}
	}
	return r.combineLocked(key, k)
}

// OnChange registers fn to run (outside the rollup lock) after any
// accepted change to a combined value — a Report that moved a key, or a
// member drop that did. The federation MIB bridge uses this to publish
// rollup-table resets into a tree's change hub, driving incremental
// refresh of federation-scoped views at the parent.
func (r *Rollup) OnChange(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onChange = append(r.onChange, fn)
}

// notify runs the change callbacks; callers must not hold r.mu.
func (r *Rollup) notify() {
	r.mu.Lock()
	fns := r.onChange
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Report merges one member report and returns the key's combined value
// with whether it changed.
func (r *Rollup) Report(member, key, value string, timeMS int64) (combined string, changed bool) {
	combined, changed = r.report(member, key, value, timeMS)
	if changed {
		r.notify()
	}
	return combined, changed
}

func (r *Rollup) report(member, key, value string, timeMS int64) (combined string, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Reports++
	k, ok := r.keys[key]
	if !ok {
		k = &rollupKey{vals: make(map[string]MemberValue)}
		r.keys[key] = k
	}
	prev, had := k.vals[member]
	nv := MemberValue{Member: member, Value: value, TimeMS: timeMS}
	k.vals[member] = nv
	var next string
	if !ok {
		next = r.combineLocked(key, k)
	} else {
		next = r.foldLocked(key, k, prev, had, nv, true)
	}
	changed = !ok || next != k.combined
	k.combined = next
	if changed {
		k.updates++
		k.updatedAt = time.Now()
	}
	return next, changed
}

// KeyUpdate describes one key whose combined value changed outside a
// Report — currently only when a dead member's contributions drop out.
type KeyUpdate struct {
	Key   string
	Value string
	// Removed marks a key left with no contributors at all.
	Removed bool
}

// DropMember removes every contribution by member — called when the
// failure detector declares it dead — and returns the keys whose
// combined values changed so the node can re-publish them.
func (r *Rollup) DropMember(member string) []KeyUpdate {
	out := r.dropMember(member)
	if len(out) > 0 {
		r.notify()
	}
	return out
}

func (r *Rollup) dropMember(member string) []KeyUpdate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []KeyUpdate
	for key, k := range r.keys {
		prev, ok := k.vals[member]
		if !ok {
			continue
		}
		delete(k.vals, member)
		if len(k.vals) == 0 {
			delete(r.keys, key)
			out = append(out, KeyUpdate{Key: key, Removed: true})
			continue
		}
		next := r.foldLocked(key, k, prev, true, MemberValue{}, false)
		if next != k.combined {
			k.combined = next
			k.updates++
			k.updatedAt = time.Now()
			out = append(out, KeyUpdate{Key: key, Value: next})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats snapshots the aggregation-work counters.
func (r *Rollup) Stats() RollupStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Rows snapshots the rollup sorted by key.
func (r *Rollup) Rows() []RollupRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RollupRow, 0, len(r.keys))
	for key, k := range r.keys {
		out = append(out, RollupRow{
			Key:          key,
			Value:        k.combined,
			Combiner:     r.combinerFor(key).Name(),
			Contributors: len(k.vals),
			Updates:      k.updates,
			UpdatedAt:    k.updatedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Value returns the combined value for key, if present.
func (r *Rollup) Value(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[key]
	if !ok {
		return "", false
	}
	return k.combined, true
}

// String renders a short rollup summary for logs.
func (r *Rollup) String() string {
	rows := r.Rows()
	return fmt.Sprintf("rollup(%d keys)", len(rows))
}
