package federation

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mbd/internal/elastic"
)

// TestChaosMemberRestartMidRollup is the federation variant of the RDS
// chaos test: while both leaves stream monotonically increasing reports
// into the campus rollup, one leaf is killed mid-stream and a new
// incarnation re-joins under the same name and keeps streaming. The
// robustness contract: once the storm ends the root's combined value is
// EXACTLY the sum of each live member's latest report — nothing lost
// (both finals present), nothing double-counted (the dead incarnation's
// slot was overwritten, not added), and no goroutines leak.
func TestChaosMemberRestartMidRollup(t *testing.T) {
	baseline := runtime.NumGoroutine()
	hb := 20 * time.Millisecond

	root := startNode(t, "root", "campus", "", Sum(), hb)
	leafA := startNode(t, "leaf-a", "lan-a", root.addr, nil, hb)
	leafB := startNode(t, "leaf-b", "lan-b", root.addr, nil, hb)
	waitFor(t, 5*time.Second, "leaves to join", func() bool {
		return len(root.node.MembersSnapshot()) == 2
	})

	// Storm: each leaf publishes an increasing series for the same key.
	// Halfway through, leaf-b dies and a new incarnation takes over the
	// name — its series keeps rising, so a stale or duplicated slot is
	// detectable in the final sum.
	const rounds = 40
	finalA, finalB := 0, 0
	for i := 1; i <= rounds; i++ {
		finalA = 100 + i
		leafA.proc.Publish("octets#1", elastic.EventReport, strconv.Itoa(finalA))
		if i == rounds/2 {
			// Kill mid-rollup: reports from the first incarnation are
			// still in flight when it dies. Let the detector declare it
			// dead (dropping its contribution) before the new
			// incarnation takes over the name and reseeds.
			leafB.stop()
			waitFor(t, 5*time.Second, "leaf-b to be declared dead", func() bool {
				st, _ := memberState(root.node, "leaf-b")
				return st == "dead"
			})
			leafB = startNode(t, "leaf-b", "lan-b", root.addr, nil, hb)
			waitFor(t, 5*time.Second, "leaf-b to rejoin", func() bool {
				st, _ := memberState(root.node, "leaf-b")
				return st == "alive"
			})
		}
		finalB = 200 + i
		leafB.proc.Publish("octets#1", elastic.EventReport, strconv.Itoa(finalB))
		time.Sleep(2 * time.Millisecond)
	}

	// Convergence: exactly the two live finals, no more, no less.
	want := fmt.Sprint(finalA + finalB)
	waitFor(t, 10*time.Second, "rollup to converge to "+want, func() bool {
		v, _ := root.node.Rollup().Value("octets")
		return v == want
	})

	// The converged state must be stable — a late duplicate from the
	// dead incarnation would perturb it.
	time.Sleep(10 * hb)
	if v, _ := root.node.Rollup().Value("octets"); v != want {
		t.Fatalf("rollup drifted after convergence: %q, want %q", v, want)
	}
	st := root.node.Status()
	if len(st.Rollup) != 1 || st.Rollup[0].Contributors != 2 {
		t.Fatalf("rollup status = %+v, want one key with 2 contributors", st.Rollup)
	}
	if rj, _ := memberState(root.node, "leaf-b"); rj != "alive" {
		t.Fatalf("leaf-b state = %q, want alive", rj)
	}
	for _, m := range root.node.MembersSnapshot() {
		if m.Name == "leaf-b" && m.Rejoins < 1 {
			t.Fatalf("leaf-b rejoins = %d, want >= 1", m.Rejoins)
		}
	}

	// Teardown everything and verify nothing leaked.
	leafA.stop()
	leafB.stop()
	root.stop()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline=%d now=%d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
