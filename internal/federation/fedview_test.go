package federation

import (
	"fmt"
	"reflect"
	"testing"

	"mbd/internal/mib"
	"mbd/internal/vdl"
	"mbd/internal/vdl/incr"
)

// TestFedRollupOIDAligned keeps vdl's duplicated rollup-entry OID (vdl
// must not import federation) in sync with the actual mount layout.
func TestFedRollupOIDAligned(t *testing.T) {
	want := append(OIDFederation.Clone(), tableRollup)
	if !vdl.OIDFedRollup.Equal(want) {
		t.Fatalf("vdl.OIDFedRollup = %v, federation rollup entry = %v", vdl.OIDFedRollup, want)
	}
}

// TestRollupOnChange checks the change callback fires on accepted
// changes only.
func TestRollupOnChange(t *testing.T) {
	r := NewRollup(Sum())
	fired := 0
	r.OnChange(func() { fired++ })
	r.Report("a", "conns", "3", 1)
	if fired != 1 {
		t.Fatalf("after first report fired=%d", fired)
	}
	r.Report("a", "conns", "3", 2) // same combined value: no change
	if fired != 1 {
		t.Fatalf("after no-op report fired=%d", fired)
	}
	r.Report("b", "conns", "2", 3)
	if fired != 2 {
		t.Fatalf("after second member fired=%d", fired)
	}
	if upd := r.DropMember("b"); len(upd) == 0 || fired != 3 {
		t.Fatalf("after drop upd=%v fired=%d", upd, fired)
	}
	if upd := r.DropMember("nobody"); len(upd) != 0 || fired != 3 {
		t.Fatalf("after vacuous drop upd=%v fired=%d", upd, fired)
	}
}

// TestFederationScopedViewIncremental mounts a bare rollup on a manager
// tree and keeps a VDL view over fedRollupTable continuously
// materialized: every accepted report drives an incremental refresh,
// and results stay byte-identical to a from-scratch Eval.
func TestFederationScopedViewIncremental(t *testing.T) {
	tree := &mib.Tree{}
	r := NewRollup(Sum())
	if err := MountRollup(tree, r, OIDFederation); err != nil {
		t.Fatal(err)
	}

	schema := vdl.MIB2().AddFederation()
	a := incr.New(incr.Config{Tree: tree, Schema: schema})
	defer a.Close()
	ev := vdl.NewEvaluator(tree, schema)
	def, err := a.Define(`view domainHot {
  from fedRollupTable;
  select fedRollupKey, fedRollupValue, fedRollupMembers;
  where fedRollupMembers > 1;
}`)
	if err != nil {
		t.Fatal(err)
	}
	aggDef, err := a.Define(`view domainSize {
  from fedRollupTable;
  select count() as keys, sum(fedRollupMembers) as contribs;
}`)
	if err != nil {
		t.Fatal(err)
	}

	check := func() {
		t.Helper()
		for _, d := range []*vdl.ViewDef{def, aggDef} {
			got, err := a.Query(d.Name)
			if err != nil {
				t.Fatalf("incremental %s: %v", d.Name, err)
			}
			want, err := ev.Eval(d)
			if err != nil {
				t.Fatalf("full %s: %v", d.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s diverged:\n got %+v\nwant %+v", d.Name, got, want)
			}
		}
	}

	check() // empty rollup
	for i := 0; i < 8; i++ {
		for _, key := range []string{"conns", "errors", "health"} {
			r.Report(fmt.Sprintf("leaf-%d", i), key, fmt.Sprintf("%d", i+1), int64(i))
		}
		check()
	}
	res, err := a.Query("domainHot")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 keys with >1 contributor", len(res.Rows))
	}
	// Member death renumbers rows; the reset-and-diff path must converge.
	r.DropMember("leaf-3")
	check()
	st := a.Stats()
	if st.DeltasFolded == 0 {
		t.Fatal("no deltas folded from rollup changes")
	}
	if st.Recomputes != 0 {
		t.Fatalf("recomputes = %d, want 0", st.Recomputes)
	}
}
