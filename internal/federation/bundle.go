package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/obs"
	"mbd/internal/rds"
)

// Golden DP bundles: a lineage (an upgradeable unit of one or more DPs)
// is published as a versioned, content-addressed bundle of compiled
// artifacts plus instantiation specs. Distribution is two-phase:
//
//  1. Stage: the bundle propagates down the tree by hash. Each hop
//     probes its members first (an empty-payload stage); a member
//     already holding the hash transfers zero artifact bytes, a miss
//     re-sends the payload from the hop's local copy. Every staged
//     artifact passes the bytecode verifier and the admission policy at
//     stage time — activation never meets an unverified program.
//  2. Activate: one frame flips the lineage's active-version pointer to
//     a staged hash everywhere. Each member starts the new version's
//     instances before terminating the old ones and keeps the old
//     version on any local failure. Rollback is activating the
//     previously active hash — the artifacts are still staged, so no
//     bytes move.

// ErrUnknownBundle answers a probe for a hash this node does not hold;
// the publisher reacts by re-sending the full payload.
var ErrUnknownBundle = errors.New("federation: unknown bundle")

// isUnknownBundle matches ErrUnknownBundle across the wire, where the
// error arrives as rendered text.
func isUnknownBundle(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrUnknownBundle) || strings.Contains(err.Error(), "unknown bundle"))
}

// stagedBundle is one content-addressed bundle version held locally.
type stagedBundle struct {
	bundle   *rds.Bundle
	raw      []byte
	stagedAt time.Time
}

// lineageState tracks one lineage: every staged version plus the
// active-version pointer and the instance ids the active version runs.
type lineageState struct {
	staged      map[string]*stagedBundle
	active      string
	activeDPIs  []string
	activations uint64
}

// bundleStore is a node's staged-bundle inventory.
type bundleStore struct {
	mu       sync.Mutex
	lineages map[string]*lineageState
}

func (s *bundleStore) lineage(name string) *lineageState {
	if s.lineages == nil {
		s.lineages = make(map[string]*lineageState)
	}
	st, ok := s.lineages[name]
	if !ok {
		st = &lineageState{staged: make(map[string]*stagedBundle)}
		s.lineages[name] = st
	}
	return st
}

// get returns the staged bundle for lineage/hash, if held.
func (s *bundleStore) get(lineage, hash string) (*stagedBundle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.lineages[lineage]
	if !ok {
		return nil, false
	}
	sb, ok := st.staged[hash]
	return sb, ok
}

// BundleStatuses snapshots the node's lineages for sync frames and
// status documents, sorted by lineage.
func (n *Node) BundleStatuses() []rds.BundleStatus {
	n.bundles.mu.Lock()
	defer n.bundles.mu.Unlock()
	out := make([]rds.BundleStatus, 0, len(n.bundles.lineages))
	for name, st := range n.bundles.lineages {
		bs := rds.BundleStatus{Lineage: name, Hash: st.active, Staged: uint64(len(st.staged))}
		if sb, ok := st.staged[st.active]; ok {
			bs.Version = sb.bundle.Version
		}
		out = append(out, bs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lineage < out[j].Lineage })
	return out
}

// PeerBundleStage implements rds.PeerHandler: stage a content-addressed
// bundle across this node's subtree. An empty payload is a probe — it
// succeeds only when the hash is already held, in which case the
// locally held copy seeds the downstream cascade; the publisher
// re-sends the payload on an unknown-bundle refusal. A payload carrying
// source items is normalized here: each is compiled to the canonical
// artifact form, and the returned Hash is the golden (all-compiled)
// content address.
func (n *Node) PeerBundleStage(ctx context.Context, principal, lineage, hash string, payload []byte) (*rds.StageResult, error) {
	start := time.Now()
	self := rds.StageOutcome{Member: n.cfg.Name, Domain: n.cfg.Domain, Addr: "local"}
	var raw []byte
	if len(payload) == 0 {
		sb, ok := n.bundles.get(lineage, hash)
		if !ok {
			return nil, fmt.Errorf("%w: %s (lineage %s)", ErrUnknownBundle, hash, lineage)
		}
		raw = sb.raw
		self.OK, self.AlreadyStaged = true, true
		hash = rds.HashBundle(raw)
	} else {
		var already bool
		var err error
		raw, hash, already, err = n.stageLocal(principal, lineage, hash, payload)
		if err != nil {
			return nil, err
		}
		self.OK, self.AlreadyStaged = true, already
		if !already {
			self.ArtifactBytes = uint64(len(payload))
		}
	}
	n.met.bundleStages.Inc()
	n.met.bundleStageBytes.Add(self.ArtifactBytes)

	res := &rds.StageResult{Lineage: lineage, Hash: hash, Outcomes: []rds.StageOutcome{self}}
	for _, outs := range fanBundle(n,
		func(client *rds.Client, t peerTarget) ([]rds.StageOutcome, error) {
			// Probe-first delta push: only an unknown-bundle refusal
			// costs the payload bytes.
			sub, err := client.PeerBundleStage(ctx, lineage, hash, nil)
			if isUnknownBundle(err) {
				sub, err = client.PeerBundleStage(ctx, lineage, hash, raw)
			}
			if err != nil {
				return nil, err
			}
			return sub.Outcomes, nil
		},
		func(t peerTarget, err error) rds.StageOutcome {
			return rds.StageOutcome{Member: t.name, Domain: t.domain, Addr: t.addr, Err: "transport: " + err.Error()}
		}) {
		res.Outcomes = append(res.Outcomes, outs...)
	}
	n.tracer.Record(lineage, obs.StageFanout,
		fmt.Sprintf("bundle-stage hash=%.12s staged=%d/%d bytes=%d",
			hash, res.Staged(), len(res.Outcomes), res.TransferredBytes()),
		time.Since(start))
	return res, nil
}

// stageLocal decodes, normalizes, verifies, and stores one bundle
// payload, returning the canonical encoding, its content address, and
// whether the hash was already held.
func (n *Node) stageLocal(principal, lineage, wantHash string, payload []byte) (raw []byte, hash string, already bool, err error) {
	b, err := rds.DecodeBundle(payload)
	if err != nil {
		return nil, "", false, err
	}
	if b.Lineage != lineage {
		return nil, "", false, fmt.Errorf("federation: bundle names lineage %q, staged as %q", b.Lineage, lineage)
	}
	if len(b.Items) == 0 {
		return nil, "", false, errors.New("federation: bundle carries no items")
	}
	// Normalize source items to the canonical compiled form; the hash is
	// always taken over the all-compiled encoding, so a source publish
	// and its golden artifact share one content address.
	raw = payload
	normalized := false
	for i, it := range b.Items {
		if it.Lang == rds.LangCompiled {
			continue
		}
		cp, err := n.cfg.Proc.CompileProgram(it.Lang, string(it.Blob))
		if err != nil {
			return nil, "", false, fmt.Errorf("federation: compiling bundle item %s: %w", it.DP, err)
		}
		blob, err := cp.Encode()
		if err != nil {
			return nil, "", false, fmt.Errorf("federation: encoding bundle item %s: %w", it.DP, err)
		}
		b.Items[i].Lang, b.Items[i].Blob = rds.LangCompiled, blob
		normalized = true
	}
	if normalized {
		raw = b.Encode()
	}
	hash = rds.HashBundle(raw)
	if wantHash != "" && wantHash != hash {
		return nil, "", false, fmt.Errorf("federation: bundle hashes to %.12s…, staged as %.12s…", hash, wantHash)
	}
	if _, ok := n.bundles.get(lineage, hash); ok {
		return raw, hash, true, nil
	}
	// Every artifact passes verification and admission before the hash
	// is answerable — a staged bundle is a runnable bundle.
	for _, it := range b.Items {
		if err := n.cfg.Proc.VerifyCompiled(principal, it.DP, it.Blob); err != nil {
			return nil, "", false, fmt.Errorf("federation: bundle item %s refused: %w", it.DP, err)
		}
	}
	n.bundles.mu.Lock()
	n.bundles.lineage(lineage).staged[hash] = &stagedBundle{bundle: b, raw: raw, stagedAt: time.Now()}
	n.bundles.mu.Unlock()
	return raw, hash, false, nil
}

// PeerBundleActivate implements rds.PeerHandler: flip lineage's
// active-version pointer to an already-staged hash across the subtree.
// The local flip happens first; if it fails the cascade is skipped
// entirely, so a subtree never activates a version its root refused.
func (n *Node) PeerBundleActivate(ctx context.Context, principal, lineage, hash string) (*rds.FanoutResult, error) {
	start := time.Now()
	sb, ok := n.bundles.get(lineage, hash)
	if !ok {
		return nil, fmt.Errorf("federation: bundle %.12s… not staged for lineage %s", hash, lineage)
	}
	res := &rds.FanoutResult{DP: lineage}
	self := n.activateLocal(principal, lineage, hash, sb)
	res.Outcomes = append(res.Outcomes, self)
	if !self.OK {
		return res, nil
	}
	n.met.bundleActivations.Inc()
	for _, outs := range fanBundle(n,
		func(client *rds.Client, t peerTarget) ([]rds.FanoutOutcome, error) {
			sub, err := client.PeerBundleActivate(ctx, lineage, hash)
			if err != nil {
				return nil, err
			}
			return sub.Outcomes, nil
		},
		func(t peerTarget, err error) rds.FanoutOutcome {
			return rds.FanoutOutcome{Member: t.name, Domain: t.domain, Addr: t.addr, Err: "transport: " + err.Error()}
		}) {
		res.Outcomes = append(res.Outcomes, outs...)
	}
	n.tracer.Record(lineage, obs.StageFanout,
		fmt.Sprintf("bundle-activate hash=%.12s accepted=%d rejected=%d",
			hash, res.Accepted(), res.Rejected()),
		time.Since(start))
	return res, nil
}

// activateLocal performs this node's own version flip: install the new
// version's programs, start its instances, and only then terminate the
// previous version's instances and move the pointer. Any failure
// terminates what was just started and leaves the old version running.
func (n *Node) activateLocal(principal, lineage, hash string, sb *stagedBundle) rds.FanoutOutcome {
	out := rds.FanoutOutcome{Member: n.cfg.Name, Domain: n.cfg.Domain, Addr: "local"}
	n.bundles.mu.Lock()
	st := n.bundles.lineage(lineage)
	if st.active == hash {
		out.OK = true
		out.DPI = strings.Join(st.activeDPIs, ",")
		n.bundles.mu.Unlock()
		return out
	}
	prevDPIs := st.activeDPIs
	n.bundles.mu.Unlock()

	var started []string
	fail := func(err error) rds.FanoutOutcome {
		for _, id := range started {
			_ = n.cfg.Proc.Control(principal, id, elastic.ActionTerminate)
		}
		out.Err = err.Error()
		return out
	}
	for _, it := range sb.bundle.Items {
		if err := n.cfg.Proc.DelegateCompiled(principal, it.DP, it.Blob); err != nil {
			return fail(fmt.Errorf("installing %s: %w", it.DP, err))
		}
		if it.Entry == "" {
			continue
		}
		vals := make([]dpl.Value, 0, len(it.Args))
		for _, a := range it.Args {
			vals = append(vals, rds.ParseArg(a))
		}
		inst, err := n.cfg.Proc.Instantiate(principal, it.DP, it.Entry, vals...)
		if err != nil {
			return fail(fmt.Errorf("starting %s.%s: %w", it.DP, it.Entry, err))
		}
		started = append(started, inst.ID)
	}
	// New version running: retire the old instances and flip the pointer.
	for _, id := range prevDPIs {
		_ = n.cfg.Proc.Control(principal, id, elastic.ActionTerminate)
	}
	n.bundles.mu.Lock()
	st.active = hash
	st.activeDPIs = started
	st.activations++
	n.bundles.mu.Unlock()
	out.OK = true
	out.DPI = strings.Join(started, ",")
	return out
}

// peerTarget is one live member a bundle operation fans out to.
type peerTarget struct{ name, domain, addr string }

// fanBundle runs op concurrently against every member not declared
// dead, converting transport failures into a single failed outcome per
// member so the caller always learns every hop's fate.
func fanBundle[T any](n *Node, op func(*rds.Client, peerTarget) ([]T, error), failed func(peerTarget, error) T) [][]T {
	var targets []peerTarget
	n.mu.Lock()
	for _, m := range n.members {
		if m.state != MemberDead {
			targets = append(targets, peerTarget{m.name, m.domain, m.addr})
		}
	}
	n.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	outs := make([][]T, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t peerTarget) {
			defer wg.Done()
			if t.addr == "" {
				outs[i] = []T{failed(t, errors.New("member advertised no address"))}
				return
			}
			client, err := n.dialPeer(t.addr)
			if err != nil {
				outs[i] = []T{failed(t, err)}
				return
			}
			defer client.Close()
			sub, err := op(client, t)
			if err != nil {
				outs[i] = []T{failed(t, err)}
				return
			}
			outs[i] = sub
		}(i, t)
	}
	wg.Wait()
	return outs
}
