package federation

import (
	"context"
	"strings"
	"testing"
	"time"

	"mbd/internal/rds"
)

// bundleOf builds a one-item source bundle for lineage, reporting val
// from its entry so activations are observable in the rollup.
func bundleOf(lineage string, version uint64, val string) []byte {
	src := `func main() { report("` + val + `"); return 1; }`
	return (&rds.Bundle{Lineage: lineage, Version: version, Items: []rds.BundleItem{
		{DP: "pulse", Lang: "dpl", Blob: []byte(src), Entry: "main"},
	}}).Encode()
}

// TestBundleStageActivateRollback drives the full golden-bundle
// lifecycle through a two-node tree: source publish (normalized to a
// compiled golden bundle at the root), delta re-publish transferring
// zero artifact bytes, atomic activation, v2 upgrade, and rollback to
// v1 — with the rollup proving which version actually runs where.
func TestBundleStageActivateRollback(t *testing.T) {
	hb := 20 * time.Millisecond
	root := startNode(t, "root", "campus", "", Sum(), hb)
	leaf := startNode(t, "leaf", "lan", root.addr, Sum(), hb)
	waitFor(t, 5*time.Second, "leaf join", func() bool {
		st, ok := memberState(root.node, "leaf")
		return ok && st == "alive"
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Publish v1 as source: the root compiles it, content-addresses the
	// golden form, and pushes it down the tree.
	raw1 := bundleOf("suite", 1, "1")
	res, err := root.node.PeerBundleStage(ctx, "federation", "suite", "", raw1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hash) != 64 {
		t.Fatalf("golden hash = %q, want hex sha256", res.Hash)
	}
	hash1 := res.Hash
	if res.Staged() != 2 || res.TransferredBytes() == 0 {
		t.Fatalf("first publish: staged=%d bytes=%d, want 2 members and bytes moved",
			res.Staged(), res.TransferredBytes())
	}

	// Delta push: an unchanged re-publish moves ZERO artifact bytes —
	// every member answers the probe from its content-addressed store.
	res, err = root.node.PeerBundleStage(ctx, "federation", "suite", "", raw1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != hash1 {
		t.Fatalf("re-publish hash = %q, want %q", res.Hash, hash1)
	}
	if res.TransferredBytes() != 0 {
		t.Fatalf("unchanged re-publish transferred %d artifact bytes, want 0", res.TransferredBytes())
	}
	for _, o := range res.Outcomes {
		if !o.OK || !o.AlreadyStaged {
			t.Fatalf("re-publish outcome %+v, want AlreadyStaged", o)
		}
	}

	// Activating an unstaged hash is refused before anything moves.
	if _, err := root.node.PeerBundleActivate(ctx, "federation", "suite", strings.Repeat("00", 32)); err == nil {
		t.Fatal("activation of an unstaged hash succeeded")
	}

	// Activate v1 everywhere: both members flip and start instances.
	fr, err := root.node.PeerBundleActivate(ctx, "federation", "suite", hash1)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Accepted() != 2 || fr.Rejected() != 0 {
		t.Fatalf("activate outcomes = %+v", fr.Outcomes)
	}
	// Each instance reports "1" under its DP name; the sum across both
	// members reaches the root's rollup.
	waitFor(t, 10*time.Second, "v1 rollup", func() bool {
		v, ok := root.node.rollup.Value("pulse")
		return ok && v == "2"
	})
	for _, n := range []*Node{root.node, leaf.node} {
		bs := n.BundleStatuses()
		if len(bs) != 1 || bs[0].Hash != hash1 || bs[0].Version != 1 || bs[0].Staged != 1 {
			t.Fatalf("%s bundle status = %+v", n.Name(), bs)
		}
	}
	// The child's sync frames carry its inventory upstream.
	waitFor(t, 5*time.Second, "leaf inventory at root", func() bool {
		for _, m := range root.node.MembersSnapshot() {
			if m.Name == "leaf" && len(m.Bundles) == 1 && m.Bundles[0].Hash == hash1 {
				return true
			}
		}
		return false
	})

	// Upgrade to v2 (reports "5"): stage, activate, observe the rollup
	// move — then roll back by re-activating the v1 hash, zero bytes.
	res, err = root.node.PeerBundleStage(ctx, "federation", "suite", "", bundleOf("suite", 2, "5"))
	if err != nil {
		t.Fatal(err)
	}
	hash2 := res.Hash
	if hash2 == hash1 {
		t.Fatal("v2 content address collides with v1")
	}
	if fr, err = root.node.PeerBundleActivate(ctx, "federation", "suite", hash2); err != nil || fr.Accepted() != 2 {
		t.Fatalf("v2 activate: %v %+v", err, fr)
	}
	waitFor(t, 10*time.Second, "v2 rollup", func() bool {
		v, ok := root.node.rollup.Value("pulse")
		return ok && v == "10"
	})

	fr, err = root.node.PeerBundleActivate(ctx, "federation", "suite", hash1)
	if err != nil || fr.Accepted() != 2 {
		t.Fatalf("rollback: %v %+v", err, fr)
	}
	waitFor(t, 10*time.Second, "rollback rollup", func() bool {
		v, ok := root.node.rollup.Value("pulse")
		return ok && v == "2"
	})
	bs := root.node.BundleStatuses()
	if len(bs) != 1 || bs[0].Hash != hash1 || bs[0].Staged != 2 {
		t.Fatalf("after rollback: %+v, want active v1 with 2 staged versions", bs)
	}
}

// TestBundleStageRefusesBadArtifacts: staging verifies every artifact;
// a bundle whose program fails analysis never becomes answerable.
func TestBundleStageRefusesBadArtifacts(t *testing.T) {
	root := startNode(t, "root", "campus", "", nil, 20*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	bad := (&rds.Bundle{Lineage: "suite", Version: 1, Items: []rds.BundleItem{
		{DP: "broken", Lang: "dpl", Blob: []byte(`func main() { return nosuchvar; }`)},
	}}).Encode()
	if _, err := root.node.PeerBundleStage(ctx, "federation", "suite", "", bad); err == nil {
		t.Fatal("stage of an unanalyzable bundle succeeded")
	}
	// Probing for anything afterwards still misses: nothing was staged.
	if _, err := root.node.PeerBundleStage(ctx, "federation", "suite", strings.Repeat("ab", 32), nil); !isUnknownBundle(err) {
		t.Fatalf("probe err = %v, want unknown bundle", err)
	}
	// A bundle staged under the wrong lineage name is refused too.
	ok := bundleOf("other", 1, "1")
	if _, err := root.node.PeerBundleStage(ctx, "federation", "suite", "", ok); err == nil || !strings.Contains(err.Error(), "lineage") {
		t.Fatalf("lineage mismatch err = %v", err)
	}
}
