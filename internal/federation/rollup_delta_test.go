package federation

import (
	"fmt"
	"testing"
)

// TestRollupDeltaSumFolds proves the fleet-scale invariant at unit
// level: once a key is seeded, one report costs one member visit, not
// one visit per contributor.
func TestRollupDeltaSumFolds(t *testing.T) {
	r := NewRollup(Sum())
	const members = 1000
	for i := 0; i < members; i++ {
		r.Report(fmt.Sprintf("m%04d", i), "load", "1", int64(i))
	}
	if v, _ := r.Value("load"); v != "1000" {
		t.Fatalf("seeded sum = %q, want 1000", v)
	}
	before := r.Stats()
	combined, changed := r.Report("m0007", "load", "5", 2000)
	if combined != "1004" || !changed {
		t.Fatalf("after delta: %q (changed=%v), want 1004", combined, changed)
	}
	after := r.Stats()
	if d := after.MembersVisited - before.MembersVisited; d != 1 {
		t.Fatalf("one report visited %d members, want 1 (O(delta), not O(members))", d)
	}
	if after.Folds != before.Folds+1 || after.Recombines != before.Recombines {
		t.Fatalf("stats diff = folds+%d recombines+%d, want one fold, no recombine",
			after.Folds-before.Folds, after.Recombines-before.Recombines)
	}
	// Removal folds too: a sum absorbs a departure without recombining.
	before = after
	ups := r.DropMember("m0003")
	if len(ups) != 1 || ups[0].Value != "1003" {
		t.Fatalf("drop updates = %+v, want load=1003", ups)
	}
	after = r.Stats()
	if d := after.MembersVisited - before.MembersVisited; d != 1 {
		t.Fatalf("one drop visited %d members, want 1", d)
	}
}

// TestRollupDeltaMaxRecombines: max folds ordinary updates but must
// recombine when the winner degrades or departs.
func TestRollupDeltaMaxRecombines(t *testing.T) {
	r := NewRollup(Max())
	r.Report("a", "k", "1", 1)
	r.Report("b", "k", "5", 2)
	r.Report("c", "k", "3", 3)
	if v, _ := r.Value("k"); v != "5" {
		t.Fatalf("max = %q, want 5", v)
	}
	// Non-winner update: pure fold.
	before := r.Stats()
	if v, _ := r.Report("a", "k", "2.5", 4); v != "5" {
		t.Fatalf("after non-winner update = %q, want 5", v)
	}
	after := r.Stats()
	if after.Folds != before.Folds+1 || after.Recombines != before.Recombines {
		t.Fatal("non-winner update should fold without recombining")
	}
	// Winner degrade: fold declines, full recombine restores correctness.
	before = after
	if v, _ := r.Report("b", "k", "2", 5); v != "3" {
		v2, _ := r.Value("k")
		t.Fatalf("after winner degrade = %q, want 3 (now %q)", v2, v2)
	}
	after = r.Stats()
	if after.Recombines != before.Recombines+1 {
		t.Fatal("winner degrade must recombine")
	}
	// Winner departure: also a recombine.
	if ups := r.DropMember("c"); len(ups) != 1 || ups[0].Value != "2.5" {
		t.Fatalf("drop updates = %+v, want k=2.5", ups)
	}
	// New winner arrival: pure fold.
	before = r.Stats()
	if v, _ := r.Report("d", "k", "9", 6); v != "9" {
		t.Fatalf("after new winner = %q, want 9", v)
	}
	after = r.Stats()
	if after.Folds != before.Folds+1 || after.Recombines != before.Recombines {
		t.Fatal("new winner should fold without recombining")
	}
}

// TestRollupDeltaLatest: latest folds forward-moving reports, matches
// the sorted-order tie-break of the full combine, and recombines when
// the holder's clock runs backwards or the holder leaves.
func TestRollupDeltaLatest(t *testing.T) {
	r := NewRollup(Latest())
	r.Report("b", "k", "vb", 10)
	r.Report("a", "k", "va", 10)
	// Ties break toward the smaller member name, exactly like Combine
	// over the sorted value set.
	if v, _ := r.Value("k"); v != "va" {
		t.Fatalf("tie = %q, want va", v)
	}
	if v, _ := r.Report("b", "k", "vb2", 20); v != "vb2" {
		t.Fatalf("newer report = %q, want vb2", v)
	}
	// Holder reporting an older timestamp forces a recombine.
	before := r.Stats()
	if v, _ := r.Report("b", "k", "old", 5); v != "va" {
		t.Fatalf("after clock regression = %q, want va", v)
	}
	if after := r.Stats(); after.Recombines != before.Recombines+1 {
		t.Fatal("holder clock regression must recombine")
	}
	// Holder departure recombines to the survivor.
	r.Report("b", "k", "vb3", 30)
	if ups := r.DropMember("b"); len(ups) != 1 || ups[0].Value != "va" {
		t.Fatalf("drop updates = %+v, want k=va", ups)
	}
}

// TestRollupOpaqueCombinerAlwaysRecombines: a CombinerFunc (no delta
// capability) recomputes from the full set on every change — the
// pre-existing behaviour, now visible in the stats.
func TestRollupOpaqueCombinerAlwaysRecombines(t *testing.T) {
	r := NewRollup(CombinerFunc{Label: "count", Fn: func(vals []MemberValue) string {
		return fmt.Sprintf("%d", len(vals))
	}})
	r.Report("a", "k", "x", 1)
	r.Report("b", "k", "y", 2)
	r.Report("a", "k", "z", 3)
	st := r.Stats()
	if st.Folds != 0 {
		t.Fatalf("opaque combiner folded %d times, want 0", st.Folds)
	}
	if st.Recombines != 3 {
		t.Fatalf("recombines = %d, want 3", st.Recombines)
	}
	if v, _ := r.Value("k"); v != "2" {
		t.Fatalf("count = %q, want 2", v)
	}
}

// TestRollupSetCombinerReseeds: swapping combiners recombines and the
// new combiner keeps folding afterwards.
func TestRollupSetCombinerReseeds(t *testing.T) {
	r := NewRollup(Sum())
	r.Report("a", "k", "2", 1)
	r.Report("b", "k", "3", 2)
	r.SetCombiner("k", Max())
	if v, _ := r.Value("k"); v != "3" {
		t.Fatalf("after swap = %q, want 3", v)
	}
	before := r.Stats()
	if v, _ := r.Report("c", "k", "7", 3); v != "7" {
		t.Fatalf("after fold = %q, want 7", v)
	}
	after := r.Stats()
	if after.Folds != before.Folds+1 {
		t.Fatal("swapped-in delta combiner should fold")
	}
}
