package federation

import (
	"context"
	"net"
	"testing"
	"time"

	"mbd/internal/dpl"
	"mbd/internal/elastic"
	"mbd/internal/obs"
	"mbd/internal/rds"
)

// startMeteredNode is startNode with a per-node registry shared by the
// elastic process and the federation node, plus the MIB primitives
// stubbed so effect-bearing programs admit.
func startMeteredNode(t *testing.T, name, domain, parent string) (*testNode, *obs.Registry) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b := dpl.Std()
	b.Register("mibGet", 1, func(*dpl.Env, []dpl.Value) (dpl.Value, error) { return int64(1), nil })
	proc := elastic.NewProcess(elastic.Config{Bindings: b, Obs: reg})
	node, err := New(Config{
		Name:              name,
		Domain:            domain,
		Proc:              proc,
		Parent:            parent,
		Advertise:         l.Addr().String(),
		Obs:               reg,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rds.NewServer(proc, nil, rds.WithPeerHandler(node))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, l)
	}()
	node.Start()
	tn := &testNode{node: node, proc: proc, addr: l.Addr().String()}
	var once bool
	tn.stop = func() {
		if once {
			return
		}
		once = true
		node.Stop()
		cancel()
		<-done
		proc.Stop()
	}
	t.Cleanup(tn.stop)
	return tn, reg
}

func metricValue(reg *obs.Registry, name string) uint64 {
	for _, s := range reg.Flatten() {
		if s.Name == name {
			return s.Value()
		}
	}
	return 0
}

// TestCascadeShipsVerifiedBytecode: in a depth-3 domain tree, a source
// delegation fanned out from the root must run source-level analysis
// exactly once (at the root); every descendant hop admits the shipped
// artifact through the bytecode verifier without re-compiling.
func TestCascadeShipsVerifiedBytecode(t *testing.T) {
	root, rootReg := startMeteredNode(t, "root", "campus", "")
	mid, midReg := startMeteredNode(t, "mid", "building", root.addr)
	leaf, leafReg := startMeteredNode(t, "leaf", "lan", mid.addr)

	waitFor(t, 5*time.Second, "mid to join root", func() bool {
		st, ok := memberState(root.node, "mid")
		return ok && st == "alive"
	})
	waitFor(t, 5*time.Second, "leaf to join mid", func() bool {
		st, ok := memberState(mid.node, "leaf")
		return ok && st == "alive"
	})

	// A counting loop so the root's optimizer emits generation-3 fused
	// opcodes: the cascade must ship and verify a CompilerVersion=3
	// artifact end to end, not just trivially fusion-free code.
	src := `func main() {
		var total = 0;
		for (var i = 0; i < 3; i += 1) { total += mibGet("1.3.6.1.2.1.1.3.0"); }
		return total;
	}`
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res := root.node.Fanout(ctx, "noc", "watch", "dpl", src, "", nil)
	if res.Accepted() != 3 || res.Rejected() != 0 {
		t.Fatalf("fanout: accepted=%d rejected=%d outcomes=%+v", res.Accepted(), res.Rejected(), res.Outcomes)
	}

	// Exactly one source-level analysis, at the root.
	if got := metricValue(rootReg, "elastic_source_analyses_total"); got != 1 {
		t.Errorf("root source analyses = %d, want 1", got)
	}
	for _, hop := range []struct {
		name string
		reg  *obs.Registry
	}{{"mid", midReg}, {"leaf", leafReg}} {
		if got := metricValue(hop.reg, "elastic_source_analyses_total"); got != 0 {
			t.Errorf("%s ran %d source analyses, want 0", hop.name, got)
		}
		if got := metricValue(hop.reg, "elastic_bytecode_verifications_total"); got != 1 {
			t.Errorf("%s ran %d bytecode verifications, want 1", hop.name, got)
		}
	}
	if got := metricValue(rootReg, "elastic_bytecode_verifications_total"); got != 0 {
		t.Errorf("root ran %d bytecode verifications, want 0", got)
	}

	// Each forwarding hop shipped bytecode, not source.
	if got := metricValue(rootReg, "federation_bytecode_ships_total"); got != 1 {
		t.Errorf("root bytecode ships = %d, want 1", got)
	}
	if got := metricValue(midReg, "federation_bytecode_ships_total"); got != 1 {
		t.Errorf("mid bytecode ships = %d, want 1", got)
	}

	// Every hop stored a runnable program; descendants hold the
	// verified artifact with no source.
	for _, hop := range []struct {
		name string
		tn   *testNode
		lang string
	}{{"root", root, "dpl"}, {"mid", mid, elastic.LangCompiled}, {"leaf", leaf, elastic.LangCompiled}} {
		dp, ok := hop.tn.proc.Repository().Lookup("watch")
		if !ok {
			t.Fatalf("%s did not store the DP", hop.name)
		}
		if dp.Lang != hop.lang {
			t.Errorf("%s stored lang %q, want %q", hop.name, dp.Lang, hop.lang)
		}
		if !dp.Effects.CallsHost("mibGet") {
			t.Errorf("%s lost the effect summary: %s", hop.name, dp.Effects.String())
		}
		if dp.Program.Version != dpl.CompilerVersion {
			t.Errorf("%s stored artifact generation %d, want %d", hop.name, dp.Program.Version, dpl.CompilerVersion)
		}
		fusedOps := 0
		for _, fn := range dp.Object.Funcs {
			for _, in := range fn.Code {
				if dpl.OpcodeVersion(in.Op) == dpl.CompilerVersion {
					fusedOps++
				}
			}
		}
		if fusedOps == 0 {
			t.Errorf("%s stored no fused opcodes; the cascade did not exercise generation-3 code:\n%s",
				hop.name, dpl.Disassemble(dp.Object))
		}
		dpi, err := hop.tn.proc.Instantiate("noc", "watch", "main")
		if err != nil {
			t.Fatalf("%s instantiate: %v", hop.name, err)
		}
		if v, err := dpi.Wait(ctx); err != nil || dpl.FormatValue(v) != "3" {
			t.Fatalf("%s ran to (%v, %v)", hop.name, v, err)
		}
	}
}
