package mib

import (
	"sync"
	"testing"

	"mbd/internal/oid"
)

// TestTreeConcurrentMountAccess hammers mount-table mutation while the
// data path reads, verifying the copy-on-mount design: Get, GetNext and
// Walk must observe consistent snapshots (run under -race in CI).
func TestTreeConcurrentMountAccess(t *testing.T) {
	tree := &Tree{}
	stable := oid.MustParse("1.3.6.1.2.1.1.3")
	if err := tree.Mount(stable, ConstScalar(TimeTicks(42))); err != nil {
		t.Fatal(err)
	}
	scratch := oid.MustParse("1.3.6.1.4.1.9999.1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := stable.Append(0)
			var buf oid.OID
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tree.Get(target); err != nil {
					t.Errorf("Get(%s): %v", target, err)
					return
				}
				next, _, err := tree.GetNextInto(buf[:0], stable)
				if err != nil {
					t.Errorf("GetNext(%s): %v", stable, err)
					return
				}
				buf = next
				if n := tree.Walk(stable, func(o oid.OID, v Value) bool { return true }); n != 1 {
					t.Errorf("Walk visited %d instances, want 1", n)
					return
				}
				// Walking the root sees whatever mounts exist right now;
				// the stable scalar must always be among them.
				seen := 0
				tree.Walk(oid.OID{1}, func(o oid.OID, v Value) bool {
					if o.HasPrefix(stable) {
						seen++
					}
					return true
				})
				if seen != 1 {
					t.Errorf("root walk saw the stable scalar %d times, want 1", seen)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if err := tree.Mount(scratch, ConstScalar(Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		if !tree.Unmount(scratch) {
			t.Fatal("unmount failed")
		}
	}
	close(stop)
	wg.Wait()
}
