package mib

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mbd/internal/oid"
)

// LoadProfile describes the offered traffic on a device's segment as a
// function of virtual time. All rates are instantaneous; the Device
// integrates them over Advance steps.
type LoadProfile struct {
	// Utilization is the fraction of link capacity in use, 0..1.
	Utilization float64
	// BroadcastFraction is the fraction of received packets that are
	// broadcasts.
	BroadcastFraction float64
	// ErrorRate is the fraction of received frames that are damaged.
	ErrorRate float64
	// CollisionRate is collisions per received packet (CSMA/CD load
	// proxy; grows superlinearly with utilization on real Ethernet,
	// callers model that by setting it explicitly).
	CollisionRate float64
}

// DeviceConfig parameterizes a simulated managed device.
type DeviceConfig struct {
	// Name becomes sysName; required.
	Name string
	// Addr is the device's IP address (defaults to 10.0.0.1).
	Addr [4]byte
	// Interfaces is the number of network interfaces (default 2).
	Interfaces int
	// LinkBitsPerSec is the segment capacity (default 10 Mb/s, the
	// 10,000,000 denominator in the paper's utilization formula).
	LinkBitsPerSec float64
	// AvgPacketBits is the mean packet size in bits (default 4096,
	// i.e. 512-octet frames).
	AvgPacketBits float64
	// Seed seeds the device's private noise source.
	Seed int64
}

// Device is a simulated managed network element. It owns a Tree
// populated with the MIB-II subset (system, interfaces, ip routes, tcp
// connections) and the private Ethernet-concentrator counters the
// paper's health formulas read.
//
// Time is virtual: nothing changes except through Advance, so
// experiments are deterministic and can run thousands of simulated
// seconds in microseconds.
type Device struct {
	cfg DeviceConfig

	mu       sync.Mutex
	now      time.Duration // virtual time since boot
	load     LoadProfile
	rng      *rand.Rand
	tree     *Tree
	ifRows   *MemRows
	tcpConns *MemRows
	ipRoutes *MemRows

	// Segment counters (the private MIB). Held as uint64 and exposed
	// with Counter32 wrap semantics, as period-authentic agents did.
	rxOkBits   uint64
	collisions uint64
	rxBcast    uint64
	rxPkts     uint64
	rxErrs     uint64

	ifaces []*deviceIface

	opens uint64 // tcp connection counter for unique ports
}

type deviceIface struct {
	index      uint32
	descr      string
	speed      uint64
	oper       int
	inOctets   uint64
	outOctets  uint64
	inUcast    uint64
	inNUcast   uint64
	inErrors   uint64
	outUcast   uint64
	lastChange uint64
}

// NewDevice constructs and instruments a simulated device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("mib: device needs a name")
	}
	if cfg.Interfaces <= 0 {
		cfg.Interfaces = 2
	}
	if cfg.LinkBitsPerSec <= 0 {
		cfg.LinkBitsPerSec = 10_000_000
	}
	if cfg.AvgPacketBits <= 0 {
		cfg.AvgPacketBits = 4096
	}
	if cfg.Addr == ([4]byte{}) {
		cfg.Addr = [4]byte{10, 0, 0, 1}
	}
	d := &Device{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		tree:     &Tree{},
		ifRows:   &MemRows{},
		tcpConns: &MemRows{},
		ipRoutes: &MemRows{},
		load:     LoadProfile{Utilization: 0.05, BroadcastFraction: 0.02, ErrorRate: 0.001, CollisionRate: 0.01},
	}
	for i := 0; i < cfg.Interfaces; i++ {
		d.ifaces = append(d.ifaces, &deviceIface{
			index: uint32(i + 1),
			descr: fmt.Sprintf("eth%d", i),
			speed: uint64(cfg.LinkBitsPerSec),
			oper:  IfStatusUp,
		})
	}
	if err := d.instrument(); err != nil {
		return nil, err
	}
	return d, nil
}

// Tree returns the device's MIB tree. Delegated agents read it
// directly; the SNMP agent serves it remotely.
func (d *Device) Tree() *Tree { return d.tree }

// Name returns the configured device name.
func (d *Device) Name() string { return d.cfg.Name }

// Addr returns the device's configured IP address (used as the trap
// agent-addr field).
func (d *Device) Addr() [4]byte { return d.cfg.Addr }

func (d *Device) instrument() error {
	mounts := []struct {
		prefix oid.OID
		h      Handler
	}{
		{OIDSysDescr, ConstScalar(Str("MbD simulated managed device"))},
		{OIDSysObjectID, ConstScalar(OIDValue(OIDPrivateEnet))},
		{OIDSysUpTime, &Scalar{Get: func() Value {
			d.mu.Lock()
			defer d.mu.Unlock()
			return TimeTicks(uint64(d.now / (10 * time.Millisecond)))
		}}},
		{OIDSysContact, ConstScalar(Str("noc@example.net"))},
		{OIDSysName, ConstScalar(Str(d.cfg.Name))},
		{OIDSysLocation, ConstScalar(Str("simulated LAN segment"))},
		{OIDSysServices, ConstScalar(Int(72))},
		{OIDIfNumber, &Scalar{Get: func() Value { return Int(int64(len(d.ifaces))) }}},
		{OIDIfEntry, &ifTableHandler{d: d}},
		{OIDTCPConnEntry, NewTable(d.tcpConns,
			TCPConnState, TCPConnLocalAddr, TCPConnLocalPort, TCPConnRemAddr, TCPConnRemPort)},
		{OIDIPRouteEntry, NewTable(d.ipRoutes,
			IPRouteDest, IPRouteIfIndex, IPRouteMetric1, IPRouteNextHop, IPRouteType, IPRouteProto, IPRouteAge)},
		{OIDEnetRxOk, &Scalar{Get: d.counter(&d.rxOkBits)}},
		{OIDEnetColl, &Scalar{Get: d.counter(&d.collisions)}},
		{OIDEnetRxBcast, &Scalar{Get: d.counter(&d.rxBcast)}},
		{OIDEnetRxPkts, &Scalar{Get: d.counter(&d.rxPkts)}},
		{OIDEnetRxErrs, &Scalar{Get: d.counter(&d.rxErrs)}},
	}
	for _, m := range mounts {
		if err := d.tree.Mount(m.prefix, m.h); err != nil {
			return fmt.Errorf("mib: instrumenting %s: %w", d.cfg.Name, err)
		}
	}
	d.tcpConns.Watch(d.tree.Changes(), OIDTCPConnEntry)
	d.ipRoutes.Watch(d.tree.Changes(), OIDIPRouteEntry)
	return nil
}

func (d *Device) counter(p *uint64) func() Value {
	return func() Value {
		d.mu.Lock()
		defer d.mu.Unlock()
		return Counter32(*p)
	}
}

// SetLoad replaces the device's instantaneous load profile. Experiments
// use this to inject episodes (congestion, broadcast storms, error
// bursts).
func (d *Device) SetLoad(p LoadProfile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load = p
}

// Load returns the current load profile.
func (d *Device) Load() LoadProfile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.load
}

// Now returns the device's virtual time since boot.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Advance moves virtual time forward by dt, integrating the load
// profile into all counters. Noise of ±2% keeps successive deltas from
// being perfectly flat without breaking determinism (the noise source
// is seeded).
func (d *Device) Advance(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.mu.Lock()
	d.now += dt
	sec := dt.Seconds()
	noise := 1 + (d.rng.Float64()-0.5)*0.04
	bits := d.load.Utilization * d.cfg.LinkBitsPerSec * sec * noise
	if bits < 0 {
		bits = 0
	}
	pkts := bits / d.cfg.AvgPacketBits
	d.rxOkBits += uint64(bits)
	d.rxPkts += uint64(pkts)
	d.rxBcast += uint64(pkts * d.load.BroadcastFraction)
	d.rxErrs += uint64(pkts * d.load.ErrorRate)
	d.collisions += uint64(pkts * d.load.CollisionRate)
	perIf := bits / 8 / float64(len(d.ifaces)) // octets split across interfaces
	for _, ifc := range d.ifaces {
		if ifc.oper != IfStatusUp {
			continue
		}
		ifc.inOctets += uint64(perIf)
		ifc.outOctets += uint64(perIf * 0.8)
		ifc.inUcast += uint64(pkts * (1 - d.load.BroadcastFraction) / float64(len(d.ifaces)))
		ifc.inNUcast += uint64(pkts * d.load.BroadcastFraction / float64(len(d.ifaces)))
		ifc.inErrors += uint64(pkts * d.load.ErrorRate / float64(len(d.ifaces)))
		ifc.outUcast += uint64(pkts * 0.8 / float64(len(d.ifaces)))
	}
	d.mu.Unlock()
	d.publishIfRows()
}

// publishIfRows reports every interface row as changed — Advance bumps
// all counters at once, so per-cell deltas would be pure overhead. With
// no change subscribers this is one atomic load.
func (d *Device) publishIfRows() {
	hub := d.tree.Changes()
	if !hub.Active() {
		return
	}
	for _, ifc := range d.ifaces {
		hub.Publish(Change{Kind: ChangeRow, Table: OIDIfEntry, Index: oid.OID{ifc.index}})
	}
}

// SetInterfaceStatus changes an interface's operational status
// (IfStatusUp or IfStatusDown), simulating link faults.
func (d *Device) SetInterfaceStatus(index uint32, status int) error {
	d.mu.Lock()
	found := false
	for _, ifc := range d.ifaces {
		if ifc.index == index {
			ifc.oper = status
			ifc.lastChange = uint64(d.now / (10 * time.Millisecond))
			found = true
			break
		}
	}
	d.mu.Unlock()
	if !found {
		return fmt.Errorf("%w: ifIndex %d", ErrNoSuchName, index)
	}
	d.tree.Changes().Publish(Change{Kind: ChangeRow, Table: OIDIfEntry, Index: oid.OID{index}})
	return nil
}

// ConnID identifies a TCP connection by its tcpConnTable index.
type ConnID struct {
	LocalAddr [4]byte
	LocalPort uint16
	RemAddr   [4]byte
	RemPort   uint16
}

func (c ConnID) index() oid.OID {
	return oid.OID{
		uint32(c.LocalAddr[0]), uint32(c.LocalAddr[1]), uint32(c.LocalAddr[2]), uint32(c.LocalAddr[3]),
		uint32(c.LocalPort),
		uint32(c.RemAddr[0]), uint32(c.RemAddr[1]), uint32(c.RemAddr[2]), uint32(c.RemAddr[3]),
		uint32(c.RemPort),
	}
}

// OpenConn inserts an established connection into tcpConnTable.
func (d *Device) OpenConn(c ConnID) {
	d.tcpConns.Upsert(c.index(), map[uint32]Value{
		TCPConnState:     Int(TCPStateEstablished),
		TCPConnLocalAddr: IP(c.LocalAddr[0], c.LocalAddr[1], c.LocalAddr[2], c.LocalAddr[3]),
		TCPConnLocalPort: Int(int64(c.LocalPort)),
		TCPConnRemAddr:   IP(c.RemAddr[0], c.RemAddr[1], c.RemAddr[2], c.RemAddr[3]),
		TCPConnRemPort:   Int(int64(c.RemPort)),
	})
	d.mu.Lock()
	d.opens++
	d.mu.Unlock()
}

// CloseConn removes a connection from tcpConnTable.
func (d *Device) CloseConn(c ConnID) bool { return d.tcpConns.Delete(c.index()) }

// ConnCount returns the number of rows currently in tcpConnTable.
func (d *Device) ConnCount() int { return d.tcpConns.Len() }

// AddRoute installs a row in ipRouteTable keyed by destination.
func (d *Device) AddRoute(dest [4]byte, ifIndex uint32, metric int64, nextHop [4]byte) {
	idx := oid.OID{uint32(dest[0]), uint32(dest[1]), uint32(dest[2]), uint32(dest[3])}
	d.ipRoutes.Upsert(idx, map[uint32]Value{
		IPRouteDest:    IP(dest[0], dest[1], dest[2], dest[3]),
		IPRouteIfIndex: Int(int64(ifIndex)),
		IPRouteMetric1: Int(metric),
		IPRouteNextHop: IP(nextHop[0], nextHop[1], nextHop[2], nextHop[3]),
		IPRouteType:    Int(4), // indirect
		IPRouteProto:   Int(8), // rip
		IPRouteAge:     Int(0),
	})
}

// DelRoute removes the route to dest, reporting whether it existed.
func (d *Device) DelRoute(dest [4]byte) bool {
	idx := oid.OID{uint32(dest[0]), uint32(dest[1]), uint32(dest[2]), uint32(dest[3])}
	return d.ipRoutes.Delete(idx)
}

// RouteCount returns the number of rows in ipRouteTable.
func (d *Device) RouteCount() int { return d.ipRoutes.Len() }

// ifTableHandler adapts the device's interface slice to the Table
// handler protocol without materializing rows.
type ifTableHandler struct {
	d *Device
}

var ifColumns = []uint32{
	IfIndex, IfDescr, IfType, IfMtu, IfSpeed, IfPhysAddress,
	IfAdminStatus, IfOperStatus, IfLastChange, IfInOctets, IfInUcastPkts,
	IfInNUcast, IfInDiscards, IfInErrors, IfOutOctets, IfOutUcast, IfOutQLen,
}

func (h *ifTableHandler) cell(col uint32, index oid.OID) (Value, bool) {
	if len(index) != 1 {
		return Value{}, false
	}
	// Interface membership is fixed after construction; only the
	// counter fields need the device lock (taken in cellOf).
	for _, c := range h.d.ifaces {
		if c.index == index[0] {
			return h.cellOf(c, col)
		}
	}
	return Value{}, false
}

// cellOf returns column col of interface ifc.
func (h *ifTableHandler) cellOf(ifc *deviceIface, col uint32) (Value, bool) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	switch col {
	case IfIndex:
		return Int(int64(ifc.index)), true
	case IfDescr:
		return Str(ifc.descr), true
	case IfType:
		return Int(6), true // ethernetCsmacd
	case IfMtu:
		return Int(1500), true
	case IfSpeed:
		return Gauge32(ifc.speed), true
	case IfPhysAddress:
		return Octets([]byte{0x02, 0x00, 0x00, 0x00, 0x00, byte(ifc.index)}), true
	case IfAdminStatus:
		return Int(IfStatusUp), true
	case IfOperStatus:
		return Int(int64(ifc.oper)), true
	case IfLastChange:
		return TimeTicks(ifc.lastChange), true
	case IfInOctets:
		return Counter32(ifc.inOctets), true
	case IfInUcastPkts:
		return Counter32(ifc.inUcast), true
	case IfInNUcast:
		return Counter32(ifc.inNUcast), true
	case IfInDiscards:
		return Counter32(0), true
	case IfInErrors:
		return Counter32(ifc.inErrors), true
	case IfOutOctets:
		return Counter32(ifc.outOctets), true
	case IfOutUcast:
		return Counter32(ifc.outUcast), true
	case IfOutQLen:
		return Gauge32(0), true
	default:
		return Value{}, false
	}
}

// GetRel implements Handler.
func (h *ifTableHandler) GetRel(rel oid.OID) (Value, bool) {
	if len(rel) != 2 {
		return Value{}, false
	}
	return h.cell(rel[0], rel[1:])
}

// NextRel implements Handler.
func (h *ifTableHandler) NextRel(rel oid.OID) (oid.OID, Value, bool) {
	next, v, ok := h.AppendNextRel(nil, rel)
	return next, v, ok
}

// colStart reports whether column col can hold a successor of rel and,
// when rel points inside the column, the exclusive interface-index
// lower bound. Row indexes are single-arc, so "index strictly greater
// than rel[1:]" reduces to a plain arc comparison.
func colStart(col uint32, rel oid.OID) (after uint32, bounded, ok bool) {
	if len(rel) == 0 || rel[0] < col {
		return 0, false, true
	}
	if rel[0] > col {
		return 0, false, false
	}
	if len(rel) >= 2 {
		return rel[1], true, true
	}
	return 0, false, true
}

// AppendNextRel implements AppendNexter.
func (h *ifTableHandler) AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, Value, bool) {
	for _, col := range ifColumns {
		after, bounded, ok := colStart(col, rel)
		if !ok {
			continue
		}
		for _, ifc := range h.d.ifaces {
			if bounded && ifc.index <= after {
				continue
			}
			if v, ok := h.cellOf(ifc, col); ok {
				return append(append(dst, col), ifc.index), v, true
			}
		}
	}
	return nil, Value{}, false
}

// NextRelN implements BulkHandler.
func (h *ifTableHandler) NextRelN(rel oid.OID, max int, visit func(rel oid.OID, v Value) bool) int {
	var buf oid.OID
	n := 0
	for _, col := range ifColumns {
		after, bounded, ok := colStart(col, rel)
		if !ok {
			continue
		}
		for _, ifc := range h.d.ifaces {
			if bounded && ifc.index <= after {
				continue
			}
			v, ok := h.cellOf(ifc, col)
			if !ok {
				continue
			}
			buf = append(buf[:0], col, ifc.index)
			n++
			if !visit(buf, v) {
				return n
			}
			if max > 0 && n >= max {
				return n
			}
		}
	}
	return n
}
