package mib

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mbd/internal/oid"
)

// SNMP-compatible error conditions surfaced by Tree operations.
//
// Miss paths return these sentinels directly (not wrapped with the
// offending OID): a Get that misses is a routine, high-frequency event
// on the hot path, and callers that want the OID in a message already
// hold it. Use errors.Is for classification as before.
var (
	// ErrNoSuchName reports that the requested instance does not exist.
	ErrNoSuchName = errors.New("mib: no such name")
	// ErrEndOfMIB reports that GetNext walked past the last instance.
	ErrEndOfMIB = errors.New("mib: end of MIB view")
	// ErrReadOnly reports a Set on a non-writable instance.
	ErrReadOnly = errors.New("mib: read-only")
	// ErrBadValue reports a Set with an unacceptable value.
	ErrBadValue = errors.New("mib: bad value")
)

// Handler serves a subtree of instances. All OIDs passed to a Handler
// are relative to its mount prefix.
//
// Implementations must be safe for concurrent use; the Tree serializes
// mount mutations but not data access.
type Handler interface {
	// GetRel returns the value of the instance at rel, if it exists.
	GetRel(rel oid.OID) (Value, bool)
	// NextRel returns the first instance strictly greater than rel in
	// lexicographic order, with its value. A nil rel means "before the
	// first instance".
	NextRel(rel oid.OID) (oid.OID, Value, bool)
}

// Setter is implemented by handlers that accept writes.
type Setter interface {
	// SetRel writes the instance at rel. It returns ErrNoSuchName,
	// ErrReadOnly or ErrBadValue on failure.
	SetRel(rel oid.OID, v Value) error
}

// AppendNexter is an optional Handler extension for the allocation-free
// GetNext path: the successor's relative OID is appended to a
// caller-supplied buffer instead of being freshly allocated.
type AppendNexter interface {
	// AppendNextRel appends the relative OID of the first instance
	// strictly greater than rel to dst and returns the extended slice
	// with the instance's value. A false ok leaves dst's contents
	// unspecified beyond its original length.
	AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, Value, bool)
}

// BulkHandler is an optional Handler extension for subtree walks: the
// handler enumerates many successors in one call, avoiding the
// per-instance dispatch and re-search that a GetNext loop pays.
type BulkHandler interface {
	// NextRelN visits up to max instances strictly greater than rel in
	// lexicographic order (max <= 0 means no limit), calling visit for
	// each. The rel OID passed to visit is only valid for the duration
	// of the call; clone it to retain it. Enumeration stops early when
	// visit returns false. NextRelN returns the number of instances
	// visited.
	NextRelN(rel oid.OID, max int, visit func(rel oid.OID, v Value) bool) int
}

type mount struct {
	prefix oid.OID
	h      Handler
}

// Tree is a management information base assembled from handlers
// mounted at disjoint OID prefixes. It dispatches SNMP-style Get,
// GetNext and Set operations and supports full-subtree walks.
//
// The mount table is an immutable sorted slice behind an atomic
// pointer: data-path operations (Get, GetNext, Set, Walk) load it once
// and binary-search it without taking any lock; Mount and Unmount
// replace the whole table under a mutation mutex (copy-on-mount).
//
// The zero value is an empty tree ready for use.
type Tree struct {
	mountMu sync.Mutex // serializes Mount/Unmount
	mounts  atomic.Pointer[[]mount]

	stats   treeCounters
	changes ChangeHub
}

// Changes returns the tree's change-capture hub. Data sources mounted
// in the tree publish row/cell mutations into it; Set dispatches are
// published automatically. With no subscribers the publication paths
// cost one atomic load — see ChangeHub.
func (t *Tree) Changes() *ChangeHub { return &t.changes }

// treeCounters tallies data-path operations with lock-free atomics; a
// single uncontended add per operation keeps the dispatch hot path
// allocation-free and within the bench gate's budget.
type treeCounters struct {
	gets        atomic.Uint64
	getNexts    atomic.Uint64
	sets        atomic.Uint64
	walks       atomic.Uint64
	walkVisited atomic.Uint64
}

// TreeStats counts data-path operations since the tree was created.
type TreeStats struct {
	// Gets, GetNexts and Sets count Get/GetNextInto/Set dispatches
	// (misses included).
	Gets     uint64
	GetNexts uint64
	Sets     uint64
	// Walks counts Walk/WalkFrom calls; WalkVisited sums the instances
	// they visited.
	Walks       uint64
	WalkVisited uint64
}

// Stats returns a snapshot of the tree's operation counters.
func (t *Tree) Stats() TreeStats {
	return TreeStats{
		Gets:        t.stats.gets.Load(),
		GetNexts:    t.stats.getNexts.Load(),
		Sets:        t.stats.sets.Load(),
		Walks:       t.stats.walks.Load(),
		WalkVisited: t.stats.walkVisited.Load(),
	}
}

// load returns the current mount table (possibly nil).
func (t *Tree) load() []mount {
	if p := t.mounts.Load(); p != nil {
		return *p
	}
	return nil
}

// Mount attaches h at prefix. Prefixes must not be nested or equal;
// overlapping mounts return an error.
func (t *Tree) Mount(prefix oid.OID, h Handler) error {
	if len(prefix) == 0 {
		return errors.New("mib: cannot mount at empty prefix")
	}
	if h == nil {
		return errors.New("mib: nil handler")
	}
	t.mountMu.Lock()
	defer t.mountMu.Unlock()
	cur := t.load()
	for _, m := range cur {
		if m.prefix.HasPrefix(prefix) || prefix.HasPrefix(m.prefix) {
			return fmt.Errorf("mib: mount %s overlaps existing mount %s", prefix, m.prefix)
		}
	}
	next := make([]mount, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, mount{prefix: prefix.Clone(), h: h})
	sort.Slice(next, func(i, j int) bool {
		return next[i].prefix.Compare(next[j].prefix) < 0
	})
	t.mounts.Store(&next)
	return nil
}

// Unmount removes the handler mounted exactly at prefix.
func (t *Tree) Unmount(prefix oid.OID) bool {
	t.mountMu.Lock()
	defer t.mountMu.Unlock()
	cur := t.load()
	for i, m := range cur {
		if m.prefix.Equal(prefix) {
			next := make([]mount, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			t.mounts.Store(&next)
			return true
		}
	}
	return false
}

// find returns the index of the mount whose prefix covers o, or -1.
// Because mounts are disjoint and sorted, the only candidate is the
// last mount whose prefix sorts at or before o.
func find(mounts []mount, o oid.OID) int {
	i := sort.Search(len(mounts), func(i int) bool {
		return mounts[i].prefix.Compare(o) > 0
	})
	if i > 0 && o.HasPrefix(mounts[i-1].prefix) {
		return i - 1
	}
	return -1
}

// Get returns the value of the instance at o.
func (t *Tree) Get(o oid.OID) (Value, error) {
	t.stats.gets.Add(1)
	mounts := t.load()
	if i := find(mounts, o); i >= 0 {
		if v, ok := mounts[i].h.GetRel(o[len(mounts[i].prefix):]); ok {
			return v, nil
		}
	}
	return Value{}, ErrNoSuchName
}

// GetNext returns the first instance strictly after o, and its value.
// It returns ErrEndOfMIB after the last instance.
func (t *Tree) GetNext(o oid.OID) (oid.OID, Value, error) {
	next, v, err := t.GetNextInto(nil, o)
	return next, v, err
}

// GetNextInto is GetNext with a caller-supplied result buffer: the
// successor OID is appended to dst[:0] and returned. When dst has
// sufficient capacity and the resolved handler implements AppendNexter,
// the operation performs no allocation. dst may be nil.
func (t *Tree) GetNextInto(dst oid.OID, o oid.OID) (oid.OID, Value, error) {
	t.stats.getNexts.Add(1)
	mounts := t.load()
	// The mount containing o, if any, is tried with the relative
	// remainder; every mount sorting after o is tried from its start.
	// Mounts sorting entirely before o cannot hold a successor.
	i := sort.Search(len(mounts), func(i int) bool {
		return mounts[i].prefix.Compare(o) > 0
	})
	if i > 0 && o.HasPrefix(mounts[i-1].prefix) {
		m := &mounts[i-1]
		if next, v, ok := appendNext(m, dst, o[len(m.prefix):]); ok {
			return next, v, nil
		}
	}
	for ; i < len(mounts); i++ {
		if next, v, ok := appendNext(&mounts[i], dst, nil); ok {
			return next, v, nil
		}
	}
	return nil, Value{}, ErrEndOfMIB
}

// appendNext resolves one mount's successor of rel into dst[:0],
// prefixed with the mount prefix.
func appendNext(m *mount, dst oid.OID, rel oid.OID) (oid.OID, Value, bool) {
	dst = append(dst[:0], m.prefix...)
	if an, ok := m.h.(AppendNexter); ok {
		return an.AppendNextRel(dst, rel)
	}
	next, v, ok := m.h.NextRel(rel)
	if !ok {
		return nil, Value{}, false
	}
	return append(dst, next...), v, true
}

// Set writes the instance at o.
func (t *Tree) Set(o oid.OID, v Value) error {
	t.stats.sets.Add(1)
	mounts := t.load()
	i := find(mounts, o)
	if i < 0 {
		return ErrNoSuchName
	}
	s, ok := mounts[i].h.(Setter)
	if !ok {
		return ErrReadOnly
	}
	rel := o[len(mounts[i].prefix):]
	err := s.SetRel(rel, v)
	if err == nil && t.changes.Active() {
		c := Change{Kind: ChangeCell, Table: mounts[i].prefix}
		if len(rel) >= 2 {
			c.Col, c.Index = rel[0], rel[1:]
		} else {
			c.Index = rel
		}
		t.changes.Publish(c)
	}
	return err
}

// Walk invokes fn for every instance under prefix, in lexicographic
// order, until fn returns false or the subtree is exhausted. It returns
// the number of instances visited.
//
// The OID passed to fn is only valid for the duration of the call;
// clone it to retain it.
func (t *Tree) Walk(prefix oid.OID, fn func(o oid.OID, v Value) bool) int {
	return t.WalkFrom(prefix, prefix, fn)
}

// WalkFrom invokes fn for every instance under prefix that is strictly
// greater than `after`, in lexicographic order, until fn returns false
// or the subtree is exhausted, returning the number of instances
// visited. Walk(prefix, fn) is WalkFrom(prefix, prefix, fn).
//
// Unlike a GetNext loop, WalkFrom resolves the mount table once and
// pins each mount across its whole subtree: handlers implementing
// BulkHandler enumerate their instances in a single call, and full
// OIDs are assembled in one reused buffer. The OID passed to fn is
// only valid for the duration of the call; clone it to retain it.
func (t *Tree) WalkFrom(prefix, after oid.OID, fn func(o oid.OID, v Value) bool) int {
	t.stats.walks.Add(1)
	n := t.walkFrom(prefix, after, fn)
	t.stats.walkVisited.Add(uint64(n))
	return n
}

// walkFrom is WalkFrom without the stats accounting.
func (t *Tree) walkFrom(prefix, after oid.OID, fn func(o oid.OID, v Value) bool) int {
	mounts := t.load()
	var buf oid.OID // reused full-OID scratch across the whole walk
	n := 0
	// First mount to consider: the one containing `after`, else the
	// first mount sorting beyond it.
	i := sort.Search(len(mounts), func(i int) bool {
		return mounts[i].prefix.Compare(after) > 0
	})
	if i > 0 && after.HasPrefix(mounts[i-1].prefix) {
		i--
	}
	for ; i < len(mounts); i++ {
		m := &mounts[i]
		// A mount whose prefix leaves the requested subtree ends the
		// walk; mounts are sorted, so nothing later can re-enter it.
		// (A mount above the prefix — prefix inside the mount — still
		// participates: its instances are filtered individually.)
		if !m.prefix.HasPrefix(prefix) && !prefix.HasPrefix(m.prefix) {
			if m.prefix.Compare(prefix) > 0 {
				break
			}
			continue
		}
		var rel oid.OID
		if after.HasPrefix(m.prefix) {
			rel = after[len(m.prefix):]
		}
		stop := false
		visit := func(r oid.OID, v Value) bool {
			buf = append(append(buf[:0], m.prefix...), r...)
			if !buf.HasPrefix(prefix) {
				// Past the requested subtree within a covering mount.
				if buf.Compare(prefix) > 0 {
					stop = true
					return false
				}
				return true // still before the subtree; keep scanning
			}
			n++
			if !fn(buf, v) {
				stop = true
				return false
			}
			return true
		}
		if bh, ok := m.h.(BulkHandler); ok {
			bh.NextRelN(rel, 0, visit)
		} else {
			walkRelSlow(m.h, rel, visit)
		}
		if stop {
			return n
		}
	}
	return n
}

// walkRelSlow enumerates a plain Handler with a NextRel loop, feeding
// the same visit callback the bulk path uses. The relative cursor is
// kept in a reused buffer.
func walkRelSlow(h Handler, rel oid.OID, visit func(rel oid.OID, v Value) bool) {
	cur := append(oid.OID(nil), rel...)
	for {
		next, v, ok := h.NextRel(cur)
		if !ok {
			return
		}
		if !visit(next, v) {
			return
		}
		cur = append(cur[:0], next...)
	}
}

// scalarInstance is the single ".0" instance every Scalar exposes,
// hoisted so the GetNext hot path does not allocate it per call.
var scalarInstance = oid.OID{0}

// Scalar is a Handler for a single leaf object with exactly one
// instance, ".0", per SMI convention. Mount it at the object OID (for
// example sysDescr, 1.3.6.1.2.1.1.1).
type Scalar struct {
	// Get returns the current value. Required.
	Get func() Value
	// Set accepts a write; nil means read-only.
	Set func(Value) error
}

// GetRel implements Handler.
func (s *Scalar) GetRel(rel oid.OID) (Value, bool) {
	if len(rel) != 1 || rel[0] != 0 {
		return Value{}, false
	}
	return s.Get(), true
}

// NextRel implements Handler.
func (s *Scalar) NextRel(rel oid.OID) (oid.OID, Value, bool) {
	if rel.Compare(scalarInstance) < 0 {
		return scalarInstance, s.Get(), true
	}
	return nil, Value{}, false
}

// AppendNextRel implements AppendNexter.
func (s *Scalar) AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, Value, bool) {
	if rel.Compare(scalarInstance) < 0 {
		return append(dst, 0), s.Get(), true
	}
	return nil, Value{}, false
}

// NextRelN implements BulkHandler.
func (s *Scalar) NextRelN(rel oid.OID, max int, visit func(rel oid.OID, v Value) bool) int {
	if rel.Compare(scalarInstance) >= 0 {
		return 0
	}
	visit(scalarInstance, s.Get())
	return 1
}

// SetRel implements Setter.
func (s *Scalar) SetRel(rel oid.OID, v Value) error {
	if len(rel) != 1 || rel[0] != 0 {
		return ErrNoSuchName
	}
	if s.Set == nil {
		return ErrReadOnly
	}
	return s.Set(v)
}

// ConstScalar returns a Scalar that always serves v.
func ConstScalar(v Value) *Scalar {
	return &Scalar{Get: func() Value { return v }}
}
