package mib

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mbd/internal/oid"
)

// SNMP-compatible error conditions surfaced by Tree operations.
var (
	// ErrNoSuchName reports that the requested instance does not exist.
	ErrNoSuchName = errors.New("mib: no such name")
	// ErrEndOfMIB reports that GetNext walked past the last instance.
	ErrEndOfMIB = errors.New("mib: end of MIB view")
	// ErrReadOnly reports a Set on a non-writable instance.
	ErrReadOnly = errors.New("mib: read-only")
	// ErrBadValue reports a Set with an unacceptable value.
	ErrBadValue = errors.New("mib: bad value")
)

// Handler serves a subtree of instances. All OIDs passed to a Handler
// are relative to its mount prefix.
//
// Implementations must be safe for concurrent use; the Tree serializes
// mount mutations but not data access.
type Handler interface {
	// GetRel returns the value of the instance at rel, if it exists.
	GetRel(rel oid.OID) (Value, bool)
	// NextRel returns the first instance strictly greater than rel in
	// lexicographic order, with its value. A nil rel means "before the
	// first instance".
	NextRel(rel oid.OID) (oid.OID, Value, bool)
}

// Setter is implemented by handlers that accept writes.
type Setter interface {
	// SetRel writes the instance at rel. It returns ErrNoSuchName,
	// ErrReadOnly or ErrBadValue on failure.
	SetRel(rel oid.OID, v Value) error
}

type mount struct {
	prefix oid.OID
	h      Handler
}

// Tree is a management information base assembled from handlers
// mounted at disjoint OID prefixes. It dispatches SNMP-style Get,
// GetNext and Set operations and supports full-subtree walks.
//
// The zero value is an empty tree ready for use.
type Tree struct {
	mu     sync.RWMutex
	mounts []mount // sorted by prefix
}

// Mount attaches h at prefix. Prefixes must not be nested or equal;
// overlapping mounts return an error.
func (t *Tree) Mount(prefix oid.OID, h Handler) error {
	if len(prefix) == 0 {
		return errors.New("mib: cannot mount at empty prefix")
	}
	if h == nil {
		return errors.New("mib: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.mounts {
		if m.prefix.HasPrefix(prefix) || prefix.HasPrefix(m.prefix) {
			return fmt.Errorf("mib: mount %s overlaps existing mount %s", prefix, m.prefix)
		}
	}
	t.mounts = append(t.mounts, mount{prefix: prefix.Clone(), h: h})
	sort.Slice(t.mounts, func(i, j int) bool {
		return t.mounts[i].prefix.Compare(t.mounts[j].prefix) < 0
	})
	return nil
}

// Unmount removes the handler mounted exactly at prefix.
func (t *Tree) Unmount(prefix oid.OID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, m := range t.mounts {
		if m.prefix.Equal(prefix) {
			t.mounts = append(t.mounts[:i], t.mounts[i+1:]...)
			return true
		}
	}
	return false
}

func (t *Tree) snapshotMounts() []mount {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]mount, len(t.mounts))
	copy(out, t.mounts)
	return out
}

// Get returns the value of the instance at o.
func (t *Tree) Get(o oid.OID) (Value, error) {
	for _, m := range t.snapshotMounts() {
		if o.HasPrefix(m.prefix) {
			rel := o[len(m.prefix):]
			if v, ok := m.h.GetRel(rel); ok {
				return v, nil
			}
			return Value{}, fmt.Errorf("%w: %s", ErrNoSuchName, o)
		}
	}
	return Value{}, fmt.Errorf("%w: %s", ErrNoSuchName, o)
}

// GetNext returns the first instance strictly after o, and its value.
// It returns ErrEndOfMIB after the last instance.
func (t *Tree) GetNext(o oid.OID) (oid.OID, Value, error) {
	for _, m := range t.snapshotMounts() {
		var rel oid.OID
		switch {
		case o.Compare(m.prefix) < 0 && !m.prefix.HasPrefix(o):
			// o sorts entirely before this subtree: start at its beginning.
			rel = nil
		case m.prefix.HasPrefix(o) && !o.Equal(m.prefix):
			// o is a proper ancestor of the mount: start at its beginning.
			rel = nil
		case o.HasPrefix(m.prefix):
			rel = o[len(m.prefix):]
		default:
			// o sorts after this subtree.
			continue
		}
		if next, v, ok := m.h.NextRel(rel); ok {
			return m.prefix.Append(next...), v, nil
		}
	}
	return nil, Value{}, ErrEndOfMIB
}

// Set writes the instance at o.
func (t *Tree) Set(o oid.OID, v Value) error {
	for _, m := range t.snapshotMounts() {
		if o.HasPrefix(m.prefix) {
			s, ok := m.h.(Setter)
			if !ok {
				return fmt.Errorf("%w: %s", ErrReadOnly, o)
			}
			return s.SetRel(o[len(m.prefix):], v)
		}
	}
	return fmt.Errorf("%w: %s", ErrNoSuchName, o)
}

// Walk invokes fn for every instance under prefix, in lexicographic
// order, until fn returns false or the subtree is exhausted. It returns
// the number of instances visited.
func (t *Tree) Walk(prefix oid.OID, fn func(o oid.OID, v Value) bool) int {
	cur := prefix.Clone()
	n := 0
	for {
		next, v, err := t.GetNext(cur)
		if err != nil || !next.HasPrefix(prefix) {
			return n
		}
		n++
		if !fn(next, v) {
			return n
		}
		cur = next
	}
}

// Scalar is a Handler for a single leaf object with exactly one
// instance, ".0", per SMI convention. Mount it at the object OID (for
// example sysDescr, 1.3.6.1.2.1.1.1).
type Scalar struct {
	// Get returns the current value. Required.
	Get func() Value
	// Set accepts a write; nil means read-only.
	Set func(Value) error
}

// GetRel implements Handler.
func (s *Scalar) GetRel(rel oid.OID) (Value, bool) {
	if len(rel) != 1 || rel[0] != 0 {
		return Value{}, false
	}
	return s.Get(), true
}

// NextRel implements Handler.
func (s *Scalar) NextRel(rel oid.OID) (oid.OID, Value, bool) {
	inst := oid.OID{0}
	if rel.Compare(inst) < 0 {
		return inst, s.Get(), true
	}
	return nil, Value{}, false
}

// SetRel implements Setter.
func (s *Scalar) SetRel(rel oid.OID, v Value) error {
	if len(rel) != 1 || rel[0] != 0 {
		return ErrNoSuchName
	}
	if s.Set == nil {
		return ErrReadOnly
	}
	return s.Set(v)
}

// ConstScalar returns a Scalar that always serves v.
func ConstScalar(v Value) *Scalar {
	return &Scalar{Get: func() Value { return v }}
}
