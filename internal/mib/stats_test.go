package mib

import (
	"testing"

	"mbd/internal/oid"
)

// TestTreeStats verifies the data-path operation counters: every
// dispatch counts, hits and misses alike, and walks account their
// visited instances.
func TestTreeStats(t *testing.T) {
	tree := &Tree{}
	root := oid.MustParse("1.3.6.1.2.1.1.3")
	if err := tree.Mount(root, ConstScalar(TimeTicks(1))); err != nil {
		t.Fatal(err)
	}
	if s := tree.Stats(); s != (TreeStats{}) {
		t.Fatalf("fresh tree has stats %+v", s)
	}

	inst := root.Append(0)
	if _, err := tree.Get(inst); err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Get(oid.MustParse("1.2.3")) // miss counts too
	if _, _, err := tree.GetNext(root); err != nil {
		t.Fatal(err)
	}
	_ = tree.Set(inst, Int(5)) // read-only, still a dispatch
	if n := tree.Walk(root, func(oid.OID, Value) bool { return true }); n != 1 {
		t.Fatalf("walked %d", n)
	}

	s := tree.Stats()
	want := TreeStats{Gets: 2, GetNexts: 1, Sets: 1, Walks: 1, WalkVisited: 1}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}
