package mib

import (
	"testing"
	"time"

	"mbd/internal/oid"
)

func drain(s *ChangeSub) []Change {
	var out []Change
	for {
		c, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

func TestChangeHubPublishSubscribe(t *testing.T) {
	var h ChangeHub
	if h.Active() {
		t.Fatal("fresh hub reports active")
	}
	s := h.Subscribe(4)
	if !h.Active() {
		t.Fatal("hub with subscriber reports inactive")
	}
	idx := oid.OID{7}
	h.Publish(Change{Kind: ChangeRow, Table: OIDIfEntry, Index: idx})
	idx[0] = 99 // the hub must have cloned the index
	got := drain(s)
	if len(got) != 1 {
		t.Fatalf("got %d changes, want 1", len(got))
	}
	if got[0].Kind != ChangeRow || !got[0].Table.Equal(OIDIfEntry) || !got[0].Index.Equal(oid.OID{7}) {
		t.Fatalf("unexpected change %+v", got[0])
	}
	s.Close()
	if h.Active() {
		t.Fatal("hub active after last unsubscribe")
	}
	h.Publish(Change{Kind: ChangeDrop, Table: OIDIfEntry, Index: oid.OID{1}})
	if got := drain(s); len(got) != 0 {
		t.Fatalf("closed subscriber received %d changes", len(got))
	}
}

func TestChangeSubDropsOldestOnOverflow(t *testing.T) {
	var h ChangeHub
	s := h.Subscribe(2)
	for i := uint32(1); i <= 5; i++ {
		h.Publish(Change{Kind: ChangeRow, Table: OIDIfEntry, Index: oid.OID{i}})
	}
	got := drain(s)
	if len(got) != 2 {
		t.Fatalf("queue holds %d, want 2", len(got))
	}
	// Oldest dropped: the two newest remain.
	if !got[0].Index.Equal(oid.OID{4}) || !got[1].Index.Equal(oid.OID{5}) {
		t.Fatalf("kept %v and %v, want newest two", got[0].Index, got[1].Index)
	}
	if s.Lost() != 3 {
		t.Fatalf("Lost() = %d, want 3", s.Lost())
	}
}

func TestChangeHubNoSubscriberPublishAllocs(t *testing.T) {
	var h ChangeHub
	idx := oid.OID{1, 2, 3}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Publish(Change{Kind: ChangeCell, Table: OIDIfEntry, Col: 10, Index: idx})
	})
	if allocs != 0 {
		t.Fatalf("no-subscriber Publish allocates %.1f/op, want 0", allocs)
	}
}

func TestMemRowsPublishesRowLifecycle(t *testing.T) {
	var tree Tree
	m := &MemRows{}
	if err := tree.Mount(OIDTCPConnEntry, NewTable(m, TCPConnState)); err != nil {
		t.Fatal(err)
	}
	m.Watch(tree.Changes(), OIDTCPConnEntry)
	s := tree.Changes().Subscribe(16)

	idx := oid.OID{1, 1}
	m.Upsert(idx, map[uint32]Value{TCPConnState: Int(5)})
	m.SetCellValue(idx, TCPConnState, Int(6))
	m.SetCellValue(oid.OID{9, 9}, TCPConnState, Int(1)) // missing row: no event
	m.Delete(idx)
	got := drain(s)
	if len(got) != 3 {
		t.Fatalf("got %d changes, want 3: %+v", len(got), got)
	}
	wantKinds := []ChangeKind{ChangeRow, ChangeCell, ChangeDrop}
	for i, w := range wantKinds {
		if got[i].Kind != w || !got[i].Table.Equal(OIDTCPConnEntry) || !got[i].Index.Equal(idx) {
			t.Fatalf("change %d = %+v, want kind %s at %v", i, got[i], w, idx)
		}
	}
	if got[1].Col != TCPConnState {
		t.Fatalf("cell change col = %d, want %d", got[1].Col, TCPConnState)
	}
}

func TestDevicePublishesChanges(t *testing.T) {
	d, err := NewDevice(DeviceConfig{Name: "chg", Interfaces: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Tree().Changes().Subscribe(64)

	c := ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{10, 0, 0, 2}, RemPort: 40000}
	d.OpenConn(c)
	d.CloseConn(c)
	d.AddRoute([4]byte{192, 168, 1, 0}, 1, 2, [4]byte{10, 0, 0, 254})
	d.DelRoute([4]byte{192, 168, 1, 0})
	d.Advance(time.Second)
	if err := d.SetInterfaceStatus(2, IfStatusDown); err != nil {
		t.Fatal(err)
	}

	byTable := map[string]int{}
	for _, ch := range drain(s) {
		byTable[ch.Table.String()]++
	}
	if byTable[OIDTCPConnEntry.String()] != 2 {
		t.Fatalf("tcpConn changes = %d, want 2 (map %v)", byTable[OIDTCPConnEntry.String()], byTable)
	}
	if byTable[OIDIPRouteEntry.String()] != 2 {
		t.Fatalf("ipRoute changes = %d, want 2 (map %v)", byTable[OIDIPRouteEntry.String()], byTable)
	}
	// Advance publishes one row change per interface, plus one for the
	// status flip.
	if byTable[OIDIfEntry.String()] != 3 {
		t.Fatalf("ifTable changes = %d, want 3 (map %v)", byTable[OIDIfEntry.String()], byTable)
	}
}
