//go:build race

package mib

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so alloc tests are skipped under -race.
const raceEnabled = true
