package mib

import "mbd/internal/oid"

// Standard MIB-II object identifiers (RFC 1213) for the subset this
// repository instruments, plus the Synoptics-style private objects the
// paper's InterOp'91 demo formulas read.
var (
	// OIDMib2 is the mib-2 root, 1.3.6.1.2.1.
	OIDMib2 = oid.MustParse("1.3.6.1.2.1")

	// system group (1.3.6.1.2.1.1).
	OIDSysDescr    = oid.MustParse("1.3.6.1.2.1.1.1")
	OIDSysObjectID = oid.MustParse("1.3.6.1.2.1.1.2")
	OIDSysUpTime   = oid.MustParse("1.3.6.1.2.1.1.3")
	OIDSysContact  = oid.MustParse("1.3.6.1.2.1.1.4")
	OIDSysName     = oid.MustParse("1.3.6.1.2.1.1.5")
	OIDSysLocation = oid.MustParse("1.3.6.1.2.1.1.6")
	OIDSysServices = oid.MustParse("1.3.6.1.2.1.1.7")

	// interfaces group (1.3.6.1.2.1.2).
	OIDIfNumber = oid.MustParse("1.3.6.1.2.1.2.1")
	// OIDIfEntry is the ifTable entry; instances are column.ifIndex.
	OIDIfEntry = oid.MustParse("1.3.6.1.2.1.2.2.1")

	// ip group route table (1.3.6.1.2.1.4.21); index is the 4-arc
	// destination address.
	OIDIPRouteEntry = oid.MustParse("1.3.6.1.2.1.4.21.1")

	// tcp group connection table (1.3.6.1.2.1.6.13); index is
	// localAddr(4).localPort.remAddr(4).remPort.
	OIDTCPConnEntry = oid.MustParse("1.3.6.1.2.1.6.13.1")

	// OIDPrivateEnet is the root of the Synoptics-style concentrator
	// subtree used by the health formulas (modeled on
	// 1.3.6.1.4.1.45.1.3.2 from the private Synoptics MIB the paper
	// cites).
	OIDPrivateEnet = oid.MustParse("1.3.6.1.4.1.45.1.3.2")
	// OIDEnetRxOk counts bits received without error, the counter in
	// the paper's utilization formula: U(t) = ΔRxOk / (Δt × 10^7).
	OIDEnetRxOk = OIDPrivateEnet.Append(1)
	// OIDEnetColl counts collisions observed on the segment.
	OIDEnetColl = OIDPrivateEnet.Append(2)
	// OIDEnetRxBcast counts broadcast packets received.
	OIDEnetRxBcast = OIDPrivateEnet.Append(3)
	// OIDEnetRxPkts counts total packets received.
	OIDEnetRxPkts = OIDPrivateEnet.Append(4)
	// OIDEnetRxErrs counts damaged frames received.
	OIDEnetRxErrs = OIDPrivateEnet.Append(5)
)

// ifTable column numbers (RFC 1213).
const (
	IfIndex       uint32 = 1
	IfDescr       uint32 = 2
	IfType        uint32 = 3
	IfMtu         uint32 = 4
	IfSpeed       uint32 = 5
	IfPhysAddress uint32 = 6
	IfAdminStatus uint32 = 7
	IfOperStatus  uint32 = 8
	IfLastChange  uint32 = 9
	IfInOctets    uint32 = 10
	IfInUcastPkts uint32 = 11
	IfInNUcast    uint32 = 12
	IfInDiscards  uint32 = 13
	IfInErrors    uint32 = 14
	IfInUnknown   uint32 = 15
	IfOutOctets   uint32 = 16
	IfOutUcast    uint32 = 17
	IfOutNUcast   uint32 = 18
	IfOutDiscards uint32 = 19
	IfOutErrors   uint32 = 20
	IfOutQLen     uint32 = 21
)

// ifOperStatus / ifAdminStatus values.
const (
	IfStatusUp   = 1
	IfStatusDown = 2
)

// tcpConnTable column numbers (RFC 1213).
const (
	TCPConnState     uint32 = 1
	TCPConnLocalAddr uint32 = 2
	TCPConnLocalPort uint32 = 3
	TCPConnRemAddr   uint32 = 4
	TCPConnRemPort   uint32 = 5
)

// tcpConnState values (RFC 1213).
const (
	TCPStateClosed      = 1
	TCPStateListen      = 2
	TCPStateSynSent     = 3
	TCPStateSynReceived = 4
	TCPStateEstablished = 5
	TCPStateFinWait1    = 6
	TCPStateFinWait2    = 7
	TCPStateCloseWait   = 8
	TCPStateLastAck     = 9
	TCPStateClosing     = 10
	TCPStateTimeWait    = 11
)

// ipRouteTable column numbers (RFC 1213 subset).
const (
	IPRouteDest    uint32 = 1
	IPRouteIfIndex uint32 = 2
	IPRouteMetric1 uint32 = 3
	IPRouteNextHop uint32 = 7
	IPRouteType    uint32 = 8
	IPRouteProto   uint32 = 9
	IPRouteAge     uint32 = 10
)
