package mib

import (
	"errors"
	"testing"

	"mbd/internal/oid"
)

func TestScalarGetNextSet(t *testing.T) {
	tree := &Tree{}
	val := Int(42)
	s := &Scalar{
		Get: func() Value { return val },
		Set: func(v Value) error {
			if v.Kind != KindInteger {
				return ErrBadValue
			}
			val = v
			return nil
		},
	}
	base := oid.MustParse("1.3.6.1.2.1.1.3")
	if err := tree.Mount(base, s); err != nil {
		t.Fatal(err)
	}

	inst := base.Append(0)
	got, err := tree.Get(inst)
	if err != nil || got.Int != 42 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := tree.Get(base); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("Get on object OID should be NoSuchName, got %v", err)
	}
	next, v, err := tree.GetNext(base)
	if err != nil || !next.Equal(inst) || v.Int != 42 {
		t.Fatalf("GetNext(%s) = %s, %v, %v", base, next, v, err)
	}
	if _, _, err := tree.GetNext(inst); !errors.Is(err, ErrEndOfMIB) {
		t.Fatalf("GetNext past end = %v", err)
	}
	if err := tree.Set(inst, Int(7)); err != nil {
		t.Fatal(err)
	}
	if got, _ := tree.Get(inst); got.Int != 7 {
		t.Fatalf("Set did not take: %v", got)
	}
	if err := tree.Set(inst, Str("x")); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Set bad value = %v", err)
	}
}

func TestMountOverlapRejected(t *testing.T) {
	tree := &Tree{}
	a := oid.MustParse("1.3.6.1.2.1.1")
	if err := tree.Mount(a, ConstScalar(Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := tree.Mount(a, ConstScalar(Int(2))); err == nil {
		t.Fatal("duplicate mount accepted")
	}
	if err := tree.Mount(a.Append(5), ConstScalar(Int(3))); err == nil {
		t.Fatal("nested mount accepted")
	}
	if err := tree.Mount(oid.MustParse("1.3.6.1.2.1"), ConstScalar(Int(4))); err == nil {
		t.Fatal("ancestor mount accepted")
	}
	if err := tree.Mount(nil, ConstScalar(Int(5))); err == nil {
		t.Fatal("empty mount accepted")
	}
	if !tree.Unmount(a) {
		t.Fatal("Unmount failed")
	}
	if tree.Unmount(a) {
		t.Fatal("double Unmount succeeded")
	}
}

func TestTreeGetNextAcrossMounts(t *testing.T) {
	tree := &Tree{}
	a := oid.MustParse("1.3.6.1.2.1.1.1")
	b := oid.MustParse("1.3.6.1.2.1.1.5")
	c := oid.MustParse("1.3.6.1.4.1.45.1")
	for _, m := range []struct {
		p oid.OID
		v Value
	}{{a, Str("A")}, {b, Str("B")}, {c, Str("C")}} {
		if err := tree.Mount(m.p, ConstScalar(m.v)); err != nil {
			t.Fatal(err)
		}
	}
	// Walking from the root visits all three instances in order.
	var seen []string
	n := tree.Walk(oid.MustParse("1"), func(o oid.OID, v Value) bool {
		seen = append(seen, string(v.Bytes))
		return true
	})
	if n != 3 || len(seen) != 3 || seen[0] != "A" || seen[1] != "B" || seen[2] != "C" {
		t.Fatalf("walk = %v (n=%d)", seen, n)
	}
	// GetNext from between mounts lands on the following mount.
	next, v, err := tree.GetNext(a.Append(0))
	if err != nil || !next.Equal(b.Append(0)) || string(v.Bytes) != "B" {
		t.Fatalf("GetNext across mounts = %s, %v, %v", next, v, err)
	}
}

func TestTableColumnMajorWalk(t *testing.T) {
	rows := &MemRows{}
	rows.Upsert(oid.OID{2}, map[uint32]Value{1: Int(2), 3: Str("b")})
	rows.Upsert(oid.OID{1}, map[uint32]Value{1: Int(1), 3: Str("a")})
	tbl := NewTable(rows, 3, 1) // out-of-order columns get sorted

	tree := &Tree{}
	entry := oid.MustParse("1.3.6.1.2.1.99.1")
	if err := tree.Mount(entry, tbl); err != nil {
		t.Fatal(err)
	}
	var order []string
	tree.Walk(entry, func(o oid.OID, v Value) bool {
		rel, _ := o.Index(entry)
		order = append(order, rel.String())
		return true
	})
	want := []string{"1.1", "1.2", "3.1", "3.2"}
	if len(order) != len(want) {
		t.Fatalf("walk visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}
}

func TestTableRowMutation(t *testing.T) {
	rows := &MemRows{}
	idx := oid.OID{10, 0, 0, 1}
	rows.Upsert(idx, map[uint32]Value{1: Int(5)})
	if !rows.SetCellValue(idx, 1, Int(6)) {
		t.Fatal("SetCellValue on existing row failed")
	}
	if v, ok := rows.Cell(1, idx); !ok || v.Int != 6 {
		t.Fatalf("Cell = %v, %v", v, ok)
	}
	if rows.SetCellValue(oid.OID{9}, 1, Int(0)) {
		t.Fatal("SetCellValue on missing row succeeded")
	}
	if !rows.Delete(idx) || rows.Len() != 0 {
		t.Fatal("Delete failed")
	}
	if rows.Delete(idx) {
		t.Fatal("double Delete succeeded")
	}
}

func TestTableSetCell(t *testing.T) {
	rows := &MemRows{}
	rows.Upsert(oid.OID{1}, map[uint32]Value{2: Int(0)})
	tbl := NewTable(rows, 2)
	tbl.SetCell = func(col uint32, index oid.OID, v Value) error {
		if !rows.SetCellValue(index, col, v) {
			return ErrNoSuchName
		}
		return nil
	}
	tree := &Tree{}
	entry := oid.MustParse("1.3.99.1")
	if err := tree.Mount(entry, tbl); err != nil {
		t.Fatal(err)
	}
	if err := tree.Set(entry.Append(2, 1), Int(77)); err != nil {
		t.Fatal(err)
	}
	if v, _ := tree.Get(entry.Append(2, 1)); v.Int != 77 {
		t.Fatalf("cell = %v", v)
	}
	if err := tree.Set(entry.Append(2, 9), Int(0)); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("set missing row = %v", err)
	}
}

func TestReadOnlyMount(t *testing.T) {
	tree := &Tree{}
	rows := &MemRows{}
	rows.Upsert(oid.OID{1}, map[uint32]Value{1: Int(1)})
	entry := oid.MustParse("1.3.99.1")
	if err := tree.Mount(entry, NewTable(rows, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Set(entry.Append(1, 1), Int(2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only table = %v", err)
	}
	if err := tree.Set(oid.MustParse("9.9.9"), Int(0)); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("write outside mounts = %v", err)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	rows := &MemRows{}
	for i := uint32(1); i <= 10; i++ {
		rows.Upsert(oid.OID{i}, map[uint32]Value{1: Int(int64(i))})
	}
	tree := &Tree{}
	entry := oid.MustParse("1.3.99.1")
	if err := tree.Mount(entry, NewTable(rows, 1)); err != nil {
		t.Fatal(err)
	}
	count := 0
	n := tree.Walk(entry, func(o oid.OID, v Value) bool {
		count++
		return count < 3
	})
	if n != 3 || count != 3 {
		t.Fatalf("early stop visited %d (returned %d), want 3", count, n)
	}
}

func TestValueHelpers(t *testing.T) {
	if s := Int(-5).String(); s != "-5" {
		t.Errorf("Int string = %q", s)
	}
	if s := IP(10, 0, 0, 1).String(); s != "10.0.0.1" {
		t.Errorf("IP string = %q", s)
	}
	if s := Null().String(); s != "NULL" {
		t.Errorf("Null string = %q", s)
	}
	if !Counter32(1 << 33).Equal(Counter32(1 << 33)) {
		t.Error("Counter32 equal failed")
	}
	if Counter32(1<<33).Uint != (1<<33)&0xFFFFFFFF {
		t.Error("Counter32 did not wrap")
	}
	if u, ok := Gauge32(7).AsUint(); !ok || u != 7 {
		t.Error("AsUint(Gauge32) failed")
	}
	if _, ok := Int(-1).AsUint(); ok {
		t.Error("AsUint(-1) should fail")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt(string) should fail")
	}
	if v, ok := TimeTicks(100).AsInt(); !ok || v != 100 {
		t.Error("AsInt(TimeTicks) failed")
	}
	if _, ok := Counter64(1 << 63).AsInt(); ok {
		t.Error("AsInt(2^63) should overflow")
	}
	if Int(1).Equal(Gauge32(1)) {
		t.Error("cross-kind Equal should be false")
	}
	if !OIDValue(oid.MustParse("1.2")).Equal(OIDValue(oid.MustParse("1.2"))) {
		t.Error("OID Equal failed")
	}
}
