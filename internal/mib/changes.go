package mib

import (
	"sync"
	"sync/atomic"

	"mbd/internal/oid"
)

// ChangeKind classifies one MIB mutation.
type ChangeKind uint8

const (
	// ChangeCell reports a single cell write (Col and Index are set).
	ChangeCell ChangeKind = iota + 1
	// ChangeRow reports a row inserted or replaced wholesale (Index set).
	ChangeRow
	// ChangeDrop reports a row deleted (Index set).
	ChangeDrop
	// ChangeReset reports that the whole subtree under Table may have
	// changed (bulk mutation, membership reshuffle); consumers should
	// re-read and diff the table.
	ChangeReset
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeCell:
		return "cell"
	case ChangeRow:
		return "row"
	case ChangeDrop:
		return "drop"
	case ChangeReset:
		return "reset"
	default:
		return "unknown"
	}
}

// Change is one captured MIB mutation, addressed by the table (or
// subtree) prefix it happened under and the affected row index.
type Change struct {
	Kind  ChangeKind
	Table oid.OID // table entry / subtree prefix
	Col   uint32  // ChangeCell only; 0 otherwise
	Index oid.OID // row index; nil for ChangeReset
}

// ChangeHub fans MIB mutations out to subscribers. Each subscriber owns
// a bounded drop-oldest queue, so a slow consumer loses old deltas (and
// can detect it via Lost) instead of blocking writers.
//
// The no-subscriber fast path is a single atomic load and branch with
// zero allocations, so instrumented mutation paths stay within the
// bench gate's budget when nothing is watching.
type ChangeHub struct {
	mu   sync.Mutex // serializes Subscribe/unsubscribe
	subs atomic.Pointer[[]*ChangeSub]
}

// Active reports whether any subscriber is attached. Publishers may use
// it to skip building a Change at all.
func (h *ChangeHub) Active() bool {
	p := h.subs.Load()
	return p != nil && len(*p) > 0
}

// Publish delivers c to every subscriber. When no subscriber is
// attached it is a single atomic load — no allocation, no locks. The
// Index (and Table) slices are cloned before being enqueued, so callers
// may pass reused buffers.
func (h *ChangeHub) Publish(c Change) {
	p := h.subs.Load()
	if p == nil || len(*p) == 0 {
		return
	}
	c.Table = c.Table.Clone()
	c.Index = c.Index.Clone()
	for _, s := range *p {
		s.offer(c)
	}
}

// Subscribe attaches a new subscriber with the given queue depth
// (minimum 1; depth <= 0 selects a default of 1024).
func (h *ChangeHub) Subscribe(depth int) *ChangeSub {
	if depth <= 0 {
		depth = 1024
	}
	s := &ChangeSub{hub: h, ch: make(chan Change, depth)}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.subs.Load()
	var next []*ChangeSub
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	h.subs.Store(&next)
	return s
}

// ChangeSub is one subscriber's bounded change queue.
type ChangeSub struct {
	hub    *ChangeHub
	ch     chan Change
	lost   atomic.Uint64
	closed atomic.Bool
}

// offer enqueues c, dropping the oldest queued change (and counting it)
// when the queue is full.
func (s *ChangeSub) offer(c Change) {
	if s.closed.Load() {
		return
	}
	for {
		select {
		case s.ch <- c:
			return
		default:
		}
		select {
		case <-s.ch:
			s.lost.Add(1)
		default:
		}
	}
}

// C returns the receive side of the subscriber's queue.
func (s *ChangeSub) C() <-chan Change { return s.ch }

// Next pops one queued change without blocking.
func (s *ChangeSub) Next() (Change, bool) {
	select {
	case c := <-s.ch:
		return c, true
	default:
		return Change{}, false
	}
}

// Lost returns the total number of changes dropped because this
// subscriber's queue overflowed. A consumer observing Lost advance must
// assume it missed deltas and resynchronize from the tree.
func (s *ChangeSub) Lost() uint64 { return s.lost.Load() }

// Close detaches the subscriber from its hub. Pending queued changes
// remain readable; no further changes are delivered.
func (s *ChangeSub) Close() {
	if s.closed.Swap(true) {
		return
	}
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.subs.Load()
	if cur == nil {
		return
	}
	next := make([]*ChangeSub, 0, len(*cur))
	for _, x := range *cur {
		if x != s {
			next = append(next, x)
		}
	}
	h.subs.Store(&next)
}

// changeTarget is a MemRows' registered publication target.
type changeTarget struct {
	hub   *ChangeHub
	table oid.OID
}

// Watch registers the hub and table-entry prefix under which this
// source's mutations are published. Pass a nil hub to stop publishing.
// Safe to call concurrently with mutations.
func (m *MemRows) Watch(hub *ChangeHub, table oid.OID) {
	if hub == nil {
		m.watch.Store(nil)
		return
	}
	m.watch.Store(&changeTarget{hub: hub, table: table.Clone()})
}

// publish reports one row-level mutation if a watch target is set.
func (m *MemRows) publish(kind ChangeKind, col uint32, index oid.OID) {
	t := m.watch.Load()
	if t == nil || !t.hub.Active() {
		return
	}
	t.hub.Publish(Change{Kind: kind, Table: t.table, Col: col, Index: index})
}
