package mib

import (
	"sort"
	"sync"
	"sync/atomic"

	"mbd/internal/oid"
)

// RowSource supplies the dynamic contents of a conceptual table. The
// MIB layer imposes SMI addressing (column-major walk order) on top.
//
// Implementations must be safe for concurrent use.
type RowSource interface {
	// Rows returns the index OIDs of all conceptual rows in ascending
	// lexicographic order. Callers must not mutate the result; sources
	// are encouraged to return a shared immutable snapshot rather than
	// a fresh copy, since Rows sits on the GetNext hot path.
	Rows() []oid.OID
	// Cell returns the value at (column, index) if the row exists and
	// the column is populated for it.
	Cell(col uint32, index oid.OID) (Value, bool)
}

// Table is a Handler serving an SMI conceptual table. Mount it at the
// table's *entry* OID (for example ifEntry, 1.3.6.1.2.1.2.2.1);
// instances are then addressed as column.index, and GetNext follows
// SNMP's column-major order: every row of column c1, then every row of
// column c2, and so on.
type Table struct {
	// Columns lists the populated column numbers in ascending order.
	Columns []uint32
	// Source provides row data.
	Source RowSource
	// SetCell, when non-nil, accepts writes to cells.
	SetCell func(col uint32, index oid.OID, v Value) error
}

// NewTable returns a Table over the given ascending column numbers.
func NewTable(src RowSource, cols ...uint32) *Table {
	sorted := make([]uint32, len(cols))
	copy(sorted, cols)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Table{Columns: sorted, Source: src}
}

// GetRel implements Handler.
func (t *Table) GetRel(rel oid.OID) (Value, bool) {
	if len(rel) < 2 {
		return Value{}, false
	}
	return t.Source.Cell(rel[0], rel[1:])
}

// start locates the column-major position demanded by rel: the index
// of the first candidate column in t.Columns and the row position
// within it (rows[pos] is the first candidate row of that column).
func (t *Table) start(rel oid.OID, rows []oid.OID) (colIdx, pos int) {
	for ci, col := range t.Columns {
		switch {
		case len(rel) == 0 || rel[0] < col:
			return ci, 0
		case rel[0] == col:
			startIdx := rel[1:]
			if len(startIdx) == 0 {
				return ci, 0
			}
			// Rows are sorted; binary-search the first index > startIdx.
			return ci, sort.Search(len(rows), func(i int) bool {
				return rows[i].Compare(startIdx) > 0
			})
		}
	}
	return len(t.Columns), 0
}

// NextRel implements Handler.
func (t *Table) NextRel(rel oid.OID) (oid.OID, Value, bool) {
	next, v, ok := t.AppendNextRel(nil, rel)
	return next, v, ok
}

// AppendNextRel implements AppendNexter.
func (t *Table) AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, Value, bool) {
	rows := t.Source.Rows()
	if len(rows) == 0 || len(t.Columns) == 0 {
		return nil, Value{}, false
	}
	ci, pos := t.start(rel, rows)
	for ; ci < len(t.Columns); ci, pos = ci+1, 0 {
		col := t.Columns[ci]
		for _, idx := range rows[pos:] {
			if v, ok := t.Source.Cell(col, idx); ok {
				return append(append(dst, col), idx...), v, true
			}
		}
	}
	return nil, Value{}, false
}

// PosCeller is an optional RowSource extension for bulk enumeration:
// the cell is addressed by its row's position in the snapshot most
// recently returned by Rows, letting a column-major sweep skip the
// per-cell index search. Implementations must verify that pos still
// names index (membership may have changed concurrently) and fall back
// to a search when it does not.
type PosCeller interface {
	CellAt(col uint32, pos int, index oid.OID) (Value, bool)
}

// NextRelN implements BulkHandler: one Rows snapshot and one position
// search serve the entire enumeration, instead of re-fetching and
// re-searching per instance as a GetNext loop does.
func (t *Table) NextRelN(rel oid.OID, max int, visit func(rel oid.OID, v Value) bool) int {
	rows := t.Source.Rows()
	if len(rows) == 0 || len(t.Columns) == 0 {
		return 0
	}
	pc, byPos := t.Source.(PosCeller)
	var buf oid.OID // reused col.index scratch
	n := 0
	ci, pos := t.start(rel, rows)
	for ; ci < len(t.Columns); ci, pos = ci+1, 0 {
		col := t.Columns[ci]
		for ri, idx := range rows[pos:] {
			var v Value
			var ok bool
			if byPos {
				v, ok = pc.CellAt(col, pos+ri, idx)
			} else {
				v, ok = t.Source.Cell(col, idx)
			}
			if !ok {
				continue
			}
			buf = append(append(buf[:0], col), idx...)
			n++
			if !visit(buf, v) {
				return n
			}
			if max > 0 && n >= max {
				return n
			}
		}
	}
	return n
}

// SetRel implements Setter.
func (t *Table) SetRel(rel oid.OID, v Value) error {
	if len(rel) < 2 {
		return ErrNoSuchName
	}
	if t.SetCell == nil {
		return ErrReadOnly
	}
	return t.SetCell(rel[0], rel[1:], v)
}

// memRow is one MemRows row: its index and cell values.
type memRow struct {
	index oid.OID
	cells map[uint32]Value
}

// MemRows is an in-memory RowSource backed by a sorted row list. The
// zero value is an empty source ready for use.
//
// Row membership is copy-on-write: Rows returns a shared immutable
// snapshot (no per-call copy), and cell lookups binary-search the
// sorted row list instead of hashing a rendered string key — both
// matter on the GetNext hot path, where a walk over an N-row table
// would otherwise copy the index N times.
type MemRows struct {
	mu    sync.RWMutex
	rows  []memRow  // sorted by index; slice replaced on membership change
	index []oid.OID // immutable snapshot, same order as rows

	watch atomic.Pointer[changeTarget] // optional mutation publication
}

// search returns the position of index in rows, and whether it is
// present. Callers hold m.mu.
func search(rows []memRow, index oid.OID) (int, bool) {
	pos := sort.Search(len(rows), func(i int) bool {
		return rows[i].index.Compare(index) >= 0
	})
	return pos, pos < len(rows) && rows[pos].index.Equal(index)
}

// Upsert creates or replaces a row's cell values.
func (m *MemRows) Upsert(index oid.OID, cells map[uint32]Value) {
	row := make(map[uint32]Value, len(cells))
	for c, v := range cells {
		row[c] = v
	}
	m.mu.Lock()
	pos, found := search(m.rows, index)
	if found {
		m.rows[pos].cells = row
	} else {
		idx := index.Clone()
		rows := make([]memRow, 0, len(m.rows)+1)
		rows = append(rows, m.rows[:pos]...)
		rows = append(rows, memRow{index: idx, cells: row})
		rows = append(rows, m.rows[pos:]...)
		snap := make([]oid.OID, 0, len(m.index)+1)
		snap = append(snap, m.index[:pos]...)
		snap = append(snap, idx)
		snap = append(snap, m.index[pos:]...)
		m.rows, m.index = rows, snap
	}
	m.mu.Unlock()
	m.publish(ChangeRow, 0, index)
}

// SetCellValue writes one cell of an existing row, returning false when
// the row does not exist.
func (m *MemRows) SetCellValue(index oid.OID, col uint32, v Value) bool {
	m.mu.Lock()
	pos, found := search(m.rows, index)
	if found {
		m.rows[pos].cells[col] = v
	}
	m.mu.Unlock()
	if found {
		m.publish(ChangeCell, col, index)
	}
	return found
}

// Delete removes a row, reporting whether it existed.
func (m *MemRows) Delete(index oid.OID) bool {
	m.mu.Lock()
	pos, found := search(m.rows, index)
	if found {
		rows := make([]memRow, 0, len(m.rows)-1)
		rows = append(rows, m.rows[:pos]...)
		rows = append(rows, m.rows[pos+1:]...)
		snap := make([]oid.OID, 0, len(m.index)-1)
		snap = append(snap, m.index[:pos]...)
		snap = append(snap, m.index[pos+1:]...)
		m.rows, m.index = rows, snap
	}
	m.mu.Unlock()
	if found {
		m.publish(ChangeDrop, 0, index)
	}
	return found
}

// Len returns the number of rows.
func (m *MemRows) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows)
}

// Rows implements RowSource. The returned slice is an immutable shared
// snapshot; callers must not mutate it.
func (m *MemRows) Rows() []oid.OID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.index
}

// Cell implements RowSource.
func (m *MemRows) Cell(col uint32, index oid.OID) (Value, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	pos, found := search(m.rows, index)
	if !found {
		return Value{}, false
	}
	v, ok := m.rows[pos].cells[col]
	return v, ok
}

// CellAt implements PosCeller: when pos still names index (the common
// case — membership unchanged since the Rows snapshot) the row is
// reached without any search.
func (m *MemRows) CellAt(col uint32, pos int, index oid.OID) (Value, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if pos >= len(m.rows) || !m.rows[pos].index.Equal(index) {
		var found bool
		if pos, found = search(m.rows, index); !found {
			return Value{}, false
		}
	}
	v, ok := m.rows[pos].cells[col]
	return v, ok
}
