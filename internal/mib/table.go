package mib

import (
	"sort"
	"sync"

	"mbd/internal/oid"
)

// RowSource supplies the dynamic contents of a conceptual table. The
// MIB layer imposes SMI addressing (column-major walk order) on top.
//
// Implementations must be safe for concurrent use.
type RowSource interface {
	// Rows returns the index OIDs of all conceptual rows in ascending
	// lexicographic order. Callers must not mutate the result.
	Rows() []oid.OID
	// Cell returns the value at (column, index) if the row exists and
	// the column is populated for it.
	Cell(col uint32, index oid.OID) (Value, bool)
}

// Table is a Handler serving an SMI conceptual table. Mount it at the
// table's *entry* OID (for example ifEntry, 1.3.6.1.2.1.2.2.1);
// instances are then addressed as column.index, and GetNext follows
// SNMP's column-major order: every row of column c1, then every row of
// column c2, and so on.
type Table struct {
	// Columns lists the populated column numbers in ascending order.
	Columns []uint32
	// Source provides row data.
	Source RowSource
	// SetCell, when non-nil, accepts writes to cells.
	SetCell func(col uint32, index oid.OID, v Value) error
}

// NewTable returns a Table over the given ascending column numbers.
func NewTable(src RowSource, cols ...uint32) *Table {
	sorted := make([]uint32, len(cols))
	copy(sorted, cols)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Table{Columns: sorted, Source: src}
}

// GetRel implements Handler.
func (t *Table) GetRel(rel oid.OID) (Value, bool) {
	if len(rel) < 2 {
		return Value{}, false
	}
	return t.Source.Cell(rel[0], rel[1:])
}

// NextRel implements Handler.
func (t *Table) NextRel(rel oid.OID) (oid.OID, Value, bool) {
	rows := t.Source.Rows()
	if len(rows) == 0 || len(t.Columns) == 0 {
		return nil, Value{}, false
	}
	for _, col := range t.Columns {
		colOID := oid.OID{col}
		// Determine the position within this column that rel demands.
		var startIdx oid.OID // first index must be strictly greater than this; nil = from start
		switch {
		case rel.Compare(colOID) < 0:
			startIdx = nil
		case rel[0] == col:
			startIdx = rel[1:]
		default:
			continue // rel sorts after this entire column
		}
		// Rows are sorted; binary-search the first index > startIdx.
		pos := 0
		if startIdx != nil {
			pos = sort.Search(len(rows), func(i int) bool {
				return rows[i].Compare(startIdx) > 0
			})
		}
		for _, idx := range rows[pos:] {
			if v, ok := t.Source.Cell(col, idx); ok {
				return colOID.Append(idx...), v, true
			}
		}
	}
	return nil, Value{}, false
}

// SetRel implements Setter.
func (t *Table) SetRel(rel oid.OID, v Value) error {
	if len(rel) < 2 {
		return ErrNoSuchName
	}
	if t.SetCell == nil {
		return ErrReadOnly
	}
	return t.SetCell(rel[0], rel[1:], v)
}

// MemRows is an in-memory RowSource backed by a sorted row list. The
// zero value is an empty source ready for use.
type MemRows struct {
	mu    sync.RWMutex
	index []oid.OID                   // sorted
	cells map[string]map[uint32]Value // key: index.String()
}

// Upsert creates or replaces a row's cell values.
func (m *MemRows) Upsert(index oid.OID, cells map[uint32]Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cells == nil {
		m.cells = make(map[string]map[uint32]Value)
	}
	key := index.String()
	if _, exists := m.cells[key]; !exists {
		pos := sort.Search(len(m.index), func(i int) bool {
			return m.index[i].Compare(index) >= 0
		})
		m.index = append(m.index, nil)
		copy(m.index[pos+1:], m.index[pos:])
		m.index[pos] = index.Clone()
	}
	row := make(map[uint32]Value, len(cells))
	for c, v := range cells {
		row[c] = v
	}
	m.cells[key] = row
}

// SetCellValue writes one cell of an existing row, returning false when
// the row does not exist.
func (m *MemRows) SetCellValue(index oid.OID, col uint32, v Value) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	row, ok := m.cells[index.String()]
	if !ok {
		return false
	}
	row[col] = v
	return true
}

// Delete removes a row, reporting whether it existed.
func (m *MemRows) Delete(index oid.OID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := index.String()
	if _, ok := m.cells[key]; !ok {
		return false
	}
	delete(m.cells, key)
	for i, idx := range m.index {
		if idx.Equal(index) {
			m.index = append(m.index[:i], m.index[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the number of rows.
func (m *MemRows) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.index)
}

// Rows implements RowSource.
func (m *MemRows) Rows() []oid.OID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]oid.OID, len(m.index))
	copy(out, m.index)
	return out
}

// Cell implements RowSource.
func (m *MemRows) Cell(col uint32, index oid.OID) (Value, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	row, ok := m.cells[index.String()]
	if !ok {
		return Value{}, false
	}
	v, ok := row[col]
	return v, ok
}
