// Package mib implements a management information base: typed SMI
// values, a mountable OID tree with SNMP Get/GetNext/Set semantics,
// generic table support, and a simulated managed device exposing the
// MIB-II subset plus a Synoptics-style private MIB that the paper's
// InterOp'91 health-monitoring demo reads.
//
// The same Tree is visible on two access paths, mirroring the paper's
// architecture: delegated agents inside an MbD server read it through
// direct host-function calls (cheap, local), while a centralized
// manager reads it through the SNMP agent (wire-encoded, remote).
package mib

import (
	"fmt"

	"mbd/internal/oid"
)

// Kind identifies the SMI type of a Value.
type Kind uint8

// SMI value kinds. KindNull is the zero value, so an uninitialized
// Value is a well-formed SNMP NULL.
const (
	KindNull Kind = iota
	KindInteger
	KindOctetString
	KindOID
	KindIPAddress
	KindCounter32
	KindGauge32
	KindTimeTicks
	KindCounter64
)

var kindNames = map[Kind]string{
	KindNull:        "Null",
	KindInteger:     "Integer",
	KindOctetString: "OctetString",
	KindOID:         "ObjectIdentifier",
	KindIPAddress:   "IpAddress",
	KindCounter32:   "Counter32",
	KindGauge32:     "Gauge32",
	KindTimeTicks:   "TimeTicks",
	KindCounter64:   "Counter64",
}

// String returns the SMI name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a tagged union holding one SMI value. Exactly the field
// selected by Kind is meaningful.
type Value struct {
	Kind  Kind
	Int   int64   // KindInteger
	Uint  uint64  // KindCounter32, KindGauge32, KindTimeTicks, KindCounter64
	Bytes []byte  // KindOctetString, KindIPAddress (4 bytes)
	OID   oid.OID // KindOID
}

// Null returns the SNMP NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// Str returns an OCTET STRING value holding s.
func Str(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

// Octets returns an OCTET STRING value holding b (not copied).
func Octets(b []byte) Value { return Value{Kind: KindOctetString, Bytes: b} }

// Counter32 returns a Counter32 value (wraps modulo 2^32 by masking).
func Counter32(v uint64) Value { return Value{Kind: KindCounter32, Uint: v & 0xFFFFFFFF} }

// Gauge32 returns a Gauge32 value.
func Gauge32(v uint64) Value { return Value{Kind: KindGauge32, Uint: v & 0xFFFFFFFF} }

// TimeTicks returns a TimeTicks value (hundredths of a second).
func TimeTicks(v uint64) Value { return Value{Kind: KindTimeTicks, Uint: v & 0xFFFFFFFF} }

// Counter64 returns a Counter64 value.
func Counter64(v uint64) Value { return Value{Kind: KindCounter64, Uint: v} }

// IP returns an IpAddress value.
func IP(a, b, c, d byte) Value {
	return Value{Kind: KindIPAddress, Bytes: []byte{a, b, c, d}}
}

// OIDValue returns an OBJECT IDENTIFIER value.
func OIDValue(o oid.OID) Value { return Value{Kind: KindOID, OID: o} }

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInteger:
		return fmt.Sprintf("%d", v.Int)
	case KindOctetString:
		return fmt.Sprintf("%q", v.Bytes)
	case KindOID:
		return v.OID.String()
	case KindIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("%d.%d.%d.%d", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return fmt.Sprintf("IpAddress(% x)", v.Bytes)
	case KindCounter32, KindGauge32, KindTimeTicks, KindCounter64:
		return fmt.Sprintf("%d(%s)", v.Uint, v.Kind)
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}

// Equal reports whether two values have the same kind and contents.
func (v Value) Equal(u Value) bool {
	if v.Kind != u.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInteger:
		return v.Int == u.Int
	case KindOctetString, KindIPAddress:
		return string(v.Bytes) == string(u.Bytes)
	case KindOID:
		return v.OID.Equal(u.OID)
	default:
		return v.Uint == u.Uint
	}
}

// AsUint returns the numeric magnitude of an integer-like value and
// true, or 0 and false for non-numeric kinds. Negative integers report
// false.
func (v Value) AsUint() (uint64, bool) {
	switch v.Kind {
	case KindInteger:
		if v.Int < 0 {
			return 0, false
		}
		return uint64(v.Int), true
	case KindCounter32, KindGauge32, KindTimeTicks, KindCounter64:
		return v.Uint, true
	default:
		return 0, false
	}
}

// AsInt returns the value as a signed integer and true for any numeric
// kind that fits, or 0 and false otherwise.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInteger:
		return v.Int, true
	case KindCounter32, KindGauge32, KindTimeTicks:
		return int64(v.Uint), true
	case KindCounter64:
		if v.Uint > 1<<63-1 {
			return 0, false
		}
		return int64(v.Uint), true
	default:
		return 0, false
	}
}
