//go:build !race

package mib

const raceEnabled = false
