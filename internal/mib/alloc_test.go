package mib

import (
	"testing"

	"mbd/internal/oid"
)

// allocDevice builds a device with a populated TCP connection table.
func allocDevice(t *testing.T, rows int) *Device {
	t.Helper()
	dev, err := NewDevice(DeviceConfig{Name: "alloc", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		dev.OpenConn(ConnID{
			LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80,
			RemAddr: [4]byte{1, byte(i / 256), byte(i % 256), 1}, RemPort: uint16(1024 + i),
		})
	}
	return dev
}

// TestGetNextIntoAllocs locks in the allocation-free single-step
// successor path with a warm caller buffer.
func TestGetNextIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tree := allocDevice(t, 500).Tree()
	start := OIDTCPConnEntry.Append(TCPConnState)
	var buf oid.OID
	for i := 0; i < 4; i++ {
		next, _, err := tree.GetNextInto(buf[:0], start)
		if err != nil {
			t.Fatal(err)
		}
		buf = next
	}
	n := testing.AllocsPerRun(100, func() {
		next, _, err := tree.GetNextInto(buf[:0], start)
		if err != nil {
			t.Fatal(err)
		}
		buf = next
	})
	if n != 0 {
		t.Errorf("GetNextInto allocates %v times per call, want 0", n)
	}
}

// TestWalkFromAllocs bounds the whole-subtree walk to a small fixed
// allocation count independent of table size: the per-instance path
// (OID assembly, cell fetch, visit) must be allocation-free, leaving
// only the per-call scratch (cursor buffer and closures).
func TestWalkFromAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tree := allocDevice(t, 500).Tree()
	walk := func() {
		if n := tree.Walk(OIDTCPConnEntry, func(o oid.OID, v Value) bool { return true }); n < 500 {
			t.Fatalf("walked %d instances", n)
		}
	}
	walk() // warm up
	const maxAllocs = 8
	if n := testing.AllocsPerRun(20, walk); n > maxAllocs {
		t.Errorf("WalkFrom allocates %v times per 500-row walk, want <= %d", n, maxAllocs)
	}
}
