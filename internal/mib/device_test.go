package mib

import (
	"testing"
	"time"

	"mbd/internal/oid"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DeviceConfig{Name: "dev1", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceSystemGroup(t *testing.T) {
	d := newTestDevice(t)
	v, err := d.Tree().Get(OIDSysName.Append(0))
	if err != nil || string(v.Bytes) != "dev1" {
		t.Fatalf("sysName = %v, %v", v, err)
	}
	d.Advance(10 * time.Second)
	v, err = d.Tree().Get(OIDSysUpTime.Append(0))
	if err != nil || v.Kind != KindTimeTicks || v.Uint != 1000 {
		t.Fatalf("sysUpTime after 10s = %v, %v (want 1000 ticks)", v, err)
	}
}

func TestDeviceCountersIntegrateLoad(t *testing.T) {
	d := newTestDevice(t)
	d.SetLoad(LoadProfile{Utilization: 0.5, BroadcastFraction: 0.1, ErrorRate: 0.01, CollisionRate: 0.05})
	d.Advance(10 * time.Second)

	rx, err := d.Tree().Get(OIDEnetRxOk.Append(0))
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 utilization × 10 Mb/s × 10 s = 50 Mbit ± noise.
	if rx.Uint < 45_000_000 || rx.Uint > 55_000_000 {
		t.Fatalf("rxOkBits = %d, want ≈50M", rx.Uint)
	}
	pkts, _ := d.Tree().Get(OIDEnetRxPkts.Append(0))
	bcast, _ := d.Tree().Get(OIDEnetRxBcast.Append(0))
	if pkts.Uint == 0 || bcast.Uint == 0 {
		t.Fatal("packet counters did not advance")
	}
	ratio := float64(bcast.Uint) / float64(pkts.Uint)
	if ratio < 0.08 || ratio > 0.12 {
		t.Fatalf("broadcast ratio = %f, want ≈0.1", ratio)
	}
}

func TestDeviceDeterminism(t *testing.T) {
	a, _ := NewDevice(DeviceConfig{Name: "d", Seed: 7})
	b, _ := NewDevice(DeviceConfig{Name: "d", Seed: 7})
	for i := 0; i < 100; i++ {
		a.Advance(time.Second)
		b.Advance(time.Second)
	}
	va, _ := a.Tree().Get(OIDEnetRxOk.Append(0))
	vb, _ := b.Tree().Get(OIDEnetRxOk.Append(0))
	if va.Uint != vb.Uint {
		t.Fatalf("same seed diverged: %d vs %d", va.Uint, vb.Uint)
	}
}

func TestDeviceInterfaceTable(t *testing.T) {
	d := newTestDevice(t)
	d.Advance(5 * time.Second)

	// ifOperStatus.1 is up.
	v, err := d.Tree().Get(OIDIfEntry.Append(IfOperStatus, 1))
	if err != nil || v.Int != IfStatusUp {
		t.Fatalf("ifOperStatus.1 = %v, %v", v, err)
	}
	if err := d.SetInterfaceStatus(1, IfStatusDown); err != nil {
		t.Fatal(err)
	}
	v, _ = d.Tree().Get(OIDIfEntry.Append(IfOperStatus, 1))
	if v.Int != IfStatusDown {
		t.Fatalf("ifOperStatus.1 after fault = %v", v)
	}
	if err := d.SetInterfaceStatus(99, IfStatusDown); err == nil {
		t.Fatal("bogus ifIndex accepted")
	}

	// Walking ifEntry yields column-major order over both interfaces.
	var cells []string
	d.Tree().Walk(OIDIfEntry, func(o oid.OID, v Value) bool {
		rel, _ := o.Index(OIDIfEntry)
		cells = append(cells, rel.String())
		return true
	})
	if len(cells) != len(ifColumns)*2 {
		t.Fatalf("ifEntry walk visited %d cells, want %d", len(cells), len(ifColumns)*2)
	}
	if cells[0] != "1.1" || cells[1] != "1.2" || cells[2] != "2.1" {
		t.Fatalf("walk starts %v", cells[:3])
	}
	// A downed interface stops accumulating octets.
	before, _ := d.Tree().Get(OIDIfEntry.Append(IfInOctets, 1))
	d.Advance(5 * time.Second)
	after, _ := d.Tree().Get(OIDIfEntry.Append(IfInOctets, 1))
	if before.Uint != after.Uint {
		t.Fatal("downed interface kept counting")
	}
}

func TestDeviceTCPConnTable(t *testing.T) {
	d := newTestDevice(t)
	c := ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{192, 168, 1, 9}, RemPort: 40001}
	d.OpenConn(c)
	if d.ConnCount() != 1 {
		t.Fatal("OpenConn did not insert")
	}
	idx := oid.OID{10, 0, 0, 1, 23, 192, 168, 1, 9, 40001}
	v, err := d.Tree().Get(OIDTCPConnEntry.Append(TCPConnState).Append(idx...))
	if err != nil || v.Int != TCPStateEstablished {
		t.Fatalf("tcpConnState = %v, %v", v, err)
	}
	v, err = d.Tree().Get(OIDTCPConnEntry.Append(TCPConnRemPort).Append(idx...))
	if err != nil || v.Int != 40001 {
		t.Fatalf("tcpConnRemPort = %v, %v", v, err)
	}
	if !d.CloseConn(c) || d.ConnCount() != 0 {
		t.Fatal("CloseConn failed")
	}
}

func TestDeviceRouteTable(t *testing.T) {
	d := newTestDevice(t)
	d.AddRoute([4]byte{192, 168, 5, 0}, 1, 3, [4]byte{10, 0, 0, 254})
	d.AddRoute([4]byte{192, 168, 6, 0}, 2, 1, [4]byte{10, 0, 0, 253})
	if d.RouteCount() != 2 {
		t.Fatal("routes not inserted")
	}
	v, err := d.Tree().Get(OIDIPRouteEntry.Append(IPRouteMetric1, 192, 168, 5, 0))
	if err != nil || v.Int != 3 {
		t.Fatalf("metric = %v, %v", v, err)
	}
	if !d.DelRoute([4]byte{192, 168, 5, 0}) || d.RouteCount() != 1 {
		t.Fatal("DelRoute failed")
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{}); err == nil {
		t.Fatal("unnamed device accepted")
	}
	d, err := NewDevice(DeviceConfig{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Load().Utilization <= 0 {
		t.Fatal("default load missing")
	}
	if d.Now() != 0 {
		t.Fatal("fresh device has nonzero uptime")
	}
	d.Advance(-time.Second) // must be a no-op
	if d.Now() != 0 {
		t.Fatal("negative Advance changed time")
	}
}

func TestDeviceFullWalkTerminates(t *testing.T) {
	d := newTestDevice(t)
	d.OpenConn(ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80, RemAddr: [4]byte{1, 2, 3, 4}, RemPort: 5})
	d.AddRoute([4]byte{0, 0, 0, 0}, 1, 1, [4]byte{10, 0, 0, 254})
	seen := map[string]bool{}
	n := d.Tree().Walk(oid.MustParse("1"), func(o oid.OID, v Value) bool {
		if seen[o.String()] {
			t.Fatalf("walk revisited %s", o)
		}
		seen[o.String()] = true
		return true
	})
	// 7 system scalars + ifNumber + ifTable + tcpConn(5 cols) +
	// route(7 cols) + 5 private counters.
	wantMin := 7 + 1 + len(ifColumns)*2 + 5 + 7 + 5
	if n < wantMin {
		t.Fatalf("full walk visited %d instances, want ≥ %d", n, wantMin)
	}
}
