package snmp

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

func testTreeAndAgent(t *testing.T) (*mib.Device, *Agent) {
	t.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "agent-under-test", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dev, NewAgent(dev.Tree(), "public")
}

func TestAgentGet(t *testing.T) {
	_, agent := testTreeAndAgent(t)
	c := NewClient(AgentTripper(agent), "public")
	vbs, err := c.Get(context.Background(), mib.OIDSysName.Append(0), mib.OIDSysUpTime.Append(0))
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "agent-under-test" {
		t.Fatalf("sysName = %v", vbs[0].Value)
	}
	if vbs[1].Value.Kind != mib.KindTimeTicks {
		t.Fatalf("sysUpTime kind = %v", vbs[1].Value.Kind)
	}
}

func TestAgentGetNoSuchName(t *testing.T) {
	_, agent := testTreeAndAgent(t)
	c := NewClient(AgentTripper(agent), "public")
	_, err := c.Get(context.Background(), oid.MustParse("1.3.6.1.2.1.1.99.0"))
	var re *RequestError
	if !errors.As(err, &re) || re.Status != NoSuchName || re.Index != 1 {
		t.Fatalf("err = %v, want NoSuchName at 1", err)
	}
}

func TestAgentCommunityAuth(t *testing.T) {
	_, agent := testTreeAndAgent(t)
	c := NewClient(AgentTripper(agent), "wrong", WithRetries(0), WithTimeout(50*time.Millisecond))
	if _, err := c.Get(context.Background(), mib.OIDSysName.Append(0)); err == nil {
		t.Fatal("wrong community accepted")
	}
	if agent.Stats().BadCommunity == 0 {
		t.Fatal("BadCommunity not counted")
	}
}

func TestAgentDropsGarbage(t *testing.T) {
	_, agent := testTreeAndAgent(t)
	if resp := agent.HandlePacket([]byte{0xFF, 0x01, 0x02}); resp != nil {
		t.Fatal("garbage produced a response")
	}
	if agent.Stats().BadVersion == 0 {
		t.Fatal("bad packet not counted")
	}
}

func TestAgentWalkMatchesTreeWalk(t *testing.T) {
	dev, agent := testTreeAndAgent(t)
	dev.Advance(3 * time.Second)
	c := NewClient(AgentTripper(agent), "public")

	var viaSNMP []string
	n, err := c.Walk(context.Background(), oid.MustParse("1.3.6.1.2.1"), func(vb VarBind) bool {
		viaSNMP = append(viaSNMP, vb.Name.String())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var viaTree []string
	dev.Tree().Walk(oid.MustParse("1.3.6.1.2.1"), func(o oid.OID, v mib.Value) bool {
		viaTree = append(viaTree, o.String())
		return true
	})
	if n != len(viaTree) {
		t.Fatalf("SNMP walk saw %d, tree walk saw %d", n, len(viaTree))
	}
	for i := range viaTree {
		if viaSNMP[i] != viaTree[i] {
			t.Fatalf("walk diverged at %d: %s vs %s", i, viaSNMP[i], viaTree[i])
		}
	}
}

func TestAgentSetPaths(t *testing.T) {
	tree := &mib.Tree{}
	val := mib.Int(1)
	if err := tree.Mount(oid.MustParse("1.3.1"), &mib.Scalar{
		Get: func() mib.Value { return val },
		Set: func(v mib.Value) error {
			if v.Kind != mib.KindInteger {
				return mib.ErrBadValue
			}
			val = v
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Mount(oid.MustParse("1.3.2"), mib.ConstScalar(mib.Int(0))); err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(tree, "private")
	c := NewClient(AgentTripper(agent), "private")
	ctx := context.Background()

	if _, err := c.Set(ctx, VarBind{Name: oid.MustParse("1.3.1.0"), Value: mib.Int(9)}); err != nil {
		t.Fatal(err)
	}
	if val.Int != 9 {
		t.Fatal("set did not apply")
	}
	var re *RequestError
	_, err := c.Set(ctx, VarBind{Name: oid.MustParse("1.3.1.0"), Value: mib.Str("no")})
	if !errors.As(err, &re) || re.Status != BadValue {
		t.Fatalf("bad value: %v", err)
	}
	_, err = c.Set(ctx, VarBind{Name: oid.MustParse("1.3.2.0"), Value: mib.Int(1)})
	if !errors.As(err, &re) || re.Status != ReadOnly {
		t.Fatalf("read-only: %v", err)
	}
	_, err = c.Set(ctx, VarBind{Name: oid.MustParse("1.3.3.0"), Value: mib.Int(1)})
	if !errors.As(err, &re) || re.Status != NoSuchName {
		t.Fatalf("missing: %v", err)
	}
}

func TestClientRetryOnTransientDrop(t *testing.T) {
	_, agent := testTreeAndAgent(t)
	calls := 0
	flaky := RoundTripperFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("dropped")
		}
		return agent.HandlePacket(req), nil
	})
	c := NewClient(flaky, "public", WithRetries(2), WithTimeout(50*time.Millisecond))
	if _, err := c.Get(context.Background(), mib.OIDSysName.Append(0)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Timeouts != 1 {
		t.Fatalf("stats = %+v, want one retry and one timeout", st)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	dead := RoundTripperFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return nil, errors.New("black hole")
	})
	c := NewClient(dead, "public", WithRetries(1), WithTimeout(10*time.Millisecond))
	if _, err := c.Get(context.Background(), mib.OIDSysName.Append(0)); err == nil {
		t.Fatal("request into black hole succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	blocked := RoundTripperFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c := NewClient(blocked, "public", WithRetries(5), WithTimeout(time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Get(ctx, mib.OIDSysName.Append(0)); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not propagate promptly")
	}
}

func TestAgentOverRealUDP(t *testing.T) {
	dev, agent := testTreeAndAgent(t)
	dev.Advance(time.Second)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- agent.ServeUDP(ctx, pc) }()

	tr, err := DialUDP(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := NewClient(tr, "public", WithTimeout(2*time.Second))
	vbs, err := c.Get(context.Background(), mib.OIDSysName.Append(0))
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "agent-under-test" {
		t.Fatalf("over UDP: %v", vbs[0].Value)
	}
	n, err := c.Walk(context.Background(), oid.MustParse("1.3.6.1.2.1.1"), func(VarBind) bool { return true })
	if err != nil || n != 7 {
		t.Fatalf("system group walk over UDP = %d, %v", n, err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
}

func TestWalkRejectsNonIncreasingAgent(t *testing.T) {
	// A malicious/buggy agent that always returns the same OID must not
	// put the walker into an infinite loop.
	evil := RoundTripperFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		m, err := Decode(req)
		if err != nil {
			return nil, err
		}
		resp := &Message{
			Community: m.Community, Type: PDUGetResponse, RequestID: m.RequestID,
			VarBinds: []VarBind{{Name: oid.MustParse("1.3.6.1.2.1.1.1.0"), Value: mib.Int(0)}},
		}
		return resp.Encode()
	})
	c := NewClient(evil, "public")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := c.Walk(context.Background(), oid.MustParse("1.3.6.1.2.1.1.1.0"), func(VarBind) bool { return true })
		if err == nil {
			t.Error("non-increasing walk did not error")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("walk hung on non-increasing agent")
	}
}

// panicHandler explodes on any access — a stand-in for a buggy mounted
// MIB handler.
type panicHandler struct{}

func (panicHandler) GetRel(rel oid.OID) (mib.Value, bool) { panic("mib handler bug") }
func (panicHandler) NextRel(rel oid.OID) (oid.OID, mib.Value, bool) {
	panic("mib handler bug")
}

func TestAgentRecoversHandlerPanic(t *testing.T) {
	dev, agent := testTreeAndAgent(t)
	if err := dev.Tree().Mount(oid.MustParse("1.3.6.1.4.1.99999"), panicHandler{}); err != nil {
		t.Fatal(err)
	}
	// A request touching the buggy subtree is dropped, not fatal.
	c := NewClient(AgentTripper(agent), "public", WithRetries(0), WithTimeout(100*time.Millisecond))
	if _, err := c.Get(context.Background(), oid.MustParse("1.3.6.1.4.1.99999.1.0")); err == nil {
		t.Fatal("panicking handler answered")
	}
	if got := agent.Stats().Panics; got == 0 {
		t.Fatal("panic not counted")
	}
	// The serve loop survives: ordinary requests still work.
	vbs, err := c.Get(context.Background(), mib.OIDSysName.Append(0))
	if err != nil || string(vbs[0].Value.Bytes) != "agent-under-test" {
		t.Fatalf("agent dead after handler panic: %v", err)
	}
}
