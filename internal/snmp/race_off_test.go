//go:build !race

package snmp

const raceEnabled = false
