// Package snmp implements the SNMPv1 protocol (RFC 1157): message
// encoding over ASN.1 BER, an agent engine serving a mib.Tree, and a
// manager client with Get/GetNext/Set/Walk operations, retries and
// timeouts. Traps are supported for agent-initiated notifications.
//
// This is the "micro-management" interface the paper's centralized
// baseline uses; the MbD server mounts the same MIB and lets delegated
// agents bypass the wire entirely.
package snmp

import (
	"errors"
	"fmt"

	"mbd/internal/ber"
	"mbd/internal/mib"
	"mbd/internal/oid"
)

// Version0 is the SNMPv1 version number carried on the wire.
const Version0 = 0

// PDUType is the context-specific constructed tag of an SNMP PDU.
type PDUType byte

// SNMPv1 PDU types.
const (
	PDUGetRequest     PDUType = 0xA0
	PDUGetNextRequest PDUType = 0xA1
	PDUGetResponse    PDUType = 0xA2
	PDUSetRequest     PDUType = 0xA3
	PDUTrap           PDUType = 0xA4
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case PDUGetRequest:
		return "GetRequest"
	case PDUGetNextRequest:
		return "GetNextRequest"
	case PDUGetResponse:
		return "GetResponse"
	case PDUSetRequest:
		return "SetRequest"
	case PDUTrap:
		return "Trap"
	default:
		return fmt.Sprintf("PDUType(0x%02x)", byte(t))
	}
}

// ErrorStatus is the SNMPv1 PDU error-status field.
type ErrorStatus int

// SNMPv1 error-status values.
const (
	NoError    ErrorStatus = 0
	TooBig     ErrorStatus = 1
	NoSuchName ErrorStatus = 2
	BadValue   ErrorStatus = 3
	ReadOnly   ErrorStatus = 4
	GenErr     ErrorStatus = 5
)

// String names the error status.
func (e ErrorStatus) String() string {
	switch e {
	case NoError:
		return "noError"
	case TooBig:
		return "tooBig"
	case NoSuchName:
		return "noSuchName"
	case BadValue:
		return "badValue"
	case ReadOnly:
		return "readOnly"
	case GenErr:
		return "genErr"
	default:
		return fmt.Sprintf("errorStatus(%d)", int(e))
	}
}

// VarBind is one name/value pair in a PDU.
type VarBind struct {
	Name  oid.OID
	Value mib.Value
}

// Message is a complete SNMPv1 message. For Trap PDUs the Trap field is
// populated instead of RequestID/ErrorStatus/ErrorIndex.
type Message struct {
	Community   string
	Type        PDUType
	RequestID   int32
	ErrorStatus ErrorStatus
	ErrorIndex  int
	VarBinds    []VarBind
	Trap        *TrapInfo
}

// TrapInfo carries the SNMPv1 trap header fields.
type TrapInfo struct {
	Enterprise   oid.OID
	AgentAddr    [4]byte
	GenericTrap  int
	SpecificTrap int
	Timestamp    uint64 // TimeTicks
}

// Generic trap numbers (RFC 1157).
const (
	TrapColdStart          = 0
	TrapLinkDown           = 2
	TrapLinkUp             = 3
	TrapEnterpriseSpecific = 6
)

// appendValue encodes a mib.Value into w.
func appendValue(w *ber.Writer, v mib.Value) {
	switch v.Kind {
	case mib.KindNull:
		w.AppendNull()
	case mib.KindInteger:
		w.AppendInt(ber.TagInteger, v.Int)
	case mib.KindOctetString:
		w.AppendString(ber.TagOctetString, v.Bytes)
	case mib.KindOID:
		w.AppendOID(v.OID)
	case mib.KindIPAddress:
		w.AppendString(ber.TagIPAddress, v.Bytes)
	case mib.KindCounter32:
		w.AppendUint(ber.TagCounter32, v.Uint)
	case mib.KindGauge32:
		w.AppendUint(ber.TagGauge32, v.Uint)
	case mib.KindTimeTicks:
		w.AppendUint(ber.TagTimeTicks, v.Uint)
	case mib.KindCounter64:
		w.AppendUint(ber.TagCounter64, v.Uint)
	default:
		w.AppendNull()
	}
}

// readValue decodes one mib.Value from r.
func readValue(r *ber.Reader) (mib.Value, error) {
	tag, err := r.PeekTag()
	if err != nil {
		return mib.Value{}, err
	}
	switch tag {
	case ber.TagNull:
		return mib.Null(), r.ReadNull()
	case ber.TagInteger:
		_, v, err := r.ReadInt()
		return mib.Int(v), err
	case ber.TagOctetString:
		_, s, err := r.ReadString()
		return mib.Octets(s), err
	case ber.TagOID:
		o, err := r.ReadOID()
		return mib.OIDValue(o), err
	case ber.TagIPAddress:
		_, s, err := r.ReadString()
		if err != nil {
			return mib.Value{}, err
		}
		if len(s) != 4 {
			return mib.Value{}, fmt.Errorf("snmp: IpAddress of %d bytes", len(s))
		}
		return mib.Value{Kind: mib.KindIPAddress, Bytes: s}, nil
	case ber.TagCounter32:
		_, v, err := r.ReadUint()
		return mib.Counter32(v), err
	case ber.TagGauge32:
		_, v, err := r.ReadUint()
		return mib.Gauge32(v), err
	case ber.TagTimeTicks:
		_, v, err := r.ReadUint()
		return mib.TimeTicks(v), err
	case ber.TagCounter64:
		_, v, err := r.ReadUint()
		return mib.Counter64(v), err
	default:
		return mib.Value{}, fmt.Errorf("snmp: unsupported value tag 0x%02x", tag)
	}
}

// Encode serializes the message to its BER wire form.
func (m *Message) Encode() ([]byte, error) {
	if m.Type == PDUTrap && m.Trap == nil {
		return nil, errors.New("snmp: trap message without TrapInfo")
	}
	var w ber.Writer
	msg := w.BeginSeq(ber.TagSequence)
	w.AppendInt(ber.TagInteger, Version0)
	w.AppendString(ber.TagOctetString, []byte(m.Community))
	pdu := w.BeginSeq(byte(m.Type))
	if m.Type == PDUTrap {
		w.AppendOID(m.Trap.Enterprise)
		w.AppendString(ber.TagIPAddress, m.Trap.AgentAddr[:])
		w.AppendInt(ber.TagInteger, int64(m.Trap.GenericTrap))
		w.AppendInt(ber.TagInteger, int64(m.Trap.SpecificTrap))
		w.AppendUint(ber.TagTimeTicks, m.Trap.Timestamp)
	} else {
		w.AppendInt(ber.TagInteger, int64(m.RequestID))
		w.AppendInt(ber.TagInteger, int64(m.ErrorStatus))
		w.AppendInt(ber.TagInteger, int64(m.ErrorIndex))
	}
	vbl := w.BeginSeq(ber.TagSequence)
	for _, vb := range m.VarBinds {
		one := w.BeginSeq(ber.TagSequence)
		w.AppendOID(vb.Name)
		appendValue(&w, vb.Value)
		w.EndSeq(one)
	}
	w.EndSeq(vbl)
	w.EndSeq(pdu)
	w.EndSeq(msg)
	return w.Bytes(), nil
}

// Decode parses a BER wire message.
func Decode(b []byte) (*Message, error) {
	r, err := ber.NewReader(b).EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmp: bad message envelope: %w", err)
	}
	_, version, err := r.ReadInt()
	if err != nil {
		return nil, fmt.Errorf("snmp: bad version: %w", err)
	}
	if version != Version0 {
		return nil, fmt.Errorf("snmp: unsupported version %d", version)
	}
	_, community, err := r.ReadString()
	if err != nil {
		return nil, fmt.Errorf("snmp: bad community: %w", err)
	}
	tag, err := r.PeekTag()
	if err != nil {
		return nil, err
	}
	m := &Message{Community: string(community), Type: PDUType(tag)}
	pr, err := r.EnterSeq(tag)
	if err != nil {
		return nil, fmt.Errorf("snmp: bad PDU: %w", err)
	}
	switch m.Type {
	case PDUGetRequest, PDUGetNextRequest, PDUGetResponse, PDUSetRequest:
		_, rid, err := pr.ReadInt()
		if err != nil {
			return nil, err
		}
		_, es, err := pr.ReadInt()
		if err != nil {
			return nil, err
		}
		_, ei, err := pr.ReadInt()
		if err != nil {
			return nil, err
		}
		m.RequestID = int32(rid)
		m.ErrorStatus = ErrorStatus(es)
		m.ErrorIndex = int(ei)
	case PDUTrap:
		var ti TrapInfo
		if ti.Enterprise, err = pr.ReadOID(); err != nil {
			return nil, err
		}
		_, addr, err := pr.ReadString()
		if err != nil {
			return nil, err
		}
		if len(addr) != 4 {
			return nil, fmt.Errorf("snmp: trap agent-addr of %d bytes", len(addr))
		}
		copy(ti.AgentAddr[:], addr)
		_, gt, err := pr.ReadInt()
		if err != nil {
			return nil, err
		}
		_, st, err := pr.ReadInt()
		if err != nil {
			return nil, err
		}
		_, ts, err := pr.ReadUint()
		if err != nil {
			return nil, err
		}
		ti.GenericTrap, ti.SpecificTrap, ti.Timestamp = int(gt), int(st), ts
		m.Trap = &ti
	default:
		return nil, fmt.Errorf("snmp: unknown PDU type 0x%02x", tag)
	}
	vr, err := pr.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmp: bad varbind list: %w", err)
	}
	for !vr.Empty() {
		one, err := vr.EnterSeq(ber.TagSequence)
		if err != nil {
			return nil, err
		}
		name, err := one.ReadOID()
		if err != nil {
			return nil, err
		}
		val, err := readValue(one)
		if err != nil {
			return nil, err
		}
		m.VarBinds = append(m.VarBinds, VarBind{Name: name, Value: val})
	}
	return m, nil
}
