// Package snmp implements the SNMPv1 protocol (RFC 1157): message
// encoding over ASN.1 BER, an agent engine serving a mib.Tree, and a
// manager client with Get/GetNext/Set/Walk operations, retries and
// timeouts. Traps are supported for agent-initiated notifications.
//
// This is the "micro-management" interface the paper's centralized
// baseline uses; the MbD server mounts the same MIB and lets delegated
// agents bypass the wire entirely.
package snmp

import (
	"errors"
	"fmt"

	"mbd/internal/ber"
	"mbd/internal/mib"
	"mbd/internal/oid"
)

// Version0 is the SNMPv1 version number carried on the wire.
const Version0 = 0

// PDUType is the context-specific constructed tag of an SNMP PDU.
type PDUType byte

// SNMPv1 PDU types.
const (
	PDUGetRequest     PDUType = 0xA0
	PDUGetNextRequest PDUType = 0xA1
	PDUGetResponse    PDUType = 0xA2
	PDUSetRequest     PDUType = 0xA3
	PDUTrap           PDUType = 0xA4
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case PDUGetRequest:
		return "GetRequest"
	case PDUGetNextRequest:
		return "GetNextRequest"
	case PDUGetResponse:
		return "GetResponse"
	case PDUSetRequest:
		return "SetRequest"
	case PDUTrap:
		return "Trap"
	default:
		return fmt.Sprintf("PDUType(0x%02x)", byte(t))
	}
}

// ErrorStatus is the SNMPv1 PDU error-status field.
type ErrorStatus int

// SNMPv1 error-status values.
const (
	NoError    ErrorStatus = 0
	TooBig     ErrorStatus = 1
	NoSuchName ErrorStatus = 2
	BadValue   ErrorStatus = 3
	ReadOnly   ErrorStatus = 4
	GenErr     ErrorStatus = 5
)

// String names the error status.
func (e ErrorStatus) String() string {
	switch e {
	case NoError:
		return "noError"
	case TooBig:
		return "tooBig"
	case NoSuchName:
		return "noSuchName"
	case BadValue:
		return "badValue"
	case ReadOnly:
		return "readOnly"
	case GenErr:
		return "genErr"
	default:
		return fmt.Sprintf("errorStatus(%d)", int(e))
	}
}

// VarBind is one name/value pair in a PDU.
type VarBind struct {
	Name  oid.OID
	Value mib.Value
}

// Message is a complete SNMPv1 message. For Trap PDUs the Trap field is
// populated instead of RequestID/ErrorStatus/ErrorIndex.
type Message struct {
	Community   string
	Type        PDUType
	RequestID   int32
	ErrorStatus ErrorStatus
	ErrorIndex  int
	VarBinds    []VarBind
	Trap        *TrapInfo
}

// TrapInfo carries the SNMPv1 trap header fields.
type TrapInfo struct {
	Enterprise   oid.OID
	AgentAddr    [4]byte
	GenericTrap  int
	SpecificTrap int
	Timestamp    uint64 // TimeTicks
}

// Generic trap numbers (RFC 1157).
const (
	TrapColdStart          = 0
	TrapLinkDown           = 2
	TrapLinkUp             = 3
	TrapEnterpriseSpecific = 6
)

// appendValue encodes a mib.Value into w.
func appendValue(w *ber.Writer, v mib.Value) {
	switch v.Kind {
	case mib.KindNull:
		w.AppendNull()
	case mib.KindInteger:
		w.AppendInt(ber.TagInteger, v.Int)
	case mib.KindOctetString:
		w.AppendString(ber.TagOctetString, v.Bytes)
	case mib.KindOID:
		w.AppendOID(v.OID)
	case mib.KindIPAddress:
		w.AppendString(ber.TagIPAddress, v.Bytes)
	case mib.KindCounter32:
		w.AppendUint(ber.TagCounter32, v.Uint)
	case mib.KindGauge32:
		w.AppendUint(ber.TagGauge32, v.Uint)
	case mib.KindTimeTicks:
		w.AppendUint(ber.TagTimeTicks, v.Uint)
	case mib.KindCounter64:
		w.AppendUint(ber.TagCounter64, v.Uint)
	default:
		w.AppendNull()
	}
}

// readValue decodes one mib.Value from r.
func readValue(r *ber.Reader) (mib.Value, error) {
	tag, err := r.PeekTag()
	if err != nil {
		return mib.Value{}, err
	}
	switch tag {
	case ber.TagNull:
		return mib.Null(), r.ReadNull()
	case ber.TagInteger:
		_, v, err := r.ReadInt()
		return mib.Int(v), err
	case ber.TagOctetString:
		_, s, err := r.ReadString()
		return mib.Octets(s), err
	case ber.TagOID:
		o, err := r.ReadOID()
		return mib.OIDValue(o), err
	case ber.TagIPAddress:
		_, s, err := r.ReadString()
		if err != nil {
			return mib.Value{}, err
		}
		if len(s) != 4 {
			return mib.Value{}, fmt.Errorf("snmp: IpAddress of %d bytes", len(s))
		}
		return mib.Value{Kind: mib.KindIPAddress, Bytes: s}, nil
	case ber.TagCounter32:
		_, v, err := r.ReadUint()
		return mib.Counter32(v), err
	case ber.TagGauge32:
		_, v, err := r.ReadUint()
		return mib.Gauge32(v), err
	case ber.TagTimeTicks:
		_, v, err := r.ReadUint()
		return mib.TimeTicks(v), err
	case ber.TagCounter64:
		_, v, err := r.ReadUint()
		return mib.Counter64(v), err
	default:
		return mib.Value{}, fmt.Errorf("snmp: unsupported value tag 0x%02x", tag)
	}
}

// Encode serializes the message to its BER wire form.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(nil)
}

// AppendEncode serializes the message to its BER wire form appended to
// dst, returning the extended slice. dst may be nil; callers on the
// packet hot path pass a reused buffer (typically buf[:0]) to encode
// without allocating. The result aliases dst's storage when capacity
// suffices — ownership of the returned slice is the caller's, and the
// message itself is not retained.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	if m.Type == PDUTrap && m.Trap == nil {
		return nil, errors.New("snmp: trap message without TrapInfo")
	}
	w := ber.NewWriter(dst)
	msg := w.BeginSeq(ber.TagSequence)
	w.AppendInt(ber.TagInteger, Version0)
	w.AppendString(ber.TagOctetString, []byte(m.Community))
	pdu := w.BeginSeq(byte(m.Type))
	if m.Type == PDUTrap {
		w.AppendOID(m.Trap.Enterprise)
		w.AppendString(ber.TagIPAddress, m.Trap.AgentAddr[:])
		w.AppendInt(ber.TagInteger, int64(m.Trap.GenericTrap))
		w.AppendInt(ber.TagInteger, int64(m.Trap.SpecificTrap))
		w.AppendUint(ber.TagTimeTicks, m.Trap.Timestamp)
	} else {
		w.AppendInt(ber.TagInteger, int64(m.RequestID))
		w.AppendInt(ber.TagInteger, int64(m.ErrorStatus))
		w.AppendInt(ber.TagInteger, int64(m.ErrorIndex))
	}
	vbl := w.BeginSeq(ber.TagSequence)
	for _, vb := range m.VarBinds {
		one := w.BeginSeq(ber.TagSequence)
		w.AppendOID(vb.Name)
		appendValue(&w, vb.Value)
		w.EndSeq(one)
	}
	w.EndSeq(vbl)
	w.EndSeq(pdu)
	w.EndSeq(msg)
	return w.Bytes(), nil
}

// Decode parses a BER wire message. Every decoded field is freshly
// allocated; hot paths that process many packets use a Decoder instead.
func Decode(b []byte) (*Message, error) {
	var d Decoder
	m := &Message{}
	if err := d.Decode(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Decoder parses BER wire messages while reusing its internal buffers:
// decoded OIDs live in one arc arena, the varbind list reuses its
// backing array, and the community string is cached between packets.
// After the first few packets a steady-state Decode performs no
// allocations (octet-string values still copy).
//
// The message populated by Decode aliases the decoder's buffers and is
// valid only until the next Decode call. A Decoder must not be used
// concurrently. The zero value is ready for use.
type Decoder struct {
	arena     oid.OID // backing store for all decoded OIDs
	community string  // cached community, reused while unchanged
	vbs       []VarBind
}

// appendOID decodes one OID from r into the decoder's arena.
func (d *Decoder) appendOID(r *ber.Reader) (oid.OID, error) {
	start := len(d.arena)
	ext, err := r.AppendOID(d.arena)
	if err != nil {
		return nil, err
	}
	d.arena = ext
	return ext[start:], nil
}

// Decode parses b into m, overwriting every field. See the Decoder
// contract for the lifetime of the decoded contents.
func (d *Decoder) Decode(b []byte, m *Message) error {
	d.arena = d.arena[:0]
	*m = Message{VarBinds: d.vbs[:0]}
	err := d.decode(b, m)
	d.vbs = m.VarBinds[:0]
	if err != nil {
		*m = Message{}
	}
	return err
}

func (d *Decoder) decode(b []byte, m *Message) error {
	r, err := ber.NewReader(b).Seq(ber.TagSequence)
	if err != nil {
		return fmt.Errorf("snmp: bad message envelope: %w", err)
	}
	_, version, err := r.ReadInt()
	if err != nil {
		return fmt.Errorf("snmp: bad version: %w", err)
	}
	if version != Version0 {
		return fmt.Errorf("snmp: unsupported version %d", version)
	}
	ctag, community, err := r.ReadTLV()
	if err != nil || ctag != ber.TagOctetString {
		return fmt.Errorf("snmp: bad community: %w", err)
	}
	if string(community) != d.community {
		d.community = string(community)
	}
	m.Community = d.community
	tag, err := r.PeekTag()
	if err != nil {
		return err
	}
	m.Type = PDUType(tag)
	pr, err := r.Seq(tag)
	if err != nil {
		return fmt.Errorf("snmp: bad PDU: %w", err)
	}
	switch m.Type {
	case PDUGetRequest, PDUGetNextRequest, PDUGetResponse, PDUSetRequest:
		_, rid, err := pr.ReadInt()
		if err != nil {
			return err
		}
		_, es, err := pr.ReadInt()
		if err != nil {
			return err
		}
		_, ei, err := pr.ReadInt()
		if err != nil {
			return err
		}
		m.RequestID = int32(rid)
		m.ErrorStatus = ErrorStatus(es)
		m.ErrorIndex = int(ei)
	case PDUTrap:
		var ti TrapInfo
		if ti.Enterprise, err = pr.ReadOID(); err != nil {
			return err
		}
		_, addr, err := pr.ReadString()
		if err != nil {
			return err
		}
		if len(addr) != 4 {
			return fmt.Errorf("snmp: trap agent-addr of %d bytes", len(addr))
		}
		copy(ti.AgentAddr[:], addr)
		_, gt, err := pr.ReadInt()
		if err != nil {
			return err
		}
		_, st, err := pr.ReadInt()
		if err != nil {
			return err
		}
		_, ts, err := pr.ReadUint()
		if err != nil {
			return err
		}
		ti.GenericTrap, ti.SpecificTrap, ti.Timestamp = int(gt), int(st), ts
		m.Trap = &ti
	default:
		return fmt.Errorf("snmp: unknown PDU type 0x%02x", tag)
	}
	vr, err := pr.Seq(ber.TagSequence)
	if err != nil {
		return fmt.Errorf("snmp: bad varbind list: %w", err)
	}
	for !vr.Empty() {
		one, err := vr.Seq(ber.TagSequence)
		if err != nil {
			return err
		}
		name, err := d.appendOID(&one)
		if err != nil {
			return err
		}
		val, err := readValue(&one)
		if err != nil {
			return err
		}
		m.VarBinds = append(m.VarBinds, VarBind{Name: name, Value: val})
	}
	return nil
}
