package snmp

import (
	"fmt"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

// The snmp MIB group (1.3.6.1.2.1.11, RFC 1213): an agent's own
// protocol statistics, served through the same MIB it manages — so a
// manager (or a delegated program) can observe the management traffic
// itself. The experiments' "management is itself load" point, made
// observable.

// OIDSnmpGroup is the snmp group root.
var OIDSnmpGroup = oid.MustParse("1.3.6.1.2.1.11")

// snmp group object arcs served by MountStats (RFC 1213 numbering).
const (
	snmpInPkts              = 1
	snmpOutPkts             = 2
	snmpInBadVersions       = 3
	snmpInBadCommunityNames = 4
	snmpInGetRequests       = 15
	snmpInGetNexts          = 16
	snmpInSetRequests       = 17
	snmpInGetResponses      = 18 // unused by an agent; present, zero
	snmpOutGetResponses     = 28
)

// MountStats mounts the agent's live protocol counters into tree as
// the standard snmp group. Call once after NewAgent.
func (a *Agent) MountStats(tree *mib.Tree) error {
	counters := []struct {
		arc uint32
		get func(AgentStats) uint64
	}{
		{snmpInPkts, func(s AgentStats) uint64 { return s.InPkts }},
		{snmpOutPkts, func(s AgentStats) uint64 { return s.OutPkts }},
		{snmpInBadVersions, func(s AgentStats) uint64 { return s.BadVersion }},
		{snmpInBadCommunityNames, func(s AgentStats) uint64 { return s.BadCommunity }},
		{snmpInGetRequests, func(s AgentStats) uint64 { return s.GetRequests }},
		{snmpInGetNexts, func(s AgentStats) uint64 { return s.GetNexts }},
		{snmpInSetRequests, func(s AgentStats) uint64 { return s.SetRequests }},
		{snmpInGetResponses, func(AgentStats) uint64 { return 0 }},
		{snmpOutGetResponses, func(s AgentStats) uint64 { return s.OutPkts }},
	}
	for _, c := range counters {
		get := c.get
		err := tree.Mount(OIDSnmpGroup.Append(c.arc), &mib.Scalar{
			Get: func() mib.Value { return mib.Counter32(get(a.Stats())) },
		})
		if err != nil {
			return fmt.Errorf("snmp: mounting stats: %w", err)
		}
	}
	return nil
}
