package snmp

import (
	"context"
	"testing"

	"mbd/internal/mib"
)

func TestSnmpGroupServesOwnCounters(t *testing.T) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "self", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(dev.Tree(), "public")
	if err := agent.MountStats(dev.Tree()); err != nil {
		t.Fatal(err)
	}
	c := NewClient(AgentTripper(agent), "public")
	ctx := context.Background()

	// Generate some traffic: 3 Gets and a bad community.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, mib.OIDSysName.Append(0)); err != nil {
			t.Fatal(err)
		}
	}
	bad := NewClient(AgentTripper(agent), "wrong", WithRetries(0))
	_, _ = bad.Get(ctx, mib.OIDSysName.Append(0))

	// Now read the agent's own counters through the agent itself.
	vbs, err := c.Get(ctx,
		OIDSnmpGroup.Append(1, 0),  // snmpInPkts
		OIDSnmpGroup.Append(4, 0),  // snmpInBadCommunityNames
		OIDSnmpGroup.Append(15, 0), // snmpInGetRequests
	)
	if err != nil {
		t.Fatal(err)
	}
	inPkts := vbs[0].Value.Uint
	badComm := vbs[1].Value.Uint
	gets := vbs[2].Value.Uint
	// 3 good + 1 bad + this one = 5 in-packets at handling time.
	if inPkts < 5 {
		t.Fatalf("snmpInPkts = %d, want ≥5", inPkts)
	}
	if badComm != 1 {
		t.Fatalf("snmpInBadCommunityNames = %d", badComm)
	}
	if gets < 4 {
		t.Fatalf("snmpInGetRequests = %d, want ≥4", gets)
	}

	// The group participates in walks (9 scalars).
	n, err := c.Walk(ctx, OIDSnmpGroup, func(VarBind) bool { return true })
	if err != nil || n != 9 {
		t.Fatalf("snmp group walk = %d, %v", n, err)
	}
	// Double-mount is rejected cleanly.
	if err := agent.MountStats(dev.Tree()); err == nil {
		t.Fatal("double MountStats accepted")
	}
}
