package snmp

import (
	"strings"
	"testing"

	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
)

// TestAgentInstrument verifies the registry bridge: PDU counters and
// the serve-latency histogram move when packets are handled.
func TestAgentInstrument(t *testing.T) {
	tree := &mib.Tree{}
	root := oid.MustParse("1.3.6.1.2.1.1.3")
	if err := tree.Mount(root, mib.ConstScalar(mib.TimeTicks(9))); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(tree, "public")
	reg := obs.NewRegistry()
	a.Instrument(reg)

	req := &Message{Community: "public", Type: PDUGetRequest, RequestID: 1,
		VarBinds: []VarBind{{Name: root.Append(0)}}}
	pkt, err := req.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp := a.HandlePacket(pkt); resp == nil {
		t.Fatal("no response")
	}
	// Wrong community: counted, dropped.
	bad := &Message{Community: "wrong", Type: PDUGetRequest, RequestID: 2,
		VarBinds: []VarBind{{Name: root.Append(0)}}}
	pkt, err = bad.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp := a.HandlePacket(pkt); resp != nil {
		t.Fatal("bad community must be dropped")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"snmp_in_pkts_total 2",
		"snmp_out_pkts_total 1",
		"snmp_get_requests_total 1",
		"snmp_bad_community_total 1",
		"snmp_serve_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
