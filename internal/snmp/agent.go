package snmp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"mbd/internal/mib"
)

// Agent serves SNMPv1 requests against a mib.Tree. It is transport
// independent: HandlePacket implements the request/response exchange on
// raw bytes, and ServeUDP binds it to a socket. The netsim package
// feeds it encoded packets directly with virtual-time accounting.
type Agent struct {
	tree      *mib.Tree
	community string

	mu    sync.Mutex
	stats AgentStats
}

// AgentStats counts protocol activity, mirroring the snmp MIB group's
// spirit (inPkts, outPkts, badCommunity, errors).
type AgentStats struct {
	InPkts       uint64
	OutPkts      uint64
	BadCommunity uint64
	BadVersion   uint64
	GetRequests  uint64
	GetNexts     uint64
	SetRequests  uint64
	Errors       uint64
}

// NewAgent returns an agent serving tree; requests must carry the given
// community string.
func NewAgent(tree *mib.Tree, community string) *Agent {
	return &Agent{tree: tree, community: community}
}

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// HandlePacket processes one encoded request and returns the encoded
// response, or nil when the request must be dropped (undecodable or
// failed authentication — RFC 1157 drops silently).
func (a *Agent) HandlePacket(pkt []byte) []byte {
	a.mu.Lock()
	a.stats.InPkts++
	a.mu.Unlock()
	req, err := Decode(pkt)
	if err != nil {
		a.count(func(s *AgentStats) { s.BadVersion++ })
		return nil
	}
	resp := a.Handle(req)
	if resp == nil {
		return nil
	}
	out, err := resp.Encode()
	if err != nil {
		a.count(func(s *AgentStats) { s.Errors++ })
		return nil
	}
	a.count(func(s *AgentStats) { s.OutPkts++ })
	return out
}

func (a *Agent) count(f func(*AgentStats)) {
	a.mu.Lock()
	f(&a.stats)
	a.mu.Unlock()
}

// Handle processes a decoded request message and returns the response
// message, or nil for drops.
func (a *Agent) Handle(req *Message) *Message {
	if req.Community != a.community {
		a.count(func(s *AgentStats) { s.BadCommunity++ })
		return nil
	}
	resp := &Message{
		Community: req.Community,
		Type:      PDUGetResponse,
		RequestID: req.RequestID,
		VarBinds:  make([]VarBind, len(req.VarBinds)),
	}
	copy(resp.VarBinds, req.VarBinds)

	fail := func(status ErrorStatus, index int) *Message {
		a.count(func(s *AgentStats) { s.Errors++ })
		resp.ErrorStatus = status
		resp.ErrorIndex = index
		// RFC 1157: on error, the varbind list is returned as received.
		copy(resp.VarBinds, req.VarBinds)
		return resp
	}

	switch req.Type {
	case PDUGetRequest:
		a.count(func(s *AgentStats) { s.GetRequests++ })
		for i, vb := range req.VarBinds {
			v, err := a.tree.Get(vb.Name)
			if err != nil {
				return fail(NoSuchName, i+1)
			}
			resp.VarBinds[i] = VarBind{Name: vb.Name, Value: v}
		}
	case PDUGetNextRequest:
		a.count(func(s *AgentStats) { s.GetNexts++ })
		for i, vb := range req.VarBinds {
			next, v, err := a.tree.GetNext(vb.Name)
			if err != nil {
				return fail(NoSuchName, i+1)
			}
			resp.VarBinds[i] = VarBind{Name: next, Value: v}
		}
	case PDUSetRequest:
		a.count(func(s *AgentStats) { s.SetRequests++ })
		for i, vb := range req.VarBinds {
			if err := a.tree.Set(vb.Name, vb.Value); err != nil {
				switch {
				case errors.Is(err, mib.ErrReadOnly):
					return fail(ReadOnly, i+1)
				case errors.Is(err, mib.ErrBadValue):
					return fail(BadValue, i+1)
				default:
					return fail(NoSuchName, i+1)
				}
			}
		}
	default:
		return nil // agents do not answer responses or traps
	}
	return resp
}

// ServeUDP answers requests on conn until ctx is cancelled. It blocks;
// run it on its own goroutine. The conn is closed on return.
func (a *Agent) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close() // unblocks ReadFrom
	}()
	buf := make([]byte, 65536)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("snmp: agent read: %w", err)
		}
		if resp := a.HandlePacket(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil && ctx.Err() == nil {
				return fmt.Errorf("snmp: agent write: %w", err)
			}
		}
	}
}
