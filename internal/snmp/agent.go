package snmp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
)

// Agent serves SNMPv1 requests against a mib.Tree. It is transport
// independent: HandlePacket implements the request/response exchange on
// raw bytes, and ServeUDP binds it to a socket. The netsim package
// feeds it encoded packets directly with virtual-time accounting.
//
// The packet path is allocation-free in steady state: decode scratch
// (message structs, OID arenas, successor buffers) is pooled, counters
// are atomics, and responses are encoded into a caller-supplied buffer
// via HandlePacketAppend.
type Agent struct {
	tree      *mib.Tree
	community string

	pool  sync.Pool // *serveState
	stats agentCounters

	// lat, when set by Instrument, observes per-packet serve latency.
	// The uninstrumented path pays one atomic load and a branch —
	// nothing else, keeping the gated serve benchmarks untouched.
	lat atomic.Pointer[obs.Histogram]
}

// agentCounters is the lock-free backing store for AgentStats.
type agentCounters struct {
	inPkts       atomic.Uint64
	outPkts      atomic.Uint64
	badCommunity atomic.Uint64
	badVersion   atomic.Uint64
	getRequests  atomic.Uint64
	getNexts     atomic.Uint64
	setRequests  atomic.Uint64
	errors       atomic.Uint64
	panics       atomic.Uint64
}

// AgentStats counts protocol activity, mirroring the snmp MIB group's
// spirit (inPkts, outPkts, badCommunity, errors).
type AgentStats struct {
	InPkts       uint64
	OutPkts      uint64
	BadCommunity uint64
	BadVersion   uint64
	GetRequests  uint64
	GetNexts     uint64
	SetRequests  uint64
	Errors       uint64
	// Panics counts packets dropped because serving them panicked (a
	// buggy mounted handler); each is recovered, never fatal.
	Panics uint64
}

// serveState is the pooled per-packet scratch: request/response
// messages with their varbind storage, the wire decoder, and one
// successor buffer per GetNext varbind position.
type serveState struct {
	dec      Decoder
	req      Message
	resp     Message
	nextBufs []oid.OID
}

// NewAgent returns an agent serving tree; requests must carry the given
// community string.
func NewAgent(tree *mib.Tree, community string) *Agent {
	a := &Agent{tree: tree, community: community}
	a.pool.New = func() any { return &serveState{} }
	return a
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		InPkts:       a.stats.inPkts.Load(),
		OutPkts:      a.stats.outPkts.Load(),
		BadCommunity: a.stats.badCommunity.Load(),
		BadVersion:   a.stats.badVersion.Load(),
		GetRequests:  a.stats.getRequests.Load(),
		GetNexts:     a.stats.getNexts.Load(),
		SetRequests:  a.stats.setRequests.Load(),
		Errors:       a.stats.errors.Load(),
		Panics:       a.stats.panics.Load(),
	}
}

// HandlePacket processes one encoded request and returns the encoded
// response, or nil when the request must be dropped (undecodable or
// failed authentication — RFC 1157 drops silently).
func (a *Agent) HandlePacket(pkt []byte) []byte {
	return a.HandlePacketAppend(nil, pkt)
}

// HandlePacketAppend is HandlePacket with a caller-supplied response
// buffer: the encoded response is appended to dst (typically a reused
// buf[:0]) and returned, so the serve path performs no steady-state
// allocation. A nil return still means "drop".
func (a *Agent) HandlePacketAppend(dst, pkt []byte) []byte {
	if h := a.lat.Load(); h != nil {
		start := time.Now()
		out := a.handlePacketAppend(dst, pkt)
		h.Observe(time.Since(start))
		return out
	}
	return a.handlePacketAppend(dst, pkt)
}

func (a *Agent) handlePacketAppend(dst, pkt []byte) (out []byte) {
	a.stats.inPkts.Add(1)
	sc := a.pool.Get().(*serveState)
	defer a.pool.Put(sc)
	// A panic while serving (a buggy mounted handler, a malformed
	// walk) drops this packet — RFC 1157 drop semantics — instead of
	// killing the UDP serve loop and with it the whole agent.
	defer func() {
		if r := recover(); r != nil {
			a.stats.panics.Add(1)
			out = nil
		}
	}()
	if err := sc.dec.Decode(pkt, &sc.req); err != nil {
		a.stats.badVersion.Add(1)
		return nil
	}
	if !a.serve(&sc.req, &sc.resp, sc) {
		return nil
	}
	out, err := sc.resp.AppendEncode(dst)
	if err != nil {
		a.stats.errors.Add(1)
		return nil
	}
	a.stats.outPkts.Add(1)
	return out
}

// Handle processes a decoded request message and returns the response
// message, or nil for drops. Unlike the packet path, the response is
// freshly allocated and safe to retain.
func (a *Agent) Handle(req *Message) *Message {
	resp := &Message{}
	if !a.serve(req, resp, nil) {
		return nil
	}
	return resp
}

// serve answers req into resp, reusing resp's varbind storage and, when
// sc is non-nil, its pooled successor buffers. It reports whether a
// response should be sent.
func (a *Agent) serve(req, resp *Message, sc *serveState) bool {
	if req.Community != a.community {
		a.stats.badCommunity.Add(1)
		return false
	}
	resp.Community = req.Community
	resp.Type = PDUGetResponse
	resp.RequestID = req.RequestID
	resp.ErrorStatus = NoError
	resp.ErrorIndex = 0
	resp.Trap = nil
	resp.VarBinds = append(resp.VarBinds[:0], req.VarBinds...)

	fail := func(status ErrorStatus, index int) bool {
		a.stats.errors.Add(1)
		resp.ErrorStatus = status
		resp.ErrorIndex = index
		// RFC 1157: on error, the varbind list is returned as received.
		copy(resp.VarBinds, req.VarBinds)
		return true
	}

	switch req.Type {
	case PDUGetRequest:
		a.stats.getRequests.Add(1)
		for i, vb := range req.VarBinds {
			v, err := a.tree.Get(vb.Name)
			if err != nil {
				return fail(NoSuchName, i+1)
			}
			resp.VarBinds[i] = VarBind{Name: vb.Name, Value: v}
		}
	case PDUGetNextRequest:
		a.stats.getNexts.Add(1)
		for i, vb := range req.VarBinds {
			var buf oid.OID
			if sc != nil {
				for len(sc.nextBufs) <= i {
					sc.nextBufs = append(sc.nextBufs, nil)
				}
				buf = sc.nextBufs[i]
			}
			next, v, err := a.tree.GetNextInto(buf, vb.Name)
			if err != nil {
				return fail(NoSuchName, i+1)
			}
			if sc != nil {
				sc.nextBufs[i] = next
			}
			resp.VarBinds[i] = VarBind{Name: next, Value: v}
		}
	case PDUSetRequest:
		a.stats.setRequests.Add(1)
		for i, vb := range req.VarBinds {
			if err := a.tree.Set(vb.Name, vb.Value); err != nil {
				switch {
				case errors.Is(err, mib.ErrReadOnly):
					return fail(ReadOnly, i+1)
				case errors.Is(err, mib.ErrBadValue):
					return fail(BadValue, i+1)
				default:
					return fail(NoSuchName, i+1)
				}
			}
		}
	default:
		return false // agents do not answer responses or traps
	}
	return true
}

// Instrument publishes the agent's protocol counters on reg as
// snmp_*-prefixed series and starts observing per-packet serve latency
// into snmp_serve_duration_seconds. Call at most once, before serving.
func (a *Agent) Instrument(reg *obs.Registry) {
	for _, c := range []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"snmp_in_pkts_total", "SNMP packets received", &a.stats.inPkts},
		{"snmp_out_pkts_total", "SNMP responses sent", &a.stats.outPkts},
		{"snmp_bad_community_total", "requests with a wrong community", &a.stats.badCommunity},
		{"snmp_bad_version_total", "undecodable or wrong-version packets", &a.stats.badVersion},
		{"snmp_get_requests_total", "GetRequest PDUs served", &a.stats.getRequests},
		{"snmp_get_nexts_total", "GetNextRequest PDUs served", &a.stats.getNexts},
		{"snmp_set_requests_total", "SetRequest PDUs served", &a.stats.setRequests},
		{"snmp_errors_total", "PDUs answered with an error status", &a.stats.errors},
		{"snmp_handler_panics_total", "packets dropped by per-packet panic recovery", &a.stats.panics},
	} {
		reg.FuncCounter(c.name, c.help, c.v.Load)
	}
	a.lat.Store(reg.Histogram("snmp_serve_duration_seconds", "per-packet serve latency", nil))
}

// ServeUDP answers requests on conn until ctx is cancelled. It blocks;
// run it on its own goroutine. The conn is closed on return.
func (a *Agent) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close() // unblocks ReadFrom
	}()
	buf := make([]byte, 65536)
	var out []byte // reused response buffer
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("snmp: agent read: %w", err)
		}
		if resp := a.HandlePacketAppend(out[:0], buf[:n]); resp != nil {
			out = resp // keep the (possibly grown) buffer for reuse
			if _, err := conn.WriteTo(resp, addr); err != nil && ctx.Err() == nil {
				return fmt.Errorf("snmp: agent write: %w", err)
			}
		}
	}
}
