package snmp

import (
	"math/rand"
	"testing"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

func TestMessageRoundTrip(t *testing.T) {
	msg := &Message{
		Community: "public",
		Type:      PDUGetRequest,
		RequestID: 1234,
		VarBinds: []VarBind{
			{Name: oid.MustParse("1.3.6.1.2.1.1.1.0"), Value: mib.Null()},
			{Name: oid.MustParse("1.3.6.1.2.1.1.3.0"), Value: mib.Null()},
		},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "public" || got.Type != PDUGetRequest || got.RequestID != 1234 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.VarBinds) != 2 || !got.VarBinds[0].Name.Equal(msg.VarBinds[0].Name) {
		t.Fatalf("varbinds mismatch: %+v", got.VarBinds)
	}
}

func TestResponseValuesRoundTrip(t *testing.T) {
	values := []mib.Value{
		mib.Int(-42),
		mib.Str("hello"),
		mib.Counter32(4_000_000_000),
		mib.Gauge32(10_000_000),
		mib.TimeTicks(123456),
		mib.Counter64(1 << 40),
		mib.IP(192, 168, 0, 1),
		mib.OIDValue(oid.MustParse("1.3.6.1.4.1.45")),
		mib.Null(),
	}
	vbs := make([]VarBind, len(values))
	for i, v := range values {
		vbs[i] = VarBind{Name: oid.MustParse("1.3.6.1.2.1.99.1.1").Append(uint32(i)), Value: v}
	}
	msg := &Message{Community: "c", Type: PDUGetResponse, RequestID: 7, VarBinds: vbs}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	for i, vb := range got.VarBinds {
		if !vb.Value.Equal(values[i]) {
			t.Errorf("value %d: got %v want %v", i, vb.Value, values[i])
		}
	}
}

func TestTrapRoundTrip(t *testing.T) {
	msg := &Message{
		Community: "public",
		Type:      PDUTrap,
		Trap: &TrapInfo{
			Enterprise:   oid.MustParse("1.3.6.1.4.1.45"),
			AgentAddr:    [4]byte{10, 0, 0, 5},
			GenericTrap:  TrapEnterpriseSpecific,
			SpecificTrap: 3,
			Timestamp:    555,
		},
		VarBinds: []VarBind{{Name: oid.MustParse("1.3.6.1.4.1.45.1.3.2.1.0"), Value: mib.Counter32(99)}},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trap == nil {
		t.Fatal("trap info lost")
	}
	if got.Trap.AgentAddr != msg.Trap.AgentAddr || got.Trap.SpecificTrap != 3 ||
		got.Trap.GenericTrap != TrapEnterpriseSpecific || got.Trap.Timestamp != 555 ||
		!got.Trap.Enterprise.Equal(msg.Trap.Enterprise) {
		t.Fatalf("trap mismatch: %+v", got.Trap)
	}
}

func TestTrapWithoutInfoRejected(t *testing.T) {
	msg := &Message{Community: "c", Type: PDUTrap}
	if _, err := msg.Encode(); err == nil {
		t.Fatal("trap without TrapInfo encoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x02, 0x01, 0x00},             // bare integer
		{0x30, 0x03, 0x02, 0x01, 0x01}, // version 1 (v2c), unsupported
		{0x30, 0x02, 0x04, 0x00},       // missing version
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("garbage % x decoded", c)
		}
	}
}

func TestDecodeTruncations(t *testing.T) {
	msg := &Message{
		Community: "public",
		Type:      PDUGetRequest,
		RequestID: 9,
		VarBinds:  []VarBind{{Name: oid.MustParse("1.3.6.1.2.1.1.1.0"), Value: mib.Null()}},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkt); i++ {
		if _, err := Decode(pkt[:i]); err == nil {
			t.Fatalf("truncated packet of %d/%d bytes decoded", i, len(pkt))
		}
	}
}

func TestPDUTypeAndErrorStrings(t *testing.T) {
	if PDUGetRequest.String() != "GetRequest" || PDUTrap.String() != "Trap" {
		t.Error("PDUType names wrong")
	}
	if PDUType(0xAF).String() == "" {
		t.Error("unknown PDU type has empty name")
	}
	if NoSuchName.String() != "noSuchName" || TooBig.String() != "tooBig" {
		t.Error("ErrorStatus names wrong")
	}
	if ErrorStatus(77).String() == "" {
		t.Error("unknown status has empty name")
	}
}

// Property: randomized messages survive an encode/decode cycle.
func TestRandomMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	types := []PDUType{PDUGetRequest, PDUGetNextRequest, PDUGetResponse, PDUSetRequest}
	for i := 0; i < 300; i++ {
		msg := &Message{
			Community:   string(randBytes(r, r.Intn(16))),
			Type:        types[r.Intn(len(types))],
			RequestID:   int32(r.Uint32()),
			ErrorStatus: ErrorStatus(r.Intn(6)),
			ErrorIndex:  r.Intn(10),
		}
		for j := 0; j < r.Intn(6); j++ {
			msg.VarBinds = append(msg.VarBinds, VarBind{
				Name:  oid.MustParse("1.3.6.1.2.1").Append(uint32(r.Intn(100)), uint32(r.Intn(100))),
				Value: randValue(r),
			})
		}
		pkt, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(pkt)
		if err != nil {
			t.Fatalf("decode round %d: %v", i, err)
		}
		if got.Community != msg.Community || got.Type != msg.Type ||
			got.RequestID != msg.RequestID || got.ErrorStatus != msg.ErrorStatus ||
			got.ErrorIndex != msg.ErrorIndex || len(got.VarBinds) != len(msg.VarBinds) {
			t.Fatalf("round %d: header mismatch", i)
		}
		for j := range msg.VarBinds {
			if !got.VarBinds[j].Name.Equal(msg.VarBinds[j].Name) ||
				!got.VarBinds[j].Value.Equal(msg.VarBinds[j].Value) {
				t.Fatalf("round %d varbind %d mismatch", i, j)
			}
		}
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randValue(r *rand.Rand) mib.Value {
	switch r.Intn(7) {
	case 0:
		return mib.Int(r.Int63() - r.Int63())
	case 1:
		return mib.Octets(randBytes(r, r.Intn(64)))
	case 2:
		return mib.Counter32(uint64(r.Uint32()))
	case 3:
		return mib.Gauge32(uint64(r.Uint32()))
	case 4:
		return mib.TimeTicks(uint64(r.Uint32()))
	case 5:
		return mib.IP(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
	default:
		return mib.Null()
	}
}
