package snmp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

// RoundTripper sends one encoded SNMP request and returns the encoded
// response. Implementations exist for UDP sockets, for in-process
// agents, and (in netsim) for simulated links with virtual latency.
type RoundTripper interface {
	RoundTrip(ctx context.Context, req []byte) ([]byte, error)
}

// RoundTripperFunc adapts a function to the RoundTripper interface.
type RoundTripperFunc func(ctx context.Context, req []byte) ([]byte, error)

// RoundTrip implements RoundTripper.
func (f RoundTripperFunc) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	return f(ctx, req)
}

// AgentTripper returns a RoundTripper that calls an Agent in process —
// the zero-latency path used by unit tests and by delegated agents
// proxying to a co-located SNMP agent.
func AgentTripper(a *Agent) RoundTripper {
	return RoundTripperFunc(func(_ context.Context, req []byte) ([]byte, error) {
		resp := a.HandlePacket(req)
		if resp == nil {
			return nil, fmt.Errorf("snmp: request dropped by agent")
		}
		return resp, nil
	})
}

// ClientStats counts client-side protocol activity and wire volume.
type ClientStats struct {
	Requests     uint64
	Retries      uint64
	Timeouts     uint64
	BytesSent    uint64
	BytesRcvd    uint64
	RoundTripLat time.Duration // cumulative
}

// Client is an SNMPv1 manager endpoint: it issues Get, GetNext, Set and
// Walk operations through a RoundTripper with timeout and retry
// handling, and accounts bytes and latency for the experiment harness.
type Client struct {
	rt        RoundTripper
	community string
	timeout   time.Duration
	retries   int

	reqID atomic.Int32

	mu    sync.Mutex
	stats ClientStats
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt timeout (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets the number of retransmissions after the first
// attempt (default 2).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// NewClient returns a manager client using community auth over rt.
func NewClient(rt RoundTripper, community string, opts ...ClientOption) *Client {
	c := &Client{rt: rt, community: community, timeout: 2 * time.Second, retries: 2}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Stats returns a copy of the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RequestError is a non-zero error-status response from the agent.
type RequestError struct {
	Status ErrorStatus
	Index  int
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("snmp: %s at index %d", e.Status, e.Index)
}

func (c *Client) exchange(ctx context.Context, typ PDUType, vbs []VarBind) ([]VarBind, error) {
	req := &Message{
		Community: c.community,
		Type:      typ,
		RequestID: c.reqID.Add(1),
		VarBinds:  vbs,
	}
	pkt, err := req.Encode()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		}
		start := time.Now()
		actx, cancel := context.WithTimeout(ctx, c.timeout)
		respPkt, err := c.rt.RoundTrip(actx, pkt)
		cancel()
		if err != nil {
			lastErr = err
			c.mu.Lock()
			c.stats.Timeouts++
			c.mu.Unlock()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		c.mu.Lock()
		c.stats.Requests++
		c.stats.BytesSent += uint64(len(pkt))
		c.stats.BytesRcvd += uint64(len(respPkt))
		c.stats.RoundTripLat += time.Since(start)
		c.mu.Unlock()
		resp, err := Decode(respPkt)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.RequestID != req.RequestID {
			lastErr = fmt.Errorf("snmp: response id %d for request %d", resp.RequestID, req.RequestID)
			continue
		}
		if resp.ErrorStatus != NoError {
			return nil, &RequestError{Status: resp.ErrorStatus, Index: resp.ErrorIndex}
		}
		return resp.VarBinds, nil
	}
	return nil, fmt.Errorf("snmp: request failed after %d attempts: %w", c.retries+1, lastErr)
}

// Get retrieves the values of the named instances.
func (c *Client) Get(ctx context.Context, names ...oid.OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(names))
	for i, n := range names {
		vbs[i] = VarBind{Name: n, Value: mib.Null()}
	}
	return c.exchange(ctx, PDUGetRequest, vbs)
}

// GetNext retrieves the lexicographic successors of the named OIDs.
func (c *Client) GetNext(ctx context.Context, names ...oid.OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(names))
	for i, n := range names {
		vbs[i] = VarBind{Name: n, Value: mib.Null()}
	}
	return c.exchange(ctx, PDUGetNextRequest, vbs)
}

// Set writes the given varbinds.
func (c *Client) Set(ctx context.Context, vbs ...VarBind) ([]VarBind, error) {
	return c.exchange(ctx, PDUSetRequest, vbs)
}

// Walk traverses the subtree rooted at prefix with repeated GetNext
// operations, invoking fn for every instance. It returns the number of
// instances visited.
func (c *Client) Walk(ctx context.Context, prefix oid.OID, fn func(VarBind) bool) (int, error) {
	cur := prefix
	n := 0
	for {
		vbs, err := c.GetNext(ctx, cur)
		if err != nil {
			var re *RequestError
			if errors.As(err, &re) && re.Status == NoSuchName {
				return n, nil // walked off the end of the MIB
			}
			return n, err
		}
		vb := vbs[0]
		if !vb.Name.HasPrefix(prefix) {
			return n, nil
		}
		if vb.Name.Compare(cur) <= 0 {
			return n, fmt.Errorf("snmp: agent returned non-increasing OID %s after %s", vb.Name, cur)
		}
		n++
		if !fn(vb) {
			return n, nil
		}
		cur = vb.Name
	}
}

// UDPTripper is a RoundTripper over a UDP socket. Each RoundTrip sends
// one datagram and waits for one reply.
type UDPTripper struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialUDP connects a tripper to the agent at addr ("host:port").
func DialUDP(addr string) (*UDPTripper, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: dial %s: %w", addr, err)
	}
	return &UDPTripper{conn: conn}, nil
}

// RoundTrip implements RoundTripper.
func (u *UDPTripper) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(5 * time.Second)
	}
	if err := u.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := u.conn.Write(req); err != nil {
		return nil, fmt.Errorf("snmp: send: %w", err)
	}
	buf := make([]byte, 65536)
	n, err := u.conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("snmp: receive: %w", err)
	}
	return buf[:n], nil
}

// Close releases the socket.
func (u *UDPTripper) Close() error { return u.conn.Close() }
