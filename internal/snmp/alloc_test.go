package snmp

import (
	"testing"

	"mbd/internal/mib"
)

// TestServeAllocs locks in the allocation-free packet path: after
// warm-up (pool primed, decoder arena and response buffer grown),
// serving Get and GetNext requests must not allocate at all.
func TestServeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "alloc", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(dev.Tree(), "public")

	encode := func(typ PDUType) []byte {
		msg := &Message{
			Community: "public", Type: typ, RequestID: 7,
			VarBinds: []VarBind{
				{Name: mib.OIDSysUpTime.Append(0), Value: mib.Null()},
				{Name: mib.OIDIfEntry.Append(mib.IfInOctets, 1), Value: mib.Null()},
			},
		}
		pkt, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	get := encode(PDUGetRequest)
	getNext := encode(PDUGetNextRequest)

	var out []byte
	serve := func(pkt []byte) {
		resp := agent.HandlePacketAppend(out[:0], pkt)
		if resp == nil {
			t.Fatal("request dropped")
		}
		out = resp
	}
	for i := 0; i < 16; i++ { // warm up pooled state and buffers
		serve(get)
		serve(getNext)
	}
	if n := testing.AllocsPerRun(100, func() { serve(get) }); n != 0 {
		t.Errorf("Get serve allocates %v times per packet, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { serve(getNext) }); n != 0 {
		t.Errorf("GetNext serve allocates %v times per packet, want 0", n)
	}
}
