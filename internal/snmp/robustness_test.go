package snmp

import (
	"math/rand"
	"testing"

	"mbd/internal/mib"
)

// Wire decoders face attacker-controlled bytes; none may panic.

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on % x: %v", b, p)
				}
			}()
			_, _ = Decode(b)
		}()
	}
}

func TestDecodeNeverPanicsOnMutatedValidPackets(t *testing.T) {
	// Bit-flip a valid packet everywhere: far more decoder paths get
	// exercised than with pure noise.
	msg := &Message{
		Community: "public", Type: PDUGetResponse, RequestID: 7,
		VarBinds: []VarBind{
			{Name: mib.OIDSysUpTime.Append(0), Value: mib.TimeTicks(42)},
			{Name: mib.OIDSysName.Append(0), Value: mib.Str("router")},
		},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(pkt); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(pkt))
			copy(mut, pkt)
			mut[pos] ^= 1 << bit
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Decode panicked at byte %d bit %d: %v", pos, bit, p)
					}
				}()
				_, _ = Decode(mut)
			}()
		}
	}
}

func TestAgentNeverPanicsOnMutatedRequests(t *testing.T) {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "fuzz", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(dev.Tree(), "public")
	msg := &Message{
		Community: "public", Type: PDUGetNextRequest, RequestID: 1,
		VarBinds: []VarBind{{Name: mib.OIDSysDescr, Value: mib.Null()}},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		mut := make([]byte, len(pkt))
		copy(mut, pkt)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("agent panicked on % x: %v", mut, p)
				}
			}()
			_ = agent.HandlePacket(mut)
		}()
	}
}
