package ber

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mbd/internal/oid"
)

func TestIntRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1<<31 - 1, -(1 << 31), math.MaxInt64, math.MinInt64}
	for _, v := range values {
		var w Writer
		w.AppendInt(TagInteger, v)
		r := NewReader(w.Bytes())
		tag, got, err := r.ReadInt()
		if err != nil {
			t.Fatalf("ReadInt(%d): %v", v, err)
		}
		if tag != TagInteger || got != v {
			t.Errorf("round-trip %d: got %d tag 0x%02x", v, got, tag)
		}
		if !r.Empty() {
			t.Errorf("round-trip %d: %d trailing bytes", v, len(w.Bytes())-r.Offset())
		}
	}
}

func TestIntMinimalEncoding(t *testing.T) {
	tests := []struct {
		v    int64
		want []byte
	}{
		{0, []byte{0x02, 0x01, 0x00}},
		{127, []byte{0x02, 0x01, 0x7F}},
		{128, []byte{0x02, 0x02, 0x00, 0x80}},
		{-128, []byte{0x02, 0x01, 0x80}},
		{256, []byte{0x02, 0x02, 0x01, 0x00}},
	}
	for _, tt := range tests {
		var w Writer
		w.AppendInt(TagInteger, tt.v)
		if !bytes.Equal(w.Bytes(), tt.want) {
			t.Errorf("encode %d = % x, want % x", tt.v, w.Bytes(), tt.want)
		}
	}
}

func TestUintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 255, 1 << 31, math.MaxUint32, math.MaxUint64}
	tags := []byte{TagCounter32, TagGauge32, TagTimeTicks, TagCounter64}
	for _, v := range values {
		for _, tag := range tags {
			var w Writer
			w.AppendUint(tag, v)
			r := NewReader(w.Bytes())
			got, u, err := r.ReadUint()
			if err != nil {
				t.Fatalf("ReadUint(%d): %v", v, err)
			}
			if got != tag || u != v {
				t.Errorf("round-trip %d tag 0x%02x: got %d tag 0x%02x", v, tag, u, got)
			}
		}
	}
}

func TestStringAndNull(t *testing.T) {
	var w Writer
	w.AppendString(TagOctetString, []byte("public"))
	w.AppendNull()
	w.AppendString(TagOctetString, nil)
	r := NewReader(w.Bytes())
	tag, s, err := r.ReadString()
	if err != nil || tag != TagOctetString || string(s) != "public" {
		t.Fatalf("ReadString = %q tag 0x%02x err %v", s, tag, err)
	}
	if err := r.ReadNull(); err != nil {
		t.Fatalf("ReadNull: %v", err)
	}
	if _, s, err = r.ReadString(); err != nil || len(s) != 0 {
		t.Fatalf("empty string round-trip: %q, %v", s, err)
	}
	if !r.Empty() {
		t.Fatal("trailing bytes")
	}
}

func TestOIDRoundTrip(t *testing.T) {
	cases := []string{
		"1.3.6.1.2.1.1.1.0",
		"0.0",
		"1.3",
		"2.999.3",                // first arc 2 with large second
		"1.3.6.1.4.1.45.1.3.2.1", // synoptics-like
		"1.3.6.1.2.1.2.2.1.10.4294967295",
	}
	for _, s := range cases {
		o := oid.MustParse(s)
		var w Writer
		w.AppendOID(o)
		r := NewReader(w.Bytes())
		got, err := r.ReadOID()
		if err != nil {
			t.Fatalf("ReadOID(%s): %v", s, err)
		}
		if !got.Equal(o) {
			t.Errorf("round-trip %s = %s", s, got)
		}
	}
}

func TestOIDKnownEncoding(t *testing.T) {
	// 1.3.6.1 encodes as 2B 06 01 (first two arcs merge to 43 = 0x2B).
	var w Writer
	w.AppendOID(oid.MustParse("1.3.6.1"))
	want := []byte{0x06, 0x03, 0x2B, 0x06, 0x01}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("encode 1.3.6.1 = % x, want % x", w.Bytes(), want)
	}
}

func TestSequenceNesting(t *testing.T) {
	var w Writer
	outer := w.BeginSeq(TagSequence)
	w.AppendInt(TagInteger, 7)
	inner := w.BeginSeq(TagSequence)
	w.AppendString(TagOctetString, []byte("x"))
	w.EndSeq(inner)
	w.EndSeq(outer)

	r, err := NewReader(w.Bytes()).EnterSeq(TagSequence)
	if err != nil {
		t.Fatal(err)
	}
	if _, v, err := r.ReadInt(); err != nil || v != 7 {
		t.Fatalf("inner int = %d, %v", v, err)
	}
	ir, err := r.EnterSeq(TagSequence)
	if err != nil {
		t.Fatal(err)
	}
	if _, s, err := ir.ReadString(); err != nil || string(s) != "x" {
		t.Fatalf("inner string = %q, %v", s, err)
	}
	if !ir.Empty() || !r.Empty() {
		t.Fatal("unconsumed input")
	}
}

func TestLongFormLengths(t *testing.T) {
	for _, n := range []int{127, 128, 255, 256, 65535, 65536, 1 << 20} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		var w Writer
		w.AppendString(TagOctetString, payload)
		r := NewReader(w.Bytes())
		_, s, err := r.ReadString()
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !bytes.Equal(s, payload) {
			t.Fatalf("len %d: payload mismatch", n)
		}
	}
}

func TestTruncatedInputs(t *testing.T) {
	var w Writer
	w.AppendString(TagOctetString, []byte("hello world"))
	full := w.Bytes()
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		if _, _, err := r.ReadString(); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestMalformedOIDs(t *testing.T) {
	bad := [][]byte{
		{0x06, 0x00},             // empty contents
		{0x06, 0x01, 0x80},       // ends mid-arc
		{0x06, 0x02, 0x2B, 0x80}, // ends mid-arc after valid arc
	}
	for _, b := range bad {
		if _, err := NewReader(b).ReadOID(); err == nil {
			t.Errorf("malformed OID % x accepted", b)
		}
	}
}

func TestWrongTagErrors(t *testing.T) {
	var w Writer
	w.AppendInt(TagInteger, 5)
	if _, err := NewReader(w.Bytes()).ReadOID(); err == nil {
		t.Error("ReadOID accepted INTEGER")
	}
	if err := NewReader(w.Bytes()).ReadNull(); err == nil {
		t.Error("ReadNull accepted INTEGER")
	}
	if _, err := NewReader(w.Bytes()).EnterSeq(TagSequence); err == nil {
		t.Error("EnterSeq accepted INTEGER")
	}
}

func TestReaderPeekAndReset(t *testing.T) {
	var w Writer
	w.AppendInt(TagInteger, 1)
	r := NewReader(w.Bytes())
	tag, err := r.PeekTag()
	if err != nil || tag != TagInteger {
		t.Fatalf("PeekTag = 0x%02x, %v", tag, err)
	}
	if r.Offset() != 0 {
		t.Fatal("PeekTag consumed input")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear writer")
	}
}

// Property: integers of any value round-trip.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		var w Writer
		w.AppendInt(TagInteger, v)
		_, got, err := NewReader(w.Bytes()).ReadInt()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: byte strings of any content round-trip.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		var w Writer
		w.AppendString(TagOctetString, s)
		_, got, err := NewReader(w.Bytes()).ReadString()
		return err == nil && bytes.Equal(got, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random OIDs (with valid first-two-arc constraints) round-trip.
func TestQuickOIDRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		n := 2 + r.Intn(12)
		o := make(oid.OID, n)
		o[0] = uint32(r.Intn(3))
		if o[0] < 2 {
			o[1] = uint32(r.Intn(40))
		} else {
			o[1] = uint32(r.Intn(100000))
		}
		for j := 2; j < n; j++ {
			o[j] = uint32(r.Int63n(1 << 32))
		}
		var w Writer
		w.AppendOID(o)
		got, err := NewReader(w.Bytes()).ReadOID()
		if err != nil {
			t.Fatalf("decode %v: %v", o, err)
		}
		if !got.Equal(o) {
			t.Fatalf("round-trip %v = %v", o, got)
		}
	}
}

// Property: a random concatenation of supported values decodes in order.
func TestQuickHeterogeneousStream(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		var w Writer
		kinds := make([]int, 1+r.Intn(20))
		ints := map[int]int64{}
		strs := map[int][]byte{}
		for j := range kinds {
			switch k := r.Intn(3); k {
			case 0:
				v := r.Int63() - r.Int63()
				ints[j] = v
				w.AppendInt(TagInteger, v)
				kinds[j] = 0
			case 1:
				b := make([]byte, r.Intn(32))
				r.Read(b)
				strs[j] = b
				w.AppendString(TagOctetString, b)
				kinds[j] = 1
			default:
				w.AppendNull()
				kinds[j] = 2
			}
		}
		rd := NewReader(w.Bytes())
		for j, k := range kinds {
			switch k {
			case 0:
				_, v, err := rd.ReadInt()
				if err != nil || v != ints[j] {
					t.Fatalf("elem %d: int %d err %v", j, v, err)
				}
			case 1:
				_, s, err := rd.ReadString()
				if err != nil || !bytes.Equal(s, strs[j]) {
					t.Fatalf("elem %d: str err %v", j, err)
				}
			default:
				if err := rd.ReadNull(); err != nil {
					t.Fatalf("elem %d: null err %v", j, err)
				}
			}
		}
		if !rd.Empty() {
			t.Fatal("trailing bytes")
		}
	}
}

func TestLongFormSequences(t *testing.T) {
	// EndSeq must patch 2-, 3- and 4-byte length forms correctly.
	for _, n := range []int{100, 200, 70000, 1 << 17} {
		var w Writer
		m := w.BeginSeq(TagSequence)
		payload := bytes.Repeat([]byte{0x5A}, n)
		w.AppendString(TagOctetString, payload)
		w.EndSeq(m)
		r, err := NewReader(w.Bytes()).EnterSeq(TagSequence)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, s, err := r.ReadString()
		if err != nil || !bytes.Equal(s, payload) {
			t.Fatalf("n=%d: payload mismatch (%v)", n, err)
		}
		if !r.Empty() {
			t.Fatalf("n=%d: trailing bytes", n)
		}
	}
}

func TestReadUintRejectsOversized(t *testing.T) {
	// 9 bytes with a nonzero lead must be rejected (would overflow).
	bad := []byte{TagCounter64, 0x09, 0x01, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, _, err := NewReader(bad).ReadUint(); err == nil {
		t.Fatal("oversized uint accepted")
	}
	// But 9 bytes with a zero pad (BER positive-int form) is fine.
	ok := []byte{TagCounter64, 0x09, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	_, v, err := NewReader(ok).ReadUint()
	if err != nil || v != math.MaxUint64 {
		t.Fatalf("padded max uint = %d, %v", v, err)
	}
	// Empty contents rejected.
	if _, _, err := NewReader([]byte{TagCounter32, 0x00}).ReadUint(); err == nil {
		t.Fatal("empty uint accepted")
	}
}

func TestReadIntRejectsOversized(t *testing.T) {
	bad := []byte{TagInteger, 0x09, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, _, err := NewReader(bad).ReadInt(); err == nil {
		t.Fatal("9-byte int accepted")
	}
	if _, _, err := NewReader([]byte{TagInteger, 0x00}).ReadInt(); err == nil {
		t.Fatal("empty int accepted")
	}
}

func TestUnsupportedLengthForms(t *testing.T) {
	// Indefinite length (0x80) and 5-byte lengths are not SNMP-legal.
	for _, b := range [][]byte{
		{TagOctetString, 0x80, 0x00, 0x00},
		{TagOctetString, 0x85, 1, 2, 3, 4, 5},
	} {
		if _, _, err := NewReader(b).ReadTLV(); err == nil {
			t.Errorf("length form % x accepted", b[:2])
		}
	}
}

func TestOIDSingleArcAndEmpty(t *testing.T) {
	// Single-arc and empty OIDs use the padding convention.
	for _, o := range []oid.OID{nil, {1}} {
		var w Writer
		w.AppendOID(o)
		got, err := NewReader(w.Bytes()).ReadOID()
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if len(got) != 2 {
			t.Fatalf("%v decoded to %v", o, got)
		}
	}
}
