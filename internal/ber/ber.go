// Package ber implements the subset of the ASN.1 Basic Encoding Rules
// (ISO 8825) used by SNMPv1 messages and by RDS protocol headers.
//
// The paper's prototype "uses the asn.1 Basic Encoding Rules to encode
// rds message headers" and speaks SNMP to managed devices; both
// protocols in this repository share this codec so that byte counts
// measured by the experiment harness reflect real wire encodings.
//
// Supported universal types: INTEGER, OCTET STRING, NULL, OBJECT
// IDENTIFIER and SEQUENCE, plus the SNMP application tags (IpAddress,
// Counter32, Gauge32, TimeTicks, Opaque, Counter64) and
// context-specific constructed tags for PDUs. Definite length form
// only, as SNMP requires.
package ber

import (
	"errors"
	"fmt"

	"mbd/internal/oid"
)

// Class is the two-bit ASN.1 tag class.
type Class byte

// Tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

// Universal tag numbers used by SNMP and RDS.
const (
	TagInteger     byte = 0x02
	TagOctetString byte = 0x04
	TagNull        byte = 0x05
	TagOID         byte = 0x06
	TagSequence    byte = 0x30 // constructed bit set
)

// SNMP application-class tags (RFC 1155).
const (
	TagIPAddress byte = 0x40
	TagCounter32 byte = 0x41
	TagGauge32   byte = 0x42
	TagTimeTicks byte = 0x43
	TagOpaque    byte = 0x44
	TagCounter64 byte = 0x46
)

// ErrTruncated is returned when a value's encoding claims more bytes
// than remain in the buffer.
var ErrTruncated = errors.New("ber: truncated encoding")

// Writer incrementally builds a BER encoding. The zero value is ready
// for use. All Append methods return the writer to allow chaining.
//
// Encoding is pure appending: no method allocates beyond growing the
// buffer, so a writer seeded with a reused buffer (NewWriter) encodes
// with zero steady-state allocations.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer that appends to dst, which may be nil.
// Callers reusing a buffer across encodes pass dst[:0]; Bytes returns
// the extended slice when encoding is done.
func NewWriter(dst []byte) Writer { return Writer{buf: dst} }

// Bytes returns the encoded bytes accumulated so far. The returned
// slice aliases the writer's internal buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer to empty, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// appendLength appends a definite-form length.
func (w *Writer) appendLength(n int) {
	switch {
	case n < 0x80:
		w.buf = append(w.buf, byte(n))
	case n <= 0xFF:
		w.buf = append(w.buf, 0x81, byte(n))
	case n <= 0xFFFF:
		w.buf = append(w.buf, 0x82, byte(n>>8), byte(n))
	case n <= 0xFFFFFF:
		w.buf = append(w.buf, 0x83, byte(n>>16), byte(n>>8), byte(n))
	default:
		w.buf = append(w.buf, 0x84, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// AppendTLV appends a complete tag-length-value triple with the given
// raw tag byte and contents.
func (w *Writer) AppendTLV(tag byte, contents []byte) *Writer {
	w.buf = append(w.buf, tag)
	w.appendLength(len(contents))
	w.buf = append(w.buf, contents...)
	return w
}

// AppendInt appends a two's-complement INTEGER with the given tag
// (TagInteger for universal integers; SNMP application tags reuse the
// integer content encoding).
func (w *Writer) AppendInt(tag byte, v int64) *Writer {
	w.buf = append(w.buf, tag)
	// Minimal two's-complement length.
	n := 1
	for x := v; x > 0x7F || x < -0x80; x >>= 8 {
		n++
	}
	w.appendLength(n)
	for i := n - 1; i >= 0; i-- {
		w.buf = append(w.buf, byte(v>>(uint(i)*8)))
	}
	return w
}

// AppendUint appends an unsigned integer (Counter32, Gauge32,
// TimeTicks, Counter64) using the given tag. Values with the high bit
// set get a leading zero octet, per BER.
func (w *Writer) AppendUint(tag byte, v uint64) *Writer {
	w.buf = append(w.buf, tag)
	n := 1
	for x := v; x > 0x7F; x >>= 8 {
		n++
	}
	w.appendLength(n)
	for i := n - 1; i >= 0; i-- {
		w.buf = append(w.buf, byte(v>>(uint(i)*8)))
	}
	return w
}

// AppendString appends an OCTET STRING (or any string-like tag).
func (w *Writer) AppendString(tag byte, s []byte) *Writer {
	return w.AppendTLV(tag, s)
}

// AppendNull appends a NULL value.
func (w *Writer) AppendNull() *Writer {
	w.buf = append(w.buf, TagNull, 0x00)
	return w
}

// AppendOID appends an OBJECT IDENTIFIER. OIDs with fewer than two
// arcs are padded per convention (the empty OID encodes as 0.0).
// The contents are appended directly to the writer's buffer; no
// intermediate slice is allocated.
func (w *Writer) AppendOID(o oid.OID) *Writer {
	var first, second uint32
	rest := oid.OID(nil)
	switch {
	case len(o) >= 2:
		first, second, rest = o[0], o[1], o[2:]
	case len(o) == 1:
		first = o[0]
	}
	head := uint64(first)*40 + uint64(second)
	n := base128Len(head)
	for _, arc := range rest {
		n += base128Len(uint64(arc))
	}
	w.buf = append(w.buf, TagOID)
	w.appendLength(n)
	w.buf = appendBase128(w.buf, head)
	for _, arc := range rest {
		w.buf = appendBase128(w.buf, uint64(arc))
	}
	return w
}

// base128Len returns the number of octets base-128 encoding of v takes.
func base128Len(v uint64) int {
	n := 1
	for v > 0x7F {
		n++
		v >>= 7
	}
	return n
}

func appendBase128(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, 0)
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7F) | 0x80
		v >>= 7
	}
	tmp[len(tmp)-1] &^= 0x80
	return append(dst, tmp[i:]...)
}

// BeginSeq opens a constructed element with the given tag and returns a
// marker to pass to EndSeq. Lengths are patched when the sequence ends.
func (w *Writer) BeginSeq(tag byte) int {
	w.buf = append(w.buf, tag)
	return len(w.buf)
}

// EndSeq closes a constructed element opened at marker, inserting the
// definite-form length of everything appended in between.
func (w *Writer) EndSeq(marker int) *Writer {
	contents := w.buf[marker:]
	n := len(contents)
	var lenBytes int
	switch {
	case n < 0x80:
		lenBytes = 1
	case n <= 0xFF:
		lenBytes = 2
	case n <= 0xFFFF:
		lenBytes = 3
	case n <= 0xFFFFFF:
		lenBytes = 4
	default:
		lenBytes = 5
	}
	w.buf = append(w.buf, make([]byte, lenBytes)...)
	copy(w.buf[marker+lenBytes:], w.buf[marker:len(w.buf)-lenBytes])
	// Re-encode the length in place.
	switch lenBytes {
	case 1:
		w.buf[marker] = byte(n)
	case 2:
		w.buf[marker] = 0x81
		w.buf[marker+1] = byte(n)
	case 3:
		w.buf[marker] = 0x82
		w.buf[marker+1] = byte(n >> 8)
		w.buf[marker+2] = byte(n)
	case 4:
		w.buf[marker] = 0x83
		w.buf[marker+1] = byte(n >> 16)
		w.buf[marker+2] = byte(n >> 8)
		w.buf[marker+3] = byte(n)
	default:
		w.buf[marker] = 0x84
		w.buf[marker+1] = byte(n >> 24)
		w.buf[marker+2] = byte(n >> 16)
		w.buf[marker+3] = byte(n >> 8)
		w.buf[marker+4] = byte(n)
	}
	return w
}

// Reader decodes a BER byte stream sequentially.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Empty reports whether all input has been consumed.
func (r *Reader) Empty() bool { return r.off >= len(r.buf) }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// PeekTag returns the tag byte of the next element without consuming it.
func (r *Reader) PeekTag() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTruncated
	}
	return r.buf[r.off], nil
}

// header consumes tag and length, returning the tag and content length.
func (r *Reader) header() (tag byte, n int, err error) {
	if r.off >= len(r.buf) {
		return 0, 0, ErrTruncated
	}
	tag = r.buf[r.off]
	r.off++
	if r.off >= len(r.buf) {
		return 0, 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	if b < 0x80 {
		return tag, int(b), nil
	}
	k := int(b & 0x7F)
	if k == 0 || k > 4 {
		return 0, 0, fmt.Errorf("ber: unsupported length form 0x%02x", b)
	}
	if r.off+k > len(r.buf) {
		return 0, 0, ErrTruncated
	}
	for i := 0; i < k; i++ {
		n = n<<8 | int(r.buf[r.off])
		r.off++
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("ber: negative length")
	}
	return tag, n, nil
}

// ReadTLV consumes the next element and returns its tag and contents.
// The contents alias the reader's buffer.
func (r *Reader) ReadTLV() (tag byte, contents []byte, err error) {
	tag, n, err := r.header()
	if err != nil {
		return 0, nil, err
	}
	if r.off+n > len(r.buf) {
		return 0, nil, ErrTruncated
	}
	contents = r.buf[r.off : r.off+n]
	r.off += n
	return tag, contents, nil
}

// ReadInt consumes an element and interprets its contents as a signed
// two's-complement integer, returning the actual tag found.
func (r *Reader) ReadInt() (tag byte, v int64, err error) {
	tag, c, err := r.ReadTLV()
	if err != nil {
		return 0, 0, err
	}
	if len(c) == 0 || len(c) > 8 {
		return 0, 0, fmt.Errorf("ber: integer of %d bytes", len(c))
	}
	v = int64(int8(c[0])) // sign-extend
	for _, b := range c[1:] {
		v = v<<8 | int64(b)
	}
	return tag, v, nil
}

// ReadUint consumes an element and interprets its contents as an
// unsigned integer (Counter/Gauge/TimeTicks).
func (r *Reader) ReadUint() (tag byte, v uint64, err error) {
	tag, c, err := r.ReadTLV()
	if err != nil {
		return 0, 0, err
	}
	if len(c) == 0 || len(c) > 9 || (len(c) == 9 && c[0] != 0) {
		return 0, 0, fmt.Errorf("ber: uint of %d bytes", len(c))
	}
	for _, b := range c {
		v = v<<8 | uint64(b)
	}
	return tag, v, nil
}

// ReadString consumes an element and returns its contents as a copied
// byte slice along with the tag.
func (r *Reader) ReadString() (tag byte, s []byte, err error) {
	tag, c, err := r.ReadTLV()
	if err != nil {
		return 0, nil, err
	}
	out := make([]byte, len(c))
	copy(out, c)
	return tag, out, nil
}

// ReadOID consumes an OBJECT IDENTIFIER element.
func (r *Reader) ReadOID() (oid.OID, error) {
	return r.AppendOID(nil)
}

// AppendOID consumes an OBJECT IDENTIFIER element and appends its arcs
// to dst, returning the extended slice (append semantics: the decoded
// OID is ext[len(dst):]). Decoders that reuse an arc arena across
// messages pass the arena to decode without allocating; dst may be nil,
// in which case the result is just the decoded OID.
func (r *Reader) AppendOID(dst oid.OID) (oid.OID, error) {
	tag, c, err := r.ReadTLV()
	if err != nil {
		return nil, err
	}
	if tag != TagOID {
		return nil, fmt.Errorf("ber: expected OID tag, got 0x%02x", tag)
	}
	return appendOIDContents(dst, c)
}

func appendOIDContents(dst oid.OID, c []byte) (oid.OID, error) {
	if len(c) == 0 {
		return nil, errors.New("ber: empty OID")
	}
	var v uint64
	first := true
	for i, b := range c {
		v = v<<7 | uint64(b&0x7F)
		if v > 1<<40 {
			return nil, errors.New("ber: OID arc overflow")
		}
		if b&0x80 != 0 {
			if i == len(c)-1 {
				return nil, errors.New("ber: OID ends mid-arc")
			}
			continue
		}
		if first {
			// The leading sub-identifier packs the first two arcs.
			switch {
			case v < 40:
				dst = append(dst, 0, uint32(v))
			case v < 80:
				dst = append(dst, 1, uint32(v-40))
			default:
				dst = append(dst, 2, uint32(v-80))
			}
			first = false
		} else {
			if v > 0xFFFFFFFF {
				return nil, errors.New("ber: OID arc exceeds 32 bits")
			}
			dst = append(dst, uint32(v))
		}
		v = 0
	}
	return dst, nil
}

// ReadNull consumes a NULL element.
func (r *Reader) ReadNull() error {
	tag, c, err := r.ReadTLV()
	if err != nil {
		return err
	}
	if tag != TagNull || len(c) != 0 {
		return fmt.Errorf("ber: expected NULL, got tag 0x%02x len %d", tag, len(c))
	}
	return nil
}

// EnterSeq consumes the header of a constructed element with the given
// tag and returns a sub-reader confined to its contents.
func (r *Reader) EnterSeq(tag byte) (*Reader, error) {
	sub, err := r.Seq(tag)
	if err != nil {
		return nil, err
	}
	return &sub, nil
}

// Seq is EnterSeq returning the sub-reader by value: decoders nesting
// several sequences per message use it to stay allocation-free.
func (r *Reader) Seq(tag byte) (Reader, error) {
	got, c, err := r.ReadTLV()
	if err != nil {
		return Reader{}, err
	}
	if got != tag {
		return Reader{}, fmt.Errorf("ber: expected constructed tag 0x%02x, got 0x%02x", tag, got)
	}
	return Reader{buf: c}, nil
}
