package vdl

import (
	"mbd/internal/dpl"
	"mbd/internal/mib"
)

// This file exports the evaluator's internals to the incremental
// maintenance engine (vdl/incr). The delta operators must agree with
// Eval bit-for-bit — crosschecked by test — so they call these exact
// functions rather than reimplementing expression semantics.

// Env is an evaluation environment binding one (possibly joined) row's
// cells to aliases and bare column names.
type Env = env

// NewRowEnv returns an empty row environment.
func NewRowEnv() *Env { return newEnv() }

// Bind adds a table's cells to the environment under alias (and merges
// them into the unqualified namespace, later bindings winning).
func (e *Env) Bind(alias string, cells map[string]Value) { e.add(alias, cells) }

// Lookup resolves a column reference.
func (e *Env) Lookup(c ColRef) (Value, error) { return e.lookup(c) }

// EvalExpr evaluates a non-aggregate expression against one row.
func EvalExpr(e Expr, env *Env) (Value, error) { return evalExpr(e, env) }

// EvalAggregate evaluates a select expression that may contain
// aggregate calls over the kept row set, in row order (order matters
// for floating-point accumulation).
func EvalAggregate(e Expr, rows []*Env) (Value, error) { return evalAggregate(e, rows) }

// EvalBinOp applies one binary operator to evaluated operands.
func EvalBinOp(op dpl.TokenKind, l, r Value) (Value, error) { return evalBinOp(op, l, r) }

// EvalUnOp applies one unary operator to an evaluated operand.
func EvalUnOp(op dpl.TokenKind, x Value) (Value, error) { return evalUnOp(op, x) }

// Truthy reports whether a value passes a where clause.
func Truthy(v Value) bool { return truthy(v) }

// LooseEqual is the equality the == operator and join matching use:
// numeric values compare across int64/float64, everything else by
// identity.
func LooseEqual(l, r Value) bool { return looseEqual(l, r) }

// HasAgg reports whether the expression contains an aggregate call.
func HasAgg(e Expr) bool { return hasAgg(e) }

// FromSMI converts an SMI value into the view evaluation domain.
func FromSMI(v mib.Value) Value { return fromSMI(v) }

// ToSMI converts a computed value back to an SMI value.
func ToSMI(v Value) mib.Value { return toSMI(v) }
