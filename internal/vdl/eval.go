package vdl

import (
	"fmt"

	"mbd/internal/dpl"
	"mbd/internal/mib"
	"mbd/internal/oid"
)

// Row is one view result row. Index is the base-table instance index
// (left table's for joins; nil for aggregates).
type Row struct {
	Index oid.OID
	Cells []Value
}

// Result is a materialized view evaluation.
type Result struct {
	View    string
	Columns []string
	Rows    []Row
	// BaseRows counts base-table rows scanned — the data the manager
	// did NOT have to transfer.
	BaseRows int
}

// Evaluator computes views over a MIB tree using a schema.
type Evaluator struct {
	tree   *mib.Tree
	schema *Schema
}

// NewEvaluator returns an evaluator over tree.
func NewEvaluator(tree *mib.Tree, schema *Schema) *Evaluator {
	return &Evaluator{tree: tree, schema: schema}
}

// baseRow is a materialized conceptual row.
type baseRow struct {
	index oid.OID
	cells map[string]Value // column name → value
}

// materialize walks one table into memory.
func (ev *Evaluator) materialize(ref TableRef) ([]baseRow, error) {
	ts, ok := ev.schema.Lookup(ref.Table)
	if !ok {
		return nil, fmt.Errorf("vdl: unknown table %q", ref.Table)
	}
	colByNum := make(map[uint32]string, len(ts.Columns))
	for name, num := range ts.Columns {
		colByNum[num] = name
	}
	rows := make(map[string]*baseRow)
	var order []string
	ev.tree.Walk(ts.Entry, func(o oid.OID, v mib.Value) bool {
		rel, ok := o.Index(ts.Entry)
		if !ok || len(rel) < 2 {
			return true
		}
		name, known := colByNum[rel[0]]
		if !known {
			return true
		}
		idx := rel[1:]
		key := idx.String()
		r, exists := rows[key]
		if !exists {
			r = &baseRow{index: idx, cells: make(map[string]Value)}
			rows[key] = r
			order = append(order, key)
		}
		r.cells[name] = fromSMI(v)
		return true
	})
	out := make([]baseRow, 0, len(order))
	for _, key := range order {
		out = append(out, *rows[key])
	}
	return out, nil
}

// env resolves column references for one (possibly joined) row.
type env struct {
	byAlias map[string]map[string]Value
	flat    map[string]Value
}

func newEnv() *env {
	return &env{byAlias: make(map[string]map[string]Value), flat: make(map[string]Value)}
}

func (e *env) add(alias string, cells map[string]Value) {
	e.byAlias[alias] = cells
	for k, v := range cells {
		e.flat[k] = v
	}
}

func (e *env) lookup(c ColRef) (Value, error) {
	if c.Alias != "" {
		cells, ok := e.byAlias[c.Alias]
		if !ok {
			return nil, fmt.Errorf("vdl: unknown alias %q", c.Alias)
		}
		v, ok := cells[c.Col]
		if !ok {
			return nil, fmt.Errorf("vdl: no column %q in %q", c.Col, c.Alias)
		}
		return v, nil
	}
	v, ok := e.flat[c.Col]
	if !ok {
		return nil, fmt.Errorf("vdl: unknown column %q", c.Col)
	}
	return v, nil
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e Expr) bool {
	switch n := e.(type) {
	case Agg:
		return true
	case Bin:
		return hasAgg(n.L) || hasAgg(n.R)
	case Un:
		return hasAgg(n.X)
	default:
		return false
	}
}

// Eval materializes the view against the current MIB contents.
func (ev *Evaluator) Eval(v *ViewDef) (*Result, error) {
	left, err := ev.materialize(v.From)
	if err != nil {
		return nil, err
	}
	res := &Result{View: v.Name}
	for _, s := range v.Select {
		res.Columns = append(res.Columns, s.Name)
	}

	// Build the working set of row environments.
	var envs []*env
	var indices []oid.OID
	res.BaseRows = len(left)
	if v.Join == nil {
		for _, lr := range left {
			e := newEnv()
			e.add(v.From.Alias, lr.cells)
			envs = append(envs, e)
			indices = append(indices, lr.index)
		}
	} else {
		right, err := ev.materialize(v.Join.Right)
		if err != nil {
			return nil, err
		}
		res.BaseRows += len(right)
		for _, lr := range left {
			le := newEnv()
			le.add(v.From.Alias, lr.cells)
			lv, err := le.lookup(v.Join.LeftCol)
			if err != nil {
				return nil, err
			}
			for _, rr := range right {
				re := newEnv()
				re.add(v.Join.Right.Alias, rr.cells)
				rv, err := re.lookup(v.Join.RightCol)
				if err != nil {
					return nil, err
				}
				eq, err := evalBinOp(dpl.TokEq, lv, rv)
				if err != nil {
					return nil, err
				}
				if eq == true {
					joined := newEnv()
					joined.add(v.From.Alias, lr.cells)
					joined.add(v.Join.Right.Alias, rr.cells)
					envs = append(envs, joined)
					indices = append(indices, lr.index)
				}
			}
		}
	}

	// Apply the where clause.
	var kept []*env
	var keptIdx []oid.OID
	for i, e := range envs {
		if v.Where != nil {
			cond, err := evalExpr(v.Where, e)
			if err != nil {
				return nil, err
			}
			if !truthy(cond) {
				continue
			}
		}
		kept = append(kept, e)
		keptIdx = append(keptIdx, indices[i])
	}

	// Aggregate or project.
	aggregate := false
	for _, s := range v.Select {
		if hasAgg(s.Expr) {
			aggregate = true
			break
		}
	}
	if aggregate {
		row := Row{Cells: make([]Value, len(v.Select))}
		for i, s := range v.Select {
			val, err := evalAggregate(s.Expr, kept)
			if err != nil {
				return nil, err
			}
			row.Cells[i] = val
		}
		res.Rows = []Row{row}
		return res, nil
	}
	for i, e := range kept {
		row := Row{Index: keptIdx[i], Cells: make([]Value, len(v.Select))}
		for j, s := range v.Select {
			val, err := evalExpr(s.Expr, e)
			if err != nil {
				return nil, err
			}
			row.Cells[j] = val
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// evalAggregate computes an expression that may contain aggregate calls
// over the kept row set.
func evalAggregate(e Expr, rows []*env) (Value, error) {
	switch n := e.(type) {
	case Agg:
		switch n.Fn {
		case "count":
			return int64(len(rows)), nil
		default:
			var acc float64
			var best Value
			cnt := 0
			for _, r := range rows {
				v, err := evalExpr(n.X, r)
				if err != nil {
					return nil, err
				}
				f, ok := asFloat(v)
				switch n.Fn {
				case "sum", "avg":
					if !ok {
						return nil, fmt.Errorf("vdl: %s over non-numeric value", n.Fn)
					}
					acc += f
				case "min", "max":
					if best == nil {
						best = v
					} else {
						cmpTok := dpl.TokLt
						if n.Fn == "max" {
							cmpTok = dpl.TokGt
						}
						c, err := evalBinOp(cmpTok, v, best)
						if err != nil {
							return nil, err
						}
						if c == true {
							best = v
						}
					}
				}
				cnt++
			}
			switch n.Fn {
			case "sum":
				return acc, nil
			case "avg":
				if cnt == 0 {
					return nil, nil
				}
				return acc / float64(cnt), nil
			default:
				return best, nil
			}
		}
	case Bin:
		l, err := evalAggregate(n.L, rows)
		if err != nil {
			return nil, err
		}
		r, err := evalAggregate(n.R, rows)
		if err != nil {
			return nil, err
		}
		return evalBinOp(n.Op, l, r)
	case Un:
		x, err := evalAggregate(n.X, rows)
		if err != nil {
			return nil, err
		}
		return evalUnOp(n.Op, x)
	case Lit:
		return n.V, nil
	case ColRef:
		return nil, fmt.Errorf("vdl: bare column %q in aggregate select", n.Col)
	default:
		return nil, fmt.Errorf("vdl: unknown expression %T", e)
	}
}

func evalExpr(e Expr, env *env) (Value, error) {
	switch n := e.(type) {
	case Lit:
		return n.V, nil
	case ColRef:
		return env.lookup(n)
	case Un:
		x, err := evalExpr(n.X, env)
		if err != nil {
			return nil, err
		}
		return evalUnOp(n.Op, x)
	case Bin:
		if n.Op == dpl.TokAndAnd || n.Op == dpl.TokOrOr {
			l, err := evalExpr(n.L, env)
			if err != nil {
				return nil, err
			}
			if n.Op == dpl.TokAndAnd && !truthy(l) {
				return false, nil
			}
			if n.Op == dpl.TokOrOr && truthy(l) {
				return true, nil
			}
			r, err := evalExpr(n.R, env)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		}
		l, err := evalExpr(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(n.R, env)
		if err != nil {
			return nil, err
		}
		return evalBinOp(n.Op, l, r)
	case Agg:
		return nil, fmt.Errorf("vdl: aggregate %s() outside select", n.Fn)
	default:
		return nil, fmt.Errorf("vdl: unknown expression %T", e)
	}
}

func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

func asFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func evalUnOp(op dpl.TokenKind, x Value) (Value, error) {
	if op == dpl.TokBang {
		return !truthy(x), nil
	}
	switch v := x.(type) {
	case int64:
		return -v, nil
	case float64:
		return -v, nil
	default:
		return nil, fmt.Errorf("vdl: cannot negate %T", x)
	}
}

func evalBinOp(op dpl.TokenKind, l, r Value) (Value, error) {
	// Equality handles strings and nil specially.
	if op == dpl.TokEq || op == dpl.TokNe {
		eq := looseEqual(l, r)
		if op == dpl.TokNe {
			eq = !eq
		}
		return eq, nil
	}
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return nil, fmt.Errorf("vdl: cannot compare string and %T", r)
		}
		switch op {
		case dpl.TokLt:
			return ls < rs, nil
		case dpl.TokLe:
			return ls <= rs, nil
		case dpl.TokGt:
			return ls > rs, nil
		case dpl.TokGe:
			return ls >= rs, nil
		case dpl.TokPlus:
			return ls + rs, nil
		default:
			return nil, fmt.Errorf("vdl: invalid string operation")
		}
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("vdl: non-numeric operands (%T, %T)", l, r)
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	bothInt := lInt && rInt
	switch op {
	case dpl.TokLt:
		return lf < rf, nil
	case dpl.TokLe:
		return lf <= rf, nil
	case dpl.TokGt:
		return lf > rf, nil
	case dpl.TokGe:
		return lf >= rf, nil
	case dpl.TokPlus:
		if bothInt {
			return li + ri, nil
		}
		return lf + rf, nil
	case dpl.TokMinus:
		if bothInt {
			return li - ri, nil
		}
		return lf - rf, nil
	case dpl.TokStar:
		if bothInt {
			return li * ri, nil
		}
		return lf * rf, nil
	case dpl.TokSlash:
		if rf == 0 {
			return nil, fmt.Errorf("vdl: division by zero")
		}
		if bothInt && li%ri == 0 {
			return li / ri, nil
		}
		return lf / rf, nil
	case dpl.TokPercent:
		if !bothInt {
			return nil, fmt.Errorf("vdl: %% needs integers")
		}
		if ri == 0 {
			return nil, fmt.Errorf("vdl: modulo by zero")
		}
		return li % ri, nil
	default:
		return nil, fmt.Errorf("vdl: unknown operator %s", op)
	}
}

func looseEqual(l, r Value) bool {
	if lf, ok := asFloat(l); ok {
		if rf, ok := asFloat(r); ok {
			return lf == rf
		}
		return false
	}
	return l == r
}
