package vdl

import (
	"fmt"
	"sort"
	"sync"

	"mbd/internal/dpl"
	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
)

// OIDViews is the v-mib root under which the MCVA exposes computed
// views (an enterprise arc reserved for this implementation).
var OIDViews = oid.MustParse("1.3.6.1.4.1.424242.1")

// DefaultSnapshotCap bounds retained snapshots when no explicit cap is
// configured. Under periodic refresh an unbounded snapshot map is a
// slow leak; evicting least-recently-used entries keeps forensics
// available without growing forever.
const DefaultSnapshotCap = 64

// MCVA is the MIB Computations-of-Views Agent: it holds named view
// definitions, evaluates them on demand against the live MIB, keeps
// immutable snapshots (bounded, LRU-evicted), and exposes both as a
// virtual MIB subtree so plain SNMP managers can read computed views.
type MCVA struct {
	ev *Evaluator

	mu          sync.Mutex
	views       map[string]*ViewDef
	viewOrder   []string
	snapshots   map[int64]*Result
	snapLRU     []int64 // ids, least-recently-used first
	snapCap     int
	snapEvicted uint64
	snapSeq     int64
}

// NewMCVA builds an MCVA over the tree and schema.
func NewMCVA(tree *mib.Tree, schema *Schema) *MCVA {
	return &MCVA{
		ev:        NewEvaluator(tree, schema),
		views:     make(map[string]*ViewDef),
		snapshots: make(map[int64]*Result),
		snapCap:   DefaultSnapshotCap,
	}
}

// SetSnapshotCap changes the retained-snapshot bound (minimum 1;
// non-positive restores DefaultSnapshotCap). Excess snapshots are
// evicted immediately, least recently used first.
func (m *MCVA) SetSnapshotCap(n int) {
	if n <= 0 {
		n = DefaultSnapshotCap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapCap = n
	m.evictLocked()
}

// SnapshotsEvicted returns how many snapshots the LRU bound has
// discarded.
func (m *MCVA) SnapshotsEvicted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapEvicted
}

// Instrument registers the MCVA's metrics on reg
// (vdl_snapshots_evicted_total).
func (m *MCVA) Instrument(reg *obs.Registry) {
	reg.FuncCounter("vdl_snapshots_evicted_total",
		"View snapshots discarded by the LRU retention bound.", m.SnapshotsEvicted)
}

// evictLocked drops least-recently-used snapshots until within cap.
// Callers hold m.mu.
func (m *MCVA) evictLocked() {
	for len(m.snapshots) > m.snapCap && len(m.snapLRU) > 0 {
		id := m.snapLRU[0]
		m.snapLRU = m.snapLRU[1:]
		if _, ok := m.snapshots[id]; ok {
			delete(m.snapshots, id)
			m.snapEvicted++
		}
	}
}

// touchLocked moves id to the most-recently-used end of the LRU order.
// Callers hold m.mu.
func (m *MCVA) touchLocked(id int64) {
	for i, x := range m.snapLRU {
		if x == id {
			m.snapLRU = append(append(m.snapLRU[:i:i], m.snapLRU[i+1:]...), id)
			return
		}
	}
	m.snapLRU = append(m.snapLRU, id)
}

// Define parses and installs a view definition, replacing any previous
// view of the same name.
func (m *MCVA) Define(src string) (*ViewDef, error) {
	v, err := Parse(src)
	if err != nil {
		return nil, err
	}
	// Validate eagerly: an empty evaluation exposes schema errors now
	// rather than at first query.
	if _, err := m.ev.Eval(v); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.views[v.Name]; !exists {
		m.viewOrder = append(m.viewOrder, v.Name)
	}
	m.views[v.Name] = v
	return v, nil
}

// Views lists installed view names in definition order.
func (m *MCVA) Views() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.viewOrder))
	copy(out, m.viewOrder)
	return out
}

// Query evaluates the named view against the current MIB contents.
func (m *MCVA) Query(name string) (*Result, error) {
	m.mu.Lock()
	v, ok := m.views[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("vdl: no view %q", name)
	}
	return m.ev.Eval(v)
}

// Snapshot materializes the named view and retains the result
// immutably, returning its id. "View Snapshots ... provide an
// instantaneous copy of the values of a collection of mib variables."
func (m *MCVA) Snapshot(name string) (int64, error) {
	res, err := m.Query(name)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapSeq++
	m.snapshots[m.snapSeq] = res
	m.touchLocked(m.snapSeq)
	m.evictLocked()
	return m.snapSeq, nil
}

// SnapshotResult fetches a retained snapshot by id.
func (m *MCVA) SnapshotResult(id int64) (*Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.snapshots[id]
	if ok {
		m.touchLocked(id)
	}
	return r, ok
}

// DropSnapshot releases a snapshot.
func (m *MCVA) DropSnapshot(id int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.snapshots[id]; !ok {
		return false
	}
	delete(m.snapshots, id)
	for i, x := range m.snapLRU {
		if x == id {
			m.snapLRU = append(m.snapLRU[:i], m.snapLRU[i+1:]...)
			break
		}
	}
	return true
}

// Bindings returns the host functions the MCVA contributes to the MbD
// server's allowed set, so delegated programs can define and query
// views:
//
//	viewDefine(src)      install a view; returns its name
//	viewQuery(name)      evaluate; returns array of row arrays
//	viewSnapshot(name)   materialize; returns snapshot id
//	snapshotRows(id)     rows of a retained snapshot
//	snapshotDrop(id)     release a snapshot; returns true if it existed
func (m *MCVA) Bindings() *dpl.Bindings {
	b := dpl.NewBindings()
	rowsToDPL := func(res *Result) *dpl.Array {
		out := &dpl.Array{}
		for _, r := range res.Rows {
			row := &dpl.Array{}
			for _, c := range r.Cells {
				row.Elems = append(row.Elems, dpl.Value(c))
			}
			out.Elems = append(out.Elems, row)
		}
		return out
	}
	b.Register("viewDefine", 1, func(env *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		src, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("vdl: viewDefine wants a string")
		}
		v, err := m.Define(src)
		if err != nil {
			return nil, err
		}
		return v.Name, nil
	})
	b.Register("viewQuery", 1, func(env *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		name, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("vdl: viewQuery wants a string")
		}
		res, err := m.Query(name)
		if err != nil {
			return nil, err
		}
		return rowsToDPL(res), nil
	})
	b.Register("viewSnapshot", 1, func(env *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		name, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("vdl: viewSnapshot wants a string")
		}
		return m.Snapshot(name)
	})
	b.Register("snapshotRows", 1, func(env *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		id, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("vdl: snapshotRows wants an id")
		}
		res, ok := m.SnapshotResult(id)
		if !ok {
			return nil, fmt.Errorf("vdl: no snapshot %d", id)
		}
		return rowsToDPL(res), nil
	})
	b.Register("snapshotDrop", 1, func(env *dpl.Env, args []dpl.Value) (dpl.Value, error) {
		id, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("vdl: snapshotDrop wants an id")
		}
		return m.DropSnapshot(id), nil
	})
	return b
}

// Handler returns a mib.Handler exposing the MCVA's views as v-mib
// objects. Mount it at OIDViews. Instances are addressed
// viewIndex.column.row (1-based); every read re-evaluates the view, so
// SNMP managers always see fresh computed data.
func (m *MCVA) Handler() mib.Handler { return &viewHandler{m: m} }

type viewHandler struct {
	m *MCVA
}

// materializeAll evaluates every installed view in definition order.
func (h *viewHandler) materializeAll() []*Result {
	names := h.m.Views()
	out := make([]*Result, 0, len(names))
	for _, n := range names {
		res, err := h.m.Query(n)
		if err != nil {
			res = &Result{View: n} // failed views expose no instances
		}
		out = append(out, res)
	}
	return out
}

// GetRel implements mib.Handler.
func (h *viewHandler) GetRel(rel oid.OID) (mib.Value, bool) {
	if len(rel) != 3 {
		return mib.Value{}, false
	}
	all := h.materializeAll()
	vi, ci, ri := int(rel[0]), int(rel[1]), int(rel[2])
	if vi < 1 || vi > len(all) {
		return mib.Value{}, false
	}
	res := all[vi-1]
	if ci < 1 || ci > len(res.Columns) || ri < 1 || ri > len(res.Rows) {
		return mib.Value{}, false
	}
	return toSMI(res.Rows[ri-1].Cells[ci-1]), true
}

// NextRel implements mib.Handler.
func (h *viewHandler) NextRel(rel oid.OID) (oid.OID, mib.Value, bool) {
	all := h.materializeAll()
	// Enumerate instances in order and return the first beyond rel.
	var candidates []oid.OID
	for vi, res := range all {
		for ci := range res.Columns {
			for ri := range res.Rows {
				candidates = append(candidates, oid.OID{uint32(vi + 1), uint32(ci + 1), uint32(ri + 1)})
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Compare(candidates[j]) < 0 })
	for _, c := range candidates {
		if c.Compare(rel) > 0 {
			v, ok := h.GetRel(c)
			if !ok {
				continue
			}
			return c, v, true
		}
	}
	return nil, mib.Value{}, false
}
