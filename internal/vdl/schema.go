// Package vdl implements MIB Views: the View Definition Language, its
// evaluator, and the MIB Computations-of-Views Agent (MCVA).
//
// A view is a delegated computation over MIB data — projection,
// selection, join, or aggregation — evaluated next to the agent instead
// of shipping raw tables to the manager. Views are read-only ("we apply
// views only for queries"), can be snapshotted for transient-problem
// forensics, and are exposed back to SNMP managers as a virtual MIB
// subtree (v-mib objects).
//
// The dissertation contrasts this VDL — five lines for a typical view —
// with the SMI-extension approach of [Arai & Yemini 1995], whose
// equivalent specifications are "very long and detailed"; RenderSMI
// reproduces that comparison by generating the verbose SMI-style
// equivalent of any view definition.
//
// Grammar (reconstructed; the thesis figure is not preserved in our
// source text):
//
//	view <name> {
//	  from <table> [as <alias>] [join <table> [as <alias>] on <colref> == <colref>];
//	  select <expr> [as <name>] {, <expr> [as <name>]};
//	  [where <boolexpr>;]
//	}
//
// Expressions read columns by name (optionally alias-qualified), use
// the usual arithmetic/comparison/logical operators, and the aggregate
// functions count(), sum(e), avg(e), min(e), max(e) (aggregates only in
// the select clause).
package vdl

import (
	"fmt"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

// TableSchema names one conceptual table and its columns.
type TableSchema struct {
	Name    string
	Entry   oid.OID
	Columns map[string]uint32
}

// Schema maps table names usable in VDL to their MIB locations.
type Schema struct {
	Tables map[string]TableSchema
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{Tables: make(map[string]TableSchema)}
}

// Add registers a table.
func (s *Schema) Add(t TableSchema) { s.Tables[t.Name] = t }

// Lookup finds a table by name.
func (s *Schema) Lookup(name string) (TableSchema, bool) {
	t, ok := s.Tables[name]
	return t, ok
}

// MIB2 returns the schema for the instrumented MIB-II subset: ifTable,
// tcpConnTable and ipRouteTable with their RFC 1213 column names.
func MIB2() *Schema {
	s := NewSchema()
	s.Add(TableSchema{
		Name:  "ifTable",
		Entry: mib.OIDIfEntry,
		Columns: map[string]uint32{
			"ifIndex": mib.IfIndex, "ifDescr": mib.IfDescr, "ifType": mib.IfType,
			"ifMtu": mib.IfMtu, "ifSpeed": mib.IfSpeed, "ifAdminStatus": mib.IfAdminStatus,
			"ifOperStatus": mib.IfOperStatus, "ifInOctets": mib.IfInOctets,
			"ifInUcastPkts": mib.IfInUcastPkts, "ifInNUcastPkts": mib.IfInNUcast,
			"ifInErrors": mib.IfInErrors, "ifOutOctets": mib.IfOutOctets,
			"ifOutUcastPkts": mib.IfOutUcast, "ifOutQLen": mib.IfOutQLen,
		},
	})
	s.Add(TableSchema{
		Name:  "tcpConnTable",
		Entry: mib.OIDTCPConnEntry,
		Columns: map[string]uint32{
			"tcpConnState": mib.TCPConnState, "tcpConnLocalAddress": mib.TCPConnLocalAddr,
			"tcpConnLocalPort": mib.TCPConnLocalPort, "tcpConnRemAddress": mib.TCPConnRemAddr,
			"tcpConnRemPort": mib.TCPConnRemPort,
		},
	})
	s.Add(TableSchema{
		Name:  "ipRouteTable",
		Entry: mib.OIDIPRouteEntry,
		Columns: map[string]uint32{
			"ipRouteDest": mib.IPRouteDest, "ipRouteIfIndex": mib.IPRouteIfIndex,
			"ipRouteMetric1": mib.IPRouteMetric1, "ipRouteNextHop": mib.IPRouteNextHop,
			"ipRouteType": mib.IPRouteType, "ipRouteProto": mib.IPRouteProto,
			"ipRouteAge": mib.IPRouteAge,
		},
	})
	return s
}

// OIDFedRollup is the federation rollup table's entry prefix: the .2
// arc under the federation subtree (federation.OIDFederation; the
// constant is duplicated here because vdl must not import federation —
// a cross-package test keeps them aligned).
var OIDFedRollup = oid.MustParse("1.3.6.1.4.1.424242.3.2")

// AddFederation registers the federation rollup table, letting a view's
// from clause range over the whole domain tree's combined key/value
// rollup instead of only local base tables. Returns s for chaining.
func (s *Schema) AddFederation() *Schema {
	s.Add(TableSchema{
		Name:  "fedRollupTable",
		Entry: OIDFedRollup,
		Columns: map[string]uint32{
			"fedRollupKey": 1, "fedRollupValue": 2,
			"fedRollupMembers": 3, "fedRollupUpdates": 4,
		},
	})
	return s
}

// Value is the evaluation domain of view expressions: nil, bool, int64,
// float64, or string.
type Value = any

// fromSMI converts an SMI value into the view evaluation domain.
func fromSMI(v mib.Value) Value {
	switch v.Kind {
	case mib.KindNull:
		return nil
	case mib.KindInteger:
		return v.Int
	case mib.KindOctetString:
		return string(v.Bytes)
	case mib.KindOID:
		return v.OID.String()
	case mib.KindIPAddress:
		return v.String()
	default:
		return int64(v.Uint)
	}
}

// toSMI converts a computed value back to an SMI value for v-mib
// exposure.
func toSMI(v Value) mib.Value {
	switch x := v.(type) {
	case nil:
		return mib.Null()
	case bool:
		if x {
			return mib.Int(1)
		}
		return mib.Int(0)
	case int64:
		return mib.Int(x)
	case float64:
		// SMI has no float; v-mib objects publish fixed-point micro
		// units, as period MIBs did.
		return mib.Int(int64(x * 1e6))
	case string:
		return mib.Str(x)
	default:
		return mib.Str(fmt.Sprintf("%v", x))
	}
}
