package vdl_test

import (
	"fmt"
	"time"

	"mbd/internal/mib"
	"mbd/internal/vdl"
)

// ExampleMCVA shows defining and querying a view over a live MIB.
func ExampleMCVA() {
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "r1", Interfaces: 2, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	dev.Advance(10 * time.Second)

	mcva := vdl.NewMCVA(dev.Tree(), vdl.MIB2())
	if _, err := mcva.Define(`view up {
  from ifTable;
  select ifIndex, ifDescr;
  where ifOperStatus == 1;
}`); err != nil {
		fmt.Println(err)
		return
	}
	res, err := mcva.Query("up")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range res.Rows {
		fmt.Printf("%v %v\n", r.Cells[0], r.Cells[1])
	}
	// Output:
	// 1 eth0
	// 2 eth1
}

// ExampleRenderSMI contrasts a five-line VDL view with its verbose
// SMI-extension equivalent.
func ExampleRenderSMI() {
	v, _ := vdl.Parse(`view busy {
  from ifTable;
  select ifIndex, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1;
}`)
	smi := vdl.RenderSMI(v, 424242)
	fmt.Printf("VDL: %d lines, SMI-style: %d lines\n", vdl.SpecLines(v.Source), vdl.SpecLines(smi))
	// Output: VDL: 5 lines, SMI-style: 40 lines
}
