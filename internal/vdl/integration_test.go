package vdl_test

// These integration tests import mbd and snmp, which themselves depend
// on vdl; they live in the external test package to avoid an import
// cycle in the test binary.

import (
	"context"
	"testing"
	"time"

	"mbd/internal/mbd"
	"mbd/internal/mib"
	"mbd/internal/snmp"
	. "mbd/internal/vdl"
)

func integrationDevice(t *testing.T) *mib.Device {
	t.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "view-dev", Interfaces: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(mib.LoadProfile{Utilization: 0.4, BroadcastFraction: 0.05, ErrorRate: 0.01, CollisionRate: 0.02})
	dev.Advance(30 * time.Second)
	return dev
}

func TestVMIBExposure(t *testing.T) {
	dev := integrationDevice(t)
	m := NewMCVA(dev.Tree(), MIB2())
	if _, err := m.Define(`view ifat { from ifTable; select ifIndex, ifInOctets; where ifOperStatus == 1; }`); err != nil {
		t.Fatal(err)
	}
	// Mount the v-mib into the same tree and read it over real SNMP.
	if err := dev.Tree().Mount(OIDViews, m.Handler()); err != nil {
		t.Fatal(err)
	}
	agent := snmp.NewAgent(dev.Tree(), "public")
	c := snmp.NewClient(snmp.AgentTripper(agent), "public")

	// view 1, column 1 (ifIndex), row 2 → 2.
	vbs, err := c.Get(context.Background(), OIDViews.Append(1, 1, 2))
	if err != nil || vbs[0].Value.Int != 2 {
		t.Fatalf("v-mib get = %v, %v", vbs, err)
	}
	// Walking the v-mib enumerates 2 columns × 3 rows.
	n, err := c.Walk(context.Background(), OIDViews, func(snmp.VarBind) bool { return true })
	if err != nil || n != 6 {
		t.Fatalf("v-mib walk = %d, %v", n, err)
	}
	// The view is live: downing an interface shrinks it.
	if err := dev.SetInterfaceStatus(3, mib.IfStatusDown); err != nil {
		t.Fatal(err)
	}
	n, _ = c.Walk(context.Background(), OIDViews, func(snmp.VarBind) bool { return true })
	if n != 4 {
		t.Fatalf("v-mib walk after fault = %d, want 4", n)
	}
}

func TestMCVABindingsFromDelegatedAgent(t *testing.T) {
	dev := integrationDevice(t)
	m := NewMCVA(dev.Tree(), MIB2())
	srv, err := mbd.New(mbd.Config{Device: dev, ExtraBindings: m.Bindings()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	src := `
func main() {
	viewDefine("view v1 { from ifTable; select ifIndex; where ifOperStatus == 1; }");
	var rows = viewQuery("v1");
	var id = viewSnapshot("v1");
	var snap = snapshotRows(id);
	var dropped = snapshotDrop(id);
	return sprintf("%d|%d|%v", len(rows), len(snap), dropped);
}`
	if err := srv.Process().Delegate("mgr", "viewer", "dpl", src); err != nil {
		t.Fatal(err)
	}
	d, err := srv.Process().Instantiate("mgr", "viewer", "main")
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Wait(context.Background())
	if err != nil || v != "3|3|true" {
		t.Fatalf("agent result = %v, %v", v, err)
	}
}
