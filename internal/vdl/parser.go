package vdl

import (
	"fmt"

	"mbd/internal/dpl"
)

// The VDL parser reuses the DPL lexer (the token inventory is
// identical) with its own grammar on top.

// ViewDef is a parsed view definition.
type ViewDef struct {
	Name   string
	From   TableRef
	Join   *JoinClause
	Select []SelectItem
	Where  Expr // nil = no filter
	// Source preserves the original text for spec-economy metrics.
	Source string
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// JoinClause is an equi-join with a second table.
type JoinClause struct {
	Right    TableRef
	LeftCol  ColRef
	RightCol ColRef
}

// SelectItem is one output column.
type SelectItem struct {
	Expr Expr
	Name string
}

// Expr is a view expression node.
type Expr interface{ exprNode() }

// ColRef references a column, optionally alias-qualified.
type ColRef struct {
	Alias string // empty = unqualified
	Col   string
}

// Lit is a literal (int64, float64, string, or bool).
type Lit struct{ V Value }

// Bin is a binary operation; Op is a dpl token kind.
type Bin struct {
	Op   dpl.TokenKind
	L, R Expr
}

// Un is unary minus or not.
type Un struct {
	Op dpl.TokenKind
	X  Expr
}

// Agg is an aggregate call: count, sum, avg, min, max.
type Agg struct {
	Fn string
	X  Expr // nil for count()
}

func (ColRef) exprNode() {}
func (Lit) exprNode()    {}
func (Bin) exprNode()    {}
func (Un) exprNode()     {}
func (Agg) exprNode()    {}

type vparser struct {
	toks []dpl.Token
	pos  int
	src  string
}

// Parse parses one view definition.
func Parse(src string) (*ViewDef, error) {
	toks, err := dpl.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("vdl: %w", err)
	}
	p := &vparser{toks: toks, src: src}
	v, err := p.view()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != dpl.TokEOF {
		return nil, p.errf("trailing input after view definition")
	}
	return v, nil
}

// ParseAll parses a file of view definitions.
func ParseAll(src string) ([]*ViewDef, error) {
	toks, err := dpl.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("vdl: %w", err)
	}
	p := &vparser{toks: toks, src: src}
	var out []*ViewDef
	for p.cur().Kind != dpl.TokEOF {
		v, err := p.view()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (p *vparser) cur() dpl.Token { return p.toks[p.pos] }

func (p *vparser) advance() dpl.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *vparser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("vdl: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *vparser) keyword(word string) error {
	t := p.cur()
	if t.Kind != dpl.TokIdent || t.Text != word {
		return p.errf("expected %q, found %q", word, t.Text)
	}
	p.advance()
	return nil
}

func (p *vparser) ident() (string, error) {
	t := p.cur()
	if t.Kind != dpl.TokIdent {
		return "", p.errf("expected identifier, found %s", t.Kind)
	}
	p.advance()
	return t.Text, nil
}

func (p *vparser) expect(k dpl.TokenKind) error {
	if p.cur().Kind != k {
		return p.errf("expected %s, found %s", k, p.cur().Kind)
	}
	p.advance()
	return nil
}

func (p *vparser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.cur().Kind == dpl.TokIdent && p.cur().Text == "as" {
		p.advance()
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	}
	return ref, nil
}

func (p *vparser) view() (*ViewDef, error) {
	if err := p.keyword("view"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(dpl.TokLBrace); err != nil {
		return nil, err
	}
	v := &ViewDef{Name: name, Source: p.src}

	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	if v.From, err = p.tableRef(); err != nil {
		return nil, err
	}
	if p.cur().Kind == dpl.TokIdent && p.cur().Text == "join" {
		p.advance()
		j := &JoinClause{}
		if j.Right, err = p.tableRef(); err != nil {
			return nil, err
		}
		if err := p.keyword("on"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect(dpl.TokEq); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		j.LeftCol, j.RightCol = left, right
		v.Join = j
	}
	if err := p.expect(dpl.TokSemicolon); err != nil {
		return nil, err
	}

	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e, Name: defaultName(e, len(v.Select))}
		if p.cur().Kind == dpl.TokIdent && p.cur().Text == "as" {
			p.advance()
			if item.Name, err = p.ident(); err != nil {
				return nil, err
			}
		}
		v.Select = append(v.Select, item)
		if p.cur().Kind == dpl.TokComma {
			p.advance()
			continue
		}
		break
	}
	if err := p.expect(dpl.TokSemicolon); err != nil {
		return nil, err
	}

	if p.cur().Kind == dpl.TokIdent && p.cur().Text == "where" {
		p.advance()
		if v.Where, err = p.expr(); err != nil {
			return nil, err
		}
		if err := p.expect(dpl.TokSemicolon); err != nil {
			return nil, err
		}
	}
	if err := p.expect(dpl.TokRBrace); err != nil {
		return nil, err
	}
	return v, nil
}

func defaultName(e Expr, i int) string {
	if c, ok := e.(ColRef); ok {
		return c.Col
	}
	if a, ok := e.(Agg); ok {
		return a.Fn
	}
	return fmt.Sprintf("col%d", i+1)
}

func (p *vparser) colRef() (ColRef, error) {
	name, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	// alias.col is lexed as ident "." would fail — DPL has no dot token,
	// so qualification uses alias:col.
	if p.cur().Kind == dpl.TokColon {
		p.advance()
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Alias: name, Col: col}, nil
	}
	return ColRef{Col: name}, nil
}

// Expression grammar mirrors DPL's precedence.

func (p *vparser) expr() (Expr, error) { return p.orExpr() }

func (p *vparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == dpl.TokOrOr {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: dpl.TokOrOr, L: l, R: r}
	}
	return l, nil
}

func (p *vparser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == dpl.TokAndAnd {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: dpl.TokAndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *vparser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		switch k {
		case dpl.TokEq, dpl.TokNe, dpl.TokLt, dpl.TokLe, dpl.TokGt, dpl.TokGe:
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: k, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *vparser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == dpl.TokPlus || p.cur().Kind == dpl.TokMinus {
		k := p.advance().Kind
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: k, L: l, R: r}
	}
	return l, nil
}

func (p *vparser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == dpl.TokStar || p.cur().Kind == dpl.TokSlash || p.cur().Kind == dpl.TokPercent {
		k := p.advance().Kind
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: k, L: l, R: r}
	}
	return l, nil
}

func (p *vparser) unaryExpr() (Expr, error) {
	switch p.cur().Kind {
	case dpl.TokMinus, dpl.TokBang:
		k := p.advance().Kind
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Un{Op: k, X: x}, nil
	}
	return p.primary()
}

var aggFns = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *vparser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case dpl.TokInt:
		p.advance()
		var v int64
		for _, c := range t.Text {
			v = v*10 + int64(c-'0')
		}
		return Lit{V: v}, nil
	case dpl.TokFloat:
		p.advance()
		var f float64
		_, err := fmt.Sscanf(t.Text, "%g", &f)
		if err != nil {
			return nil, p.errf("bad float %q", t.Text)
		}
		return Lit{V: f}, nil
	case dpl.TokString:
		p.advance()
		return Lit{V: t.Text}, nil
	case dpl.TokTrue:
		p.advance()
		return Lit{V: true}, nil
	case dpl.TokFalse:
		p.advance()
		return Lit{V: false}, nil
	case dpl.TokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(dpl.TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case dpl.TokIdent:
		if aggFns[t.Text] && p.toks[p.pos+1].Kind == dpl.TokLParen {
			fn := t.Text
			p.advance()
			p.advance() // (
			agg := Agg{Fn: fn}
			if p.cur().Kind != dpl.TokRParen {
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				agg.X = x
			} else if fn != "count" {
				return nil, p.errf("%s() needs an argument", fn)
			}
			if err := p.expect(dpl.TokRParen); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return p.colRef()
	default:
		return nil, p.errf("unexpected %s in expression", t.Kind)
	}
}
