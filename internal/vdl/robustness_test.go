package vdl

import (
	"math/rand"
	"strings"
	"testing"
)

// View definitions also arrive from the network; the parser must reject
// anything malformed without panicking.

func TestVDLParseNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		n := r.Intn(120)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", b, p)
				}
			}()
			_, _ = Parse(string(b))
			_, _ = ParseAll(string(b))
		}()
	}
}

func TestVDLParseNeverPanicsOnTokenSoup(t *testing.T) {
	tokens := []string{
		"view", "from", "select", "where", "join", "on", "as",
		"count", "sum", "avg", "min", "max", "ifTable", "ifIndex", "r", "i",
		"42", "1.5", `"s"`, "{", "}", "(", ")", ",", ";", ":", "==", "!=",
		"<", ">", "+", "-", "*", "/", "%", "&&", "||", "!", "true", "false",
	}
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 2000; i++ {
		var b strings.Builder
		n := r.Intn(30)
		for j := 0; j < n; j++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", src, p)
				}
			}()
			if v, err := Parse(src); err == nil {
				// Whatever parsed must also render without panicking.
				_ = RenderSMI(v, 1)
				for _, s := range v.Select {
					_ = RenderExpr(s.Expr)
				}
			}
		}()
	}
}
