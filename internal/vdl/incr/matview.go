package incr

import (
	"fmt"
	"sort"
	"strconv"

	"mbd/internal/vdl"
)

// matview is one incrementally-maintained view: delta operators over
// the shared base-table mirrors keep its output state current with
// O(delta) work per MIB write, and result() renders the evaluator-
// order Result on demand.
type matview struct {
	def   *vdl.ViewDef
	left  *baseTable
	right *baseTable // nil unless join

	aggregate bool
	selfJoin  bool // both sides range over the same table

	// broken marks delta state invalid after an evaluation error;
	// needRebuild requests a full recompute (overflow resync, self-join
	// change). Both are repaired by rebuild() at the next query.
	broken      bool
	needRebuild bool
	err         error

	// outRows maps an env key (row key, or leftKey\x00rightKey for
	// joins) to its evaluated select cells — only envs that matched the
	// join and passed the where clause are present.
	outRows map[string][]vdl.Value

	// Join index maps: per-key row sets on both sides, plus each row's
	// current join key, so one row's delta touches only its match set.
	leftKeyOf  map[string]string
	rightKeyOf map[string]string
	leftByKey  map[string]map[string]struct{}
	rightByKey map[string]map[string]struct{}

	// Aggregate state: the flattened Agg nodes in select-traversal
	// order, one accumulator each, and the per-kept-env input values
	// needed to retract.
	aggs []vdl.Agg
	accs []*aggAcc
	kept map[string][]vdl.Value

	cached     *vdl.Result
	recomputes uint64
}

func newMatview(def *vdl.ViewDef, left, right *baseTable) *matview {
	mv := &matview{def: def, left: left, right: right}
	mv.selfJoin = right != nil && right == left
	for _, s := range def.Select {
		if vdl.HasAgg(s.Expr) {
			mv.aggregate = true
		}
	}
	if mv.aggregate {
		for _, s := range def.Select {
			mv.aggs = collectAggs(s.Expr, mv.aggs)
		}
	}
	mv.reset()
	return mv
}

// collectAggs flattens aggregate nodes in evaluation-traversal order
// (Bin left before right, then Un operand), matching evalClean.
func collectAggs(e vdl.Expr, out []vdl.Agg) []vdl.Agg {
	switch n := e.(type) {
	case vdl.Agg:
		return append(out, n)
	case vdl.Bin:
		return collectAggs(n.R, collectAggs(n.L, out))
	case vdl.Un:
		return collectAggs(n.X, out)
	}
	return out
}

// reset clears all maintained state.
func (mv *matview) reset() {
	mv.outRows = make(map[string][]vdl.Value)
	mv.leftKeyOf = make(map[string]string)
	mv.rightKeyOf = make(map[string]string)
	mv.leftByKey = make(map[string]map[string]struct{})
	mv.rightByKey = make(map[string]map[string]struct{})
	mv.kept = make(map[string][]vdl.Value)
	mv.accs = mv.accs[:0]
	for range mv.aggs {
		mv.accs = append(mv.accs, &aggAcc{})
	}
	mv.cached = nil
	mv.broken = false
	mv.err = nil
}

// fail marks the view's delta state invalid; the next query repairs it
// with a counted full recompute.
func (mv *matview) fail(err error) {
	mv.broken = true
	mv.err = err
}

// joinKey renders a join value as a map key with exactly looseEqual's
// equivalence: numeric values (int64/float64) collapse through float64,
// everything else is typed verbatim.
func joinKey(v vdl.Value) string {
	switch x := v.(type) {
	case nil:
		return "~"
	case bool:
		if x {
			return "b1"
		}
		return "b0"
	case int64:
		return "n" + strconv.FormatFloat(float64(x), 'g', -1, 64)
	case float64:
		return "n" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s" + x
	default:
		return fmt.Sprintf("v%v", x)
	}
}

func pairKey(lk, rk string) string { return lk + "\x00" + rk }

// rowDelta folds one base-row change (old or new may be nil for
// insert/delete) into the view state. The mirror already holds new.
func (mv *matview) rowDelta(side int, old, new *brow) {
	if mv.broken || mv.needRebuild {
		return
	}
	mv.cached = nil
	if mv.selfJoin || side < 0 {
		// A self-join delta would touch both sides at once; decline and
		// recompute at the next read.
		mv.needRebuild = true
		return
	}
	switch {
	case mv.def.Join == nil:
		mv.soloDelta(old, new)
	case side == 0:
		mv.leftDelta(old, new)
	default:
		mv.rightDelta(old, new)
	}
}

func rowKey(old, new *brow) string {
	if old != nil {
		return old.key
	}
	return new.key
}

// soloDelta maintains a single-table view: re-filter and re-project
// just the changed row.
func (mv *matview) soloDelta(old, new *brow) {
	key := rowKey(old, new)
	mv.removeEnv(key)
	if new == nil {
		return
	}
	env := vdl.NewRowEnv()
	env.Bind(mv.def.From.Alias, new.cells)
	mv.addEnv(key, env)
}

// leftDelta maintains the from-side of a join: drop the row's current
// pairs via the per-key index, then re-key and re-pair against the
// right side's match set only.
func (mv *matview) leftDelta(old, new *brow) {
	key := rowKey(old, new)
	if jk, ok := mv.leftKeyOf[key]; ok {
		for rk := range mv.rightByKey[jk] {
			mv.removeEnv(pairKey(key, rk))
		}
		mv.dropSide(mv.leftByKey, mv.leftKeyOf, key, jk)
	}
	if new == nil {
		return
	}
	env := vdl.NewRowEnv()
	env.Bind(mv.def.From.Alias, new.cells)
	v, err := env.Lookup(mv.def.Join.LeftCol)
	if err != nil {
		mv.fail(err)
		return
	}
	jk := joinKey(v)
	mv.addSide(mv.leftByKey, mv.leftKeyOf, key, jk)
	for rk := range mv.rightByKey[jk] {
		mv.addPair(key, rk)
	}
}

// rightDelta is leftDelta's mirror image for the joined table.
func (mv *matview) rightDelta(old, new *brow) {
	key := rowKey(old, new)
	if jk, ok := mv.rightKeyOf[key]; ok {
		for lk := range mv.leftByKey[jk] {
			mv.removeEnv(pairKey(lk, key))
		}
		mv.dropSide(mv.rightByKey, mv.rightKeyOf, key, jk)
	}
	if new == nil {
		return
	}
	env := vdl.NewRowEnv()
	env.Bind(mv.def.Join.Right.Alias, new.cells)
	v, err := env.Lookup(mv.def.Join.RightCol)
	if err != nil {
		mv.fail(err)
		return
	}
	jk := joinKey(v)
	mv.addSide(mv.rightByKey, mv.rightKeyOf, key, jk)
	for lk := range mv.leftByKey[jk] {
		mv.addPair(lk, key)
	}
}

func (mv *matview) addSide(byKey map[string]map[string]struct{}, keyOf map[string]string, row, jk string) {
	keyOf[row] = jk
	set := byKey[jk]
	if set == nil {
		set = make(map[string]struct{})
		byKey[jk] = set
	}
	set[row] = struct{}{}
}

func (mv *matview) dropSide(byKey map[string]map[string]struct{}, keyOf map[string]string, row, jk string) {
	delete(keyOf, row)
	if set := byKey[jk]; set != nil {
		delete(set, row)
		if len(set) == 0 {
			delete(byKey, jk)
		}
	}
}

// addPair evaluates one joined row pair from the current mirrors.
func (mv *matview) addPair(lk, rk string) {
	lrow, rrow := mv.left.rows[lk], mv.right.rows[rk]
	if lrow == nil || rrow == nil {
		return
	}
	env := vdl.NewRowEnv()
	env.Bind(mv.def.From.Alias, lrow.cells)
	env.Bind(mv.def.Join.Right.Alias, rrow.cells)
	mv.addEnv(pairKey(lk, rk), env)
}

// addEnv applies the where clause and either projects the row into
// outRows or folds it into the aggregate accumulators.
func (mv *matview) addEnv(envKey string, env *vdl.Env) {
	if mv.def.Where != nil {
		cond, err := vdl.EvalExpr(mv.def.Where, env)
		if err != nil {
			mv.fail(err)
			return
		}
		if !vdl.Truthy(cond) {
			return
		}
	}
	if mv.aggregate {
		vals := make([]vdl.Value, len(mv.aggs))
		for i, ag := range mv.aggs {
			if ag.Fn == "count" {
				continue
			}
			v, err := vdl.EvalExpr(ag.X, env)
			if err != nil {
				mv.fail(err)
				return
			}
			vals[i] = v
		}
		for i := range mv.accs {
			mv.accs[i].add(mv.aggs[i], vals[i])
		}
		mv.kept[envKey] = vals
		return
	}
	cells := make([]vdl.Value, len(mv.def.Select))
	for i, s := range mv.def.Select {
		v, err := vdl.EvalExpr(s.Expr, env)
		if err != nil {
			mv.fail(err)
			return
		}
		cells[i] = v
	}
	mv.outRows[envKey] = cells
}

// removeEnv retracts a previously-kept env, if it was kept.
func (mv *matview) removeEnv(envKey string) {
	if mv.aggregate {
		vals, ok := mv.kept[envKey]
		if !ok {
			return
		}
		for i := range mv.accs {
			mv.accs[i].retract(mv.aggs[i], vals[i])
		}
		delete(mv.kept, envKey)
		return
	}
	delete(mv.outRows, envKey)
}

// rebuild recomputes the whole view state from the current mirrors.
func (mv *matview) rebuild() error {
	mv.reset()
	mv.needRebuild = false
	if mv.def.Join != nil {
		for rk, rrow := range mv.right.rows {
			env := vdl.NewRowEnv()
			env.Bind(mv.def.Join.Right.Alias, rrow.cells)
			v, err := env.Lookup(mv.def.Join.RightCol)
			if err != nil {
				mv.fail(err)
				return err
			}
			mv.addSide(mv.rightByKey, mv.rightKeyOf, rk, joinKey(v))
		}
		for lk, lrow := range mv.left.rows {
			env := vdl.NewRowEnv()
			env.Bind(mv.def.From.Alias, lrow.cells)
			v, err := env.Lookup(mv.def.Join.LeftCol)
			if err != nil {
				mv.fail(err)
				return err
			}
			jk := joinKey(v)
			mv.addSide(mv.leftByKey, mv.leftKeyOf, lk, jk)
			for rk := range mv.rightByKey[jk] {
				mv.addPair(lk, rk)
				if mv.broken {
					return mv.err
				}
			}
		}
	} else {
		for lk, lrow := range mv.left.rows {
			env := vdl.NewRowEnv()
			env.Bind(mv.def.From.Alias, lrow.cells)
			mv.addEnv(lk, env)
			if mv.broken {
				return mv.err
			}
		}
	}
	if mv.broken {
		return mv.err
	}
	return nil
}

// result renders the maintained state as a Result in the exact order a
// from-scratch Eval would produce.
func (mv *matview) result() (*vdl.Result, error) {
	if mv.cached != nil {
		return mv.cached, nil
	}
	res := &vdl.Result{View: mv.def.Name}
	for _, s := range mv.def.Select {
		res.Columns = append(res.Columns, s.Name)
	}
	res.BaseRows = len(mv.left.rows)
	if mv.right != nil {
		res.BaseRows += len(mv.right.rows)
	}
	switch {
	case mv.aggregate:
		cells, err := mv.aggCells()
		if err != nil {
			return nil, err
		}
		res.Rows = []vdl.Row{{Cells: cells}}
	case mv.def.Join == nil:
		for _, lk := range mv.left.orderKeys() {
			if cells, ok := mv.outRows[lk]; ok {
				res.Rows = append(res.Rows, vdl.Row{Index: mv.left.rows[lk].index, Cells: cells})
			}
		}
	default:
		for _, lk := range mv.left.orderKeys() {
			jk, ok := mv.leftKeyOf[lk]
			if !ok {
				continue
			}
			for _, rk := range mv.matchesInOrder(jk) {
				if cells, ok := mv.outRows[pairKey(lk, rk)]; ok {
					res.Rows = append(res.Rows, vdl.Row{Index: mv.left.rows[lk].index, Cells: cells})
				}
			}
		}
	}
	mv.cached = res
	return res, nil
}

// matchesInOrder returns the right-side rows matching jk sorted in the
// right table's materialize order.
func (mv *matview) matchesInOrder(jk string) []string {
	set := mv.rightByKey[jk]
	if len(set) == 0 {
		return nil
	}
	pos := make(map[string]int, len(mv.right.rows))
	for i, rk := range mv.right.orderKeys() {
		pos[rk] = i
	}
	out := make([]string, 0, len(set))
	for rk := range set {
		out = append(out, rk)
	}
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}

// aggCells computes the single aggregate result row: from the exact
// accumulators when every aggregate is still invertible, otherwise by
// recombining over the kept envs in evaluator order (the
// decline-and-recombine path for Min/Max and float accumulation).
func (mv *matview) aggCells() ([]vdl.Value, error) {
	clean := true
	for _, acc := range mv.accs {
		if acc.needRecombine() {
			clean = false
			break
		}
	}
	cells := make([]vdl.Value, len(mv.def.Select))
	if clean {
		i := 0
		for j, s := range mv.def.Select {
			v, err := mv.evalClean(s.Expr, &i)
			if err != nil {
				return nil, err
			}
			cells[j] = v
		}
		return cells, nil
	}
	envs := mv.keptEnvs()
	for j, s := range mv.def.Select {
		v, err := vdl.EvalAggregate(s.Expr, envs)
		if err != nil {
			return nil, err
		}
		cells[j] = v
	}
	return cells, nil
}

// evalClean evaluates a select expression substituting accumulator
// values for aggregate calls, consuming accs in collectAggs order.
func (mv *matview) evalClean(e vdl.Expr, i *int) (vdl.Value, error) {
	switch n := e.(type) {
	case vdl.Agg:
		acc := mv.accs[*i]
		*i++
		return acc.value(n), nil
	case vdl.Bin:
		l, err := mv.evalClean(n.L, i)
		if err != nil {
			return nil, err
		}
		r, err := mv.evalClean(n.R, i)
		if err != nil {
			return nil, err
		}
		return vdl.EvalBinOp(n.Op, l, r)
	case vdl.Un:
		x, err := mv.evalClean(n.X, i)
		if err != nil {
			return nil, err
		}
		return vdl.EvalUnOp(n.Op, x)
	case vdl.Lit:
		return n.V, nil
	case vdl.ColRef:
		return nil, fmt.Errorf("vdl: bare column %q in aggregate select", n.Col)
	default:
		return nil, fmt.Errorf("vdl: unknown expression %T", e)
	}
}

// keptEnvs rebuilds the kept row environments in evaluator order.
func (mv *matview) keptEnvs() []*vdl.Env {
	var envs []*vdl.Env
	if mv.def.Join == nil {
		for _, lk := range mv.left.orderKeys() {
			if _, ok := mv.kept[lk]; !ok {
				continue
			}
			env := vdl.NewRowEnv()
			env.Bind(mv.def.From.Alias, mv.left.rows[lk].cells)
			envs = append(envs, env)
		}
		return envs
	}
	for _, lk := range mv.left.orderKeys() {
		jk, ok := mv.leftKeyOf[lk]
		if !ok {
			continue
		}
		for _, rk := range mv.matchesInOrder(jk) {
			if _, ok := mv.kept[pairKey(lk, rk)]; !ok {
				continue
			}
			env := vdl.NewRowEnv()
			env.Bind(mv.def.From.Alias, mv.left.rows[lk].cells)
			env.Bind(mv.def.Join.Right.Alias, mv.right.rows[rk].cells)
			envs = append(envs, env)
		}
	}
	return envs
}

// aggAcc is one aggregate's add/retract accumulator. Count and integer
// sum/avg are exactly invertible; min/max and float accumulation follow
// the decline-and-recombine pattern (see federation.DeltaCombiner): a
// retraction of the current best, or any non-integer input, declines
// incremental maintenance and defers to a recombine over the kept set.
type aggAcc struct {
	n        int64
	sum      int64 // exact while every input is int64
	approx   bool  // sum/avg saw a non-int64 input
	best     vdl.Value
	declined bool // min/max lost its extremum or saw a non-int64 input
}

func (a *aggAcc) add(ag vdl.Agg, v vdl.Value) {
	a.n++
	switch ag.Fn {
	case "sum", "avg":
		if i, ok := v.(int64); ok {
			if !a.approx {
				a.sum += i
			}
		} else {
			a.approx = true
		}
	case "min", "max":
		if a.declined {
			return
		}
		i, ok := v.(int64)
		if !ok {
			a.declined = true
			a.best = nil
			return
		}
		if a.best == nil {
			a.best = v
			return
		}
		b := a.best.(int64)
		if (ag.Fn == "min" && i < b) || (ag.Fn == "max" && i > b) {
			a.best = v
		}
	}
}

func (a *aggAcc) retract(ag vdl.Agg, v vdl.Value) {
	a.n--
	switch ag.Fn {
	case "sum", "avg":
		if i, ok := v.(int64); ok {
			if !a.approx {
				a.sum -= i
			}
		} else {
			a.approx = true
		}
	case "min", "max":
		if a.declined {
			return
		}
		if a.best != nil && vdl.LooseEqual(v, a.best) {
			a.declined = true
			a.best = nil
		}
	}
}

func (a *aggAcc) needRecombine() bool { return a.approx || a.declined }

// value returns the accumulator's current aggregate value; only valid
// when needRecombine is false. The result types match Eval exactly:
// count is int64, sum/avg are float64 (nil avg over zero rows), min/max
// return the best value (nil over zero rows).
func (a *aggAcc) value(ag vdl.Agg) vdl.Value {
	switch ag.Fn {
	case "count":
		return a.n
	case "sum":
		return float64(a.sum)
	case "avg":
		if a.n == 0 {
			return nil
		}
		return float64(a.sum) / float64(a.n)
	default: // min, max
		if a.n == 0 {
			return nil
		}
		return a.best
	}
}
