package incr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"mbd/internal/mib"
	"mbd/internal/oid"
	"mbd/internal/vdl"
)

func testDevice(t *testing.T) *mib.Device {
	t.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "incr-dev", Interfaces: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(mib.LoadProfile{Utilization: 0.5, BroadcastFraction: 0.05, ErrorRate: 0.01, CollisionRate: 0.02})
	dev.Advance(10 * time.Second)
	return dev
}

// crosscheck asserts that every maintained view's incremental result is
// deeply equal (rows, cells, order, BaseRows) to a from-scratch Eval.
func crosscheck(t *testing.T, a *IncrMCVA, ev *vdl.Evaluator, defs map[string]*vdl.ViewDef) {
	t.Helper()
	for name, def := range defs {
		got, err := a.Query(name)
		if err != nil {
			t.Fatalf("incremental %s: %v", name, err)
		}
		want, err := ev.Eval(def)
		if err != nil {
			t.Fatalf("full %s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("view %s diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

var testViews = []string{
	`view busy {
  from ifTable;
  select ifIndex, ifDescr, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1 && ifInOctets > 0;
}`,
	`view routesByIf {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr, r:ipRouteMetric1;
  where i:ifOperStatus == 1;
}`,
	`view summary {
  from ifTable;
  select count() as n, sum(ifInOctets) as inSum, avg(ifOutOctets) as outAvg,
         min(ifInErrors) as loErr, max(ifInErrors) as hiErr;
  where ifOperStatus == 1;
}`,
	`view conns {
  from tcpConnTable;
  select tcpConnLocalPort, tcpConnRemAddress, tcpConnRemPort;
  where tcpConnState == 5;
}`,
}

func setup(t *testing.T, dev *mib.Device, depth int) (*IncrMCVA, *vdl.Evaluator, map[string]*vdl.ViewDef) {
	t.Helper()
	schema := vdl.MIB2()
	a := New(Config{Tree: dev.Tree(), Schema: schema, QueueDepth: depth})
	t.Cleanup(a.Close)
	defs := make(map[string]*vdl.ViewDef)
	for _, src := range testViews {
		def, err := a.Define(src)
		if err != nil {
			t.Fatal(err)
		}
		defs[def.Name] = def
	}
	return a, vdl.NewEvaluator(dev.Tree(), schema), defs
}

func TestIncrMatchesEvalThroughMutations(t *testing.T) {
	dev := testDevice(t)
	a, ev, defs := setup(t, dev, 0)
	crosscheck(t, a, ev, defs)

	dev.AddRoute([4]byte{192, 168, 1, 0}, 1, 2, [4]byte{10, 0, 0, 254})
	dev.AddRoute([4]byte{192, 168, 2, 0}, 2, 5, [4]byte{10, 0, 0, 253})
	dev.AddRoute([4]byte{192, 168, 3, 0}, 9, 1, [4]byte{10, 0, 0, 252}) // dangling ifIndex
	crosscheck(t, a, ev, defs)

	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{172, 16, 0, 9}, RemPort: 40000})
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80, RemAddr: [4]byte{172, 16, 0, 10}, RemPort: 40001})
	crosscheck(t, a, ev, defs)

	dev.Advance(5 * time.Second) // bulk counter movement on every interface
	crosscheck(t, a, ev, defs)

	if err := dev.SetInterfaceStatus(2, mib.IfStatusDown); err != nil {
		t.Fatal(err)
	}
	crosscheck(t, a, ev, defs)

	dev.DelRoute([4]byte{192, 168, 1, 0})
	dev.CloseConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{172, 16, 0, 9}, RemPort: 40000})
	crosscheck(t, a, ev, defs)

	st := a.Stats()
	if st.DeltasFolded == 0 {
		t.Fatal("no deltas folded")
	}
	if st.Recomputes != 0 {
		t.Fatalf("recomputes = %d, want 0 (no overflow or errors)", st.Recomputes)
	}
	if st.ChangesLost != 0 {
		t.Fatalf("changes lost = %d", st.ChangesLost)
	}
}

// TestRandomizedCrosscheck applies 10k mixed mutations and asserts the
// incremental state stays byte-identical to a full recompute — the
// acceptance crosscheck for the delta operators.
func TestRandomizedCrosscheck(t *testing.T) {
	const mutations = 10000
	dev := testDevice(t)
	a, ev, defs := setup(t, dev, 0)
	rng := rand.New(rand.NewSource(42))

	dests := make([][4]byte, 24)
	for i := range dests {
		dests[i] = [4]byte{10, 1, byte(i), 0}
	}
	conns := make([]mib.ConnID, 24)
	for i := range conns {
		conns[i] = mib.ConnID{
			LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: uint16(1024 + i),
			RemAddr: [4]byte{172, 16, 0, byte(i)}, RemPort: uint16(40000 + i),
		}
	}
	for i := 0; i < mutations; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			dev.AddRoute(dests[rng.Intn(len(dests))], uint32(1+rng.Intn(6)), int64(rng.Intn(10)), [4]byte{10, 0, 0, 254})
		case 3:
			dev.DelRoute(dests[rng.Intn(len(dests))])
		case 4, 5:
			dev.OpenConn(conns[rng.Intn(len(conns))])
		case 6:
			dev.CloseConn(conns[rng.Intn(len(conns))])
		case 7:
			dev.Advance(time.Duration(1+rng.Intn(900)) * time.Millisecond)
		case 8:
			status := mib.IfStatusUp
			if rng.Intn(2) == 0 {
				status = mib.IfStatusDown
			}
			if err := dev.SetInterfaceStatus(uint32(1+rng.Intn(4)), status); err != nil {
				t.Fatal(err)
			}
		case 9:
			// Direct SNMP-style cell write through the tree, exercising
			// the Tree.Set capture path.
			c := conns[rng.Intn(len(conns))]
			o := append(append(oid.OID{}, mib.OIDTCPConnEntry...), mib.TCPConnState,
				uint32(c.LocalAddr[0]), uint32(c.LocalAddr[1]), uint32(c.LocalAddr[2]), uint32(c.LocalAddr[3]),
				uint32(c.LocalPort),
				uint32(c.RemAddr[0]), uint32(c.RemAddr[1]), uint32(c.RemAddr[2]), uint32(c.RemAddr[3]),
				uint32(c.RemPort))
			_ = dev.Tree().Set(o, mib.Int(int64(1+rng.Intn(11))))
		}
		if i%500 == 0 {
			crosscheck(t, a, ev, defs)
		}
	}
	crosscheck(t, a, ev, defs)
	st := a.Stats()
	if st.Recomputes != 0 || st.ChangesLost != 0 {
		t.Fatalf("recomputes=%d lost=%d, want 0/0", st.Recomputes, st.ChangesLost)
	}
	if st.DeltasFolded == 0 {
		t.Fatal("no deltas folded")
	}
	t.Logf("folded %d deltas over %d mutations", st.DeltasFolded, mutations)
}

// TestOverflowFallsBackToRecompute floods a tiny subscription queue and
// asserts the engine resyncs to a correct result, counting recomputes.
func TestOverflowFallsBackToRecompute(t *testing.T) {
	dev := testDevice(t)
	a, ev, defs := setup(t, dev, 2)
	for i := 0; i < 50; i++ {
		dev.AddRoute([4]byte{10, 2, byte(i), 0}, uint32(1+i%4), int64(i), [4]byte{10, 0, 0, 254})
	}
	crosscheck(t, a, ev, defs)
	st := a.Stats()
	if st.ChangesLost == 0 {
		t.Fatal("expected overflow on depth-2 queue")
	}
	if st.Recomputes == 0 {
		t.Fatal("expected counted recomputes after overflow")
	}
}

// TestEmptyTablesAndZeroRowAggregates covers the evaluator edge cases
// on both paths: empty base tables, joins on absent keys, and
// aggregates over zero rows.
func TestEmptyTablesAndZeroRowAggregates(t *testing.T) {
	// A bare tree with empty MemRows-backed tables only.
	tree := &mib.Tree{}
	routes := &mib.MemRows{}
	conns := &mib.MemRows{}
	if err := tree.Mount(mib.OIDIPRouteEntry, mib.NewTable(routes, mib.IPRouteDest, mib.IPRouteIfIndex, mib.IPRouteMetric1)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Mount(mib.OIDTCPConnEntry, mib.NewTable(conns, mib.TCPConnState, mib.TCPConnLocalPort)); err != nil {
		t.Fatal(err)
	}
	routes.Watch(tree.Changes(), mib.OIDIPRouteEntry)
	conns.Watch(tree.Changes(), mib.OIDTCPConnEntry)

	schema := vdl.MIB2()
	a := New(Config{Tree: tree, Schema: schema})
	defer a.Close()
	ev := vdl.NewEvaluator(tree, schema)
	defs := make(map[string]*vdl.ViewDef)
	for _, src := range []string{
		`view emptySel { from ipRouteTable; select ipRouteDest; where ipRouteMetric1 > 0; }`,
		`view emptyJoin {
  from ipRouteTable as r join tcpConnTable as c on r:ipRouteMetric1 == c:tcpConnLocalPort;
  select r:ipRouteDest, c:tcpConnState;
}`,
		`view emptyAgg { from ipRouteTable; select count() as n, sum(ipRouteMetric1) as s, avg(ipRouteMetric1) as a, min(ipRouteMetric1) as lo; }`,
	} {
		def, err := a.Define(src)
		if err != nil {
			t.Fatal(err)
		}
		defs[def.Name] = def
	}
	crosscheck(t, a, ev, defs)

	res, err := a.Query("emptyAgg")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate over zero rows: %d rows, want 1", len(res.Rows))
	}
	if n := res.Rows[0].Cells[0]; n != int64(0) {
		t.Fatalf("count over empty = %v", n)
	}

	// Rows whose join keys never match on the other side.
	routes.Upsert(oid.OID{10, 3, 0, 0}, map[uint32]mib.Value{
		mib.IPRouteDest: mib.IP(10, 3, 0, 0), mib.IPRouteIfIndex: mib.Int(1), mib.IPRouteMetric1: mib.Int(7),
	})
	conns.Upsert(oid.OID{1, 2, 3, 4, 99, 5, 6, 7, 8, 100}, map[uint32]mib.Value{
		mib.TCPConnState: mib.Int(5), mib.TCPConnLocalPort: mib.Int(99),
	})
	crosscheck(t, a, ev, defs)
	if res, err = a.Query("emptyJoin"); err != nil || len(res.Rows) != 0 {
		t.Fatalf("join on absent key: rows=%v err=%v", res.Rows, err)
	}

	// Now make the keys match and confirm the pair appears.
	routes.SetCellValue(oid.OID{10, 3, 0, 0}, mib.IPRouteMetric1, mib.Int(99))
	crosscheck(t, a, ev, defs)
	if res, err = a.Query("emptyJoin"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("join after key match: rows=%v err=%v", res.Rows, err)
	}

	// Empty again after deletions.
	routes.Delete(oid.OID{10, 3, 0, 0})
	conns.Delete(oid.OID{1, 2, 3, 4, 99, 5, 6, 7, 8, 100})
	crosscheck(t, a, ev, defs)
}

// TestMinMaxRetractionRecombines retracts the current extremum and
// checks the decline-and-recombine path reproduces Eval exactly.
func TestMinMaxRetractionRecombines(t *testing.T) {
	dev := testDevice(t)
	schema := vdl.MIB2()
	a := New(Config{Tree: dev.Tree(), Schema: schema})
	defer a.Close()
	ev := vdl.NewEvaluator(dev.Tree(), schema)
	def, err := a.Define(`view metricSpan { from ipRouteTable; select min(ipRouteMetric1) as lo, max(ipRouteMetric1) as hi, count() as n; }`)
	if err != nil {
		t.Fatal(err)
	}
	defs := map[string]*vdl.ViewDef{def.Name: def}
	for i := 0; i < 8; i++ {
		dev.AddRoute([4]byte{10, 4, byte(i), 0}, 1, int64(i), [4]byte{10, 0, 0, 254})
	}
	crosscheck(t, a, ev, defs)
	dev.DelRoute([4]byte{10, 4, 7, 0}) // retract current max
	crosscheck(t, a, ev, defs)
	dev.DelRoute([4]byte{10, 4, 0, 0}) // retract current min
	crosscheck(t, a, ev, defs)
}

// TestBackgroundPump starts the pump goroutine and waits for a change
// to be folded without an explicit Query-side pump.
func TestBackgroundPump(t *testing.T) {
	dev := testDevice(t)
	a, ev, defs := setup(t, dev, 0)
	a.Start()
	defer a.Stop()
	dev.AddRoute([4]byte{10, 5, 0, 0}, 1, 3, [4]byte{10, 0, 0, 254})
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().DeltasFolded == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background pump folded nothing")
		}
		time.Sleep(time.Millisecond)
	}
	crosscheck(t, a, ev, defs)
}

// TestDefineReplacesView redefines a name and checks the old delta
// wiring is gone.
func TestDefineReplacesView(t *testing.T) {
	dev := testDevice(t)
	schema := vdl.MIB2()
	a := New(Config{Tree: dev.Tree(), Schema: schema})
	defer a.Close()
	ev := vdl.NewEvaluator(dev.Tree(), schema)
	if _, err := a.Define(`view v { from ifTable; select ifIndex; }`); err != nil {
		t.Fatal(err)
	}
	def, err := a.Define(`view v { from ifTable; select ifDescr; where ifOperStatus == 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	dev.Advance(time.Second)
	crosscheck(t, a, ev, map[string]*vdl.ViewDef{"v": def})
	if got := a.Views(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("views = %v", got)
	}
}

// TestStatusJSON sanity-checks the management payloads.
func TestStatusJSON(t *testing.T) {
	dev := testDevice(t)
	a, _, _ := setup(t, dev, 0)
	b, err := a.StatusJSON()
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); !strings.Contains(s, `"busy"`) || !strings.Contains(s, `"deltas_folded"`) {
		t.Fatalf("status payload: %s", s)
	}
	q, err := a.QueryJSON("busy")
	if err != nil {
		t.Fatal(err)
	}
	if s := string(q); !strings.Contains(s, `"columns"`) || !strings.Contains(s, `"rows"`) {
		t.Fatalf("query payload: %s", s)
	}
	if _, err := a.QueryJSON("nope"); err == nil {
		t.Fatal("QueryJSON of unknown view succeeded")
	}
}
