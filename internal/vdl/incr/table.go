package incr

import (
	"sort"

	"mbd/internal/mib"
	"mbd/internal/oid"
	"mbd/internal/vdl"
)

// brow is one mirrored base-table row.
type brow struct {
	key   string // index.String(), the map key
	index oid.OID
	cells map[string]vdl.Value // column name → value
}

// colDef pairs a schema column name with its number.
type colDef struct {
	name string
	num  uint32
}

// tableUse records that a view ranges over a table on one side.
type tableUse struct {
	mv   *matview
	side int // 0 = from (left), 1 = join (right)
}

// baseTable is an in-memory mirror of one schema table, maintained
// row-by-row from change-capture events. It is shared by every view
// ranging over the table.
type baseTable struct {
	schema vdl.TableSchema
	cols   []colDef // ascending column number, schema-known only
	rows   map[string]*brow

	// orderCache holds row keys in the evaluator's materialize order
	// (column-major first-seen, which the full Eval walk produces); nil
	// means it must be recomputed. Invalidated on membership or
	// column-presence changes, not on plain value changes.
	orderCache []string

	views []*tableUse
}

func newBaseTable(ts vdl.TableSchema) *baseTable {
	t := &baseTable{schema: ts, rows: make(map[string]*brow)}
	for name, num := range ts.Columns {
		t.cols = append(t.cols, colDef{name: name, num: num})
	}
	sort.Slice(t.cols, func(i, j int) bool { return t.cols[i].num < t.cols[j].num })
	return t
}

// scan walks the live tree and returns a fresh row map for this table.
func (t *baseTable) scan(tree *mib.Tree) map[string]*brow {
	rows := make(map[string]*brow)
	colName := make(map[uint32]string, len(t.cols))
	for _, c := range t.cols {
		colName[c.num] = c.name
	}
	tree.Walk(t.schema.Entry, func(o oid.OID, v mib.Value) bool {
		rel, ok := o.Index(t.schema.Entry)
		if !ok || len(rel) < 2 {
			return true
		}
		name, known := colName[rel[0]]
		if !known {
			return true
		}
		idx := rel[1:]
		key := idx.String()
		r := rows[key]
		if r == nil {
			r = &brow{key: key, index: idx.Clone(), cells: make(map[string]vdl.Value)}
			rows[key] = r
		}
		r.cells[name] = vdl.FromSMI(v)
		return true
	})
	return rows
}

// readRow fetches one row's current cells straight from the tree (one
// Get per schema column — O(columns), independent of table size).
// Returns nil when the row no longer exists.
func (t *baseTable) readRow(tree *mib.Tree, index oid.OID) *brow {
	var cells map[string]vdl.Value
	buf := make(oid.OID, 0, len(t.schema.Entry)+1+len(index))
	for _, c := range t.cols {
		buf = append(append(append(buf[:0], t.schema.Entry...), c.num), index...)
		v, err := tree.Get(buf)
		if err != nil {
			continue
		}
		if cells == nil {
			cells = make(map[string]vdl.Value, len(t.cols))
		}
		cells[c.name] = vdl.FromSMI(v)
	}
	if cells == nil {
		return nil
	}
	return &brow{key: index.String(), index: index.Clone(), cells: cells}
}

// orderKeys returns row keys in the evaluator's materialize order:
// walking columns in ascending number, rows in ascending index order,
// keeping the first occurrence of each row. This reproduces the order
// a full-tree Eval sees, so incrementally-built results are
// byte-identical to recomputed ones.
func (t *baseTable) orderKeys() []string {
	if t.orderCache != nil {
		return t.orderCache
	}
	sorted := make([]*brow, 0, len(t.rows))
	for _, r := range t.rows {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].index.Compare(sorted[j].index) < 0 })
	seen := make(map[string]bool, len(sorted))
	out := make([]string, 0, len(sorted))
	for _, c := range t.cols {
		for _, r := range sorted {
			if seen[r.key] {
				continue
			}
			if _, ok := r.cells[c.name]; ok {
				seen[r.key] = true
				out = append(out, r.key)
			}
		}
	}
	t.orderCache = out
	return out
}

// sameColumns reports whether two rows populate the same column set.
func sameColumns(a, b *brow) bool {
	if len(a.cells) != len(b.cells) {
		return false
	}
	for k := range a.cells {
		if _, ok := b.cells[k]; !ok {
			return false
		}
	}
	return true
}

// sameCells reports whether two rows hold identical values. All values
// in the evaluation domain are comparable (nil, bool, int64, float64,
// string).
func sameCells(a, b *brow) bool {
	if len(a.cells) != len(b.cells) {
		return false
	}
	for k, v := range a.cells {
		w, ok := b.cells[k]
		if !ok || w != v {
			return false
		}
	}
	return true
}
