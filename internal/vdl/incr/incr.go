// Package incr maintains VDL views incrementally. Where the MCVA
// re-evaluates a view's full table scan on every query, the IncrMCVA
// subscribes to the tree's change-capture hub, mirrors each base table
// once, and folds every MIB write into the affected views with
// O(delta) work: selections re-check one row, joins consult per-key
// index maps, and aggregates add/retract with decline-and-recombine
// for the non-invertible cases (min/max retractions, float sums).
// Results are byte-identical to a from-scratch Eval; on subscription
// overflow, evaluation errors, or self-join changes the engine falls
// back to a full recompute, counted in vdl_view_recomputes_total.
package incr

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
	"mbd/internal/vdl"
)

// Config parameterizes an IncrMCVA.
type Config struct {
	Tree   *mib.Tree
	Schema *vdl.Schema
	// QueueDepth bounds the change subscription (default 4096); on
	// overflow the oldest deltas are dropped and the engine resyncs by
	// rescanning every mirror.
	QueueDepth int
	// Obs, when set, registers vdl_deltas_folded_total,
	// vdl_view_recomputes_total and vdl_changes_lost_total.
	Obs *obs.Registry
}

// IncrMCVA is the incremental MIB Computations-of-Views Agent.
type IncrMCVA struct {
	tree *mib.Tree
	ev   *vdl.Evaluator
	sub  *mib.ChangeSub

	mu       sync.Mutex
	schema   *vdl.Schema
	tables   map[string]*baseTable // by table name
	byEntry  map[string][]*baseTable
	views    map[string]*matview
	order    []string
	lostSeen uint64

	folded     atomic.Uint64
	recomputes atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// New builds an IncrMCVA and subscribes it to the tree's change hub.
func New(cfg Config) *IncrMCVA {
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	a := &IncrMCVA{
		tree:    cfg.Tree,
		ev:      vdl.NewEvaluator(cfg.Tree, cfg.Schema),
		sub:     cfg.Tree.Changes().Subscribe(depth),
		schema:  cfg.Schema,
		tables:  make(map[string]*baseTable),
		byEntry: make(map[string][]*baseTable),
		views:   make(map[string]*matview),
	}
	if cfg.Obs != nil {
		cfg.Obs.FuncCounter("vdl_deltas_folded_total",
			"MIB change deltas folded into incrementally-maintained views.", a.folded.Load)
		cfg.Obs.FuncCounter("vdl_view_recomputes_total",
			"Full view recomputes forced by overflow, errors or schema changes.", a.recomputes.Load)
		cfg.Obs.FuncCounter("vdl_changes_lost_total",
			"Change events dropped by the bounded subscription queue.", a.sub.Lost)
	}
	return a
}

// Close detaches the engine from the change hub. Stop any Start()ed
// pump first.
func (a *IncrMCVA) Close() {
	a.Stop()
	a.sub.Close()
}

// Define parses, installs and eagerly materializes a view, replacing
// any previous view of the same name.
func (a *IncrMCVA) Define(src string) (*vdl.ViewDef, error) {
	v, err := vdl.Parse(src)
	if err != nil {
		return nil, err
	}
	return v, a.install(v)
}

// DefineAll installs every view in a multi-view VDL document.
func (a *IncrMCVA) DefineAll(src string) ([]*vdl.ViewDef, error) {
	defs, err := vdl.ParseAll(src)
	if err != nil {
		return nil, err
	}
	for _, v := range defs {
		if err := a.install(v); err != nil {
			return nil, fmt.Errorf("view %s: %w", v.Name, err)
		}
	}
	return defs, nil
}

func (a *IncrMCVA) install(v *vdl.ViewDef) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pumpLocked()
	left, err := a.ensureTableLocked(v.From.Table)
	if err != nil {
		return err
	}
	var right *baseTable
	if v.Join != nil {
		if right, err = a.ensureTableLocked(v.Join.Right.Table); err != nil {
			return err
		}
	}
	mv := newMatview(v, left, right)
	if err := mv.rebuild(); err != nil {
		return err
	}
	if old := a.views[v.Name]; old != nil {
		a.dropUsesLocked(old)
	} else {
		a.order = append(a.order, v.Name)
	}
	a.views[v.Name] = mv
	if mv.selfJoin {
		left.views = append(left.views, &tableUse{mv: mv, side: -1})
	} else {
		left.views = append(left.views, &tableUse{mv: mv, side: 0})
		if right != nil {
			right.views = append(right.views, &tableUse{mv: mv, side: 1})
		}
	}
	return nil
}

// Views lists installed view names in definition order.
func (a *IncrMCVA) Views() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// Query folds any pending deltas and returns the named view's current
// result. Broken views are repaired by a counted full recompute. The
// returned Result is shared and must not be mutated.
func (a *IncrMCVA) Query(name string) (*vdl.Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pumpLocked()
	return a.queryLocked(name)
}

func (a *IncrMCVA) queryLocked(name string) (*vdl.Result, error) {
	mv, ok := a.views[name]
	if !ok {
		return nil, fmt.Errorf("vdl: no view %q", name)
	}
	if mv.broken || mv.needRebuild {
		a.recomputes.Add(1)
		mv.recomputes++
		if err := mv.rebuild(); err != nil {
			return nil, err
		}
	}
	return mv.result()
}

// Pump drains pending change events into the maintained views,
// returning how many row deltas were folded.
func (a *IncrMCVA) Pump() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pumpLocked()
}

func (a *IncrMCVA) pumpLocked() int {
	if lost := a.sub.Lost(); lost != a.lostSeen {
		a.lostSeen = lost
		for {
			if _, ok := a.sub.Next(); !ok {
				break
			}
		}
		a.resyncLocked()
		return 0
	}
	n := 0
	for {
		c, ok := a.sub.Next()
		if !ok {
			return n
		}
		n += a.applyLocked(c)
	}
}

// resyncLocked rescans every mirror and schedules every view for a
// full recompute — the overflow fallback.
func (a *IncrMCVA) resyncLocked() {
	for _, t := range a.tables {
		t.rows = t.scan(a.tree)
		t.orderCache = nil
	}
	for _, mv := range a.views {
		if !mv.broken && !mv.needRebuild {
			mv.needRebuild = true
		}
		mv.cached = nil
	}
}

// applyLocked folds one change event into every table mirroring its
// entry, returning the number of row deltas it produced.
func (a *IncrMCVA) applyLocked(c mib.Change) int {
	tabs := a.byEntry[c.Table.String()]
	if len(tabs) == 0 {
		return 0
	}
	n := 0
	for _, t := range tabs {
		if c.Kind == mib.ChangeReset || len(c.Index) == 0 {
			n += a.diffTableLocked(t)
		} else {
			n += a.refreshRowLocked(t, c.Index)
		}
	}
	return n
}

// refreshRowLocked re-reads one row from the tree and, if it differs
// from the mirror, dispatches the delta to every dependent view.
func (a *IncrMCVA) refreshRowLocked(t *baseTable, index oid.OID) int {
	key := index.String()
	old := t.rows[key]
	cur := t.readRow(a.tree, index)
	if old == nil && cur == nil {
		return 0
	}
	if old != nil && cur != nil && sameCells(old, cur) {
		return 0
	}
	a.applyRowLocked(t, key, old, cur)
	return 1
}

func (a *IncrMCVA) applyRowLocked(t *baseTable, key string, old, cur *brow) {
	if cur != nil {
		t.rows[key] = cur
	} else {
		delete(t.rows, key)
	}
	if old == nil || cur == nil || !sameColumns(old, cur) {
		t.orderCache = nil
	}
	for _, use := range t.views {
		use.mv.cached = nil
		use.mv.rowDelta(use.side, old, cur)
	}
	a.folded.Add(1)
}

// diffTableLocked rescans a whole table (ChangeReset events — e.g. the
// federation rollup, whose 1-based row positions shift on any change)
// and folds the per-row differences.
func (a *IncrMCVA) diffTableLocked(t *baseTable) int {
	fresh := t.scan(a.tree)
	type rowChange struct {
		key      string
		old, cur *brow
	}
	var changes []rowChange
	for key, old := range t.rows {
		cur := fresh[key]
		if cur == nil || !sameCells(old, cur) {
			changes = append(changes, rowChange{key, old, cur})
		}
	}
	for key, cur := range fresh {
		if t.rows[key] == nil {
			changes = append(changes, rowChange{key, nil, cur})
		}
	}
	for _, ch := range changes {
		a.applyRowLocked(t, ch.key, ch.old, ch.cur)
	}
	return len(changes)
}

// ensureTableLocked returns the mirror for a schema table, scanning it
// on first use.
func (a *IncrMCVA) ensureTableLocked(name string) (*baseTable, error) {
	if t, ok := a.tables[name]; ok {
		return t, nil
	}
	ts, ok := a.schema.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("vdl: unknown table %q", name)
	}
	t := newBaseTable(ts)
	t.rows = t.scan(a.tree)
	a.tables[name] = t
	a.byEntry[ts.Entry.String()] = append(a.byEntry[ts.Entry.String()], t)
	return t, nil
}

// dropUsesLocked unlinks a replaced view from its table mirrors.
func (a *IncrMCVA) dropUsesLocked(mv *matview) {
	for _, t := range a.tables {
		kept := t.views[:0]
		for _, use := range t.views {
			if use.mv != mv {
				kept = append(kept, use)
			}
		}
		t.views = kept
	}
}

// Start launches a background pump that folds deltas as they arrive,
// keeping views continuously materialized between queries.
func (a *IncrMCVA) Start() {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	a.stop, a.done = stop, done
	a.mu.Unlock()
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case c := <-a.sub.C():
				a.mu.Lock()
				a.applyLocked(c)
				a.pumpLocked()
				a.mu.Unlock()
			}
		}
	}()
}

// Stop halts the background pump (if running).
func (a *IncrMCVA) Stop() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Stats reports the engine's maintenance counters.
type Stats struct {
	Views        int    `json:"views"`
	DeltasFolded uint64 `json:"deltas_folded"`
	Recomputes   uint64 `json:"recomputes"`
	ChangesLost  uint64 `json:"changes_lost"`
}

// Stats returns current counters.
func (a *IncrMCVA) Stats() Stats {
	a.mu.Lock()
	n := len(a.views)
	a.mu.Unlock()
	return Stats{
		Views:        n,
		DeltasFolded: a.folded.Load(),
		Recomputes:   a.recomputes.Load(),
		ChangesLost:  a.sub.Lost(),
	}
}

// ViewStatus describes one maintained view for management clients.
type ViewStatus struct {
	Name       string   `json:"name"`
	Columns    []string `json:"columns"`
	Rows       int      `json:"rows"`
	BaseRows   int      `json:"base_rows"`
	Recomputes uint64   `json:"recomputes"`
	Error      string   `json:"error,omitempty"`
	Source     string   `json:"source,omitempty"`
}

// Status reports every maintained view after folding pending deltas.
func (a *IncrMCVA) Status() []ViewStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pumpLocked()
	out := make([]ViewStatus, 0, len(a.order))
	for _, name := range a.order {
		mv := a.views[name]
		st := ViewStatus{Name: name, Recomputes: mv.recomputes, Source: mv.def.Source}
		for _, s := range mv.def.Select {
			st.Columns = append(st.Columns, s.Name)
		}
		if res, err := a.queryLocked(name); err != nil {
			st.Error = err.Error()
		} else {
			st.Rows = len(res.Rows)
			st.BaseRows = res.BaseRows
			st.Recomputes = mv.recomputes
		}
		out = append(out, st)
	}
	return out
}

// StatusJSON renders engine status for the RDS view op.
func (a *IncrMCVA) StatusJSON() ([]byte, error) {
	type payload struct {
		Views []ViewStatus `json:"views"`
		Stats Stats        `json:"stats"`
	}
	return json.Marshal(payload{Views: a.Status(), Stats: a.Stats()})
}

// DefineJSON installs a view from VDL source and renders its
// definition for the RDS view op.
func (a *IncrMCVA) DefineJSON(src string) ([]byte, error) {
	v, err := a.Define(src)
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(v.Select))
	for _, s := range v.Select {
		cols = append(cols, s.Name)
	}
	type payload struct {
		Name    string   `json:"name"`
		Columns []string `json:"columns"`
	}
	return json.Marshal(payload{Name: v.Name, Columns: cols})
}

// QueryJSON renders one view's current rows for the RDS view op.
func (a *IncrMCVA) QueryJSON(name string) ([]byte, error) {
	res, err := a.Query(name)
	if err != nil {
		return nil, err
	}
	type payload struct {
		View     string   `json:"view"`
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
		BaseRows int      `json:"base_rows"`
	}
	p := payload{View: res.View, Columns: res.Columns, BaseRows: res.BaseRows, Rows: make([][]any, 0, len(res.Rows))}
	for _, r := range res.Rows {
		cells := make([]any, len(r.Cells))
		copy(cells, r.Cells)
		p.Rows = append(p.Rows, cells)
	}
	return json.Marshal(p)
}
