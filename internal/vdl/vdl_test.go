package vdl

import (
	"strings"
	"testing"
	"time"

	"mbd/internal/mib"
	"mbd/internal/obs"
)

func testDevice(t *testing.T) *mib.Device {
	t.Helper()
	dev, err := mib.NewDevice(mib.DeviceConfig{Name: "view-dev", Interfaces: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(mib.LoadProfile{Utilization: 0.4, BroadcastFraction: 0.05, ErrorRate: 0.01, CollisionRate: 0.02})
	dev.Advance(30 * time.Second)
	dev.AddRoute([4]byte{192, 168, 1, 0}, 1, 2, [4]byte{10, 0, 0, 254})
	dev.AddRoute([4]byte{192, 168, 2, 0}, 2, 5, [4]byte{10, 0, 0, 253})
	dev.AddRoute([4]byte{192, 168, 3, 0}, 9, 1, [4]byte{10, 0, 0, 252}) // dangling ifIndex
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 23, RemAddr: [4]byte{172, 16, 0, 9}, RemPort: 40000})
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 80, RemAddr: [4]byte{172, 16, 0, 10}, RemPort: 40001})
	return dev
}

func TestParseMinimalView(t *testing.T) {
	v, err := Parse(`view up { from ifTable; select ifDescr, ifInOctets; where ifOperStatus == 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "up" || v.From.Table != "ifTable" || len(v.Select) != 2 || v.Where == nil {
		t.Fatalf("view = %+v", v)
	}
	if v.Select[0].Name != "ifDescr" {
		t.Fatalf("default name = %q", v.Select[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`view x { select a; }`,                  // missing from
		`view x { from t select a; }`,           // missing semicolon
		`view x { from t; }`,                    // missing select
		`view x { from t; select ; }`,           // empty select
		`view x { from t; select a; where ; }`,  // empty where
		`view x { from t; select sum(); }`,      // sum needs arg
		`view { from t; select a; }`,            // missing name
		`view x { from t join u; select a; }`,   // join without on
		`view x { from t; select a; } trailing`, // trailing tokens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestProjectionAndSelection(t *testing.T) {
	dev := testDevice(t)
	ev := NewEvaluator(dev.Tree(), MIB2())
	v, err := Parse(`view busy {
  from ifTable;
  select ifIndex, ifDescr, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1 && ifInOctets > 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 interfaces", len(res.Rows))
	}
	if res.Columns[2] != "total" {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, r := range res.Rows {
		idx := r.Cells[0].(int64)
		descr := r.Cells[1].(string)
		total := r.Cells[2].(int64)
		if descr == "" || total <= 0 {
			t.Fatalf("row %d: %v", idx, r.Cells)
		}
	}
	// Selection: take down one interface and re-evaluate.
	if err := dev.SetInterfaceStatus(2, mib.IfStatusDown); err != nil {
		t.Fatal(err)
	}
	res, err = ev.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows after fault = %d, want 2", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	dev := testDevice(t)
	ev := NewEvaluator(dev.Tree(), MIB2())
	v, err := Parse(`view stats {
  from ifTable;
  select count() as n, sum(ifInOctets) as inSum, avg(ifInOctets) as inAvg,
         min(ifIndex) as lo, max(ifIndex) as hi;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	n := r.Cells[0].(int64)
	sum := r.Cells[1].(float64)
	avg := r.Cells[2].(float64)
	if n != 3 || sum <= 0 || avg != sum/3 {
		t.Fatalf("aggregates = %v", r.Cells)
	}
	if r.Cells[3].(int64) != 1 || r.Cells[4].(int64) != 3 {
		t.Fatalf("min/max = %v %v", r.Cells[3], r.Cells[4])
	}
}

func TestAggregateArithmetic(t *testing.T) {
	dev := testDevice(t)
	ev := NewEvaluator(dev.Tree(), MIB2())
	v, err := Parse(`view ratio { from ifTable; select sum(ifInErrors) / sum(ifInUcastPkts) as errRatio; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := res.Rows[0].Cells[0].(float64)
	if !ok || ratio <= 0 || ratio > 0.1 {
		t.Fatalf("error ratio = %v", res.Rows[0].Cells[0])
	}
}

func TestJoinRouteWithInterface(t *testing.T) {
	// The dissertation's motivating example: "resolution of routing
	// problems typically involves correlation of routing ... and other
	// configuration tables".
	dev := testDevice(t)
	ev := NewEvaluator(dev.Tree(), MIB2())
	v, err := Parse(`view routesByIf {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr, r:ipRouteMetric1, i:ifOperStatus;
  where r:ipRouteMetric1 < 10;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	// 3 routes, but one points at ifIndex 9 which has no interface row.
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !strings.HasPrefix(r.Cells[0].(string), "192.168.") || !strings.HasPrefix(r.Cells[1].(string), "eth") {
			t.Fatalf("row = %v", r.Cells)
		}
	}
	if res.BaseRows != 3+3 {
		t.Fatalf("base rows scanned = %d", res.BaseRows)
	}
}

func TestEvalErrors(t *testing.T) {
	dev := testDevice(t)
	ev := NewEvaluator(dev.Tree(), MIB2())
	cases := []string{
		`view x { from noSuchTable; select a; }`,
		`view x { from ifTable; select noSuchColumn; }`,
		`view x { from ifTable; select ghost:ifIndex; }`,
		`view x { from ifTable; select ifIndex; where count() > 1; }`,
		`view x { from ifTable; select ifDescr + 1; }`,
		`view x { from ifTable; select ifIndex / 0; }`,
		`view x { from ifTable; select sum(ifDescr); }`,
		`view x { from ifTable; select ifIndex, count(); }`, // bare col in aggregate
	}
	for _, src := range cases {
		v, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := ev.Eval(v); err == nil {
			t.Errorf("Eval(%q) succeeded", src)
		}
	}
}

func TestMCVADefineQuerySnapshot(t *testing.T) {
	dev := testDevice(t)
	m := NewMCVA(dev.Tree(), MIB2())
	if _, err := m.Define(`view conns { from tcpConnTable; select tcpConnRemAddress, tcpConnRemPort; }`); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query("conns")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("query = %+v, %v", res, err)
	}
	id, err := m.Snapshot("conns")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the base table; snapshot must not move, live query must.
	dev.OpenConn(mib.ConnID{LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: 25, RemAddr: [4]byte{1, 1, 1, 1}, RemPort: 9})
	snap, ok := m.SnapshotResult(id)
	if !ok || len(snap.Rows) != 2 {
		t.Fatalf("snapshot rows = %d, want 2 (fixed)", len(snap.Rows))
	}
	res, err = m.Query("conns")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("live rows = %d, want 3", len(res.Rows))
	}
	// Snapshot is a fixed point: repeated reads identical.
	again, _ := m.SnapshotResult(id)
	if len(again.Rows) != len(snap.Rows) {
		t.Fatal("snapshot changed between reads")
	}
	if !m.DropSnapshot(id) || m.DropSnapshot(id) {
		t.Fatal("drop semantics wrong")
	}
	if _, err := m.Query("ghost"); err == nil {
		t.Fatal("unknown view queried")
	}
	if _, err := m.Define(`view bad { from nope; select x; }`); err == nil {
		t.Fatal("invalid view installed")
	}
	if got := m.Views(); len(got) != 1 || got[0] != "conns" {
		t.Fatalf("views = %v", got)
	}
}

func TestRenderSMIBallooning(t *testing.T) {
	// E7's qualitative claim as a unit test: the SMI-style rendering is
	// several times longer than the VDL source.
	src := `view busy {
  from ifTable;
  select ifIndex, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1;
}`
	v, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	smi := RenderSMI(v, 424242)
	vdlLines := SpecLines(src)
	smiLines := SpecLines(smi)
	if vdlLines != 5 {
		t.Fatalf("the canonical example should be 5 lines, got %d", vdlLines)
	}
	if smiLines < 4*vdlLines {
		t.Fatalf("SMI rendering only %d lines vs %d VDL", smiLines, vdlLines)
	}
	for _, want := range []string{"OBJECT-TYPE", "DERIVATION", "SELECTION", "busyTotal"} {
		if !strings.Contains(smi, want) {
			t.Errorf("SMI rendering lacks %q", want)
		}
	}
}

func TestRenderExpr(t *testing.T) {
	v, err := Parse(`view x { from ifTable; select -ifIndex + 2 as a, count() as b, sum(ifIndex) as c; where ifDescr == "eth0" || !(ifIndex < 3); }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderExpr(v.Select[0].Expr); got != "(-ifIndex + 2)" {
		t.Errorf("render = %q", got)
	}
	if got := RenderExpr(v.Where); !strings.Contains(got, `"eth0"`) || !strings.Contains(got, "||") {
		t.Errorf("where render = %q", got)
	}
}

func TestParseAllMultipleViews(t *testing.T) {
	views, err := ParseAll(`
view a { from ifTable; select ifIndex; }
view b { from ifTable; select count() as n; }
`)
	if err != nil || len(views) != 2 || views[0].Name != "a" || views[1].Name != "b" {
		t.Fatalf("ParseAll = %v, %v", views, err)
	}
}

func TestSnapshotLRUEviction(t *testing.T) {
	dev := testDevice(t)
	m := NewMCVA(dev.Tree(), MIB2())
	if _, err := m.Define(`view conns { from tcpConnTable; select tcpConnRemPort; }`); err != nil {
		t.Fatal(err)
	}
	m.SetSnapshotCap(3)
	ids := make([]int64, 0, 5)
	for i := 0; i < 5; i++ {
		id, err := m.Snapshot("conns")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := m.SnapshotsEvicted(); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	// The two oldest are gone; the three newest survive.
	for _, id := range ids[:2] {
		if _, ok := m.SnapshotResult(id); ok {
			t.Fatalf("snapshot %d survived past cap", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := m.SnapshotResult(id); !ok {
			t.Fatalf("snapshot %d evicted while within cap", id)
		}
	}
	// Touching the LRU end protects it from the next eviction.
	if _, ok := m.SnapshotResult(ids[2]); !ok {
		t.Fatal("touch failed")
	}
	if _, err := m.Snapshot("conns"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.SnapshotResult(ids[2]); !ok {
		t.Fatal("recently-used snapshot evicted before stale ones")
	}
	if _, ok := m.SnapshotResult(ids[3]); ok {
		t.Fatal("stale snapshot survived past touched one")
	}
	// Lowering the cap evicts immediately; the counter is monotonic.
	m.SetSnapshotCap(1)
	if got := m.SnapshotsEvicted(); got != 5 {
		t.Fatalf("after cap lower evicted = %d, want 5", got)
	}
	// Instrument exposes the counter under the canonical metric name.
	reg := obs.NewRegistry()
	m.Instrument(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vdl_snapshots_evicted_total 5") {
		t.Fatalf("metric missing:\n%s", b.String())
	}
}
