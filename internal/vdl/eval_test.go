package vdl

import (
	"testing"

	"mbd/internal/mib"
)

// Expression-semantics table tests for the view evaluator's value
// domain, independent of any MIB.

func evalStandalone(t *testing.T, src string, cells map[string]Value) Value {
	t.Helper()
	v, err := Parse(`view x { from t; select ` + src + ` as out; }`)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	e := newEnv()
	e.add("t", cells)
	out, err := evalExpr(v.Select[0].Expr, e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return out
}

func TestExpressionSemantics(t *testing.T) {
	cells := map[string]Value{
		"i": int64(6), "j": int64(4), "f": 2.5, "s": "abc", "b": true, "z": nil,
	}
	cases := []struct {
		expr string
		want Value
	}{
		{`i + j`, int64(10)},
		{`i - j`, int64(2)},
		{`i * j`, int64(24)},
		{`i / 3`, int64(2)}, // exact integer division stays int
		{`i / j`, 1.5},      // inexact promotes to float
		{`i % j`, int64(2)},
		{`i + f`, 8.5},
		{`-i`, int64(-6)},
		{`-f`, -2.5},
		{`!b`, false},
		{`!z`, true},
		{`i > j`, true},
		{`i <= j`, false},
		{`f >= 2.5`, true},
		{`s == "abc"`, true},
		{`s != "abc"`, false},
		{`s < "abd"`, true},
		{`s > "ab"`, true},
		{`s + "d"`, "abcd"},
		{`i == 6.0`, true}, // numeric promotion in equality
		{`z == 0`, false},  // nil is not zero
		{`b == true`, true},
		{`b && i > j`, true},
		{`b && i < j`, false},
		{`!b || s == "abc"`, true},
		{`1 == "1"`, false},
	}
	for _, c := range cases {
		if got := evalStandalone(t, c.expr, cells); got != c.want {
			t.Errorf("%s = %v (%T), want %v", c.expr, got, got, c.want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cells := map[string]Value{"s": "abc", "i": int64(1)}
	for _, expr := range []string{
		`s - 1`, `s < 1`, `-s`, `i % 0`, `i / 0`, `s * s`, `s % s`,
	} {
		v, err := Parse(`view x { from t; select ` + expr + ` as out; }`)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		e := newEnv()
		e.add("t", cells)
		if _, err := evalExpr(v.Select[0].Expr, e); err == nil {
			t.Errorf("%s evaluated without error", expr)
		}
	}
}

func TestToSMIAllKinds(t *testing.T) {
	cases := []struct {
		in   Value
		want mib.Value
	}{
		{nil, mib.Null()},
		{true, mib.Int(1)},
		{false, mib.Int(0)},
		{int64(-3), mib.Int(-3)},
		{0.5, mib.Int(500000)}, // fixed-point micro units
		{"s", mib.Str("s")},
		{[]int{1}, mib.Str("[1]")}, // fallback rendering
	}
	for _, c := range cases {
		if got := toSMI(c.in); !got.Equal(c.want) {
			t.Errorf("toSMI(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTruthyDomain(t *testing.T) {
	cases := []struct {
		in   Value
		want bool
	}{
		{nil, false}, {false, false}, {true, true},
		{int64(0), false}, {int64(3), true},
		{0.0, false}, {0.1, true},
		{"", false}, {"x", true},
		{struct{}{}, true},
	}
	for _, c := range cases {
		if truthy(c.in) != c.want {
			t.Errorf("truthy(%v) != %v", c.in, c.want)
		}
	}
}
