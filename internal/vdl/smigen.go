package vdl

import (
	"fmt"
	"strings"
)

// RenderSMI generates the SMI-extension-style specification equivalent
// to a VDL view, in the manner of [Arai & Yemini 1995]: one OBJECT-TYPE
// macro per derived column plus a table/entry scaffold and a
// DERIVATION clause per computed object. The dissertation's point —
// that the same five-line VDL view balloons into "very long and
// detailed specifications" under the SMI-extension approach — is
// reproduced quantitatively by comparing line counts of the two
// renderings (experiment E7).
func RenderSMI(v *ViewDef, enterpriseArc int) string {
	var b strings.Builder
	cap := capitalize(v.Name)
	fmt.Fprintf(&b, "%sTable OBJECT-TYPE\n", v.Name)
	fmt.Fprintf(&b, "    SYNTAX      SEQUENCE OF %sEntry\n", cap)
	fmt.Fprintf(&b, "    ACCESS      not-accessible\n")
	fmt.Fprintf(&b, "    STATUS      mandatory\n")
	fmt.Fprintf(&b, "    DESCRIPTION\n")
	fmt.Fprintf(&b, "        \"Materialized view %s derived from %s%s.\"\n", v.Name, v.From.Table, joinDesc(v))
	fmt.Fprintf(&b, "    ::= { enterprises %d 1 }\n\n", enterpriseArc)

	fmt.Fprintf(&b, "%sEntry OBJECT-TYPE\n", v.Name)
	fmt.Fprintf(&b, "    SYNTAX      %sEntry\n", cap)
	fmt.Fprintf(&b, "    ACCESS      not-accessible\n")
	fmt.Fprintf(&b, "    STATUS      mandatory\n")
	fmt.Fprintf(&b, "    DESCRIPTION \"One conceptual row of %s.\"\n", v.Name)
	fmt.Fprintf(&b, "    INDEX       { %sIndex }\n", v.Name)
	fmt.Fprintf(&b, "    ::= { %sTable 1 }\n\n", v.Name)

	fmt.Fprintf(&b, "%sEntry ::= SEQUENCE {\n", cap)
	for i, s := range v.Select {
		comma := ","
		if i == len(v.Select)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    %s%s INTEGER%s\n", v.Name, capitalize(s.Name), comma)
	}
	fmt.Fprintf(&b, "}\n\n")

	for i, s := range v.Select {
		fmt.Fprintf(&b, "%s%s OBJECT-TYPE\n", v.Name, capitalize(s.Name))
		fmt.Fprintf(&b, "    SYNTAX      INTEGER\n")
		fmt.Fprintf(&b, "    ACCESS      read-only\n")
		fmt.Fprintf(&b, "    STATUS      mandatory\n")
		fmt.Fprintf(&b, "    DESCRIPTION\n")
		fmt.Fprintf(&b, "        \"Derived attribute %s of view %s.\"\n", s.Name, v.Name)
		fmt.Fprintf(&b, "    DERIVATION\n")
		fmt.Fprintf(&b, "        \"%s\"\n", RenderExpr(s.Expr))
		if v.Where != nil {
			fmt.Fprintf(&b, "    SELECTION\n")
			fmt.Fprintf(&b, "        \"%s\"\n", RenderExpr(v.Where))
		}
		fmt.Fprintf(&b, "    ::= { %sEntry %d }\n\n", v.Name, i+1)
	}
	return b.String()
}

func joinDesc(v *ViewDef) string {
	if v.Join == nil {
		return ""
	}
	return " joined with " + v.Join.Right.Table
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// RenderExpr pretty-prints a view expression.
func RenderExpr(e Expr) string {
	switch n := e.(type) {
	case Lit:
		if s, ok := n.V.(string); ok {
			return fmt.Sprintf("%q", s)
		}
		return fmt.Sprintf("%v", n.V)
	case ColRef:
		if n.Alias != "" {
			return n.Alias + ":" + n.Col
		}
		return n.Col
	case Un:
		return opText(n.Op) + RenderExpr(n.X)
	case Bin:
		return "(" + RenderExpr(n.L) + " " + opText(n.Op) + " " + RenderExpr(n.R) + ")"
	case Agg:
		if n.X == nil {
			return n.Fn + "()"
		}
		return n.Fn + "(" + RenderExpr(n.X) + ")"
	default:
		return "?"
	}
}

func opText(op fmt.Stringer) string {
	s := op.String()
	return strings.Trim(s, "'")
}

// SpecLines counts the non-blank lines of a specification string — the
// E7 economy metric.
func SpecLines(spec string) int {
	n := 0
	for _, line := range strings.Split(spec, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
