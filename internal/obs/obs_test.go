package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same-name registration returns the same counter.
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("live", "live things")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []int64{int64(time.Millisecond), int64(time.Second)})
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(500 * time.Millisecond) // bucket 1
	h.Observe(time.Minute)            // overflow
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	wantSum := int64(time.Microsecond + 500*time.Millisecond + time.Minute)
	if h.SumNanos() != wantSum {
		t.Fatalf("sum = %d, want %d", h.SumNanos(), wantSum)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{le="0.001"} 1`,
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_count 3`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFamiliesAndLabels(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("rej_total", "rejections", "code", "DPL003").Add(2)
	r.LabeledCounter("rej_total", "rejections", "code", "DPL007").Inc()
	r.Counter("aaa_total", "first").Inc()
	r.FuncGauge("zzz", "func gauge", func() int64 { return -4 })
	r.FuncCounter("src_total", "func counter", func() uint64 { return 9 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP aaa_total first\n# TYPE aaa_total counter\naaa_total 1\n",
		"# TYPE rej_total counter\nrej_total{code=\"DPL003\"} 2\nrej_total{code=\"DPL007\"} 1\n",
		"src_total 9",
		"zzz -4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family even with two series.
	if strings.Count(out, "# TYPE rej_total") != 1 {
		t.Errorf("TYPE emitted per series, want per family:\n%s", out)
	}
	// Families must be sorted.
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	g := r.Gauge("g", "")
	g.Set(-5) // clamped in flattened form
	h := r.Histogram("h", "", nil)
	h.Observe(2 * time.Millisecond)
	flat := r.Flatten()
	vals := map[string]uint64{}
	for _, s := range flat {
		vals[s.Name] = s.Value()
	}
	if vals["c_total"] != 3 {
		t.Errorf("c_total = %d, want 3", vals["c_total"])
	}
	if vals["g"] != 0 {
		t.Errorf("negative gauge flattened to %d, want 0", vals["g"])
	}
	if vals["h_count"] != 1 {
		t.Errorf("h_count = %d, want 1", vals["h_count"])
	}
	if vals["h_sum_us"] != 2000 {
		t.Errorf("h_sum_us = %d, want 2000", vals["h_sum_us"])
	}
	// Snapshot order must be sorted by name.
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Name >= flat[i].Name {
			t.Errorf("flatten order violation: %q >= %q", flat[i-1].Name, flat[i].Name)
		}
	}
}

func TestTracerRingAndJSON(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record("dp#1", StageEmit, "payload", 0)
	}
	spans := tr.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4 (ring capacity)", len(spans))
	}
	// Oldest two dropped: seqs 3..6 remain in order.
	for i, sp := range spans {
		if sp.Seq != uint64(3+i) {
			t.Fatalf("span %d has seq %d, want %d", i, sp.Seq, 3+i)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("Recent(2) = %+v, want the 2 newest", got)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	var decoded []Span
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("tracez JSON does not parse: %v", err)
	}
	if len(decoded) != 4 || decoded[0].Stage != StageEmit {
		t.Fatalf("decoded %+v", decoded)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("x", StageExit, "", 0)
	if tr.Len() != 0 || tr.Recent(10) != nil {
		t.Fatal("nil tracer should record nothing")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("nil tracer JSON = %q, want []", sb.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(7)
	tr := NewTracer(8)
	tr.Record("dp", StageDelegate, "ok", time.Millisecond)
	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "hits_total 7") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/tracez"); !strings.Contains(out, `"stage": "delegate"`) {
		t.Errorf("/tracez missing span:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", out)
	}
}
