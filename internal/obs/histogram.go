package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the latency bucket upper bounds, in nanoseconds,
// used when a histogram is registered without explicit bounds. They
// span the paths this server cares about: sub-microsecond MIB
// dispatch, microsecond codecs, millisecond RPCs, second-scale
// delegated-program runs.
var DefaultBuckets = []int64{
	int64(time.Microsecond),
	int64(5 * time.Microsecond),
	int64(25 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(2500 * time.Microsecond),
	int64(10 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(time.Second),
	int64(5 * time.Second),
}

// Histogram is a fixed-bucket latency histogram. Observe is the hot
// path: a linear scan over at most a dozen int64 bounds and two atomic
// adds — no lock, no allocation. Bucket counts are non-cumulative
// internally and summed cumulatively at export, matching Prometheus
// histogram semantics.
type Histogram struct {
	bounds []int64         // ascending upper bounds (ns); +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	sum    atomic.Int64    // total observed ns
	n      atomic.Uint64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// SumNanos returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// writePrometheus renders the histogram family: cumulative _bucket
// series with le labels in seconds, then _sum (seconds) and _count.
func (h *Histogram) writePrometheus(w io.Writer, family, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s %d\n", labelInsert(family+"_bucket", labels, `le="`+le+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s %d\n", labelInsert(family+"_bucket", labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s%s %g\n", family+"_sum", labels, float64(h.sum.Load())/1e9)
	fmt.Fprintf(w, "%s%s %d\n", family+"_count", labels, h.n.Load())
}
