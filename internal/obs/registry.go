// Package obs is the server's observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms) plus a bounded-ring trace recorder for the delegation
// lifecycle (see trace.go).
//
// The design rule, inherited from docs/PERFORMANCE.md, is that the
// *observation* path must cost nothing measurable: Counter.Inc,
// Gauge.Set and Histogram.Observe are single atomic operations with no
// allocation and no lock. All bookkeeping (registration, sorting,
// rendering) happens off the hot path: the registry keeps an immutable
// sorted snapshot of its series behind an atomic pointer, rebuilt
// copy-on-register, so exporters (the Prometheus text endpoint, the
// self-stats MIB subtree, the RDS stats op) read without blocking
// writers.
//
// This is MbD reflexivity applied to the platform itself: the elastic
// process that computes views over a device's MIB publishes its own
// health as both a scrape endpoint and a MIB subtree a manager can
// GetNext — the management platform is itself managed.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates the registry's series types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFuncCounter
	kindFuncGauge
	kindHistogram
)

// metric is one registered series (or histogram family).
type metric struct {
	family string // metric name without labels
	labels string // rendered label set: `{k="v"}` or ""
	help   string
	kind   metricKind

	c  *Counter
	g  *Gauge
	fc func() uint64
	fg func() int64
	h  *Histogram
}

// name returns the full series name including labels.
func (m *metric) name() string { return m.family + m.labels }

// Series is one flattened, integer-valued time series — the form the
// self-stats MIB subtree and other non-Prometheus exporters consume.
// Histograms flatten to two Series: <name>_count and <name>_sum_us
// (microseconds, so the sum stays integral). Value is live: each call
// re-reads the underlying metric.
type Series struct {
	// Name is the full series name, labels included.
	Name string
	// Counter reports whether the series is monotonic.
	Counter bool
	// Value returns the current value. Gauge values are clamped at
	// zero for consumers (like SNMP Counter64) that cannot go negative;
	// use the typed accessors on Registry metrics when sign matters.
	Value func() uint64
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric

	// sorted is the immutable export snapshot, ordered by (family,
	// labels); rebuilt copy-on-register so readers never lock.
	sorted atomic.Pointer[[]*metric]
	// flat is the immutable flattened Series snapshot in the same
	// order, histograms expanded.
	flat atomic.Pointer[[]Series]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register installs m under its full name, returning the existing
// metric instead when one of the same name and kind is present.
// Mismatched re-registration panics: it is a programming error for two
// subsystems to claim one name with different types.
func (r *Registry) register(m *metric) *metric {
	full := m.name()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[full]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", full))
		}
		return old
	}
	r.metrics[full] = m
	next := make([]*metric, 0, len(r.metrics))
	for _, mm := range r.metrics {
		next = append(next, mm)
	}
	sort.Slice(next, func(i, j int) bool {
		if next[i].family != next[j].family {
			return next[i].family < next[j].family
		}
		return next[i].labels < next[j].labels
	})
	r.sorted.Store(&next)
	flat := make([]Series, 0, len(next)+2)
	for _, mm := range next {
		flat = append(flat, mm.series()...)
	}
	r.flat.Store(&flat)
	return m
}

// series flattens one metric for the Series snapshot.
func (m *metric) series() []Series {
	switch m.kind {
	case kindCounter:
		c := m.c
		return []Series{{Name: m.name(), Counter: true, Value: c.Value}}
	case kindGauge:
		g := m.g
		return []Series{{Name: m.name(), Value: func() uint64 { return clampUint(g.Value()) }}}
	case kindFuncCounter:
		return []Series{{Name: m.name(), Counter: true, Value: m.fc}}
	case kindFuncGauge:
		fg := m.fg
		return []Series{{Name: m.name(), Value: func() uint64 { return clampUint(fg()) }}}
	case kindHistogram:
		h := m.h
		return []Series{
			{Name: m.name() + "_count", Counter: true, Value: h.Count},
			{Name: m.name() + "_sum_us", Counter: true, Value: func() uint64 { return uint64(h.SumNanos() / 1000) }},
		}
	}
	return nil
}

func clampUint(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{family: name, help: help, kind: kindCounter, c: &Counter{}})
	return m.c
}

// LabeledCounter returns the counter for one (label, value) pair of the
// named family, creating it if needed — a one-label CounterVec. The
// series renders as name{label="value"}.
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	labels := fmt.Sprintf("{%s=%q}", label, value)
	m := r.register(&metric{family: name, labels: labels, help: help, kind: kindCounter, c: &Counter{}})
	return m.c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{family: name, help: help, kind: kindGauge, g: &Gauge{}})
	return m.g
}

// FuncCounter registers a monotonic series whose value is read from fn
// at export time — the bridge for subsystems that already keep their
// own atomic counters (mib.Tree, snmp.Agent). fn must be safe for
// concurrent use.
func (r *Registry) FuncCounter(name, help string, fn func() uint64) {
	r.register(&metric{family: name, help: help, kind: kindFuncCounter, fc: fn})
}

// LabeledFuncCounter registers a monotonic series for one (label,
// value) pair of the named family whose value is read from fn at export
// time — the labelled form of FuncCounter. fn must be safe for
// concurrent use.
func (r *Registry) LabeledFuncCounter(name, help, label, value string, fn func() uint64) {
	labels := fmt.Sprintf("{%s=%q}", label, value)
	r.register(&metric{family: name, labels: labels, help: help, kind: kindFuncCounter, fc: fn})
}

// FuncGauge registers a gauge series whose value is read from fn at
// export time. fn must be safe for concurrent use.
func (r *Registry) FuncGauge(name, help string, fn func() int64) {
	r.register(&metric{family: name, help: help, kind: kindFuncGauge, fg: fn})
}

// LabeledFuncGauge registers a gauge series for one (label, value)
// pair of the named family whose value is read from fn at export time
// — the labelled form of FuncGauge. fn must be safe for concurrent
// use.
func (r *Registry) LabeledFuncGauge(name, help, label, value string, fn func() int64) {
	labels := fmt.Sprintf("{%s=%q}", label, value)
	r.register(&metric{family: name, labels: labels, help: help, kind: kindFuncGauge, fg: fn})
}

// Histogram returns the latency histogram registered under name,
// creating it (with DefaultBuckets when bounds is nil) if needed.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	m := r.register(&metric{family: name, help: help, kind: kindHistogram, h: newHistogram(bounds)})
	return m.h
}

// Flatten returns the current flattened Series snapshot, ordered by
// name. The slice is immutable and shared; do not modify it. Values
// read live.
func (r *Registry) Flatten() []Series {
	if p := r.flat.Load(); p != nil {
		return *p
	}
	return nil
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (families sorted by name, HELP/TYPE once per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var snap []*metric
	if p := r.sorted.Load(); p != nil {
		snap = *p
	}
	bw := &errWriter{w: w}
	lastFamily := ""
	for _, m := range snap {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.family, m.kind.promType())
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name(), m.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name(), m.g.Value())
		case kindFuncCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name(), m.fc())
		case kindFuncGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name(), m.fg())
		case kindHistogram:
			m.h.writePrometheus(bw, m.family, m.labels)
		}
	}
	return bw.err
}

// promType maps a metric kind to its Prometheus TYPE keyword.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindFuncCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// errWriter latches the first write error so rendering code can skip
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// labelInsert splices extra labels into a series name that may already
// carry a label set: labelInsert(`x{a="1"}`, `le="2"`) == `x{a="1",le="2"}`.
func labelInsert(family, labels, extra string) string {
	if labels == "" {
		return family + "{" + extra + "}"
	}
	return family + strings.TrimSuffix(labels, "}") + "," + extra + "}"
}
