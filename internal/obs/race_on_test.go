//go:build race

package obs

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so alloc tests are skipped under -race.
const raceEnabled = true
