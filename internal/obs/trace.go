package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Lifecycle stage names recorded by the instrumented layers. A
// delegated program's life renders as the span sequence
// delegate → (reject | instantiate → run … emit* → exit) with control
// actions (suspend/resume/terminate) interleaved.
const (
	StageDelegate    = "delegate"
	StageReject      = "reject"
	StageInstantiate = "instantiate"
	StageEmit        = "emit"
	StageExit        = "exit"
	StageControl     = "control"
	StageRequest     = "request"
	// Fault-tolerance stages (see docs/ROBUSTNESS.md): a DP body panic,
	// a supervised restart, a crash-loop give-up, a watchdog kill, a
	// server drain, and a client reconnect.
	StageCrash     = "crash"
	StageRestart   = "restart"
	StageCrashLoop = "crash-loop"
	StageWatchdog  = "watchdog-kill"
	StageDrain     = "drain"
	StageReconnect = "reconnect"
	// Federation stages (see docs/FEDERATION.md): a member joining its
	// domain root, a cascaded delegation fanning out, a rollup value
	// recombining, and a member being declared dead.
	StageJoin       = "peer-join"
	StageFanout     = "fanout"
	StageRollup     = "rollup"
	StageMemberDead = "member-dead"
	// Multi-tenant stages (see docs/TENANCY.md): a DPI paused for
	// exceeding its tenant's rate quota, and a DPI terminated after
	// repeated violations.
	StageThrottle  = "quota-throttle"
	StageQuotaKill = "quota-kill"
)

// Span is one recorded lifecycle event.
type Span struct {
	// Seq orders spans totally; it increments per Record.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock recording time.
	Time time.Time `json:"time"`
	// Scope identifies the subject: a DP name, a DPI id, or an RDS op.
	Scope string `json:"scope"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Detail is free-form context (entry point, diagnostics, result).
	Detail string `json:"detail,omitempty"`
	// Dur is the stage's duration, when one is meaningful (analysis
	// time for delegate, run time for exit, serve time for request).
	Dur time.Duration `json:"dur_ns,omitempty"`
}

// Tracer records spans into a bounded ring: the newest spans win,
// readers get a snapshot copy. A nil *Tracer is valid and records
// nothing, so instrumented code needs no branching at call sites.
//
// Recording takes a short mutex — the lifecycle paths it instruments
// (delegation, instantiation, instance exit, per-event emits) are
// orders of magnitude rarer than the MIB/codec hot paths, which stay
// tracer-free by design.
type Tracer struct {
	mu   sync.Mutex
	seq  uint64
	ring []Span
	head int // index of the oldest span
	n    int
}

// NewTracer returns a tracer retaining the last capacity spans
// (default 512 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 512
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record appends one span. Safe on a nil tracer.
func (t *Tracer) Record(scope, stage, detail string, dur time.Duration) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	sp := Span{Seq: t.seq, Time: now, Scope: scope, Stage: stage, Detail: detail, Dur: dur}
	if t.n == len(t.ring) {
		t.ring[t.head] = sp
		t.head = (t.head + 1) % len(t.ring)
	} else {
		t.ring[(t.head+t.n)%len(t.ring)] = sp
		t.n++
	}
	t.mu.Unlock()
}

// Len returns the number of retained spans. Safe on a nil tracer.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Recent returns up to max retained spans (all when max <= 0), oldest
// first. The result is a copy. Safe on a nil tracer.
func (t *Tracer) Recent(max int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Span, n)
	for i := 0; i < n; i++ {
		// The newest n spans, preserving order.
		out[i] = t.ring[(t.head+t.n-n+i)%len(t.ring)]
	}
	return out
}

// WriteJSON renders up to max retained spans (all when max <= 0) as a
// JSON array, oldest first. Safe on a nil tracer (renders []).
func (t *Tracer) WriteJSON(w io.Writer, max int) error {
	spans := t.Recent(max)
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
