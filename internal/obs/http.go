package obs

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the observability surface over HTTP:
//
//	/metrics            Prometheus text exposition of reg
//	/tracez             recent lifecycle spans as JSON (?n=max)
//	/debug/pprof/*      the standard Go profiler endpoints
//
// tr may be nil (tracez serves an empty array). The handler is meant
// for an operator- or scraper-facing listener (mbdserver -obs), not
// the management data path.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><body><h1>mbd observability</h1><ul>` +
			`<li><a href="/metrics">/metrics</a></li>` +
			`<li><a href="/tracez">/tracez</a></li>` +
			`<li><a href="/debug/pprof/">/debug/pprof/</a></li>` +
			`</ul></body></html>`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				max = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w, max)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
