// Package obsmib publishes an obs.Registry as a read-only MIB subtree:
// the paper's reflexivity applied to the platform — the MbD server's
// own health counters become managed objects a remote manager (or a
// delegated program) can Get/GetNext like any other MIB variable.
//
// The subtree is a two-column table indexed by the registry's sorted
// flattened series (see obs.Registry.Flatten):
//
//	<prefix>.1.<i>  obsStatName  (OCTET STRING)  series name
//	<prefix>.2.<i>  obsStatValue (Counter64)     live value
//
// Row indexes are 1-based positions in the *current* sorted snapshot.
// Registration of new metrics renumbers later rows — acceptable for a
// stats surface whose names column makes every walk self-describing.
package obsmib

import (
	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
)

// OIDSelfStats is the default mount point for the server's self-stats
// subtree, a sibling of the MCVA view arc (1.3.6.1.4.1.424242.1).
var OIDSelfStats = oid.MustParse("1.3.6.1.4.1.424242.2")

// Table columns.
const (
	colName  = 1
	colValue = 2
)

// Handler serves a registry as a MIB subtree. Create with New; mount
// with mib.Tree.Mount (or the Mount convenience).
type Handler struct {
	reg *obs.Registry
}

// New returns a handler over reg.
func New(reg *obs.Registry) *Handler { return &Handler{reg: reg} }

// Mount attaches reg's series under prefix in tree.
func Mount(tree *mib.Tree, reg *obs.Registry, prefix oid.OID) error {
	return tree.Mount(prefix, New(reg))
}

// cell returns the value at (col, idx) in the current snapshot.
func (h *Handler) cell(flat []obs.Series, col, idx uint32) (mib.Value, bool) {
	if idx < 1 || int(idx) > len(flat) {
		return mib.Value{}, false
	}
	s := flat[idx-1]
	switch col {
	case colName:
		return mib.Str(s.Name), true
	case colValue:
		return mib.Counter64(s.Value()), true
	}
	return mib.Value{}, false
}

// GetRel implements mib.Handler.
func (h *Handler) GetRel(rel oid.OID) (mib.Value, bool) {
	if len(rel) != 2 {
		return mib.Value{}, false
	}
	return h.cell(h.reg.Flatten(), rel[0], rel[1])
}

// NextRel implements mib.Handler.
func (h *Handler) NextRel(rel oid.OID) (oid.OID, mib.Value, bool) {
	return h.AppendNextRel(nil, rel)
}

// AppendNextRel implements mib.AppendNexter. Successors run in
// column-major order: .1.1 … .1.N, .2.1 … .2.N.
func (h *Handler) AppendNextRel(dst oid.OID, rel oid.OID) (oid.OID, mib.Value, bool) {
	flat := h.reg.Flatten()
	if len(flat) == 0 {
		return nil, mib.Value{}, false
	}
	col, idx := nextCell(rel, len(flat))
	if col == 0 {
		return nil, mib.Value{}, false
	}
	v, ok := h.cell(flat, col, idx)
	if !ok {
		return nil, mib.Value{}, false
	}
	return append(dst, col, idx), v, true
}

// NextRelN implements mib.BulkHandler.
func (h *Handler) NextRelN(rel oid.OID, max int, visit func(rel oid.OID, v mib.Value) bool) int {
	flat := h.reg.Flatten()
	if len(flat) == 0 {
		return 0
	}
	col, idx := nextCell(rel, len(flat))
	n := 0
	var buf [2]uint32
	for col != 0 && (max <= 0 || n < max) {
		v, ok := h.cell(flat, col, idx)
		if !ok {
			break
		}
		buf[0], buf[1] = col, idx
		n++
		if !visit(buf[:], v) {
			return n
		}
		if int(idx) < len(flat) {
			idx++
		} else if col < colValue {
			col, idx = col+1, 1
		} else {
			col = 0
		}
	}
	return n
}

// nextCell computes the first (col, idx) cell strictly after rel in a
// table of rows rows. col 0 reports end-of-subtree.
func nextCell(rel oid.OID, rows int) (uint32, uint32) {
	return NextCell(rel, colValue, rows)
}

// NextCell computes the first (col, idx) cell in column-major order
// strictly after rel in a table of cols columns and rows rows, with
// 1-based columns and indexes. col 0 reports end-of-table. Other
// registry-style table handlers (the federation subtree) reuse it for
// their walk order.
func NextCell(rel oid.OID, cols, rows int) (uint32, uint32) {
	if rows <= 0 || cols <= 0 {
		return 0, 0
	}
	if len(rel) == 0 {
		return 1, 1
	}
	col := rel[0]
	if col < 1 {
		return 1, 1
	}
	if int(col) > cols {
		return 0, 0
	}
	// Whether rel is the bare column, exactly (col, idx), or anything
	// deeper, the first cell strictly after it is (col, idx+1) with a
	// missing index reading as 0.
	idx := uint32(0)
	if len(rel) >= 2 {
		idx = rel[1]
	}
	if int(idx) < rows {
		return col, idx + 1
	}
	if int(col) < cols {
		return col + 1, 1
	}
	return 0, 0
}
