package obsmib

import (
	"net"
	"testing"

	"mbd/internal/elastic"
	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
	"mbd/internal/rds"
)

// TestRobustnessMetricsWalkable: the fault-tolerance counters — DPI
// panics/restarts, watchdog kills, client reconnects — publish on the
// shared registry and are therefore walkable as cells of the self-stats
// MIB subtree, like any other managed object.
func TestRobustnessMetricsWalkable(t *testing.T) {
	reg := obs.NewRegistry()

	// The elastic process and an RDS client publishing on one registry.
	p := elastic.NewProcess(elastic.Config{Obs: reg})
	t.Cleanup(p.Stop)
	a, b := net.Pipe()
	t.Cleanup(func() { b.Close() })
	c := rds.NewClient(a, "mgr", rds.WithClientObs(reg))
	t.Cleanup(func() { c.Close() })

	tree := &mib.Tree{}
	if err := tree.Mount(OIDSelfStats, New(reg)); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	tree.Walk(OIDSelfStats, func(o oid.OID, v mib.Value) bool {
		if v.Kind == mib.KindOctetString {
			names[string(v.Bytes)] = true
		}
		return true
	})
	for _, want := range []string{
		"elastic_dpi_panics_total",
		"elastic_dpi_restarts_total",
		"elastic_watchdog_kills_total",
		"elastic_crash_loops_total",
		"rds_client_reconnects_total",
	} {
		if !names[want] {
			t.Errorf("metric %s not walkable in self-stats subtree", want)
		}
	}
}
