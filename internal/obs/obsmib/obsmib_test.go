package obsmib

import (
	"testing"
	"time"

	"mbd/internal/mib"
	"mbd/internal/obs"
	"mbd/internal/oid"
)

func (h *Handler) mustMount(t *testing.T) *mib.Tree {
	t.Helper()
	tree := &mib.Tree{}
	if err := tree.Mount(OIDSelfStats, h); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestGetAndWalk(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("alpha_total", "help").Add(11)
	r.Gauge("beta", "help").Set(7)
	h := New(r)
	tree := h.mustMount(t)

	// Get by explicit cell: row order is sorted series order
	// (alpha_total=1, beta=2).
	v, err := tree.Get(OIDSelfStats.Append(1, 1))
	if err != nil || string(v.Bytes) != "alpha_total" {
		t.Fatalf("name cell = %v, %v", v, err)
	}
	v, err = tree.Get(OIDSelfStats.Append(2, 1))
	if err != nil || v.Uint != 11 {
		t.Fatalf("value cell = %v, %v", v, err)
	}

	// Full walk sees 2 columns x 2 rows, names before values.
	var names []string
	var vals []uint64
	n := tree.Walk(OIDSelfStats, func(o oid.OID, v mib.Value) bool {
		if v.Kind == mib.KindOctetString {
			names = append(names, string(v.Bytes))
		} else {
			vals = append(vals, v.Uint)
		}
		return true
	})
	if n != 4 {
		t.Fatalf("walked %d instances, want 4", n)
	}
	if names[0] != "alpha_total" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
	if vals[0] != 11 || vals[1] != 7 {
		t.Fatalf("values = %v", vals)
	}
}

func TestValuesAreLive(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("live_total", "")
	tree := New(r).mustMount(t)
	cell := OIDSelfStats.Append(2, 1)
	if v, err := tree.Get(cell); err != nil || v.Uint != 0 {
		t.Fatalf("initial = %v, %v", v, err)
	}
	c.Add(42)
	if v, err := tree.Get(cell); err != nil || v.Uint != 42 {
		t.Fatalf("after increment = %v, %v", v, err)
	}
}

func TestHistogramRowsAndGetNext(t *testing.T) {
	r := obs.NewRegistry()
	hst := r.Histogram("lat", "", nil)
	hst.Observe(3 * time.Millisecond)
	tree := New(r).mustMount(t)

	// Histogram flattens to lat_count and lat_sum_us rows.
	next, v, err := tree.GetNext(OIDSelfStats)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(OIDSelfStats.Append(1, 1)) || string(v.Bytes) != "lat_count" {
		t.Fatalf("first = %s %v", next, v)
	}
	next, v, err = tree.GetNext(next)
	if err != nil || string(v.Bytes) != "lat_sum_us" {
		t.Fatalf("second = %s %v, %v", next, v, err)
	}
	// Step into the value column and past the end.
	next, v, err = tree.GetNext(next)
	if err != nil || !next.Equal(OIDSelfStats.Append(2, 1)) || v.Uint != 1 {
		t.Fatalf("count value = %s %v, %v", next, v, err)
	}
	next, v, err = tree.GetNext(next)
	if err != nil || v.Uint != 3000 {
		t.Fatalf("sum_us value = %s %v, %v", next, v, err)
	}
	if _, _, err = tree.GetNext(next); err == nil {
		t.Fatal("expected end of subtree")
	}
}

func TestEmptyRegistry(t *testing.T) {
	tree := New(obs.NewRegistry()).mustMount(t)
	if _, _, err := tree.GetNext(OIDSelfStats); err == nil {
		t.Fatal("empty registry should have no successors")
	}
	if n := tree.Walk(OIDSelfStats, func(oid.OID, mib.Value) bool { return true }); n != 0 {
		t.Fatalf("walked %d instances of an empty registry", n)
	}
}
