package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestCounterIncAllocs locks in the allocation-free observation path:
// instrumentation that allocates per event would poison every hot path
// it touches (docs/PERFORMANCE.md).
func TestCounterIncAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("allocs_probe_total", "")
	g := r.Gauge("allocs_probe", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Set(7)
	}); n != 0 {
		t.Errorf("counter/gauge ops allocate %v times per run, want 0", n)
	}
}

// TestHistogramObserveAllocs proves Observe is allocation-free across
// bucket positions including overflow.
func TestHistogramObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	r := NewRegistry()
	h := r.Histogram("allocs_probe_seconds", "", nil)
	durations := []time.Duration{
		100 * time.Nanosecond, 3 * time.Microsecond, time.Millisecond, time.Minute,
	}
	if n := testing.AllocsPerRun(1000, func() {
		for _, d := range durations {
			h.Observe(d)
		}
	}); n != 0 {
		t.Errorf("Observe allocates %v times per run, want 0", n)
	}
}

// TestRegistryHammer races observers against registrations and
// exporters; run under -race in CI. It verifies no increments are lost
// and that export snapshots stay internally consistent.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	h := r.Histogram("hammer_seconds", "", nil)
	tr := NewTracer(64)

	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent registrations + exports while observers hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.LabeledCounter("hammer_by_code_total", "", "code", string(rune('a'+i%8))).Inc()
			_ = r.WritePrometheus(io.Discard)
			for _, s := range r.Flatten() {
				_ = s.Value()
			}
			_ = tr.Recent(16)
			i++
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				tr.Record("hammer", StageEmit, "x", 0)
			}
		}()
	}
	// Wait for the observers, then stop the exporter.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// The exporter goroutine needs the stop signal before wg.Wait can
	// return, so close it after the observers finish their counted work.
	for {
		if c.Value() >= writers*perG {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter lost increments: %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram lost observations: %d, want %d", got, writers*perG)
	}
	if tr.Len() != 64 {
		t.Errorf("tracer retained %d spans, want full ring of 64", tr.Len())
	}
}
