package dpl

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// run compiles and executes src's main() with the standard bindings
// plus any extra registrations applied by mod.
func run(t *testing.T, src string, mod func(*Bindings), args ...Value) (Value, error) {
	t.Helper()
	b := Std()
	if mod != nil {
		mod(b)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	compiled, err := Compile(prog, b)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	vm := NewVM(compiled, b)
	return vm.Run(context.Background(), "main", args...)
}

func mustRun(t *testing.T, src string, args ...Value) Value {
	t.Helper()
	v, err := run(t, src, nil, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{`1 + 2 * 3`, int64(7)},
		{`(1 + 2) * 3`, int64(9)},
		{`10 / 3`, int64(3)},
		{`10 % 3`, int64(1)},
		{`10.0 / 4`, 2.5},
		{`1 + 2.5`, 3.5},
		{`-5 + 2`, int64(-3)},
		{`-(2 * 3)`, int64(-6)},
		{`"a" + "b"`, "ab"},
		{`1 < 2`, true},
		{`2 <= 1`, false},
		{`"abc" < "abd"`, true},
		{`1 == 1.0`, true},
		{`1 != 2`, true},
		{`"x" == "x"`, true},
		{`nil == nil`, true},
		{`1 == "1"`, false},
		{`true && false`, false},
		{`true || false`, true},
		{`!true`, false},
		{`!0`, true},
		{`1 > 0 && 2 > 1 && 3 > 2`, true},
	}
	for _, tt := range tests {
		got := mustRun(t, `func main() { return `+tt.expr+`; }`)
		if !valueEqual(got, tt.want) {
			t.Errorf("%s = %v (%s), want %v", tt.expr, got, TypeName(got), tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
var calls = 0;
func bump() { calls += 1; return true; }
func main() {
	var a = false && bump();
	var b = true || bump();
	return calls;
}`
	if got := mustRun(t, src); got != int64(0) {
		t.Fatalf("short-circuit evaluated RHS: calls = %v", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
	var total = 0;
	for (var i = 0; i < 10; i += 1) {
		if (i % 2 == 0) { continue; }
		if (i == 9) { break; }
		total += i;
	}
	var j = 0;
	while (j < 5) { j += 1; }
	return total * 100 + j;
}`
	// odd i < 9: 1+3+5+7 = 16 → 1605
	if got := mustRun(t, src); got != int64(1605) {
		t.Fatalf("control flow = %v, want 1605", got)
	}
}

func TestNestedLoopsAndShadowing(t *testing.T) {
	src := `
func main() {
	var sum = 0;
	for (var i = 0; i < 3; i += 1) {
		for (var j = 0; j < 3; j += 1) {
			if (j == 2) { break; }
			sum += i * 10 + j;
		}
	}
	var x = 1;
	{
		var x = 100;
		sum += x;
	}
	sum += x;
	return sum;
}`
	// inner pairs: (0,0)(0,1)(1,0)(1,1)(2,0)(2,1) → 0+1+10+11+20+21=63; +100+1=164
	if got := mustRun(t, src); got != int64(164) {
		t.Fatalf("= %v, want 164", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { return fib(15); }`
	if got := mustRun(t, src); got != int64(610) {
		t.Fatalf("fib(15) = %v, want 610", got)
	}
}

func TestArraysAndMaps(t *testing.T) {
	src := `
func main() {
	var a = [1, 2, 3];
	a[1] = 20;
	append(a, 4);
	var m = {"x": 1, "y": 2};
	m["z"] = a[1] + a[3];
	var ks = keys(m);
	return str(a) + "|" + str(m) + "|" + str(len(ks));
}`
	want := `[1, 20, 3, 4]|{"x": 1, "y": 2, "z": 24}|3`
	if got := mustRun(t, src); got != want {
		t.Fatalf("= %q, want %q", got, want)
	}
}

func TestArrayReferenceSemantics(t *testing.T) {
	src := `
func mutate(a) { a[0] = 99; }
func main() {
	var a = [1];
	mutate(a);
	return a[0];
}`
	if got := mustRun(t, src); got != int64(99) {
		t.Fatalf("= %v, want 99 (arrays must be references)", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
var counter = 10;
var doubled = counter * 2;
func bump() { counter += 1; }
func main() {
	bump(); bump();
	return counter * 1000 + doubled;
}`
	if got := mustRun(t, src); got != int64(12020) {
		t.Fatalf("globals = %v, want 12020", got)
	}
}

func TestEntryArgs(t *testing.T) {
	src := `func main(a, b) { return a + b; }`
	got, err := run(t, src, nil, int64(3), int64(4))
	if err != nil || got != int64(7) {
		t.Fatalf("main(3,4) = %v, %v", got, err)
	}
	if _, err := run(t, src, nil, int64(1)); err == nil {
		t.Fatal("wrong arg count accepted")
	}
}

func TestMissingEntry(t *testing.T) {
	if _, err := run(t, `func helper() {}`, nil); err == nil || !strings.Contains(err.Error(), "no entry function") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`func main() { return 1 / 0; }`, "division by zero"},
		{`func main() { return 1 % 0; }`, "modulo by zero"},
		{`func main() { return 1.0 / 0.0; }`, "division by zero"},
		{`func main() { var a = [1]; return a[5]; }`, "out of range"},
		{`func main() { var a = [1]; return a[-1]; }`, "out of range"},
		{`func main() { var a = [1]; return a["x"]; }`, "index must be int"},
		{`func main() { return 5[0]; }`, "cannot index"},
		{`func main() { return "a" + 1; }`, "cannot add"},
		{`func main() { return -"x"; }`, "cannot negate"},
		{`func main() { return 1 < "x"; }`, "invalid operands"},
		{`func main() { var m = {1: 2}; }`, "map key must be string"},
		{`func main() { return 1.5 % 2.0; }`, "integer operands"},
	}
	for _, c := range cases {
		_, err := run(t, c.src, nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestMapMissingKeyIsNil(t *testing.T) {
	got := mustRun(t, `func main() { var m = {"a": 1}; return m["missing"] == nil; }`)
	if got != true {
		t.Fatalf("= %v", got)
	}
}

func TestStringIndexing(t *testing.T) {
	got := mustRun(t, `func main() { return "AB"[1]; }`)
	if got != int64('B') {
		t.Fatalf("= %v, want 66", got)
	}
}

func TestStepQuota(t *testing.T) {
	b := Std()
	compiled := MustCompile(`func main() { while (true) {} }`, b)
	vm := NewVM(compiled, b, WithMaxSteps(10_000))
	_, err := vm.Run(context.Background(), "main")
	if !errors.Is(err, ErrStepQuota) {
		t.Fatalf("err = %v, want ErrStepQuota", err)
	}
	if vm.Steps() < 10_000 {
		t.Fatalf("steps = %d", vm.Steps())
	}
}

func TestStackOverflow(t *testing.T) {
	_, err := run(t, `func f() { return f(); } func main() { return f(); }`, nil)
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestTerminateStopsInfiniteLoop(t *testing.T) {
	b := Std()
	compiled := MustCompile(`func main() { while (true) {} }`, b)
	vm := NewVM(compiled, b)
	done := make(chan error, 1)
	go func() {
		_, err := vm.Run(context.Background(), "main")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	vm.Control().Terminate()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTerminated) {
			t.Fatalf("err = %v, want ErrTerminated", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("terminate did not stop the loop")
	}
}

func TestSuspendResume(t *testing.T) {
	b := Std()
	compiled := MustCompile(`
var n = 0;
func main() { while (n < 100000000) { n += 1; } return n; }`, b)
	vm := NewVM(compiled, b)
	done := make(chan error, 1)
	go func() {
		_, err := vm.Run(context.Background(), "main")
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	vm.Control().Suspend()
	// Give the gate time to engage, then confirm no progress while
	// suspended.
	time.Sleep(5 * time.Millisecond)
	s1 := vm.Steps()
	time.Sleep(20 * time.Millisecond)
	s2 := vm.Steps()
	if s2 != s1 {
		t.Fatalf("VM advanced %d steps while suspended", s2-s1)
	}
	if got := vm.Control().State(); got != "suspended" {
		t.Fatalf("state = %q", got)
	}
	vm.Control().Resume()
	time.Sleep(5 * time.Millisecond)
	if vm.Steps() == s2 {
		t.Fatal("VM did not resume")
	}
	vm.Control().Terminate()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("terminate after resume did not stop the VM")
	}
}

func TestContextCancelUnblocksSuspended(t *testing.T) {
	b := Std()
	compiled := MustCompile(`func main() { while (true) {} }`, b)
	vm := NewVM(compiled, b)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := vm.Run(ctx, "main")
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	vm.Control().Suspend()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock suspended VM")
	}
}

func TestHostFunctionEnvAndErrors(t *testing.T) {
	var sawVM *VM
	got, err := run(t, `func main() { return probe(21); }`, func(b *Bindings) {
		b.Register("probe", 1, func(env *Env, args []Value) (Value, error) {
			sawVM = env.VM
			return args[0].(int64) * 2, nil
		})
	})
	if err != nil || got != int64(42) {
		t.Fatalf("probe = %v, %v", got, err)
	}
	if sawVM == nil {
		t.Fatal("host function did not receive the VM")
	}
	_, err = run(t, `func main() { fail(); }`, func(b *Bindings) {
		b.Register("fail", 0, func(*Env, []Value) (Value, error) {
			return nil, errors.New("host exploded")
		})
	})
	if err == nil || !strings.Contains(err.Error(), "host exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalInspection(t *testing.T) {
	b := Std()
	compiled := MustCompile(`var health = 0.75; func main() { return nil; }`, b)
	vm := NewVM(compiled, b)
	if _, err := vm.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	v, ok := vm.Global("health")
	if !ok || v != 0.75 {
		t.Fatalf("Global(health) = %v, %v", v, ok)
	}
	if _, ok := vm.Global("nope"); ok {
		t.Fatal("bogus global found")
	}
}

func TestBuiltins(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{`len("hello")`, int64(5)},
		{`len([1,2])`, int64(2)},
		{`len({"a":1})`, int64(1)},
		{`str(12)`, "12"},
		{`str(1.5)`, "1.5"},
		{`str(true)`, "true"},
		{`str(nil)`, "nil"},
		{`int(3.9)`, int64(3)},
		{`int("42")`, int64(42)},
		{`int("-7")`, int64(-7)},
		{`int(true)`, int64(1)},
		{`float(3)`, 3.0},
		{`abs(-4)`, int64(4)},
		{`abs(-4.5)`, 4.5},
		{`min(3, 1, 2)`, int64(1)},
		{`max(3, 1, 2)`, int64(3)},
		{`min(1.5, 2)`, 1.5},
		{`contains("hello", "ell")`, true},
		{`contains("hello", "xyz")`, false},
		{`contains([1,2,3], 2)`, true},
		{`contains({"k":1}, "k")`, true},
		{`contains({"k":1}, "j")`, false},
		{`substr("hello", 1, 3)`, "el"},
		{`len(split("a,b,c", ","))`, int64(3)},
		{`split("a,b", ",")[1]`, "b"},
		{`split("abc", "x")[0]`, "abc"},
		{`sprintf("%d-%s-%f", 1, "x", 0.5)`, "1-x-0.500000"},
		{`sprintf("100%%")`, "100%"},
		{`sprintf("%v", [1,2])`, "[1, 2]"},
	}
	for _, tt := range tests {
		got := mustRun(t, `func main() { return `+tt.expr+`; }`)
		if !valueEqual(got, tt.want) {
			t.Errorf("%s = %v (%s), want %v", tt.expr, got, TypeName(got), tt.want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	cases := []string{
		`len(1)`,
		`append(1, 2)`,
		`keys([1])`,
		`int("abc")`,
		`int("")`,
		`float("x")`,
		`abs("x")`,
		`substr("ab", 1, 9)`,
		`substr("ab", -1, 1)`,
		`split("a", "")`,
		`sprintf("%d", "x")`,
		`sprintf("%q", 1)`,
		`sprintf("%d")`,
		`sprintf("x", 1)`,
		`sprintf("%")`,
		`delete([1], "k")`,
		`contains(1, 2)`,
	}
	for _, expr := range cases {
		if _, err := run(t, `func main() { return `+expr+`; }`, nil); err == nil {
			t.Errorf("%s succeeded, want error", expr)
		}
	}
}

func TestDeleteBuiltin(t *testing.T) {
	got := mustRun(t, `func main() { var m = {"a":1,"b":2}; delete(m, "a"); return len(m); }`)
	if got != int64(1) {
		t.Fatalf("= %v", got)
	}
}
