package dpl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel errors surfaced by VM execution.
var (
	// ErrTerminated reports that the instance was killed via Control.
	ErrTerminated = errors.New("dpl: instance terminated")
	// ErrStepQuota reports that the instance exceeded its CPU (step)
	// quota — the elastic process's "OS-enforced resource constraint".
	ErrStepQuota = errors.New("dpl: step quota exceeded")
	// ErrStackOverflow reports call recursion beyond the frame limit.
	ErrStackOverflow = errors.New("dpl: call stack overflow")
)

// controlState is the lifecycle state a Control gate enforces.
type controlState uint8

const (
	ctrlRunning controlState = iota
	ctrlSuspended
	ctrlTerminated
)

// Control provides the thread-control operations the paper gives a
// delegator over a DPI: suspend, resume, terminate. A VM checks its
// Control at instruction-batch boundaries, so control takes effect in
// bounded time even inside tight agent loops.
//
// The zero value is a running, usable Control.
type Control struct {
	mu     sync.Mutex
	state  controlState
	resume chan struct{}
}

// Suspend pauses the instance at the next gate. Idempotent.
func (c *Control) Suspend() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == ctrlRunning {
		c.state = ctrlSuspended
		c.resume = make(chan struct{})
	}
}

// Resume lets a suspended instance continue. Idempotent.
func (c *Control) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == ctrlSuspended {
		c.state = ctrlRunning
		close(c.resume)
		c.resume = nil
	}
}

// Terminate kills the instance at the next gate. Irreversible.
func (c *Control) Terminate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.state
	c.state = ctrlTerminated
	if prev == ctrlSuspended {
		close(c.resume)
		c.resume = nil
	}
}

// State reports the current state as a string (running / suspended /
// terminated), for status queries.
func (c *Control) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case ctrlSuspended:
		return "suspended"
	case ctrlTerminated:
		return "terminated"
	default:
		return "running"
	}
}

// gate blocks while suspended and returns ErrTerminated once
// terminated. ctx cancellation also unblocks it.
func (c *Control) gate(ctx context.Context) error {
	for {
		c.mu.Lock()
		switch c.state {
		case ctrlRunning:
			c.mu.Unlock()
			return nil
		case ctrlTerminated:
			c.mu.Unlock()
			return ErrTerminated
		default:
			ch := c.resume
			c.mu.Unlock()
			select {
			case <-ch:
				// re-check state
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// gateMask: the VM consults its Control at least every (gateMask+1)
// steps. Step accounting is batched: the dispatch loop keeps a local
// counter and flushes it to the shared atomic at gate boundaries,
// backward jumps, calls and returns, so suspend/terminate/quota take
// effect within one gate window instead of costing an atomic per
// instruction.
const gateMask = 255

// frame is one suspended caller activation on the flat call stack.
type frame struct {
	fn   *CompiledFunc
	code []Instr
	ip   int
	base int
}

// VM executes a Compiled program. A VM is single-threaded; the elastic
// process runs each DPI's VM on its own goroutine.
type VM struct {
	prog     *Compiled
	bindings *Bindings
	ctrl     *Control
	maxSteps uint64
	steps    atomic.Uint64
	globals  []Value
	ctx      context.Context

	// yield, when set, is invoked from flush once at least yieldEvery
	// steps have accumulated since the previous invocation, receiving
	// the consumed count. The embedding runtime uses it as its
	// scheduling tick (fair-share accounting, rate quotas); a non-nil
	// error aborts the run. Piggybacking on the gate boundary keeps the
	// dispatch loop itself untouched: the cost is one comparison per
	// gate window when a yield hook is installed, zero otherwise.
	yield      func(consumed uint64) error
	yieldEvery uint64
	lastYield  uint64

	// env is the reusable host-call environment; hostFns aliases the
	// bindings' resolved table so OpCallHost indexes it directly instead
	// of allocating an Env and re-checking through Bindings.Call.
	env     Env
	hostFns []binding

	// stack and frames form the flat execution machine, reused across
	// runs: one contiguous value array holds every activation's locals
	// and operand stack (frames are [base, base+NumLocals+maxStack)
	// windows sized from the verifier's proven high-water marks). exec
	// claims both by swapping nil in, so a host function that re-enters
	// Run on the same VM builds a fresh transient machine instead of
	// corrupting its caller's.
	stack  []Value
	frames []frame

	// Meta is an opaque attachment for the embedding runtime (the MbD
	// server hangs the DPI handle here so host functions can reach it).
	Meta any
}

// VMOption configures a VM.
type VMOption func(*VM)

// WithMaxSteps bounds total VM instruction count; 0 means unlimited.
func WithMaxSteps(n uint64) VMOption {
	return func(vm *VM) { vm.maxSteps = n }
}

// WithControl attaches an external Control (shared with the runtime's
// DPI handle).
func WithControl(c *Control) VMOption {
	return func(vm *VM) { vm.ctrl = c }
}

// WithYield installs fn as the VM's scheduling tick: it runs at the
// first gate boundary after every `every` executed steps (so at
// granularity max(every, gateMask+1)), receiving the steps consumed
// since the previous tick. Returning an error aborts the run with that
// error. every == 0 ticks at every gate boundary.
func WithYield(every uint64, fn func(consumed uint64) error) VMOption {
	return func(vm *VM) {
		vm.yield = fn
		vm.yieldEvery = every
	}
}

// NewVM prepares a VM for prog using the given host bindings. The
// bindings must be the same table the program was compiled against.
func NewVM(prog *Compiled, bindings *Bindings, opts ...VMOption) *VM {
	vm := &VM{
		prog:     prog,
		bindings: bindings,
		ctrl:     &Control{},
		globals:  make([]Value, len(prog.GlobalNames)),
	}
	vm.env.VM = vm
	for _, o := range opts {
		o(vm)
	}
	return vm
}

// Control returns the VM's control handle.
func (vm *VM) Control() *Control { return vm.ctrl }

// Steps returns the number of instructions executed so far. It is safe
// to call from other goroutines (status queries, accounting).
func (vm *VM) Steps() uint64 { return vm.steps.Load() }

// Context returns the context of the current Run, for host functions
// that block (sleep, receive).
func (vm *VM) Context() context.Context {
	if vm.ctx == nil {
		return context.Background()
	}
	return vm.ctx
}

// Gate lets long-running host functions honor suspend/terminate midway.
func (vm *VM) Gate() error { return vm.ctrl.gate(vm.Context()) }

// Global reads a global variable by name (for post-run inspection).
func (vm *VM) Global(name string) (Value, bool) {
	for i, n := range vm.prog.GlobalNames {
		if n == name {
			return vm.globals[i], true
		}
	}
	return nil, false
}

const maxFrames = 256

// Run executes the program's global initializers (once per VM) and then
// the named entry function with args, returning its value.
func (vm *VM) Run(ctx context.Context, entry string, args ...Value) (Value, error) {
	// The dispatch loop does not bounds-check operands; refuse any
	// program that fails structural verification (cached after the
	// first Run).
	if err := vm.prog.EnsureStructure(); err != nil {
		return nil, err
	}
	prevCtx := vm.ctx
	vm.ctx = ctx
	defer func() { vm.ctx = prevCtx }()
	if vm.bindings != nil {
		vm.hostFns = vm.bindings.funcs
	}
	if vm.steps.Load() == 0 {
		if init := vm.prog.initFunc(); init != nil {
			if _, err := vm.exec(init, nil); err != nil {
				return nil, fmt.Errorf("dpl: global initialization: %w", err)
			}
		}
	}
	fi, ok := vm.prog.FuncIdx[entry]
	if !ok {
		return nil, fmt.Errorf("dpl: no entry function %q", entry)
	}
	fn := vm.prog.Funcs[fi]
	if len(args) != fn.NumParams {
		return nil, fmt.Errorf("dpl: entry %q expects %d arguments, got %d", entry, fn.NumParams, len(args))
	}
	return vm.exec(fn, args)
}

// exec runs one entry activation on the VM's flat machine. It claims
// the reused stack/frame arrays (a re-entrant Run from a host function
// finds nil and allocates transient ones), sizes the entry frame from
// the verifier's bound, and releases the — possibly grown — machine for
// the next run. The release also drops every value reference the run
// left behind, so a parked VM does not pin results.
func (vm *VM) exec(fn *CompiledFunc, args []Value) (Value, error) {
	stack, frames := vm.stack, vm.frames
	vm.stack, vm.frames = nil, nil
	if need := fn.NumLocals + fn.maxStack; cap(stack) < need {
		stack = make([]Value, need)
	} else {
		stack = stack[:cap(stack)]
	}
	copy(stack, args)
	clear(stack[len(args):fn.NumLocals])
	v, stack, frames, err := vm.dispatch(fn, stack, frames[:0])
	clear(stack)
	vm.stack, vm.frames = stack, frames[:0]
	return v, err
}

// growValueStack returns a larger stack with the old contents; kept out
// of the dispatch loop so the hot path stays allocation-free.
func growValueStack(stack []Value, need int) []Value {
	ns := make([]Value, need+need/2)
	copy(ns, stack)
	return ns
}

// flush publishes pending steps to the shared counter and runs the
// gate and quota checks that fall due at this boundary. Quota may be
// detected up to one gate window late — the documented tolerance that
// buys batched accounting.
func (vm *VM) flush(pending, nextGate uint64) (uint64, error) {
	total := vm.steps.Add(pending)
	if total >= nextGate {
		if err := vm.ctrl.gate(vm.Context()); err != nil {
			return nextGate, err
		}
		nextGate = (total | gateMask) + 1
		if vm.yield != nil && total-vm.lastYield >= vm.yieldEvery {
			consumed := total - vm.lastYield
			vm.lastYield = total
			if err := vm.yield(consumed); err != nil {
				return nextGate, err
			}
		}
	}
	if vm.maxSteps > 0 && total > vm.maxSteps {
		return nextGate, ErrStepQuota
	}
	return nextGate, nil
}

// binEval applies one OpBin-class operator, routing the arithmetic five
// to arith and the relational four to compare (the verifier admits no
// other immediates). The int64/int64 fast path mirrors those functions
// exactly — comparisons go through float64 like compare's toFloat route
// does, so results match bit-for-bit even beyond 2^53 — and falls back
// to them for zero divisors so error text stays identical.
func binEval(op TokenKind, l, r Value) (Value, error) {
	if x, ok := l.(int64); ok {
		if y, ok := r.(int64); ok {
			switch op {
			case TokPlus:
				return x + y, nil
			case TokMinus:
				return x - y, nil
			case TokStar:
				return x * y, nil
			case TokLt:
				return float64(x) < float64(y), nil
			case TokLe:
				return float64(x) <= float64(y), nil
			case TokGt:
				return float64(x) > float64(y), nil
			case TokGe:
				return float64(x) >= float64(y), nil
			case TokSlash:
				if y != 0 {
					return x / y, nil
				}
			case TokPercent:
				if y != 0 {
					return x % y, nil
				}
			}
		}
	}
	switch op {
	case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
		return arith(op, l, r)
	default:
		return compare(op, l, r)
	}
}

// dispatch is the flat-frame execution loop. Every activation lives in
// one contiguous stack: locals at [base, base+NumLocals), operand stack
// growing from there to at most base+NumLocals+maxStack (the verifier's
// proven bound, so no per-push growth checks). OpCall pushes the caller
// onto frames and re-bases in place — the arguments the caller pushed
// *are* the callee's first locals, no copy. OpCallHost passes a
// capped subslice of the live stack for the same reason. The returned
// stack/frames are the (possibly grown) arrays for exec to recycle.
//
// mbd:hotloop — vet-mbd forbids heap allocations and closure captures
// in this function; intentional amortized growth carries an
// mbd:alloc-ok marker.
func (vm *VM) dispatch(fn *CompiledFunc, stack []Value, frames []frame) (Value, []Value, []frame, error) {
	var (
		code     = fn.Code
		ip       = 0
		base     = 0
		sp       = fn.NumLocals
		pending  uint64
		nextGate = (vm.steps.Load() | gateMask) + 1
		rv       Value
		in       Instr
		err      error
	)
	for {
		if ip >= len(code) {
			rv = nil // implicit return-nil epilogue
			goto ret
		}
		in = code[ip]
		ip++
		pending++
		if pending > gateMask {
			if nextGate, err = vm.flush(pending, nextGate); err != nil {
				goto fail
			}
			pending = 0
		}
		switch in.Op {
		case OpConst:
			stack[sp] = vm.prog.Consts[in.A]
			sp++
		case OpNil:
			stack[sp] = nil
			sp++
		case OpTrue:
			stack[sp] = true
			sp++
		case OpFalse:
			stack[sp] = false
			sp++
		case OpLoadG:
			stack[sp] = vm.globals[in.A]
			sp++
		case OpStoreG:
			sp--
			vm.globals[in.A] = stack[sp]
		case OpLoadL:
			stack[sp] = stack[base+in.A]
			sp++
		case OpStoreL:
			sp--
			stack[base+in.A] = stack[sp]
		case OpPop:
			sp--
		case OpBin:
			sp -= 2
			var v Value
			v, err = binEval(TokenKind(in.A), stack[sp], stack[sp+1])
			if err != nil {
				goto fail
			}
			stack[sp] = v
			sp++
		case OpEq:
			sp--
			stack[sp-1] = valueEqual(stack[sp-1], stack[sp])
		case OpNe:
			sp--
			stack[sp-1] = !valueEqual(stack[sp-1], stack[sp])
		case OpNeg:
			switch x := stack[sp-1].(type) {
			case int64:
				stack[sp-1] = -x
			case float64:
				stack[sp-1] = -x
			default:
				err = rtErrf("cannot negate %s", TypeName(x))
				goto fail
			}
		case OpNot:
			stack[sp-1] = !Truthy(stack[sp-1])
		case OpJump:
			if in.A < ip { // backward: flush so loops stay observable
				if nextGate, err = vm.flush(pending, nextGate); err != nil {
					goto fail
				}
				pending = 0
			}
			ip = in.A
		case OpJumpFalse:
			sp--
			if !Truthy(stack[sp]) {
				if in.A < ip {
					if nextGate, err = vm.flush(pending, nextGate); err != nil {
						goto fail
					}
					pending = 0
				}
				ip = in.A
			}
		case OpJFKeep:
			// Keep-form branches only ever jump forward in compiler
			// output; hostile backward ones are still bounded by the
			// gateMask-sized pending cap above.
			if !Truthy(stack[sp-1]) {
				ip = in.A
			}
		case OpJTKeep:
			if Truthy(stack[sp-1]) {
				ip = in.A
			}
		case OpCall:
			if nextGate, err = vm.flush(pending, nextGate); err != nil {
				goto fail
			}
			pending = 0
			if len(frames) >= maxFrames-1 {
				err = ErrStackOverflow
				goto fail
			}
			frames = append(frames, frame{fn: fn, code: code, ip: ip, base: base}) //mbd:alloc-ok — amortized: capacity persists across runs
			fn = vm.prog.Funcs[in.A]
			base = sp - in.B
			if need := base + fn.NumLocals + fn.maxStack; need > len(stack) {
				stack = growValueStack(stack, need)
			}
			clear(stack[base+in.B : base+fn.NumLocals])
			sp = base + fn.NumLocals
			code = fn.Code
			ip = 0
		case OpCallHost:
			if nextGate, err = vm.flush(pending, nextGate); err != nil {
				goto fail
			}
			pending = 0
			if in.A >= len(vm.hostFns) {
				err = rtErrf("host function index %d out of range", in.A)
				goto fail
			}
			hf := &vm.hostFns[in.A]
			if hf.arity >= 0 && hf.arity != in.B {
				err = rtErrf("%s expects %d arguments, got %d", hf.name, hf.arity, in.B)
				goto fail
			}
			var v Value
			v, err = hf.fn(&vm.env, stack[sp-in.B:sp:sp])
			if err != nil {
				goto fail
			}
			sp -= in.B
			stack[sp] = v
			sp++
		case OpReturn:
			sp--
			rv = stack[sp]
			goto ret
		case OpReturnNil:
			rv = nil
			goto ret
		case OpIndex:
			sp--
			var v Value
			v, err = indexValue(stack[sp-1], stack[sp])
			if err != nil {
				goto fail
			}
			stack[sp-1] = v
		case OpSetIndex:
			sp -= 3
			if err = setIndex(stack[sp], stack[sp+1], stack[sp+2]); err != nil {
				goto fail
			}
		case OpArray:
			a := &Array{Elems: make([]Value, in.A)} //mbd:alloc-ok — the program constructs a value
			sp -= in.A
			copy(a.Elems, stack[sp:sp+in.A])
			stack[sp] = a
			sp++
		case OpMap:
			m := NewMap()
			sp -= in.A * 2
			for i := 0; i < in.A; i++ {
				k, ok := stack[sp+2*i].(string)
				if !ok {
					err = rtErrf("map key must be string, got %s", TypeName(stack[sp+2*i]))
					goto fail
				}
				m.M[k] = stack[sp+2*i+1]
			}
			stack[sp] = m
			sp++
		case OpLoadLConstBin:
			var v Value
			v, err = binEval(TokenKind(in.B&0xff), stack[base+in.A], vm.prog.Consts[in.B>>8])
			if err != nil {
				goto fail
			}
			stack[sp] = v
			sp++
		case OpLoadLLoadLBin:
			var v Value
			v, err = binEval(TokenKind(in.B&0xff), stack[base+in.A], stack[base+in.B>>8])
			if err != nil {
				goto fail
			}
			stack[sp] = v
			sp++
		case OpBinJumpFalse:
			sp -= 2
			var v Value
			v, err = binEval(TokenKind(in.B), stack[sp], stack[sp+1])
			if err != nil {
				goto fail
			}
			if !Truthy(v) {
				if in.A < ip {
					if nextGate, err = vm.flush(pending, nextGate); err != nil {
						goto fail
					}
					pending = 0
				}
				ip = in.A
			}
		case OpConstStoreL:
			stack[base+in.B] = vm.prog.Consts[in.A]
		case OpIncL:
			var v Value
			v, err = binEval(TokPlus, stack[base+in.A], vm.prog.Consts[in.B])
			if err != nil {
				goto fail
			}
			stack[base+in.A] = v
		case OpDecL:
			var v Value
			v, err = binEval(TokMinus, stack[base+in.A], vm.prog.Consts[in.B])
			if err != nil {
				goto fail
			}
			stack[base+in.A] = v
		default:
			err = fmt.Errorf("dpl: unknown opcode %d", in.Op)
			goto fail
		}
		continue

	ret:
		// Function return: flush (calls and returns are accounting
		// boundaries), then either leave dispatch or pop the caller.
		// The result lands where the callee's frame began — exactly
		// where the caller expects its one pushed value.
		if nextGate, err = vm.flush(pending, nextGate); err != nil {
			goto fail
		}
		pending = 0
		if len(frames) == 0 {
			return rv, stack, frames, nil
		}
		{
			fr := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			stack[base] = rv
			sp = base + 1
			fn, code, ip, base = fr.fn, fr.code, fr.ip, fr.base
		}
		continue

	fail:
		return nil, stack, frames, err
	}
}
