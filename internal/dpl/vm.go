package dpl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel errors surfaced by VM execution.
var (
	// ErrTerminated reports that the instance was killed via Control.
	ErrTerminated = errors.New("dpl: instance terminated")
	// ErrStepQuota reports that the instance exceeded its CPU (step)
	// quota — the elastic process's "OS-enforced resource constraint".
	ErrStepQuota = errors.New("dpl: step quota exceeded")
	// ErrStackOverflow reports call recursion beyond the frame limit.
	ErrStackOverflow = errors.New("dpl: call stack overflow")
)

// controlState is the lifecycle state a Control gate enforces.
type controlState uint8

const (
	ctrlRunning controlState = iota
	ctrlSuspended
	ctrlTerminated
)

// Control provides the thread-control operations the paper gives a
// delegator over a DPI: suspend, resume, terminate. A VM checks its
// Control at instruction-batch boundaries, so control takes effect in
// bounded time even inside tight agent loops.
//
// The zero value is a running, usable Control.
type Control struct {
	mu     sync.Mutex
	state  controlState
	resume chan struct{}
}

// Suspend pauses the instance at the next gate. Idempotent.
func (c *Control) Suspend() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == ctrlRunning {
		c.state = ctrlSuspended
		c.resume = make(chan struct{})
	}
}

// Resume lets a suspended instance continue. Idempotent.
func (c *Control) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == ctrlSuspended {
		c.state = ctrlRunning
		close(c.resume)
		c.resume = nil
	}
}

// Terminate kills the instance at the next gate. Irreversible.
func (c *Control) Terminate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.state
	c.state = ctrlTerminated
	if prev == ctrlSuspended {
		close(c.resume)
		c.resume = nil
	}
}

// State reports the current state as a string (running / suspended /
// terminated), for status queries.
func (c *Control) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case ctrlSuspended:
		return "suspended"
	case ctrlTerminated:
		return "terminated"
	default:
		return "running"
	}
}

// gate blocks while suspended and returns ErrTerminated once
// terminated. ctx cancellation also unblocks it.
func (c *Control) gate(ctx context.Context) error {
	for {
		c.mu.Lock()
		switch c.state {
		case ctrlRunning:
			c.mu.Unlock()
			return nil
		case ctrlTerminated:
			c.mu.Unlock()
			return ErrTerminated
		default:
			ch := c.resume
			c.mu.Unlock()
			select {
			case <-ch:
				// re-check state
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// gateMask: the VM consults its Control every (gateMask+1) steps.
const gateMask = 255

// VM executes a Compiled program. A VM is single-threaded; the elastic
// process runs each DPI's VM on its own goroutine.
type VM struct {
	prog     *Compiled
	bindings *Bindings
	ctrl     *Control
	maxSteps uint64
	steps    atomic.Uint64
	globals  []Value
	ctx      context.Context

	// Meta is an opaque attachment for the embedding runtime (the MbD
	// server hangs the DPI handle here so host functions can reach it).
	Meta any
}

// VMOption configures a VM.
type VMOption func(*VM)

// WithMaxSteps bounds total VM instruction count; 0 means unlimited.
func WithMaxSteps(n uint64) VMOption {
	return func(vm *VM) { vm.maxSteps = n }
}

// WithControl attaches an external Control (shared with the runtime's
// DPI handle).
func WithControl(c *Control) VMOption {
	return func(vm *VM) { vm.ctrl = c }
}

// NewVM prepares a VM for prog using the given host bindings. The
// bindings must be the same table the program was compiled against.
func NewVM(prog *Compiled, bindings *Bindings, opts ...VMOption) *VM {
	vm := &VM{
		prog:     prog,
		bindings: bindings,
		ctrl:     &Control{},
		globals:  make([]Value, len(prog.GlobalNames)),
	}
	for _, o := range opts {
		o(vm)
	}
	return vm
}

// Control returns the VM's control handle.
func (vm *VM) Control() *Control { return vm.ctrl }

// Steps returns the number of instructions executed so far. It is safe
// to call from other goroutines (status queries, accounting).
func (vm *VM) Steps() uint64 { return vm.steps.Load() }

// Context returns the context of the current Run, for host functions
// that block (sleep, receive).
func (vm *VM) Context() context.Context {
	if vm.ctx == nil {
		return context.Background()
	}
	return vm.ctx
}

// Gate lets long-running host functions honor suspend/terminate midway.
func (vm *VM) Gate() error { return vm.ctrl.gate(vm.Context()) }

// Global reads a global variable by name (for post-run inspection).
func (vm *VM) Global(name string) (Value, bool) {
	for i, n := range vm.prog.GlobalNames {
		if n == name {
			return vm.globals[i], true
		}
	}
	return nil, false
}

const maxFrames = 256

// Run executes the program's global initializers (once per VM) and then
// the named entry function with args, returning its value.
func (vm *VM) Run(ctx context.Context, entry string, args ...Value) (Value, error) {
	// The exec loop does not bounds-check operands; refuse any program
	// that fails structural verification (cached after the first Run).
	if err := vm.prog.EnsureStructure(); err != nil {
		return nil, err
	}
	vm.ctx = ctx
	defer func() { vm.ctx = nil }()
	if vm.steps.Load() == 0 && len(vm.prog.InitCode) > 0 {
		init := &CompiledFunc{Name: "<init>", Code: vm.prog.InitCode}
		if _, err := vm.exec(init, nil, 0); err != nil {
			return nil, fmt.Errorf("dpl: global initialization: %w", err)
		}
	}
	fi, ok := vm.prog.FuncIdx[entry]
	if !ok {
		return nil, fmt.Errorf("dpl: no entry function %q", entry)
	}
	fn := vm.prog.Funcs[fi]
	if len(args) != fn.NumParams {
		return nil, fmt.Errorf("dpl: entry %q expects %d arguments, got %d", entry, fn.NumParams, len(args))
	}
	return vm.exec(fn, args, 0)
}

// exec runs one function activation.
func (vm *VM) exec(fn *CompiledFunc, args []Value, depth int) (Value, error) {
	if depth >= maxFrames {
		return nil, ErrStackOverflow
	}
	locals := make([]Value, fn.NumLocals)
	copy(locals, args)
	var stack []Value
	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	code := fn.Code
	for ip := 0; ip < len(code); ip++ {
		n := vm.steps.Add(1)
		if n&gateMask == 0 {
			if err := vm.ctrl.gate(vm.Context()); err != nil {
				return nil, err
			}
		}
		if vm.maxSteps > 0 && n > vm.maxSteps {
			return nil, ErrStepQuota
		}
		in := code[ip]
		switch in.Op {
		case OpConst:
			push(vm.prog.Consts[in.A])
		case OpNil:
			push(nil)
		case OpTrue:
			push(true)
		case OpFalse:
			push(false)
		case OpLoadG:
			push(vm.globals[in.A])
		case OpStoreG:
			vm.globals[in.A] = pop()
		case OpLoadL:
			push(locals[in.A])
		case OpStoreL:
			locals[in.A] = pop()
		case OpPop:
			pop()
		case OpBin:
			r := pop()
			l := pop()
			op := TokenKind(in.A)
			var (
				v   Value
				err error
			)
			switch op {
			case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
				v, err = arith(op, l, r)
			default:
				v, err = compare(op, l, r)
			}
			if err != nil {
				return nil, err
			}
			push(v)
		case OpEq:
			r := pop()
			l := pop()
			push(valueEqual(l, r))
		case OpNe:
			r := pop()
			l := pop()
			push(!valueEqual(l, r))
		case OpNeg:
			switch x := pop().(type) {
			case int64:
				push(-x)
			case float64:
				push(-x)
			default:
				return nil, rtErrf("cannot negate %s", TypeName(x))
			}
		case OpNot:
			push(!Truthy(pop()))
		case OpJump:
			ip = in.A - 1
		case OpJumpFalse:
			if !Truthy(pop()) {
				ip = in.A - 1
			}
		case OpJFKeep:
			if !Truthy(stack[len(stack)-1]) {
				ip = in.A - 1
			}
		case OpJTKeep:
			if Truthy(stack[len(stack)-1]) {
				ip = in.A - 1
			}
		case OpCall:
			callee := vm.prog.Funcs[in.A]
			callArgs := make([]Value, in.B)
			copy(callArgs, stack[len(stack)-in.B:])
			stack = stack[:len(stack)-in.B]
			v, err := vm.exec(callee, callArgs, depth+1)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpCallHost:
			callArgs := make([]Value, in.B)
			copy(callArgs, stack[len(stack)-in.B:])
			stack = stack[:len(stack)-in.B]
			v, err := vm.bindings.Call(in.A, &Env{VM: vm}, callArgs)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpReturn:
			return pop(), nil
		case OpReturnNil:
			return nil, nil
		case OpIndex:
			i := pop()
			x := pop()
			v, err := indexValue(x, i)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpSetIndex:
			v := pop()
			i := pop()
			x := pop()
			if err := setIndex(x, i, v); err != nil {
				return nil, err
			}
		case OpArray:
			a := &Array{Elems: make([]Value, in.A)}
			copy(a.Elems, stack[len(stack)-in.A:])
			stack = stack[:len(stack)-in.A]
			push(a)
		case OpMap:
			m := NewMap()
			base := len(stack) - in.A*2
			for i := 0; i < in.A; i++ {
				k, ok := stack[base+2*i].(string)
				if !ok {
					return nil, rtErrf("map key must be string, got %s", TypeName(stack[base+2*i]))
				}
				m.M[k] = stack[base+2*i+1]
			}
			stack = stack[:base]
			push(m)
		default:
			return nil, fmt.Errorf("dpl: unknown opcode %d", in.Op)
		}
	}
	return nil, nil
}
