package dpl

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler for disassembly listings. Disassemble → Assemble →
// Disassemble is stable: the listing carries every fact the round trip
// needs (constants by value, globals and hosts by name, jumps by
// target), so tooling can edit or audit a listing and get an equivalent
// program back. Assembled code is subject to the same structural
// verification as any other bytecode before a VM will run it.

// nameToOp inverts opNames.
var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// asmBinOps maps the disassembler's operator rendering ('+', '<=', …)
// back to the OpBin immediate.
var asmBinOps = func() map[string]TokenKind {
	m := make(map[string]TokenKind, len(binOps))
	for k := range binOps {
		m[k.String()] = k
	}
	return m
}()

type assembler struct {
	out      *Compiled
	constIdx map[Value]int
	globals  map[string]int
	hosts    map[string]int
}

func (a *assembler) constant(v Value) int {
	if i, ok := a.constIdx[v]; ok {
		return i
	}
	i := len(a.out.Consts)
	a.out.Consts = append(a.out.Consts, v)
	a.constIdx[v] = i
	return i
}

func (a *assembler) host(name string) int {
	if i, ok := a.hosts[name]; ok {
		return i
	}
	i := len(a.out.HostNames)
	a.out.HostNames = append(a.out.HostNames, name)
	a.hosts[name] = i
	return i
}

// Assemble parses a disassembly listing (the Disassemble format) back
// into a Compiled program. Host indices are assigned in first-use
// order, so the result generally needs rebinding-aware execution (a
// Bindings table whose layout matches HostNames); the listing itself
// round-trips regardless.
func Assemble(text string) (*Compiled, error) {
	a := &assembler{
		out:      &Compiled{FuncIdx: map[string]int{}},
		constIdx: map[Value]int{},
		globals:  map[string]int{},
		hosts:    map[string]int{},
	}
	lines := strings.Split(text, "\n")
	// First pass: function headers, so forward CALLs resolve.
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, "func ") {
			continue
		}
		name, params, locals, err := parseFuncHeader(line)
		if err != nil {
			return nil, fmt.Errorf("dpl: asm line %d: %w", ln+1, err)
		}
		if _, dup := a.out.FuncIdx[name]; dup {
			return nil, fmt.Errorf("dpl: asm line %d: duplicate function %q", ln+1, name)
		}
		a.out.FuncIdx[name] = len(a.out.Funcs)
		a.out.Funcs = append(a.out.Funcs, &CompiledFunc{Name: name, NumParams: params, NumLocals: locals})
	}
	var cur *[]Instr
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "globals:"):
			for _, g := range strings.Split(strings.TrimPrefix(line, "globals:"), ",") {
				g = strings.TrimSpace(g)
				if g == "" {
					continue
				}
				if _, dup := a.globals[g]; dup {
					return nil, fmt.Errorf("dpl: asm line %d: duplicate global %q", ln+1, g)
				}
				a.globals[g] = len(a.out.GlobalNames)
				a.out.GlobalNames = append(a.out.GlobalNames, g)
			}
		case line == "init:":
			cur = &a.out.InitCode
		case strings.HasPrefix(line, "func "):
			name, _, _, err := parseFuncHeader(line)
			if err != nil {
				return nil, fmt.Errorf("dpl: asm line %d: %w", ln+1, err)
			}
			cur = &a.out.Funcs[a.out.FuncIdx[name]].Code
		default:
			if cur == nil {
				return nil, fmt.Errorf("dpl: asm line %d: instruction outside any section", ln+1)
			}
			in, err := a.parseInstr(line)
			if err != nil {
				return nil, fmt.Errorf("dpl: asm line %d: %w", ln+1, err)
			}
			*cur = append(*cur, in)
		}
	}
	return a.out, nil
}

func parseFuncHeader(line string) (name string, params, locals int, err error) {
	rest, ok := strings.CutPrefix(line, "func ")
	if !ok {
		return "", 0, 0, fmt.Errorf("not a function header: %q", line)
	}
	name, attrs, ok := strings.Cut(rest, " (")
	if !ok || !strings.HasSuffix(attrs, "):") {
		return "", 0, 0, fmt.Errorf("malformed function header: %q", line)
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(attrs, "):"), "params=%d locals=%d", &params, &locals); err != nil {
		return "", 0, 0, fmt.Errorf("malformed function header: %q", line)
	}
	if params < 0 || locals < 0 || params > locals || locals > maxProgLocals {
		return "", 0, 0, fmt.Errorf("implausible frame in header: %q", line)
	}
	return name, params, locals, nil
}

// parseInstr decodes one listing line: "<ip>  MNEMONIC [operand]".
func (a *assembler) parseInstr(line string) (Instr, error) {
	// Leading instruction index.
	i := strings.IndexFunc(line, func(r rune) bool { return r == ' ' || r == '\t' })
	if i < 0 {
		return Instr{}, fmt.Errorf("malformed instruction %q", line)
	}
	if _, err := strconv.Atoi(line[:i]); err != nil {
		return Instr{}, fmt.Errorf("malformed instruction index in %q", line)
	}
	rest := strings.TrimSpace(line[i:])
	mn, operand, _ := strings.Cut(rest, " ")
	operand = strings.TrimSpace(operand)
	op, ok := nameToOp[mn]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
	in := Instr{Op: op}
	switch op {
	case OpNil, OpTrue, OpFalse, OpPop, OpEq, OpNe, OpNeg, OpNot,
		OpReturn, OpReturnNil, OpIndex, OpSetIndex:
		if operand != "" {
			return Instr{}, fmt.Errorf("%s takes no operand, got %q", mn, operand)
		}
		return in, nil
	case OpConst:
		v, err := parseConstOperand(operand)
		if err != nil {
			return Instr{}, err
		}
		in.A = a.constant(v)
		return in, nil
	case OpBin:
		k, ok := asmBinOps[operand]
		if !ok {
			return Instr{}, fmt.Errorf("unknown operator %q", operand)
		}
		in.A = int(k)
		return in, nil
	case OpJump, OpJumpFalse, OpJFKeep, OpJTKeep:
		t, ok := strings.CutPrefix(operand, "->")
		if !ok {
			return Instr{}, fmt.Errorf("malformed jump target %q", operand)
		}
		n, err := strconv.Atoi(t)
		if err != nil {
			return Instr{}, fmt.Errorf("malformed jump target %q", operand)
		}
		in.A = n
		return in, nil
	case OpCall, OpCallHost:
		slash := strings.LastIndex(operand, "/")
		if slash <= 0 {
			return Instr{}, fmt.Errorf("malformed call operand %q", operand)
		}
		name := operand[:slash]
		argc, err := strconv.Atoi(operand[slash+1:])
		if err != nil || argc < 0 {
			return Instr{}, fmt.Errorf("malformed call arity in %q", operand)
		}
		in.B = argc
		if op == OpCall {
			fi, ok := a.out.FuncIdx[name]
			if !ok {
				return Instr{}, fmt.Errorf("call to unknown function %q", name)
			}
			in.A = fi
		} else {
			in.A = a.host(name)
		}
		return in, nil
	case OpLoadG, OpStoreG:
		gi, ok := a.globals[operand]
		if !ok {
			return Instr{}, fmt.Errorf("unknown global %q", operand)
		}
		in.A = gi
		return in, nil
	case OpLoadL, OpStoreL, OpArray, OpMap:
		n, err := strconv.Atoi(operand)
		if err != nil || n < 0 {
			return Instr{}, fmt.Errorf("malformed %s operand %q", mn, operand)
		}
		in.A = n
		return in, nil
	case OpLoadLConstBin, OpLoadLLoadLBin:
		// "<local> <op> <const-or-local>" — the constant is last
		// because its rendering may contain spaces.
		parts := strings.SplitN(operand, " ", 3)
		if len(parts) != 3 {
			return Instr{}, fmt.Errorf("malformed %s operand %q", mn, operand)
		}
		local, err := strconv.Atoi(parts[0])
		if err != nil || local < 0 {
			return Instr{}, fmt.Errorf("malformed %s local in %q", mn, operand)
		}
		k, ok := asmBinOps[parts[1]]
		if !ok {
			return Instr{}, fmt.Errorf("unknown operator %q", parts[1])
		}
		in.A = local
		if op == OpLoadLLoadLBin {
			l2, err := strconv.Atoi(parts[2])
			if err != nil || l2 < 0 {
				return Instr{}, fmt.Errorf("malformed %s local in %q", mn, operand)
			}
			in.B = PackIdxOp(l2, k)
			return in, nil
		}
		v, err := parseConstOperand(strings.TrimSpace(parts[2]))
		if err != nil {
			return Instr{}, err
		}
		in.B = PackIdxOp(a.constant(v), k)
		return in, nil
	case OpBinJumpFalse:
		parts := strings.SplitN(operand, " ", 2)
		if len(parts) != 2 {
			return Instr{}, fmt.Errorf("malformed %s operand %q", mn, operand)
		}
		k, ok := asmBinOps[parts[0]]
		if !ok {
			return Instr{}, fmt.Errorf("unknown operator %q", parts[0])
		}
		t, ok := strings.CutPrefix(parts[1], "->")
		if !ok {
			return Instr{}, fmt.Errorf("malformed jump target %q", parts[1])
		}
		n, err := strconv.Atoi(t)
		if err != nil {
			return Instr{}, fmt.Errorf("malformed jump target %q", parts[1])
		}
		in.A = n
		in.B = int(k)
		return in, nil
	case OpConstStoreL, OpIncL, OpDecL:
		parts := strings.SplitN(operand, " ", 2)
		if len(parts) != 2 {
			return Instr{}, fmt.Errorf("malformed %s operand %q", mn, operand)
		}
		local, err := strconv.Atoi(parts[0])
		if err != nil || local < 0 {
			return Instr{}, fmt.Errorf("malformed %s local in %q", mn, operand)
		}
		v, err := parseConstOperand(strings.TrimSpace(parts[1]))
		if err != nil {
			return Instr{}, err
		}
		if op == OpConstStoreL {
			in.A, in.B = a.constant(v), local
		} else {
			in.A, in.B = local, a.constant(v)
		}
		return in, nil
	default:
		return Instr{}, fmt.Errorf("unassemblable opcode %s", mn)
	}
}

// parseConstOperand reads a formatConst rendering: a quoted string, an
// int, or a float (always carrying ., e or Inf/NaN).
func parseConstOperand(s string) (Value, error) {
	if s == "" {
		return nil, fmt.Errorf("missing constant operand")
	}
	if s[0] == '"' {
		str, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("malformed string constant %s", s)
		}
		return str, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed constant %q", s)
	}
	return f, nil
}
