package dpl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer converts DPL source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *lexer) next() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return nil
		case unicode.IsSpace(r):
			l.next()
		case r == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.next()
			}
		case r == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			startLine, startCol := l.line, l.col
			l.next()
			l.next()
			for {
				if l.peek() == -1 {
					return errAt(startLine, startCol, "unterminated block comment")
				}
				if l.next() == '*' && l.peek() == '/' {
					l.next()
					break
				}
			}
		default:
			return nil
		}
	}
}

// Lex tokenizes the whole source, returning tokens ending in TokEOF.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		if err := l.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		line, col := l.line, l.col
		r := l.peek()
		if r == -1 {
			toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
			return toks, nil
		}
		switch {
		case unicode.IsLetter(r) || r == '_':
			start := l.off
			for {
				r := l.peek()
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				l.next()
			}
			text := l.src[start:l.off]
			kind := TokIdent
			if k, ok := keywords[text]; ok {
				kind = k
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: col})
		case unicode.IsDigit(r):
			start := l.off
			isFloat := false
			for unicode.IsDigit(l.peek()) {
				l.next()
			}
			if l.peek() == '.' && l.off+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.off+1])) {
				isFloat = true
				l.next()
				for unicode.IsDigit(l.peek()) {
					l.next()
				}
			}
			if p := l.peek(); p == 'e' || p == 'E' {
				save := *l
				l.next()
				if p := l.peek(); p == '+' || p == '-' {
					l.next()
				}
				if unicode.IsDigit(l.peek()) {
					isFloat = true
					for unicode.IsDigit(l.peek()) {
						l.next()
					}
				} else {
					*l = save
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: l.src[start:l.off], Line: line, Col: col})
		case r == '"':
			l.next()
			var b strings.Builder
			for {
				r := l.next()
				switch r {
				case -1, '\n':
					return nil, errAt(line, col, "unterminated string literal")
				case '"':
					toks = append(toks, Token{Kind: TokString, Text: b.String(), Line: line, Col: col})
				case '\\':
					esc := l.next()
					switch esc {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case 'r':
						b.WriteByte('\r')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					case '0':
						b.WriteByte(0)
					default:
						return nil, errAt(l.line, l.col, "unknown escape \\%c", esc)
					}
					continue
				default:
					b.WriteRune(r)
					continue
				}
				break
			}
		default:
			l.next()
			two := func(second rune, withKind, without TokenKind) {
				if l.peek() == second {
					l.next()
					toks = append(toks, Token{Kind: withKind, Line: line, Col: col})
				} else {
					toks = append(toks, Token{Kind: without, Line: line, Col: col})
				}
			}
			switch r {
			case '(':
				toks = append(toks, Token{Kind: TokLParen, Line: line, Col: col})
			case ')':
				toks = append(toks, Token{Kind: TokRParen, Line: line, Col: col})
			case '{':
				toks = append(toks, Token{Kind: TokLBrace, Line: line, Col: col})
			case '}':
				toks = append(toks, Token{Kind: TokRBrace, Line: line, Col: col})
			case '[':
				toks = append(toks, Token{Kind: TokLBracket, Line: line, Col: col})
			case ']':
				toks = append(toks, Token{Kind: TokRBracket, Line: line, Col: col})
			case ',':
				toks = append(toks, Token{Kind: TokComma, Line: line, Col: col})
			case ';':
				toks = append(toks, Token{Kind: TokSemicolon, Line: line, Col: col})
			case ':':
				toks = append(toks, Token{Kind: TokColon, Line: line, Col: col})
			case '=':
				two('=', TokEq, TokAssign)
			case '!':
				two('=', TokNe, TokBang)
			case '<':
				two('=', TokLe, TokLt)
			case '>':
				two('=', TokGe, TokGt)
			case '+':
				two('=', TokPlusAssign, TokPlus)
			case '-':
				two('=', TokMinusAssign, TokMinus)
			case '*':
				toks = append(toks, Token{Kind: TokStar, Line: line, Col: col})
			case '/':
				toks = append(toks, Token{Kind: TokSlash, Line: line, Col: col})
			case '%':
				toks = append(toks, Token{Kind: TokPercent, Line: line, Col: col})
			case '&':
				if l.peek() == '&' {
					l.next()
					toks = append(toks, Token{Kind: TokAndAnd, Line: line, Col: col})
				} else {
					return nil, errAt(line, col, "unexpected '&' (did you mean '&&'?)")
				}
			case '|':
				if l.peek() == '|' {
					l.next()
					toks = append(toks, Token{Kind: TokOrOr, Line: line, Col: col})
				} else {
					return nil, errAt(line, col, "unexpected '|' (did you mean '||'?)")
				}
			default:
				return nil, errAt(line, col, "unexpected character %q", r)
			}
		}
	}
}
