package dpl

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`var x = 42; // comment
/* block
   comment */
func f(a, b) { return a + b * 2.5; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokVar, TokIdent, TokAssign, TokInt, TokSemicolon,
		TokFunc, TokIdent, TokLParen, TokIdent, TokComma, TokIdent, TokRParen,
		TokLBrace, TokReturn, TokIdent, TokPlus, TokIdent, TokStar, TokFloat,
		TokSemicolon, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != <= >= < > && || ! = += -= % / *`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAndAnd, TokOrOr,
		TokBang, TokAssign, TokPlusAssign, TokMinusAssign, TokPercent,
		TokSlash, TokStar, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"c\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\t\"c\"\\" {
		t.Fatalf("string = %q", toks[0].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`0 123 3.14 1e3 2.5e-2 6e`)
	if err != nil {
		t.Fatal(err)
	}
	// "6e" must lex as the int 6 followed by the identifier e — the
	// exponent backtrack path.
	want := []TokenKind{TokInt, TokInt, TokFloat, TokFloat, TokFloat, TokInt, TokIdent, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("number %d (%q) = %s, want %s", i, toks[i].Text, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		"\"newline\n\"",
		`"bad \q escape"`,
		`a & b`,
		`a | b`,
		`a # b`,
		`/* unterminated`,
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("var x;\n  func")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("var at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[3].Line != 2 || toks[3].Col != 3 {
		t.Errorf("func at %d:%d, want 2:3", toks[3].Line, toks[3].Col)
	}
}
