package dpl

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestTranslatorRejectsUnboundCall(t *testing.T) {
	// The paper's core safety rule: a dp binding to a function outside
	// the predefined allowed set is rejected at translation time.
	prog := mustParse(t, `func main() { exec("/bin/sh"); }`)
	errs := Check(prog, Std())
	if len(errs) == 0 {
		t.Fatal("unbound call accepted by translator")
	}
	if !strings.Contains(errs[0].Error(), "allowed host function set") {
		t.Fatalf("unexpected diagnostic: %v", errs[0])
	}
}

func TestTranslatorAcceptsBoundCall(t *testing.T) {
	b := Std()
	b.Register("mibGet", 1, func(*Env, []Value) (Value, error) { return int64(0), nil })
	prog := mustParse(t, `func main() { return mibGet("1.3.6.1.2.1.1.3.0"); }`)
	if errs := Check(prog, b); len(errs) != 0 {
		t.Fatalf("bound call rejected: %v", errs)
	}
}

func TestTranslatorArityChecks(t *testing.T) {
	b := Std()
	b.Register("two", 2, func(*Env, []Value) (Value, error) { return nil, nil })
	cases := []struct {
		src  string
		want string
	}{
		{`func main() { two(1); }`, "expects 2 arguments"},
		{`func f(a) { return a; } func main() { f(1, 2); }`, "expects 1 arguments"},
		{`func main() { len(); }`, "expects 1 arguments"},
	}
	for _, c := range cases {
		errs := Check(mustParse(t, c.src), b)
		if len(errs) == 0 || !strings.Contains(errs[0].Error(), c.want) {
			t.Errorf("Check(%q) = %v, want %q", c.src, errs, c.want)
		}
	}
}

func TestTranslatorVariableRules(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`func main() { return y; }`, `undeclared variable "y"`},
		{`func main() { y = 1; }`, `assignment to undeclared variable "y"`},
		{`func main() { var x = 1; var x = 2; }`, `redeclared in this scope`},
		{`var g = 1; var g = 2; func main() {}`, `redeclared`},
		{`func f(a, a) {} func main() {}`, `repeated`},
		{`func f() {} func f() {} func main() {}`, `redefined`},
		{`func len() {} func main() {}`, `shadows a host function`},
		{`func main() { break; }`, `break outside loop`},
		{`func main() { continue; }`, `continue outside loop`},
		{`var g = h; func main() {}`, `"h"`},
	}
	for _, c := range cases {
		errs := Check(mustParse(t, c.src), Std())
		if len(errs) == 0 {
			t.Errorf("Check(%q): accepted, want %q", c.src, c.want)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("Check(%q) = %v, want %q", c.src, errs, c.want)
		}
	}
}

func TestTranslatorAllowsShadowingInNestedScopes(t *testing.T) {
	src := `
func main() {
	var x = 1;
	if (x > 0) {
		var x = 2;
		x = 3;
	}
	while (x < 10) {
		var x = 4;
		x += 1;
		break;
	}
	return x;
}`
	if errs := Check(mustParse(t, src), Std()); len(errs) != 0 {
		t.Fatalf("legal shadowing rejected: %v", errs)
	}
}

func TestTranslatorBreakInsideNestedLoopOK(t *testing.T) {
	src := `
func main() {
	for (var i = 0; i < 3; i += 1) {
		while (true) {
			if (i == 1) { break; }
			continue;
		}
	}
}`
	if errs := Check(mustParse(t, src), Std()); len(errs) != 0 {
		t.Fatalf("nested loop control rejected: %v", errs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main( { }`,
		`func main() { var ; }`,
		`func main() { if x { } }`, // missing parens
		`func main() { 1 + ; }`,
		`func main() { foo(1,; }`,
		`x = 1;`,                                // top-level statement
		`func main() { return 1 }`,              // missing semicolon
		`func main() { a[1 = 2; }`,              // unclosed index
		`func main() {`,                         // unclosed block
		`func main() { (1 + 2; }`,               // unclosed paren
		`func main() { {"k" 1}; }`,              // missing colon
		`func main() { 1 = 2; }`,                // bad assign target
		`func main() { 99999999999999999999; }`, // int overflow
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCompileRejectsUncheckedProgram(t *testing.T) {
	prog := mustParse(t, `func main() { evil(); }`)
	if _, err := Compile(prog, Std()); err == nil {
		t.Fatal("Compile accepted a program the translator must reject")
	}
}
