package dpl_test

import (
	"context"
	"fmt"

	"mbd/internal/dpl"
)

// ExampleCompile shows the full Translator pipeline: parse, check
// against an allowed-function table, compile to bytecode, run.
func ExampleCompile() {
	bindings := dpl.Std()
	bindings.Register("deviceTemp", 0, func(*dpl.Env, []dpl.Value) (dpl.Value, error) {
		return int64(73), nil
	})

	prog, err := dpl.Parse(`
func main() {
	var t = deviceTemp();
	if (t > 70) { return sprintf("overheating: %d", t); }
	return "nominal";
}`)
	if err != nil {
		fmt.Println(err)
		return
	}
	compiled, err := dpl.Compile(prog, bindings)
	if err != nil {
		fmt.Println(err)
		return
	}
	vm := dpl.NewVM(compiled, bindings)
	v, err := vm.Run(context.Background(), "main")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(v)
	// Output: overheating: 73
}

// ExampleCheck demonstrates the paper's safety rule: a delegated
// program binding to a function outside the allowed set is rejected at
// translation time.
func ExampleCheck() {
	prog, _ := dpl.Parse(`func main() { exec("/bin/sh"); }`)
	errs := dpl.Check(prog, dpl.Std())
	fmt.Println(len(errs) > 0)
	// Output: true
}

// ExampleControl shows thread-style lifecycle control over a running
// program instance.
func ExampleControl() {
	bindings := dpl.Std()
	compiled := dpl.MustCompile(`func main() { while (true) {} }`, bindings)
	vm := dpl.NewVM(compiled, bindings)
	done := make(chan error, 1)
	go func() {
		_, err := vm.Run(context.Background(), "main")
		done <- err
	}()
	vm.Control().Terminate()
	fmt.Println(<-done)
	// Output: dpl: instance terminated
}
