package dpl

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"

	"mbd/internal/ber"
)

// A CompiledProgram is the shippable form of a delegated program: the
// object code plus the analysis verdict the sender's source-level
// pipeline derived. The pair is what cascaded delegation forwards down a
// domain tree so that downstream hops can admit the program after a
// cheap bytecode verification (internal/dpl/verify) instead of
// re-parsing and re-analyzing source. SourceHash and Version together
// form the content-addressed cache key (sha256(source) + compiler
// generation) used by the elastic process's program cache.
type CompiledProgram struct {
	// Version is the compiler generation that produced Object; receivers
	// refuse artifacts whose Version differs from their own
	// CompilerVersion.
	Version int
	// SourceHash is sha256 of the original source text.
	SourceHash [32]byte
	// Verdict is the declared analysis summary the receiver re-checks
	// against the bytecode.
	Verdict Verdict
	// Object is the executable form.
	Object *Compiled
}

// Verdict is the serialized analysis summary attached to a compiled
// program: what the program may touch and how much it may cost. It uses
// plain strings (not analysis types) so the bytecode layer stays free of
// the analyzer; internal/elastic converts to and from analysis.Effects.
type Verdict struct {
	// Hosts lists every host function the program may call.
	Hosts []string
	// Reads and Writes list MIB OID prefixes the program may touch;
	// "*" is the wildcard (some OID could not be bounded statically).
	Reads  []string
	Writes []string
	// CostSteps is the analyzer's worst-case step estimate; meaningless
	// when CostUnbounded.
	CostSteps uint64
	// CostUnbounded reports that no static bound exists (unbounded loop
	// or event-driven program).
	CostUnbounded bool
	// StepBudget is the derived VM step quota (0 when CostUnbounded:
	// the receiver applies its own default quota).
	StepBudget uint64
}

// HashSource returns the content-address of source.
func HashSource(source string) [32]byte { return sha256.Sum256([]byte(source)) }

// Constant-kind tags inside the encoded constant pool.
const (
	progConstInt    = 1
	progConstFloat  = 2
	progConstString = 3
)

// maxProgLocals bounds NumLocals in decoded functions: the VM allocates
// a slice that large per call frame, so an attacker-supplied count must
// not be trusted.
const maxProgLocals = 65536

// Encode serializes p with BER.
func (p *CompiledProgram) Encode() ([]byte, error) {
	if p.Object == nil {
		return nil, errors.New("dpl: cannot encode program without object code")
	}
	ww := ber.NewWriter(nil)
	w := &ww
	root := w.BeginSeq(ber.TagSequence)
	w.AppendInt(ber.TagInteger, int64(p.Version))
	w.AppendString(ber.TagOctetString, p.SourceHash[:])

	verdict := w.BeginSeq(ber.TagSequence)
	for _, list := range [][]string{p.Verdict.Hosts, p.Verdict.Reads, p.Verdict.Writes} {
		seq := w.BeginSeq(ber.TagSequence)
		for _, s := range list {
			w.AppendString(ber.TagOctetString, []byte(s))
		}
		w.EndSeq(seq)
	}
	w.AppendUint(ber.TagCounter64, p.Verdict.CostSteps)
	unbounded := int64(0)
	if p.Verdict.CostUnbounded {
		unbounded = 1
	}
	w.AppendInt(ber.TagInteger, unbounded)
	w.AppendUint(ber.TagCounter64, p.Verdict.StepBudget)
	w.EndSeq(verdict)

	obj := w.BeginSeq(ber.TagSequence)
	consts := w.BeginSeq(ber.TagSequence)
	for _, v := range p.Object.Consts {
		one := w.BeginSeq(ber.TagSequence)
		switch x := v.(type) {
		case int64:
			w.AppendInt(ber.TagInteger, progConstInt)
			w.AppendInt(ber.TagInteger, x)
		case float64:
			w.AppendInt(ber.TagInteger, progConstFloat)
			w.AppendUint(ber.TagCounter64, math.Float64bits(x))
		case string:
			w.AppendInt(ber.TagInteger, progConstString)
			w.AppendString(ber.TagOctetString, []byte(x))
		default:
			return nil, fmt.Errorf("dpl: unencodable constant %T", v)
		}
		w.EndSeq(one)
	}
	w.EndSeq(consts)
	for _, list := range [][]string{p.Object.GlobalNames, p.Object.HostNames} {
		seq := w.BeginSeq(ber.TagSequence)
		for _, s := range list {
			w.AppendString(ber.TagOctetString, []byte(s))
		}
		w.EndSeq(seq)
	}
	appendCode(w, p.Object.InitCode)
	funcs := w.BeginSeq(ber.TagSequence)
	for _, fn := range p.Object.Funcs {
		one := w.BeginSeq(ber.TagSequence)
		w.AppendString(ber.TagOctetString, []byte(fn.Name))
		w.AppendInt(ber.TagInteger, int64(fn.NumParams))
		w.AppendInt(ber.TagInteger, int64(fn.NumLocals))
		appendCode(w, fn.Code)
		w.EndSeq(one)
	}
	w.EndSeq(funcs)
	w.EndSeq(obj)
	w.EndSeq(root)
	return w.Bytes(), nil
}

func appendCode(w *ber.Writer, code []Instr) {
	seq := w.BeginSeq(ber.TagSequence)
	for _, in := range code {
		one := w.BeginSeq(ber.TagSequence)
		w.AppendInt(ber.TagInteger, int64(in.Op))
		w.AppendInt(ber.TagInteger, int64(in.A))
		w.AppendInt(ber.TagInteger, int64(in.B))
		w.EndSeq(one)
	}
	w.EndSeq(seq)
}

// DecodeProgram parses a BER-encoded CompiledProgram. Decoding checks
// only wire well-formedness plus the few counts the VM would otherwise
// trust for allocation; structural safety of the code itself is the
// verifier's job.
func DecodeProgram(b []byte) (*CompiledProgram, error) {
	r, err := ber.NewReader(b).EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, fmt.Errorf("dpl: bad program envelope: %w", err)
	}
	p := &CompiledProgram{Object: &Compiled{FuncIdx: map[string]int{}}}
	_, ver, err := r.ReadInt()
	if err != nil {
		return nil, err
	}
	p.Version = int(ver)
	_, hash, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	if len(hash) != len(p.SourceHash) {
		return nil, fmt.Errorf("dpl: bad source hash length %d", len(hash))
	}
	copy(p.SourceHash[:], hash)

	vr, err := r.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	for _, list := range []*[]string{&p.Verdict.Hosts, &p.Verdict.Reads, &p.Verdict.Writes} {
		if *list, err = decodeStrings(vr); err != nil {
			return nil, err
		}
	}
	if _, p.Verdict.CostSteps, err = vr.ReadUint(); err != nil {
		return nil, err
	}
	_, unbounded, err := vr.ReadInt()
	if err != nil {
		return nil, err
	}
	p.Verdict.CostUnbounded = unbounded != 0
	if _, p.Verdict.StepBudget, err = vr.ReadUint(); err != nil {
		return nil, err
	}

	or, err := r.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	cr, err := or.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	for !cr.Empty() {
		one, err := cr.EnterSeq(ber.TagSequence)
		if err != nil {
			return nil, err
		}
		_, kind, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		switch kind {
		case progConstInt:
			_, v, err := one.ReadInt()
			if err != nil {
				return nil, err
			}
			p.Object.Consts = append(p.Object.Consts, v)
		case progConstFloat:
			_, bits, err := one.ReadUint()
			if err != nil {
				return nil, err
			}
			p.Object.Consts = append(p.Object.Consts, math.Float64frombits(bits))
		case progConstString:
			_, s, err := one.ReadString()
			if err != nil {
				return nil, err
			}
			p.Object.Consts = append(p.Object.Consts, string(s))
		default:
			return nil, fmt.Errorf("dpl: unknown constant kind %d", kind)
		}
	}
	if p.Object.GlobalNames, err = decodeStrings(or); err != nil {
		return nil, err
	}
	if p.Object.HostNames, err = decodeStrings(or); err != nil {
		return nil, err
	}
	if p.Object.InitCode, err = decodeCode(or); err != nil {
		return nil, err
	}
	fr, err := or.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	for !fr.Empty() {
		one, err := fr.EnterSeq(ber.TagSequence)
		if err != nil {
			return nil, err
		}
		fn := &CompiledFunc{}
		_, name, err := one.ReadString()
		if err != nil {
			return nil, err
		}
		fn.Name = string(name)
		_, params, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		_, locals, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		if locals < 0 || locals > maxProgLocals || params < 0 || params > locals {
			return nil, fmt.Errorf("dpl: function %q has implausible frame (params=%d locals=%d)", fn.Name, params, locals)
		}
		fn.NumParams, fn.NumLocals = int(params), int(locals)
		if fn.Code, err = decodeCode(one); err != nil {
			return nil, err
		}
		if _, dup := p.Object.FuncIdx[fn.Name]; dup {
			return nil, fmt.Errorf("dpl: duplicate function %q", fn.Name)
		}
		p.Object.FuncIdx[fn.Name] = len(p.Object.Funcs)
		p.Object.Funcs = append(p.Object.Funcs, fn)
	}
	return p, nil
}

func decodeStrings(r *ber.Reader) ([]string, error) {
	sr, err := r.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	var out []string
	for !sr.Empty() {
		_, s, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		out = append(out, string(s))
	}
	return out, nil
}

func decodeCode(r *ber.Reader) ([]Instr, error) {
	sr, err := r.EnterSeq(ber.TagSequence)
	if err != nil {
		return nil, err
	}
	var code []Instr
	for !sr.Empty() {
		one, err := sr.EnterSeq(ber.TagSequence)
		if err != nil {
			return nil, err
		}
		var in Instr
		_, op, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		if op < 0 || op > 255 {
			return nil, fmt.Errorf("dpl: opcode %d out of range", op)
		}
		in.Op = Opcode(op)
		_, a, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		_, bv, err := one.ReadInt()
		if err != nil {
			return nil, err
		}
		in.A, in.B = int(a), int(bv)
		code = append(code, in)
	}
	return code, nil
}
