package dpl

import (
	"strings"
	"testing"
)

// asmSources exercises every opcode form the disassembler prints:
// consts of all scalar types (including a float with no fractional
// digits, which must not read back as an int), short-circuit keeps,
// arrays, maps, indexing, host and function calls, loops.
var asmSources = []string{
	`var threshold = 2.0;
	var label = "hot";
	func check(u) { return u > threshold && u != 0.5; }
	func main() {
		var v = mibGet("1.3.6.1.2.1.1.3.0");
		if (check(float(v)) || v == 0) { return label; }
		return "ok";
	}`,
	`func main() {
		var a = [1, 2, 3];
		var m = {"k": 10};
		a[0] = m["k"];
		var s = 0;
		for (var i = 0; i < len(a); i += 1) { s += a[i]; }
		while (s > 100) { s -= 7; break; }
		return -s % 3;
	}`,
}

func asmBindings() *Bindings {
	b := Std()
	b.Register("mibGet", 1, func(*Env, []Value) (Value, error) { return int64(0), nil })
	return b
}

// TestAssembleRoundTrip: disassemble → assemble → disassemble must be
// stable, for raw and optimized code alike.
func TestAssembleRoundTrip(t *testing.T) {
	b := asmBindings()
	for _, src := range asmSources {
		for _, optimize := range []bool{false, true} {
			c := compileSrc(t, src, b)
			if optimize {
				Optimize(c)
			}
			d1 := Disassemble(c)
			c2, err := Assemble(d1)
			if err != nil {
				t.Fatalf("assemble (optimize=%v): %v\n%s", optimize, err, d1)
			}
			if faults := c2.VerifyStructure(); len(faults) > 0 {
				t.Fatalf("assembled program fails verification: %v\n%s", faults[0], d1)
			}
			d2 := Disassemble(c2)
			if d1 != d2 {
				t.Fatalf("round trip unstable (optimize=%v):\n--- first ---\n%s--- second ---\n%s", optimize, d1, d2)
			}
		}
	}
}

// TestFloatConstRendering: a float constant with integral value must
// stay a float through the listing.
func TestFloatConstRendering(t *testing.T) {
	c := compileSrc(t, `var f = 2.0; func main() { return f; }`, Std())
	d := Disassemble(c)
	if !strings.Contains(d, "CONST   2.0") && !strings.Contains(collapse(d), "CONST 2.0") {
		t.Fatalf("float const ambiguous in listing:\n%s", d)
	}
	c2, err := Assemble(d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range c2.Consts {
		if f, ok := v.(float64); ok && f == 2.0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("2.0 did not reassemble as a float: %v", c2.Consts)
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, text := range []string{
		"  0  BOGUS\n",
		"func main (params=2 locals=1):\n  0  RETNIL\n",
		"func main (params=0 locals=0):\n  0  CALL missing/0\n",
		"func main (params=0 locals=0):\n  0  LOADG nope\n",
		"func main (params=0 locals=0):\n  0  BIN '='\n",
		"func main (params=0 locals=0):\n  0  JUMP 5\n",
		"  0  POP\n",
	} {
		if _, err := Assemble(text); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", text)
		}
	}
}
