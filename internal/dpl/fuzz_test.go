package dpl_test

import (
	"os"
	"path/filepath"
	"testing"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
)

// seedCorpus adds every example agent plus a few crafted programs as
// fuzz seeds.
func seedCorpus(f *testing.F) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "agents", "*.dpl"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, s := range []string{
		``,
		`func main() { return 1; }`,
		`var g = 1; func f(x) { while (x > 0) { x -= 1; } return g; }`,
		`func f() { var a = [1, 2]; var m = {"k": a}; return m["k"][0]; }`,
		`func f() { return f(); }`,
		`func main() { for (var i = 0; i < 10; i += 1) { if (i % 2) { continue; } break; } }`,
		`func r(oid) { return mibGet("1.3." + oid); }`,
		"func main() { /* comment */ return \"str\\n\"; }",
	} {
		f.Add(s)
	}
}

// FuzzParse asserts the parser never panics and that accepted programs
// re-parse from their own positions (i.e. the AST is well-formed enough
// for the checker to walk).
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := dpl.Parse(src)
		if err != nil || prog == nil {
			return
		}
		// A parsed program must survive Check without panicking,
		// whatever its verdict.
		_ = dpl.Check(prog, dpl.Std())
	})
}

// FuzzAnalyze asserts the full static-analysis pipeline never panics on
// any checkable program, and that its diagnostics carry valid codes.
func FuzzAnalyze(f *testing.F) {
	seedCorpus(f)
	bindings := analysis.LintBindings()
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := dpl.Parse(src)
		if err != nil {
			return
		}
		if errs := dpl.Check(prog, bindings); len(errs) > 0 {
			return
		}
		rep := analysis.Analyze(prog, bindings)
		if rep == nil {
			t.Fatal("nil report for checked program")
		}
		for _, d := range rep.Diags {
			if len(d.Code) != 6 || d.Code[:3] != "DPL" {
				t.Fatalf("malformed diagnostic code %q", d.Code)
			}
			if d.Sev != analysis.SevWarning && d.Sev != analysis.SevError {
				t.Fatalf("malformed severity %v", d.Sev)
			}
		}
	})
}
