package analysis

import "mbd/internal/dpl"

// Control-flow graph construction. Each function gets a graph of basic
// blocks whose Nodes are either statements (dpl.Stmt) or branch
// condition expressions (dpl.Expr) in evaluation order; conditions are
// kept as graph nodes so the dataflow passes see their variable reads
// on the right edge of the graph.

// Block is one basic block.
type Block struct {
	ID    int
	Nodes []dpl.Node // dpl.Stmt for statements, dpl.Expr for conditions
	Succs []*Block
	Preds []*Block
}

// Graph is one function's control-flow graph. Entry is the first
// block executed; Exit is the single synthetic return target.
type Graph struct {
	Fn     *dpl.FuncDecl
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

type loopCtx struct {
	cont *Block // continue target
	brk  *Block // break target
}

type cfgBuilder struct {
	g     *Graph
	cur   *Block
	loops []loopCtx
}

// buildCFG constructs the control-flow graph of fn.
func buildCFG(fn *dpl.FuncDecl) *Graph {
	g := &Graph{Fn: fn}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = &Block{ID: -1} // appended to Blocks last, below
	b.cur = g.Entry
	b.block(fn.Body)
	b.edge(b.cur, g.Exit) // implicit "return nil" at end of body
	g.Exit.ID = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	nb := &Block{ID: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, nb)
	return nb
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) block(blk *dpl.Block) {
	for _, st := range blk.Stmts {
		b.stmt(st)
	}
}

func (b *cfgBuilder) stmt(st dpl.Stmt) {
	switch n := st.(type) {
	case *dpl.Block:
		b.block(n)
	case *dpl.IfStmt:
		b.cur.Nodes = append(b.cur.Nodes, n.Cond)
		condBlk := b.cur
		join := &Block{} // registered lazily so block ids stay compact
		tv, known := constBool(n.Cond)

		then := b.newBlock()
		if !known || tv {
			b.edge(condBlk, then)
		}
		b.cur = then
		b.block(n.Then)
		thenEnd := b.cur

		var elseEnd *Block
		if n.Else != nil {
			els := b.newBlock()
			if !known || !tv {
				b.edge(condBlk, els)
			}
			b.cur = els
			b.stmt(n.Else)
			elseEnd = b.cur
		}

		join.ID = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, join)
		b.edge(thenEnd, join)
		if n.Else != nil {
			b.edge(elseEnd, join)
		} else if !known || !tv {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *dpl.WhileStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, n.Cond)
		body := b.newBlock()
		exit := &Block{}
		tv, known := constBool(n.Cond)
		if !known || tv {
			b.edge(head, body)
		}
		b.loops = append(b.loops, loopCtx{cont: head, brk: exit})
		b.cur = body
		b.block(n.Body)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		exit.ID = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, exit)
		if !known || !tv {
			b.edge(head, exit)
		}
		b.cur = exit
	case *dpl.ForStmt:
		if n.Init != nil {
			b.stmt(n.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		tv, known := true, n.Cond == nil
		if n.Cond != nil {
			head.Nodes = append(head.Nodes, n.Cond)
			tv, known = constBool(n.Cond)
		}
		infinite := known && tv
		body := b.newBlock()
		if !known || tv {
			b.edge(head, body)
		}
		post := &Block{}
		exit := &Block{}
		b.loops = append(b.loops, loopCtx{cont: post, brk: exit})
		b.cur = body
		b.block(n.Body)
		bodyEnd := b.cur
		b.loops = b.loops[:len(b.loops)-1]
		post.ID = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, post)
		b.edge(bodyEnd, post)
		if n.Post != nil {
			saved := b.cur
			b.cur = post
			b.stmt(n.Post)
			post = b.cur // Post is simple; stays one block
			b.cur = saved
		}
		b.edge(post, head)
		exit.ID = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, exit)
		if !infinite {
			b.edge(head, exit)
		}
		b.cur = exit
	case *dpl.BreakStmt:
		b.cur.Nodes = append(b.cur.Nodes, n)
		if len(b.loops) > 0 {
			b.edge(b.cur, b.loops[len(b.loops)-1].brk)
		}
		b.cur = b.newBlock() // dangling: anything after break is unreachable
	case *dpl.ContinueStmt:
		b.cur.Nodes = append(b.cur.Nodes, n)
		if len(b.loops) > 0 {
			b.edge(b.cur, b.loops[len(b.loops)-1].cont)
		}
		b.cur = b.newBlock()
	case *dpl.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, n)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()
	default:
		// VarDecl, AssignStmt, ExprStmt: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, st)
	}
}

// unreachableDiags reports DPL002 once per unreachable region: an
// unreachable block with nodes whose predecessors are all reachable (or
// absent) heads a region; its downstream unreachable blocks are
// suppressed to avoid cascades.
func unreachableDiags(g *Graph, diags *[]Diagnostic) {
	reach := g.Reachable()
	unreached := make(map[*Block]bool)
	for _, blk := range g.Blocks {
		if !reach[blk] && blk != g.Exit {
			unreached[blk] = true
		}
	}
	for _, blk := range g.Blocks {
		if !unreached[blk] || len(blk.Nodes) == 0 {
			continue
		}
		regionHead := true
		for _, p := range blk.Preds {
			if unreached[p] {
				regionHead = false
				break
			}
		}
		if !regionHead {
			continue
		}
		*diags = append(*diags, Diagnostic{
			Code: CodeUnreachable,
			Sev:  SevWarning,
			Pos:  blk.Nodes[0].Position(),
			Msg:  "unreachable code",
		})
	}
}
