package analysis

import (
	"strings"

	"mbd/internal/dpl"
)

// Constant folding over expressions. The folder is deliberately a
// subset of the VM's semantics — only results it can predict exactly
// are folded; everything else reports not-constant.

// constFold evaluates e if it is a compile-time constant. It folds
// literals, unary -/!, and binary arithmetic/comparison/logic over
// folded operands (matching VM semantics for int/float/string/bool).
func constFold(e dpl.Expr) (dpl.Value, bool) {
	switch n := e.(type) {
	case *dpl.IntLit:
		return n.V, true
	case *dpl.FloatLit:
		return n.V, true
	case *dpl.StringLit:
		return n.V, true
	case *dpl.BoolLit:
		return n.V, true
	case *dpl.NilLit:
		return nil, true
	case *dpl.UnaryExpr:
		x, ok := constFold(n.X)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case dpl.TokMinus:
			switch v := x.(type) {
			case int64:
				return -v, true
			case float64:
				return -v, true
			}
		case dpl.TokBang:
			return !truthy(x), true
		}
		return nil, false
	case *dpl.BinaryExpr:
		l, ok := constFold(n.L)
		if !ok {
			return nil, false
		}
		// Short-circuit operators can fold from the left side alone.
		switch n.Op {
		case dpl.TokAndAnd:
			if !truthy(l) {
				return false, true
			}
			r, ok := constFold(n.R)
			if !ok {
				return nil, false
			}
			return truthy(r), true
		case dpl.TokOrOr:
			if truthy(l) {
				return true, true
			}
			r, ok := constFold(n.R)
			if !ok {
				return nil, false
			}
			return truthy(r), true
		}
		r, ok := constFold(n.R)
		if !ok {
			return nil, false
		}
		return foldBinary(n.Op, l, r)
	}
	return nil, false
}

func foldBinary(op dpl.TokenKind, l, r dpl.Value) (dpl.Value, bool) {
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case dpl.TokPlus:
				return ls + rs, true
			case dpl.TokEq:
				return ls == rs, true
			case dpl.TokNe:
				return ls != rs, true
			case dpl.TokLt:
				return ls < rs, true
			case dpl.TokLe:
				return ls <= rs, true
			case dpl.TokGt:
				return ls > rs, true
			case dpl.TokGe:
				return ls >= rs, true
			}
			return nil, false
		}
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case dpl.TokPlus:
			return li + ri, true
		case dpl.TokMinus:
			return li - ri, true
		case dpl.TokStar:
			return li * ri, true
		case dpl.TokSlash:
			if ri == 0 {
				return nil, false
			}
			return li / ri, true
		case dpl.TokPercent:
			if ri == 0 {
				return nil, false
			}
			return li % ri, true
		case dpl.TokEq:
			return li == ri, true
		case dpl.TokNe:
			return li != ri, true
		case dpl.TokLt:
			return li < ri, true
		case dpl.TokLe:
			return li <= ri, true
		case dpl.TokGt:
			return li > ri, true
		case dpl.TokGe:
			return li >= ri, true
		}
		return nil, false
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case dpl.TokPlus:
			return lf + rf, true
		case dpl.TokMinus:
			return lf - rf, true
		case dpl.TokStar:
			return lf * rf, true
		case dpl.TokSlash:
			if rf == 0 {
				return nil, false
			}
			return lf / rf, true
		case dpl.TokEq:
			return lf == rf, true
		case dpl.TokNe:
			return lf != rf, true
		case dpl.TokLt:
			return lf < rf, true
		case dpl.TokLe:
			return lf <= rf, true
		case dpl.TokGt:
			return lf > rf, true
		case dpl.TokGe:
			return lf >= rf, true
		}
	}
	return nil, false
}

func toFloat(v dpl.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// truthy mirrors the language's truth rule: false, nil, 0, 0.0 and ""
// are false.
func truthy(v dpl.Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

// constBool folds e to a truth value if it is constant.
func constBool(e dpl.Expr) (val, known bool) {
	v, ok := constFold(e)
	if !ok {
		return false, false
	}
	return truthy(v), true
}

// constIntArg folds e to an int64.
func constInt(e dpl.Expr) (int64, bool) {
	v, ok := constFold(e)
	if !ok {
		return 0, false
	}
	i, ok := v.(int64)
	return i, ok
}

// constOIDPrefix extracts the statically known OID prefix of e, for the
// effect inference of MIB primitives:
//
//   - a fully constant string folds exactly ("1.3.6.1.2.1.1.3.0");
//   - "const" + dynamic keeps the constant head, truncated to the last
//     complete dotted component so a partial trailing number cannot
//     masquerade as a component boundary;
//   - anything else is unknown (the caller widens to the whole MIB).
//
// The returned prefix has no trailing dot. ok=false means no constant
// head could be recovered.
func constOIDPrefix(e dpl.Expr) (prefix string, exact, ok bool) {
	head, exact := constStringHead(e)
	if exact {
		return strings.TrimSuffix(head, "."), true, true
	}
	// Keep only whole components of a partial head.
	i := strings.LastIndex(head, ".")
	if i <= 0 {
		return "", false, false
	}
	return head[:i], false, true
}

// constStringHead returns the longest constant leading string of e
// under string concatenation; exact reports whether the whole
// expression folded.
func constStringHead(e dpl.Expr) (head string, exact bool) {
	if v, ok := constFold(e); ok {
		if s, ok := v.(string); ok {
			return s, true
		}
		return "", false
	}
	if b, ok := e.(*dpl.BinaryExpr); ok && b.Op == dpl.TokPlus {
		lh, lexact := constStringHead(b.L)
		if !lexact {
			return lh, false
		}
		rh, rexact := constStringHead(b.R)
		return lh + rh, rexact
	}
	return "", false
}
