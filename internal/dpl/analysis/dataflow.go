package analysis

import (
	"fmt"

	"mbd/internal/dpl"
)

// Dataflow passes over the CFG: definite assignment (forward, must) and
// liveness (backward, may). Both run to fixpoint on block boundary
// states, then a final per-block walk produces diagnostics.

// bitset is a fixed-universe variable set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i varID) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) set(i varID)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i varID)    { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// intersect b &= o, reporting whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// union b |= o, reporting whether b changed.
func (b bitset) union(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// definiteAssignment runs the must-assigned analysis on g and appends
// DPL001 diagnostics for reads of possibly-uninitialized locals.
// Globals and parameters count as assigned at entry (globals are
// initialized by the program prologue, to nil at worst; the
// never-written-global case is a separate program-level check).
func definiteAssignment(g *Graph, res *resolution, diags *[]Diagnostic) {
	nvars := len(res.vars)
	entry := newBitset(nvars)
	for i, v := range res.vars {
		if v.global || v.param {
			entry.set(varID(i))
		}
	}

	in := make(map[*Block]bitset, len(g.Blocks))
	for _, b := range g.Blocks {
		s := newBitset(nvars)
		if b == g.Entry {
			copy(s, entry)
		} else {
			s.fill() // ⊤ for the must-intersection
		}
		in[b] = s
	}

	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b].clone()
		daTransfer(b, out, res, nil)
		for _, s := range b.Succs {
			if in[s].intersect(out) {
				work = append(work, s)
			}
		}
	}

	reach := g.Reachable()
	reported := make(map[dpl.Pos]bool)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue // unreachable code is reported by DPL002
		}
		state := in[b].clone()
		daTransfer(b, state, res, func(id varID, pos dpl.Pos) {
			if reported[pos] {
				return
			}
			reported[pos] = true
			*diags = append(*diags, Diagnostic{
				Code: CodeUseBeforeInit,
				Sev:  SevWarning,
				Pos:  pos,
				Msg:  fmt.Sprintf("variable %q may be used before it is assigned (reads as nil)", res.vars[id].name),
			})
		})
	}
}

// daTransfer applies block b to the assigned-set state. When report is
// non-nil, each read of an unassigned local is reported.
func daTransfer(b *Block, state bitset, res *resolution, report func(varID, dpl.Pos)) {
	check := func(e dpl.Expr) {
		if report == nil {
			return
		}
		res.eachUse(e, func(id varID, pos dpl.Pos) {
			v := res.vars[id]
			if !v.global && !v.param && !state.has(id) {
				report(id, pos)
			}
		})
	}
	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *dpl.VarDecl:
			if n.Init != nil {
				check(n.Init)
				if id, ok := res.decl[n]; ok {
					state.set(id)
				}
			}
		case *dpl.AssignStmt:
			check(n.Value)
			switch t := n.Target.(type) {
			case *dpl.Ident:
				if n.Op != dpl.TokAssign {
					check(t) // compound assignment reads the old value
				}
				if id, ok := res.use[t]; ok && id != varNone {
					state.set(id)
				}
			case *dpl.IndexExpr:
				check(t) // x[i] = v reads both x and i
			}
		case *dpl.ExprStmt:
			check(n.X)
		case *dpl.ReturnStmt:
			if n.Value != nil {
				check(n.Value)
			}
		case dpl.Expr: // branch condition
			check(n)
		}
	}
}

// liveness runs the backward may-live analysis and appends DPL003
// dead-store diagnostics for assignments to locals that no later read
// observes. Globals are exempt: they outlive every activation.
func liveness(g *Graph, res *resolution, diags *[]Diagnostic) {
	nvars := len(res.vars)
	out := make(map[*Block]bitset, len(g.Blocks))
	for _, b := range g.Blocks {
		out[b] = newBitset(nvars)
	}

	changed := true
	for changed {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			state := out[b].clone()
			liveTransfer(b, state, res, nil)
			for _, p := range b.Preds {
				if out[p].union(state) {
					changed = true
				}
			}
		}
	}

	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		state := out[b].clone()
		liveTransfer(b, state, res, func(id varID, pos dpl.Pos, decl bool) {
			verb := "assigned to"
			if decl {
				verb = "stored in"
			}
			*diags = append(*diags, Diagnostic{
				Code: CodeDeadStore,
				Sev:  SevWarning,
				Pos:  pos,
				Msg:  fmt.Sprintf("value %s %q is never used", verb, res.vars[id].name),
			})
		})
	}
}

// liveTransfer applies block b backward to the live-set state. When
// report is non-nil it is called for each dead store (decl=true for a
// VarDecl initializer).
func liveTransfer(b *Block, state bitset, res *resolution, report func(varID, dpl.Pos, bool)) {
	gen := func(e dpl.Expr) {
		res.eachUse(e, func(id varID, _ dpl.Pos) { state.set(id) })
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		switch n := b.Nodes[i].(type) {
		case *dpl.VarDecl:
			if id, ok := res.decl[n]; ok && n.Init != nil {
				if report != nil && !state.has(id) && !isTrivial(n.Init) {
					report(id, n.Position(), true)
				}
				state.clear(id)
			}
			if n.Init != nil {
				gen(n.Init)
			}
		case *dpl.AssignStmt:
			switch t := n.Target.(type) {
			case *dpl.Ident:
				if id, ok := res.use[t]; ok && id != varNone {
					v := res.vars[id]
					if report != nil && !v.global && !state.has(id) {
						report(id, n.Position(), false)
					}
					state.clear(id)
					if n.Op != dpl.TokAssign {
						state.set(id) // compound assignment also reads
					}
				}
			case *dpl.IndexExpr:
				gen(t)
			}
			gen(n.Value)
		case *dpl.ExprStmt:
			gen(n.X)
		case *dpl.ReturnStmt:
			if n.Value != nil {
				gen(n.Value)
			}
		case dpl.Expr: // branch condition
			gen(n)
		}
	}
}

// isTrivial reports whether e is a bare literal initializer.
// `var x = 0;` followed by an unconditional re-assignment is a common,
// harmless idiom — only initializers that do work are worth a DPL003.
func isTrivial(e dpl.Expr) bool {
	switch e.(type) {
	case *dpl.IntLit, *dpl.FloatLit, *dpl.StringLit, *dpl.BoolLit, *dpl.NilLit:
		return true
	}
	return false
}

// globalDiags reports DPL004 for globals that are read somewhere but
// have no initializer and no assignment anywhere in the program.
func globalDiags(prog *dpl.Program, res *resolution, diags *[]Diagnostic) {
	written := make(map[varID]bool)
	firstRead := make(map[varID]dpl.Pos)
	for _, g := range prog.Globals {
		if g.Init != nil {
			written[res.decl[g]] = true
		}
	}
	var walkStmt func(st dpl.Stmt)
	noteReads := func(e dpl.Expr) {
		res.eachUse(e, func(id varID, pos dpl.Pos) {
			if res.vars[id].global {
				if _, ok := firstRead[id]; !ok {
					firstRead[id] = pos
				}
			}
		})
	}
	walkStmt = func(st dpl.Stmt) {
		switch n := st.(type) {
		case *dpl.VarDecl:
			if n.Init != nil {
				noteReads(n.Init)
			}
		case *dpl.Block:
			for _, s := range n.Stmts {
				walkStmt(s)
			}
		case *dpl.AssignStmt:
			if t, ok := n.Target.(*dpl.Ident); ok {
				if id, ok := res.use[t]; ok && id != varNone && res.vars[id].global {
					written[id] = true
					if n.Op != dpl.TokAssign {
						noteReads(t)
					}
				}
			} else {
				noteReads(n.Target)
			}
			noteReads(n.Value)
		case *dpl.IfStmt:
			noteReads(n.Cond)
			walkStmt(n.Then)
			if n.Else != nil {
				walkStmt(n.Else)
			}
		case *dpl.WhileStmt:
			noteReads(n.Cond)
			walkStmt(n.Body)
		case *dpl.ForStmt:
			if n.Init != nil {
				walkStmt(n.Init)
			}
			if n.Cond != nil {
				noteReads(n.Cond)
			}
			if n.Post != nil {
				walkStmt(n.Post)
			}
			walkStmt(n.Body)
		case *dpl.ReturnStmt:
			if n.Value != nil {
				noteReads(n.Value)
			}
		case *dpl.ExprStmt:
			noteReads(n.X)
		}
	}
	for _, g := range prog.Globals {
		if g.Init != nil {
			noteReads(g.Init)
		}
	}
	for _, f := range prog.Funcs {
		walkStmt(f.Body)
	}
	for _, id := range res.globals {
		if written[id] {
			continue
		}
		pos, read := firstRead[id]
		if !read {
			continue
		}
		*diags = append(*diags, Diagnostic{
			Code: CodeGlobalNeverWritten,
			Sev:  SevWarning,
			Pos:  pos,
			Msg:  fmt.Sprintf("global %q is read but never written anywhere (always nil)", res.vars[id].name),
		})
	}
}
