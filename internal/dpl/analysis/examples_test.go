package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"mbd/internal/dpl"
)

// TestExampleAgentsLintClean asserts every shipped example agent passes
// the full analysis pipeline without a single diagnostic — warnings
// included. The examples are the reference DPL corpus; if the analyzer
// flags them, either the example or the analyzer is wrong.
func TestExampleAgentsLintClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "..", "examples", "agents", "*.dpl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example agents found")
	}
	b := LintBindings()
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := dpl.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if errs := dpl.Check(prog, b); len(errs) > 0 {
				t.Fatalf("check: %v", errs)
			}
			rep := Analyze(prog, b)
			for _, d := range rep.Diags {
				t.Errorf("%s: %s", file, d)
			}
		})
	}
}
