package analysis

import "mbd/internal/dpl"

// LintBindings returns an allowed-function table covering the full MbD
// server surface — the std builtins plus the elastic instance services,
// the MIB primitives, the trap service and the MCVA view services —
// with stub implementations. It exists for offline linting (mbdctl
// lint), where programs must resolve and be analyzable without a live
// server; the stubs are never executed.
func LintBindings() *dpl.Bindings {
	b := dpl.Std()
	stub := func(_ *dpl.Env, _ []dpl.Value) (dpl.Value, error) { return nil, nil }
	for _, f := range []struct {
		name  string
		arity int
	}{
		// Elastic process instance services (internal/elastic/dpi.go).
		{"sleep", 1}, {"now", 0}, {"recv", 1}, {"report", 1},
		{"notify", 1}, {"log", 1}, {"dpiid", 0}, {"sendto", 2},
		// MbD server MIB services (internal/mbd/server.go).
		{"mibGet", 1}, {"mibNext", 1}, {"mibWalk", 1}, {"mibSet", 2},
		{"sysname", 0}, {"snmpGet", 2}, {"snmpNext", 2},
		// Trap service (internal/mbd/trap.go).
		{"trap", 2},
		// MCVA view services (internal/vdl/mcva.go).
		{"viewDefine", 1}, {"viewQuery", 1}, {"viewSnapshot", 1},
		{"snapshotRows", 1}, {"snapshotDrop", 1},
	} {
		b.Register(f.name, f.arity, stub)
	}
	return b
}
