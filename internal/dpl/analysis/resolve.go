package analysis

import "mbd/internal/dpl"

// Variable resolution. The dataflow passes need flow-insensitive
// binding of every identifier occurrence to the declaration it names,
// because DPL allows shadowing in nested scopes and a purely name-based
// analysis would conflate distinct variables. The resolver mirrors the
// scope rules of dpl.Check: lexical block scopes chained over a global
// scope, parameters in a function's outermost scope.

// varID indexes resolution.vars. varNone marks an unresolved
// identifier (the program failed Check, or the name is a function).
type varID int

const varNone varID = -1

type varInfo struct {
	name   string
	global bool
	param  bool
	pos    dpl.Pos
}

// resolution maps identifier occurrences and declarations to variable
// ids for one program.
type resolution struct {
	vars []varInfo
	// use binds every *dpl.Ident expression occurrence (reads and
	// assignment targets alike) to its variable.
	use map[*dpl.Ident]varID
	// decl binds each VarDecl to the variable it introduces.
	decl map[*dpl.VarDecl]varID
	// params lists each function's parameter ids in order.
	params map[*dpl.FuncDecl][]varID
	// globals lists the program's global ids in declaration order.
	globals []varID
}

type rscope struct {
	parent *rscope
	names  map[string]varID
}

func (s *rscope) lookup(name string) varID {
	for cur := s; cur != nil; cur = cur.parent {
		if id, ok := cur.names[name]; ok {
			return id
		}
	}
	return varNone
}

func resolve(prog *dpl.Program) *resolution {
	r := &resolution{
		use:    make(map[*dpl.Ident]varID),
		decl:   make(map[*dpl.VarDecl]varID),
		params: make(map[*dpl.FuncDecl][]varID),
	}
	global := &rscope{names: make(map[string]varID)}
	for _, g := range prog.Globals {
		// Initializers may reference only earlier globals (enforced by
		// Check); resolving before declaring matches that rule.
		if g.Init != nil {
			r.resolveExpr(g.Init, global)
		}
		id := r.newVar(varInfo{name: g.Name, global: true, pos: g.Position()})
		global.names[g.Name] = id
		r.decl[g] = id
		r.globals = append(r.globals, id)
	}
	for _, f := range prog.Funcs {
		fs := &rscope{parent: global, names: make(map[string]varID)}
		for _, p := range f.Params {
			id := r.newVar(varInfo{name: p, param: true, pos: f.Position()})
			fs.names[p] = id
			r.params[f] = append(r.params[f], id)
		}
		r.resolveBlock(f.Body, &rscope{parent: fs, names: make(map[string]varID)})
	}
	return r
}

func (r *resolution) newVar(info varInfo) varID {
	r.vars = append(r.vars, info)
	return varID(len(r.vars) - 1)
}

func (r *resolution) resolveBlock(b *dpl.Block, s *rscope) {
	for _, st := range b.Stmts {
		r.resolveStmt(st, s)
	}
}

func (r *resolution) resolveStmt(st dpl.Stmt, s *rscope) {
	switch n := st.(type) {
	case *dpl.VarDecl:
		if n.Init != nil {
			r.resolveExpr(n.Init, s)
		}
		id := r.newVar(varInfo{name: n.Name, pos: n.Position()})
		s.names[n.Name] = id
		r.decl[n] = id
	case *dpl.Block:
		r.resolveBlock(n, &rscope{parent: s, names: make(map[string]varID)})
	case *dpl.AssignStmt:
		r.resolveExpr(n.Target, s)
		r.resolveExpr(n.Value, s)
	case *dpl.IfStmt:
		r.resolveExpr(n.Cond, s)
		r.resolveBlock(n.Then, &rscope{parent: s, names: make(map[string]varID)})
		if n.Else != nil {
			r.resolveStmt(n.Else, &rscope{parent: s, names: make(map[string]varID)})
		}
	case *dpl.WhileStmt:
		r.resolveExpr(n.Cond, s)
		r.resolveBlock(n.Body, &rscope{parent: s, names: make(map[string]varID)})
	case *dpl.ForStmt:
		fs := &rscope{parent: s, names: make(map[string]varID)}
		if n.Init != nil {
			r.resolveStmt(n.Init, fs)
		}
		if n.Cond != nil {
			r.resolveExpr(n.Cond, fs)
		}
		if n.Post != nil {
			r.resolveStmt(n.Post, fs)
		}
		r.resolveBlock(n.Body, fs)
	case *dpl.ReturnStmt:
		if n.Value != nil {
			r.resolveExpr(n.Value, s)
		}
	case *dpl.ExprStmt:
		r.resolveExpr(n.X, s)
	}
}

func (r *resolution) resolveExpr(e dpl.Expr, s *rscope) {
	switch n := e.(type) {
	case *dpl.Ident:
		r.use[n] = s.lookup(n.Name)
	case *dpl.UnaryExpr:
		r.resolveExpr(n.X, s)
	case *dpl.BinaryExpr:
		r.resolveExpr(n.L, s)
		r.resolveExpr(n.R, s)
	case *dpl.IndexExpr:
		r.resolveExpr(n.X, s)
		r.resolveExpr(n.I, s)
	case *dpl.ArrayLit:
		for _, el := range n.Elems {
			r.resolveExpr(el, s)
		}
	case *dpl.MapLit:
		for i := range n.Keys {
			r.resolveExpr(n.Keys[i], s)
			r.resolveExpr(n.Vals[i], s)
		}
	case *dpl.CallExpr:
		// The callee name is not a variable; only arguments resolve.
		for _, a := range n.Args {
			r.resolveExpr(a, s)
		}
	}
}

// eachUse walks e and calls fn for every resolved variable read. Assign
// targets are not "uses" — callers handle them explicitly.
func (r *resolution) eachUse(e dpl.Expr, fn func(id varID, pos dpl.Pos)) {
	switch n := e.(type) {
	case *dpl.Ident:
		if id, ok := r.use[n]; ok && id != varNone {
			fn(id, n.Position())
		}
	case *dpl.UnaryExpr:
		r.eachUse(n.X, fn)
	case *dpl.BinaryExpr:
		r.eachUse(n.L, fn)
		r.eachUse(n.R, fn)
	case *dpl.IndexExpr:
		r.eachUse(n.X, fn)
		r.eachUse(n.I, fn)
	case *dpl.ArrayLit:
		for _, el := range n.Elems {
			r.eachUse(el, fn)
		}
	case *dpl.MapLit:
		for i := range n.Keys {
			r.eachUse(n.Keys[i], fn)
			r.eachUse(n.Vals[i], fn)
		}
	case *dpl.CallExpr:
		for _, a := range n.Args {
			r.eachUse(a, fn)
		}
	}
}
