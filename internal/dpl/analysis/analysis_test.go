package analysis

import (
	"context"
	"strings"
	"testing"

	"mbd/internal/dpl"
)

// analyzeSrc parses, checks and analyzes src against the lint profile.
func analyzeSrc(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := dpl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := LintBindings()
	if errs := dpl.Check(prog, b); len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
	return Analyze(prog, b)
}

// codes extracts the diagnostic codes of a report, in order.
func codes(r *Report) []string {
	out := make([]string, len(r.Diags))
	for i, d := range r.Diags {
		out[i] = d.Code
	}
	return out
}

func wantCode(t *testing.T, r *Report, code string) Diagnostic {
	t.Helper()
	for _, d := range r.Diags {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic; got %v", code, r.Diags)
	return Diagnostic{}
}

func wantNoCode(t *testing.T, r *Report, code string) {
	t.Helper()
	for _, d := range r.Diags {
		if d.Code == code {
			t.Fatalf("unexpected %s: %s", code, d)
		}
	}
}

func TestUseBeforeInit(t *testing.T) {
	r := analyzeSrc(t, `
func main() {
	var x;
	var y = x + 1;
	return y;
}`)
	d := wantCode(t, r, CodeUseBeforeInit)
	if !strings.Contains(d.Msg, `"x"`) {
		t.Fatalf("msg = %s", d.Msg)
	}
	if d.Pos.Line != 4 {
		t.Fatalf("pos = %s", d.Pos)
	}
}

func TestUseBeforeInitBranches(t *testing.T) {
	// Assigned on only one branch: still a maybe-uninitialized read.
	r := analyzeSrc(t, `
func f(c) {
	var x;
	if (c) { x = 1; }
	return x;
}`)
	wantCode(t, r, CodeUseBeforeInit)

	// Assigned on both branches: definitely initialized.
	r = analyzeSrc(t, `
func f(c) {
	var x;
	if (c) { x = 1; } else { x = 2; }
	return x;
}`)
	wantNoCode(t, r, CodeUseBeforeInit)
}

func TestUseBeforeInitLoopCarried(t *testing.T) {
	// The first iteration reads s before any assignment.
	r := analyzeSrc(t, `
func f(n) {
	var s;
	for (var i = 0; i < n; i += 1) {
		s = s + i;
	}
	return s;
}`)
	wantCode(t, r, CodeUseBeforeInit)
}

func TestShadowingDoesNotConfuseInit(t *testing.T) {
	// The inner x is a distinct, initialized variable; the outer x is
	// initialized too. No diagnostics.
	r := analyzeSrc(t, `
func f() {
	var x = 1;
	{
		var x = 2;
		log(str(x));
	}
	return x;
}`)
	wantNoCode(t, r, CodeUseBeforeInit)
}

func TestUnreachableAfterReturn(t *testing.T) {
	r := analyzeSrc(t, `
func f() {
	return 1;
	log("never");
}`)
	d := wantCode(t, r, CodeUnreachable)
	if d.Pos.Line != 4 {
		t.Fatalf("pos = %s", d.Pos)
	}
}

func TestUnreachableAfterInfiniteLoop(t *testing.T) {
	r := analyzeSrc(t, `
func main() {
	while (true) { sleep(100); }
	log("never");
}`)
	wantCode(t, r, CodeUnreachable)
}

func TestBreakMakesCodeReachable(t *testing.T) {
	r := analyzeSrc(t, `
func main() {
	while (true) {
		if (recv(0) == "stop") { break; }
	}
	log("reached via break");
}`)
	wantNoCode(t, r, CodeUnreachable)
}

func TestDeadStore(t *testing.T) {
	r := analyzeSrc(t, `
func f() {
	var x = len("abc");
	x = 7;
	return x;
}`)
	d := wantCode(t, r, CodeDeadStore)
	if d.Pos.Line != 3 {
		t.Fatalf("pos = %s", d.Pos)
	}

	// Trivial literal initializers are exempt (var x = 0; x = f() is idiom).
	r = analyzeSrc(t, `
func f() {
	var x = 0;
	x = len("abc");
	return x;
}`)
	wantNoCode(t, r, CodeDeadStore)
}

func TestDeadStoreLoopCarriedIsLive(t *testing.T) {
	r := analyzeSrc(t, `
func f(n) {
	var s = 0;
	for (var i = 0; i < n; i += 1) {
		s += i;
	}
	return s;
}`)
	wantNoCode(t, r, CodeDeadStore)
}

func TestGlobalNeverWritten(t *testing.T) {
	r := analyzeSrc(t, `
var ghost;
func f() { return ghost; }`)
	wantCode(t, r, CodeGlobalNeverWritten)

	r = analyzeSrc(t, `
var counted;
func f() { counted = 1; return counted; }`)
	wantNoCode(t, r, CodeGlobalNeverWritten)
}

func TestBusyLoop(t *testing.T) {
	r := analyzeSrc(t, `
func main() {
	var x = 0;
	while (true) { x += 1; }
}`)
	wantCode(t, r, CodeBusyLoop)

	// Yielding via a helper is fine (transitive closure).
	r = analyzeSrc(t, `
func nap() { sleep(100); }
func main() {
	while (true) { nap(); }
}`)
	wantNoCode(t, r, CodeBusyLoop)

	// A break makes it bounded-intent: no busy-loop warning.
	r = analyzeSrc(t, `
func main() {
	while (true) { break; }
}`)
	wantNoCode(t, r, CodeBusyLoop)
}

func TestEffectsInference(t *testing.T) {
	r := analyzeSrc(t, `
func watch() {
	var v = mibGet("1.3.6.1.2.1.1.3.0");
	mibSet("1.3.6.1.4.1.9.1", v);
	report(str(v));
}`)
	e := &r.Effects
	for _, h := range []string{"mibGet", "mibSet", "report", "str"} {
		if !e.CallsHost(h) {
			t.Fatalf("missing host %s in %s", h, e)
		}
	}
	if got := e.ReadPrefixes(); len(got) != 1 || got[0] != "1.3.6.1.2.1.1.3.0" {
		t.Fatalf("reads = %v", got)
	}
	if got := e.WritePrefixes(); len(got) != 1 || got[0] != "1.3.6.1.4.1.9.1" {
		t.Fatalf("writes = %v", got)
	}
}

func TestEffectsTransitive(t *testing.T) {
	r := analyzeSrc(t, `
func helper() { return mibGet("1.3.6.1.2.1.2.1.0"); }
func main() { return helper(); }
`)
	fi := r.Func("main")
	if fi == nil || !fi.Effects.CallsHost("mibGet") {
		t.Fatalf("main effects = %v", fi)
	}
	if got := fi.Effects.ReadPrefixes(); len(got) != 1 || got[0] != "1.3.6.1.2.1.2.1.0" {
		t.Fatalf("main reads = %v", got)
	}
}

func TestEffectsConstantHeadPrefix(t *testing.T) {
	r := analyzeSrc(t, `
func f(i) {
	return mibGet("1.3.6.1.2.1.2.2.1.10." + str(i));
}`)
	wantNoCode(t, r, CodeDynamicOID)
	if got := r.Effects.ReadPrefixes(); len(got) != 1 || got[0] != "1.3.6.1.2.1.2.2.1.10" {
		t.Fatalf("reads = %v", got)
	}
}

func TestEffectsDynamicOIDWidens(t *testing.T) {
	r := analyzeSrc(t, `
func f(o) { return mibGet(o); }`)
	wantCode(t, r, CodeDynamicOID)
	if got := r.Effects.ReadPrefixes(); len(got) != 1 || got[0] != Wildcard {
		t.Fatalf("reads = %v", got)
	}
}

func TestEffectsPrefixMinimization(t *testing.T) {
	r := analyzeSrc(t, `
func f() {
	mibGet("1.3.6.1.2.1.1.3.0");
	mibWalk("1.3.6.1.2.1");
	mibGet("1.3.6.1.4.1.45.1");
}`)
	got := r.Effects.ReadPrefixes()
	want := []string{"1.3.6.1.2.1", "1.3.6.1.4.1.45.1"}
	if len(got) != len(want) {
		t.Fatalf("reads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reads = %v, want %v", got, want)
		}
	}
}

func TestCostConstantTripLoop(t *testing.T) {
	r := analyzeSrc(t, `
func f() {
	var s = 0;
	for (var i = 0; i < 10; i += 1) {
		s += i;
	}
	return s;
}`)
	fi := r.Func("f")
	if fi.Cost.Unbounded {
		t.Fatalf("cost = %v, want bounded", fi.Cost)
	}
	// 10 trips of a small body: the estimate must scale with trips.
	if fi.Cost.Steps < 40 || fi.Cost.Steps > 1000 {
		t.Fatalf("cost = %v", fi.Cost)
	}

	r2 := analyzeSrc(t, `
func f() {
	var s = 0;
	for (var i = 0; i < 1000; i += 1) {
		s += i;
	}
	return s;
}`)
	if c2 := r2.Func("f").Cost; c2.Unbounded || c2.Steps <= r.Func("f").Cost.Steps*50 {
		t.Fatalf("cost did not scale: %v vs %v", c2, r.Func("f").Cost)
	}
}

func TestCostUnboundedLoop(t *testing.T) {
	r := analyzeSrc(t, `
func f(n) {
	var s = 0;
	for (var i = 0; i < n; i += 1) { s += i; }
	return s;
}`)
	if !r.Func("f").Cost.Unbounded {
		t.Fatalf("cost = %v, want unbounded", r.Func("f").Cost)
	}
	if !r.Cost.Unbounded {
		t.Fatal("program cost should be unbounded")
	}
}

func TestCostRecursionUnbounded(t *testing.T) {
	r := analyzeSrc(t, `
func f(n) { if (n <= 0) { return 0; } return f(n - 1); }`)
	wantCode(t, r, CodeRecursion)
	if !r.Func("f").Cost.Unbounded {
		t.Fatal("recursive cost should be unbounded")
	}
}

func TestSuggestedBudget(t *testing.T) {
	bounded := analyzeSrc(t, `func f() { return 1 + 2; }`)
	if b := bounded.SuggestedBudget(0); b == 0 || b < bounded.Cost.Steps {
		t.Fatalf("budget = %d", b)
	}
	if b := bounded.SuggestedBudget(10); b != 10 {
		t.Fatalf("budget should respect server cap, got %d", b)
	}
	unbounded := analyzeSrc(t, `func f(n) { while (n) { n -= 1; } }`)
	if b := unbounded.SuggestedBudget(5000); b != 5000 {
		t.Fatalf("unbounded budget = %d, want fallback", b)
	}
}

func TestBudgetCoversActualExecution(t *testing.T) {
	// The derived budget must dominate the VM's real step count, or
	// admission would kill legitimate bounded programs.
	src := `
func main() {
	var s = 0;
	for (var i = 0; i < 100; i += 1) {
		s += i * 2 - 1;
	}
	return s;
}`
	prog, err := dpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := LintBindings()
	if errs := dpl.Check(prog, b); len(errs) > 0 {
		t.Fatal(errs)
	}
	rep := Analyze(prog, b)
	if rep.Cost.Unbounded {
		t.Fatalf("cost = %v", rep.Cost)
	}
	obj, err := dpl.Compile(prog, b)
	if err != nil {
		t.Fatal(err)
	}
	vm := dpl.NewVM(obj, b, dpl.WithMaxSteps(rep.SuggestedBudget(0)))
	if _, err := vm.Run(context.Background(), "main"); err != nil {
		t.Fatalf("budget too tight: %v (budget %d)", err, rep.SuggestedBudget(0))
	}
}

func TestCleanProgramHasNoDiags(t *testing.T) {
	r := analyzeSrc(t, `
var seen = {};
func main() {
	while (true) {
		var v = mibGet("1.3.6.1.2.1.1.3.0");
		if (v != nil && !contains(seen, str(v))) {
			seen[str(v)] = true;
			report(str(v));
		}
		sleep(1000);
	}
}`)
	if len(r.Diags) != 0 {
		t.Fatalf("diags = %v", r.Diags)
	}
}

func TestDiagStringFormat(t *testing.T) {
	r := analyzeSrc(t, `
func f() {
	return 1;
	log("x");
}`)
	d := wantCode(t, r, CodeUnreachable)
	s := d.String()
	if !strings.Contains(s, "warning[DPL002]") || !strings.Contains(s, "4:") {
		t.Fatalf("diag string = %q", s)
	}
	if got := codes(r); len(got) == 0 {
		t.Fatal("no codes")
	}
}
