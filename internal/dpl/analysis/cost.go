package analysis

import (
	"fmt"
	"math"

	"mbd/internal/dpl"
)

// Cost analysis. Each function gets an instruction-cost estimate in
// abstract "steps" roughly proportional to (and designed to dominate)
// the VM's instruction count. Constant-trip loops multiply their body
// cost by the trip count; any loop whose trips cannot be bounded marks
// the function Unbounded — legitimate for resident agents, which is why
// unboundedness is a summary property, not a diagnostic. A provably
// infinite loop that never yields (no sleep/recv reachable from its
// body and no break) is flagged DPL005, and recursion is flagged DPL009
// since the estimate cannot converge.

// Per-construct step weights. Deliberately generous relative to the
// VM's per-instruction accounting so that a bounded estimate is an
// upper bound in practice.
const (
	costNode = 1 // per expression node / simple statement
	costCall = 4 // call overhead on top of argument evaluation
	costHost = 8 // host binding invocation (crosses the VM boundary)
	costLoop = 2 // per-iteration loop bookkeeping
)

// maxTrips caps constant-trip multiplication so a crafted
// `for (i=0; i<1e18; …)` cannot overflow the estimate.
const maxTrips = 1 << 32

// CostEstimate is a function's (or program's) static cost summary.
type CostEstimate struct {
	// Steps is the estimated instruction cost of one invocation. When
	// Unbounded, it covers only the bounded portion (one loop trip).
	Steps uint64
	// Unbounded reports that some loop's trip count (or recursion)
	// could not be bounded statically.
	Unbounded bool
	// Pos anchors the estimate (the function position, or for a
	// program summary the costliest function).
	Pos dpl.Pos
}

// String renders "123 steps" or "unbounded (≥123 steps/pass)".
func (c CostEstimate) String() string {
	if c.Unbounded {
		return fmt.Sprintf("unbounded (>=%d steps per pass)", c.Steps)
	}
	return fmt.Sprintf("%d steps", c.Steps)
}

// add saturates.
func addCost(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func mulCost(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

type costAnalyzer struct {
	res      *resolution
	bindings *dpl.Bindings
	funcs    map[string]*dpl.FuncDecl
	effects  map[*dpl.FuncDecl]*effectSet
	memo     map[*dpl.FuncDecl]CostEstimate
	visiting map[*dpl.FuncDecl]bool
	diags    *[]Diagnostic
}

func (a *costAnalyzer) funcCost(f *dpl.FuncDecl) CostEstimate {
	if c, ok := a.memo[f]; ok {
		return c
	}
	if a.visiting[f] {
		// Recursion: cost cannot converge. Reported once per cycle
		// entry point.
		c := CostEstimate{Unbounded: true, Pos: f.Position()}
		a.memo[f] = c
		*a.diags = append(*a.diags, Diagnostic{
			Code: CodeRecursion,
			Sev:  SevWarning,
			Pos:  f.Position(),
			Msg:  fmt.Sprintf("function %q is recursive; its cost cannot be bounded", f.Name),
		})
		return c
	}
	a.visiting[f] = true
	c := a.blockCost(f.Body)
	c.Pos = f.Position()
	delete(a.visiting, f)
	a.memo[f] = c
	return c
}

func (a *costAnalyzer) blockCost(b *dpl.Block) CostEstimate {
	var c CostEstimate
	for _, st := range b.Stmts {
		sc := a.stmtCost(st)
		c.Steps = addCost(c.Steps, sc.Steps)
		c.Unbounded = c.Unbounded || sc.Unbounded
	}
	return c
}

func (a *costAnalyzer) stmtCost(st dpl.Stmt) CostEstimate {
	switch n := st.(type) {
	case *dpl.VarDecl:
		c := CostEstimate{Steps: costNode}
		if n.Init != nil {
			c = combine(c, a.exprCost(n.Init))
		}
		return c
	case *dpl.Block:
		return a.blockCost(n)
	case *dpl.AssignStmt:
		c := CostEstimate{Steps: costNode}
		c = combine(c, a.exprCost(n.Target))
		return combine(c, a.exprCost(n.Value))
	case *dpl.IfStmt:
		c := combine(CostEstimate{Steps: costNode}, a.exprCost(n.Cond))
		tc := a.blockCost(n.Then)
		var ec CostEstimate
		if n.Else != nil {
			ec = a.stmtCost(n.Else)
		}
		// Worst-case branch.
		branch := CostEstimate{Steps: tc.Steps, Unbounded: tc.Unbounded || ec.Unbounded}
		if ec.Steps > branch.Steps {
			branch.Steps = ec.Steps
		}
		return combine(c, branch)
	case *dpl.WhileStmt:
		cond := a.exprCost(n.Cond)
		body := a.blockCost(n.Body)
		if tv, known := constBool(n.Cond); known && !tv {
			return cond // body never runs
		}
		a.checkBusyLoop(n.Position(), n.Cond, n.Body)
		per := addCost(addCost(cond.Steps, body.Steps), costLoop)
		return CostEstimate{Steps: per, Unbounded: true}
	case *dpl.ForStmt:
		var c CostEstimate
		if n.Init != nil {
			c = combine(c, a.stmtCost(n.Init))
		}
		var cond CostEstimate
		if n.Cond != nil {
			cond = a.exprCost(n.Cond)
		}
		body := a.blockCost(n.Body)
		var post CostEstimate
		if n.Post != nil {
			post = a.stmtCost(n.Post)
		}
		per := addCost(addCost(addCost(cond.Steps, body.Steps), post.Steps), costLoop)
		unboundedIter := cond.Unbounded || body.Unbounded || post.Unbounded
		if trips, ok := a.constTrips(n); ok {
			c.Steps = addCost(c.Steps, mulCost(per, trips))
			c.Unbounded = c.Unbounded || unboundedIter
			return c
		}
		a.checkBusyLoop(n.Position(), n.Cond, n.Body)
		c.Steps = addCost(c.Steps, per)
		c.Unbounded = true
		return c
	case *dpl.BreakStmt, *dpl.ContinueStmt:
		return CostEstimate{Steps: costNode}
	case *dpl.ReturnStmt:
		c := CostEstimate{Steps: costNode}
		if n.Value != nil {
			c = combine(c, a.exprCost(n.Value))
		}
		return c
	case *dpl.ExprStmt:
		return a.exprCost(n.X)
	}
	return CostEstimate{Steps: costNode}
}

func combine(a, b CostEstimate) CostEstimate {
	return CostEstimate{Steps: addCost(a.Steps, b.Steps), Unbounded: a.Unbounded || b.Unbounded}
}

func (a *costAnalyzer) exprCost(e dpl.Expr) CostEstimate {
	switch n := e.(type) {
	case *dpl.UnaryExpr:
		return combine(CostEstimate{Steps: costNode}, a.exprCost(n.X))
	case *dpl.BinaryExpr:
		return combine(combine(CostEstimate{Steps: costNode}, a.exprCost(n.L)), a.exprCost(n.R))
	case *dpl.IndexExpr:
		return combine(combine(CostEstimate{Steps: costNode}, a.exprCost(n.X)), a.exprCost(n.I))
	case *dpl.ArrayLit:
		c := CostEstimate{Steps: costNode}
		for _, el := range n.Elems {
			c = combine(c, a.exprCost(el))
		}
		return c
	case *dpl.MapLit:
		c := CostEstimate{Steps: costNode}
		for i := range n.Keys {
			c = combine(combine(c, a.exprCost(n.Keys[i])), a.exprCost(n.Vals[i]))
		}
		return c
	case *dpl.CallExpr:
		c := CostEstimate{Steps: costCall}
		for _, arg := range n.Args {
			c = combine(c, a.exprCost(arg))
		}
		if callee, ok := a.funcs[n.Name]; ok {
			return combine(c, a.funcCost(callee))
		}
		return combine(c, CostEstimate{Steps: costHost})
	}
	return CostEstimate{Steps: costNode}
}

// constTrips detects the canonical counted loop
//
//	for (var i = C0; i <op> C1; i += C2) { …no writes to i… }
//
// (also `i = C0` init, `-=` with reversed comparison, and reversed
// comparison operand order) and returns its trip count.
func (a *costAnalyzer) constTrips(n *dpl.ForStmt) (uint64, bool) {
	if n.Init == nil || n.Cond == nil || n.Post == nil {
		return 0, false
	}
	var id varID = varNone
	var start int64
	switch init := n.Init.(type) {
	case *dpl.VarDecl:
		if init.Init == nil {
			return 0, false
		}
		v, ok := constInt(init.Init)
		if !ok {
			return 0, false
		}
		start = v
		id = a.res.decl[init]
	case *dpl.AssignStmt:
		t, ok := init.Target.(*dpl.Ident)
		if !ok || init.Op != dpl.TokAssign {
			return 0, false
		}
		v, ok := constInt(init.Value)
		if !ok {
			return 0, false
		}
		start = v
		id = a.res.use[t]
	default:
		return 0, false
	}
	if id == varNone {
		return 0, false
	}

	cond, ok := n.Cond.(*dpl.BinaryExpr)
	if !ok {
		return 0, false
	}
	op := cond.Op
	var limit int64
	if li, lok := cond.L.(*dpl.Ident); lok && a.res.use[li] == id {
		v, ok := constInt(cond.R)
		if !ok {
			return 0, false
		}
		limit = v
	} else if ri, rok := cond.R.(*dpl.Ident); rok && a.res.use[ri] == id {
		v, ok := constInt(cond.L)
		if !ok {
			return 0, false
		}
		limit = v
		// Mirror the comparison: C <op> i  ≡  i <mirror(op)> C.
		switch op {
		case dpl.TokLt:
			op = dpl.TokGt
		case dpl.TokLe:
			op = dpl.TokGe
		case dpl.TokGt:
			op = dpl.TokLt
		case dpl.TokGe:
			op = dpl.TokLe
		default:
			return 0, false
		}
	} else {
		return 0, false
	}

	post, ok := n.Post.(*dpl.AssignStmt)
	if !ok {
		return 0, false
	}
	pt, ok := post.Target.(*dpl.Ident)
	if !ok || a.res.use[pt] != id {
		return 0, false
	}
	step, ok := constInt(post.Value)
	if !ok || step == 0 {
		return 0, false
	}
	switch post.Op {
	case dpl.TokPlusAssign:
	case dpl.TokMinusAssign:
		step = -step
	default:
		return 0, false
	}

	// The body must not write the induction variable.
	if writesVar(n.Body, id, a.res) {
		return 0, false
	}

	var span int64
	switch op {
	case dpl.TokLt:
		if step <= 0 {
			return 0, false
		}
		span = limit - start
	case dpl.TokLe:
		if step <= 0 {
			return 0, false
		}
		span = limit - start + 1
	case dpl.TokGt:
		if step >= 0 {
			return 0, false
		}
		span = start - limit
		step = -step
	case dpl.TokGe:
		if step >= 0 {
			return 0, false
		}
		span = start - limit + 1
		step = -step
	default:
		return 0, false
	}
	if span <= 0 {
		return 0, true
	}
	trips := (span + step - 1) / step
	if trips > maxTrips {
		trips = maxTrips
	}
	return uint64(trips), true
}

// writesVar reports whether the block assigns the given variable.
func writesVar(b *dpl.Block, id varID, res *resolution) bool {
	found := false
	var stmt func(dpl.Stmt)
	stmt = func(st dpl.Stmt) {
		if found {
			return
		}
		switch n := st.(type) {
		case *dpl.Block:
			for _, s := range n.Stmts {
				stmt(s)
			}
		case *dpl.AssignStmt:
			if t, ok := n.Target.(*dpl.Ident); ok && res.use[t] == id {
				found = true
			}
		case *dpl.IfStmt:
			stmt(n.Then)
			if n.Else != nil {
				stmt(n.Else)
			}
		case *dpl.WhileStmt:
			stmt(n.Body)
		case *dpl.ForStmt:
			if n.Init != nil {
				stmt(n.Init)
			}
			if n.Post != nil {
				stmt(n.Post)
			}
			stmt(n.Body)
		}
	}
	for _, s := range b.Stmts {
		stmt(s)
	}
	return found
}

// yieldBindings are host functions that park the instance; a loop that
// reaches one is a well-behaved resident agent, not a busy loop.
var yieldBindings = map[string]bool{"sleep": true, "recv": true}

// checkBusyLoop flags DPL005 for a provably infinite loop (constant-
// true or missing condition) that contains no break and cannot reach a
// yielding host call from its body.
func (a *costAnalyzer) checkBusyLoop(pos dpl.Pos, cond dpl.Expr, body *dpl.Block) {
	infinite := cond == nil
	if cond != nil {
		tv, known := constBool(cond)
		infinite = known && tv
	}
	if !infinite || hasDirectBreak(body) {
		return
	}
	yields := false
	walkCalls(body, func(c *dpl.CallExpr) {
		if yields {
			return
		}
		if yieldBindings[c.Name] {
			if _, isUser := a.funcs[c.Name]; !isUser {
				yields = true
				return
			}
		}
		if callee, ok := a.funcs[c.Name]; ok {
			if set, ok := a.effects[callee]; ok {
				for name := range set.hosts {
					if yieldBindings[name] {
						yields = true
						return
					}
				}
			}
		}
	})
	if yields {
		return
	}
	*a.diags = append(*a.diags, Diagnostic{
		Code: CodeBusyLoop,
		Sev:  SevWarning,
		Pos:  pos,
		Msg:  "infinite loop never yields (no sleep/recv on any path) and has no break; it will burn its entire step quota",
	})
}

// hasDirectBreak reports whether the loop body contains a break bound
// to this loop (i.e. not inside a nested loop).
func hasDirectBreak(b *dpl.Block) bool {
	found := false
	var stmt func(dpl.Stmt)
	stmt = func(st dpl.Stmt) {
		if found {
			return
		}
		switch n := st.(type) {
		case *dpl.BreakStmt:
			found = true
		case *dpl.Block:
			for _, s := range n.Stmts {
				stmt(s)
			}
		case *dpl.IfStmt:
			stmt(n.Then)
			if n.Else != nil {
				stmt(n.Else)
			}
		}
		// WhileStmt / ForStmt bodies rebind break: do not descend.
	}
	for _, s := range b.Stmts {
		stmt(s)
	}
	return found
}
