// Package analysis is the delegation-time static analyzer for DPL
// programs. The paper's translator rejects a dp that "violates any of a
// set of defined rules for the given language"; package dpl's Check
// enforces the name-resolution rules, and this package adds the deeper,
// flow-sensitive rules an elastic process wants before admitting code
// from another administrative domain:
//
//   - dataflow diagnostics over a per-function control-flow graph
//     (use-before-init, unreachable code, dead stores, never-written
//     globals);
//   - capability/effect inference: which host bindings and which MIB
//     OID prefixes a dp can reach, computed transitively and
//     constant-folded from the arguments of the MIB primitives, so the
//     admission path can compare a dp's footprint against the
//     delegating principal's grant instead of discovering violations at
//     runtime;
//   - cost analysis: instruction-cost estimates per function with
//     constant-trip loop bounding, used to derive a default VM step
//     budget and to enforce a server-side admission cost ceiling.
//
// Every diagnostic carries a stable machine-readable code (DPL001…)
// so rejections survive serialization across the RDS protocol.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"mbd/internal/dpl"
)

// Severity ranks a diagnostic.
type Severity uint8

// Severities.
const (
	// SevWarning marks a suspicious construct that does not, by
	// itself, reject a dp (strict admission upgrades warnings).
	SevWarning Severity = iota + 1
	// SevError marks a rule violation that rejects the dp at
	// admission.
	SevError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	default:
		return "warning"
	}
}

// Stable diagnostic codes. Codes are append-only: once published they
// keep their meaning forever, because delegators match on them.
const (
	// CodeUseBeforeInit: a local variable may be read before any
	// assignment reaches it (it reads as nil).
	CodeUseBeforeInit = "DPL001"
	// CodeUnreachable: statements that no control path reaches.
	CodeUnreachable = "DPL002"
	// CodeDeadStore: a value assigned to a local that is never read.
	CodeDeadStore = "DPL003"
	// CodeGlobalNeverWritten: a global read somewhere but written
	// nowhere (it is always nil).
	CodeGlobalNeverWritten = "DPL004"
	// CodeBusyLoop: a provably infinite loop that never yields (no
	// sleep/recv on any path) and has no break.
	CodeBusyLoop = "DPL005"
	// CodeDynamicOID: a MIB primitive whose OID argument is not a
	// foldable constant, widening the inferred effect to the whole MIB.
	CodeDynamicOID = "DPL006"
	// CodeEffectDenied: the dp's inferred effects exceed the
	// delegating principal's capability grant (admission-time).
	CodeEffectDenied = "DPL007"
	// CodeCostCeiling: the dp's bounded cost estimate exceeds the
	// server's admission ceiling (admission-time).
	CodeCostCeiling = "DPL008"
	// CodeRecursion: a recursive call cycle, making cost unbounded.
	CodeRecursion = "DPL009"

	// DPL01x codes are produced by the bytecode verifier
	// (internal/dpl/verify) when admitting a CompiledProgram without
	// source.

	// CodeBadOpcode: an opcode outside the instruction set.
	CodeBadOpcode = "DPL010"
	// CodeBadJump: a jump target outside the code block.
	CodeBadJump = "DPL011"
	// CodeStackUnsafe: a stack underflow or inconsistent stack depth at
	// a control-flow join.
	CodeStackUnsafe = "DPL012"
	// CodeBadOperand: an out-of-bounds constant, global, local,
	// function or host index, or a malformed immediate.
	CodeBadOperand = "DPL013"
	// CodeEffectUndeclared: the bytecode can reach a host function or
	// MIB OID prefix its attached verdict does not declare.
	CodeEffectUndeclared = "DPL014"
	// CodeBudgetMismatch: the declared step budget or cost estimate is
	// inconsistent with the code (e.g. a bounded claim on recursive
	// code, or a budget below the provable worst case).
	CodeBudgetMismatch = "DPL015"
	// CodeVersionSkew: the artifact was produced by a different
	// compiler generation than this receiver runs.
	CodeVersionSkew = "DPL016"
	// CodeHostTableSkew: the artifact's host-call table does not match
	// the receiver's bindings layout.
	CodeHostTableSkew = "DPL017"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code string
	Sev  Severity
	Pos  dpl.Pos
	Msg  string
}

// String renders "line:col: severity[CODE]: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Sev, d.Code, d.Msg)
}

// SortDiags orders diagnostics by position, then code.
func SortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// Counts returns the number of errors and warnings.
func Counts(diags []Diagnostic) (errs, warns int) {
	for _, d := range diags {
		if d.Sev == SevError {
			errs++
		} else {
			warns++
		}
	}
	return errs, warns
}

// Error bundles diagnostics as a single error value, for callers that
// reject a dp outright.
type Error struct {
	Diags []Diagnostic
}

// Error implements error.
func (e *Error) Error() string {
	msgs := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		msgs[i] = d.String()
	}
	return "dpl analysis:\n  " + strings.Join(msgs, "\n  ")
}
