package analysis

import "mbd/internal/dpl"

// FuncInfo is one function's analysis summary.
type FuncInfo struct {
	Name    string
	Pos     dpl.Pos
	Effects Effects
	Cost    CostEstimate
	CFG     *Graph
}

// Report is the result of analyzing one program.
type Report struct {
	// Diags holds every analyzer finding, sorted by position.
	Diags []Diagnostic
	// Funcs summarizes each function in declaration order.
	Funcs []*FuncInfo
	// Effects is the program-level union: everything any function (or
	// a global initializer) can reach. Any function may serve as the
	// instantiation entry point, so admission checks this union.
	Effects Effects
	// Cost is the program-level worst case: the costliest function,
	// Unbounded if any function is unbounded.
	Cost CostEstimate
}

// HasErrors reports whether the program must be rejected.
func (r *Report) HasErrors() bool { return HasErrors(r.Diags) }

// Func returns the summary of the named function, or nil.
func (r *Report) Func(name string) *FuncInfo {
	for _, f := range r.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// budgetMargin and budgetFloor pad a bounded cost estimate into a VM
// step budget: estimate*margin + floor. The margin absorbs the
// coarseness of the cost model; the floor covers program prologue
// (global initializers) and host-call internals.
const (
	budgetMargin = 4
	budgetFloor  = 1024
)

// SuggestedBudget derives a vm.WithMaxSteps budget from the program
// cost: a bounded program gets a generous multiple of its estimate (so
// a runaway can never exceed ~4× its static cost), an unbounded one —
// the resident-agent case — falls back to the supplied default (0 =
// unlimited).
func (r *Report) SuggestedBudget(fallback uint64) uint64 {
	if r.Cost.Unbounded {
		return fallback
	}
	b := addCost(mulCost(r.Cost.Steps, budgetMargin), budgetFloor)
	if fallback != 0 && fallback < b {
		return fallback // never exceed the server's own ceiling
	}
	return b
}

// Analyze runs the full static-analysis pipeline over prog against the
// host's allowed-function table. prog should already have passed
// dpl.Check — the analyzer is robust to unchecked programs (unresolved
// names are simply skipped) but its diagnostics assume resolution.
//
// Pipeline: variable resolution → per-function CFG → unreachable code →
// definite assignment → liveness/dead stores → never-written globals →
// effect inference → cost analysis.
func Analyze(prog *dpl.Program, bindings *dpl.Bindings) *Report {
	rep := &Report{}
	res := resolve(prog)

	graphs := make(map[*dpl.FuncDecl]*Graph, len(prog.Funcs))
	for _, f := range prog.Funcs {
		g := buildCFG(f)
		graphs[f] = g
		unreachableDiags(g, &rep.Diags)
		definiteAssignment(g, res, &rep.Diags)
		liveness(g, res, &rep.Diags)
	}
	globalDiags(prog, res, &rep.Diags)

	effects, initSet := inferEffects(prog, bindings, &rep.Diags)

	funcsByName := make(map[string]*dpl.FuncDecl, len(prog.Funcs))
	for _, f := range prog.Funcs {
		if _, dup := funcsByName[f.Name]; !dup {
			funcsByName[f.Name] = f
		}
	}
	ca := &costAnalyzer{
		res:      res,
		bindings: bindings,
		funcs:    funcsByName,
		effects:  effects,
		memo:     make(map[*dpl.FuncDecl]CostEstimate),
		visiting: make(map[*dpl.FuncDecl]bool),
		diags:    &rep.Diags,
	}

	program := newEffectSet()
	program.mergeFrom(initSet)
	for _, f := range prog.Funcs {
		cost := ca.funcCost(f)
		set := effects[f]
		program.mergeFrom(set)
		rep.Funcs = append(rep.Funcs, &FuncInfo{
			Name:    f.Name,
			Pos:     f.Position(),
			Effects: set.finalize(),
			Cost:    cost,
			CFG:     graphs[f],
		})
		if cost.Unbounded && !rep.Cost.Unbounded {
			rep.Cost.Unbounded = true
			rep.Cost.Pos = cost.Pos
		}
		if cost.Steps > rep.Cost.Steps {
			rep.Cost.Steps = cost.Steps
			if !rep.Cost.Unbounded || cost.Unbounded {
				rep.Cost.Pos = cost.Pos
			}
		}
	}
	rep.Effects = program.finalize()
	SortDiags(rep.Diags)
	return rep
}
