package analysis

import (
	"fmt"
	"sort"
	"strings"

	"mbd/internal/dpl"
)

// Capability / effect inference. Each function's effect summary is the
// set of host bindings it can invoke and the MIB OID prefixes it can
// read or write, closed transitively over the user-function call graph.
// The elastic process compares the program-level summary against the
// delegating principal's grant at admission time, making the ACL a
// statically verified contract instead of a runtime tripwire.

// Wildcard marks an effect whose OID could not be folded: the program
// may touch the entire MIB.
const Wildcard = "*"

// Effect is one element of an effect set: a host function name, or an
// OID prefix for MIB reads/writes, with one exemplar source position.
type Effect struct {
	Name string
	Pos  dpl.Pos
}

// Effects summarizes what a function (or whole program) can reach.
type Effects struct {
	// Hosts are the host bindings invocable, sorted by name.
	Hosts []Effect
	// Reads are MIB OID prefixes readable via the MIB primitives
	// (mibGet/mibNext/mibWalk/snmpGet/snmpNext), minimal and sorted.
	// A Wildcard entry subsumes everything.
	Reads []Effect
	// Writes are OID prefixes writable via mibSet, same encoding.
	Writes []Effect
}

// mibPrimitives maps the MIB host primitives to the index of their OID
// argument and whether they write.
var mibPrimitives = map[string]struct {
	argIdx int
	write  bool
}{
	"mibGet":   {0, false},
	"mibNext":  {0, false},
	"mibWalk":  {0, false},
	"mibSet":   {0, true},
	"snmpGet":  {1, false},
	"snmpNext": {1, false},
}

// MIBPrimitive reports whether name is one of the MIB host primitives,
// and if so which argument carries the OID and whether the call writes.
// The bytecode verifier uses this to recover effects from compiled
// code with the same rules source-level inference applies.
func MIBPrimitive(name string) (oidArg int, write, ok bool) {
	p, ok := mibPrimitives[name]
	return p.argIdx, p.write, ok
}

// HostNames returns the sorted host-function names of e.
func (e *Effects) HostNames() []string { return effectNames(e.Hosts) }

// ReadPrefixes returns the sorted read prefixes of e.
func (e *Effects) ReadPrefixes() []string { return effectNames(e.Reads) }

// WritePrefixes returns the sorted write prefixes of e.
func (e *Effects) WritePrefixes() []string { return effectNames(e.Writes) }

func effectNames(es []Effect) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}

// CallsHost reports whether e may invoke the named host binding.
func (e *Effects) CallsHost(name string) bool {
	for _, h := range e.Hosts {
		if h.Name == name {
			return true
		}
	}
	return false
}

// String renders a compact one-line summary.
func (e *Effects) String() string {
	var parts []string
	if len(e.Hosts) > 0 {
		parts = append(parts, "hosts="+strings.Join(e.HostNames(), ","))
	}
	if len(e.Reads) > 0 {
		parts = append(parts, "reads="+strings.Join(e.ReadPrefixes(), ","))
	}
	if len(e.Writes) > 0 {
		parts = append(parts, "writes="+strings.Join(e.WritePrefixes(), ","))
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, " ")
}

// OIDCovers reports whether allowed covers oid as an OID prefix at a
// component boundary. Wildcard covers everything.
func OIDCovers(allowed, oid string) bool {
	if allowed == Wildcard {
		return true
	}
	if oid == Wildcard {
		return false // only a wildcard grant covers a wildcard effect
	}
	return oid == allowed || strings.HasPrefix(oid, allowed+".")
}

// effectSet accumulates effects during inference.
type effectSet struct {
	hosts  map[string]dpl.Pos
	reads  map[string]dpl.Pos
	writes map[string]dpl.Pos
}

func newEffectSet() *effectSet {
	return &effectSet{
		hosts:  make(map[string]dpl.Pos),
		reads:  make(map[string]dpl.Pos),
		writes: make(map[string]dpl.Pos),
	}
}

func addOnce(m map[string]dpl.Pos, k string, pos dpl.Pos) bool {
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = pos
	return true
}

// mergeFrom folds o into s, reporting whether s grew.
func (s *effectSet) mergeFrom(o *effectSet) bool {
	grew := false
	for k, p := range o.hosts {
		grew = addOnce(s.hosts, k, p) || grew
	}
	for k, p := range o.reads {
		grew = addOnce(s.reads, k, p) || grew
	}
	for k, p := range o.writes {
		grew = addOnce(s.writes, k, p) || grew
	}
	return grew
}

// finalize converts the accumulator to a sorted, prefix-minimal
// Effects value.
func (s *effectSet) finalize() Effects {
	return Effects{
		Hosts:  sortedEffects(s.hosts, false),
		Reads:  sortedEffects(s.reads, true),
		Writes: sortedEffects(s.writes, true),
	}
}

func sortedEffects(m map[string]dpl.Pos, minimize bool) []Effect {
	out := make([]Effect, 0, len(m))
	for k, p := range m {
		out = append(out, Effect{Name: k, Pos: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if !minimize {
		return out
	}
	// Drop prefixes covered by another (shorter) prefix or a wildcard.
	kept := out[:0]
	for i, e := range out {
		covered := false
		for j, o := range out {
			if i == j {
				continue
			}
			if OIDCovers(o.Name, e.Name) && (o.Name != e.Name || j < i) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, e)
		}
	}
	return kept
}

// inferEffects computes per-function effect sets, transitively closed
// over user calls, plus DPL006 diagnostics for dynamic OID arguments.
func inferEffects(prog *dpl.Program, bindings *dpl.Bindings, diags *[]Diagnostic) (sets map[*dpl.FuncDecl]*effectSet, initSet *effectSet) {
	userFuncs := make(map[string]*dpl.FuncDecl, len(prog.Funcs))
	for _, f := range prog.Funcs {
		if _, dup := userFuncs[f.Name]; !dup {
			userFuncs[f.Name] = f
		}
	}

	direct := make(map[*dpl.FuncDecl]*effectSet, len(prog.Funcs))
	calls := make(map[*dpl.FuncDecl]map[*dpl.FuncDecl]bool, len(prog.Funcs))

	collect := func(f *dpl.FuncDecl, body *dpl.Block, set *effectSet) {
		walkCalls(body, func(c *dpl.CallExpr) {
			if callee, ok := userFuncs[c.Name]; ok {
				// User functions resolve before host bindings (and
				// shadowing a host name is a Check error anyway).
				if f != nil {
					if calls[f] == nil {
						calls[f] = make(map[*dpl.FuncDecl]bool)
					}
					calls[f][callee] = true
				}
				return
			}
			if _, _, isHost := bindings.Lookup(c.Name); !isHost {
				return // unknown name; Check already rejected it
			}
			addOnce(set.hosts, c.Name, c.Position())
			prim, ok := mibPrimitives[c.Name]
			if !ok || prim.argIdx >= len(c.Args) {
				return
			}
			arg := c.Args[prim.argIdx]
			prefix, exact, okPrefix := constOIDPrefix(arg)
			if !okPrefix {
				prefix = Wildcard
				*diags = append(*diags, Diagnostic{
					Code: CodeDynamicOID,
					Sev:  SevWarning,
					Pos:  arg.Position(),
					Msg:  fmt.Sprintf("OID argument of %s is not a constant; inferred effect widens to the whole MIB", c.Name),
				})
			}
			_ = exact
			if prim.write {
				addOnce(set.writes, prefix, arg.Position())
			} else {
				addOnce(set.reads, prefix, arg.Position())
			}
		})
	}

	for _, f := range prog.Funcs {
		set := newEffectSet()
		collect(f, f.Body, set)
		direct[f] = set
	}

	// Global initializers run before any entry point; their effects
	// belong to the program but to no function.
	initSet = newEffectSet()
	for _, g := range prog.Globals {
		if g.Init != nil {
			collect(nil, &dpl.Block{Stmts: []dpl.Stmt{&dpl.ExprStmt{Pos_: g.Position(), X: g.Init}}}, initSet)
		}
	}

	// Transitive closure: iterate until no summary grows.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			for callee := range calls[f] {
				if direct[f].mergeFrom(direct[callee]) {
					changed = true
				}
			}
		}
	}
	return direct, initSet
}

// walkCalls visits every CallExpr in a statement tree.
func walkCalls(b *dpl.Block, fn func(*dpl.CallExpr)) {
	var stmt func(dpl.Stmt)
	var expr func(dpl.Expr)
	expr = func(e dpl.Expr) {
		switch n := e.(type) {
		case *dpl.UnaryExpr:
			expr(n.X)
		case *dpl.BinaryExpr:
			expr(n.L)
			expr(n.R)
		case *dpl.IndexExpr:
			expr(n.X)
			expr(n.I)
		case *dpl.ArrayLit:
			for _, el := range n.Elems {
				expr(el)
			}
		case *dpl.MapLit:
			for i := range n.Keys {
				expr(n.Keys[i])
				expr(n.Vals[i])
			}
		case *dpl.CallExpr:
			fn(n)
			for _, a := range n.Args {
				expr(a)
			}
		}
	}
	stmt = func(st dpl.Stmt) {
		switch n := st.(type) {
		case *dpl.VarDecl:
			if n.Init != nil {
				expr(n.Init)
			}
		case *dpl.Block:
			for _, s := range n.Stmts {
				stmt(s)
			}
		case *dpl.AssignStmt:
			expr(n.Target)
			expr(n.Value)
		case *dpl.IfStmt:
			expr(n.Cond)
			stmt(n.Then)
			if n.Else != nil {
				stmt(n.Else)
			}
		case *dpl.WhileStmt:
			expr(n.Cond)
			stmt(n.Body)
		case *dpl.ForStmt:
			if n.Init != nil {
				stmt(n.Init)
			}
			if n.Cond != nil {
				expr(n.Cond)
			}
			if n.Post != nil {
				stmt(n.Post)
			}
			stmt(n.Body)
		case *dpl.ReturnStmt:
			if n.Value != nil {
				expr(n.Value)
			}
		case *dpl.ExprStmt:
			expr(n.X)
		}
	}
	for _, s := range b.Stmts {
		stmt(s)
	}
}
