package dpl

import (
	"context"
	"fmt"
)

// Interp is a reference tree-walking interpreter with semantics
// identical to the bytecode VM. It exists for two purposes:
//
//  1. cross-checking — the package's property tests run random programs
//     through both engines and require identical results; and
//  2. the Table 2.1 ablation — language-based agent systems of the
//     paper's era (Safe-TCL and early Java) interpreted scripts
//     directly, so BenchmarkT1InterpreterOverhead compares this engine
//     against the compiled VM to quantify the "interpreted script" row.
//
// The interpreter has no Control gate or step quota; it is not used by
// the elastic runtime.
type Interp struct {
	prog     *Program
	bindings *Bindings
	funcs    map[string]*FuncDecl
	globals  map[string]Value
	ctx      context.Context
}

// NewInterp validates prog against bindings (same Translator rules as
// Compile) and prepares an interpreter.
func NewInterp(prog *Program, bindings *Bindings) (*Interp, error) {
	if errs := Check(prog, bindings); len(errs) > 0 {
		return nil, fmt.Errorf("dpl: translation rejected: %w", errs[0])
	}
	it := &Interp{
		prog:     prog,
		bindings: bindings,
		funcs:    make(map[string]*FuncDecl),
		globals:  make(map[string]Value),
	}
	for _, f := range prog.Funcs {
		it.funcs[f.Name] = f
	}
	return it, nil
}

// control-flow signals, conveyed as errors internally.
type breakSignal struct{}
type continueSignal struct{}
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break" }
func (continueSignal) Error() string { return "continue" }
func (returnSignal) Error() string   { return "return" }

// iscope is the interpreter's scope chain.
type iscope struct {
	parent *iscope
	vars   map[string]Value
}

func (s *iscope) lookup(name string) (*iscope, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			return cur, true
		}
	}
	return nil, false
}

// Run evaluates global initializers (once) and calls the entry function.
func (it *Interp) Run(ctx context.Context, entry string, args ...Value) (Value, error) {
	it.ctx = ctx
	defer func() { it.ctx = nil }()
	if len(it.globals) == 0 {
		for _, g := range it.prog.Globals {
			var v Value
			if g.Init != nil {
				var err error
				v, err = it.eval(g.Init, &iscope{vars: map[string]Value{}})
				if err != nil {
					return nil, fmt.Errorf("dpl: global initialization: %w", err)
				}
			}
			it.globals[g.Name] = v
		}
	}
	f, ok := it.funcs[entry]
	if !ok {
		return nil, fmt.Errorf("dpl: no entry function %q", entry)
	}
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("dpl: entry %q expects %d arguments, got %d", entry, len(f.Params), len(args))
	}
	return it.call(f, args)
}

func (it *Interp) call(f *FuncDecl, args []Value) (Value, error) {
	s := &iscope{vars: make(map[string]Value, len(f.Params))}
	for i, p := range f.Params {
		s.vars[p] = args[i]
	}
	err := it.execBlock(f.Body, &iscope{parent: s, vars: map[string]Value{}})
	if err != nil {
		if rs, ok := err.(returnSignal); ok {
			return rs.v, nil
		}
		return nil, err
	}
	return nil, nil
}

func (it *Interp) execBlock(b *Block, s *iscope) error {
	for _, st := range b.Stmts {
		if err := it.exec(st, s); err != nil {
			return err
		}
	}
	return nil
}

func (it *Interp) exec(st Stmt, s *iscope) error {
	switch n := st.(type) {
	case *VarDecl:
		var v Value
		if n.Init != nil {
			var err error
			v, err = it.eval(n.Init, s)
			if err != nil {
				return err
			}
		}
		s.vars[n.Name] = v
		return nil
	case *Block:
		return it.execBlock(n, &iscope{parent: s, vars: map[string]Value{}})
	case *AssignStmt:
		v, err := it.eval(n.Value, s)
		if err != nil {
			return err
		}
		switch t := n.Target.(type) {
		case *Ident:
			if n.Op != TokAssign {
				cur, err := it.eval(t, s)
				if err != nil {
					return err
				}
				op := TokPlus
				if n.Op == TokMinusAssign {
					op = TokMinus
				}
				v, err = arith(op, cur, v)
				if err != nil {
					return err
				}
			}
			if sc, ok := s.lookup(t.Name); ok {
				sc.vars[t.Name] = v
				return nil
			}
			if _, ok := it.globals[t.Name]; ok {
				it.globals[t.Name] = v
				return nil
			}
			return rtErrf("unresolved variable %q", t.Name)
		case *IndexExpr:
			x, err := it.eval(t.X, s)
			if err != nil {
				return err
			}
			i, err := it.eval(t.I, s)
			if err != nil {
				return err
			}
			return setIndex(x, i, v)
		default:
			return rtErrf("bad assignment target")
		}
	case *IfStmt:
		cond, err := it.eval(n.Cond, s)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return it.execBlock(n.Then, &iscope{parent: s, vars: map[string]Value{}})
		}
		if n.Else != nil {
			return it.exec(n.Else, &iscope{parent: s, vars: map[string]Value{}})
		}
		return nil
	case *WhileStmt:
		for {
			cond, err := it.eval(n.Cond, s)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			err = it.execBlock(n.Body, &iscope{parent: s, vars: map[string]Value{}})
			switch err.(type) {
			case nil, continueSignal:
			case breakSignal:
				return nil
			default:
				return err
			}
		}
	case *ForStmt:
		fs := &iscope{parent: s, vars: map[string]Value{}}
		if n.Init != nil {
			if err := it.exec(n.Init, fs); err != nil {
				return err
			}
		}
		for {
			if n.Cond != nil {
				cond, err := it.eval(n.Cond, fs)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			err := it.execBlock(n.Body, &iscope{parent: fs, vars: map[string]Value{}})
			switch err.(type) {
			case nil, continueSignal:
			case breakSignal:
				return nil
			default:
				return err
			}
			if n.Post != nil {
				if err := it.exec(n.Post, fs); err != nil {
					return err
				}
			}
		}
	case *BreakStmt:
		return breakSignal{}
	case *ContinueStmt:
		return continueSignal{}
	case *ReturnStmt:
		if n.Value == nil {
			return returnSignal{}
		}
		v, err := it.eval(n.Value, s)
		if err != nil {
			return err
		}
		return returnSignal{v: v}
	case *ExprStmt:
		_, err := it.eval(n.X, s)
		return err
	default:
		return rtErrf("unknown statement %T", st)
	}
}

func (it *Interp) eval(e Expr, s *iscope) (Value, error) {
	switch n := e.(type) {
	case *IntLit:
		return n.V, nil
	case *FloatLit:
		return n.V, nil
	case *StringLit:
		return n.V, nil
	case *BoolLit:
		return n.V, nil
	case *NilLit:
		return nil, nil
	case *Ident:
		if sc, ok := s.lookup(n.Name); ok {
			return sc.vars[n.Name], nil
		}
		if v, ok := it.globals[n.Name]; ok {
			return v, nil
		}
		return nil, rtErrf("unresolved variable %q", n.Name)
	case *UnaryExpr:
		x, err := it.eval(n.X, s)
		if err != nil {
			return nil, err
		}
		if n.Op == TokBang {
			return !Truthy(x), nil
		}
		switch v := x.(type) {
		case int64:
			return -v, nil
		case float64:
			return -v, nil
		default:
			return nil, rtErrf("cannot negate %s", TypeName(x))
		}
	case *BinaryExpr:
		switch n.Op {
		case TokAndAnd:
			l, err := it.eval(n.L, s)
			if err != nil {
				return nil, err
			}
			if !Truthy(l) {
				return l, nil
			}
			return it.eval(n.R, s)
		case TokOrOr:
			l, err := it.eval(n.L, s)
			if err != nil {
				return nil, err
			}
			if Truthy(l) {
				return l, nil
			}
			return it.eval(n.R, s)
		}
		l, err := it.eval(n.L, s)
		if err != nil {
			return nil, err
		}
		r, err := it.eval(n.R, s)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case TokEq:
			return valueEqual(l, r), nil
		case TokNe:
			return !valueEqual(l, r), nil
		case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
			return arith(n.Op, l, r)
		default:
			return compare(n.Op, l, r)
		}
	case *IndexExpr:
		x, err := it.eval(n.X, s)
		if err != nil {
			return nil, err
		}
		i, err := it.eval(n.I, s)
		if err != nil {
			return nil, err
		}
		return indexValue(x, i)
	case *ArrayLit:
		a := &Array{Elems: make([]Value, len(n.Elems))}
		for i, el := range n.Elems {
			v, err := it.eval(el, s)
			if err != nil {
				return nil, err
			}
			a.Elems[i] = v
		}
		return a, nil
	case *MapLit:
		m := NewMap()
		for i := range n.Keys {
			k, err := it.eval(n.Keys[i], s)
			if err != nil {
				return nil, err
			}
			ks, ok := k.(string)
			if !ok {
				return nil, rtErrf("map key must be string, got %s", TypeName(k))
			}
			v, err := it.eval(n.Vals[i], s)
			if err != nil {
				return nil, err
			}
			m.M[ks] = v
		}
		return m, nil
	case *CallExpr:
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := it.eval(a, s)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if f, ok := it.funcs[n.Name]; ok {
			return it.call(f, args)
		}
		if hi, _, ok := it.bindings.Lookup(n.Name); ok {
			return it.bindings.Call(hi, &Env{}, args)
		}
		return nil, rtErrf("unbound call %q", n.Name)
	default:
		return nil, rtErrf("unknown expression %T", e)
	}
}
