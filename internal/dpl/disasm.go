package dpl

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to mnemonic names for disassembly.
var opNames = map[Opcode]string{
	OpConst: "CONST", OpNil: "NIL", OpTrue: "TRUE", OpFalse: "FALSE",
	OpLoadG: "LOADG", OpStoreG: "STOREG", OpLoadL: "LOADL", OpStoreL: "STOREL",
	OpPop: "POP", OpBin: "BIN", OpEq: "EQ", OpNe: "NE", OpNeg: "NEG",
	OpNot: "NOT", OpJump: "JUMP", OpJumpFalse: "JF", OpJFKeep: "JFK",
	OpJTKeep: "JTK", OpCall: "CALL", OpCallHost: "CALLH", OpReturn: "RET",
	OpReturnNil: "RETNIL", OpIndex: "INDEX", OpSetIndex: "SETIDX",
	OpArray: "ARRAY", OpMap: "MAP",
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Disassemble renders a compiled program as a human-readable bytecode
// listing — the inspection tool an operator uses to audit what a stored
// DP actually does before instantiating it.
func Disassemble(c *Compiled) string {
	var b strings.Builder
	if len(c.GlobalNames) > 0 {
		fmt.Fprintf(&b, "globals: %s\n", strings.Join(c.GlobalNames, ", "))
	}
	if len(c.InitCode) > 0 {
		b.WriteString("init:\n")
		disasmCode(&b, c, c.InitCode)
	}
	for _, f := range c.Funcs {
		fmt.Fprintf(&b, "func %s (params=%d locals=%d):\n", f.Name, f.NumParams, f.NumLocals)
		disasmCode(&b, c, f.Code)
	}
	return b.String()
}

func disasmCode(b *strings.Builder, c *Compiled, code []Instr) {
	for ip, in := range code {
		fmt.Fprintf(b, "  %4d  %-7s", ip, in.Op)
		switch in.Op {
		case OpConst:
			if in.A >= 0 && in.A < len(c.Consts) {
				if str, ok := c.Consts[in.A].(string); ok {
					fmt.Fprintf(b, " %q", str)
				} else {
					fmt.Fprintf(b, " %s", FormatValue(c.Consts[in.A]))
				}
			} else {
				fmt.Fprintf(b, " #%d", in.A)
			}
		case OpBin:
			fmt.Fprintf(b, " %s", TokenKind(in.A))
		case OpJump, OpJumpFalse, OpJFKeep, OpJTKeep:
			fmt.Fprintf(b, " ->%d", in.A)
		case OpCall:
			name := fmt.Sprintf("#%d", in.A)
			if in.A >= 0 && in.A < len(c.Funcs) {
				name = c.Funcs[in.A].Name
			}
			fmt.Fprintf(b, " %s/%d", name, in.B)
		case OpCallHost:
			name := fmt.Sprintf("#%d", in.A)
			if in.A >= 0 && in.A < len(c.HostNames) {
				name = c.HostNames[in.A]
			}
			fmt.Fprintf(b, " %s/%d", name, in.B)
		case OpLoadG, OpStoreG:
			if in.A >= 0 && in.A < len(c.GlobalNames) {
				fmt.Fprintf(b, " %s", c.GlobalNames[in.A])
			} else {
				fmt.Fprintf(b, " g%d", in.A)
			}
		case OpLoadL, OpStoreL, OpArray, OpMap:
			fmt.Fprintf(b, " %d", in.A)
		}
		b.WriteByte('\n')
	}
}
