package dpl

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to mnemonic names for disassembly.
var opNames = map[Opcode]string{
	OpConst: "CONST", OpNil: "NIL", OpTrue: "TRUE", OpFalse: "FALSE",
	OpLoadG: "LOADG", OpStoreG: "STOREG", OpLoadL: "LOADL", OpStoreL: "STOREL",
	OpPop: "POP", OpBin: "BIN", OpEq: "EQ", OpNe: "NE", OpNeg: "NEG",
	OpNot: "NOT", OpJump: "JUMP", OpJumpFalse: "JF", OpJFKeep: "JFK",
	OpJTKeep: "JTK", OpCall: "CALL", OpCallHost: "CALLH", OpReturn: "RET",
	OpReturnNil: "RETNIL", OpIndex: "INDEX", OpSetIndex: "SETIDX",
	OpArray: "ARRAY", OpMap: "MAP",
	OpLoadLConstBin: "LLCB", OpLoadLLoadLBin: "LLLB", OpBinJumpFalse: "BJF",
	OpConstStoreL: "KSTL", OpIncL: "INCL", OpDecL: "DECL",
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Disassemble renders a compiled program as a human-readable bytecode
// listing — the inspection tool an operator uses to audit what a stored
// DP actually does before instantiating it.
func Disassemble(c *Compiled) string {
	var b strings.Builder
	if len(c.GlobalNames) > 0 {
		fmt.Fprintf(&b, "globals: %s\n", strings.Join(c.GlobalNames, ", "))
	}
	if len(c.InitCode) > 0 {
		b.WriteString("init:\n")
		disasmCode(&b, c, c.InitCode)
	}
	for _, f := range c.Funcs {
		fmt.Fprintf(&b, "func %s (params=%d locals=%d):\n", f.Name, f.NumParams, f.NumLocals)
		disasmCode(&b, c, f.Code)
	}
	return b.String()
}

func disasmCode(b *strings.Builder, c *Compiled, code []Instr) {
	for ip, in := range code {
		fmt.Fprintf(b, "  %4d  %s\n", ip, FormatInstr(c, in))
	}
}

// FormatInstr renders one instruction as the disassembler prints it
// (mnemonic plus symbolic operand). The bytecode verifier cites this
// text in its diagnostics so a rejected instruction is readable.
func FormatInstr(c *Compiled, in Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s", in.Op)
	switch in.Op {
	case OpConst:
		if in.A >= 0 && in.A < len(c.Consts) {
			fmt.Fprintf(&b, " %s", formatConst(c.Consts[in.A]))
		} else {
			fmt.Fprintf(&b, " #%d", in.A)
		}
	case OpBin:
		fmt.Fprintf(&b, " %s", TokenKind(in.A))
	case OpJump, OpJumpFalse, OpJFKeep, OpJTKeep:
		fmt.Fprintf(&b, " ->%d", in.A)
	case OpCall:
		name := fmt.Sprintf("#%d", in.A)
		if in.A >= 0 && in.A < len(c.Funcs) {
			name = c.Funcs[in.A].Name
		}
		fmt.Fprintf(&b, " %s/%d", name, in.B)
	case OpCallHost:
		name := fmt.Sprintf("#%d", in.A)
		if in.A >= 0 && in.A < len(c.HostNames) {
			name = c.HostNames[in.A]
		}
		fmt.Fprintf(&b, " %s/%d", name, in.B)
	case OpLoadG, OpStoreG:
		if in.A >= 0 && in.A < len(c.GlobalNames) {
			fmt.Fprintf(&b, " %s", c.GlobalNames[in.A])
		} else {
			fmt.Fprintf(&b, " g%d", in.A)
		}
	case OpLoadL, OpStoreL, OpArray, OpMap:
		fmt.Fprintf(&b, " %d", in.A)
	case OpLoadLConstBin:
		// "LLCB <local> <op> <const>" — the constant rendering may
		// contain spaces (quoted strings), so it always comes last.
		idx, op := UnpackIdxOp(in.B)
		fmt.Fprintf(&b, " %d %s %s", in.A, op, formatConstRef(c, idx))
	case OpLoadLLoadLBin:
		idx, op := UnpackIdxOp(in.B)
		fmt.Fprintf(&b, " %d %s %d", in.A, op, idx)
	case OpBinJumpFalse:
		fmt.Fprintf(&b, " %s ->%d", TokenKind(in.B), in.A)
	case OpConstStoreL:
		fmt.Fprintf(&b, " %d %s", in.B, formatConstRef(c, in.A))
	case OpIncL, OpDecL:
		fmt.Fprintf(&b, " %d %s", in.A, formatConstRef(c, in.B))
	}
	return strings.TrimRight(b.String(), " ")
}

// formatConstRef renders a constant-pool reference, falling back to the
// raw index for out-of-range operands (FormatInstr appears in verifier
// diagnostics, which cite invalid code).
func formatConstRef(c *Compiled, idx int) string {
	if idx >= 0 && idx < len(c.Consts) {
		return formatConst(c.Consts[idx])
	}
	return fmt.Sprintf("#%d", idx)
}

// formatConst renders a constant-pool value so the listing is
// unambiguous to reassemble: strings are quoted and floats always carry
// a decimal marker (FormatValue renders 2.0 as "2", which would read
// back as an int).
func formatConst(v Value) string {
	switch x := v.(type) {
	case string:
		return fmt.Sprintf("%q", x)
	case float64:
		s := FormatValue(x)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	default:
		return FormatValue(v)
	}
}
