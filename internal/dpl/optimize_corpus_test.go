package dpl_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
)

// corpusSources gathers every DPL source committed to the repository:
// the example agents and the on-disk fuzz seed corpora.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{}
	agents, err := filepath.Glob(filepath.Join("..", "..", "examples", "agents", "*.dpl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range agents {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		srcs[file] = string(data)
	}
	for _, dir := range []string{
		filepath.Join("testdata", "fuzz", "FuzzParse"),
		filepath.Join("testdata", "fuzz", "FuzzAnalyze"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			// Go fuzz corpus format: a version line, then one
			// string(<go-quoted>) line per argument.
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
					continue
				}
				s, err := strconv.Unquote(line[len("string(") : len(line)-1])
				if err != nil {
					continue
				}
				srcs[filepath.Join(dir, e.Name())] = s
			}
		}
	}
	if len(srcs) == 0 {
		t.Fatal("no corpus sources found")
	}
	return srcs
}

// TestOptimizerCrosscheckCorpus compiles every committed DPL source
// twice, optimizes one copy, and requires identical observable behavior
// from both, for every entry point. Programs the front end rejects are
// skipped; programs that exhaust the step quota on either side are
// compared on the quota error alone (instruction counts legitimately
// differ after optimization).
func TestOptimizerCrosscheckCorpus(t *testing.T) {
	bindings := analysis.LintBindings()
	checked := 0
	for name, src := range corpusSources(t) {
		prog, err := dpl.Parse(src)
		if err != nil {
			continue
		}
		if errs := dpl.Check(prog, bindings); len(errs) > 0 {
			continue
		}
		raw, err := dpl.Compile(prog, bindings)
		if err != nil {
			continue
		}
		opt, err := dpl.Compile(prog, bindings)
		if err != nil {
			t.Fatalf("%s: second compile diverged: %v", name, err)
		}
		dpl.Optimize(opt)
		if faults := opt.VerifyStructure(); len(faults) > 0 {
			t.Errorf("%s: optimizer broke structure: %v", name, faults[0])
			continue
		}
		for entry := range raw.FuncIdx {
			const quota = 100000
			ctx := context.Background()
			rawVal, rawErr := dpl.NewVM(raw, bindings, dpl.WithMaxSteps(quota)).Run(ctx, entry)
			optVal, optErr := dpl.NewVM(opt, bindings, dpl.WithMaxSteps(quota)).Run(ctx, entry)
			if errors.Is(rawErr, dpl.ErrStepQuota) || errors.Is(optErr, dpl.ErrStepQuota) {
				// The optimized copy must never be slower in steps.
				if errors.Is(optErr, dpl.ErrStepQuota) && rawErr == nil {
					t.Errorf("%s/%s: optimized copy hit the quota, raw did not", name, entry)
				}
				continue
			}
			if (rawErr == nil) != (optErr == nil) {
				t.Errorf("%s/%s: error divergence: raw=%v opt=%v", name, entry, rawErr, optErr)
				continue
			}
			if rawErr == nil && dpl.FormatValue(rawVal) != dpl.FormatValue(optVal) {
				t.Errorf("%s/%s: value divergence: raw=%s opt=%s", name, entry,
					dpl.FormatValue(rawVal), dpl.FormatValue(optVal))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("corpus crosscheck compared no entry points")
	}
	t.Logf("crosschecked %d entry points", checked)
}
