package dpl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a DPL runtime value. The dynamic types are:
//
//	nil            the nil value
//	bool           booleans
//	int64          integers
//	float64        floats
//	string         strings
//	*Array         mutable arrays (reference semantics)
//	*Map           mutable string-keyed maps (reference semantics)
type Value any

// Array is a mutable DPL array.
type Array struct {
	Elems []Value
}

// Map is a mutable DPL map with string keys.
type Map struct {
	M map[string]Value
}

// NewMap returns an empty Map ready for use.
func NewMap() *Map { return &Map{M: make(map[string]Value)} }

// Truthy reports DPL truth: false, nil, 0, 0.0 and "" are false;
// everything else (including empty arrays/maps) is true.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

// FormatValue renders a value the way the print/str builtins do.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *Array:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatValue(e))
		}
		b.WriteByte(']')
		return b.String()
	case *Map:
		keys := make([]string, 0, len(x.M))
		for k := range x.M {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %s", k, FormatValue(x.M[k]))
		}
		b.WriteByte('}')
		return b.String()
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

// TypeName names a value's DPL type for diagnostics.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case *Array:
		return "array"
	case *Map:
		return "map"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// RuntimeError is an error raised during DPL execution, carrying the
// program-counter-independent description of what went wrong.
type RuntimeError struct {
	Msg string
}

// Error implements error.
func (e *RuntimeError) Error() string { return "dpl: runtime error: " + e.Msg }

func rtErrf(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// arith applies a binary arithmetic operator with int/float promotion.
// + also concatenates strings and arrays.
func arith(op TokenKind, a, b Value) (Value, error) {
	if op == TokPlus {
		if as, ok := a.(string); ok {
			if bs, ok := b.(string); ok {
				return as + bs, nil
			}
			return nil, rtErrf("cannot add string and %s", TypeName(b))
		}
		if aa, ok := a.(*Array); ok {
			if ba, ok := b.(*Array); ok {
				out := &Array{Elems: make([]Value, 0, len(aa.Elems)+len(ba.Elems))}
				out.Elems = append(out.Elems, aa.Elems...)
				out.Elems = append(out.Elems, ba.Elems...)
				return out, nil
			}
			return nil, rtErrf("cannot add array and %s", TypeName(b))
		}
	}
	ai, aIsInt := a.(int64)
	bi, bIsInt := b.(int64)
	if aIsInt && bIsInt {
		switch op {
		case TokPlus:
			return ai + bi, nil
		case TokMinus:
			return ai - bi, nil
		case TokStar:
			return ai * bi, nil
		case TokSlash:
			if bi == 0 {
				return nil, rtErrf("integer division by zero")
			}
			return ai / bi, nil
		case TokPercent:
			if bi == 0 {
				return nil, rtErrf("integer modulo by zero")
			}
			return ai % bi, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, rtErrf("invalid operands for %s: %s and %s", op, TypeName(a), TypeName(b))
	}
	switch op {
	case TokPlus:
		return af + bf, nil
	case TokMinus:
		return af - bf, nil
	case TokStar:
		return af * bf, nil
	case TokSlash:
		if bf == 0 {
			return nil, rtErrf("division by zero")
		}
		return af / bf, nil
	case TokPercent:
		return nil, rtErrf("%% requires integer operands")
	}
	return nil, rtErrf("unknown arithmetic operator %s", op)
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// compare applies a relational operator. Numbers compare with
// promotion; strings compare lexicographically.
func compare(op TokenKind, a, b Value) (Value, error) {
	if as, ok := a.(string); ok {
		bs, ok := b.(string)
		if !ok {
			return nil, rtErrf("cannot compare string and %s", TypeName(b))
		}
		switch op {
		case TokLt:
			return as < bs, nil
		case TokLe:
			return as <= bs, nil
		case TokGt:
			return as > bs, nil
		case TokGe:
			return as >= bs, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, rtErrf("invalid operands for %s: %s and %s", op, TypeName(a), TypeName(b))
	}
	switch op {
	case TokLt:
		return af < bf, nil
	case TokLe:
		return af <= bf, nil
	case TokGt:
		return af > bf, nil
	case TokGe:
		return af >= bf, nil
	}
	return nil, rtErrf("unknown comparison operator %s", op)
}

// valueEqual implements == with numeric promotion and deep equality on
// arrays and maps.
func valueEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if af, ok := toFloat(a); ok {
		if bf, ok := toFloat(b); ok {
			return af == bf
		}
		return false
	}
	switch x := a.(type) {
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Array:
		y, ok := b.(*Array)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !valueEqual(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Map:
		y, ok := b.(*Map)
		if !ok || len(x.M) != len(y.M) {
			return false
		}
		for k, v := range x.M {
			w, ok := y.M[k]
			if !ok || !valueEqual(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// indexValue implements x[i].
func indexValue(x, i Value) (Value, error) {
	switch c := x.(type) {
	case *Array:
		idx, ok := i.(int64)
		if !ok {
			return nil, rtErrf("array index must be int, got %s", TypeName(i))
		}
		if idx < 0 || idx >= int64(len(c.Elems)) {
			return nil, rtErrf("array index %d out of range [0,%d)", idx, len(c.Elems))
		}
		return c.Elems[idx], nil
	case *Map:
		key, ok := i.(string)
		if !ok {
			return nil, rtErrf("map key must be string, got %s", TypeName(i))
		}
		return c.M[key], nil // missing keys yield nil
	case string:
		idx, ok := i.(int64)
		if !ok {
			return nil, rtErrf("string index must be int, got %s", TypeName(i))
		}
		if idx < 0 || idx >= int64(len(c)) {
			return nil, rtErrf("string index %d out of range [0,%d)", idx, len(c))
		}
		return int64(c[idx]), nil
	default:
		return nil, rtErrf("cannot index %s", TypeName(x))
	}
}

// setIndex implements x[i] = v.
func setIndex(x, i, v Value) error {
	switch c := x.(type) {
	case *Array:
		idx, ok := i.(int64)
		if !ok {
			return rtErrf("array index must be int, got %s", TypeName(i))
		}
		if idx < 0 || idx >= int64(len(c.Elems)) {
			return rtErrf("array index %d out of range [0,%d)", idx, len(c.Elems))
		}
		c.Elems[idx] = v
		return nil
	case *Map:
		key, ok := i.(string)
		if !ok {
			return rtErrf("map key must be string, got %s", TypeName(i))
		}
		c.M[key] = v
		return nil
	default:
		return rtErrf("cannot assign into %s", TypeName(x))
	}
}
