package dpl

import (
	"fmt"
	"strings"
)

// Structural bytecode verification. The VM's exec loop trusts its
// operands — constant/global/local indices, jump targets and stack
// discipline are unchecked per instruction, which keeps stepping cheap.
// That trust is earned here: VerifyStructure proves, by abstract
// interpretation over the opcode stream, that no reachable instruction
// can index out of bounds or underflow the operand stack, and VM.Run
// refuses to execute a program that fails the proof. Compiler output
// always passes; the check exists for bytecode that arrives over the
// wire (see CompiledProgram and internal/dpl/verify, which layers
// effect- and budget-consistency checks on top of these faults).

// FaultKind classifies one structural fault.
type FaultKind uint8

// Structural fault classes, mapped by internal/dpl/verify onto the
// DPL010–DPL013 diagnostic codes.
const (
	// FaultOpcode is an opcode outside the instruction set.
	FaultOpcode FaultKind = iota + 1
	// FaultJump is a jump target outside [0, len(code)].
	FaultJump
	// FaultStack is a stack underflow or an inconsistent stack depth at
	// a control-flow join.
	FaultStack
	// FaultOperand is an out-of-bounds constant, global, local,
	// function or host index, or a malformed immediate.
	FaultOperand
)

// String names the fault class.
func (k FaultKind) String() string {
	switch k {
	case FaultOpcode:
		return "opcode"
	case FaultJump:
		return "jump"
	case FaultStack:
		return "stack"
	case FaultOperand:
		return "operand"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// CodeFault is one structural defect found in a code block. IP is -1
// for faults about the function shape itself rather than an
// instruction.
type CodeFault struct {
	Func string // function name, or "<init>" for the initializer block
	IP   int
	Kind FaultKind
	Msg  string
}

// String renders the fault with its location.
func (f CodeFault) String() string {
	if f.IP < 0 {
		return fmt.Sprintf("%s: %s fault: %s", f.Func, f.Kind, f.Msg)
	}
	return fmt.Sprintf("%s+%d: %s fault: %s", f.Func, f.IP, f.Kind, f.Msg)
}

// maxFaults bounds the fault list so hostile inputs cannot make
// verification itself expensive.
const maxFaults = 64

// binOps is the set of operator immediates OpBin accepts. The VM routes
// anything outside the arithmetic five to compare, which rejects
// non-relational operators at run time; the verifier is stricter and
// faults them statically so a verified program never reaches that path.
var binOps = map[TokenKind]bool{
	TokPlus: true, TokMinus: true, TokStar: true, TokSlash: true, TokPercent: true,
	TokLt: true, TokLe: true, TokGt: true, TokGe: true,
}

// VerifyStructure checks every code block of c and returns the
// structural faults found (nil when the program is safe to execute).
// As a by-product of the depth proof it records each block's
// operand-stack high-water mark (CompiledFunc.maxStack), which the
// flat-frame VM uses to size activation frames without growth checks
// inside the dispatch loop.
func (c *Compiled) VerifyStructure() []CodeFault {
	v := &structVerifier{c: c}
	c.initMaxStack = v.checkBlock("<init>", c.InitCode, 0)
	for i, fn := range c.Funcs {
		name := fn.Name
		if name == "" {
			name = fmt.Sprintf("func#%d", i)
		}
		if fn.NumParams < 0 || fn.NumLocals < 0 || fn.NumParams > fn.NumLocals || fn.NumLocals > maxProgLocals {
			v.fault(name, -1, FaultOperand, fmt.Sprintf("implausible frame (params=%d locals=%d)", fn.NumParams, fn.NumLocals))
		}
		fn.maxStack = v.checkBlock(name, fn.Code, fn.NumLocals)
	}
	return v.faults
}

// EnsureStructure verifies c once and caches the outcome; subsequent
// calls (one per VM.Run) are a mutex hit. Optimize invalidates the
// cache after rewriting code.
func (c *Compiled) EnsureStructure() error {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if !c.vdone {
		c.vdone = true
		c.verr = nil
		if faults := c.VerifyStructure(); len(faults) > 0 {
			more := ""
			if len(faults) > 1 {
				more = fmt.Sprintf(" (and %d more)", len(faults)-1)
			}
			c.verr = fmt.Errorf("dpl: structurally invalid bytecode: %s%s", faults[0], more)
		}
	}
	return c.verr
}

// invalidateVerify drops the cached EnsureStructure outcome and the
// derived init frame (the code it wrapped may have been rewritten).
func (c *Compiled) invalidateVerify() {
	c.vmu.Lock()
	c.vdone = false
	c.verr = nil
	c.initFn = nil
	c.vmu.Unlock()
}

type structVerifier struct {
	c      *Compiled
	faults []CodeFault
}

func (v *structVerifier) fault(fn string, ip int, kind FaultKind, msg string) {
	if len(v.faults) < maxFaults {
		v.faults = append(v.faults, CodeFault{Func: fn, IP: ip, Kind: kind, Msg: msg})
	}
}

// instrShape describes one instruction's static requirements: how many
// values it pops and pushes, plus control-flow behavior.
type instrShape struct {
	pops, pushes int
	branch       bool // may transfer to A
	fall         bool // may fall through to ip+1
}

// shape computes the instruction's stack/control shape, emitting
// operand faults along the way. ok=false means the instruction is too
// broken to interpret and its successors are not explored.
func (v *structVerifier) shape(fn string, ip int, in Instr, nLocals, nCode int) (instrShape, bool) {
	c := v.c
	badOperand := func(msg string, args ...any) (instrShape, bool) {
		v.fault(fn, ip, FaultOperand, fmt.Sprintf(msg, args...))
		return instrShape{}, false
	}
	switch in.Op {
	case OpConst:
		if in.A < 0 || in.A >= len(c.Consts) {
			return badOperand("constant index %d out of range (pool size %d)", in.A, len(c.Consts))
		}
		return instrShape{pushes: 1, fall: true}, true
	case OpNil, OpTrue, OpFalse:
		return instrShape{pushes: 1, fall: true}, true
	case OpLoadG, OpStoreG:
		if in.A < 0 || in.A >= len(c.GlobalNames) {
			return badOperand("global index %d out of range (%d globals)", in.A, len(c.GlobalNames))
		}
		if in.Op == OpLoadG {
			return instrShape{pushes: 1, fall: true}, true
		}
		return instrShape{pops: 1, fall: true}, true
	case OpLoadL, OpStoreL:
		if in.A < 0 || in.A >= nLocals {
			return badOperand("local index %d out of range (%d locals)", in.A, nLocals)
		}
		if in.Op == OpLoadL {
			return instrShape{pushes: 1, fall: true}, true
		}
		return instrShape{pops: 1, fall: true}, true
	case OpPop:
		return instrShape{pops: 1, fall: true}, true
	case OpBin:
		if !binOps[TokenKind(in.A)] {
			return badOperand("invalid binary operator immediate %d", in.A)
		}
		return instrShape{pops: 2, pushes: 1, fall: true}, true
	case OpEq, OpNe, OpIndex:
		return instrShape{pops: 2, pushes: 1, fall: true}, true
	case OpNeg, OpNot:
		return instrShape{pops: 1, pushes: 1, fall: true}, true
	case OpJump:
		return instrShape{branch: true}, true
	case OpJumpFalse:
		return instrShape{pops: 1, branch: true, fall: true}, true
	case OpJFKeep, OpJTKeep:
		// Keep-form branches peek at the top without popping.
		return instrShape{pops: 1, pushes: 1, branch: true, fall: true}, true
	case OpCall:
		if in.A < 0 || in.A >= len(c.Funcs) {
			return badOperand("function index %d out of range (%d functions)", in.A, len(c.Funcs))
		}
		if in.B < 0 || in.B != c.Funcs[in.A].NumParams {
			return badOperand("call passes %d args, function %q takes %d", in.B, c.Funcs[in.A].Name, c.Funcs[in.A].NumParams)
		}
		return instrShape{pops: in.B, pushes: 1, fall: true}, true
	case OpCallHost:
		if in.A < 0 || in.A >= len(c.HostNames) {
			return badOperand("host index %d out of range (%d hosts)", in.A, len(c.HostNames))
		}
		if in.B < 0 || in.B > nCode {
			return badOperand("host call passes implausible %d args", in.B)
		}
		return instrShape{pops: in.B, pushes: 1, fall: true}, true
	case OpReturn:
		return instrShape{pops: 1}, true
	case OpReturnNil:
		return instrShape{}, true
	case OpSetIndex:
		return instrShape{pops: 3, fall: true}, true
	case OpArray:
		if in.A < 0 || in.A > nCode {
			return badOperand("array of implausible %d elements", in.A)
		}
		return instrShape{pops: in.A, pushes: 1, fall: true}, true
	case OpMap:
		if in.A < 0 || in.A > nCode {
			return badOperand("map of implausible %d pairs", in.A)
		}
		return instrShape{pops: 2 * in.A, pushes: 1, fall: true}, true
	case OpLoadLConstBin:
		idx, op := UnpackIdxOp(in.B)
		if in.A < 0 || in.A >= nLocals {
			return badOperand("local index %d out of range (%d locals)", in.A, nLocals)
		}
		if idx < 0 || idx >= len(c.Consts) {
			return badOperand("constant index %d out of range (pool size %d)", idx, len(c.Consts))
		}
		if !binOps[op] {
			return badOperand("invalid binary operator immediate %d", op)
		}
		return instrShape{pushes: 1, fall: true}, true
	case OpLoadLLoadLBin:
		idx, op := UnpackIdxOp(in.B)
		if in.A < 0 || in.A >= nLocals || idx < 0 || idx >= nLocals {
			return badOperand("local index out of range (%d, %d of %d locals)", in.A, idx, nLocals)
		}
		if !binOps[op] {
			return badOperand("invalid binary operator immediate %d", op)
		}
		return instrShape{pushes: 1, fall: true}, true
	case OpBinJumpFalse:
		if !binOps[TokenKind(in.B)] {
			return badOperand("invalid binary operator immediate %d", in.B)
		}
		return instrShape{pops: 2, branch: true, fall: true}, true
	case OpConstStoreL:
		if in.A < 0 || in.A >= len(c.Consts) {
			return badOperand("constant index %d out of range (pool size %d)", in.A, len(c.Consts))
		}
		if in.B < 0 || in.B >= nLocals {
			return badOperand("local index %d out of range (%d locals)", in.B, nLocals)
		}
		return instrShape{fall: true}, true
	case OpIncL, OpDecL:
		if in.A < 0 || in.A >= nLocals {
			return badOperand("local index %d out of range (%d locals)", in.A, nLocals)
		}
		if in.B < 0 || in.B >= len(c.Consts) {
			return badOperand("constant index %d out of range (pool size %d)", in.B, len(c.Consts))
		}
		return instrShape{fall: true}, true
	default:
		v.fault(fn, ip, FaultOpcode, fmt.Sprintf("unknown opcode %d", in.Op))
		return instrShape{}, false
	}
}

// checkBlock runs the worklist abstract interpretation over one code
// block: every reachable instruction gets a unique entry stack depth,
// jumps stay inside [0, len(code)], and no instruction pops below
// empty. Depth uniqueness at joins is what lets the VM skip per-step
// stack checks. The return value is the proven operand-stack
// high-water mark over all reachable paths (instructions pop before
// they push, so the depth after each instruction bounds the peak).
func (v *structVerifier) checkBlock(fn string, code []Instr, nLocals int) int {
	maxDepth := 0
	if len(code) == 0 {
		return 0
	}
	depth := make([]int, len(code))
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	work := []int{0}
	propagate := func(from, to, d int) {
		if to == len(code) {
			return // implicit return-nil epilogue; any depth is fine
		}
		if depth[to] == -1 {
			depth[to] = d
			work = append(work, to)
		} else if depth[to] != d {
			v.fault(fn, from, FaultStack, fmt.Sprintf("stack depth mismatch at join %d (%d vs %d)", to, depth[to], d))
		}
	}
	for len(work) > 0 {
		ip := work[len(work)-1]
		work = work[:len(work)-1]
		in := code[ip]
		sh, ok := v.shape(fn, ip, in, nLocals, len(code))
		if !ok {
			continue
		}
		d := depth[ip]
		if d < sh.pops {
			v.fault(fn, ip, FaultStack, fmt.Sprintf("stack underflow: %s needs %d operands, depth is %d", opName(in.Op), sh.pops, d))
			continue
		}
		nd := d - sh.pops + sh.pushes
		if nd > maxDepth {
			maxDepth = nd
		}
		if sh.branch {
			if in.A < 0 || in.A > len(code) {
				v.fault(fn, ip, FaultJump, fmt.Sprintf("jump target %d outside [0,%d]", in.A, len(code)))
			} else {
				propagate(ip, in.A, nd)
			}
		}
		if sh.fall {
			propagate(ip, ip+1, nd)
		}
	}
	return maxDepth
}

// opName returns the mnemonic for op (shared with the disassembler).
func opName(op Opcode) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("OP%d", op)
}

// FaultsError joins faults into one error value.
func FaultsError(faults []CodeFault) error {
	if len(faults) == 0 {
		return nil
	}
	msgs := make([]string, len(faults))
	for i, f := range faults {
		msgs[i] = f.String()
	}
	return fmt.Errorf("dpl: bytecode verification failed:\n  %s", strings.Join(msgs, "\n  "))
}
