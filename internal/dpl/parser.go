package dpl

import "strconv"

// Recursive-descent parser for DPL.

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a DPL source unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokVar:
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case TokFunc:
			f, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected 'var' or 'func' at top level, found %s", p.cur().Kind)
		}
	}
	return prog, nil
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur().Kind)
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return errAt(t.Line, t.Col, format, args...)
}

func posOf(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

func (p *parser) parseVarDecl() (*VarDecl, error) {
	kw, _ := p.expect(TokVar)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos_: posOf(kw), Name: name.Text}
	if p.cur().Kind == TokAssign {
		p.advance()
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseFuncDecl() (*FuncDecl, error) {
	kw, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos_: posOf(kw), Name: name.Text}
	for p.cur().Kind != TokRParen {
		param, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param.Text)
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	f.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos_: posOf(lb)}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume '}'
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokVar:
		return p.parseVarDecl()
	case TokLBrace:
		return p.parseBlock()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokBreak:
		t := p.advance()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos_: posOf(t)}, nil
	case TokContinue:
		t := p.advance()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos_: posOf(t)}, nil
	case TokReturn:
		t := p.advance()
		s := &ReturnStmt{Pos_: posOf(t)}
		if p.cur().Kind != TokSemicolon {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment or expression statement without
// the trailing semicolon (shared by for-clauses and statements).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur()
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokAssign, TokPlusAssign, TokMinusAssign:
		op := p.advance().Kind
		switch x.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errAt(start.Line, start.Col, "invalid assignment target")
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos_: posOf(start), Target: x, Op: op, Value: v}, nil
	default:
		return &ExprStmt{Pos_: posOf(start), X: x}, nil
	}
}

func (p *parser) parseIf() (*IfStmt, error) {
	kw, _ := p.expect(TokIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos_: posOf(kw), Cond: cond, Then: then}
	if p.cur().Kind == TokElse {
		p.advance()
		if p.cur().Kind == TokIf {
			s.Else, err = p.parseIf()
		} else {
			s.Else, err = p.parseBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseWhile() (*WhileStmt, error) {
	kw, _ := p.expect(TokWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos_: posOf(kw), Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (*ForStmt, error) {
	kw, _ := p.expect(TokFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos_: posOf(kw)}
	var err error
	if p.cur().Kind != TokSemicolon {
		if p.cur().Kind == TokVar {
			s.Init, err = p.parseVarDecl() // consumes its semicolon
			if err != nil {
				return nil, err
			}
		} else {
			s.Init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if p.cur().Kind != TokSemicolon {
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		s.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	s.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Expression parsing: precedence climbing.
//
//	||
//	&&
//	== !=
//	< <= > >=
//	+ -
//	* / %
//	unary - !
//	postfix call/index
//	primary

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOrOr {
		op := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: TokOrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAndAnd {
		op := p.advance()
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: TokAndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokEq || p.cur().Kind == TokNe {
		op := p.advance()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != TokLt && k != TokLe && k != TokGt && k != TokGe {
			return l, nil
		}
		op := p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: op.Kind, L: l, R: r}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokPlus || p.cur().Kind == TokMinus {
		op := p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokStar || p.cur().Kind == TokSlash || p.cur().Kind == TokPercent {
		op := p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos_: posOf(op), Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokBang:
		op := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos_: posOf(op), Op: op.Kind, X: x}, nil
	default:
		return p.parsePostfix()
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			lb := p.advance()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos_: posOf(lb), X: x, I: i}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		var v int64
		for _, c := range t.Text {
			d := int64(c - '0')
			if v > (1<<63-1-d)/10 {
				return nil, errAt(t.Line, t.Col, "integer literal overflows int64")
			}
			v = v*10 + d
		}
		return &IntLit{Pos_: posOf(t), V: v}, nil
	case TokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad float literal %q", t.Text)
		}
		return &FloatLit{Pos_: posOf(t), V: v}, nil
	case TokString:
		p.advance()
		return &StringLit{Pos_: posOf(t), V: t.Text}, nil
	case TokTrue:
		p.advance()
		return &BoolLit{Pos_: posOf(t), V: true}, nil
	case TokFalse:
		p.advance()
		return &BoolLit{Pos_: posOf(t), V: false}, nil
	case TokNil:
		p.advance()
		return &NilLit{Pos_: posOf(t)}, nil
	case TokIdent:
		p.advance()
		if p.cur().Kind == TokLParen {
			p.advance()
			call := &CallExpr{Pos_: posOf(t), Name: t.Text}
			for p.cur().Kind != TokRParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.cur().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos_: posOf(t), Name: t.Text}, nil
	case TokLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokLBracket:
		p.advance()
		a := &ArrayLit{Pos_: posOf(t)}
		for p.cur().Kind != TokRBracket {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Elems = append(a.Elems, e)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return a, nil
	case TokLBrace:
		p.advance()
		m := &MapLit{Pos_: posOf(t)}
		for p.cur().Kind != TokRBrace {
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Keys = append(m.Keys, k)
			m.Vals = append(m.Vals, v)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, p.errf("unexpected %s in expression", t.Kind)
	}
}
