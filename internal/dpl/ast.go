package dpl

// The AST node types produced by the parser. Nodes record their source
// position for translator diagnostics.

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// Program is a parsed compilation unit: top-level variable declarations
// and function definitions.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos_   Pos
	Name   string
	Params []string
	Body   *Block
}

// Position implements Node.
func (f *FuncDecl) Position() Pos { return f.Pos_ }

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares (and optionally initializes) a variable.
type VarDecl struct {
	Pos_ Pos
	Name string
	Init Expr // may be nil → nil value
}

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Pos_  Pos
	Stmts []Stmt
}

// AssignStmt assigns to a variable or an index expression. Op is
// TokAssign, TokPlusAssign or TokMinusAssign.
type AssignStmt struct {
	Pos_   Pos
	Target Expr // *Ident or *IndexExpr
	Op     TokenKind
	Value  Expr
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Pos_ Pos
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	Pos_ Pos
	Cond Expr
	Body *Block
}

// ForStmt is the C-style three-clause loop; any clause may be nil.
type ForStmt struct {
	Pos_ Pos
	Init Stmt // *VarDecl or *AssignStmt or nil
	Cond Expr // nil means true
	Post Stmt // *AssignStmt or *ExprStmt or nil
	Body *Block
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos_ Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos_ Pos }

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Pos_  Pos
	Value Expr // nil → nil value
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos_ Pos
	X    Expr
}

// Position implementations.
func (s *VarDecl) Position() Pos      { return s.Pos_ }
func (s *Block) Position() Pos        { return s.Pos_ }
func (s *AssignStmt) Position() Pos   { return s.Pos_ }
func (s *IfStmt) Position() Pos       { return s.Pos_ }
func (s *WhileStmt) Position() Pos    { return s.Pos_ }
func (s *ForStmt) Position() Pos      { return s.Pos_ }
func (s *BreakStmt) Position() Pos    { return s.Pos_ }
func (s *ContinueStmt) Position() Pos { return s.Pos_ }
func (s *ReturnStmt) Position() Pos   { return s.Pos_ }
func (s *ExprStmt) Position() Pos     { return s.Pos_ }

func (*VarDecl) stmtNode()      {}
func (*Block) stmtNode()        {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident references a variable or names a function in call position.
type Ident struct {
	Pos_ Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos_ Pos
	V    int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos_ Pos
	V    float64
}

// StringLit is a string literal.
type StringLit struct {
	Pos_ Pos
	V    string
}

// BoolLit is true or false.
type BoolLit struct {
	Pos_ Pos
	V    bool
}

// NilLit is the nil literal.
type NilLit struct{ Pos_ Pos }

// ArrayLit is [e1, e2, ...].
type ArrayLit struct {
	Pos_  Pos
	Elems []Expr
}

// MapLit is {"k": v, ...}.
type MapLit struct {
	Pos_ Pos
	Keys []Expr
	Vals []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos_ Pos
	Op   TokenKind
	X    Expr
}

// BinaryExpr is a binary operation, including && and || (which
// short-circuit).
type BinaryExpr struct {
	Pos_ Pos
	Op   TokenKind
	L, R Expr
}

// CallExpr invokes a user function or host function by name.
type CallExpr struct {
	Pos_ Pos
	Name string
	Args []Expr
}

// IndexExpr is x[i] on arrays (int index) and maps (string index).
type IndexExpr struct {
	Pos_ Pos
	X    Expr
	I    Expr
}

// Position implementations.
func (e *Ident) Position() Pos      { return e.Pos_ }
func (e *IntLit) Position() Pos     { return e.Pos_ }
func (e *FloatLit) Position() Pos   { return e.Pos_ }
func (e *StringLit) Position() Pos  { return e.Pos_ }
func (e *BoolLit) Position() Pos    { return e.Pos_ }
func (e *NilLit) Position() Pos     { return e.Pos_ }
func (e *ArrayLit) Position() Pos   { return e.Pos_ }
func (e *MapLit) Position() Pos     { return e.Pos_ }
func (e *UnaryExpr) Position() Pos  { return e.Pos_ }
func (e *BinaryExpr) Position() Pos { return e.Pos_ }
func (e *CallExpr) Position() Pos   { return e.Pos_ }
func (e *IndexExpr) Position() Pos  { return e.Pos_ }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NilLit) exprNode()     {}
func (*ArrayLit) exprNode()   {}
func (*MapLit) exprNode()     {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
