package dpl

import (
	"fmt"
	"math"
	"sort"
)

// HostFunc is a function the elastic process exposes to delegated
// programs. The paper's translator rule — delegated programs "access a
// predefined set of functions" and lose "their ability to invoke
// arbitrary external or internal functions" — is enforced by requiring
// every non-local call in a DP to resolve in a Bindings table at
// translation time.
//
// Non-retention contract: env and args are only valid for the duration
// of the call. The VM passes args as a window into its live value stack
// and reuses one Env per VM across all host calls, so a HostFunc that
// needs either beyond its return must copy (the args slice is capped,
// so appending to it is safe but still allocates a copy). Values read
// out of args may be retained freely — only the slice and the Env are
// recycled.
type HostFunc func(env *Env, args []Value) (Value, error)

// Env is the per-instance execution environment handed to host
// functions: it carries the executing VM (for context, instance
// identity and accounting) and is supplied by the elastic runtime. One
// Env per VM is reused across calls — see the HostFunc non-retention
// contract.
type Env struct {
	// VM is the executing virtual machine, never nil during a call.
	VM *VM
}

type binding struct {
	name  string
	arity int // -1 = variadic
	fn    HostFunc
}

// Bindings is the allowed-function table of an elastic process. The
// zero value has no functions; Std() returns a table preloaded with the
// pure builtins every DP may use.
type Bindings struct {
	byName map[string]int
	funcs  []binding
}

// NewBindings returns an empty table.
func NewBindings() *Bindings {
	return &Bindings{byName: make(map[string]int)}
}

// Register adds or replaces a host function. arity is the required
// argument count, or -1 for variadic.
func (b *Bindings) Register(name string, arity int, fn HostFunc) {
	if i, ok := b.byName[name]; ok {
		b.funcs[i] = binding{name: name, arity: arity, fn: fn}
		return
	}
	b.byName[name] = len(b.funcs)
	b.funcs = append(b.funcs, binding{name: name, arity: arity, fn: fn})
}

// Lookup returns the index and arity of a bound function.
func (b *Bindings) Lookup(name string) (idx, arity int, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	i, ok := b.byName[name]
	if !ok {
		return 0, 0, false
	}
	return i, b.funcs[i].arity, true
}

// Names returns the sorted names of all bound functions.
func (b *Bindings) Names() []string {
	out := make([]string, 0, len(b.byName))
	for n := range b.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesByIndex returns function names in registration (index) order —
// the order OpCallHost operands refer to.
func (b *Bindings) NamesByIndex() []string {
	out := make([]string, len(b.funcs))
	for i, f := range b.funcs {
		out[i] = f.name
	}
	return out
}

// Clone returns a copy of the table that can be extended independently.
func (b *Bindings) Clone() *Bindings {
	c := NewBindings()
	for _, f := range b.funcs {
		c.Register(f.name, f.arity, f.fn)
	}
	return c
}

// Call invokes the idx'th bound function directly. It exists for
// embedders that wrap one Bindings table inside another (the MbD server
// merges the MCVA's view services this way).
func (b *Bindings) Call(idx int, env *Env, args []Value) (Value, error) {
	if idx < 0 || idx >= len(b.funcs) {
		return nil, rtErrf("host function index %d out of range", idx)
	}
	f := b.funcs[idx]
	if f.arity >= 0 && len(args) != f.arity {
		return nil, rtErrf("%s expects %d arguments, got %d", f.name, f.arity, len(args))
	}
	return f.fn(env, args)
}

// Std returns a Bindings table preloaded with the pure builtin
// functions available to every delegated program:
//
//	len(x)            length of a string, array or map
//	append(a, v...)   append to an array, returning it
//	keys(m)           sorted keys of a map
//	delete(m, k)      remove a map key
//	str(v)            render any value as a string
//	int(v)            convert to int (truncating floats, parsing strings)
//	float(v)          convert to float
//	abs(x) min(...) max(...)  numeric helpers
//	contains(s, sub)  substring / array-membership / map-key test
//	substr(s, i, j)   substring [i, j)
//	split(s, sep)     split a string into an array
//	sprintf(f, v...)  minimal %v/%d/%f/%s formatting
func Std() *Bindings {
	b := NewBindings()
	b.Register("len", 1, func(_ *Env, args []Value) (Value, error) {
		switch x := args[0].(type) {
		case string:
			return int64(len(x)), nil
		case *Array:
			return int64(len(x.Elems)), nil
		case *Map:
			return int64(len(x.M)), nil
		default:
			return nil, rtErrf("len of %s", TypeName(x))
		}
	})
	b.Register("append", -1, func(_ *Env, args []Value) (Value, error) {
		if len(args) < 1 {
			return nil, rtErrf("append needs an array")
		}
		a, ok := args[0].(*Array)
		if !ok {
			return nil, rtErrf("append to %s", TypeName(args[0]))
		}
		a.Elems = append(a.Elems, args[1:]...)
		return a, nil
	})
	b.Register("keys", 1, func(_ *Env, args []Value) (Value, error) {
		m, ok := args[0].(*Map)
		if !ok {
			return nil, rtErrf("keys of %s", TypeName(args[0]))
		}
		ks := make([]string, 0, len(m.M))
		for k := range m.M {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out := &Array{Elems: make([]Value, len(ks))}
		for i, k := range ks {
			out.Elems[i] = k
		}
		return out, nil
	})
	b.Register("delete", 2, func(_ *Env, args []Value) (Value, error) {
		m, ok := args[0].(*Map)
		if !ok {
			return nil, rtErrf("delete from %s", TypeName(args[0]))
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, rtErrf("delete key must be string")
		}
		delete(m.M, k)
		return nil, nil
	})
	b.Register("str", 1, func(_ *Env, args []Value) (Value, error) {
		return FormatValue(args[0]), nil
	})
	b.Register("int", 1, func(_ *Env, args []Value) (Value, error) {
		switch x := args[0].(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			var v int64
			neg := false
			s := x
			if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
				neg = s[0] == '-'
				s = s[1:]
			}
			if s == "" {
				return nil, rtErrf("int(%q): not a number", x)
			}
			for _, c := range s {
				if c < '0' || c > '9' {
					return nil, rtErrf("int(%q): not a number", x)
				}
				v = v*10 + int64(c-'0')
			}
			if neg {
				v = -v
			}
			return v, nil
		default:
			return nil, rtErrf("int of %s", TypeName(x))
		}
	})
	b.Register("float", 1, func(_ *Env, args []Value) (Value, error) {
		if f, ok := toFloat(args[0]); ok {
			return f, nil
		}
		return nil, rtErrf("float of %s", TypeName(args[0]))
	})
	b.Register("abs", 1, func(_ *Env, args []Value) (Value, error) {
		switch x := args[0].(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		default:
			return nil, rtErrf("abs of %s", TypeName(x))
		}
	})
	minmax := func(isMin bool) HostFunc {
		return func(_ *Env, args []Value) (Value, error) {
			if len(args) == 0 {
				return nil, rtErrf("min/max of nothing")
			}
			best := args[0]
			for _, v := range args[1:] {
				c, err := compare(TokLt, v, best)
				if err != nil {
					return nil, err
				}
				if c.(bool) == isMin {
					best = v
				}
			}
			return best, nil
		}
	}
	b.Register("min", -1, minmax(true))
	b.Register("max", -1, minmax(false))
	b.Register("contains", 2, func(_ *Env, args []Value) (Value, error) {
		switch x := args[0].(type) {
		case string:
			sub, ok := args[1].(string)
			if !ok {
				return nil, rtErrf("contains(string, %s)", TypeName(args[1]))
			}
			return containsString(x, sub), nil
		case *Array:
			for _, e := range x.Elems {
				if valueEqual(e, args[1]) {
					return true, nil
				}
			}
			return false, nil
		case *Map:
			k, ok := args[1].(string)
			if !ok {
				return nil, rtErrf("contains(map, %s)", TypeName(args[1]))
			}
			_, present := x.M[k]
			return present, nil
		default:
			return nil, rtErrf("contains on %s", TypeName(x))
		}
	})
	b.Register("substr", 3, func(_ *Env, args []Value) (Value, error) {
		s, ok1 := args[0].(string)
		i, ok2 := args[1].(int64)
		j, ok3 := args[2].(int64)
		if !ok1 || !ok2 || !ok3 {
			return nil, rtErrf("substr(string, int, int)")
		}
		if i < 0 || j < i || j > int64(len(s)) {
			return nil, rtErrf("substr bounds [%d,%d) out of range for length %d", i, j, len(s))
		}
		return s[i:j], nil
	})
	b.Register("split", 2, func(_ *Env, args []Value) (Value, error) {
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 || sep == "" {
			return nil, rtErrf("split(string, non-empty string)")
		}
		out := &Array{}
		start := 0
		for i := 0; i+len(sep) <= len(s); {
			if s[i:i+len(sep)] == sep {
				out.Elems = append(out.Elems, s[start:i])
				i += len(sep)
				start = i
			} else {
				i++
			}
		}
		out.Elems = append(out.Elems, s[start:])
		return out, nil
	})
	b.Register("sprintf", -1, func(_ *Env, args []Value) (Value, error) {
		if len(args) == 0 {
			return nil, rtErrf("sprintf needs a format string")
		}
		f, ok := args[0].(string)
		if !ok {
			return nil, rtErrf("sprintf format must be string")
		}
		return miniSprintf(f, args[1:])
	})
	return b
}

func containsString(s, sub string) bool {
	if sub == "" {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// miniSprintf supports %v %d %f %s %% — enough for agent reports
// without exposing the full fmt machinery.
func miniSprintf(f string, args []Value) (Value, error) {
	var out []byte
	ai := 0
	for i := 0; i < len(f); i++ {
		if f[i] != '%' {
			out = append(out, f[i])
			continue
		}
		i++
		if i >= len(f) {
			return nil, rtErrf("sprintf: trailing %%")
		}
		if f[i] == '%' {
			out = append(out, '%')
			continue
		}
		if ai >= len(args) {
			return nil, rtErrf("sprintf: not enough arguments")
		}
		v := args[ai]
		ai++
		switch f[i] {
		case 'v', 's':
			out = append(out, FormatValue(v)...)
		case 'd':
			switch x := v.(type) {
			case int64:
				out = append(out, FormatValue(x)...)
			case float64:
				out = append(out, FormatValue(int64(x))...)
			default:
				return nil, rtErrf("sprintf: %%d on %s", TypeName(v))
			}
		case 'f':
			fv, ok := toFloat(v)
			if !ok {
				return nil, rtErrf("sprintf: %%f on %s", TypeName(v))
			}
			out = append(out, fmt.Sprintf("%.6f", fv)...)
		default:
			return nil, rtErrf("sprintf: unsupported verb %%%c", f[i])
		}
	}
	if ai != len(args) {
		return nil, rtErrf("sprintf: %d extra arguments", len(args)-ai)
	}
	return string(out), nil
}
