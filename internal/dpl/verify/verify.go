// Package verify admits compiled delegated programs without their
// source. A CompiledProgram arriving over the wire carries object code
// plus the sender's analysis verdict; following Minsky's rule that a
// hop must not blindly trust upstream artifacts, this package re-proves
// everything the receiver's admission decision depends on directly over
// the opcode stream:
//
//   - structural safety (stack depth/shape, jump targets, operand and
//     constant-index bounds) via dpl's abstract interpreter, reported
//     as DPL010–DPL013;
//   - that the receiver's host-binding table matches the artifact's
//     host-call indices (DPL017) and that the artifact was produced by
//     the same compiler generation (DPL016);
//   - that the declared effect summary covers every host call and MIB
//     OID prefix the bytecode can actually reach (DPL014), using the
//     same constant-head recovery rules the source-level analyzer
//     applies, so an honest artifact always passes;
//   - that the declared cost/step-budget pair is internally consistent
//     and not below the provable worst case for loop-free code
//     (DPL015).
//
// What cannot be decided statically (actual step counts of bounded
// loops) remains enforced dynamically by the VM's step quota.
package verify

import (
	"fmt"
	"strings"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
)

// Result is one verification outcome: the diagnostics raised and the
// effect summary recovered from the bytecode itself.
type Result struct {
	// Diags uses the same stable codes as the source-level analyzer;
	// every verifier diagnostic is error severity.
	Diags []analysis.Diagnostic
	// Recovered is the effect summary the bytecode proves (a subset of
	// an honest declared verdict).
	Recovered analysis.Effects
}

// OK reports whether the program may be admitted.
func (r *Result) OK() bool { return !analysis.HasErrors(r.Diags) }

// Err returns the diagnostics as an error when verification failed.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	return &analysis.Error{Diags: r.Diags}
}

// faultCodes maps structural fault kinds to diagnostic codes.
var faultCodes = map[dpl.FaultKind]string{
	dpl.FaultOpcode:  analysis.CodeBadOpcode,
	dpl.FaultJump:    analysis.CodeBadJump,
	dpl.FaultStack:   analysis.CodeStackUnsafe,
	dpl.FaultOperand: analysis.CodeBadOperand,
}

// Verify checks cp against the receiver's bindings table. A nil error
// from Result.Err means the object code is safe to execute under the
// declared verdict.
func Verify(cp *dpl.CompiledProgram, bindings *dpl.Bindings) *Result {
	res := &Result{}
	fail := func(code, msg string, args ...any) {
		res.Diags = append(res.Diags, analysis.Diagnostic{
			Code: code, Sev: analysis.SevError, Msg: fmt.Sprintf(msg, args...),
		})
	}
	if cp == nil || cp.Object == nil {
		fail(analysis.CodeBadOperand, "artifact carries no object code")
		return res
	}
	if cp.Version < dpl.MinCompilerVersion || cp.Version > dpl.CompilerVersion {
		fail(analysis.CodeVersionSkew, "artifact compiled by generation %d, this node accepts %d..%d",
			cp.Version, dpl.MinCompilerVersion, dpl.CompilerVersion)
		return res
	}
	c := cp.Object
	// An artifact may be older than this node, but it must not lie about
	// it: opcodes from a newer generation than the claimed Version mean
	// the stamp is forged (or the sender's toolchain is inconsistent),
	// and downstream version-gated handling would misfire.
	if skew := opcodeSkew(c, cp.Version); skew != "" {
		fail(analysis.CodeVersionSkew, "%s", skew)
		return res
	}
	if faults := c.VerifyStructure(); len(faults) > 0 {
		for _, f := range faults {
			res.Diags = append(res.Diags, analysis.Diagnostic{
				Code: faultCodes[f.Kind], Sev: analysis.SevError, Msg: f.String(),
			})
		}
		return res // code too broken for effect or budget recovery
	}
	v := &verifier{cp: cp, res: res, fail: fail, bindings: bindings}
	v.checkHostTable()
	v.recoverEffects()
	v.checkBudget()
	return res
}

// opcodeSkew returns a non-empty description when the object code uses
// an opcode introduced after the compiler generation the artifact
// claims (DPL016). Structural verification has not run yet, so this
// walk assumes nothing about the code beyond its opcode bytes.
func opcodeSkew(c *dpl.Compiled, version int) string {
	check := func(name string, code []dpl.Instr) string {
		for ip, in := range code {
			if g := dpl.OpcodeVersion(in.Op); g > version {
				return fmt.Sprintf("%s+%d: opcode %s requires compiler generation %d, artifact claims %d",
					name, ip, in.Op, g, version)
			}
		}
		return ""
	}
	if s := check("<init>", c.InitCode); s != "" {
		return s
	}
	for _, fn := range c.Funcs {
		if s := check(fn.Name, fn.Code); s != "" {
			return s
		}
	}
	return ""
}

type verifier struct {
	cp       *dpl.CompiledProgram
	res      *Result
	fail     func(code, msg string, args ...any)
	bindings *dpl.Bindings

	hosts  map[string]bool
	reads  map[string]bool
	writes map[string]bool
}

// eachBlock visits the init block and every function body.
func (v *verifier) eachBlock(f func(name string, code []dpl.Instr, nLocals int)) {
	f("<init>", v.cp.Object.InitCode, 0)
	for _, fn := range v.cp.Object.Funcs {
		f(fn.Name, fn.Code, fn.NumLocals)
	}
}

// checkHostTable proves that every host index the code actually calls
// resolves to the same name, slot and arity in the receiver's bindings
// (DPL017). Unused table entries are harmless and ignored, so a node
// with extra registered services still accepts the artifact.
func (v *verifier) checkHostTable() {
	c := v.cp.Object
	seen := map[int]bool{}
	v.eachBlock(func(name string, code []dpl.Instr, _ int) {
		for ip, in := range code {
			if in.Op != dpl.OpCallHost || seen[in.A] {
				continue
			}
			seen[in.A] = true
			host := c.HostNames[in.A]
			idx, arity, ok := v.bindings.Lookup(host)
			switch {
			case !ok:
				v.fail(analysis.CodeHostTableSkew, "%s+%d: %s: host %q not bound on this node", name, ip, dpl.FormatInstr(c, in), host)
			case idx != in.A:
				v.fail(analysis.CodeHostTableSkew, "%s+%d: %s: host %q bound at slot %d here, artifact calls slot %d", name, ip, dpl.FormatInstr(c, in), host, idx, in.A)
			case arity >= 0 && in.B != arity:
				v.fail(analysis.CodeHostTableSkew, "%s+%d: %s: host %q takes %d args, call passes %d", name, ip, dpl.FormatInstr(c, in), host, arity, in.B)
			}
		}
	})
}

// Abstract values for effect recovery: an exactly known constant, a
// known constant string head (under concatenation), or unknown.
type absKind uint8

const (
	absUnknown absKind = iota
	absExact
	absHead
)

type absVal struct {
	kind absKind
	v    dpl.Value // absExact
	head string    // absHead
}

// concat mirrors analysis.constStringHead over compiled code: the
// recovered head of l+r when l is known.
func concat(l, r absVal) absVal {
	if l.kind == absExact {
		ls, ok := l.v.(string)
		if !ok {
			return absVal{}
		}
		switch r.kind {
		case absExact:
			if rs, ok := r.v.(string); ok {
				return absVal{kind: absExact, v: ls + rs}
			}
			return absVal{kind: absHead, head: ls}
		case absHead:
			return absVal{kind: absHead, head: ls + r.head}
		default:
			return absVal{kind: absHead, head: ls}
		}
	}
	if l.kind == absHead {
		return absVal{kind: absHead, head: l.head}
	}
	return absVal{}
}

// oidPrefix converts an abstract OID argument to the effect prefix it
// proves, mirroring analysis.constOIDPrefix: exact strings fold whole,
// partial heads keep complete dotted components, everything else is
// the wildcard.
func oidPrefix(a absVal) string {
	switch a.kind {
	case absExact:
		if s, ok := a.v.(string); ok {
			return strings.TrimSuffix(s, ".")
		}
		return analysis.Wildcard
	case absHead:
		if i := strings.LastIndex(a.head, "."); i > 0 {
			return a.head[:i]
		}
		return analysis.Wildcard
	default:
		return analysis.Wildcard
	}
}

// recoverEffects walks every block tracking constant values through the
// stack and locals (per basic block, forgetting state at jump targets,
// exactly like the optimizer's propagation pass) and checks each host
// call against the declared verdict (DPL014).
func (v *verifier) recoverEffects() {
	v.hosts, v.reads, v.writes = map[string]bool{}, map[string]bool{}, map[string]bool{}
	declHosts := map[string]bool{}
	for _, h := range v.cp.Verdict.Hosts {
		declHosts[h] = true
	}
	covered := func(declared []string, oid string) bool {
		for _, d := range declared {
			if analysis.OIDCovers(d, oid) {
				return true
			}
		}
		return false
	}
	c := v.cp.Object
	v.eachBlock(func(name string, code []dpl.Instr, nLocals int) {
		locals := make([]absVal, nLocals)
		var stack []absVal
		tgt := make([]bool, len(code)+1)
		for _, in := range code {
			switch in.Op {
			case dpl.OpJump, dpl.OpJumpFalse, dpl.OpJFKeep, dpl.OpJTKeep, dpl.OpBinJumpFalse:
				tgt[in.A] = true
			}
		}
		reset := func() {
			for i := range locals {
				locals[i] = absVal{}
			}
			stack = stack[:0]
		}
		push := func(a absVal) { stack = append(stack, a) }
		pop := func(n int) []absVal {
			if len(stack) < n {
				// Unreachable after structural verification; drop
				// tracking rather than guessing.
				stack = stack[:0]
				return make([]absVal, n)
			}
			out := stack[len(stack)-n:]
			popped := make([]absVal, n)
			copy(popped, out)
			stack = stack[:len(stack)-n]
			return popped
		}
		for ip := 0; ip < len(code); ip++ {
			if tgt[ip] {
				reset()
			}
			in := code[ip]
			switch in.Op {
			case dpl.OpConst:
				push(absVal{kind: absExact, v: c.Consts[in.A]})
			case dpl.OpNil:
				push(absVal{kind: absExact, v: nil})
			case dpl.OpTrue:
				push(absVal{kind: absExact, v: true})
			case dpl.OpFalse:
				push(absVal{kind: absExact, v: false})
			case dpl.OpLoadL:
				push(locals[in.A])
			case dpl.OpStoreL:
				locals[in.A] = pop(1)[0]
			case dpl.OpLoadG:
				push(absVal{})
			case dpl.OpStoreG, dpl.OpPop:
				pop(1)
			case dpl.OpBin:
				ops := pop(2)
				if dpl.TokenKind(in.A) == dpl.TokPlus {
					push(concat(ops[0], ops[1]))
				} else {
					push(absVal{})
				}
			case dpl.OpEq, dpl.OpNe, dpl.OpIndex:
				pop(2)
				push(absVal{})
			case dpl.OpNeg, dpl.OpNot:
				pop(1)
				push(absVal{})
			case dpl.OpJump, dpl.OpReturn, dpl.OpReturnNil:
				reset()
			case dpl.OpJumpFalse:
				pop(1)
			case dpl.OpJFKeep, dpl.OpJTKeep:
				if len(stack) > 0 {
					stack[len(stack)-1] = absVal{}
				}
			case dpl.OpCall:
				pop(in.B)
				push(absVal{})
			case dpl.OpCallHost:
				args := pop(in.B)
				push(absVal{})
				host := c.HostNames[in.A]
				v.hosts[host] = true
				if !declHosts[host] {
					v.fail(analysis.CodeEffectUndeclared, "%s+%d: %s: calls host %q not in declared effect summary", name, ip, dpl.FormatInstr(c, in), host)
				}
				oidArg, write, isMIB := analysis.MIBPrimitive(host)
				if !isMIB || oidArg >= len(args) {
					continue
				}
				oid := oidPrefix(args[oidArg])
				if write {
					v.writes[oid] = true
					if !covered(v.cp.Verdict.Writes, oid) {
						v.fail(analysis.CodeEffectUndeclared, "%s+%d: %s: writes OID prefix %q not covered by declared writes %v", name, ip, dpl.FormatInstr(c, in), oid, v.cp.Verdict.Writes)
					}
				} else {
					v.reads[oid] = true
					if !covered(v.cp.Verdict.Reads, oid) {
						v.fail(analysis.CodeEffectUndeclared, "%s+%d: %s: reads OID prefix %q not covered by declared reads %v", name, ip, dpl.FormatInstr(c, in), oid, v.cp.Verdict.Reads)
					}
				}
			case dpl.OpLoadLConstBin:
				idx, op := dpl.UnpackIdxOp(in.B)
				if op == dpl.TokPlus {
					push(concat(locals[in.A], absVal{kind: absExact, v: c.Consts[idx]}))
				} else {
					push(absVal{})
				}
			case dpl.OpLoadLLoadLBin:
				idx, op := dpl.UnpackIdxOp(in.B)
				if op == dpl.TokPlus {
					push(concat(locals[in.A], locals[idx]))
				} else {
					push(absVal{})
				}
			case dpl.OpBinJumpFalse:
				pop(2)
			case dpl.OpConstStoreL:
				locals[in.B] = absVal{kind: absExact, v: c.Consts[in.A]}
			case dpl.OpIncL:
				locals[in.A] = concat(locals[in.A], absVal{kind: absExact, v: c.Consts[in.B]})
			case dpl.OpDecL:
				locals[in.A] = absVal{}
			case dpl.OpSetIndex:
				pop(3)
			case dpl.OpArray:
				pop(in.A)
				push(absVal{})
			case dpl.OpMap:
				pop(2 * in.A)
				push(absVal{})
			}
		}
	})
	for h := range v.hosts {
		v.res.Recovered.Hosts = append(v.res.Recovered.Hosts, analysis.Effect{Name: h})
	}
	for r := range v.reads {
		v.res.Recovered.Reads = append(v.res.Recovered.Reads, analysis.Effect{Name: r})
	}
	for w := range v.writes {
		v.res.Recovered.Writes = append(v.res.Recovered.Writes, analysis.Effect{Name: w})
	}
	sortEffects(v.res.Recovered.Hosts)
	sortEffects(v.res.Recovered.Reads)
	sortEffects(v.res.Recovered.Writes)
}

func sortEffects(es []analysis.Effect) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Name < es[j-1].Name; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// checkBudget validates the declared cost/budget pair (DPL015). A
// bounded claim must carry a positive budget at least the cost
// estimate, must not sit on recursive code (the source analyzer always
// marks recursion unbounded), and for loop-free code must not undercut
// the provable worst-case instruction count.
func (v *verifier) checkBudget() {
	verdict := v.cp.Verdict
	if verdict.CostUnbounded {
		return // the receiver's own step quota governs
	}
	if verdict.StepBudget == 0 {
		v.fail(analysis.CodeBudgetMismatch, "bounded cost claim (%d steps) with no step budget", verdict.CostSteps)
		return
	}
	if verdict.StepBudget < verdict.CostSteps {
		v.fail(analysis.CodeBudgetMismatch, "step budget %d below declared cost %d", verdict.StepBudget, verdict.CostSteps)
		return
	}
	if cyclic(v.cp.Object) {
		v.fail(analysis.CodeBudgetMismatch, "bounded cost claim on recursive code")
		return
	}
	worst, ok := worstCaseSteps(v.cp.Object)
	if ok && worst > verdict.StepBudget {
		v.fail(analysis.CodeBudgetMismatch, "step budget %d below provable worst case %d for loop-free code", verdict.StepBudget, worst)
	}
}

// cyclic reports whether the user-function call graph has a cycle.
func cyclic(c *dpl.Compiled) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(c.Funcs))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, in := range c.Funcs[i].Code {
			if in.Op != dpl.OpCall {
				continue
			}
			switch color[in.A] {
			case gray:
				return true
			case white:
				if visit(in.A) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range c.Funcs {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// worstCaseSteps computes the exact worst-case executed instruction
// count (init plus the most expensive entry function) when every code
// block is loop-free (all jumps forward) and the call graph is acyclic.
// ok=false means a back-edge exists and no static count is provable.
func worstCaseSteps(c *dpl.Compiled) (steps uint64, ok bool) {
	funcMax := make([]uint64, len(c.Funcs))
	funcDone := make([]bool, len(c.Funcs))
	var blockMax func(code []dpl.Instr) (uint64, bool)
	var funcCost func(i int) (uint64, bool)
	blockMax = func(code []dpl.Instr) (uint64, bool) {
		// longest[ip] = worst-case steps executed from ip to exit. With
		// only forward jumps the instruction graph is a DAG and a single
		// reverse sweep suffices.
		longest := make([]uint64, len(code)+1)
		for ip := len(code) - 1; ip >= 0; ip-- {
			in := code[ip]
			cost := uint64(1)
			if in.Op == dpl.OpCall {
				sub, subOK := funcCost(in.A)
				if !subOK {
					return 0, false
				}
				cost += sub
			}
			var after uint64
			switch in.Op {
			case dpl.OpReturn, dpl.OpReturnNil:
				after = 0
			case dpl.OpJump:
				if in.A <= ip {
					return 0, false // back-edge: loop
				}
				after = longest[in.A]
			case dpl.OpJumpFalse, dpl.OpJFKeep, dpl.OpJTKeep, dpl.OpBinJumpFalse:
				if in.A <= ip {
					return 0, false
				}
				after = max(longest[in.A], longest[ip+1])
			default:
				after = longest[ip+1]
			}
			longest[ip] = cost + after
		}
		if len(code) == 0 {
			return 0, true
		}
		return longest[0], true
	}
	funcCost = func(i int) (uint64, bool) {
		if funcDone[i] {
			return funcMax[i], true
		}
		m, okf := blockMax(c.Funcs[i].Code)
		if !okf {
			return 0, false
		}
		funcMax[i] = m
		funcDone[i] = true
		return m, true
	}
	initSteps, okInit := blockMax(c.InitCode)
	if !okInit {
		return 0, false
	}
	var entry uint64
	for i := range c.Funcs {
		m, okf := funcCost(i)
		if !okf {
			return 0, false
		}
		entry = max(entry, m)
	}
	return initSteps + entry, true
}
