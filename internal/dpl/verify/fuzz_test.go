package verify_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
	"mbd/internal/dpl/verify"
)

// quietBindings registers the artifact's own host table in slot order
// with variadic nil stubs, so verification and execution exercise the
// code rather than the receiving node's configuration.
func quietBindings(cp *dpl.CompiledProgram) *dpl.Bindings {
	b := dpl.NewBindings()
	for _, name := range cp.Object.HostNames {
		b.Register(name, -1, func(*dpl.Env, []dpl.Value) (dpl.Value, error) { return nil, nil })
	}
	return b
}

// corpusBlobs builds the deterministic seed set: honest artifacts from
// the source pipeline plus structurally tampered mutants of each.
func corpusBlobs() ([][]byte, error) {
	b := analysis.LintBindings()
	var blobs [][]byte
	for _, src := range honestSources {
		prog, err := dpl.Parse(src)
		if err != nil {
			return nil, err
		}
		if errs := dpl.Check(prog, b); len(errs) > 0 {
			return nil, errs[0]
		}
		rep := analysis.Analyze(prog, b)
		obj, err := dpl.Compile(prog, b)
		if err != nil {
			return nil, err
		}
		dpl.Optimize(obj)
		cp := &dpl.CompiledProgram{
			Version:    dpl.CompilerVersion,
			SourceHash: dpl.HashSource(src),
			Verdict: dpl.Verdict{
				Hosts:         rep.Effects.HostNames(),
				Reads:         rep.Effects.ReadPrefixes(),
				Writes:        rep.Effects.WritePrefixes(),
				CostSteps:     rep.Cost.Steps,
				CostUnbounded: rep.Cost.Unbounded,
				StepBudget:    rep.SuggestedBudget(0),
			},
			Object: obj,
		}
		blob, err := cp.Encode()
		if err != nil {
			return nil, err
		}
		blobs = append(blobs, blob)

		for _, tamper := range []func(*dpl.CompiledProgram){
			func(m *dpl.CompiledProgram) { m.Object.Funcs[0].Code[0].Op = 200 },
			func(m *dpl.CompiledProgram) { m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpJump, A: 1 << 20} },
			func(m *dpl.CompiledProgram) { m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpBin, A: 99} },
			func(m *dpl.CompiledProgram) { m.Verdict.Hosts = nil; m.Verdict.Reads = nil; m.Verdict.Writes = nil },
			// Fused-opcode mutants: corrupt packed operands, fused jump
			// targets, and the version stamp under generation-3 code.
			func(m *dpl.CompiledProgram) {
				m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadLConstBin, A: 0, B: dpl.PackIdxOp(1<<16, dpl.TokPlus)}
			},
			func(m *dpl.CompiledProgram) {
				m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadLLoadLBin, A: 1 << 12, B: dpl.PackIdxOp(0, 0xff)}
			},
			func(m *dpl.CompiledProgram) {
				m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpBinJumpFalse, A: -1, B: int(dpl.TokLt)}
			},
			func(m *dpl.CompiledProgram) {
				m.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpIncL, A: 0, B: 1 << 16}
			},
			func(m *dpl.CompiledProgram) { m.Version = dpl.MinCompilerVersion },
		} {
			mut, err := dpl.DecodeProgram(blob)
			if err != nil {
				return nil, err
			}
			tamper(mut)
			mblob, err := mut.Encode()
			if err != nil {
				return nil, err
			}
			blobs = append(blobs, mblob)
		}
	}
	return blobs, nil
}

// FuzzVerify hammers the wire-to-admission path: whatever bytes arrive,
// decoding and verification must not panic, and any program the
// verifier rejects structurally must also be refused by the VM.
func FuzzVerify(f *testing.F) {
	blobs, err := corpusBlobs()
	if err != nil {
		f.Fatal(err)
	}
	for _, blob := range blobs {
		f.Add(blob)
		if len(blob) > 8 {
			trunc := blob[:len(blob)/2]
			f.Add(append([]byte{}, trunc...))
			flip := append([]byte{}, blob...)
			flip[len(flip)/3] ^= 0x41
			f.Add(flip)
		}
	}
	structural := map[string]bool{
		analysis.CodeBadOpcode: true, analysis.CodeBadJump: true,
		analysis.CodeStackUnsafe: true, analysis.CodeBadOperand: true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := dpl.DecodeProgram(data)
		if err != nil {
			return
		}
		quiet := quietBindings(cp)
		res := verify.Verify(cp, quiet)
		rejected := false
		for _, d := range res.Diags {
			if structural[d.Code] {
				rejected = true
			}
		}
		vm := dpl.NewVM(cp.Object, quiet, dpl.WithMaxSteps(50000))
		_, runErr := vm.Run(context.Background(), "main")
		if rejected && runErr == nil {
			t.Fatalf("VM executed a structurally rejected program:\n%s", dpl.Disassemble(cp.Object))
		}
	})
}

// TestGenerateFuzzCorpus rewrites the committed seed corpus when run
// with MBD_GEN_CORPUS=1. CI replays the committed files on every build.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("MBD_GEN_CORPUS") == "" {
		t.Skip("set MBD_GEN_CORPUS=1 to regenerate testdata/fuzz/FuzzVerify")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzVerify")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	blobs, err := corpusBlobs()
	if err != nil {
		t.Fatal(err)
	}
	for i, blob := range blobs {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(blob)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seeds to %s", len(blobs), dir)
}
