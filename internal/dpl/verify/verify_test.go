package verify_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mbd/internal/dpl"
	"mbd/internal/dpl/analysis"
	"mbd/internal/dpl/verify"
)

// buildArtifact runs the real source pipeline (parse, check, analyze,
// compile, optionally optimize) and packages the result the way the
// elastic process ships it.
func buildArtifact(t *testing.T, src string, b *dpl.Bindings, optimize bool) *dpl.CompiledProgram {
	t.Helper()
	prog, err := dpl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := dpl.Check(prog, b); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	rep := analysis.Analyze(prog, b)
	if rep.HasErrors() {
		t.Fatalf("analyze: %v", &analysis.Error{Diags: rep.Diags})
	}
	obj, err := dpl.Compile(prog, b)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if optimize {
		dpl.Optimize(obj)
	}
	return &dpl.CompiledProgram{
		Version:    dpl.CompilerVersion,
		SourceHash: dpl.HashSource(src),
		Verdict: dpl.Verdict{
			Hosts:         rep.Effects.HostNames(),
			Reads:         rep.Effects.ReadPrefixes(),
			Writes:        rep.Effects.WritePrefixes(),
			CostSteps:     rep.Cost.Steps,
			CostUnbounded: rep.Cost.Unbounded,
			StepBudget:    rep.SuggestedBudget(0),
		},
		Object: obj,
	}
}

// honestSources exercises every recovery rule: constant OIDs, partial
// concatenation heads, dynamic OIDs (wildcard on both sides), writes,
// user-function indirection, loops (unbounded cost), recursion-free
// bounded programs.
var honestSources = []string{
	`func main() { return mibGet("1.3.6.1.2.1.1.3.0"); }`,
	`func main(i) { return mibGet("1.3.6.1.2." + i); }`,
	`func main(oid) { return mibGet(oid); }`,
	`func main(v) { mibSet("1.3.6.1.4.1.9", v); return snmpGet("host-a", "1.3.6.1.2.1"); }`,
	`func probe(oid) { return mibNext(oid); }
	 func main() { return probe("1.3.6.1.2.1.2"); }`,
	`var acc = 0;
	 func main(n) {
		for (var i = 0; i < n; i += 1) { acc += len(mibWalk("1.3.6.1.2.1.2.2")); }
		return acc;
	 }`,
	`func main() {
		var parts = ["1.3.6", "1.2.3"];
		var total = 0;
		total += len(parts);
		if (total > 1 && parts[0] != "") { return mibGet(parts[0] + ".1.2.0"); }
		return nil;
	 }`,
}

func TestVerifyAcceptsHonestArtifacts(t *testing.T) {
	b := analysis.LintBindings()
	srcs := append([]string{}, honestSources...)
	glob, _ := filepath.Glob(filepath.Join("..", "..", "..", "examples", "agents", "*.dpl"))
	for _, p := range glob {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, string(data))
	}
	if len(glob) == 0 {
		t.Log("no example agents found; inline sources only")
	}
	for i, src := range srcs {
		for _, optimize := range []bool{false, true} {
			cp := buildArtifact(t, src, b, optimize)
			res := verify.Verify(cp, b)
			if err := res.Err(); err != nil {
				t.Errorf("source %d (optimize=%v): honest artifact rejected:\n%v\n%s", i, optimize, err, dpl.Disassemble(cp.Object))
			}
		}
	}
}

// TestVerifySurvivesCodec: verification must give the same verdict on
// an artifact that went through the wire encoding.
func TestVerifySurvivesCodec(t *testing.T) {
	b := analysis.LintBindings()
	cp := buildArtifact(t, honestSources[3], b, true)
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := dpl.DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(dec, b).Err(); err != nil {
		t.Fatalf("decoded honest artifact rejected: %v", err)
	}
}

func TestVerifyRecoveredEffects(t *testing.T) {
	b := analysis.LintBindings()
	cp := buildArtifact(t, `func main(v) { mibSet("1.3.6.1.4.1.9", v); return mibGet("1.3.6.1.2.1.1.3.0"); }`, b, true)
	res := verify.Verify(cp, b)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := res.Recovered.ReadPrefixes(); len(got) != 1 || got[0] != "1.3.6.1.2.1.1.3.0" {
		t.Errorf("recovered reads = %v", got)
	}
	if got := res.Recovered.WritePrefixes(); len(got) != 1 || got[0] != "1.3.6.1.4.1.9" {
		t.Errorf("recovered writes = %v", got)
	}
	if !res.Recovered.CallsHost("mibSet") || !res.Recovered.CallsHost("mibGet") {
		t.Errorf("recovered hosts = %v", res.Recovered.HostNames())
	}
}

// hasCode reports whether diags contains an error with the given code.
func hasCode(diags []analysis.Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code && d.Sev == analysis.SevError {
			return true
		}
	}
	return false
}

func TestVerifyRejectsTamperedArtifacts(t *testing.T) {
	b := analysis.LintBindings()
	cases := []struct {
		name   string
		src    string
		tamper func(cp *dpl.CompiledProgram)
		code   string
	}{
		{
			"version skew", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Version++ },
			analysis.CodeVersionSkew,
		},
		{
			"bad opcode", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Object.Funcs[0].Code[0].Op = 99 },
			analysis.CodeBadOpcode,
		},
		{
			"jump out of range", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				fn := cp.Object.Funcs[0]
				fn.Code[len(fn.Code)-1] = dpl.Instr{Op: dpl.OpJump, A: 1 << 20}
			},
			analysis.CodeBadJump,
		},
		{
			"stack underflow", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				fn := cp.Object.Funcs[0]
				fn.Code = append([]dpl.Instr{{Op: dpl.OpPop}}, fn.Code...)
			},
			analysis.CodeStackUnsafe,
		},
		{
			"const index out of range", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpConst, A: 1 << 16} },
			analysis.CodeBadOperand,
		},
		{
			"fused const index out of range", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpIncL, A: 0, B: 1 << 16}
			},
			analysis.CodeBadOperand,
		},
		{
			"fused packed operand out of range", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadLConstBin, A: 0, B: dpl.PackIdxOp(1<<16, dpl.TokPlus)}
			},
			analysis.CodeBadOperand,
		},
		{
			"fused non-binop operator", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpBinJumpFalse, A: 1, B: 0xff}
			},
			analysis.CodeBadOperand,
		},
		{
			"fused jump out of range", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				fn := cp.Object.Funcs[0]
				fn.Code = append([]dpl.Instr{
					{Op: dpl.OpConst, A: 0},
					{Op: dpl.OpConst, A: 0},
					{Op: dpl.OpBinJumpFalse, A: 1 << 20, B: int(dpl.TokPlus)},
				}, fn.Code...)
			},
			analysis.CodeBadJump,
		},
		{
			"undeclared host", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Verdict.Hosts = nil },
			analysis.CodeEffectUndeclared,
		},
		{
			"undeclared read prefix", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Verdict.Reads = []string{"1.3.6.1.4"} },
			analysis.CodeEffectUndeclared,
		},
		{
			"undeclared write", `func main(v) { mibSet("1.3.6.1.4.1.9", v); return nil; }`,
			func(cp *dpl.CompiledProgram) { cp.Verdict.Writes = nil },
			analysis.CodeEffectUndeclared,
		},
		{
			"wildcard smuggled as narrow prefix", `func main(oid) { return mibGet(oid); }`,
			func(cp *dpl.CompiledProgram) { cp.Verdict.Reads = []string{"1.3.6.1"} },
			analysis.CodeEffectUndeclared,
		},
		{
			"budget below cost", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Verdict.StepBudget = cp.Verdict.CostSteps - 1 },
			analysis.CodeBudgetMismatch,
		},
		{
			"bounded claim with no budget", honestSources[0],
			func(cp *dpl.CompiledProgram) { cp.Verdict.StepBudget = 0 },
			analysis.CodeBudgetMismatch,
		},
		{
			"budget below provable worst case", honestSources[0],
			func(cp *dpl.CompiledProgram) {
				cp.Verdict.CostSteps = 1
				cp.Verdict.StepBudget = 2
			},
			analysis.CodeBudgetMismatch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := buildArtifact(t, tc.src, b, true)
			tc.tamper(cp)
			res := verify.Verify(cp, b)
			if !hasCode(res.Diags, tc.code) {
				t.Fatalf("want %s, got %v", tc.code, res.Diags)
			}
		})
	}
}

// TestVerifyRejectsBoundedClaimOnRecursion: the source analyzer always
// marks recursive programs unbounded; a verdict claiming otherwise is a
// lie the bytecode itself disproves.
func TestVerifyRejectsBoundedClaimOnRecursion(t *testing.T) {
	b := analysis.LintBindings()
	cp := buildArtifact(t, `func loop(n) { if (n <= 0) { return 0; } return loop(n - 1); }
		func main() { return loop(3); }`, b, true)
	if !cp.Verdict.CostUnbounded {
		t.Fatal("source analysis should mark recursion unbounded")
	}
	cp.Verdict.CostUnbounded = false
	cp.Verdict.CostSteps = 10
	cp.Verdict.StepBudget = 1 << 30
	res := verify.Verify(cp, b)
	if !hasCode(res.Diags, analysis.CodeBudgetMismatch) {
		t.Fatalf("bounded claim on recursive code accepted: %v", res.Diags)
	}
}

// TestVerifyHostTableSkew: an artifact built against one binding layout
// must not be admitted by a node whose table disagrees.
func TestVerifyHostTableSkew(t *testing.T) {
	b := analysis.LintBindings()
	cp := buildArtifact(t, honestSources[0], b, true)

	missing := dpl.Std() // no mibGet at all
	if res := verify.Verify(cp, missing); !hasCode(res.Diags, analysis.CodeHostTableSkew) {
		t.Fatalf("missing host accepted: %v", res.Diags)
	}

	// Same names, different slot order for a host the code calls.
	shuffled := dpl.NewBindings()
	stub := func(*dpl.Env, []dpl.Value) (dpl.Value, error) { return nil, nil }
	names := cp.Object.HostNames
	for i := len(names) - 1; i >= 0; i-- {
		shuffled.Register(names[i], -1, stub)
	}
	if len(names) > 1 {
		if res := verify.Verify(cp, shuffled); !hasCode(res.Diags, analysis.CodeHostTableSkew) {
			t.Fatalf("shuffled host table accepted: %v", res.Diags)
		}
	}

	// Right slot, wrong arity.
	wrongArity := dpl.NewBindings()
	for _, n := range names {
		wrongArity.Register(n, 7, stub)
	}
	if res := verify.Verify(cp, wrongArity); !hasCode(res.Diags, analysis.CodeHostTableSkew) {
		t.Fatalf("wrong arity accepted: %v", res.Diags)
	}
}

// TestVerifierRejectionImpliesVMRefusal: anything the verifier rejects
// structurally (DPL010–DPL013) must also be refused by the VM itself.
func TestVerifierRejectionImpliesVMRefusal(t *testing.T) {
	b := analysis.LintBindings()
	structural := map[string]bool{
		analysis.CodeBadOpcode: true, analysis.CodeBadJump: true,
		analysis.CodeStackUnsafe: true, analysis.CodeBadOperand: true,
	}
	tampers := []func(cp *dpl.CompiledProgram){
		func(cp *dpl.CompiledProgram) { cp.Object.Funcs[0].Code[0].Op = 200 },
		func(cp *dpl.CompiledProgram) { cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpJump, A: -3} },
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpBin, A: int(dpl.TokPlus)}
		},
		func(cp *dpl.CompiledProgram) { cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadL, A: 1 << 10} },
		// Invalid fused bytecode must be refused by the VM too: a bad
		// packed constant index, a fused local out of frame, an
		// operator byte that is not a binop, a fused backward jump into
		// nowhere.
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadLConstBin, A: 0, B: dpl.PackIdxOp(1<<16, dpl.TokPlus)}
		},
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpLoadLLoadLBin, A: 1 << 10, B: dpl.PackIdxOp(0, dpl.TokPlus)}
		},
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpIncL, A: 0, B: 1 << 16}
		},
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpBinJumpFalse, A: 1 << 20, B: 0xff}
		},
		func(cp *dpl.CompiledProgram) {
			cp.Object.Funcs[0].Code[0] = dpl.Instr{Op: dpl.OpConstStoreL, A: 1 << 16, B: 0}
		},
	}
	for i, tamper := range tampers {
		cp := buildArtifact(t, honestSources[0], b, false)
		tamper(cp)
		res := verify.Verify(cp, b)
		found := false
		for _, d := range res.Diags {
			if structural[d.Code] {
				found = true
			}
		}
		if !found {
			t.Fatalf("tamper %d: no structural diagnostic: %v", i, res.Diags)
		}
		if _, err := dpl.NewVM(cp.Object, b, dpl.WithMaxSteps(10000)).Run(context.Background(), "main"); err == nil {
			t.Fatalf("tamper %d: VM ran a program the verifier rejected", i)
		}
	}
}

// TestVerifyCompilerVersionWindow pins the version-skew contract for
// the generation-3 compiler: receivers accept the window
// [MinCompilerVersion, CompilerVersion] rather than one generation, a
// previous-generation artifact still loads, verifies and runs, and an
// artifact that stamps an old generation while using new opcodes is a
// forgery the verifier refuses.
func TestVerifyCompilerVersionWindow(t *testing.T) {
	b := analysis.LintBindings()

	// An unoptimized compile emits only generation-1 opcodes, which is
	// exactly what a MinCompilerVersion node would have shipped.
	old := buildArtifact(t, honestSources[0], b, false)
	old.Version = dpl.MinCompilerVersion
	for _, fn := range old.Object.Funcs {
		for _, in := range fn.Code {
			if dpl.OpcodeVersion(in.Op) > dpl.MinCompilerVersion {
				t.Fatalf("plain compile emitted generation-%d opcode %s", dpl.OpcodeVersion(in.Op), in.Op)
			}
		}
	}
	blob, err := old.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := dpl.DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Version != dpl.MinCompilerVersion {
		t.Fatalf("codec lost the version stamp: %d", dec.Version)
	}
	if err := verify.Verify(dec, b).Err(); err != nil {
		t.Fatalf("previous-generation artifact rejected: %v", err)
	}
	quiet := quietBindings(dec)
	if err := verify.Verify(dec, quiet).Err(); err != nil {
		t.Fatalf("previous-generation artifact rejected under quiet bindings: %v", err)
	}
	if _, err := dpl.NewVM(dec.Object, quiet, dpl.WithMaxSteps(10000)).Run(context.Background(), "main"); err != nil {
		t.Fatalf("previous-generation artifact failed to run: %v", err)
	}

	// Below the window: too old to admit.
	ancient := buildArtifact(t, honestSources[0], b, false)
	ancient.Version = dpl.MinCompilerVersion - 1
	if res := verify.Verify(ancient, b); !hasCode(res.Diags, analysis.CodeVersionSkew) {
		t.Fatalf("below-window artifact accepted: %v", res.Diags)
	}

	// Forged stamp: generation-3 opcodes under a generation-2 Version.
	fused := buildArtifact(t, honestSources[5], b, true)
	hasFused := false
	for _, fn := range fused.Object.Funcs {
		for _, in := range fn.Code {
			if dpl.OpcodeVersion(in.Op) > dpl.MinCompilerVersion {
				hasFused = true
			}
		}
	}
	if !hasFused {
		t.Fatalf("optimizer produced no fused opcodes for the loop source:\n%s", dpl.Disassemble(fused.Object))
	}
	if err := verify.Verify(fused, b).Err(); err != nil {
		t.Fatalf("honest fused artifact rejected: %v", err)
	}
	fused.Version = dpl.MinCompilerVersion
	if res := verify.Verify(fused, b); !hasCode(res.Diags, analysis.CodeVersionSkew) {
		t.Fatalf("forged version stamp accepted: %v", res.Diags)
	}
}
