package dpl

import "fmt"

// The Translator. The paper's elastic process compiles a delegated
// program and "if the dp violates any of a set of defined rules for the
// given language, the dp is rejected". Check enforces those rules:
//
//   - every called function must be either defined in the DP itself or
//     present in the host's allowed-function table (Bindings) — no
//     binding to arbitrary external functions;
//   - every referenced variable must be declared;
//   - user-function calls must match the declared arity; fixed-arity
//     host calls likewise;
//   - break/continue must appear inside a loop;
//   - function, parameter, and same-scope variable names must be unique.

type checker struct {
	prog     *Program
	bindings *Bindings
	funcs    map[string]*FuncDecl
	globals  map[string]bool
	errs     []error
}

// Check validates prog against the host's allowed-function table and
// returns the translator diagnostics, or nil when the program is
// accepted.
func Check(prog *Program, bindings *Bindings) []error {
	c := &checker{
		prog:     prog,
		bindings: bindings,
		funcs:    make(map[string]*FuncDecl),
		globals:  make(map[string]bool),
	}
	for _, f := range prog.Funcs {
		if prev, dup := c.funcs[f.Name]; dup {
			c.errorf(f.Position(), "function %q redefined (first at %s)", f.Name, prev.Position())
			continue
		}
		if _, _, isHost := bindings.Lookup(f.Name); isHost {
			c.errorf(f.Position(), "function %q shadows a host function", f.Name)
		}
		c.funcs[f.Name] = f
	}
	for _, g := range prog.Globals {
		if c.globals[g.Name] {
			c.errorf(g.Position(), "global %q redeclared", g.Name)
		}
		if g.Init != nil {
			// Global initializers run before any function; they may
			// reference earlier globals only.
			c.checkExpr(g.Init, &scope{c: c})
		}
		c.globals[g.Name] = true
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	return c.errs
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// scope is a lexical scope chain for local variables.
type scope struct {
	c      *checker
	parent *scope
	names  map[string]bool
	inLoop bool
}

func (s *scope) child(loop bool) *scope {
	return &scope{c: s.c, parent: s, names: make(map[string]bool), inLoop: loop || s.inLoop}
}

func (s *scope) declare(pos Pos, name string) {
	if s.names == nil {
		s.names = make(map[string]bool)
	}
	if s.names[name] {
		s.c.errorf(pos, "variable %q redeclared in this scope", name)
	}
	s.names[name] = true
}

func (s *scope) resolve(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.names[name] {
			return true
		}
	}
	return s.c.globals[name]
}

func (c *checker) checkFunc(f *FuncDecl) {
	top := &scope{c: c, names: make(map[string]bool)}
	seen := map[string]bool{}
	for _, p := range f.Params {
		if seen[p] {
			c.errorf(f.Position(), "parameter %q repeated in %q", p, f.Name)
		}
		seen[p] = true
		top.names[p] = true
	}
	c.checkBlock(f.Body, top.child(false))
}

func (c *checker) checkBlock(b *Block, s *scope) {
	for _, st := range b.Stmts {
		c.checkStmt(st, s)
	}
}

func (c *checker) checkStmt(st Stmt, s *scope) {
	switch n := st.(type) {
	case *VarDecl:
		if n.Init != nil {
			c.checkExpr(n.Init, s)
		}
		s.declare(n.Position(), n.Name)
	case *Block:
		c.checkBlock(n, s.child(false))
	case *AssignStmt:
		switch t := n.Target.(type) {
		case *Ident:
			if !s.resolve(t.Name) {
				c.errorf(t.Position(), "assignment to undeclared variable %q", t.Name)
			}
		case *IndexExpr:
			c.checkExpr(t, s)
		}
		c.checkExpr(n.Value, s)
	case *IfStmt:
		c.checkExpr(n.Cond, s)
		c.checkBlock(n.Then, s.child(false))
		if n.Else != nil {
			c.checkStmt(n.Else, s.child(false))
		}
	case *WhileStmt:
		c.checkExpr(n.Cond, s)
		c.checkBlock(n.Body, s.child(true))
	case *ForStmt:
		fs := s.child(true)
		if n.Init != nil {
			c.checkStmt(n.Init, fs)
		}
		if n.Cond != nil {
			c.checkExpr(n.Cond, fs)
		}
		if n.Post != nil {
			c.checkStmt(n.Post, fs)
		}
		c.checkBlock(n.Body, fs)
	case *BreakStmt:
		if !s.inLoop {
			c.errorf(n.Position(), "break outside loop")
		}
	case *ContinueStmt:
		if !s.inLoop {
			c.errorf(n.Position(), "continue outside loop")
		}
	case *ReturnStmt:
		if n.Value != nil {
			c.checkExpr(n.Value, s)
		}
	case *ExprStmt:
		c.checkExpr(n.X, s)
	}
}

func (c *checker) checkExpr(e Expr, s *scope) {
	switch n := e.(type) {
	case *Ident:
		if !s.resolve(n.Name) {
			c.errorf(n.Position(), "undeclared variable %q", n.Name)
		}
	case *UnaryExpr:
		c.checkExpr(n.X, s)
	case *BinaryExpr:
		c.checkExpr(n.L, s)
		c.checkExpr(n.R, s)
	case *IndexExpr:
		c.checkExpr(n.X, s)
		c.checkExpr(n.I, s)
	case *ArrayLit:
		for _, el := range n.Elems {
			c.checkExpr(el, s)
		}
	case *MapLit:
		for i := range n.Keys {
			c.checkExpr(n.Keys[i], s)
			c.checkExpr(n.Vals[i], s)
		}
	case *CallExpr:
		for _, a := range n.Args {
			c.checkExpr(a, s)
		}
		if f, ok := c.funcs[n.Name]; ok {
			if len(n.Args) != len(f.Params) {
				c.errorf(n.Position(), "%q expects %d arguments, got %d", n.Name, len(f.Params), len(n.Args))
			}
			return
		}
		if _, arity, ok := c.bindings.Lookup(n.Name); ok {
			if arity >= 0 && len(n.Args) != arity {
				c.errorf(n.Position(), "host function %q expects %d arguments, got %d", n.Name, arity, len(n.Args))
			}
			return
		}
		// The paper's core safety rule: unknown bindings are rejected
		// at translation time, never deferred to runtime.
		c.errorf(n.Position(), "call to %q: not a program function and not in the allowed host function set", n.Name)
	}
}
