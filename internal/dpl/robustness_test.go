package dpl

import (
	"math/rand"
	"strings"
	"testing"
)

// A delegated program arrives from the network; whatever bytes it
// contains, the Translator must reject cleanly — never panic. These
// tests throw structured garbage at every pipeline stage.

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", b, p)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	// Valid tokens in random order — deeper into the parser than raw
	// bytes can reach.
	tokens := []string{
		"var", "func", "if", "else", "while", "for", "break", "continue",
		"return", "true", "false", "nil", "x", "y", "main", "42", "3.14",
		`"s"`, "(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "+", "-",
		"*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "!",
		"+=", "-=",
	}
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		var b strings.Builder
		n := r.Intn(40)
		for j := 0; j < n; j++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", src, p)
				}
			}()
			prog, err := Parse(src)
			if err != nil {
				return
			}
			// If it parsed, checking and compiling must not panic either.
			bnd := Std()
			_, _ = Compile(prog, bnd)
		}()
	}
}

func TestDeeplyNestedExpressionsBounded(t *testing.T) {
	// Pathological nesting must parse (or fail) without stack death at
	// reasonable depth.
	depth := 2000
	src := "func main() { return " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + "; }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	// Deep unary chains too.
	src = "func main() { return " + strings.Repeat("-", depth) + "1; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("deep unary: %v", err)
	}
	if _, err := Compile(prog, Std()); err != nil {
		t.Fatalf("compile deep unary: %v", err)
	}
}

func TestHugeButValidProgram(t *testing.T) {
	// 2000 sequential statements: the compiler and VM handle large DPs.
	var b strings.Builder
	b.WriteString("func main() {\nvar s = 0;\n")
	for i := 0; i < 2000; i++ {
		b.WriteString("s += 1;\n")
	}
	b.WriteString("return s;\n}")
	v := mustRun(t, b.String())
	if v != int64(2000) {
		t.Fatalf("= %v", v)
	}
}
