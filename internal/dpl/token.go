// Package dpl implements the Delegated Program Language: the agent
// encoding language of the MbD reproduction.
//
// The paper's prototype accepted delegated programs written in "a
// specific subset of the ANSI C standard ... This subset language
// restricts dps on their ability to bind to external functions. The dbm
// runtime maintains a predefined set of allowed functions." Go cannot
// load native code at runtime, so this package supplies the equivalent:
// a small C-like language with
//
//   - a lexer, recursive-descent parser and AST;
//   - a Translator (Check + Compile) that rejects programs referencing
//     any function outside the host's allowed-function table, exactly
//     the paper's safety rule;
//   - a bytecode compiler and stack VM with instruction-step quotas and
//     cooperative suspend/resume/terminate, giving the elastic process
//     thread-level control over delegated program instances; and
//   - a reference tree-walking interpreter used to cross-check the VM
//     (and as the "interpreted script" baseline in the Table 2.1
//     ablation benchmark).
package dpl

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	// Keywords.
	TokVar
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokFor
	TokBreak
	TokContinue
	TokReturn
	TokTrue
	TokFalse
	TokNil
	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
	TokColon
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
	TokPlusAssign
	TokMinusAssign
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokString: "string literal",
	TokVar: "'var'", TokFunc: "'func'", TokIf: "'if'", TokElse: "'else'",
	TokWhile: "'while'", TokFor: "'for'", TokBreak: "'break'",
	TokContinue: "'continue'", TokReturn: "'return'", TokTrue: "'true'",
	TokFalse: "'false'", TokNil: "'nil'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','",
	TokSemicolon: "';'", TokColon: "':'", TokAssign: "'='",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokPercent: "'%'", TokEq: "'=='", TokNe: "'!='", TokLt: "'<'",
	TokLe: "'<='", TokGt: "'>'", TokGe: "'>='", TokAndAnd: "'&&'",
	TokOrOr: "'||'", TokBang: "'!'",
	TokPlusAssign: "'+='", TokMinusAssign: "'-='",
}

// String names the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", uint8(k))
}

var keywords = map[string]TokenKind{
	"var": TokVar, "func": TokFunc, "if": TokIf, "else": TokElse,
	"while": TokWhile, "for": TokFor, "break": TokBreak,
	"continue": TokContinue, "return": TokReturn, "true": TokTrue,
	"false": TokFalse, "nil": TokNil,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// Pos describes a source location for diagnostics.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a diagnostic produced by the lexer, parser, or translator.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("dpl: %s: %s", e.Pos, e.Msg) }

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Pos: Pos{Line: line, Col: col}, Msg: fmt.Sprintf(format, args...)}
}
