package dpl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Opcode enumerates the VM's instructions.
type Opcode uint8

// Instruction set of the DPL stack machine.
const (
	OpConst     Opcode = iota // push Consts[A]
	OpNil                     // push nil
	OpTrue                    // push true
	OpFalse                   // push false
	OpLoadG                   // push globals[A]
	OpStoreG                  // globals[A] = pop
	OpLoadL                   // push locals[A]
	OpStoreL                  // locals[A] = pop
	OpPop                     // discard top of stack
	OpBin                     // binary op; A = TokenKind of operator
	OpEq                      // push pop2 == pop1
	OpNe                      // push pop2 != pop1
	OpNeg                     // arithmetic negate
	OpNot                     // logical negate
	OpJump                    // ip = A
	OpJumpFalse               // pop; if !truthy → ip = A
	OpJFKeep                  // if !truthy(top) → ip = A (keep top)
	OpJTKeep                  // if truthy(top) → ip = A (keep top)
	OpCall                    // call Funcs[A] with B args
	OpCallHost                // call host binding A with B args
	OpReturn                  // return pop
	OpReturnNil               // return nil
	OpIndex                   // push pop2[pop1]
	OpSetIndex                // pop3[pop2] = pop1
	OpArray                   // build array from A stack values
	OpMap                     // build map from A key/value pairs

	// Superinstructions: fused forms of the dominant pairs and triples,
	// emitted only by the generation-3 fusion pass (see
	// fuseSuperinstructions in optimize.go). They are appended after the
	// generation-1 set so every older opcode keeps its wire value.
	// Operands that carry both a pool/local index and a binary operator
	// pack them as index<<8|op (see PackIdxOp).
	OpLoadLConstBin // push locals[A] <op> Consts[idx]; B = PackIdxOp(idx, op)
	OpLoadLLoadLBin // push locals[A] <op> locals[idx]; B = PackIdxOp(idx, op)
	OpBinJumpFalse  // v = pop2 <op> pop1; if !truthy(v) → ip = A; B = op
	OpConstStoreL   // locals[B] = Consts[A]
	OpIncL          // locals[A] = locals[A] + Consts[B]
	OpDecL          // locals[A] = locals[A] - Consts[B]
)

// OpcodeVersion reports the compiler generation that introduced op.
// Receivers use it to refuse artifacts whose claimed Version predates
// opcodes they contain (a version-skew lie; see verify.Verify).
func OpcodeVersion(op Opcode) int {
	if op >= OpLoadLConstBin && op <= OpDecL {
		return 3
	}
	return 1
}

// PackIdxOp packs a constant-pool or local index together with a binary
// operator into one superinstruction operand. TokenKind fits in eight
// bits, so the index occupies the rest of the int.
func PackIdxOp(idx int, op TokenKind) int { return idx<<8 | int(op) }

// UnpackIdxOp reverses PackIdxOp.
func UnpackIdxOp(v int) (idx int, op TokenKind) { return v >> 8, TokenKind(v & 0xff) }

// Instr is one VM instruction.
type Instr struct {
	Op   Opcode
	A, B int
}

// CompiledFunc is one compiled DPL function.
type CompiledFunc struct {
	Name      string
	NumParams int
	NumLocals int
	Code      []Instr

	// maxStack is the function's operand-stack high-water mark, proved
	// by the structural verifier (checkBlock) and populated by
	// VerifyStructure. The flat-frame VM sizes activation frames as
	// NumLocals+maxStack, so it is only meaningful after EnsureStructure
	// has succeeded — exactly the precondition for running the code.
	maxStack int
}

// Compiled is an executable delegated program: the "object code" the
// paper's Translator stores in the Repository.
type Compiled struct {
	Consts      []Value
	Funcs       []*CompiledFunc
	FuncIdx     map[string]int
	GlobalNames []string
	// InitCode runs once before the entry point to evaluate global
	// initializers (it stores into globals and ends with OpReturnNil).
	InitCode []Instr
	// HostNames maps host-call indices used by the code back to
	// function names; it pins the Bindings layout the program was
	// compiled against.
	HostNames []string

	// Cached EnsureStructure outcome (see verifycode.go). Guarded by
	// vmu so concurrent DPIs sharing one Compiled verify it once.
	vmu   sync.Mutex
	vdone bool
	verr  error
	// initFn wraps InitCode as a synthetic function so the VM reuses
	// one frame descriptor (with its verified stack bound) instead of
	// building a fresh CompiledFunc per run. initMaxStack is recorded
	// by VerifyStructure alongside the per-function bounds.
	initFn       *CompiledFunc
	initMaxStack int
}

// initFunc returns the cached synthetic function wrapping InitCode, or
// nil when the program has no global initializers. Callers must have
// run EnsureStructure first: the frame size comes from the verifier.
func (c *Compiled) initFunc() *CompiledFunc {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if c.initFn == nil && len(c.InitCode) > 0 {
		c.initFn = &CompiledFunc{Name: "<init>", Code: c.InitCode, maxStack: c.initMaxStack}
	}
	return c.initFn
}

// Compile translates a checked program to bytecode. It runs Check first
// and returns its diagnostics joined, so callers get translation and
// compilation as the single Translator step the paper describes.
func Compile(prog *Program, bindings *Bindings) (*Compiled, error) {
	if errs := Check(prog, bindings); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("dpl: translation rejected:\n  %s", strings.Join(msgs, "\n  "))
	}
	c := &compiler{
		bindings: bindings,
		out: &Compiled{
			FuncIdx:   make(map[string]int),
			HostNames: bindings.NamesByIndex(),
		},
		globalIdx: make(map[string]int),
		constIdx:  make(map[Value]int),
	}
	for _, g := range prog.Globals {
		c.globalIdx[g.Name] = len(c.out.GlobalNames)
		c.out.GlobalNames = append(c.out.GlobalNames, g.Name)
	}
	// Pre-register function slots so calls can be emitted in one pass.
	for _, f := range prog.Funcs {
		c.out.FuncIdx[f.Name] = len(c.out.Funcs)
		c.out.Funcs = append(c.out.Funcs, &CompiledFunc{Name: f.Name, NumParams: len(f.Params)})
	}
	for i, f := range prog.Funcs {
		cf, err := c.compileFunc(f)
		if err != nil {
			return nil, err
		}
		c.out.Funcs[i] = cf
	}
	// Global initializers.
	fc := &funcCompiler{c: c, localIdx: map[string]int{}}
	for _, g := range prog.Globals {
		if g.Init == nil {
			fc.emit(Instr{Op: OpNil})
		} else if err := fc.expr(g.Init); err != nil {
			return nil, err
		}
		fc.emit(Instr{Op: OpStoreG, A: c.globalIdx[g.Name]})
	}
	fc.emit(Instr{Op: OpReturnNil})
	c.out.InitCode = fc.code
	return c.out, nil
}

type compiler struct {
	bindings  *Bindings
	out       *Compiled
	globalIdx map[string]int
	constIdx  map[Value]int
}

func (c *compiler) constant(v Value) int {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := len(c.out.Consts)
	c.out.Consts = append(c.out.Consts, v)
	c.constIdx[v] = i
	return i
}

type loopCtx struct {
	breakJumps []int
	contTarget int // -1 while unknown (for-loop post compiled later)
	contJumps  []int
}

type funcCompiler struct {
	c        *compiler
	code     []Instr
	localIdx map[string]int
	nLocals  int
	scopes   []map[string]int
	loops    []*loopCtx
}

func (f *funcCompiler) emit(i Instr) int {
	f.code = append(f.code, i)
	return len(f.code) - 1
}

func (f *funcCompiler) patch(at, target int) { f.code[at].A = target }

func (f *funcCompiler) pushScope() { f.scopes = append(f.scopes, map[string]int{}) }
func (f *funcCompiler) popScope() {
	top := f.scopes[len(f.scopes)-1]
	for name, idx := range top {
		// Restore any shadowed outer binding.
		delete(f.localIdx, name)
		_ = idx
	}
	f.scopes = f.scopes[:len(f.scopes)-1]
	// Rebuild visible bindings from remaining scopes.
	for _, sc := range f.scopes {
		for name, idx := range sc {
			f.localIdx[name] = idx
		}
	}
}

func (f *funcCompiler) declareLocal(name string) int {
	idx := f.nLocals
	f.nLocals++
	if len(f.scopes) > 0 {
		f.scopes[len(f.scopes)-1][name] = idx
	}
	f.localIdx[name] = idx
	return idx
}

func (c *compiler) compileFunc(fd *FuncDecl) (*CompiledFunc, error) {
	fc := &funcCompiler{c: c, localIdx: map[string]int{}}
	fc.pushScope()
	for _, p := range fd.Params {
		fc.declareLocal(p)
	}
	if err := fc.block(fd.Body); err != nil {
		return nil, err
	}
	fc.emit(Instr{Op: OpReturnNil})
	fc.popScope()
	return &CompiledFunc{
		Name:      fd.Name,
		NumParams: len(fd.Params),
		NumLocals: fc.nLocals,
		Code:      fc.code,
	}, nil
}

func (f *funcCompiler) block(b *Block) error {
	f.pushScope()
	defer f.popScope()
	for _, s := range b.Stmts {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *funcCompiler) stmt(s Stmt) error {
	switch n := s.(type) {
	case *VarDecl:
		if n.Init != nil {
			if err := f.expr(n.Init); err != nil {
				return err
			}
		} else {
			f.emit(Instr{Op: OpNil})
		}
		idx := f.declareLocal(n.Name)
		f.emit(Instr{Op: OpStoreL, A: idx})
		return nil
	case *Block:
		return f.block(n)
	case *AssignStmt:
		return f.assign(n)
	case *IfStmt:
		if err := f.expr(n.Cond); err != nil {
			return err
		}
		jf := f.emit(Instr{Op: OpJumpFalse})
		if err := f.block(n.Then); err != nil {
			return err
		}
		if n.Else == nil {
			f.patch(jf, len(f.code))
			return nil
		}
		jend := f.emit(Instr{Op: OpJump})
		f.patch(jf, len(f.code))
		if err := f.stmt(n.Else); err != nil {
			return err
		}
		f.patch(jend, len(f.code))
		return nil
	case *WhileStmt:
		top := len(f.code)
		if err := f.expr(n.Cond); err != nil {
			return err
		}
		jf := f.emit(Instr{Op: OpJumpFalse})
		lc := &loopCtx{contTarget: top}
		f.loops = append(f.loops, lc)
		if err := f.block(n.Body); err != nil {
			return err
		}
		f.loops = f.loops[:len(f.loops)-1]
		f.emit(Instr{Op: OpJump, A: top})
		end := len(f.code)
		f.patch(jf, end)
		for _, j := range lc.breakJumps {
			f.patch(j, end)
		}
		for _, j := range lc.contJumps {
			f.patch(j, top)
		}
		return nil
	case *ForStmt:
		f.pushScope()
		defer f.popScope()
		if n.Init != nil {
			if err := f.stmt(n.Init); err != nil {
				return err
			}
		}
		top := len(f.code)
		var jf int = -1
		if n.Cond != nil {
			if err := f.expr(n.Cond); err != nil {
				return err
			}
			jf = f.emit(Instr{Op: OpJumpFalse})
		}
		lc := &loopCtx{contTarget: -1}
		f.loops = append(f.loops, lc)
		if err := f.block(n.Body); err != nil {
			return err
		}
		f.loops = f.loops[:len(f.loops)-1]
		postStart := len(f.code)
		if n.Post != nil {
			if err := f.stmt(n.Post); err != nil {
				return err
			}
		}
		f.emit(Instr{Op: OpJump, A: top})
		end := len(f.code)
		if jf >= 0 {
			f.patch(jf, end)
		}
		for _, j := range lc.breakJumps {
			f.patch(j, end)
		}
		for _, j := range lc.contJumps {
			f.patch(j, postStart)
		}
		return nil
	case *BreakStmt:
		if len(f.loops) == 0 {
			return errors.New("dpl: internal: break outside loop survived checking")
		}
		lc := f.loops[len(f.loops)-1]
		lc.breakJumps = append(lc.breakJumps, f.emit(Instr{Op: OpJump}))
		return nil
	case *ContinueStmt:
		if len(f.loops) == 0 {
			return errors.New("dpl: internal: continue outside loop survived checking")
		}
		lc := f.loops[len(f.loops)-1]
		if lc.contTarget >= 0 {
			f.emit(Instr{Op: OpJump, A: lc.contTarget})
		} else {
			lc.contJumps = append(lc.contJumps, f.emit(Instr{Op: OpJump}))
		}
		return nil
	case *ReturnStmt:
		if n.Value == nil {
			f.emit(Instr{Op: OpReturnNil})
			return nil
		}
		if err := f.expr(n.Value); err != nil {
			return err
		}
		f.emit(Instr{Op: OpReturn})
		return nil
	case *ExprStmt:
		if err := f.expr(n.X); err != nil {
			return err
		}
		f.emit(Instr{Op: OpPop})
		return nil
	default:
		return fmt.Errorf("dpl: internal: unknown statement %T", s)
	}
}

func (f *funcCompiler) assign(n *AssignStmt) error {
	switch t := n.Target.(type) {
	case *Ident:
		if n.Op != TokAssign {
			// x += v  ⇒  x = x + v
			if err := f.loadIdent(t); err != nil {
				return err
			}
			if err := f.expr(n.Value); err != nil {
				return err
			}
			op := TokPlus
			if n.Op == TokMinusAssign {
				op = TokMinus
			}
			f.emit(Instr{Op: OpBin, A: int(op)})
		} else if err := f.expr(n.Value); err != nil {
			return err
		}
		if idx, ok := f.localIdx[t.Name]; ok {
			f.emit(Instr{Op: OpStoreL, A: idx})
		} else if gi, ok := f.c.globalIdx[t.Name]; ok {
			f.emit(Instr{Op: OpStoreG, A: gi})
		} else {
			return fmt.Errorf("dpl: internal: unresolved %q survived checking", t.Name)
		}
		return nil
	case *IndexExpr:
		if err := f.expr(t.X); err != nil {
			return err
		}
		if err := f.expr(t.I); err != nil {
			return err
		}
		if n.Op != TokAssign {
			return errors.New("dpl: += / -= not supported on index expressions")
		}
		if err := f.expr(n.Value); err != nil {
			return err
		}
		f.emit(Instr{Op: OpSetIndex})
		return nil
	default:
		return errors.New("dpl: internal: bad assignment target survived checking")
	}
}

func (f *funcCompiler) loadIdent(t *Ident) error {
	if idx, ok := f.localIdx[t.Name]; ok {
		f.emit(Instr{Op: OpLoadL, A: idx})
		return nil
	}
	if gi, ok := f.c.globalIdx[t.Name]; ok {
		f.emit(Instr{Op: OpLoadG, A: gi})
		return nil
	}
	return fmt.Errorf("dpl: internal: unresolved %q survived checking", t.Name)
}

func (f *funcCompiler) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		f.emit(Instr{Op: OpConst, A: f.c.constant(n.V)})
	case *FloatLit:
		f.emit(Instr{Op: OpConst, A: f.c.constant(n.V)})
	case *StringLit:
		f.emit(Instr{Op: OpConst, A: f.c.constant(n.V)})
	case *BoolLit:
		if n.V {
			f.emit(Instr{Op: OpTrue})
		} else {
			f.emit(Instr{Op: OpFalse})
		}
	case *NilLit:
		f.emit(Instr{Op: OpNil})
	case *Ident:
		return f.loadIdent(n)
	case *UnaryExpr:
		if err := f.expr(n.X); err != nil {
			return err
		}
		if n.Op == TokMinus {
			f.emit(Instr{Op: OpNeg})
		} else {
			f.emit(Instr{Op: OpNot})
		}
	case *BinaryExpr:
		switch n.Op {
		case TokAndAnd:
			if err := f.expr(n.L); err != nil {
				return err
			}
			j := f.emit(Instr{Op: OpJFKeep})
			f.emit(Instr{Op: OpPop})
			if err := f.expr(n.R); err != nil {
				return err
			}
			f.patch(j, len(f.code))
		case TokOrOr:
			if err := f.expr(n.L); err != nil {
				return err
			}
			j := f.emit(Instr{Op: OpJTKeep})
			f.emit(Instr{Op: OpPop})
			if err := f.expr(n.R); err != nil {
				return err
			}
			f.patch(j, len(f.code))
		case TokEq, TokNe:
			if err := f.expr(n.L); err != nil {
				return err
			}
			if err := f.expr(n.R); err != nil {
				return err
			}
			if n.Op == TokEq {
				f.emit(Instr{Op: OpEq})
			} else {
				f.emit(Instr{Op: OpNe})
			}
		default:
			if err := f.expr(n.L); err != nil {
				return err
			}
			if err := f.expr(n.R); err != nil {
				return err
			}
			f.emit(Instr{Op: OpBin, A: int(n.Op)})
		}
	case *IndexExpr:
		if err := f.expr(n.X); err != nil {
			return err
		}
		if err := f.expr(n.I); err != nil {
			return err
		}
		f.emit(Instr{Op: OpIndex})
	case *ArrayLit:
		for _, el := range n.Elems {
			if err := f.expr(el); err != nil {
				return err
			}
		}
		f.emit(Instr{Op: OpArray, A: len(n.Elems)})
	case *MapLit:
		for i := range n.Keys {
			if err := f.expr(n.Keys[i]); err != nil {
				return err
			}
			if err := f.expr(n.Vals[i]); err != nil {
				return err
			}
		}
		f.emit(Instr{Op: OpMap, A: len(n.Keys)})
	case *CallExpr:
		for _, a := range n.Args {
			if err := f.expr(a); err != nil {
				return err
			}
		}
		if fi, ok := f.c.out.FuncIdx[n.Name]; ok {
			f.emit(Instr{Op: OpCall, A: fi, B: len(n.Args)})
			return nil
		}
		hi, _, ok := f.c.bindings.Lookup(n.Name)
		if !ok {
			return fmt.Errorf("dpl: internal: unbound call %q survived checking", n.Name)
		}
		f.emit(Instr{Op: OpCallHost, A: hi, B: len(n.Args)})
	default:
		return fmt.Errorf("dpl: internal: unknown expression %T", e)
	}
	return nil
}

// MustCompile parses and compiles src, panicking on error. For tests
// and package-level agent constants.
func MustCompile(src string, bindings *Bindings) *Compiled {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	c, err := Compile(prog, bindings)
	if err != nil {
		panic(err)
	}
	return c
}
