package dpl

// Bytecode optimizer. The source-level analyzer (internal/dpl/analysis)
// reports constant conditions, unreachable statements and dead stores as
// diagnostics; this pass applies the same facts to the object code so
// that what ships down a delegation tree is the smallest program with
// identical semantics. Every rewrite is semantics-preserving by
// construction: folding uses the VM's own arith/compare/Truthy rules and
// refuses to fold anything that would raise a runtime error (division by
// zero, type mismatches), so errors still happen at run time exactly
// where the unoptimized program raised them.
//
// CompilerVersion stamps compiled artifacts (see program.go). It must
// be bumped whenever the instruction encoding or the optimizer's
// observable output changes shape. Generation 3 added the
// superinstruction set (OpLoadLConstBin..OpDecL).
const CompilerVersion = 3

// MinCompilerVersion is the oldest artifact generation receivers still
// accept. Generation-2 bytecode uses a strict subset of the current
// instruction set, so it loads, verifies and runs unchanged; anything
// older predates the CompiledProgram wire format entirely. verify.Verify
// enforces the [MinCompilerVersion, CompilerVersion] window and
// additionally refuses artifacts whose claimed version predates opcodes
// they contain (see OpcodeVersion).
const MinCompilerVersion = 2

// OptStats counts the rewrites one Optimize call performed.
type OptStats struct {
	// Folded counts constant expressions and constant branches
	// collapsed.
	Folded int
	// Propagated counts local-variable loads replaced by the constant
	// the local provably holds.
	Propagated int
	// DeadCode counts unreachable instructions removed.
	DeadCode int
	// DeadStores counts stores to never-read locals turned into pops.
	DeadStores int
	// Fused counts instruction pairs/triples collapsed into
	// superinstructions.
	Fused int
}

// Total returns the number of individual rewrites.
func (s OptStats) Total() int {
	return s.Folded + s.Propagated + s.DeadCode + s.DeadStores + s.Fused
}

// maxOptRounds bounds the fold/propagate/eliminate fixpoint loop. Each
// productive round strictly shrinks or simplifies the code, so the bound
// exists only as a backstop.
const maxOptRounds = 32

// Optimize rewrites c's bytecode in place — constant folding and
// propagation, constant-branch elimination, unreachable-code removal and
// dead-store elimination — and returns counts of what it did. The
// rewritten program computes exactly what the original computed,
// including runtime errors.
func Optimize(c *Compiled) OptStats {
	var st OptStats
	pool := newConstPool(c)
	c.InitCode = optimizeCode(c, pool, c.InitCode, 0, nil, &st)
	for _, fn := range c.Funcs {
		fn.Code = optimizeCode(c, pool, fn.Code, fn.NumLocals, fn, &st)
	}
	c.invalidateVerify()
	return st
}

// optimizeCode runs the pass pipeline over one code block to fixpoint,
// then fuses superinstructions as the final step (fused opcodes are
// opaque to the scalar passes, so fusing last loses nothing). fn is nil
// for the init block (which has no locals and whose global stores must
// survive: globals are observable after the run).
func optimizeCode(c *Compiled, pool *constPool, code []Instr, nLocals int, fn *CompiledFunc, st *OptStats) []Instr {
	for round := 0; round < maxOptRounds; round++ {
		changed := false
		if propagateConsts(c, pool, code, nLocals, st) {
			changed = true
		}
		var did bool
		if code, did = foldCode(c, pool, code, st); did {
			changed = true
		}
		if code, did = dropUnreachable(code, st); did {
			changed = true
		}
		if fn != nil && dropDeadStores(code, nLocals, st) {
			changed = true
		}
		if !changed {
			break
		}
	}
	code, _ = fuseSuperinstructions(code, nLocals, st)
	return code
}

// constPool interns optimizer-produced constants into c.Consts, reusing
// existing entries.
type constPool struct {
	c   *Compiled
	idx map[Value]int
}

func newConstPool(c *Compiled) *constPool {
	p := &constPool{c: c, idx: make(map[Value]int, len(c.Consts))}
	for i, v := range c.Consts {
		if _, ok := p.idx[v]; !ok {
			p.idx[v] = i
		}
	}
	return p
}

func (p *constPool) intern(v Value) int {
	if i, ok := p.idx[v]; ok {
		return i
	}
	i := len(p.c.Consts)
	p.c.Consts = append(p.c.Consts, v)
	p.idx[v] = i
	return i
}

// pushInstr returns the instruction that pushes v.
func (p *constPool) pushInstr(v Value) Instr {
	switch x := v.(type) {
	case nil:
		return Instr{Op: OpNil}
	case bool:
		if x {
			return Instr{Op: OpTrue}
		}
		return Instr{Op: OpFalse}
	default:
		return Instr{Op: OpConst, A: p.intern(v)}
	}
}

// constOf reports the value in pushes, when it pushes a known constant.
func constOf(c *Compiled, in Instr) (Value, bool) {
	switch in.Op {
	case OpConst:
		if in.A >= 0 && in.A < len(c.Consts) {
			return c.Consts[in.A], true
		}
	case OpTrue:
		return true, true
	case OpFalse:
		return false, true
	case OpNil:
		return nil, true
	}
	return nil, false
}

// isJump reports whether op transfers control via its A operand.
func isJump(op Opcode) bool {
	return op == OpJump || op == OpJumpFalse || op == OpJFKeep || op == OpJTKeep ||
		op == OpBinJumpFalse
}

// jumpTargets returns a bitmap (indexed 0..len(code)) of instruction
// positions some jump lands on. Position len(code) is the implicit
// return-nil epilogue and is always a valid target.
func jumpTargets(code []Instr) []bool {
	tgt := make([]bool, len(code)+1)
	for _, in := range code {
		if isJump(in.Op) && in.A >= 0 && in.A <= len(code) {
			tgt[in.A] = true
		}
	}
	return tgt
}

// compact removes instructions marked dead and remaps jump targets. A
// target pointing at a removed instruction moves to the next surviving
// one (removals guarantee this preserves semantics).
func compact(code []Instr, dead []bool) []Instr {
	remap := make([]int, len(code)+1)
	n := 0
	for i := range code {
		remap[i] = n
		if !dead[i] {
			n++
		}
	}
	remap[len(code)] = n
	out := make([]Instr, 0, n)
	for i, in := range code {
		if dead[i] {
			continue
		}
		if isJump(in.Op) && in.A >= 0 && in.A <= len(code) {
			in.A = remap[in.A]
		}
		out = append(out, in)
	}
	return out
}

// foldCode collapses constant expressions and constant branches. A
// pattern's interior instructions must not be jump targets — control
// entering mid-pattern would observe the intermediate stack.
func foldCode(c *Compiled, pool *constPool, code []Instr, st *OptStats) ([]Instr, bool) {
	tgt := jumpTargets(code)
	dead := make([]bool, len(code))
	changed := false
	for i := 0; i < len(code); i++ {
		if dead[i] {
			continue
		}
		// A branch to the next instruction is a no-op (modulo the pop
		// OpJumpFalse performs either way). OpBinJumpFalse is exempt:
		// its binary operation runs — and may fault — whether or not
		// the branch is taken.
		if in := code[i]; isJump(in.Op) && in.Op != OpBinJumpFalse && in.A == i+1 {
			if in.Op == OpJumpFalse {
				code[i] = Instr{Op: OpPop}
			} else {
				dead[i] = true
			}
			st.Folded++
			changed = true
			continue
		}
		k1, ok1 := constOf(c, code[i])
		if !ok1 || i+1 >= len(code) || dead[i+1] || tgt[i+1] {
			continue
		}
		next := code[i+1]
		// push K ; pop  →  (nothing)
		if next.Op == OpPop {
			dead[i], dead[i+1] = true, true
			st.Folded++
			changed = true
			continue
		}
		// push K1 ; push K2 ; binop  →  push fold(K1 op K2)
		if k2, ok2 := constOf(c, next); ok2 && i+2 < len(code) && !dead[i+2] && !tgt[i+2] {
			var (
				v      Value
				err    error
				folded bool
			)
			switch in3 := code[i+2]; in3.Op {
			case OpBin:
				op := TokenKind(in3.A)
				switch op {
				case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
					v, err = arith(op, k1, k2)
				case TokLt, TokLe, TokGt, TokGe:
					v, err = compare(op, k1, k2)
				default:
					err = rtErrf("unfoldable operator")
				}
				folded = err == nil
			case OpEq:
				v, folded = valueEqual(k1, k2), true
			case OpNe:
				v, folded = !valueEqual(k1, k2), true
			}
			if folded {
				code[i] = pool.pushInstr(v)
				dead[i+1], dead[i+2] = true, true
				st.Folded++
				changed = true
				continue
			}
		}
		// push K ; unary / constant branch
		switch next.Op {
		case OpNeg:
			switch x := k1.(type) {
			case int64:
				code[i] = pool.pushInstr(-x)
			case float64:
				code[i] = pool.pushInstr(-x)
			default:
				continue
			}
			dead[i+1] = true
			st.Folded++
			changed = true
		case OpNot:
			code[i] = pool.pushInstr(!Truthy(k1))
			dead[i+1] = true
			st.Folded++
			changed = true
		case OpJumpFalse:
			if Truthy(k1) {
				dead[i], dead[i+1] = true, true // never taken: push+branch vanish
			} else {
				code[i] = Instr{Op: OpJump, A: next.A} // always taken
				dead[i+1] = true
			}
			st.Folded++
			changed = true
		case OpJFKeep:
			if Truthy(k1) {
				dead[i+1] = true // branch never taken; the push stays
			} else {
				code[i+1] = Instr{Op: OpJump, A: next.A}
			}
			st.Folded++
			changed = true
		case OpJTKeep:
			if Truthy(k1) {
				code[i+1] = Instr{Op: OpJump, A: next.A}
			} else {
				dead[i+1] = true
			}
			st.Folded++
			changed = true
		}
	}
	if !changed {
		return code, false
	}
	return compact(code, dead), true
}

// dropUnreachable removes instructions no control path reaches.
func dropUnreachable(code []Instr, st *OptStats) ([]Instr, bool) {
	if len(code) == 0 {
		return code, false
	}
	seen := make([]bool, len(code))
	work := []int{0}
	for len(work) > 0 {
		ip := work[len(work)-1]
		work = work[:len(work)-1]
		for ip >= 0 && ip < len(code) && !seen[ip] {
			seen[ip] = true
			in := code[ip]
			switch in.Op {
			case OpJump:
				ip = in.A
				continue
			case OpJumpFalse, OpJFKeep, OpJTKeep, OpBinJumpFalse:
				if in.A >= 0 && in.A < len(code) && !seen[in.A] {
					work = append(work, in.A)
				}
			case OpReturn, OpReturnNil:
				ip = -1
				continue
			}
			ip++
		}
	}
	dead := make([]bool, len(code))
	removed := 0
	for i := range code {
		if !seen[i] {
			dead[i] = true
			removed++
		}
	}
	if removed == 0 {
		return code, false
	}
	st.DeadCode += removed
	return compact(code, dead), true
}

// dropDeadStores turns stores to locals the function never loads into
// pops. Globals are exempt: they are observable after the run.
func dropDeadStores(code []Instr, nLocals int, st *OptStats) bool {
	if nLocals == 0 {
		return false
	}
	loaded := make([]bool, nLocals)
	mark := func(i int) {
		if i >= 0 && i < nLocals {
			loaded[i] = true
		}
	}
	for _, in := range code {
		switch in.Op {
		case OpLoadL, OpLoadLConstBin, OpIncL, OpDecL:
			mark(in.A)
		case OpLoadLLoadLBin:
			mark(in.A)
			idx, _ := UnpackIdxOp(in.B)
			mark(idx)
		}
	}
	changed := false
	for i, in := range code {
		if in.Op == OpStoreL && in.A >= 0 && in.A < nLocals && !loaded[in.A] {
			code[i] = Instr{Op: OpPop}
			st.DeadStores++
			changed = true
		}
	}
	return changed
}

// absVal is a may-be-known stack or local slot value during
// propagation.
type absVal struct {
	known bool
	v     Value
}

// propagateConsts replaces loads of locals that provably hold a
// constant with a direct push. The walk tracks exact stack effects
// within each basic block and forgets everything at block leaders (jump
// targets), which makes the replacement sound: an instruction mid-block
// is only reachable through its leader, executing every intervening
// store.
func propagateConsts(c *Compiled, pool *constPool, code []Instr, nLocals int, st *OptStats) bool {
	locals := make([]absVal, nLocals)
	var stack []absVal
	tgt := jumpTargets(code)
	changed := false
	reset := func() {
		for i := range locals {
			locals[i] = absVal{}
		}
		stack = stack[:0]
	}
	pop := func(n int) bool {
		if n < 0 || len(stack) < n {
			return false
		}
		stack = stack[:len(stack)-n]
		return true
	}
	push := func(v absVal) { stack = append(stack, v) }
	for ip := 0; ip < len(code); ip++ {
		if tgt[ip] {
			reset()
		}
		in := code[ip]
		switch in.Op {
		case OpConst, OpTrue, OpFalse, OpNil:
			v, ok := constOf(c, in)
			push(absVal{known: ok, v: v})
		case OpLoadL:
			if in.A < 0 || in.A >= nLocals {
				return changed // malformed; leave for the verifier
			}
			if lv := locals[in.A]; lv.known {
				code[ip] = pool.pushInstr(lv.v)
				st.Propagated++
				changed = true
				push(lv)
			} else {
				push(absVal{})
			}
		case OpStoreL:
			if in.A < 0 || in.A >= nLocals || len(stack) == 0 {
				return changed
			}
			locals[in.A] = stack[len(stack)-1]
			pop(1)
		case OpLoadG:
			push(absVal{})
		case OpStoreG, OpPop:
			if !pop(1) {
				return changed
			}
		case OpBin, OpEq, OpNe, OpIndex:
			if !pop(2) {
				return changed
			}
			push(absVal{})
		case OpNeg, OpNot:
			if !pop(1) {
				return changed
			}
			push(absVal{})
		case OpJump, OpReturn, OpReturnNil:
			reset()
		case OpJumpFalse:
			if !pop(1) {
				return changed
			}
		case OpJFKeep, OpJTKeep:
			if len(stack) == 0 {
				return changed
			}
			// The kept top survives, but its value is branch-dependent
			// at the join; treat it as unknown from here on.
			stack[len(stack)-1] = absVal{}
		case OpCall, OpCallHost:
			// Callees cannot touch this frame's locals.
			if !pop(in.B) {
				return changed
			}
			push(absVal{})
		case OpSetIndex:
			if !pop(3) {
				return changed
			}
		case OpArray:
			if !pop(in.A) {
				return changed
			}
			push(absVal{})
		case OpMap:
			if in.A < 0 || !pop(2*in.A) {
				return changed
			}
			push(absVal{})
		default:
			return changed
		}
	}
	return changed
}

// fusePatterns documents the superinstruction set for the curious
// reader of listings; the authoritative matcher is below.
//
//	LOADL a; CONST k; BIN ±; STOREL a  →  INCL/DECL a, k
//	LOADL a; CONST k; BIN op           →  LLCB a, k, op
//	LOADL a; LOADL b; BIN op           →  LLLB a, b, op
//	BIN op; JF t                       →  BJF op, t
//	CONST k; STOREL l                  →  KSTL k, l
//
// fuseSuperinstructions rewrites those patterns in place (generation 3;
// see CompilerVersion). It runs after the scalar passes reach fixpoint:
// fused opcodes are opaque to propagation and folding, so fusing last
// keeps the scalar passes maximally effective. Matching is longest-first
// at each position, and a pattern's interior instructions must not be
// jump targets — control entering mid-pattern would observe the
// unfused intermediate stack. Only plain OpConst operands fuse (the
// nil/true/false pushes have no pool index to pack).
func fuseSuperinstructions(code []Instr, nLocals int, st *OptStats) ([]Instr, bool) {
	tgt := jumpTargets(code)
	dead := make([]bool, len(code))
	changed := false
	localOK := func(i int) bool { return i >= 0 && i < nLocals }
	binOp := func(in Instr) (TokenKind, bool) {
		if in.Op != OpBin {
			return 0, false
		}
		op := TokenKind(in.A)
		return op, binOps[op]
	}
	for i := 0; i < len(code); i++ {
		if dead[i] {
			continue
		}
		in := code[i]
		// LOADL a; CONST k; BIN ±; STOREL a → INCL/DECL a, k
		if in.Op == OpLoadL && localOK(in.A) && i+3 < len(code) &&
			!tgt[i+1] && !tgt[i+2] && !tgt[i+3] &&
			code[i+1].Op == OpConst && code[i+1].A >= 0 &&
			code[i+3].Op == OpStoreL && code[i+3].A == in.A {
			if op, ok := binOp(code[i+2]); ok && (op == TokPlus || op == TokMinus) {
				fused := OpIncL
				if op == TokMinus {
					fused = OpDecL
				}
				code[i] = Instr{Op: fused, A: in.A, B: code[i+1].A}
				dead[i+1], dead[i+2], dead[i+3] = true, true, true
				st.Fused++
				changed = true
				i += 3
				continue
			}
		}
		// LOADL a; CONST k; BIN op → LLCB and LOADL a; LOADL b; BIN op → LLLB
		if in.Op == OpLoadL && localOK(in.A) && i+2 < len(code) && !tgt[i+1] && !tgt[i+2] {
			if op, ok := binOp(code[i+2]); ok {
				switch mid := code[i+1]; {
				case mid.Op == OpConst && mid.A >= 0:
					code[i] = Instr{Op: OpLoadLConstBin, A: in.A, B: PackIdxOp(mid.A, op)}
				case mid.Op == OpLoadL && localOK(mid.A):
					code[i] = Instr{Op: OpLoadLLoadLBin, A: in.A, B: PackIdxOp(mid.A, op)}
				default:
					goto pair
				}
				dead[i+1], dead[i+2] = true, true
				st.Fused++
				changed = true
				i += 2
				continue
			}
		}
	pair:
		// BIN op; JF t → BJF op, t
		if op, ok := binOp(in); ok && i+1 < len(code) && !tgt[i+1] && code[i+1].Op == OpJumpFalse {
			code[i] = Instr{Op: OpBinJumpFalse, A: code[i+1].A, B: int(op)}
			dead[i+1] = true
			st.Fused++
			changed = true
			i++
			continue
		}
		// CONST k; STOREL l → KSTL k, l
		if in.Op == OpConst && in.A >= 0 && i+1 < len(code) && !tgt[i+1] &&
			code[i+1].Op == OpStoreL && localOK(code[i+1].A) {
			code[i] = Instr{Op: OpConstStoreL, A: in.A, B: code[i+1].A}
			dead[i+1] = true
			st.Fused++
			changed = true
			i++
			continue
		}
	}
	if !changed {
		return code, false
	}
	return compact(code, dead), true
}
