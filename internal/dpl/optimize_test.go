package dpl

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func compileSrc(t *testing.T, src string, b *Bindings) *Compiled {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	c, err := Compile(prog, b)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return c
}

func codeSize(c *Compiled) int {
	n := len(c.InitCode)
	for _, fn := range c.Funcs {
		n += len(fn.Code)
	}
	return n
}

// TestOptimizerPreservesSemantics is the optimizer's core property
// test: across hundreds of random programs, the optimized bytecode must
// produce exactly the result (value or error) of the unoptimized
// compile, and must still pass structural verification.
func TestOptimizerPreservesSemantics(t *testing.T) {
	b := Std()
	g := &progGen{r: rand.New(rand.NewSource(99))}
	for i := 0; i < 400; i++ {
		src := g.generate()
		raw := compileSrc(t, src, b)
		opt := compileSrc(t, src, b)
		st := Optimize(opt)
		if faults := opt.VerifyStructure(); len(faults) > 0 {
			t.Fatalf("optimized program %d fails verification: %v\n%s\n%s", i, faults[0], src, Disassemble(opt))
		}
		if codeSize(opt) > codeSize(raw) {
			t.Fatalf("optimizer grew program %d (%d -> %d instrs)", i, codeSize(raw), codeSize(opt))
		}
		rawVal, rawErr := NewVM(raw, b, WithMaxSteps(2_000_000)).Run(context.Background(), "main")
		optVal, optErr := NewVM(opt, b, WithMaxSteps(2_000_000)).Run(context.Background(), "main")
		if (rawErr == nil) != (optErr == nil) {
			t.Fatalf("optimizer changed error outcome for program %d (stats %+v):\nraw: %v\nopt: %v\n%s", i, st, rawErr, optErr, src)
		}
		if rawErr != nil && rawErr.Error() != optErr.Error() {
			t.Fatalf("optimizer changed error for program %d:\nraw: %v\nopt: %v\n%s", i, rawErr, optErr, src)
		}
		if rawErr == nil && !valueEqual(rawVal, optVal) {
			t.Fatalf("optimizer changed result for program %d: raw=%v opt=%v\n%s", i, rawVal, optVal, src)
		}
	}
}

func TestOptimizerRewrites(t *testing.T) {
	b := Std()
	cases := []struct {
		name    string
		src     string
		want    Value
		maxMain int // upper bound on main's instruction count after optimizing
	}{
		{"const fold", `func main() { return 1 + 2 * 3; }`, int64(7), 2},
		{"const branch", `func main() { if (true) { return 1; } return 2; }`, int64(1), 2},
		{"dead store", `func main() { var x = 5; return 1; }`, int64(1), 2},
		{"dead loop", `func main() { var n = 0; while (false) { n += 1; } return n; }`, int64(0), 2},
		{"propagation", `func main() { var x = 4; return x * x; }`, int64(16), 2},
		{"logic fold", `func main() { return true && 3 < 5; }`, true, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compileSrc(t, tc.src, b)
			st := Optimize(c)
			if st.Total() == 0 {
				t.Fatalf("optimizer did nothing:\n%s", Disassemble(c))
			}
			main := c.Funcs[c.FuncIdx["main"]]
			if len(main.Code) > tc.maxMain {
				t.Errorf("main still has %d instrs (want <= %d):\n%s", len(main.Code), tc.maxMain, Disassemble(c))
			}
			got, err := NewVM(c, b).Run(context.Background(), "main")
			if err != nil {
				t.Fatal(err)
			}
			if !valueEqual(got, tc.want) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// TestOptimizerKeepsRuntimeErrors: folding must not evaluate
// expressions whose evaluation faults — the error belongs to run time.
func TestOptimizerKeepsRuntimeErrors(t *testing.T) {
	b := Std()
	for _, src := range []string{
		`func main() { return 1 / 0; }`,
		`func main() { return 5 % 0; }`,
		`func main() { return -"s"; }`,
		`func main() { return 1 + "s"; }`,
		`func main() { return "a" < 1; }`,
	} {
		c := compileSrc(t, src, b)
		Optimize(c)
		if _, err := NewVM(c, b).Run(context.Background(), "main"); err == nil {
			t.Errorf("optimized %q lost its runtime error", src)
		}
	}
}

// TestOptimizerKeepsGlobals: global stores are observable after the run
// and must survive even when never read inside the program.
func TestOptimizerKeepsGlobals(t *testing.T) {
	b := Std()
	c := compileSrc(t, `var g = 2 + 3; func main() { return 0; }`, b)
	Optimize(c)
	vm := NewVM(c, b)
	if _, err := vm.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if v, ok := vm.Global("g"); !ok || !valueEqual(v, int64(5)) {
		t.Fatalf("global g = %v after optimized run, want 5", v)
	}
}

func TestVerifyStructureFaults(t *testing.T) {
	fn := func(code ...Instr) *Compiled {
		return &Compiled{
			FuncIdx: map[string]int{"main": 0},
			Funcs:   []*CompiledFunc{{Name: "main", Code: code}},
		}
	}
	cases := []struct {
		name string
		c    *Compiled
		kind FaultKind
	}{
		{"const oob", fn(Instr{Op: OpConst, A: 3}, Instr{Op: OpReturn}), FaultOperand},
		{"global oob", fn(Instr{Op: OpLoadG, A: 0}, Instr{Op: OpReturn}), FaultOperand},
		{"local oob", fn(Instr{Op: OpLoadL, A: 2}, Instr{Op: OpReturn}), FaultOperand},
		{"jump oob", fn(Instr{Op: OpJump, A: 9}), FaultJump},
		{"negative jump", fn(Instr{Op: OpNil}, Instr{Op: OpJumpFalse, A: -1}, Instr{Op: OpReturnNil}), FaultJump},
		{"underflow", fn(Instr{Op: OpPop}, Instr{Op: OpReturnNil}), FaultStack},
		{"return empty", fn(Instr{Op: OpReturn}), FaultStack},
		{"bad opcode", fn(Instr{Op: Opcode(99)}), FaultOpcode},
		{"bad bin op", fn(Instr{Op: OpNil}, Instr{Op: OpNil}, Instr{Op: OpBin, A: int(TokAssign)}, Instr{Op: OpReturn}), FaultOperand},
		{"bad call", fn(Instr{Op: OpCall, A: 5, B: 0}, Instr{Op: OpReturn}), FaultOperand},
		{"bad host", fn(Instr{Op: OpCallHost, A: 0, B: 0}, Instr{Op: OpReturn}), FaultOperand},
		{"bad frame", &Compiled{
			FuncIdx: map[string]int{"main": 0},
			Funcs:   []*CompiledFunc{{Name: "main", NumParams: 2, NumLocals: 1, Code: []Instr{{Op: OpReturnNil}}}},
		}, FaultOperand},
		{"depth mismatch at join", fn(
			// Path A pushes one value before the join, path B pushes none.
			Instr{Op: OpNil},
			Instr{Op: OpJumpFalse, A: 3},
			Instr{Op: OpNil},
			Instr{Op: OpReturnNil},
		), FaultStack},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := tc.c.VerifyStructure()
			if len(faults) == 0 {
				t.Fatal("no faults reported")
			}
			found := false
			for _, f := range faults {
				if f.Kind == tc.kind {
					found = true
				}
			}
			if !found {
				t.Errorf("no %v fault among %v", tc.kind, faults)
			}
			// The VM must refuse to run what the verifier rejects.
			if _, err := NewVM(tc.c, NewBindings()).Run(context.Background(), "main"); err == nil {
				t.Error("VM ran a structurally invalid program")
			} else if !strings.Contains(err.Error(), "structurally invalid") {
				t.Errorf("unexpected refusal error: %v", err)
			}
		})
	}
}

// TestVerifyStructureAcceptsCompilerOutput: everything the compiler
// emits must pass, optimized or not.
func TestVerifyStructureAcceptsCompilerOutput(t *testing.T) {
	b := Std()
	g := &progGen{r: rand.New(rand.NewSource(7))}
	for i := 0; i < 50; i++ {
		c := compileSrc(t, g.generate(), b)
		if faults := c.VerifyStructure(); len(faults) > 0 {
			t.Fatalf("compiler output rejected: %v", faults[0])
		}
		Optimize(c)
		if faults := c.VerifyStructure(); len(faults) > 0 {
			t.Fatalf("optimizer output rejected: %v", faults[0])
		}
	}
}

// TestFuseSuperinstructions pins the generation-3 fusion rewrites: each
// dominant pattern collapses to its fused opcode, the fused program
// still verifies, runs to the same value, and survives the
// disassemble/assemble round trip. The semantic property test above
// covers fusion across random programs; this test pins which opcode
// each shape becomes.
func TestFuseSuperinstructions(t *testing.T) {
	b := Std()
	cases := []struct {
		name string
		src  string
		op   Opcode // fused opcode that must appear in main
		want Value
	}{
		{
			"local-const arithmetic", `func main(n) { return n * 3 + n; }`,
			OpLoadLConstBin, nil,
		},
		{
			"local-local arithmetic", `func main(a, b) { return a - b; }`,
			OpLoadLLoadLBin, nil,
		},
		{
			// The comparison's left operand is itself fused (LLCB), so
			// the trailing BIN '>' has no LoadL/Const prefix to join and
			// pairs with the JF instead. A plain `n > 0` condition fuses
			// into LLCB first — longest-match wins — and never leaves a
			// bare BIN;JF.
			"compare-and-branch",
			`func main() { var n = len("abcdefghi"); while (n - 1 > 0) { n -= 2; } return n; }`,
			OpBinJumpFalse, int64(1),
		},
		{
			"increment",
			`func main() { var i = 0; var acc = 0; while (i < 5) { i += 1; acc = i; } return acc; }`,
			OpIncL, int64(5),
		},
		{
			"decrement",
			`func main() { var i = 6; while (i > 0) { i -= 2; } return i; }`,
			OpDecL, int64(0),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compileSrc(t, tc.src, b)
			st := Optimize(c)
			if st.Fused == 0 {
				t.Fatalf("no fusions recorded (stats %+v):\n%s", st, Disassemble(c))
			}
			main := c.Funcs[c.FuncIdx["main"]]
			found := false
			for _, in := range main.Code {
				if in.Op == tc.op {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s in main:\n%s", tc.op, Disassemble(c))
			}
			if faults := c.VerifyStructure(); len(faults) > 0 {
				t.Fatalf("fused program fails verification: %v", faults[0])
			}
			if tc.want != nil {
				got, err := NewVM(c, b).Run(context.Background(), "main")
				if err != nil {
					t.Fatal(err)
				}
				if !valueEqual(got, tc.want) {
					t.Errorf("got %v, want %v", got, tc.want)
				}
			}
			// The listing round trip must survive fused opcodes.
			listing := Disassemble(c)
			back, err := Assemble(listing)
			if err != nil {
				t.Fatalf("assemble fused listing: %v\n%s", err, listing)
			}
			if got := Disassemble(back); got != listing {
				t.Errorf("round trip diverged:\n-- first --\n%s\n-- second --\n%s", listing, got)
			}
		})
	}
}

// TestFusionSkipsJumpTargets: an instruction pattern whose interior is
// a jump target must not fuse — the branch would land mid-pattern.
func TestFusionSkipsJumpTargets(t *testing.T) {
	b := Std()
	// while-loop conditions jump back to the comparison head; the
	// optimizer must still produce correct code (covered by the
	// semantics test) and every fused jump target must land on an
	// instruction boundary that exists.
	src := `func main() {
		var i = 0;
		var acc = 0;
		while (i < 8) {
			if (i % 2 == 0) { acc += i; }
			i += 1;
		}
		return acc;
	}`
	c := compileSrc(t, src, b)
	Optimize(c)
	if faults := c.VerifyStructure(); len(faults) > 0 {
		t.Fatalf("fused loop fails verification: %v\n%s", faults[0], Disassemble(c))
	}
	got, err := NewVM(c, b).Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if !valueEqual(got, int64(12)) {
		t.Errorf("got %v, want 12", got)
	}
}
