package dpl

import (
	"context"
	"testing"
)

func sampleProgram(t *testing.T) *CompiledProgram {
	t.Helper()
	src := `var limit = 2.5;
	func main() {
		var a = [1, 2, 3];
		var s = 0;
		for (var i = 0; i < len(a); i += 1) { s += a[i]; }
		if (float(s) > limit && s != 0) { return "over"; }
		return s % 4;
	}`
	c := compileSrc(t, src, Std())
	Optimize(c)
	return &CompiledProgram{
		Version:    CompilerVersion,
		SourceHash: HashSource(src),
		Verdict: Verdict{
			Hosts:      []string{"len", "float"},
			Reads:      []string{"1.3.6.1"},
			Writes:     nil,
			CostSteps:  240,
			StepBudget: 1984,
		},
		Object: c,
	}
}

func TestProgramCodecRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	blob, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Version != p.Version || q.SourceHash != p.SourceHash {
		t.Fatalf("header mismatch: %d/%x vs %d/%x", q.Version, q.SourceHash, p.Version, p.SourceHash)
	}
	v, w := q.Verdict, p.Verdict
	if len(v.Hosts) != len(w.Hosts) || len(v.Reads) != len(w.Reads) || len(v.Writes) != len(w.Writes) ||
		v.CostSteps != w.CostSteps || v.CostUnbounded != w.CostUnbounded || v.StepBudget != w.StepBudget {
		t.Fatalf("verdict mismatch: %+v vs %+v", v, w)
	}
	if Disassemble(q.Object) != Disassemble(p.Object) {
		t.Fatalf("object code mismatch:\n%s\nvs\n%s", Disassemble(q.Object), Disassemble(p.Object))
	}
	// The decoded object must run identically.
	b := Std()
	want, err := NewVM(p.Object, b).Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewVM(q.Object, b).Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if !valueEqual(got, want) {
		t.Fatalf("decoded program computes %v, original %v", got, want)
	}
}

func TestDecodeProgramRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{0x01},
		{0x30, 0x00},
		[]byte("not ber at all"),
	} {
		if _, err := DecodeProgram(b); err == nil {
			t.Errorf("DecodeProgram(%x) succeeded, want error", b)
		}
	}
	// A valid encoding with a corrupted frame count must be refused at
	// decode time (the VM would allocate NumLocals slots on trust).
	p := sampleProgram(t)
	p.Object.Funcs[0].NumLocals = maxProgLocals + 1
	blob, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProgram(blob); err == nil {
		t.Error("oversized NumLocals survived decoding")
	}
}
