package dpl

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen emits random but well-formed DPL programs. Division and
// modulo right operands are generated as (expr % K + K + 1) so both
// engines see identical, nonzero denominators; everything else is
// unconstrained within the generated type discipline (int expressions
// only, plus bool contexts), so any divergence between the VM and the
// reference interpreter is a real semantics bug.
type progGen struct {
	r        *rand.Rand
	vars     []string // readable variables
	writable []string // assignable variables (excludes loop counters)
	b        strings.Builder
	depth    int
}

func (g *progGen) intExpr() string {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 4 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0, 1:
		return g.leaf()
	case 2:
		return fmt.Sprintf("(%s + %s)", g.intExpr(), g.intExpr())
	case 3:
		return fmt.Sprintf("(%s - %s)", g.intExpr(), g.intExpr())
	case 4:
		return fmt.Sprintf("(%s * %s)", g.leaf(), g.leaf())
	case 5:
		return fmt.Sprintf("(%s / (%s %% 7 + 8))", g.intExpr(), g.intExpr())
	case 6:
		return fmt.Sprintf("(%s %% (%s %% 5 + 6))", g.intExpr(), g.intExpr())
	default:
		return fmt.Sprintf("-(%s)", g.intExpr())
	}
}

func (g *progGen) leaf() string {
	if len(g.vars) > 0 && g.r.Intn(2) == 0 {
		return g.vars[g.r.Intn(len(g.vars))]
	}
	return fmt.Sprintf("%d", g.r.Intn(201)-100)
}

func (g *progGen) boolExpr() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	e := fmt.Sprintf("(%s %s %s)", g.intExpr(), ops[g.r.Intn(len(ops))], g.intExpr())
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s && %s)", e, g.boolExprShallow())
	case 1:
		return fmt.Sprintf("(%s || %s)", e, g.boolExprShallow())
	case 2:
		return "!" + e
	default:
		return e
	}
}

func (g *progGen) boolExprShallow() string {
	ops := []string{"<", ">", "=="}
	return fmt.Sprintf("(%s %s %s)", g.leaf(), ops[g.r.Intn(len(ops))], g.leaf())
}

func (g *progGen) stmt(indent int) {
	pad := strings.Repeat("\t", indent)
	switch g.r.Intn(10) {
	case 0, 1, 2:
		name := fmt.Sprintf("v%d", len(g.vars))
		fmt.Fprintf(&g.b, "%svar %s = %s;\n", pad, name, g.intExpr())
		g.vars = append(g.vars, name)
		g.writable = append(g.writable, name)
	case 3, 4:
		if len(g.writable) == 0 {
			g.stmt(indent)
			return
		}
		v := g.writable[g.r.Intn(len(g.writable))]
		op := []string{"=", "+=", "-="}[g.r.Intn(3)]
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", pad, v, op, g.intExpr())
	case 5, 6:
		fmt.Fprintf(&g.b, "%sif (%s) {\n", pad, g.boolExpr())
		g.block(indent+1, 2)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", pad)
			g.block(indent+1, 2)
		}
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case 7:
		// Bounded counting loop over a fresh variable.
		name := fmt.Sprintf("i%d", len(g.vars))
		n := 1 + g.r.Intn(8)
		fmt.Fprintf(&g.b, "%sfor (var %s = 0; %s < %d; %s += 1) {\n", pad, name, name, n, name)
		g.vars = append(g.vars, name)
		g.block(indent+1, 2)
		g.vars = g.vars[:len(g.vars)-1]
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case 8:
		if len(g.writable) == 0 {
			g.stmt(indent)
			return
		}
		// Accumulate through a helper call.
		fmt.Fprintf(&g.b, "%s%s = twice(%s);\n", pad, g.writable[g.r.Intn(len(g.writable))], g.intExpr())
	default:
		fmt.Fprintf(&g.b, "%sacc += %s;\n", pad, g.intExpr())
	}
}

func (g *progGen) block(indent, maxStmts int) {
	n := 1 + g.r.Intn(maxStmts)
	savedVars, savedWritable := len(g.vars), len(g.writable)
	for i := 0; i < n; i++ {
		if g.depth > 6 {
			fmt.Fprintf(&g.b, "%sacc += 1;\n", strings.Repeat("\t", indent))
			continue
		}
		g.stmt(indent)
	}
	g.vars = g.vars[:savedVars]
	g.writable = g.writable[:savedWritable]
}

func (g *progGen) generate() string {
	g.b.Reset()
	g.vars = nil
	g.writable = nil
	g.b.WriteString("var acc = 0;\n")
	g.b.WriteString("func twice(x) { return x * 2; }\n")
	g.b.WriteString("func main() {\n")
	g.vars = append(g.vars, "acc")
	g.writable = append(g.writable, "acc")
	nStmts := 2 + g.r.Intn(8)
	for i := 0; i < nStmts; i++ {
		g.stmt(1)
	}
	g.b.WriteString("\treturn acc;\n}\n")
	return g.b.String()
}

// TestVMMatchesInterpreter is the package's core property test: for
// hundreds of random programs, the bytecode VM and the reference
// tree-walking interpreter must produce identical results (value or
// error alike).
func TestVMMatchesInterpreter(t *testing.T) {
	b := Std()
	g := &progGen{r: rand.New(rand.NewSource(99))}
	for i := 0; i < 400; i++ {
		src := g.generate()
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse:\n%s\n%v", src, err)
		}
		compiled, err := Compile(prog, b)
		if err != nil {
			t.Fatalf("generated program does not compile:\n%s\n%v", src, err)
		}
		vm := NewVM(compiled, b, WithMaxSteps(2_000_000))
		vmVal, vmErr := vm.Run(context.Background(), "main")

		it, err := NewInterp(prog, b)
		if err != nil {
			t.Fatalf("interp setup: %v", err)
		}
		itVal, itErr := it.Run(context.Background(), "main")

		if (vmErr == nil) != (itErr == nil) {
			t.Fatalf("engines disagree on error for program %d:\nVM: %v\nInterp: %v\n%s", i, vmErr, itErr, src)
		}
		if vmErr == nil && !valueEqual(vmVal, itVal) {
			t.Fatalf("engines disagree for program %d: VM=%v Interp=%v\n%s", i, vmVal, itVal, src)
		}
	}
}

// TestInterpreterFeatureParity spot-checks the interpreter on the same
// feature matrix the VM tests use.
func TestInterpreterFeatureParity(t *testing.T) {
	srcs := []struct {
		src  string
		want Value
	}{
		{`func main() { var a = [1,2]; a[0] = 5; return a[0] + a[1]; }`, int64(7)},
		{`func main() { var m = {"k": 2}; m["j"] = 3; return m["k"] * m["j"]; }`, int64(6)},
		{`func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(10); }`, int64(55)},
		{`var g = 5; func main() { g += 1; return g; }`, int64(6)},
		{`func main() { var s = 0; while (s < 10) { s += 3; } return s; }`, int64(12)},
		{`func main() { var s = 0; for (var i = 0; i < 5; i += 1) { if (i == 3) { continue; } s += i; } return s; }`, int64(7)},
		{`func main() { return str(len("abc")) + sprintf("%d", 2); }`, "32"},
		{`func main() { var x = 1; { var x = 2; } return x; }`, int64(1)},
	}
	b := Std()
	for _, c := range srcs {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewInterp(prog, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := it.Run(context.Background(), "main")
		if err != nil {
			t.Fatalf("interp(%q): %v", c.src, err)
		}
		if !valueEqual(got, c.want) {
			t.Errorf("interp(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestInterpreterErrors(t *testing.T) {
	b := Std()
	cases := []string{
		`func main() { return 1 / 0; }`,
		`func main() { var a = [1]; return a[9]; }`,
		`func main() { unbound(); }`,
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewInterp(prog, b)
		if err != nil {
			continue // translation rejection is also acceptable
		}
		if _, err := it.Run(context.Background(), "main"); err == nil {
			t.Errorf("interp(%q) succeeded, want error", src)
		}
	}
}
