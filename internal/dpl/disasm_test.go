package dpl

import (
	"regexp"
	"strings"
	"testing"
)

// collapse normalizes runs of spaces so tests can match mnemonics
// without depending on column padding.
func collapse(s string) string {
	return regexp.MustCompile(` +`).ReplaceAllString(s, " ")
}

func TestDisassembleListsEverything(t *testing.T) {
	b := Std()
	b.Register("mibGet", 1, func(*Env, []Value) (Value, error) { return int64(0), nil })
	c := MustCompile(`
var threshold = 0.8;
func check(u) { return u > threshold; }
func main() {
	var v = mibGet("1.3.6.1.2.1.1.3.0");
	if (check(float(v))) { return "hot"; } else { return "ok"; }
}`, b)
	out := collapse(Disassemble(c))
	for _, want := range []string{
		"globals: threshold",
		"init:",
		"func check (params=1 locals=1):",
		"func main (params=0 locals=1):",
		"CALLH mibGet/1",
		"CALLH float/1",
		"CALL check/1",
		`CONST "hot"`,
		"CONST 0.8",
		"STOREG threshold",
		"LOADG threshold",
		"JF",
		"RET",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, out)
		}
	}
}

func TestDisassembleHostNameIndexOrder(t *testing.T) {
	// Host call operands are registration indices, not sorted-name
	// positions; the listing must use the same order.
	b := NewBindings()
	b.Register("zzz", 0, func(*Env, []Value) (Value, error) { return nil, nil })
	b.Register("aaa", 0, func(*Env, []Value) (Value, error) { return nil, nil })
	c := MustCompile(`func main() { zzz(); aaa(); }`, b)
	out := collapse(Disassemble(c))
	zi := strings.Index(out, "CALLH zzz/0")
	ai := strings.Index(out, "CALLH aaa/0")
	if zi < 0 || ai < 0 || zi > ai {
		t.Fatalf("host call order wrong:\n%s", out)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpConst.String() != "CONST" || OpCallHost.String() != "CALLH" {
		t.Error("opcode names wrong")
	}
	if Opcode(200).String() != "OP(200)" {
		t.Error("unknown opcode unnamed")
	}
}
