// Package macro is the macro-scale scenario harness: one simulated
// management domain exercising health functions, the intrusion
// detector, continuously-materialized VDL views, and the federation
// rollup *concurrently*, at up to a thousand stations.
//
// Where the numbered experiments (internal/experiments) isolate one
// mechanism each, this harness composes them the way a production
// deployment would and reports the composite economics:
//
//   - every station runs a delegated health agent (report-on-exception)
//     and the tcpConnTable intrusion watcher as real DPL bytecode over
//     its own MIB;
//   - alarm and detection reports feed a federation rollup at the
//     manager, whose change events drive incremental refresh of a
//     fleet-wide VDL view;
//   - a gateway station keeps two more views (a join over
//     ipRouteTable⋈ifTable and a selection over tcpConnTable)
//     continuously materialized through mib.Tree change capture,
//     folding O(delta) work per write instead of rescanning;
//   - a second run of the identical workload is managed centrally:
//     the manager polls every station's health counters and connection
//     table over SNMP each period.
//
// The emitted metrics — view staleness p99 in virtual time, management
// bytes under delegation vs. centralized polling, and deltas folded per
// virtual second — form the BENCH_macro.json trajectory tracked across
// revisions.
package macro

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"mbd/internal/federation"
	"mbd/internal/health"
	"mbd/internal/intrusion"
	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
	"mbd/internal/vdl/incr"
)

// Config parameterizes one macro run. The zero value is the full-scale
// scenario (1000 stations, 4 virtual minutes).
type Config struct {
	// Stations is the number of managed network elements (default 1000).
	Stations int
	// Horizon is the simulated interval (default 4 minutes).
	Horizon time.Duration
	// EvalEvery is the health evaluation / centralized poll period
	// (default 10 s).
	EvalEvery time.Duration
	// SampleEvery is the intrusion watcher sampling period (default 5 s).
	SampleEvery time.Duration
	// ViewEvery is the manager's view refresh period (default 1 s).
	ViewEvery time.Duration
	// SessionsPerStation sizes the TCP connection replay (default 8).
	SessionsPerStation int
	// RouteFlapEvery is the per-station route flap period (default 30 s).
	RouteFlapEvery time.Duration
	Seed           int64
}

func (c *Config) defaults() {
	if c.Stations <= 0 {
		c.Stations = 1000
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Minute
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 10 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Second
	}
	if c.ViewEvery <= 0 {
		c.ViewEvery = time.Second
	}
	if c.SessionsPerStation <= 0 {
		c.SessionsPerStation = 8
	}
	if c.RouteFlapEvery <= 0 {
		c.RouteFlapEvery = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is one trajectory point.
type Result struct {
	Stations  int   `json:"stations"`
	HorizonMS int64 `json:"horizon_ms"`
	WallMS    int64 `json:"wall_ms"`

	// Incremental view maintenance (gateway + fleet views combined).
	DeltasFolded   uint64  `json:"deltas_folded"`
	DeltasPerVSec  float64 `json:"deltas_per_vsec"`
	ViewRecomputes uint64  `json:"view_recomputes"`
	ChangesLost    uint64  `json:"changes_lost"`
	ViewRefreshes  int     `json:"view_refreshes"`

	// Freshness: virtual-time lag between a base mutation (or rollup
	// arrival) and the first refreshed query that reflects it.
	StalenessP50MS float64 `json:"view_staleness_p50_ms"`
	StalenessP99MS float64 `json:"view_staleness_p99_ms"`

	// Management-network economics for the same information need.
	DelegatedBytes   uint64  `json:"delegated_bytes"`
	CentralizedBytes uint64  `json:"centralized_bytes"`
	ByteGain         float64 `json:"byte_gain"`
	CentralCycleMS   float64 `json:"central_cycle_ms"`

	// Scenario activity.
	HealthAlarms        int `json:"health_alarms"`
	IntrusionDetections int `json:"intrusion_detections"`
	FleetRollupKeys     int `json:"fleet_rollup_keys"`
}

// replay schedules the deterministic per-station workload — connection
// churn (intrusion.Generate, so a fraction matches the detection rule),
// route flaps, and load episodes — onto sim. onMutate, when non-nil, is
// invoked at each mutation's virtual time (used to timestamp
// gateway-tree changes for staleness sampling).
func replay(sim *netsim.Sim, st *netsim.Station, i int, cfg Config, onMutate func()) {
	note := func(fn func()) func() {
		if onMutate == nil {
			return fn
		}
		return func() { fn(); onMutate() }
	}

	// Two stable routes plus one flapping route per station.
	dst := byte(1 + i%250)
	st.Dev.AddRoute([4]byte{10, 1, dst, 0}, 1, 1, [4]byte{10, 0, 0, 254})
	st.Dev.AddRoute([4]byte{10, 2, dst, 0}, 2, 3, [4]byte{10, 0, 0, 253})
	flap := [4]byte{172, 16, dst, 0}
	up := false
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		if at >= cfg.Horizon {
			return
		}
		sim.At(at, note(func() {
			if up {
				st.Dev.DelRoute(flap)
			} else {
				st.Dev.AddRoute(flap, 1+uint32(i%2), 5, [4]byte{10, 0, 0, 252})
			}
			up = !up
			tick(at + cfg.RouteFlapEvery)
		}))
	}
	// Stagger flaps so the domain doesn't mutate in lockstep.
	tick(time.Duration(i%17) * cfg.RouteFlapEvery / 17)

	// Connection replay: sessions open and close at their labeled times.
	sessions := intrusion.Generate(intrusion.WorkloadConfig{
		Seed:    cfg.Seed*100_000 + int64(i),
		Horizon: cfg.Horizon, Sessions: cfg.SessionsPerStation,
	})
	for _, s := range sessions {
		conn := s.Conn
		sim.At(s.Open, note(func() { st.Dev.OpenConn(conn) }))
		sim.At(s.Close, note(func() { st.Dev.CloseConn(conn) }))
	}

	// Load: nominal everywhere, a broadcast storm on every third
	// station through the middle fifth of the run (E2's episode shape).
	if i%3 == 0 {
		sim.At(cfg.Horizon*2/5, func() {
			st.Dev.SetLoad(mib.LoadProfile{Utilization: 0.8, BroadcastFraction: 0.45, ErrorRate: 0.02, CollisionRate: 0.1})
		})
		sim.At(cfg.Horizon*3/5, func() {
			st.Dev.SetLoad(mib.LoadProfile{Utilization: 0.3, BroadcastFraction: 0.04, ErrorRate: 0.003, CollisionRate: 0.02})
		})
	}
}

func makeStations(sim *netsim.Sim, cfg Config) ([]*netsim.Station, error) {
	stations := make([]*netsim.Station, cfg.Stations)
	for i := range stations {
		st, err := netsim.NewStation(fmt.Sprintf("st-%04d", i), cfg.Seed+int64(i), netsim.LAN(), "public")
		if err != nil {
			return nil, err
		}
		st.Dev.SetLoad(mib.LoadProfile{Utilization: 0.3, BroadcastFraction: 0.04, ErrorRate: 0.003, CollisionRate: 0.02})
		stations[i] = st
	}
	return stations, nil
}

// Run executes the scenario twice — delegated then centralized — over
// the identical replayed workload and returns the composite point.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	wall := time.Now()
	res := &Result{Stations: cfg.Stations, HorizonMS: cfg.Horizon.Milliseconds()}

	if err := runDelegated(cfg, res); err != nil {
		return nil, err
	}
	if err := runCentralized(cfg, res); err != nil {
		return nil, err
	}
	if res.DelegatedBytes > 0 {
		res.ByteGain = float64(res.CentralizedBytes) / float64(res.DelegatedBytes)
	}
	res.WallMS = time.Since(wall).Milliseconds()
	return res, nil
}

func runDelegated(cfg Config, res *Result) error {
	sim := netsim.NewSim()
	stations, err := makeStations(sim, cfg)
	if err != nil {
		return err
	}

	// Staleness bookkeeping: mutation timestamps pending a view refresh.
	var pending []time.Duration
	var samples []time.Duration
	notePending := func() { pending = append(pending, sim.Now()) }

	for i, st := range stations {
		var onMutate func()
		if i == 0 {
			onMutate = notePending // gateway tree feeds the live views
		}
		replay(sim, st, i, cfg, onMutate)
	}

	// Manager-side federation rollup over all stations' reports.
	mgrTree := &mib.Tree{}
	rollup := federation.NewRollup(federation.Sum())
	if err := federation.MountRollup(mgrTree, rollup, federation.OIDFederation); err != nil {
		return err
	}

	// Three continuously-materialized views: two at the gateway
	// station's agent, one fleet-wide over the rollup subtree.
	gw := incr.New(incr.Config{Tree: stations[0].Dev.Tree(), Schema: vdl.MIB2()})
	defer gw.Close()
	if _, err := gw.DefineAll(`view gwRoutes {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr, r:ipRouteMetric1;
  where i:ifOperStatus == 1;
}
view gwConns {
  from tcpConnTable;
  select tcpConnLocalPort, tcpConnRemAddress;
  where tcpConnLocalPort < 1024;
}`); err != nil {
		return err
	}
	fleet := incr.New(incr.Config{Tree: mgrTree, Schema: vdl.MIB2().AddFederation()})
	defer fleet.Close()
	if _, err := fleet.Define(`view fleet {
  from fedRollupTable;
  select count() as keys, sum(fedRollupMembers) as reporters;
}`); err != nil {
		return err
	}

	// Delegate the health function and the intrusion watcher to every
	// station; reports roll up at the manager.
	var tr netsim.Traffic
	healthSrc := health.AgentSource(health.DefaultIndex(), false)
	alarmsBy := make([]int, cfg.Stations)
	detectsBy := make([]int, cfg.Stations)
	for i, st := range stations {
		i, st := i, st
		ses := netsim.NewSession(sim, st, &tr)
		name := st.Dev.Name()

		ha, err := netsim.NewAgent(sim, st, ses, healthSrc)
		if err != nil {
			return err
		}
		ha.OnReport = func(string) {
			res.HealthAlarms++
			alarmsBy[i]++
			if _, changed := rollup.Report(name, "alarms", strconv.Itoa(alarmsBy[i]), sim.Now().Milliseconds()); changed {
				notePending()
			}
		}
		wa, err := netsim.NewAgent(sim, st, ses, intrusion.WatcherSource)
		if err != nil {
			return err
		}
		wa.OnReport = func(string) {
			res.IntrusionDetections++
			detectsBy[i]++
			if _, changed := rollup.Report(name, "suspects", strconv.Itoa(detectsBy[i]), sim.Now().Milliseconds()); changed {
				notePending()
			}
		}

		// Phase offsets desynchronize the fleet: real stations are not
		// delegated in lockstep, and a phase-locked fleet would bias the
		// staleness distribution toward a single lag value.
		healthPhase := time.Duration(i*997%int(cfg.EvalEvery.Milliseconds())) * time.Millisecond
		samplePhase := time.Duration(i*613%int(cfg.SampleEvery.Milliseconds())) * time.Millisecond
		ses.Delegate("health", healthSrc, func() {
			ses.Instantiate("health", "eval", func() {
				var tick func(at time.Duration)
				tick = func(at time.Duration) {
					if at >= cfg.Horizon {
						return
					}
					sim.At(at, func() { _, _ = ha.Invoke("eval"); tick(at + cfg.EvalEvery) })
				}
				tick(sim.Now() + healthPhase)
			})
		})
		ses.Delegate("watcher", intrusion.WatcherSource, func() {
			ses.Instantiate("watcher", "sample", func() {
				var tick func(at time.Duration)
				tick = func(at time.Duration) {
					if at >= cfg.Horizon {
						return
					}
					sim.At(at, func() { _, _ = wa.Invoke("sample"); tick(at + cfg.SampleEvery) })
				}
				tick(sim.Now() + samplePhase)
			})
		})
	}

	// Manager view refresh: every ViewEvery, query the three standing
	// views (folding whatever deltas accumulated) and convert pending
	// mutation timestamps into staleness samples.
	var refresh func(at time.Duration)
	refresh = func(at time.Duration) {
		if at > cfg.Horizon {
			return
		}
		sim.At(at, func() {
			stations[0].Sync(sim)
			for _, v := range []string{"gwRoutes", "gwConns"} {
				if _, err := gw.Query(v); err != nil {
					panic("macro: " + err.Error())
				}
			}
			fr, err := fleet.Query("fleet")
			if err != nil {
				panic("macro: " + err.Error())
			}
			if len(fr.Rows) == 1 && len(fr.Rows[0].Cells) > 0 {
				if n, ok := fr.Rows[0].Cells[0].(int64); ok {
					res.FleetRollupKeys = int(n)
				}
			}
			res.ViewRefreshes++
			now := sim.Now()
			for _, ts := range pending {
				samples = append(samples, now-ts)
			}
			pending = pending[:0]
			refresh(at + cfg.ViewEvery)
		})
	}
	refresh(cfg.ViewEvery)

	sim.Run(cfg.Horizon + time.Minute)

	gs, fs := gw.Stats(), fleet.Stats()
	res.DeltasFolded = gs.DeltasFolded + fs.DeltasFolded
	res.ViewRecomputes = gs.Recomputes + fs.Recomputes
	res.ChangesLost = gs.ChangesLost + fs.ChangesLost
	if secs := cfg.Horizon.Seconds(); secs > 0 {
		res.DeltasPerVSec = float64(res.DeltasFolded) / secs
	}
	res.DelegatedBytes = tr.Bytes()
	res.StalenessP50MS = percentileMS(samples, 0.50)
	res.StalenessP99MS = percentileMS(samples, 0.99)
	return nil
}

// runCentralized replays the identical workload with no delegation: the
// manager polls each station's five health counters (one PDU) and walks
// the tcpConnState column (whose instance OIDs carry the endpoints the
// intrusion rule needs) every EvalEvery, sequentially — the 1995
// platform's information-equivalent cost.
func runCentralized(cfg Config, res *Result) error {
	sim := netsim.NewSim()
	stations, err := makeStations(sim, cfg)
	if err != nil {
		return err
	}
	for i, st := range stations {
		replay(sim, st, i, cfg, nil)
	}
	counters := []oid.OID{
		mib.OIDEnetRxOk.Append(0), mib.OIDEnetColl.Append(0),
		mib.OIDEnetRxBcast.Append(0), mib.OIDEnetRxPkts.Append(0), mib.OIDEnetRxErrs.Append(0),
	}
	connCol := oid.MustParse("1.3.6.1.2.1.6.13.1.1")

	var tr netsim.Traffic
	var cycles []time.Duration
	var pollCycle func(start time.Duration)
	pollCycle = func(start time.Duration) {
		i := 0
		var next func()
		next = func() {
			if i >= len(stations) {
				cycles = append(cycles, sim.Now()-start)
				ns := start + cfg.EvalEvery
				if ns < sim.Now() {
					ns = sim.Now()
				}
				if ns < cfg.Horizon {
					sim.At(ns, func() { pollCycle(ns) })
				}
				return
			}
			st := stations[i]
			i++
			st.Get(sim, "public", &tr, counters, func([]snmp.VarBind) {
				st.Walk(sim, "public", &tr, connCol, func([]snmp.VarBind) { next() })
			})
		}
		next()
	}
	sim.At(0, func() { pollCycle(0) })
	sim.Run(cfg.Horizon + time.Minute)

	res.CentralizedBytes = tr.Bytes()
	if len(cycles) > 0 {
		var sum time.Duration
		for _, c := range cycles {
			sum += c
		}
		res.CentralCycleMS = float64((sum / time.Duration(len(cycles))).Microseconds()) / 1000
	}
	return nil
}

func percentileMS(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}
