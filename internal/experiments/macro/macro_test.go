package macro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestMacroScenario runs the composite harness at CI-friendly scale by
// default; MBD_MACRO_STATIONS raises it (the macro-smoke CI job uses
// 100, the committed trajectory point 1000) and MBD_MACRO_OUT appends
// the result to a trajectory file.
func TestMacroScenario(t *testing.T) {
	cfg := Config{Stations: 20, Horizon: 2 * time.Minute, Seed: 7}
	if s := os.Getenv("MBD_MACRO_STATIONS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("MBD_MACRO_STATIONS=%q", s)
		}
		cfg.Stations = n
		cfg.Horizon = 4 * time.Minute
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("macro: %+v", res)

	if res.DeltasFolded == 0 {
		t.Fatal("no deltas folded — views were not incrementally maintained")
	}
	if res.ChangesLost != 0 || res.ViewRecomputes != 0 {
		t.Fatalf("fallback engaged at this scale: lost=%d recomputes=%d", res.ChangesLost, res.ViewRecomputes)
	}
	if res.ViewRefreshes == 0 {
		t.Fatal("manager never refreshed its views")
	}
	// Continuous maintenance bounds staleness by the refresh period —
	// never by the poll cycle, which grows with the station count.
	if p99 := res.StalenessP99MS; p99 <= 0 || p99 > float64(cfg.viewEvery().Milliseconds()) {
		t.Fatalf("staleness p99 = %.1f ms, want (0, %d]", p99, cfg.viewEvery().Milliseconds())
	}
	if res.HealthAlarms == 0 {
		t.Fatal("storm episodes produced no health alarms")
	}
	if res.IntrusionDetections == 0 {
		t.Fatal("malicious sessions produced no detections")
	}
	if res.FleetRollupKeys == 0 {
		t.Fatal("fleet view saw no rollup keys")
	}
	if res.DelegatedBytes == 0 || res.CentralizedBytes == 0 {
		t.Fatalf("traffic accounting broken: mbd=%d snmp=%d", res.DelegatedBytes, res.CentralizedBytes)
	}
	if res.ByteGain <= 1 {
		t.Fatalf("delegation moved more bytes than polling: gain=%.2f (mbd=%d snmp=%d)",
			res.ByteGain, res.DelegatedBytes, res.CentralizedBytes)
	}

	if out := os.Getenv("MBD_MACRO_OUT"); out != "" {
		if err := AppendRun(out, res); err != nil {
			t.Fatal(err)
		}
		t.Logf("trajectory point appended to %s", out)
	}
}

func (c Config) viewEvery() time.Duration {
	if c.ViewEvery > 0 {
		return c.ViewEvery
	}
	return time.Second
}

func TestTrajectoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_macro.json")
	r1 := &Result{Stations: 10, DeltasFolded: 5}
	if err := AppendRun(path, r1); err != nil {
		t.Fatal(err)
	}
	r2 := &Result{Stations: 20, DeltasFolded: 9}
	if err := AppendRun(path, r2); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != 1 || len(tr.Runs) != 2 || tr.Runs[1].Stations != 20 || tr.Runs[0].Date == "" {
		t.Fatalf("trajectory = %+v", tr)
	}
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendRun(path, r1); err == nil {
		t.Fatal("append to corrupt trajectory succeeded")
	}
}
