package macro

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Trajectory is the BENCH_macro.json document: one point per tracked
// revision, append-only, so regressions in the composite scenario are
// visible as a series rather than a single gate.
type Trajectory struct {
	Schema int        `json:"schema"`
	Runs   []TrackRun `json:"runs"`
}

// TrackRun is one dated trajectory point.
type TrackRun struct {
	Date string `json:"date"`
	Result
}

// AppendRun loads the trajectory at path (an absent file is an empty
// trajectory), appends res dated today, and writes it back indented.
func AppendRun(path string, res *Result) error {
	var tr Trajectory
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &tr); err != nil {
			return fmt.Errorf("macro: corrupt trajectory %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if tr.Schema == 0 {
		tr.Schema = 1
	}
	tr.Runs = append(tr.Runs, TrackRun{Date: time.Now().UTC().Format("2006-01-02"), Result: *res})
	b, err := json.MarshalIndent(&tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
