package experiments

import (
	"fmt"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
)

// E7ViewEconomy reproduces the VDL-vs-SMI-extension comparison:
// "Consider, for instance, the simple example given in Figure 5.10,
// which only takes five lines in our vdl. The same example is given in
// Figure 5.19 using smi extensions" — which balloons. For a suite of
// representative views (projection, selection, computation, join,
// aggregate) the table reports the specification size in both notations
// and the query cost via the view versus a raw table walk.
func E7ViewEconomy() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "MIB views: specification economy (VDL vs SMI-extension style) and query cost",
		Headers: []string{"view", "VDL lines", "SMI lines", "spec factor", "walk cells", "view rows", "walk bytes", "view bytes"},
	}
	views := []struct {
		name string
		src  string
	}{
		{"projection", `view addrs {
  from tcpConnTable;
  select tcpConnRemAddress, tcpConnRemPort;
}`},
		{"selection", `view telnet {
  from tcpConnTable;
  select tcpConnRemAddress;
  where tcpConnLocalPort == 23;
}`},
		{"computation", `view traffic {
  from ifTable;
  select ifIndex, ifInOctets + ifOutOctets as total;
  where ifOperStatus == 1;
}`},
		{"join", `view routesByIf {
  from ipRouteTable as r join ifTable as i on r:ipRouteIfIndex == i:ifIndex;
  select r:ipRouteDest, i:ifDescr, r:ipRouteMetric1;
}`},
		{"aggregate", `view summary {
  from ifTable;
  select count() as up, sum(ifInOctets) as octets;
  where ifOperStatus == 1;
}`},
	}

	st, err := netsim.NewStation("router", 31, netsim.LAN(), "public")
	if err != nil {
		return nil, err
	}
	st.Dev.SetLoad(mib.LoadProfile{Utilization: 0.3, BroadcastFraction: 0.05, ErrorRate: 0.005, CollisionRate: 0.02})
	st.Dev.Advance(time.Minute)
	for i := 0; i < 20; i++ {
		st.Dev.AddRoute([4]byte{192, 168, byte(i), 0}, uint32(1+i%2), int64(1+i%5), [4]byte{10, 0, 0, 254})
		st.Dev.OpenConn(mib.ConnID{
			LocalAddr: [4]byte{10, 0, 0, 1}, LocalPort: uint16(23 + (i%3)*57),
			RemAddr: [4]byte{172, 16, 0, byte(i + 1)}, RemPort: uint16(40000 + i),
		})
	}
	mcva := vdl.NewMCVA(st.Dev.Tree(), vdl.MIB2())

	for _, v := range views {
		def, err := mcva.Define(v.src)
		if err != nil {
			return nil, fmt.Errorf("e7 %s: %w", v.name, err)
		}
		smi := vdl.RenderSMI(def, 424242)
		vdlLines := vdl.SpecLines(v.src)
		smiLines := vdl.SpecLines(smi)

		// Raw cost: walk the base table(s) over SNMP.
		sim := netsim.NewSim()
		var tr netsim.Traffic
		walkCells := 0
		tables := []string{def.From.Table}
		if def.Join != nil {
			tables = append(tables, def.Join.Right.Table)
		}
		pending := len(tables)
		for _, tbl := range tables {
			ts, _ := vdl.MIB2().Lookup(tbl)
			st.Walk(sim, "public", &tr, ts.Entry, func(vbs []snmp.VarBind) {
				walkCells += len(vbs)
				pending--
			})
		}
		sim.Run(time.Hour)
		if pending != 0 {
			return nil, fmt.Errorf("e7 %s: walks incomplete", v.name)
		}

		// View cost: result rows stream back as RDS frames.
		res, err := mcva.Query(def.Name)
		if err != nil {
			return nil, err
		}
		sim2 := netsim.NewSim()
		var tr2 netsim.Traffic
		ses := netsim.NewSession(sim2, st, &tr2)
		for _, r := range res.Rows {
			payload := ""
			for i, c := range r.Cells {
				if i > 0 {
					payload += "|"
				}
				payload += fmt.Sprintf("%v", c)
			}
			ses.Report("mcva#1", payload, func(string) {})
		}
		sim2.Run(time.Hour)

		t.AddRow(
			v.name,
			fmt.Sprintf("%d", vdlLines),
			fmt.Sprintf("%d", smiLines),
			fmtRatio(float64(smiLines), float64(vdlLines)),
			fmt.Sprintf("%d", walkCells),
			fmt.Sprintf("%d", len(res.Rows)),
			fmtBytes(tr.Bytes()),
			fmtBytes(tr2.Bytes()),
		)
	}
	t.AddNote("device: 2 interfaces, 20 routes, 20 connections; SMI rendering follows the OBJECT-TYPE-per-derived-attribute style of the alternative VDL")
	t.AddNote("walk bytes pay for every cell of the base tables; view bytes pay only for computed result rows")
	return t, nil
}
