// Package experiments regenerates the paper's evaluation: each
// experiment constructor builds the workload, runs both the centralized
// SNMP baseline and the MbD system (in the discrete-event simulator or
// against the real runtime), and returns a formatted table. The
// experiment inventory and its textual anchors in the dissertation are
// indexed in DESIGN.md §4; EXPERIMENTS.md records the measured outputs.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated table/figure.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtBytes renders a byte count compactly.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtRatio renders a comparative factor.
func fmtRatio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
