package experiments

import (
	"context"
	"fmt"
	"time"

	"mbd/internal/dpl"
)

// T1InterpreterOverhead is the Table 2.1 ablation: language-based agent
// systems of the paper's era (Safe-TCL, early Java) executed scripts by
// direct interpretation, while the MbD prototype translated DPs to
// object code once and ran instances from the repository. The table
// compares the same agents on this repository's tree-walking reference
// interpreter versus the bytecode VM.
func T1InterpreterOverhead() (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Agent execution: direct interpretation vs translated (bytecode) delegated programs",
		Headers: []string{"workload", "interpreted", "compiled VM", "speedup", "one-time translate"},
	}
	workloads := []struct {
		name  string
		src   string
		entry string
	}{
		{"fib(20) recursion", `
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { return fib(20); }`, "main"},
		{"100k-iteration counter loop", `
func main() {
	var s = 0;
	for (var i = 0; i < 100000; i += 1) { s += i % 7; }
	return s;
}`, "main"},
		{"string/array processing", `
func main() {
	var words = split("the quick brown fox jumps over the lazy dog the end", " ");
	var freq = {};
	for (var r = 0; r < 500; r += 1) {
		for (var i = 0; i < len(words); i += 1) {
			var w = words[i];
			if (contains(freq, w)) { freq[w] = freq[w] + 1; } else { freq[w] = 1; }
		}
	}
	return freq["the"];
}`, "main"},
	}
	b := dpl.Std()
	ctx := context.Background()
	for _, w := range workloads {
		prog, err := dpl.Parse(w.src)
		if err != nil {
			return nil, err
		}
		translateStart := time.Now()
		compiled, err := dpl.Compile(prog, b)
		if err != nil {
			return nil, err
		}
		translateTime := time.Since(translateStart)

		it, err := dpl.NewInterp(prog, b)
		if err != nil {
			return nil, err
		}
		interpStart := time.Now()
		iv, err := it.Run(ctx, w.entry)
		if err != nil {
			return nil, err
		}
		interpTime := time.Since(interpStart)

		vm := dpl.NewVM(compiled, b)
		vmStart := time.Now()
		vv, err := vm.Run(ctx, w.entry)
		if err != nil {
			return nil, err
		}
		vmTime := time.Since(vmStart)

		if dpl.FormatValue(iv) != dpl.FormatValue(vv) {
			return nil, fmt.Errorf("t1: engines disagree on %s: %v vs %v", w.name, iv, vv)
		}
		t.AddRow(
			w.name,
			interpTime.Round(time.Microsecond).String(),
			vmTime.Round(time.Microsecond).String(),
			fmtRatio(float64(interpTime), float64(vmTime)),
			translateTime.Round(time.Microsecond).String(),
		)
	}
	t.AddNote("both engines pass the package's cross-check property test, so the speedup is pure execution-model difference")
	t.AddNote("translate-once is the repository model: the object code is stored at delegation time and amortized over every instantiation")
	return t, nil
}
