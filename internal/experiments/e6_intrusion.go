package experiments

import (
	"fmt"
	"time"

	"mbd/internal/intrusion"
	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/snmp"
)

// E6Config parameterizes the intrusion-detection comparison.
type E6Config struct {
	// PollIntervals sweeps the centralized poller (default 10/30/60 s).
	PollIntervals []time.Duration
	// MeanLives sweeps intruder session lifetimes (default 1 s / 5 s /
	// 30 s).
	MeanLives []time.Duration
	Horizon   time.Duration
	Sessions  int
	Seed      int64
}

func (c *E6Config) defaults() {
	if len(c.PollIntervals) == 0 {
		c.PollIntervals = []time.Duration{10 * time.Second, 30 * time.Second, 60 * time.Second}
	}
	if len(c.MeanLives) == 0 {
		c.MeanLives = []time.Duration{time.Second, 5 * time.Second, 30 * time.Second}
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Minute
	}
	if c.Sessions <= 0 {
		c.Sessions = 150
	}
	if c.Seed == 0 {
		c.Seed = 99
	}
}

// E6IntrusionDetection reproduces the missed-transients argument: "To
// track which remote systems access resources via tcp ... tcpConnTable
// can be used. An intruder, however, may need only a brief connection."
//
// A centralized security manager walks tcpConnTable every T and applies
// the site rule to the rows it happens to see; the delegated watcher
// samples the same table locally every 100 ms and notifies on match.
// Both see the identical session workload (Anderson's three intruder
// classes, exponentially distributed lifetimes).
func E6IntrusionDetection(cfg E6Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "E6",
		Title:   "Intrusion detection: centralized tcpConnTable polling vs delegated resident watcher",
		Headers: []string{"intruder life", "detector", "detected", "of", "rate", "mgmt bytes"},
	}
	for _, life := range cfg.MeanLives {
		sessions := intrusion.Generate(intrusion.WorkloadConfig{
			Seed: cfg.Seed, Horizon: cfg.Horizon, Sessions: cfg.Sessions,
			MeanIntrusionLife: life,
		})
		total := 0
		for _, s := range sessions {
			if s.Class.Intrusion() {
				total++
			}
		}

		for _, interval := range cfg.PollIntervals {
			detected, bytes, err := runCentralDetector(cfg, sessions, interval)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				life.String(),
				fmt.Sprintf("SNMP poll @%v", interval),
				fmt.Sprintf("%d", detected),
				fmt.Sprintf("%d", total),
				fmt.Sprintf("%.0f%%", 100*float64(detected)/float64(total)),
				fmtBytes(bytes),
			)
		}
		detected, bytes, err := runDelegatedDetector(cfg, sessions)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			life.String(),
			"MbD watcher @100ms",
			fmt.Sprintf("%d", detected),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f%%", 100*float64(detected)/float64(total)),
			fmtBytes(bytes),
		)
	}
	t.AddNote("%d sessions over %v, ≈20%% malicious (masquerader / misfeasor / clandestine signatures)", cfg.Sessions, cfg.Horizon)
	t.AddNote("the poller walks only tcpConnState (the index carries the endpoints); the watcher reports each suspicious connection once, one-way")
	return t, nil
}

func scheduleSessions(sim *netsim.Sim, st *netsim.Station, sessions []intrusion.Session) {
	for _, s := range sessions {
		s := s
		sim.At(s.Open, func() { st.Dev.OpenConn(s.Conn) })
		sim.At(s.Close, func() { st.Dev.CloseConn(s.Conn) })
	}
}

func runCentralDetector(cfg E6Config, sessions []intrusion.Session, interval time.Duration) (int, uint64, error) {
	sim := netsim.NewSim()
	st, err := netsim.NewStation("host", cfg.Seed, netsim.LAN(), "public")
	if err != nil {
		return 0, 0, err
	}
	scheduleSessions(sim, st, sessions)
	var tr netsim.Traffic
	detected := map[string]bool{}
	stateCol := mib.OIDTCPConnEntry.Append(mib.TCPConnState)

	var pollAt func(at time.Duration)
	pollAt = func(at time.Duration) {
		sim.At(at, func() {
			st.Walk(sim, "public", &tr, stateCol, func(vbs []snmp.VarBind) {
				for _, vb := range vbs {
					idx, ok := vb.Name.Index(stateCol)
					if !ok || len(idx) != 10 {
						continue
					}
					localPort := int64(idx[4])
					rem := fmt.Sprintf("%d.%d.%d.%d", idx[5], idx[6], idx[7], idx[8])
					if intrusion.Suspicious(localPort, rem) {
						detected[idx.String()] = true
					}
				}
				if next := at + interval; next < cfg.Horizon {
					pollAt(next)
				}
			})
		})
	}
	pollAt(interval)
	sim.Run(cfg.Horizon + time.Minute)

	return countDetections(sessions, detected), tr.Bytes(), nil
}

func runDelegatedDetector(cfg E6Config, sessions []intrusion.Session) (int, uint64, error) {
	sim := netsim.NewSim()
	st, err := netsim.NewStation("host", cfg.Seed, netsim.LAN(), "public")
	if err != nil {
		return 0, 0, err
	}
	scheduleSessions(sim, st, sessions)
	var tr netsim.Traffic
	ses := netsim.NewSession(sim, st, &tr)
	agent, err := netsim.NewAgent(sim, st, ses, intrusion.WatcherSource)
	if err != nil {
		return 0, 0, err
	}
	detected := map[string]bool{}
	agent.OnReport = func(p string) { detected[p] = true }
	// Account the one-time delegation transfer too.
	ses.Delegate("watcher", intrusion.WatcherSource, func() {
		ses.Instantiate("watcher", "sample", func() {})
	})
	for at := 100 * time.Millisecond; at < cfg.Horizon; at += 100 * time.Millisecond {
		at := at
		sim.At(at, func() { _, _ = agent.Invoke("sample") })
	}
	sim.Run(cfg.Horizon + time.Minute)
	return countDetections(sessions, detected), tr.Bytes(), nil
}

func countDetections(sessions []intrusion.Session, detected map[string]bool) int {
	n := 0
	for _, s := range sessions {
		if s.Class.Intrusion() && detected[intrusion.IndexOf(s.Conn)] {
			n++
		}
	}
	return n
}
