package experiments

import (
	"fmt"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
)

// E4LatencySweep reproduces the CPU-vs-latency tradeoff discussion:
// "the round-trip delay between two hosts in Austin, Texas was measured
// as 596 ms, while that between one of these hosts and a host in Japan
// was only 254 ms ... It is much easier and inexpensive to provide
// dedicated fast cpus than to establish dedicated fast network
// connections."
//
// The fixed task: obtain a fresh health evaluation of 50 devices. The
// centralized manager needs two counter samples Δt apart — 2 polls × 5
// counters per device, all sequential round trips. The MbD manager
// queries each device's resident agent for its already-computed index:
// one small round trip per device. The sweep varies only the link RTT;
// the work is identical.
func E4LatencySweep() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Completion time of one 50-device health sweep vs link RTT",
		Headers: []string{"RTT", "SNMP time", "SNMP bytes", "MbD time", "MbD bytes", "speedup"},
	}
	rtts := []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond,
		254 * time.Millisecond, 596 * time.Millisecond,
	}
	const devices = 50
	counterOIDs := []oid.OID{
		mib.OIDEnetRxOk.Append(0), mib.OIDEnetColl.Append(0),
		mib.OIDEnetRxBcast.Append(0), mib.OIDEnetRxPkts.Append(0), mib.OIDEnetRxErrs.Append(0),
	}
	for _, rtt := range rtts {
		link := netsim.WAN(rtt)
		if rtt <= time.Millisecond {
			link = netsim.LAN()
		}

		// Centralized: two sequential sample passes (the Δt between
		// them is monitoring schedule, not work; it is excluded).
		sim := netsim.NewSim()
		var tr netsim.Traffic
		stations := make([]*netsim.Station, devices)
		for i := range stations {
			st, err := netsim.NewStation(fmt.Sprintf("d%d", i), int64(i), link, "public")
			if err != nil {
				return nil, err
			}
			stations[i] = st
		}
		var centralDone time.Duration
		pass := 0
		var pollAll func()
		pollAll = func() {
			i, j := 0, 0
			var next func()
			next = func() {
				if i >= devices {
					pass++
					if pass < 2 {
						pollAll()
						return
					}
					centralDone = sim.Now()
					return
				}
				st := stations[i]
				o := counterOIDs[j]
				j++
				if j == len(counterOIDs) {
					j = 0
					i++
				}
				st.Get(sim, "public", &tr, []oid.OID{o}, func([]snmp.VarBind) { next() })
			}
			next()
		}
		sim.At(0, pollAll)
		sim.Run(24 * time.Hour)

		// Delegated: one small query round trip per device (read the
		// agent's published score from the v-mib).
		sim2 := netsim.NewSim()
		var tr2 netsim.Traffic
		var mbdDone time.Duration
		i := 0
		var next2 func()
		next2 = func() {
			if i >= devices {
				mbdDone = sim2.Now()
				return
			}
			st := stations[i]
			st.Link = link
			i++
			st.Get(sim2, "public", &tr2, []oid.OID{mib.OIDSysUpTime.Append(0)}, func([]snmp.VarBind) { next2() })
		}
		sim2.At(0, next2)
		sim2.Run(24 * time.Hour)

		t.AddRow(
			rtt.String(),
			centralDone.Round(time.Millisecond).String(),
			fmtBytes(tr.Bytes()),
			mbdDone.Round(time.Millisecond).String(),
			fmtBytes(tr2.Bytes()),
			fmtRatio(float64(centralDone), float64(mbdDone)),
		)
	}
	t.AddNote("centralized = 2 sample passes × 5 counters × 50 devices, sequential; MbD = 1 single-varbind query per device returning the locally computed index")
	t.AddNote("the speedup approaches 10x and is latency-dominated: extra CPU at the device (cheap) substitutes for round trips (expensive), the paper's core tradeoff")
	return t, nil
}
