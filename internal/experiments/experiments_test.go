package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parse helpers -------------------------------------------------------------

func cellInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("cell %q is not an int", s)
	}
	return v
}

func cellBytes(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a byte count", s)
	}
	return v * mult
}

func cellDuration(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("cell %q is not a duration", s)
	}
	return d
}

// E1 ------------------------------------------------------------------------

func TestE1CapacityShape(t *testing.T) {
	tb, err := E1PollingCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	lan := cellInt(t, tb.Rows[0][4]) // N@10s on LAN
	wan := cellInt(t, tb.Rows[4][4]) // N@10s at 596ms
	if lan < 1000 {
		t.Fatalf("LAN capacity = %d, expected thousands", lan)
	}
	// "an order of magnitude lower" — actually far more at 596 ms.
	if wan*10 > lan {
		t.Fatalf("WAN capacity %d not an order of magnitude below LAN %d", wan, lan)
	}
	// Capacity must decrease monotonically with RTT.
	prev := 1 << 30
	for _, row := range tb.Rows {
		n := cellInt(t, row[4])
		if n > prev {
			t.Fatalf("capacity not monotone: %v", row)
		}
		prev = n
	}
	// The MbD bound always beats sequential polling.
	for _, row := range tb.Rows {
		if cellInt(t, row[6]) <= cellInt(t, row[4]) {
			t.Fatalf("MbD bound does not dominate: %v", row)
		}
	}
}

// E2 ------------------------------------------------------------------------

func quickE2() E2Config {
	return E2Config{DeviceCounts: []int{5, 20}, Horizon: 2 * time.Minute, Seed: 1}
}

func TestE2DelegationSavesTraffic(t *testing.T) {
	tb, err := E2HealthCentralVsDelegated(quickE2())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		snmpB := cellBytes(t, row[1])
		mbdB := cellBytes(t, row[5])
		if mbdB >= snmpB {
			t.Fatalf("delegation did not save traffic: %v", row)
		}
		if cellInt(t, row[7]) == 0 {
			t.Fatalf("no alarms despite injected storms: %v", row)
		}
	}
	// SNMP traffic grows linearly with device count.
	b5 := cellBytes(t, tb.Rows[0][1])
	b20 := cellBytes(t, tb.Rows[1][1])
	if b20 < 3.5*b5 || b20 > 4.5*b5 {
		t.Fatalf("SNMP bytes not ∝ devices: %f vs %f", b5, b20)
	}
}

func TestE2PeriodicAblationCostsMore(t *testing.T) {
	cfg := quickE2()
	exc, err := E2HealthCentralVsDelegated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Periodic = true
	per, err := E2HealthCentralVsDelegated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exc.Rows {
		if cellBytes(t, per.Rows[i][5]) <= cellBytes(t, exc.Rows[i][5]) {
			t.Fatalf("periodic mode row %d not costlier than exception mode", i)
		}
	}
}

// E3 ------------------------------------------------------------------------

func TestE3ViewBeatsWalk(t *testing.T) {
	tb, err := E3TableRetrieval(E3Config{RowCounts: []int{50, 200}, Selectivities: []float64{0.1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if cellBytes(t, row[5]) >= cellBytes(t, row[3]) {
			t.Fatalf("view bytes not below walk bytes: %v", row)
		}
		if cellDuration(t, row[6]) >= cellDuration(t, row[4]) {
			t.Fatalf("view time not below walk time: %v", row)
		}
	}
	// Walk cost grows with table size; view cost only with matches.
	if cellBytes(t, tb.Rows[1][3]) < 3*cellBytes(t, tb.Rows[0][3]) {
		t.Fatal("walk bytes did not scale with rows")
	}
}

// E4 ------------------------------------------------------------------------

func TestE4SpeedupStable(t *testing.T) {
	tb, err := E4LatencySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		snmpT := cellDuration(t, row[1])
		mbdT := cellDuration(t, row[3])
		ratio := float64(snmpT) / float64(mbdT)
		if ratio < 8 || ratio > 12 {
			t.Fatalf("speedup %f out of the ~10x band: %v", ratio, row)
		}
	}
	// Absolute central time explodes with RTT.
	if cellDuration(t, tb.Rows[4][1]) < 100*cellDuration(t, tb.Rows[0][1]) {
		t.Fatal("WAN did not dominate completion time")
	}
}

// E5 ------------------------------------------------------------------------

func TestE5CrossoverExists(t *testing.T) {
	tb, err := E5DelegationAmortization()
	if err != nil {
		t.Fatal(err)
	}
	// At M=1 RPC wins on bytes; at M=1000 both MbD modes win.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if cellBytes(t, first[2]) >= cellBytes(t, first[4]) {
		t.Fatal("delegation should lose at M=1 (setup cost)")
	}
	if cellBytes(t, last[4]) >= cellBytes(t, last[2]) {
		t.Fatal("periodic delegation should win at M=1000")
	}
	if cellBytes(t, last[6]) >= cellBytes(t, last[4]) {
		t.Fatal("exception mode should beat periodic mode")
	}
}

// E6 ------------------------------------------------------------------------

func TestE6PollingMissesBriefIntrusions(t *testing.T) {
	tb, err := E6IntrusionDetection(E6Config{
		PollIntervals: []time.Duration{10 * time.Second, 60 * time.Second},
		MeanLives:     []time.Duration{time.Second},
		Horizon:       3 * time.Minute,
		Sessions:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: poll@10s, poll@60s, watcher.
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	p10 := cellInt(t, tb.Rows[0][2])
	p60 := cellInt(t, tb.Rows[1][2])
	watcher := cellInt(t, tb.Rows[2][2])
	total := cellInt(t, tb.Rows[2][3])
	if watcher != total {
		t.Fatalf("watcher caught %d of %d", watcher, total)
	}
	if p10 >= watcher || p60 > p10 {
		t.Fatalf("detection ordering wrong: p10=%d p60=%d watcher=%d", p10, p60, watcher)
	}
	// The watcher also uses less management bandwidth than the 10s poller.
	if cellBytes(t, tb.Rows[2][5]) >= cellBytes(t, tb.Rows[0][5]) {
		t.Fatal("watcher used more bandwidth than the poller")
	}
}

// E7 ------------------------------------------------------------------------

func TestE7SpecEconomy(t *testing.T) {
	tb, err := E7ViewEconomy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		vdlLines := cellInt(t, row[1])
		smiLines := cellInt(t, row[2])
		if vdlLines > 6 {
			t.Fatalf("VDL spec for %s is %d lines (should be ~5)", row[0], vdlLines)
		}
		if smiLines < 4*vdlLines {
			t.Fatalf("SMI spec for %s did not balloon: %d vs %d", row[0], smiLines, vdlLines)
		}
		if cellBytes(t, row[7]) >= cellBytes(t, row[6]) {
			t.Fatalf("view query for %s not cheaper than walk", row[0])
		}
	}
}

// E8 ------------------------------------------------------------------------

func TestE8TearingDecreasesWithFlapPeriod(t *testing.T) {
	tb, err := E8Snapshots(E8Config{
		FlapPeriods: []time.Duration{50 * time.Millisecond, 5 * time.Second},
		Walks:       20, Routes: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := strings.Split(tb.Rows[0][2], "/")
	slow := strings.Split(tb.Rows[1][2], "/")
	fastTorn := cellInt(t, fast[0])
	slowTorn := cellInt(t, slow[0])
	if fastTorn <= slowTorn {
		t.Fatalf("tearing should increase with flap rate: %d vs %d", fastTorn, slowTorn)
	}
	if fastTorn == 0 {
		t.Fatal("fast flapping produced no torn walks")
	}
	for _, row := range tb.Rows {
		if row[4] != "0" {
			t.Fatal("snapshots can never tear")
		}
	}
}

// E9 ------------------------------------------------------------------------

func TestE9TrainingImproves(t *testing.T) {
	tb, err := E9LMSTraining()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	acc := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if acc(tb.Rows[1]) < acc(tb.Rows[0]) {
		t.Fatal("LMS made the estimates worse")
	}
	if acc(tb.Rows[1]) < 90 || acc(tb.Rows[2]) < 90 {
		t.Fatalf("trained accuracy too low: %v / %v", tb.Rows[1][1], tb.Rows[2][1])
	}
}

// E10 -----------------------------------------------------------------------

func TestE10RuntimeScales(t *testing.T) {
	tb, err := E10RuntimeScalability(E10Config{Counts: []int{1, 50}, MsgsPerDPI: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// 50 DPIs × 5 msgs × 39 steps each — steps scale with instances.
	s1 := cellInt(t, tb.Rows[0][5])
	s50 := cellInt(t, tb.Rows[1][5])
	if s50 != 50*s1 {
		t.Fatalf("VM steps not proportional: %d vs %d", s1, s50)
	}
}

// T1 ------------------------------------------------------------------------

func TestT1CompiledBeatsInterpreted(t *testing.T) {
	tb, err := T1InterpreterOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Skip("timing comparison is meaningless under the race detector")
	}
	for _, row := range tb.Rows {
		it := cellDuration(t, row[1])
		vm := cellDuration(t, row[2])
		if vm >= it {
			t.Fatalf("VM not faster than interpreter on %s: %v vs %v", row[0], vm, it)
		}
	}
}

// Registry and rendering ------------------------------------------------------

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("experiments = %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Brief == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id found")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Headers: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("n=%d", 7)
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "long-header", "333", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}
	if fmtBytes(512) != "512B" || fmtBytes(2048) != "2.0KB" || fmtBytes(3<<20) != "3.0MB" {
		t.Fatal("fmtBytes wrong")
	}
	if fmtRatio(10, 0) != "∞" || fmtRatio(10, 4) != "2.5x" {
		t.Fatal("fmtRatio wrong")
	}
}
