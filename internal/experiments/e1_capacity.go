package experiments

import (
	"fmt"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
)

// E1PollingCapacity reproduces the polling-capacity bound: "the maximum
// number of registers that the management station can handle is bound
// by the length of the polling interval divided by the time required
// for a single poll request", with the supermarket point-of-sale 10 s
// interval [Eckerson 92] and the observation that WAN delays make the
// device count "an order of magnitude lower".
//
// For each link RTT the per-poll time is *measured* in the simulator
// with real SNMP encodings (2 varbinds, the typical status poll), and
// the capacity of a sequential manager derived for 1 s / 10 s / 60 s
// intervals. The MbD column shows the equivalent bound when devices
// host a delegated status agent and the manager only absorbs exception
// notifications (measured report frame, 1% exception rate per
// interval).
func E1PollingCapacity() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Devices manageable by one station vs link latency (sequential SNMP poll vs MbD exception reports)",
		Headers: []string{"link", "RTT", "per-poll", "N@1s", "N@10s", "N@60s", "MbD N@10s", "gain@10s"},
	}
	links := []struct {
		name string
		link netsim.Link
	}{
		{"LAN", netsim.LAN()},
		{"campus", netsim.WAN(10 * time.Millisecond)},
		{"regional", netsim.WAN(50 * time.Millisecond)},
		{"WAN-Japan", netsim.WAN(254 * time.Millisecond)}, // [Carl-Mitchell 94]
		{"WAN-Austin", netsim.WAN(596 * time.Millisecond)},
	}
	pollOIDs := []oid.OID{mib.OIDSysUpTime.Append(0), mib.OIDIfEntry.Append(mib.IfOperStatus, 1)}
	const exceptionRate = 0.01

	for _, lk := range links {
		sim := netsim.NewSim()
		st, err := netsim.NewStation("pos-1", 1, lk.link, "public")
		if err != nil {
			return nil, err
		}
		var tr netsim.Traffic
		var pollDone time.Duration
		st.Get(sim, "public", &tr, pollOIDs, func(vbs []snmp.VarBind) {
			pollDone = sim.Now()
		})
		sim.Run(time.Minute)
		if pollDone == 0 {
			return nil, fmt.Errorf("e1: poll never completed on %s", lk.name)
		}

		// Delegated path: measure the one-way report delivery time.
		var tr2 netsim.Traffic
		ses := netsim.NewSession(sim, st, &tr2)
		var reportAt, reportStart time.Duration
		reportStart = sim.Now()
		ses.Report("status#1", "EXC pos-1 drawer-open", func(string) { reportAt = sim.Now() })
		sim.Run(sim.Now() + time.Minute)
		reportTime := reportAt - reportStart

		cap := func(interval time.Duration) uint64 {
			return uint64(interval / pollDone)
		}
		// MbD: manager work per device per interval is exceptionRate
		// report receptions.
		mbdCap := uint64(float64(10*time.Second) / (exceptionRate * float64(reportTime)))
		t.AddRow(
			lk.name,
			lk.link.RTT().String(),
			pollDone.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", cap(time.Second)),
			fmt.Sprintf("%d", cap(10*time.Second)),
			fmt.Sprintf("%d", cap(60*time.Second)),
			fmt.Sprintf("%d", mbdCap),
			fmtRatio(float64(mbdCap), float64(cap(10*time.Second))),
		)
	}
	t.AddNote("per-poll = measured SNMP Get (2 varbinds, real BER encodings) incl. 1ms agent processing")
	t.AddNote("MbD bound assumes %.0f%% of devices raise one exception per 10s interval; LAN→WAN capacity drop ≈ an order of magnitude, as the text states", 1.0)
	return t, nil
}
