package experiments

import (
	"fmt"

	"mbd/internal/health"
)

// E9LMSTraining reproduces the health-index learning discussion: "One
// way of finding appropriate weights is to begin by using estimates,
// and let the program modify the settings ... The Least Mean Square
// (LMS) algorithm, for example, adapts the weights after every trial."
//
// 400 labeled 10-second episodes (two thirds nominal; congestion /
// broadcast-storm / error-burst / collision-storm faults) are observed
// through the real device counters. Three classifiers are evaluated on
// a held-out test set: hand-set estimate weights, LMS trained from the
// estimates, and LMS trained from zeros. The convergence curve samples
// the per-epoch mean squared error.
func E9LMSTraining() (*Table, error) {
	samples, err := health.GenerateSamples(1234, 400)
	if err != nil {
		return nil, err
	}
	train, test := samples[:300], samples[300:]

	t := &Table{
		ID:      "E9",
		Title:   "Health-index weight training (LMS perceptron), 300 train / 100 test episodes",
		Headers: []string{"classifier", "accuracy", "false alarms", "misses", "weights [u c b e] bias"},
	}
	row := func(name string, ix health.Index) {
		m := health.Evaluate(ix, test)
		t.AddRow(
			name,
			fmt.Sprintf("%.1f%%", 100*m.Accuracy),
			fmt.Sprintf("%.1f%%", 100*m.FalseAlarm),
			fmt.Sprintf("%.1f%%", 100*m.Miss),
			fmt.Sprintf("[%.2f %.2f %.2f %.2f] %.2f", ix.Weights[0], ix.Weights[1], ix.Weights[2], ix.Weights[3], ix.Bias),
		)
	}
	est := health.DefaultIndex()
	row("hand-set estimates", est)

	trained, curve := health.TrainLMS(est, train, 50, 0.05)
	row("LMS from estimates (50 epochs)", trained)

	zero := health.Index{}
	zeroTrained, _ := health.TrainLMS(zero, train, 50, 0.05)
	row("LMS from zeros (50 epochs)", zeroTrained)

	for _, e := range []int{0, 4, 9, 19, 49} {
		if e < len(curve) {
			t.AddNote("MSE after epoch %2d: %.4f", e+1, curve[e])
		}
	}
	return t, nil
}
