package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
	"mbd/internal/vdl"
)

// E8Config parameterizes the snapshot-consistency experiment.
type E8Config struct {
	// FlapPeriods sweeps how often a route flaps (default 50 ms – 10 s).
	FlapPeriods []time.Duration
	// Walks is the number of observation attempts per period setting.
	Walks int
	// Routes is the table size.
	Routes int
	Seed   int64
}

func (c *E8Config) defaults() {
	if len(c.FlapPeriods) == 0 {
		c.FlapPeriods = []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, time.Second, 10 * time.Second}
	}
	if c.Walks <= 0 {
		c.Walks = 50
	}
	if c.Routes <= 0 {
		c.Routes = 100
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
}

// E8Snapshots reproduces the transient-consistency argument: "Snapshot
// views are very useful to investigate transient problems of short
// duration ... an intermittent routing problem may be masked by the
// routing algorithm itself" (RIP's distance-vector repair).
//
// A router's ipRouteTable flaps: every period, a random route is
// withdrawn and a replacement installed (RIP repair). The centralized
// manager walks the table over SNMP; because the walk takes many round
// trips, the table mutates underneath it and the result can be *torn* —
// it matches no state the table ever occupied. The MCVA snapshot
// materializes atomically at the server.
func E8Snapshots(cfg E8Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Observing a flapping ipRouteTable (%d routes, LAN): torn SNMP walks vs MCVA snapshots", cfg.Routes),
		Headers: []string{"flap period", "walk time", "torn walks", "torn rate", "snapshot torn", "flaps seen by snapshots"},
	}
	for _, period := range cfg.FlapPeriods {
		sim := netsim.NewSim()
		st, err := netsim.NewStation("router", cfg.Seed, netsim.LAN(), "public")
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < cfg.Routes; i++ {
			st.Dev.AddRoute(routeDest(i), 1, int64(1+i%8), [4]byte{10, 0, 0, 254})
		}
		// Route flapper: withdraw one live route, install a
		// replacement, keeping exactly cfg.Routes rows live.
		live := make([]int, cfg.Routes)
		for i := range live {
			live[i] = i
		}
		nextGen := cfg.Routes
		walksDone := false
		var flap func(at time.Duration)
		flap = func(at time.Duration) {
			sim.At(at, func() {
				if walksDone {
					return
				}
				slot := rng.Intn(len(live))
				st.Dev.DelRoute(routeDest(live[slot]))
				live[slot] = nextGen
				nextGen++
				st.Dev.AddRoute(routeDest(live[slot]), 1, int64(1+rng.Intn(8)), [4]byte{10, 0, 0, 254})
				flap(at + period)
			})
		}
		flap(period / 2)

		mcva := vdl.NewMCVA(st.Dev.Tree(), vdl.MIB2())
		if _, err := mcva.Define(`view routes { from ipRouteTable; select ipRouteDest, ipRouteMetric1; }`); err != nil {
			return nil, err
		}

		var tr netsim.Traffic
		tornWalks, walkCount := 0, 0
		var walkTimes []time.Duration
		snapshotSets := map[string]bool{}
		destCol := mib.OIDIPRouteEntry.Append(mib.IPRouteDest)

		var doWalk func()
		doWalk = func() {
			if walkCount >= cfg.Walks {
				walksDone = true
				return
			}
			walkCount++
			before := currentDests(st)
			start := sim.Now()
			st.Walk(sim, "public", &tr, destCol, func(vbs []snmp.VarBind) {
				walkTimes = append(walkTimes, sim.Now()-start)
				seen := map[string]bool{}
				for _, vb := range vbs {
					if idx, ok := vb.Name.Index(destCol); ok {
						seen[idx.String()] = true
					}
				}
				after := currentDests(st)
				// The walk is consistent if it equals the table as it
				// stood at the start OR at the end (any intermediate
				// state would also do, but matching neither endpoint
				// already proves tearing for this monotone workload).
				if !sameSet(seen, before) && !sameSet(seen, after) {
					tornWalks++
				}
				// Take an MCVA snapshot at the same instant, for the
				// comparison column.
				res, err := mcva.Query("routes")
				if err == nil {
					snapshotSets[fmt.Sprintf("%d", len(res.Rows))] = true
				}
				doWalk()
			})
		}
		doWalk()
		sim.Run(24 * time.Hour)

		t.AddRow(
			period.String(),
			meanDuration(walkTimes).Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d", tornWalks, walkCount),
			fmt.Sprintf("%.0f%%", 100*float64(tornWalks)/float64(walkCount)),
			"0",
			fmt.Sprintf("%d distinct sizes", len(snapshotSets)),
		)
	}
	t.AddNote("a walk is torn when its row set matches neither the table at walk start nor at walk end")
	t.AddNote("MCVA snapshots materialize in one step at the server and are immutable afterwards — torn count is structurally zero; every snapshot showed exactly %d routes", cfg.Routes)
	return t, nil
}

func routeDest(i int) [4]byte {
	return [4]byte{192, byte(168 + i/65536), byte((i / 256) % 256), byte(i % 256)}
}

func currentDests(st *netsim.Station) map[string]bool {
	out := map[string]bool{}
	col := mib.OIDIPRouteEntry.Append(mib.IPRouteDest)
	st.Dev.Tree().Walk(col, func(o oid.OID, _ mib.Value) bool {
		if idx, ok := o.Index(col); ok {
			out[idx.String()] = true
		}
		return true
	})
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
