package experiments

import (
	"fmt"
	"time"
)

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Run   func() (*Table, error)
	Brief string
}

// All returns every experiment in presentation order, with default
// configurations. Quick variants for CI-speed runs are available
// through the individual constructors.
func All() []Experiment {
	return []Experiment{
		{"E1", E1PollingCapacity, "polling capacity bound vs link latency"},
		{"E2", func() (*Table, error) { return E2HealthCentralVsDelegated(E2Config{}) }, "health monitoring: centralized vs delegated"},
		{"E2b", func() (*Table, error) {
			return E2HealthCentralVsDelegated(E2Config{Periodic: true, DeviceCounts: []int{50, 250}})
		}, "ablation: periodic reports instead of report-on-exception"},
		{"E3", func() (*Table, error) { return E3TableRetrieval(E3Config{}) }, "moving large tables: walk vs delegated view"},
		{"E4", E4LatencySweep, "WAN latency sensitivity of a fixed task"},
		{"E5", E5DelegationAmortization, "delegation setup amortization vs per-eval RPC"},
		{"E6", func() (*Table, error) { return E6IntrusionDetection(E6Config{}) }, "intrusion detection: polling misses transients"},
		{"E7", E7ViewEconomy, "VDL spec economy and view query cost"},
		{"E8", func() (*Table, error) { return E8Snapshots(E8Config{}) }, "snapshot consistency under route flapping"},
		{"E9", E9LMSTraining, "LMS training of health-index weights"},
		{"E10", func() (*Table, error) { return E10RuntimeScalability(E10Config{}) }, "elastic runtime scalability (real goroutines)"},
		{"T1", T1InterpreterOverhead, "interpreted vs compiled agent execution"},
	}
}

// Quick returns the same experiments with bounded configurations for
// CI-speed runs (seconds instead of ~40 s). Shapes still hold; absolute
// byte/time columns shrink with the workloads.
func Quick() []Experiment {
	return []Experiment{
		{"E1", E1PollingCapacity, "polling capacity bound vs link latency"},
		{"E2", func() (*Table, error) {
			return E2HealthCentralVsDelegated(E2Config{DeviceCounts: []int{5, 25}, Horizon: 2 * time.Minute, Seed: 1})
		}, "health monitoring (quick)"},
		{"E3", func() (*Table, error) {
			return E3TableRetrieval(E3Config{RowCounts: []int{100, 500}, Selectivities: []float64{0.1}})
		}, "table retrieval (quick)"},
		{"E4", E4LatencySweep, "WAN latency sensitivity"},
		{"E5", E5DelegationAmortization, "delegation amortization"},
		{"E6", func() (*Table, error) {
			return E6IntrusionDetection(E6Config{
				PollIntervals: []time.Duration{30 * time.Second},
				MeanLives:     []time.Duration{2 * time.Second},
				Horizon:       2 * time.Minute, Sessions: 40,
			})
		}, "intrusion detection (quick)"},
		{"E7", E7ViewEconomy, "VDL spec economy"},
		{"E8", func() (*Table, error) {
			return E8Snapshots(E8Config{FlapPeriods: []time.Duration{100 * time.Millisecond}, Walks: 10, Routes: 50})
		}, "snapshot consistency (quick)"},
		{"E9", E9LMSTraining, "LMS training"},
		{"E10", func() (*Table, error) {
			return E10RuntimeScalability(E10Config{Counts: []int{1, 100}, MsgsPerDPI: 5})
		}, "runtime scalability (quick)"},
		{"T1", T1InterpreterOverhead, "interpreted vs compiled"},
	}
}

// ByID finds an experiment by its id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}
