package experiments

import (
	"fmt"

	"mbd/internal/health"
	"mbd/internal/rds"
	"mbd/internal/snmp"

	"mbd/internal/mib"
	"mbd/internal/oid"
)

// E5DelegationAmortization quantifies when delegation pays for itself
// against per-interaction remote access (the RPC/remote-evaluation
// comparison of the related-work chapter; late-binding RPC is "optimal
// performance in the number of network transits", and delegation
// amortizes even that).
//
// Task: evaluate the health function M times. RPC-style costs 2
// messages per evaluation (5-varbind Get + response). Delegation costs
// a fixed setup (Delegate carrying the DP source + Instantiate, 4
// messages) and then at most one one-way report per evaluation — zero
// when nothing is wrong. All sizes come from real wire encodings.
func E5DelegationAmortization() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Cumulative messages and bytes: per-evaluation SNMP vs delegate-once",
		Headers: []string{"evals M", "RPC msgs", "RPC bytes", "MbD msgs (periodic)", "MbD bytes (periodic)", "MbD msgs (exception)", "MbD bytes (exception)"},
	}

	// Real message sizes.
	counterOIDs := []oid.OID{
		mib.OIDEnetRxOk.Append(0), mib.OIDEnetColl.Append(0),
		mib.OIDEnetRxBcast.Append(0), mib.OIDEnetRxPkts.Append(0), mib.OIDEnetRxErrs.Append(0),
	}
	vbs := make([]snmp.VarBind, len(counterOIDs))
	for i, o := range counterOIDs {
		vbs[i] = snmp.VarBind{Name: o, Value: mib.Null()}
	}
	reqPkt, err := (&snmp.Message{Community: "public", Type: snmp.PDUGetRequest, RequestID: 1, VarBinds: vbs}).Encode()
	if err != nil {
		return nil, err
	}
	for i := range vbs {
		vbs[i].Value = mib.Counter32(123456789)
	}
	respPkt, err := (&snmp.Message{Community: "public", Type: snmp.PDUGetResponse, RequestID: 1, VarBinds: vbs}).Encode()
	if err != nil {
		return nil, err
	}
	rpcPerEval := len(reqPkt) + len(respPkt)

	src := health.AgentSource(health.DefaultIndex(), false)
	delegateMsg := &rds.Message{Op: rds.OpDelegate, Seq: 1, Principal: "mgr", Name: "health", Lang: "dpl", Payload: []byte(src)}
	instMsg := &rds.Message{Op: rds.OpInstantiate, Seq: 2, Principal: "mgr", Name: "health", Entry: "eval"}
	replyMsg := &rds.Message{Op: rds.OpReply, Seq: 1, OK: true, Name: "health#1"}
	reportMsg := &rds.Message{Op: rds.OpEvent, Name: "health#1", Entry: "report", Payload: []byte("UNHEALTHY score=0.421 u=0.45 c=0.05 b=0.55 e=0.002"), TimeMS: 100000}
	setupBytes := rds.FrameSize(delegateMsg.Encode()) + rds.FrameSize(instMsg.Encode()) + 2*rds.FrameSize(replyMsg.Encode())
	reportBytes := rds.FrameSize(reportMsg.Encode())
	const exceptionRate = 0.05 // one alarm per 20 evaluations

	var crossover int
	for _, m := range []int{1, 2, 5, 10, 20, 50, 100, 1000} {
		rpcB := m * rpcPerEval
		perB := setupBytes + m*reportBytes
		excB := setupBytes + int(float64(m)*exceptionRate+0.5)*reportBytes
		if crossover == 0 && perB < rpcB {
			crossover = m
		}
		t.AddRow(
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", 2*m),
			fmtBytes(uint64(rpcB)),
			fmt.Sprintf("%d", 4+m),
			fmtBytes(uint64(perB)),
			fmt.Sprintf("%d", 4+int(float64(m)*exceptionRate+0.5)),
			fmtBytes(uint64(excB)),
		)
	}
	t.AddNote("setup = Delegate frame carrying the %dB health DP + Instantiate + replies (%dB total); RPC evaluation = %dB round trip; report = %dB one-way", len(src), setupBytes, rpcPerEval, reportBytes)
	if crossover > 0 {
		t.AddNote("periodic-report delegation beats per-evaluation SNMP from M = %d; exception mode beats it from the first alarm-free interval", crossover)
	}
	return t, nil
}
