//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this
// build; timing assertions that compare engine speeds are meaningless
// under its overhead.
const raceEnabled = true
