package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mbd/internal/health"
	"mbd/internal/mib"
	"mbd/internal/netsim"
	"mbd/internal/oid"
	"mbd/internal/snmp"
)

// E2Config parameterizes the health-monitoring comparison.
type E2Config struct {
	// DeviceCounts is the sweep (default 1..500).
	DeviceCounts []int
	// Horizon is the monitored interval (default 10 virtual minutes).
	Horizon time.Duration
	// EvalEvery is the health evaluation period (default 10 s).
	EvalEvery time.Duration
	// Periodic switches the delegated agents from report-on-exception
	// to report-every-evaluation (the ablation in DESIGN.md §5).
	Periodic bool
	Seed     int64
}

func (c *E2Config) defaults() {
	if len(c.DeviceCounts) == 0 {
		c.DeviceCounts = []int{1, 10, 50, 100, 250, 500, 1000}
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Minute
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// E2HealthCentralVsDelegated reproduces the InterOp'91 health-function
// comparison. A manager keeps a health index fresh (period EvalEvery)
// for N LAN segments.
//
// Centralized: every period the manager polls the five segment counters
// of every device over SNMP (sequentially, as a 1995 platform did) and
// computes the index at the platform. When the polling cycle overruns
// the period, evaluations go stale.
//
// Delegated: the manager delegates the health DP once per device; each
// DPI (real DPL bytecode, real MIB reads) evaluates locally every
// period and sends a notification only when the index crosses the
// threshold. A third of the devices experience a two-minute fault
// episode mid-run.
func E2HealthCentralVsDelegated(cfg E2Config) (*Table, error) {
	cfg.defaults()
	mode := "report-on-exception"
	if cfg.Periodic {
		mode = "periodic reports"
	}
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("Health monitoring, centralized SNMP vs delegated (%s), %v horizon, eval every %v", mode, cfg.Horizon, cfg.EvalEvery),
		Headers: []string{"devices", "SNMP bytes", "SNMP PDUs", "cycle", "stale evals", "MbD bytes", "MbD msgs", "alarms", "byte gain"},
	}
	counterOIDs := []oid.OID{
		mib.OIDEnetRxOk.Append(0), mib.OIDEnetColl.Append(0),
		mib.OIDEnetRxBcast.Append(0), mib.OIDEnetRxPkts.Append(0), mib.OIDEnetRxErrs.Append(0),
	}
	for _, n := range cfg.DeviceCounts {
		// ---- centralized run ----
		sim := netsim.NewSim()
		stations, err := makeStations(sim, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		scheduleEpisodes(sim, stations, cfg)
		var tr netsim.Traffic
		var cycles []time.Duration
		staleEvals := 0

		// Period-authentic platforms issued one variable per request;
		// the cycle visits every device × every counter sequentially.
		var pollCycle func(start time.Duration)
		pollCycle = func(start time.Duration) {
			i, j := 0, 0
			var next func()
			next = func() {
				if i >= len(stations) {
					dur := sim.Now() - start
					cycles = append(cycles, dur)
					if dur > cfg.EvalEvery {
						staleEvals += len(stations)
					}
					// Next cycle starts on schedule or immediately if
					// overrun.
					nextStart := start + cfg.EvalEvery
					if nextStart < sim.Now() {
						nextStart = sim.Now()
					}
					if nextStart < cfg.Horizon {
						sim.At(nextStart, func() { pollCycle(nextStart) })
					}
					return
				}
				st := stations[i]
				o := counterOIDs[j]
				j++
				if j == len(counterOIDs) {
					j = 0
					i++
				}
				st.Get(sim, "public", &tr, []oid.OID{o}, func([]snmp.VarBind) { next() })
			}
			next()
		}
		sim.At(0, func() { pollCycle(0) })
		sim.Run(cfg.Horizon + time.Minute)
		meanCycle := meanDuration(cycles)

		// ---- delegated run ----
		sim2 := netsim.NewSim()
		stations2, err := makeStations(sim2, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		scheduleEpisodes(sim2, stations2, cfg)
		var tr2 netsim.Traffic
		alarms := 0
		msgs := uint64(0)
		src := health.AgentSource(health.DefaultIndex(), cfg.Periodic)
		for _, st := range stations2 {
			ses := netsim.NewSession(sim2, st, &tr2)
			agent, err := netsim.NewAgent(sim2, st, ses, src)
			if err != nil {
				return nil, err
			}
			agent.OnReport = func(string) { alarms++ }
			ses.Delegate("health", src, func() {
				ses.Instantiate("health", "eval", func() {
					var tick func(at time.Duration)
					tick = func(at time.Duration) {
						if at >= cfg.Horizon {
							return
						}
						sim2.At(at, func() {
							// Local evaluation: no network cost.
							_, _ = agent.Invoke("eval")
							tick(at + cfg.EvalEvery)
						})
					}
					tick(sim2.Now())
				})
			})
		}
		sim2.Run(cfg.Horizon + time.Minute)
		msgs = tr2.Requests + tr2.Responses

		t.AddRow(
			fmt.Sprintf("%d", n),
			fmtBytes(tr.Bytes()),
			fmt.Sprintf("%d", tr.Requests+tr.Responses),
			meanCycle.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", staleEvals),
			fmtBytes(tr2.Bytes()),
			fmt.Sprintf("%d", msgs),
			fmt.Sprintf("%d", alarms),
			fmtRatio(float64(tr.Bytes()), float64(tr2.Bytes())),
		)
	}
	t.AddNote("centralized = sequential SNMP Get of 5 segment counters per device per period; delegated = one DP transfer per device + threshold notifications")
	t.AddNote("a third of devices fault (broadcast storm) for 2 minutes mid-run; stale evals counts evaluations delivered after their period because the poll cycle overran")
	return t, nil
}

func makeStations(sim *netsim.Sim, n int, seed int64) ([]*netsim.Station, error) {
	stations := make([]*netsim.Station, n)
	for i := range stations {
		st, err := netsim.NewStation(fmt.Sprintf("seg-%d", i), seed+int64(i), netsim.LAN(), "public")
		if err != nil {
			return nil, err
		}
		stations[i] = st
	}
	return stations, nil
}

// scheduleEpisodes gives every third device a broadcast storm from
// minute 4 to minute 6 (or the middle fifth of a shorter horizon).
func scheduleEpisodes(sim *netsim.Sim, stations []*netsim.Station, cfg E2Config) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	start := cfg.Horizon * 2 / 5
	end := cfg.Horizon * 3 / 5
	for i, st := range stations {
		st.Dev.SetLoad(health.EpisodeLoad(health.Nominal, rng))
		if i%3 != 0 {
			continue
		}
		st := st
		sim.At(start, func() { st.Dev.SetLoad(health.EpisodeLoad(health.BroadcastStorm, rng)) })
		sim.At(end, func() { st.Dev.SetLoad(health.EpisodeLoad(health.Nominal, rng)) })
	}
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
